// Delay claims (paper Sec. 4, prose): the approximate logic circuit's
// critical path is on average 38% SHORTER than the original (hence zero
// performance penalty for non-intrusive CED), while a single-bit parity
// prediction circuit is on average 51% LONGER.
#include "baselines/parity.hpp"
#include "bench_util.hpp"

using namespace apx;
using namespace apx::bench;

int main() {
  print_header("Delay study: approximate circuit vs original vs parity "
               "predictor (unit-delay levels)");

  std::printf("%-8s %8s %8s %8s %10s %10s\n", "name", "orig", "approx",
              "parity", "approx d%", "parity d%");
  double mean_approx = 0.0, mean_parity = 0.0;
  int rows = 0;
  for (const char* name :
       {"cmb", "cordic", "term1", "x1", "i2", "frg2", "dalu", "i10"}) {
    Network net = make_benchmark(name);
    TunedRun tuned = auto_tune(net);
    const PipelineResult& r = tuned.result;
    Network parity_pred = build_parity_predictor(r.mapped_original);
    int d_orig = r.original_delay;
    int d_apx = r.checkgen_delay;
    int d_par = mapped_delay(parity_pred);
    double apx_delta = d_orig > 0 ? 100.0 * (d_apx - d_orig) / d_orig : 0.0;
    double par_delta = d_orig > 0 ? 100.0 * (d_par - d_orig) / d_orig : 0.0;
    mean_approx += apx_delta;
    mean_parity += par_delta;
    ++rows;
    std::printf("%-8s %8d %8d %8d %+9.1f%% %+9.1f%%\n", name, d_orig, d_apx,
                d_par, apx_delta, par_delta);
  }
  std::printf("%-8s %8s %8s %8s %+9.1f%% %+9.1f%%\n", "mean", "", "", "",
              mean_approx / rows, mean_parity / rows);
  std::printf("\npaper: approximate circuit delay -38%% on average; parity "
              "prediction +51%% on average.\n"
              "Expected shape: approx delta <= 0 on every circuit; parity "
              "delta > 0 on average.\n");
  return 0;
}
