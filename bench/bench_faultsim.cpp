// Fault-simulation throughput benchmark: the seed's per-fault golden
// re-simulation loop vs the shared-pattern FaultSimEngine, on a
// Table-1-sized CED coverage run (same fault/pattern counts), plus thread
// scaling at 1/2/4/8 workers and per-SIMD-width rows (scalar / AVX2 /
// AVX-512 kernels cycled via the in-process tier hook). Emits
// BENCH_faultsim.json so the perf trajectory is tracked from PR 1 onward
// (fields documented in EXPERIMENTS.md).
#include <algorithm>
#include <bit>
#include <cstdio>
#include <numeric>
#include <random>
#include <string>
#include <vector>

#include "baselines/parity.hpp"
#include "bench_util.hpp"
#include "core/ced.hpp"
#include "core/pipeline.hpp"
#include "mapping/mapper.hpp"
#include "mapping/optimize.hpp"
#include "sim/fault_engine.hpp"
#include "sim/kernels.hpp"

using namespace apx;
using namespace apx::bench;

namespace {

struct Throughput {
  double seconds = 0.0;
  double faults_per_sec = 0.0;
  double patterns_per_sec = 0.0;
  CoverageResult result;
};

Throughput rates(double seconds, const CoverageOptions& opt,
                 CoverageResult result) {
  Throughput t;
  t.seconds = seconds;
  t.faults_per_sec = opt.num_fault_samples / seconds;
  t.patterns_per_sec =
      static_cast<double>(opt.num_fault_samples) * opt.words_per_fault * 64 /
      seconds;
  t.result = result;
  return t;
}

// The seed's evaluate_ced_coverage loop, verbatim: fresh PatternSet and a
// full golden machine re-simulation per fault sample.
Throughput run_baseline(const CedDesign& ced, const CoverageOptions& options) {
  Stopwatch watch;
  CoverageResult result;
  std::mt19937_64 rng(options.seed);
  Simulator sim(ced.design);
  const Network& net = ced.design;
  for (int s = 0; s < options.num_fault_samples; ++s) {
    NodeId site = ced.functional_nodes[rng() % ced.functional_nodes.size()];
    StuckFault fault{site, static_cast<bool>(rng() & 1)};
    PatternSet patterns =
        PatternSet::random(net.num_pis(), options.words_per_fault, rng());
    sim.run(patterns);
    sim.inject(fault);
    const auto z1 = sim.faulty_value(ced.error_pair.rail1);
    const auto z2 = sim.faulty_value(ced.error_pair.rail2);
    for (int w = 0; w < options.words_per_fault; ++w) {
      uint64_t err = 0;
      for (NodeId out : ced.functional_outputs) {
        err |= sim.value(out)[w] ^ sim.faulty_value(out)[w];
      }
      uint64_t flagged = ~(z1[w] ^ z2[w]);
      result.erroneous += std::popcount(err);
      result.detected += std::popcount(err & flagged);
      result.runs += 64;
    }
  }
  return rates(watch.seconds(), options, result);
}

Throughput run_engine(const CedDesign& ced, CoverageOptions options,
                      int threads) {
  options.num_threads = threads;
  Stopwatch watch;
  CoverageResult result = evaluate_ced_coverage(ced, options);
  return rates(watch.seconds(), options, result);
}

// Raw substrate sweep: full-network golden simulation of `words` pattern
// words, repeated `reps` times through the active kernel. This isolates the
// SOP-evaluation kernels the tentpole dispatches (the engine rows also pay
// per-fault fixed costs: forced-row copies, excitation checks, visitors).
// The checksum folds every node row of the value plane, so two tiers match
// only if their planes are byte-identical.
struct Sweep {
  double seconds = 0.0;
  double patterns_per_sec = 0.0;
  uint64_t plane_checksum = 0;
};

Sweep run_substrate_sweep(const Network& net, int words, int reps,
                          uint64_t seed) {
  Simulator sim(net);
  PatternSet patterns = PatternSet::random(net.num_pis(), words, seed);
  Stopwatch watch;
  for (int r = 0; r < reps; ++r) sim.run(patterns);
  Sweep s;
  s.seconds = watch.seconds();
  s.patterns_per_sec =
      static_cast<double>(reps) * words * 64 / (s.seconds > 0 ? s.seconds : 1);
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a over the whole value plane
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    for (uint64_t w : sim.value(id)) {
      h = (h ^ w) * 0x100000001b3ULL;
    }
  }
  s.plane_checksum = h;
  return s;
}

struct WidthRow {
  simd::Tier tier;
  Sweep sweep;
  Throughput engine;
};

// Visitor-accounting sweep: isolates the campaign visitors' popcount tax.
// One simulation materializes golden/faulty rows for every functional
// output plus the two-rail pair; the sweep then replays the CED coverage
// accounting over those rows `reps` times, once with the legacy per-word
// std::popcount loop and once through the dispatched popcount-reduce
// kernels. Both compute the identical (erroneous, detected) integers —
// `visitor_bit_identical` in the artifact — and the ratio of their times
// is the visitor speedup the release gate watches.
struct VisitorSweep {
  double scalar_seconds = 0.0;
  double kernel_seconds = 0.0;
  int64_t scalar_erroneous = 0, scalar_detected = 0;
  int64_t kernel_erroneous = 0, kernel_detected = 0;
  uint64_t scalar_checksum = 0, kernel_checksum = 0;
};

VisitorSweep run_visitor_sweep(const CedDesign& ced, int words, int reps,
                               uint64_t seed) {
  Simulator sim(ced.design);
  sim.run(PatternSet::random(ced.design.num_pis(), words, seed));
  sim.inject({ced.functional_nodes[ced.functional_nodes.size() / 2], true});
  std::vector<const uint64_t*> golden, faulty;
  for (NodeId out : ced.functional_outputs) {
    golden.push_back(sim.value(out).data());
    faulty.push_back(sim.faulty_value(out).data());
  }
  const uint64_t* z1 = sim.faulty_value(ced.error_pair.rail1).data();
  const uint64_t* z2 = sim.faulty_value(ced.error_pair.rail2).data();
  const size_t outs = golden.size();

  VisitorSweep v;
  {
    Stopwatch watch;
    for (int r = 0; r < reps; ++r) {
      int64_t erroneous = 0, detected = 0;
      for (int w = 0; w < words; ++w) {
        uint64_t err = 0;
        for (size_t o = 0; o < outs; ++o) err |= golden[o][w] ^ faulty[o][w];
        uint64_t flagged = ~(z1[w] ^ z2[w]);
        erroneous += std::popcount(err);
        detected += std::popcount(err & flagged);
      }
      v.scalar_erroneous = erroneous;
      v.scalar_detected = detected;
      // Rep-dependent fold so the loop cannot be hoisted as invariant.
      v.scalar_checksum +=
          static_cast<uint64_t>(erroneous + detected) * (r + 1);
    }
    v.scalar_seconds = watch.seconds();
  }
  {
    std::vector<uint64_t> err_row(words);
    Stopwatch watch;
    for (int r = 0; r < reps; ++r) {
      std::fill(err_row.begin(), err_row.end(), 0);
      for (size_t o = 0; o < outs; ++o) {
        accumulate_xor_or(err_row.data(), golden[o], faulty[o], words);
      }
      int64_t erroneous = popcount_words(err_row.data(), words, ~0ULL);
      int64_t detected =
          erroneous - popcount_xor_and(z1, z2, err_row.data(), words, ~0ULL);
      v.kernel_erroneous = erroneous;
      v.kernel_detected = detected;
      v.kernel_checksum +=
          static_cast<uint64_t>(erroneous + detected) * (r + 1);
    }
    v.kernel_seconds = watch.seconds();
  }
  return v;
}

// Per-fault-model coverage row: one CED scheme measured under one fault
// model, with the campaign replayed at a second thread count and across
// every supported SIMD tier so the bit-identity contract is pinned per
// model (not just for the legacy single-stuck-at path).
struct ModelRow {
  const char* scheme = "";
  FaultModel model = FaultModel::kSingleStuckAt;
  CoverageResult result;
  bool threads_identical = true;
  bool widths_identical = true;
};

ModelRow run_model_row(const char* scheme, const CedDesign& ced,
                       FaultModel model, const CoverageOptions& base) {
  ModelRow row;
  row.scheme = scheme;
  row.model = model;
  CoverageOptions o = base;
  o.model = model;
  o.num_threads = 1;
  row.result = evaluate_ced_coverage(ced, o);
  o.num_threads = 4;
  CoverageResult threads4 = evaluate_ced_coverage(ced, o);
  row.threads_identical = threads4.erroneous == row.result.erroneous &&
                          threads4.detected == row.result.detected;
  // Cycle the kernel tiers; the loop ends on the widest supported one,
  // which is what auto dispatch picks (same convention as the width rows).
  o.num_threads = 1;
  for (simd::Tier tier :
       {simd::Tier::kScalar, simd::Tier::kAvx2, simd::Tier::kAvx512}) {
    if (!simd::tier_supported(tier)) continue;
    simd::set_tier(tier);
    CoverageResult r = evaluate_ced_coverage(ced, o);
    row.widths_identical = row.widths_identical &&
                           r.erroneous == row.result.erroneous &&
                           r.detected == row.result.detected;
  }
  return row;
}

void print_row(const char* label, const Throughput& t) {
  std::printf("%-24s %8.3fs %12.0f f/s %14.0f pat/s   cov %.2f%%\n", label,
              t.seconds, t.faults_per_sec, t.patterns_per_sec,
              100.0 * t.result.coverage());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_faultsim.json";
  const char* circuit = "dalu";

  // Open the artifact up front: the host-metadata block must record the
  // *startup* dispatch (APX_SIMD / CPUID), not the tier the per-width loop
  // happens to leave active.
  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  apx::bench::write_host_metadata(f);

  // Table-1-sized workload: a mapped MCNC-profile stand-in protected by
  // duplication (functional + checkgen + checkers, everything gate-level).
  Network mapped = technology_map(quick_synthesis(make_benchmark(circuit)));
  std::vector<ApproxDirection> dirs(mapped.num_pos(),
                                    ApproxDirection::kZeroApprox);
  CedDesign ced = build_ced_design(mapped, mapped, dirs);

  CoverageOptions options;
  options.num_fault_samples = scaled(1500);
  options.words_per_fault = 4;

  std::printf("bench_faultsim: %s CED design, %d nodes (%d functional "
              "gates), %d fault samples x %d words, dispatch %s\n\n",
              circuit, ced.design.num_nodes(), ced.functional_area(),
              options.num_fault_samples, options.words_per_fault,
              simd::tier_name(simd::active_tier()));

  Throughput baseline = run_baseline(ced, options);
  print_row("per-fault rerun (seed)", baseline);

  const int thread_counts[] = {1, 2, 4, 8};
  std::vector<Throughput> engine_runs;
  for (int threads : thread_counts) {
    engine_runs.push_back(run_engine(ced, options, threads));
    print_row(("engine, " + std::to_string(threads) + " thread(s)").c_str(),
              engine_runs.back());
  }

  bool threads_identical = true;
  for (const Throughput& t : engine_runs) {
    threads_identical = threads_identical &&
                        t.result.erroneous == engine_runs[0].result.erroneous &&
                        t.result.detected == engine_runs[0].result.detected;
  }
  double speedup = engine_runs[0].faults_per_sec / baseline.faults_per_sec;
  std::printf("\nsingle-thread speedup over per-fault rerun: %.1fx\n",
              speedup);
  std::printf("thread counts bit-identical: %s\n\n",
              threads_identical ? "yes" : "NO");

  // Per-SIMD-width rows: cycle every tier the host can execute through the
  // in-process hook, measuring the raw substrate kernel and the full engine
  // at each width. The loop ends on the widest tier, which is what auto
  // dispatch picks anyway.
  const int sweep_words = 256;
  const int sweep_reps = scaled(40);
  std::vector<WidthRow> widths;
  for (simd::Tier tier :
       {simd::Tier::kScalar, simd::Tier::kAvx2, simd::Tier::kAvx512}) {
    if (!simd::tier_supported(tier)) continue;
    simd::set_tier(tier);
    WidthRow row;
    row.tier = tier;
    row.sweep =
        run_substrate_sweep(ced.design, sweep_words, sweep_reps, 0x51D);
    row.engine = run_engine(ced, options, 1);
    widths.push_back(row);
    std::printf("%-8s (%3d-bit) substrate %12.0f pat/s   engine %12.0f "
                "pat/s   cov %.2f%%\n",
                simd::tier_name(tier), simd::width_bits(tier),
                row.sweep.patterns_per_sec, row.engine.patterns_per_sec,
                100.0 * row.engine.result.coverage());
  }

  bool widths_identical = true;
  for (const WidthRow& row : widths) {
    widths_identical =
        widths_identical &&
        row.sweep.plane_checksum == widths[0].sweep.plane_checksum &&
        row.engine.result.erroneous == widths[0].engine.result.erroneous &&
        row.engine.result.detected == widths[0].engine.result.detected;
  }
  // The kernel gate compares the widest supported tier against the scalar
  // row on the substrate sweep; it is enforced only where the host actually
  // has vector units (mirrors the thread-scaling gate on small runners).
  const bool simd_gate_enforced = simd::tier_supported(simd::Tier::kAvx2);
  const double simd_speedup =
      widths.back().sweep.patterns_per_sec / widths[0].sweep.patterns_per_sec;
  std::printf("\nSIMD widths bit-identical: %s\n",
              widths_identical ? "yes" : "NO");
  std::printf("substrate speedup %s over scalar: %.1fx (gate %s)\n",
              simd::tier_name(widths.back().tier), simd_speedup,
              simd_gate_enforced ? "enforced" : "advisory");

  // Visitor-accounting sweep at a word geometry wide enough for the vector
  // popcount reduce to dominate the loop bookkeeping. The width loop above
  // exited on the widest supported tier, which is what auto dispatch picks.
  const int visitor_words = 1024;
  const int visitor_reps = scaled(3000);
  VisitorSweep vs =
      run_visitor_sweep(ced, visitor_words, visitor_reps, 0xACC0);
  const bool visitor_identical =
      vs.scalar_erroneous == vs.kernel_erroneous &&
      vs.scalar_detected == vs.kernel_detected &&
      vs.scalar_checksum == vs.kernel_checksum;
  const bool visitor_gate_enforced = simd::tier_supported(simd::Tier::kAvx2);
  const double visitor_speedup =
      vs.scalar_seconds / (vs.kernel_seconds > 0 ? vs.kernel_seconds : 1e-12);
  std::printf("visitor accounting (%d words x %d reps): scalar %.3fs, "
              "kernels %.3fs -> %.1fx (gate %s), counts %s\n",
              visitor_words, visitor_reps, vs.scalar_seconds,
              vs.kernel_seconds, visitor_speedup,
              visitor_gate_enforced ? "enforced" : "advisory",
              visitor_identical ? "identical" : "DIVERGED");

  // Per-model coverage rows (paper Table 2's scheme axis crossed with the
  // generalized fault models): the approximate-logic CED flow vs exact
  // duplication vs parity prediction under single stuck-at, double
  // stuck-at, and burst-transient injection. Every row replays its
  // campaign at 1 vs 4 threads and across all supported SIMD tiers; the
  // exit gate requires both identities per row.
  PipelineResult approx = run_ced_pipeline(make_benchmark(circuit),
                                           tuned_options(0.1));
  std::vector<int> all_pos(mapped.num_pos());
  std::iota(all_pos.begin(), all_pos.end(), 0);
  CedDesign duplication = build_duplication_ced(mapped, mapped, all_pos);
  CedDesign parity = build_parity_ced(mapped);
  CoverageOptions model_options;
  model_options.num_fault_samples = scaled(300);
  model_options.words_per_fault = 4;
  model_options.sites_per_fault = 2;
  model_options.burst_vectors = 16;
  struct SchemeEntry {
    const char* name;
    const CedDesign* ced;
  };
  const SchemeEntry schemes[] = {
      {"approx_ced", &approx.ced},
      {"duplication", &duplication},
      {"parity", &parity},
  };
  std::vector<ModelRow> model_rows;
  bool models_identical = true;
  std::printf("\nper-model coverage (%d samples x %d words):\n",
              model_options.num_fault_samples, model_options.words_per_fault);
  for (const SchemeEntry& scheme : schemes) {
    for (FaultModel model :
         {FaultModel::kSingleStuckAt, FaultModel::kMultiStuckAt,
          FaultModel::kTransientBurst}) {
      ModelRow row =
          run_model_row(scheme.name, *scheme.ced, model, model_options);
      models_identical = models_identical && row.threads_identical &&
                         row.widths_identical;
      std::printf("  %-12s %-16s cov %6.2f%%  (err %lld, det %lld)%s%s\n",
                  row.scheme, fault_model_name(row.model),
                  100.0 * row.result.coverage(),
                  static_cast<long long>(row.result.erroneous),
                  static_cast<long long>(row.result.detected),
                  row.threads_identical ? "" : "  THREADS-DIVERGED",
                  row.widths_identical ? "" : "  WIDTHS-DIVERGED");
      model_rows.push_back(row);
    }
  }
  std::printf("per-model determinism (threads x widths): %s\n",
              models_identical ? "yes" : "NO");

  std::fprintf(f, "  \"circuit\": \"%s\",\n", circuit);
  std::fprintf(f, "  \"ced_nodes\": %d,\n", ced.design.num_nodes());
  std::fprintf(f, "  \"functional_gates\": %d,\n", ced.functional_area());
  std::fprintf(f, "  \"fault_samples\": %d,\n", options.num_fault_samples);
  std::fprintf(f, "  \"words_per_fault\": %d,\n", options.words_per_fault);
  std::fprintf(f, "  \"vectors_per_fault\": %d,\n",
               options.words_per_fault * 64);
  std::fprintf(f,
               "  \"baseline_per_fault_rerun\": {\"seconds\": %.4f, "
               "\"faults_per_sec\": %.1f, \"patterns_per_sec\": %.1f, "
               "\"coverage_pct\": %.2f},\n",
               baseline.seconds, baseline.faults_per_sec,
               baseline.patterns_per_sec, 100.0 * baseline.result.coverage());
  std::fprintf(f, "  \"engine\": [\n");
  for (size_t i = 0; i < engine_runs.size(); ++i) {
    const Throughput& t = engine_runs[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"seconds\": %.4f, "
                 "\"faults_per_sec\": %.1f, \"patterns_per_sec\": %.1f, "
                 "\"coverage_pct\": %.2f}%s\n",
                 thread_counts[i], t.seconds, t.faults_per_sec,
                 t.patterns_per_sec, 100.0 * t.result.coverage(),
                 i + 1 < engine_runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"simd\": [\n");
  for (size_t i = 0; i < widths.size(); ++i) {
    const WidthRow& row = widths[i];
    std::fprintf(
        f,
        "    {\"tier\": \"%s\", \"width_bits\": %d, "
        "\"substrate_seconds\": %.4f, \"substrate_patterns_per_sec\": %.1f, "
        "\"plane_checksum\": \"%016llx\", "
        "\"engine_seconds\": %.4f, \"engine_patterns_per_sec\": %.1f, "
        "\"coverage_pct\": %.2f}%s\n",
        simd::tier_name(row.tier), simd::width_bits(row.tier),
        row.sweep.seconds, row.sweep.patterns_per_sec,
        static_cast<unsigned long long>(row.sweep.plane_checksum),
        row.engine.seconds, row.engine.patterns_per_sec,
        100.0 * row.engine.result.coverage(),
        i + 1 < widths.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"sweep_words\": %d,\n", sweep_words);
  std::fprintf(f, "  \"sweep_reps\": %d,\n", sweep_reps);
  std::fprintf(f, "  \"speedup_single_thread\": %.2f,\n", speedup);
  std::fprintf(f, "  \"simd_speedup\": %.2f,\n", simd_speedup);
  std::fprintf(f, "  \"simd_speedup_gate\": 3.0,\n");
  std::fprintf(f, "  \"simd_gate_enforced\": %s,\n",
               simd_gate_enforced ? "true" : "false");
  std::fprintf(f, "  \"visitor_words\": %d,\n", visitor_words);
  std::fprintf(f, "  \"visitor_reps\": %d,\n", visitor_reps);
  std::fprintf(f, "  \"visitor_scalar_seconds\": %.4f,\n", vs.scalar_seconds);
  std::fprintf(f, "  \"visitor_kernel_seconds\": %.4f,\n", vs.kernel_seconds);
  std::fprintf(f, "  \"visitor_speedup\": %.2f,\n", visitor_speedup);
  std::fprintf(f, "  \"visitor_speedup_gate\": 2.0,\n");
  std::fprintf(f, "  \"visitor_gate_enforced\": %s,\n",
               visitor_gate_enforced ? "true" : "false");
  std::fprintf(f, "  \"visitor_bit_identical\": %s,\n",
               visitor_identical ? "true" : "false");
  std::fprintf(f, "  \"fault_model_samples\": %d,\n",
               model_options.num_fault_samples);
  std::fprintf(f, "  \"fault_models\": [\n");
  for (size_t i = 0; i < model_rows.size(); ++i) {
    const ModelRow& row = model_rows[i];
    std::fprintf(f,
                 "    {\"scheme\": \"%s\", \"model\": \"%s\", "
                 "\"coverage_pct\": %.2f, \"erroneous\": %lld, "
                 "\"detected\": %lld, \"threads_bit_identical\": %s, "
                 "\"widths_bit_identical\": %s}%s\n",
                 row.scheme, fault_model_name(row.model),
                 100.0 * row.result.coverage(),
                 static_cast<long long>(row.result.erroneous),
                 static_cast<long long>(row.result.detected),
                 row.threads_identical ? "true" : "false",
                 row.widths_identical ? "true" : "false",
                 i + 1 < model_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"models_bit_identical\": %s,\n",
               models_identical ? "true" : "false");
  std::fprintf(f, "  \"widths_bit_identical\": %s,\n",
               widths_identical ? "true" : "false");
  std::fprintf(f, "  \"threads_bit_identical\": %s\n",
               threads_identical ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  // Fail loudly if the engine regresses below the 4x bar, determinism
  // breaks (threads, widths, the visitor accounting identity, or any
  // per-fault-model thread/width replay), or the
  // SIMD kernels miss their bars on vector-capable hosts (3x substrate
  // evaluation, 2x visitor accounting), so CI can watch the perf
  // trajectory.
  bool ok = speedup >= 4.0 && threads_identical && widths_identical &&
            visitor_identical && models_identical;
  if (simd_gate_enforced) ok = ok && simd_speedup >= 3.0;
  if (visitor_gate_enforced) ok = ok && visitor_speedup >= 2.0;
  return ok ? 0 : 1;
}
