// Fault-simulation throughput benchmark: the seed's per-fault golden
// re-simulation loop vs the shared-pattern FaultSimEngine, on a
// Table-1-sized CED coverage run (same fault/pattern counts), plus thread
// scaling at 1/2/4/8 workers. Emits BENCH_faultsim.json so the perf
// trajectory is tracked from PR 1 onward (fields documented in
// EXPERIMENTS.md).
#include <bit>
#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/ced.hpp"
#include "mapping/mapper.hpp"
#include "mapping/optimize.hpp"
#include "sim/fault_engine.hpp"

using namespace apx;
using namespace apx::bench;

namespace {

struct Throughput {
  double seconds = 0.0;
  double faults_per_sec = 0.0;
  double patterns_per_sec = 0.0;
  CoverageResult result;
};

Throughput rates(double seconds, const CoverageOptions& opt,
                 CoverageResult result) {
  Throughput t;
  t.seconds = seconds;
  t.faults_per_sec = opt.num_fault_samples / seconds;
  t.patterns_per_sec =
      static_cast<double>(opt.num_fault_samples) * opt.words_per_fault * 64 /
      seconds;
  t.result = result;
  return t;
}

// The seed's evaluate_ced_coverage loop, verbatim: fresh PatternSet and a
// full golden machine re-simulation per fault sample.
Throughput run_baseline(const CedDesign& ced, const CoverageOptions& options) {
  Stopwatch watch;
  CoverageResult result;
  std::mt19937_64 rng(options.seed);
  Simulator sim(ced.design);
  const Network& net = ced.design;
  for (int s = 0; s < options.num_fault_samples; ++s) {
    NodeId site = ced.functional_nodes[rng() % ced.functional_nodes.size()];
    StuckFault fault{site, static_cast<bool>(rng() & 1)};
    PatternSet patterns =
        PatternSet::random(net.num_pis(), options.words_per_fault, rng());
    sim.run(patterns);
    sim.inject(fault);
    const auto& z1 = sim.faulty_value(ced.error_pair.rail1);
    const auto& z2 = sim.faulty_value(ced.error_pair.rail2);
    for (int w = 0; w < options.words_per_fault; ++w) {
      uint64_t err = 0;
      for (NodeId out : ced.functional_outputs) {
        err |= sim.value(out)[w] ^ sim.faulty_value(out)[w];
      }
      uint64_t flagged = ~(z1[w] ^ z2[w]);
      result.erroneous += std::popcount(err);
      result.detected += std::popcount(err & flagged);
      result.runs += 64;
    }
  }
  return rates(watch.seconds(), options, result);
}

Throughput run_engine(const CedDesign& ced, CoverageOptions options,
                      int threads) {
  options.num_threads = threads;
  Stopwatch watch;
  CoverageResult result = evaluate_ced_coverage(ced, options);
  return rates(watch.seconds(), options, result);
}

void print_row(const char* label, const Throughput& t) {
  std::printf("%-24s %8.3fs %12.0f f/s %14.0f pat/s   cov %.2f%%\n", label,
              t.seconds, t.faults_per_sec, t.patterns_per_sec,
              100.0 * t.result.coverage());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_faultsim.json";
  const char* circuit = "dalu";

  // Table-1-sized workload: a mapped MCNC-profile stand-in protected by
  // duplication (functional + checkgen + checkers, everything gate-level).
  Network mapped = technology_map(quick_synthesis(make_benchmark(circuit)));
  std::vector<ApproxDirection> dirs(mapped.num_pos(),
                                    ApproxDirection::kZeroApprox);
  CedDesign ced = build_ced_design(mapped, mapped, dirs);

  CoverageOptions options;
  options.num_fault_samples = scaled(1500);
  options.words_per_fault = 4;

  std::printf("bench_faultsim: %s CED design, %d nodes (%d functional "
              "gates), %d fault samples x %d words\n\n",
              circuit, ced.design.num_nodes(), ced.functional_area(),
              options.num_fault_samples, options.words_per_fault);

  Throughput baseline = run_baseline(ced, options);
  print_row("per-fault rerun (seed)", baseline);

  const int thread_counts[] = {1, 2, 4, 8};
  std::vector<Throughput> engine_runs;
  for (int threads : thread_counts) {
    engine_runs.push_back(run_engine(ced, options, threads));
    print_row(("engine, " + std::to_string(threads) + " thread(s)").c_str(),
              engine_runs.back());
  }

  bool bit_identical = true;
  for (const Throughput& t : engine_runs) {
    bit_identical = bit_identical &&
                    t.result.erroneous == engine_runs[0].result.erroneous &&
                    t.result.detected == engine_runs[0].result.detected;
  }
  double speedup = engine_runs[0].faults_per_sec / baseline.faults_per_sec;
  std::printf("\nsingle-thread speedup over per-fault rerun: %.1fx\n",
              speedup);
  std::printf("thread counts bit-identical: %s\n",
              bit_identical ? "yes" : "NO");

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  apx::bench::write_host_metadata(f);
  std::fprintf(f, "  \"circuit\": \"%s\",\n", circuit);
  std::fprintf(f, "  \"ced_nodes\": %d,\n", ced.design.num_nodes());
  std::fprintf(f, "  \"functional_gates\": %d,\n", ced.functional_area());
  std::fprintf(f, "  \"fault_samples\": %d,\n", options.num_fault_samples);
  std::fprintf(f, "  \"words_per_fault\": %d,\n", options.words_per_fault);
  std::fprintf(f, "  \"vectors_per_fault\": %d,\n",
               options.words_per_fault * 64);
  std::fprintf(f,
               "  \"baseline_per_fault_rerun\": {\"seconds\": %.4f, "
               "\"faults_per_sec\": %.1f, \"patterns_per_sec\": %.1f, "
               "\"coverage_pct\": %.2f},\n",
               baseline.seconds, baseline.faults_per_sec,
               baseline.patterns_per_sec, 100.0 * baseline.result.coverage());
  std::fprintf(f, "  \"engine\": [\n");
  for (size_t i = 0; i < engine_runs.size(); ++i) {
    const Throughput& t = engine_runs[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"seconds\": %.4f, "
                 "\"faults_per_sec\": %.1f, \"patterns_per_sec\": %.1f, "
                 "\"coverage_pct\": %.2f}%s\n",
                 thread_counts[i], t.seconds, t.faults_per_sec,
                 t.patterns_per_sec, 100.0 * t.result.coverage(),
                 i + 1 < engine_runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"speedup_single_thread\": %.2f,\n", speedup);
  std::fprintf(f, "  \"threads_bit_identical\": %s\n",
               bit_identical ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  // Fail loudly if the engine regresses below the 4x bar or determinism
  // breaks, so CI can watch the perf trajectory.
  return (speedup >= 4.0 && bit_identical) ? 0 : 1;
}
