// Table 3 (paper Sec. 4.1): technology-independence of CED coverage.
//
// The approximate check function is synthesized once per circuit from the
// technology-independent network; the functional circuit is then mapped
// with five different (library, script) implementations and the CED
// coverage is re-measured for each. The paper's claim: coverage stays
// nearly constant across implementations because it is a property of the
// Boolean function being approximated.
#include <algorithm>
#include <iterator>

#include "bench_util.hpp"
#include "core/task_pool.hpp"
#include "mapping/optimize.hpp"

using namespace apx;
using namespace apx::bench;

namespace {

struct PaperRow {
  const char* name;
  double cov[5];
};

const PaperRow kPaper[] = {
    {"cmb", {95.8, 96, 96.6, 95.1, 96.7}},
    {"cordic", {74, 74.5, 74.1, 74.6, 73}},
    {"term1", {70, 73, 75, 80, 71}},
    {"x1", {67.8, 68.6, 64.1, 64.5, 68}},
    {"i2", {79, 84, 82, 85, 83}},
    {"frg2", {70, 69, 71.3, 76.1, 75.2}},
    {"dalu", {71.2, 72.1, 73, 72.4, 75}},
    {"i10", {70, 71.2, 70.5, 71.7, 72.2}},
};

}  // namespace

int main() {
  print_header("Table 3: Technology-independence of CED coverage");

  const auto& impls = standard_implementations();
  std::printf("%-8s |", "name");
  for (const auto& impl : impls) std::printf(" %7s", impl.name.substr(0, 7).c_str());
  std::printf("  spread |  paper spread\n");
  std::printf("---------+--------------------------------------------------"
              "-------------\n");

  // One pool task per circuit row: each synthesizes the check function once
  // and measures coverage across all implementations; the fault campaigns
  // inside keep the remaining pool workers busy (nested submission). Rows
  // print serially in table order once all slots are filled.
  const int num_rows = static_cast<int>(std::size(kPaper));
  std::vector<std::vector<double>> row_cov(num_rows);
  TaskPool::instance().parallel_for(0, num_rows, [&](int64_t row) {
    const PaperRow& ref = kPaper[row];
    Network net = make_benchmark(ref.name);
    Network optimized = quick_synthesis(net);

    // One reliability + synthesis pass (implementation-independent).
    Network base_mapped = technology_map(optimized);
    ReliabilityOptions rel_opt;
    rel_opt.num_fault_samples = scaled(1500);
    rel_opt.num_threads = bench_threads();
    ReliabilityReport rel = analyze_reliability(base_mapped, rel_opt);
    std::vector<ApproxDirection> dirs = choose_directions(rel);
    ApproxOptions aopt;
    aopt.significance_threshold = 0.12;
    ApproxResult synth = synthesize_approximation(optimized, dirs, aopt);

    for (const auto& impl : impls) {
      MapOptions mopt{impl.library, impl.script};
      Network mapped = technology_map(optimized, mopt);
      Network checkgen = technology_map(synth.approx, mopt);
      CedDesign ced = build_ced_design(mapped, checkgen, dirs);
      CoverageOptions copt;
      copt.num_fault_samples = scaled(1200);
      copt.num_threads = bench_threads();
      row_cov[row].push_back(
          100.0 * evaluate_ced_coverage(ced, copt).coverage());
    }
  });

  for (int row = 0; row < num_rows; ++row) {
    const PaperRow& ref = kPaper[row];
    std::printf("%-8s |", ref.name);
    double lo = 101.0, hi = -1.0;
    for (double cov : row_cov[row]) {
      lo = std::min(lo, cov);
      hi = std::max(hi, cov);
      std::printf(" %7.1f", cov);
    }
    double paper_lo = 101.0, paper_hi = -1.0;
    for (double c : ref.cov) {
      paper_lo = std::min(paper_lo, c);
      paper_hi = std::max(paper_hi, c);
    }
    std::printf("  %6.1f |  %6.1f\n", hi - lo, paper_hi - paper_lo);
  }
  std::printf(
      "\nExpected shape: the per-circuit spread across implementations stays\n"
      "small (paper: typically < 5 points), i.e. coverage is a property of\n"
      "the approximated Boolean function, not of the mapping.\n");
  return 0;
}
