// Extensions bench: the paper's two future-work items, measured.
//
//   (i)  CED of delay (transition) faults with the *same* approximate
//        check-symbol generators and checkers.
//   (ii) Combined detection + masking: corrected outputs Y·X / Y+X mask
//        errors in the protected direction while the checkers still flag
//        them.
//
// Plus the input-distribution study from Sec. 2's weighting remark: the
// approximation percentage of a fixed check function under biased inputs.
#include "bench_util.hpp"
#include "core/delay_ced.hpp"
#include "core/masking.hpp"
#include "core/verify.hpp"

using namespace apx;
using namespace apx::bench;

int main() {
  print_header("Extensions: delay-fault CED, error masking, biased inputs");

  std::printf("-- (i) delay-fault CED coverage (same checkers) --\n");
  std::printf("%-8s %14s %14s\n", "name", "stuck-at cov%", "delay cov%");
  for (const char* name : {"cmb", "cordic", "term1"}) {
    Network net = make_benchmark(name);
    PipelineResult r = run_ced_pipeline(net, tuned_options(0.15));
    DelayCoverageOptions dopt;
    dopt.num_fault_samples = scaled(1200);
    CoverageResult delay = evaluate_delay_fault_coverage(r.ced, dopt);
    std::printf("%-8s %14.1f %14.1f\n", name, 100.0 * r.coverage.coverage(),
                100.0 * delay.coverage());
  }

  std::printf("\n-- (ii) error masking (corrected outputs) --\n");
  std::printf("%-8s %16s %16s %16s\n", "name", "raw err rate",
              "masked err rate", "corrected");
  for (const char* name : {"cmb", "dec38", "term1"}) {
    Network net = make_benchmark(name);
    PipelineResult r = run_ced_pipeline(net, tuned_options(0.15));
    MaskingDesign design = build_masking_design(
        r.mapped_original, r.mapped_checkgen, r.directions);
    CoverageOptions copt;
    copt.num_fault_samples = scaled(1200);
    MaskingResult m = evaluate_masking(design, copt);
    std::printf("%-8s %15.3f%% %15.3f%% %15.1f%%\n", name,
                100.0 * m.raw_error_rate(), 100.0 * m.masked_error_rate(),
                100.0 * m.masking_effectiveness());
  }

  std::printf("\n-- biased inputs: weighted approximation %% of G = a+b for "
              "F = a+b+c'd'+cd --\n");
  {
    Network f;
    NodeId a = f.add_pi("a");
    NodeId b = f.add_pi("b");
    NodeId c = f.add_pi("c");
    NodeId d = f.add_pi("d");
    NodeId ab = f.add_or(a, b);
    NodeId xnor = f.add_node({c, d}, *Sop::parse(2, "00\n11"));
    f.add_po("F", f.add_or(ab, xnor));
    Network g;
    NodeId a2 = g.add_pi("a");
    NodeId b2 = g.add_pi("b");
    (void)g.add_pi("c");
    (void)g.add_pi("d");
    g.add_po("G", g.add_or(a2, b2));

    std::printf("%-18s %12s\n", "P[a]=P[b]", "approx %");
    for (double p : {0.1, 0.25, 0.5, 0.75, 0.9}) {
      std::vector<double> probs = {p, p, 0.5, 0.5};
      double pct = weighted_approximation_percentage(
          f, g, 0, ApproxDirection::kOneApprox, probs);
      std::printf("%-18.2f %12.1f\n", p, 100.0 * pct);
    }
    std::printf("(uniform inputs give the paper's 85.7%%)\n");
  }

  std::printf(
      "\nExpected shape: delay coverage in the same band as stuck-at\n"
      "coverage; masking removes a large share of protected-direction\n"
      "errors; weighted approximation rises with P[a]=P[b].\n");
  return 0;
}
