// Fine-grained overhead/coverage trade-off (paper Sec. 1 & 2.1 claim:
// "fine-grained trade-offs between area-power overhead and CED coverage").
//
// For three circuits, sweeps the stage-1 significance threshold and prints
// the (area overhead, power overhead, coverage) curve. The paper has no
// numbered figure for this claim; this harness regenerates the series that
// substantiates it.
#include "bench_util.hpp"

using namespace apx;
using namespace apx::bench;

int main() {
  print_header("Trade-off curves: area/power overhead vs CED coverage");

  for (const char* name : {"cmb", "term1", "dalu"}) {
    Network net = make_benchmark(name);
    std::printf("%s:\n", name);
    std::printf("  %-10s %8s %8s %10s %10s\n", "threshold", "area%", "power%",
                "coverage%", "approx%");
    PipelineResult representative;
    for (double th : {0.0, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5}) {
      PipelineResult r = run_ced_pipeline(net, tuned_options(th));
      std::printf("  %-10.2f %8.1f %8.1f %10.1f %10.1f%s\n", th,
                  r.overheads.area_overhead_pct(),
                  r.overheads.power_overhead_pct(),
                  100.0 * r.coverage.coverage(),
                  100.0 * r.mean_approximation_pct(),
                  r.synthesis.all_verified() ? "" : "  UNVERIFIED");
      if (th == 0.1) representative = std::move(r);
    }
    // Per-fault-model coverage at the mid-sweep design (th = 0.1): the
    // same CED checked under double stuck-at and burst-transient
    // injection, next to the single-stuck-at column above.
    std::printf("  fault models at th=0.10:");
    for (FaultModel model :
         {FaultModel::kSingleStuckAt, FaultModel::kMultiStuckAt,
          FaultModel::kTransientBurst}) {
      CoverageOptions o = tuned_options(0.1).coverage;
      o.model = model;
      CoverageResult c = evaluate_ced_coverage(representative.ced, o);
      std::printf("  %s %.1f%%", fault_model_name(model),
                  100.0 * c.coverage());
    }
    std::printf("\n\n");
  }
  std::printf("Expected shape: monotone-ish frontier - raising the threshold "
              "lowers\narea/power overhead and gradually cedes coverage.\n");
  return 0;
}
