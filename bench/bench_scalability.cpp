// Scalability study (paper Sec. 4 prose: the synthesis "scales with circuit
// size"; i10 — the largest benchmark — synthesized in 5m28s on 2007-era
// hardware). Uses google-benchmark to time the synthesis stages across the
// benchmark size ladder.
#include <benchmark/benchmark.h>

#include "benchmarks/benchmarks.hpp"
#include "core/approx_synthesis.hpp"
#include "core/pipeline.hpp"
#include "core/task_pool.hpp"
#include "mapping/optimize.hpp"
#include "reliability/reliability.hpp"

namespace {

using namespace apx;

const char* kLadder[] = {"cmb", "cordic", "term1", "x1", "i2", "frg2"};

void BM_ApproxSynthesis(benchmark::State& state) {
  Network net = make_benchmark(kLadder[state.range(0)]);
  Network optimized = quick_synthesis(net);
  Network mapped = technology_map(optimized);
  ReliabilityOptions rel_opt;
  rel_opt.num_fault_samples = 300;
  std::vector<ApproxDirection> dirs =
      choose_directions(analyze_reliability(mapped, rel_opt));
  ApproxOptions opt;
  opt.significance_threshold = 0.12;
  for (auto _ : state) {
    ApproxResult r = synthesize_approximation(optimized, dirs, opt);
    benchmark::DoNotOptimize(r.approx.num_nodes());
  }
  state.counters["gates"] = mapped.num_logic_nodes();
}
BENCHMARK(BM_ApproxSynthesis)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

void BM_ReliabilityAnalysis(benchmark::State& state) {
  Network mapped =
      technology_map(quick_synthesis(make_benchmark(kLadder[state.range(0)])));
  ReliabilityOptions opt;
  opt.num_fault_samples = 300;
  for (auto _ : state) {
    ReliabilityReport r = analyze_reliability(mapped, opt);
    benchmark::DoNotOptimize(r.any_output_error_rate);
  }
  state.counters["gates"] = mapped.num_logic_nodes();
}
BENCHMARK(BM_ReliabilityAnalysis)
    ->DenseRange(0, 5)
    ->Unit(benchmark::kMillisecond);

// Whole-suite scaling on the shared task pool: every circuit of the ladder
// runs as one run_ced_pipeline task, and the per-row tasks plus their inner
// fault campaigns share the pool's workers (Arg = worker cap; 1 = serial
// reference). Per-row results are bit-identical across Args by the pool's
// determinism contract.
void BM_PipelineSuite(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::vector<Network> nets;
  for (const char* name : kLadder) nets.push_back(make_benchmark(name));
  PipelineOptions opt;
  opt.approx.significance_threshold = 0.12;
  opt.reliability.num_fault_samples = 300;
  opt.coverage.num_fault_samples = 300;
  // Cap the inner loops too, so Arg(1) is a genuinely serial reference.
  opt.approx.num_threads = threads;
  opt.reliability.num_threads = threads;
  opt.coverage.num_threads = threads;
  for (auto _ : state) {
    int64_t gates = 0;
    std::vector<PipelineResult> rows(nets.size());
    TaskPool::instance().parallel_for(
        0, static_cast<int64_t>(nets.size()),
        [&](int64_t i) { rows[i] = run_ced_pipeline(nets[i], opt); },
        threads);
    for (const PipelineResult& r : rows) {
      gates += r.mapped_original.num_logic_nodes();
    }
    benchmark::DoNotOptimize(gates);
  }
}
BENCHMARK(BM_PipelineSuite)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

void BM_TechnologyMap(benchmark::State& state) {
  Network optimized = quick_synthesis(make_benchmark(kLadder[state.range(0)]));
  for (auto _ : state) {
    Network mapped = technology_map(optimized);
    benchmark::DoNotOptimize(mapped.num_nodes());
  }
}
BENCHMARK(BM_TechnologyMap)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
