// Scalability study (paper Sec. 4 prose: the synthesis "scales with circuit
// size"; i10 — the largest benchmark — synthesized in 5m28s on 2007-era
// hardware). Uses google-benchmark to time the synthesis stages across the
// benchmark size ladder.
#include <benchmark/benchmark.h>

#include "benchmarks/benchmarks.hpp"
#include "core/approx_synthesis.hpp"
#include "core/pipeline.hpp"
#include "mapping/optimize.hpp"
#include "reliability/reliability.hpp"

namespace {

using namespace apx;

const char* kLadder[] = {"cmb", "cordic", "term1", "x1", "i2", "frg2"};

void BM_ApproxSynthesis(benchmark::State& state) {
  Network net = make_benchmark(kLadder[state.range(0)]);
  Network optimized = quick_synthesis(net);
  Network mapped = technology_map(optimized);
  ReliabilityOptions rel_opt;
  rel_opt.num_fault_samples = 300;
  std::vector<ApproxDirection> dirs =
      choose_directions(analyze_reliability(mapped, rel_opt));
  ApproxOptions opt;
  opt.significance_threshold = 0.12;
  for (auto _ : state) {
    ApproxResult r = synthesize_approximation(optimized, dirs, opt);
    benchmark::DoNotOptimize(r.approx.num_nodes());
  }
  state.counters["gates"] = mapped.num_logic_nodes();
}
BENCHMARK(BM_ApproxSynthesis)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

void BM_ReliabilityAnalysis(benchmark::State& state) {
  Network mapped =
      technology_map(quick_synthesis(make_benchmark(kLadder[state.range(0)])));
  ReliabilityOptions opt;
  opt.num_fault_samples = 300;
  for (auto _ : state) {
    ReliabilityReport r = analyze_reliability(mapped, opt);
    benchmark::DoNotOptimize(r.any_output_error_rate);
  }
  state.counters["gates"] = mapped.num_logic_nodes();
}
BENCHMARK(BM_ReliabilityAnalysis)
    ->DenseRange(0, 5)
    ->Unit(benchmark::kMillisecond);

void BM_TechnologyMap(benchmark::State& state) {
  Network optimized = quick_synthesis(make_benchmark(kLadder[state.range(0)]));
  for (auto _ : state) {
    Network mapped = technology_map(optimized);
    benchmark::DoNotOptimize(mapped.num_nodes());
  }
}
BENCHMARK(BM_TechnologyMap)->DenseRange(0, 5)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
