// Table 1 (paper Sec. 4): approximation percentage and CED coverage for
// single-output cones extracted from benchmark circuits.
//
// For each source circuit the largest single-output cone is extracted, an
// approximate check function is synthesized for it, and the harness prints
// the paper's columns: gate count, area overhead %, approximation %, max
// CED coverage, and achieved CED coverage.
#include <algorithm>

#include "bench_util.hpp"
#include "mapping/optimize.hpp"
#include "sim/simulator.hpp"

using namespace apx;
using namespace apx::bench;

namespace {

struct PaperRow {
  const char* name;
  int gates;
  double area, approx, max_cov, achieved;
};

// Published Table 1 values.
const PaperRow kPaper[] = {
    {"i8", 106, 28.0, 80.0, 65.0, 50.0},
    {"des", 191, 2.7, 95.6, 56.0, 48.0},
    {"dalu", 862, 25.0, 93.8, 85.0, 71.0},
    {"i10", 1141, 1.5, 91.0, 76.0, 64.0},
};

// Extracts the single-output cone whose mapped gate count is closest to
// the paper's reported cone size (the paper extracted specific cones; the
// stand-ins' cone size distributions differ, so we match by size).
Network cone_near(const Network& net, int target_gates) {
  // Rank POs by tech-independent cone size (cheap); among the candidates of
  // roughly matching size prefer the most skewed output (the paper's Table 1
  // cones came from circuits with strongly skewed output errors).
  Simulator sim(net);
  sim.run(PatternSet::random(net.num_pis(), 64, 0xC0E5));
  std::vector<std::pair<int, int>> by_size;  // (|est - target|, po)
  for (int po = 0; po < net.num_pos(); ++po) {
    int nodes = static_cast<int>(net.cone_of({net.po(po).driver}).size());
    by_size.push_back({std::abs(nodes * 3 - target_gates), po});
  }
  std::sort(by_size.begin(), by_size.end());
  int best_po = by_size[0].second;
  double best_skew = -1.0;
  for (size_t i = 0; i < by_size.size() && i < 8; ++i) {
    // Stay within ~60% of the target size; the closest candidate is always
    // admissible.
    if (i > 0 && by_size[i].first > (target_gates * 3) / 5) break;
    int po = by_size[i].second;
    double p = sim.signal_probability(net.po(po).driver);
    double skew = std::abs(p - 0.5);
    if (skew > best_skew) {
      best_skew = skew;
      best_po = po;
    }
  }
  return net.extract_cone(best_po);
}

}  // namespace

int main() {
  print_header(
      "Table 1: Approximation percentage and CED coverage for output cones");

  std::printf("%-8s | %6s %6s %7s %7s %8s | paper: %5s %5s %6s %5s %5s\n",
              "name", "gates", "area%", "apx%", "max%", "achv%", "gates",
              "area%", "apx%", "max%", "achv%");
  std::printf("---------+---------------------------------------+"
              "--------------------------------\n");

  for (const PaperRow& ref : kPaper) {
    Network full = make_benchmark(ref.name);
    Network cone = cone_near(quick_synthesis(full), ref.gates);
    TunedRun tuned = auto_tune(cone);
    const PipelineResult& r = tuned.result;
    std::printf(
        "%-8s | %6d %6.1f %7.1f %7.1f %8.1f | paper: %5d %5.1f %6.1f "
        "%5.1f %5.1f\n",
        ref.name, r.mapped_original.num_logic_nodes(),
        r.overheads.area_overhead_pct(), 100.0 * r.mean_approximation_pct(),
        100.0 * r.reliability.max_ced_coverage,
        100.0 * r.coverage.coverage(), ref.gates, ref.area, ref.approx,
        ref.max_cov, ref.achieved);
  }
  std::printf(
      "\nExpected shape: high approximation %% at modest area overhead;\n"
      "achieved coverage tracks (and is bounded by) the max-coverage skew "
      "limit.\n");
  return 0;
}
