// Table 1 (paper Sec. 4): approximation percentage and CED coverage for
// single-output cones extracted from benchmark circuits.
//
// For each source circuit the largest single-output cone is extracted, an
// approximate check function is synthesized for it, and the harness prints
// the paper's columns: gate count, area overhead %, approximation %, max
// CED coverage, and achieved CED coverage.
#include <algorithm>
#include <bit>
#include <iterator>

#include "bench_util.hpp"
#include "core/task_pool.hpp"
#include "mapping/optimize.hpp"
#include "sim/simulator.hpp"

using namespace apx;
using namespace apx::bench;

namespace {

struct PaperRow {
  const char* name;
  int gates;
  double area, approx, max_cov, achieved;
};

// Published Table 1 values.
const PaperRow kPaper[] = {
    {"i8", 106, 28.0, 80.0, 65.0, 50.0},
    {"des", 191, 2.7, 95.6, 56.0, 48.0},
    {"dalu", 862, 25.0, 93.8, 85.0, 71.0},
    {"i10", 1141, 1.5, 91.0, 76.0, 64.0},
};

// All PO cone sizes in one reverse-topological traversal: seed a per-node
// PO-membership bitmask at each driver, sweep the masks from outputs to
// inputs (mask[fanin] |= mask[node]), and count each node into every cone
// whose bit it carries. O(N * P/64) total, where the previous per-PO
// cone_of() walk was O(P * N) — the dominant cost of this harness's PO
// ranking on wide circuits.
std::vector<int> po_cone_sizes(const Network& net) {
  const int P = net.num_pos();
  const int W = (P + 63) / 64;
  std::vector<uint64_t> mask(static_cast<size_t>(net.num_nodes()) * W, 0);
  for (int po = 0; po < P; ++po) {
    mask[static_cast<size_t>(net.po(po).driver) * W + po / 64] |=
        1ull << (po % 64);
  }
  std::vector<int> sizes(P, 0);
  std::vector<NodeId> topo = net.topo_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const uint64_t* m = &mask[static_cast<size_t>(*it) * W];
    for (int w = 0; w < W; ++w) {
      for (uint64_t bits = m[w]; bits != 0; bits &= bits - 1) {
        ++sizes[w * 64 + std::countr_zero(bits)];
      }
    }
    for (NodeId f : net.node(*it).fanins) {
      uint64_t* fm = &mask[static_cast<size_t>(f) * W];
      for (int w = 0; w < W; ++w) fm[w] |= m[w];
    }
  }
  return sizes;
}

// Extracts the single-output cone whose mapped gate count is closest to
// the paper's reported cone size (the paper extracted specific cones; the
// stand-ins' cone size distributions differ, so we match by size).
Network cone_near(const Network& net, int target_gates) {
  // Rank POs by tech-independent cone size (cheap); among the candidates of
  // roughly matching size prefer the most skewed output (the paper's Table 1
  // cones came from circuits with strongly skewed output errors).
  Simulator sim(net);
  sim.run(PatternSet::random(net.num_pis(), 64, 0xC0E5));
  std::vector<int> cone_sizes = po_cone_sizes(net);
  std::vector<std::pair<int, int>> by_size;  // (|est - target|, po)
  for (int po = 0; po < net.num_pos(); ++po) {
    by_size.push_back({std::abs(cone_sizes[po] * 3 - target_gates), po});
  }
  std::sort(by_size.begin(), by_size.end());
  int best_po = by_size[0].second;
  double best_skew = -1.0;
  for (size_t i = 0; i < by_size.size() && i < 8; ++i) {
    // Stay within ~60% of the target size; the closest candidate is always
    // admissible.
    if (i > 0 && by_size[i].first > (target_gates * 3) / 5) break;
    int po = by_size[i].second;
    double p = sim.signal_probability(net.po(po).driver);
    double skew = std::abs(p - 0.5);
    if (skew > best_skew) {
      best_skew = skew;
      best_po = po;
    }
  }
  return net.extract_cone(best_po);
}

}  // namespace

int main() {
  print_header(
      "Table 1: Approximation percentage and CED coverage for output cones");

  std::printf("%-8s | %6s %6s %7s %7s %8s | paper: %5s %5s %6s %5s %5s\n",
              "name", "gates", "area%", "apx%", "max%", "achv%", "gates",
              "area%", "apx%", "max%", "achv%");
  std::printf("---------+---------------------------------------+"
              "--------------------------------\n");

  // One pool task per circuit row; idle workers also drain the campaigns
  // inside each pipeline (nested submission), so the suite scales even when
  // one row dominates. Results land in row order and print serially.
  const int num_rows = static_cast<int>(std::size(kPaper));
  std::vector<TunedRun> rows(num_rows);
  TaskPool::instance().parallel_for(0, num_rows, [&](int64_t i) {
    const PaperRow& ref = kPaper[i];
    Network full = make_benchmark(ref.name);
    Network cone = cone_near(quick_synthesis(full), ref.gates);
    rows[i] = auto_tune(cone);
  });
  for (int i = 0; i < num_rows; ++i) {
    const PaperRow& ref = kPaper[i];
    const PipelineResult& r = rows[i].result;
    std::printf(
        "%-8s | %6d %6.1f %7.1f %7.1f %8.1f | paper: %5d %5.1f %6.1f "
        "%5.1f %5.1f\n",
        ref.name, r.mapped_original.num_logic_nodes(),
        r.overheads.area_overhead_pct(), 100.0 * r.mean_approximation_pct(),
        100.0 * r.reliability.max_ced_coverage,
        100.0 * r.coverage.coverage(), ref.gates, ref.area, ref.approx,
        ref.max_cov, ref.achieved);
  }
  std::printf(
      "\nExpected shape: high approximation %% at modest area overhead;\n"
      "achieved coverage tracks (and is bounded by) the max-coverage skew "
      "limit.\n");
  return 0;
}
