// Table 2 (paper Sec. 4): area/power overhead and CED coverage for the full
// MCNC benchmark set, comparing four techniques:
//   1. approximate-logic CED, no logic sharing (proposed, non-intrusive)
//   2. approximate-logic CED with logic sharing (proposed, intrusive)
//   3. partial duplication [10] at matched coverage (intrusive baseline)
//   4. single-bit parity prediction (non-intrusive baseline)
#include <algorithm>
#include <iterator>

#include "baselines/parity.hpp"
#include "baselines/partial_duplication.hpp"
#include "bench_util.hpp"
#include "core/task_pool.hpp"

using namespace apx;
using namespace apx::bench;

namespace {

struct PaperRow {
  const char* name;
  int gates;
  double max_cov;
  double ns_area, ns_power, ns_cov;    // no sharing
  double ls_area, ls_cov;              // with sharing
  double pd_area, pd_power, pd_cov;    // partial duplication
  double pp_area, pp_power, pp_cov;    // parity prediction
};

const PaperRow kPaper[] = {
    {"cmb", 57, 99.7, 32, 26, 98, 29, 98, 48, 32, 98, 87, 43, 66},
    {"cordic", 116, 88, 28, 37, 82, 24, 82, 26, 22, 82, 29, 33, 71},
    {"term1", 260, 82, 15, 25, 71, 13, 70, 17, 19, 70, 100, 101, 92},
    {"x1", 442, 78, 36, 45, 68, 26, 65, 30, 37, 68, 125, 120, 86},
    {"i2", 440, 89, 5, 6, 84, 3, 83, 6, 4, 82, 100, 100, 100},
    {"frg2", 1089, 90, 30, 47, 80, 22, 75, 46, 48, 79, 161, 133, 91},
    {"dalu", 1166, 92, 21, 35, 80, 15, 77, 44, 44, 77, 110, 109, 94},
    {"i10", 2866, 85, 36, 56, 81, 30, 77, 54, 49, 81, 139, 135, 64},
};

}  // namespace

int main() {
  print_header(
      "Table 2: Area-power overhead and CED coverage for MCNC circuits");

  std::printf("%-7s %6s %6s | %-22s | %-13s | %-22s | %-22s\n", "", "", "max",
              "no sharing", "sharing", "partial dup [10]", "parity");
  std::printf("%-7s %6s %6s | %6s %6s %8s | %6s %6s | %6s %6s %8s | %6s %6s %8s\n",
              "name", "gates", "cov%", "area%", "pow%", "cov%", "area%",
              "cov%", "area%", "pow%", "cov%", "area%", "pow%", "cov%");
  std::printf("--------------------------------------------------------------"
              "----------------------------------------------\n");

  // One pool task per circuit row (the heavyweight i10/dalu rows dominate;
  // idle workers drain their inner fault campaigns via nested submission).
  // Each task fills a Row slot; printing stays serial and in table order.
  struct Row {
    int gates = 0;
    double vals[12] = {0};
    double seconds = 0.0;
  };
  const int num_rows = static_cast<int>(std::size(kPaper));
  std::vector<Row> results(num_rows);
  TaskPool::instance().parallel_for(0, num_rows, [&](int64_t row) {
    const PaperRow& ref = kPaper[row];
    Network net = make_benchmark(ref.name);
    Stopwatch watch;

    // Proposed technique, auto-tuned threshold, without sharing.
    TunedRun plain = auto_tune(net);
    // Same threshold, with logic sharing.
    PipelineResult shared =
        run_ced_pipeline(net, tuned_options(plain.threshold, true));

    // Partial duplication tuned to match the no-sharing coverage.
    double target = plain.result.coverage.coverage();
    PartialDuplicationOptions pd_opt;
    pd_opt.num_fault_samples = scaled(800);
    PartialDuplicationResult pdup = build_partial_duplication(
        plain.result.mapped_original, target, pd_opt);
    CoverageOptions cov_opt;
    cov_opt.num_fault_samples = scaled(1500);
    cov_opt.num_threads = bench_threads();
    CoverageResult pd_cov = evaluate_ced_coverage(pdup.ced, cov_opt);
    OverheadReport pd_over = measure_overheads(pdup.ced);

    // Parity prediction.
    CedDesign parity = build_parity_ced(plain.result.mapped_original);
    CoverageResult pp_cov = evaluate_ced_coverage(parity, cov_opt);
    OverheadReport pp_over = measure_overheads(parity);

    const PipelineResult& r = plain.result;
    Row& out = results[row];
    out.gates = r.mapped_original.num_logic_nodes();
    double vals[12] = {
        100.0 * r.reliability.max_ced_coverage,
        r.overheads.area_overhead_pct(),
        r.overheads.power_overhead_pct(),
        100.0 * r.coverage.coverage(),
        shared.overheads.area_overhead_pct(),
        100.0 * shared.coverage.coverage(),
        pd_over.area_overhead_pct(),
        pd_over.power_overhead_pct(),
        100.0 * pd_cov.coverage(),
        pp_over.area_overhead_pct(),
        pp_over.power_overhead_pct(),
        100.0 * pp_cov.coverage(),
    };
    std::copy(std::begin(vals), std::end(vals), std::begin(out.vals));
    out.seconds = watch.seconds();
  });

  double mean[12] = {0};
  int rows = 0;
  for (int row = 0; row < num_rows; ++row) {
    const PaperRow& ref = kPaper[row];
    const double* vals = results[row].vals;
    for (int i = 0; i < 12; ++i) mean[i] += vals[i];
    ++rows;

    std::printf("%-7s %6d %6.1f | %6.1f %6.1f %8.1f | %6.1f %6.1f | %6.1f "
                "%6.1f %8.1f | %6.1f %6.1f %8.1f   (%.0fs)\n",
                ref.name, results[row].gates, vals[0],
                vals[1], vals[2], vals[3], vals[4], vals[5], vals[6], vals[7],
                vals[8], vals[9], vals[10], vals[11], results[row].seconds);
    std::printf("%-7s %6d %6.1f | %6.1f %6.1f %8.1f | %6.1f %6.1f | %6.1f "
                "%6.1f %8.1f | %6.1f %6.1f %8.1f   [paper]\n",
                "", ref.gates, ref.max_cov, ref.ns_area, ref.ns_power,
                ref.ns_cov, ref.ls_area, ref.ls_cov, ref.pd_area,
                ref.pd_power, ref.pd_cov, ref.pp_area, ref.pp_power,
                ref.pp_cov);
  }
  std::printf("--------------------------------------------------------------"
              "----------------------------------------------\n");
  std::printf("%-7s %6s %6.1f | %6.1f %6.1f %8.1f | %6.1f %6.1f | %6.1f %6.1f "
              "%8.1f | %6.1f %6.1f %8.1f\n",
              "mean", "", mean[0] / rows, mean[1] / rows, mean[2] / rows,
              mean[3] / rows, mean[4] / rows, mean[5] / rows, mean[6] / rows,
              mean[7] / rows, mean[8] / rows, mean[9] / rows, mean[10] / rows,
              mean[11] / rows);
  std::printf(
      "\nExpected shape (paper): proposed <= partial duplication in area at\n"
      "matched coverage; sharing shaves a few more points of area; parity\n"
      "prediction costs ~3x more area/power for ~2%% more coverage.\n");
  return 0;
}
