// Shared utilities for the paper-table bench harnesses: environment-driven
// effort scaling, auto-tuning of the significance threshold, and table
// printing. Every bench prints the paper's reported numbers alongside the
// measured ones (see EXPERIMENTS.md for the comparison discussion).
#pragma once

#include <chrono>
#include <optional>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "core/pipeline.hpp"
#include "sim/kernels.hpp"

namespace apx::bench {

/// Effort multiplier: APXCED_SCALE=10 multiplies all fault-sample budgets
/// (default 1 keeps the full default run under ~10 minutes on one core).
inline double effort_scale() {
  const char* env = std::getenv("APXCED_SCALE");
  if (env == nullptr) return 1.0;
  double v = std::atof(env);
  return v > 0 ? v : 1.0;
}

inline int scaled(int base) {
  return static_cast<int>(base * effort_scale());
}

/// Fault-simulation worker threads: APXCED_THREADS=<n> pins the count,
/// default 0 lets the engine use all hardware threads. Results are
/// bit-identical either way.
inline int bench_threads() {
  const char* env = std::getenv("APXCED_THREADS");
  if (env == nullptr) return 0;
  int v = std::atoi(env);
  return v > 0 ? v : 0;
}

/// Standard pipeline options at a given threshold with scaled budgets.
inline PipelineOptions tuned_options(double threshold, bool sharing = false) {
  PipelineOptions opt;
  opt.approx.significance_threshold = threshold;
  opt.reliability.num_fault_samples = scaled(1500);
  opt.reliability.num_threads = bench_threads();
  opt.coverage.num_fault_samples = scaled(1500);
  opt.coverage.num_threads = bench_threads();
  opt.logic_sharing = sharing;
  return opt;
}

/// Auto-tunes the significance threshold like the paper's per-circuit
/// tuning: sweep a ladder of thresholds and keep the knee-point
/// configuration maximizing coverage - lambda * area_overhead (lambda
/// trades one point of coverage against four points of area).
struct TunedRun {
  double threshold = 0.0;
  PipelineResult result;
};

inline TunedRun auto_tune(const Network& net, double lambda = 0.25,
                          bool sharing = false) {
  std::vector<double> ladder = {0.05, 0.12, 0.2, 0.3, 0.45};
  std::optional<TunedRun> chosen;
  double best_score = -1e9;
  for (double th : ladder) {
    TunedRun run;
    run.threshold = th;
    run.result = run_ced_pipeline(net, tuned_options(th, sharing));
    double score = 100.0 * run.result.coverage.coverage() -
                   lambda * run.result.overheads.area_overhead_pct();
    if (score > best_score) {
      best_score = score;
      chosen = std::move(run);
    }
  }
  return std::move(*chosen);
}

/// Host/run metadata block for every bench JSON artifact. A regressing
/// snapshot produced on a small runner (where parallel speedup gates are
/// advisory) must be distinguishable from a gated one, so each artifact
/// records the physical core count, the thread-policy environment pins in
/// effect, and the SIMD substrate actually dispatched at startup:
/// `simd_width_bits` is the active kernel lane width (64 scalar / 256 AVX2
/// / 512 AVX-512) and `simd_policy` records how it was chosen ("auto",
/// an APX_SIMD pin, or a clamp like "avx512->avx2(unsupported)"). Emits
/// four `"key": value,` lines at the given indent; callers place it among
/// their top-level fields.
inline void write_host_metadata(std::FILE* f, const char* indent = "  ") {
  const char* apx_threads = std::getenv("APX_THREADS");
  const char* ced_threads = std::getenv("APXCED_THREADS");
  std::fprintf(f, "%s\"host_cores\": %u,\n", indent,
               std::thread::hardware_concurrency());
  std::fprintf(f, "%s\"thread_policy\": \"APX_THREADS=%s APXCED_THREADS=%s\",\n",
               indent, apx_threads != nullptr ? apx_threads : "unset",
               ced_threads != nullptr ? ced_threads : "unset");
  std::fprintf(f, "%s\"simd_width_bits\": %d,\n", indent, simd::width_bits());
  std::fprintf(f, "%s\"simd_policy\": \"%s\",\n", indent, simd::policy());
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_header(const std::string& title) {
  std::printf("%s\n", title.c_str());
  std::printf("(measured on generated MCNC-profile stand-ins; paper columns "
              "are the published values — compare shapes, not absolutes; "
              "see DESIGN.md)\n\n");
}

}  // namespace apx::bench
