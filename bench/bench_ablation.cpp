// Ablation study over the design choices DESIGN.md calls out:
//   A. ODC-based repair on/off (paper Sec. 2.2 first-attempt repair)
//   B. DC-cube dropping in stage 1 on/off (DC cone removal)
//   C. strict vs observability-based EX fanin requests (see DESIGN.md)
//
// Each configuration reports check-generator area overhead, CED coverage,
// POs correct after stage 1, and repair count.
#include "bench_util.hpp"

using namespace apx;
using namespace apx::bench;

namespace {

struct Config {
  const char* name;
  bool odc;
  bool drop_dc;
  bool conformance;
  bool strict_ex;
};

const Config kConfigs[] = {
    {"full (default)", true, true, true, false},
    {"no ODC repair", false, true, true, false},
    {"no DC-cube drop", true, false, true, false},
    {"no conformance filter", true, true, false, false},
    {"strict EX requests", true, true, true, true},
};

}  // namespace

int main() {
  print_header("Ablation: contribution of each synthesis ingredient");

  for (const char* bench : {"cordic", "term1", "dalu"}) {
    Network net = make_benchmark(bench);
    std::printf("%s:\n", bench);
    std::printf("  %-22s %8s %10s %12s %9s\n", "configuration", "area%",
                "coverage%", "stage1-ok", "repairs");
    for (const Config& config : kConfigs) {
      PipelineOptions opt = tuned_options(0.2);
      opt.approx.use_odc_repair = config.odc;
      opt.approx.drop_dc_cubes = config.drop_dc;
      opt.approx.conformance_filter = config.conformance;
      opt.approx.type_options.strict_ex_requests = config.strict_ex;
      PipelineResult r = run_ced_pipeline(net, opt);
      std::printf("  %-22s %8.1f %10.1f %8d/%-3d %9d%s\n", config.name,
                  r.overheads.area_overhead_pct(),
                  100.0 * r.coverage.coverage(),
                  r.synthesis.correct_after_stage1,
                  static_cast<int>(r.synthesis.po_stats.size()),
                  r.synthesis.repairs,
                  r.synthesis.all_verified() ? "" : "  UNVERIFIED");
    }
    std::printf("\n");
  }
  std::printf(
      "Expected shape: the full configuration achieves the lowest area at\n"
      "comparable coverage; disabling DC-cube dropping raises area;\n"
      "disabling ODC repair forces more exact selections (area up or\n"
      "approximation down); strict EX floods exactness through the cone.\n");
  return 0;
}
