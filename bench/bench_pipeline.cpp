// End-to-end pipeline scaling benchmark: the full CED suite (one
// run_ced_pipeline row per circuit, rows running as shared-pool tasks whose
// inner fault campaigns and oracle sweeps also ride the pool) at 1 worker
// vs all workers. The pool's determinism contract requires every per-row
// output — gate counts, approximation %, coverage counts — to be
// bit-identical across the two runs; any drift fails the benchmark.
// Emits BENCH_pipeline.json (fields documented in EXPERIMENTS.md).
//
// A third run with tracing enabled (core/trace.hpp) must reproduce the
// same rows bit-for-bit — instrumentation is observability, not a third
// source of nondeterminism — and contributes the per-phase wall-time
// breakdown exported in the JSON's "phases" array.
//
// Exit code: non-zero when the runs are not bit-identical, or when the
// parallel run falls below the 2.5x speedup gate on hardware with >= 4
// cores (the gate is advisory-only on smaller machines, where the pool
// cannot physically reach it; the JSON records which case applied).
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/task_pool.hpp"
#include "core/trace.hpp"
#include "network/ordering.hpp"

using namespace apx;
using namespace apx::bench;

namespace {

const char* kSuite[] = {"cmb", "cordic", "term1", "x1", "i2"};
constexpr int kNumRows = static_cast<int>(sizeof(kSuite) / sizeof(kSuite[0]));
constexpr double kSpeedupGate = 2.5;

struct Row {
  int gates = 0;
  int checkgen_gates = 0;
  double approx_pct = 0.0;
  double area_overhead_pct = 0.0;
  int64_t erroneous = 0;
  int64_t detected = 0;
  double coverage_pct = 0.0;
};

struct SuiteRun {
  double seconds = 0.0;
  std::vector<Row> rows;
};

// Doubles compared as bit patterns: the contract is bit-identity, not
// epsilon-closeness.
bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool rows_identical(const std::vector<Row>& a, const std::vector<Row>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].gates != b[i].gates ||
        a[i].checkgen_gates != b[i].checkgen_gates ||
        a[i].erroneous != b[i].erroneous ||
        a[i].detected != b[i].detected ||
        !same_bits(a[i].approx_pct, b[i].approx_pct) ||
        !same_bits(a[i].area_overhead_pct, b[i].area_overhead_pct)) {
      return false;
    }
  }
  return true;
}

SuiteRun run_suite(const std::vector<Network>& nets, int threads,
                   bool cold_order_cache = true) {
  PipelineOptions opt;
  opt.approx.significance_threshold = 0.12;
  opt.reliability.num_fault_samples = scaled(1200);
  opt.coverage.num_fault_samples = scaled(1200);
  // Explicit caps everywhere so `threads` bounds the whole process: the
  // row tasks, the campaigns inside them, and the synthesis oracle sweeps.
  opt.approx.num_threads = threads;
  opt.reliability.num_threads = threads;
  opt.coverage.num_threads = threads;

  SuiteRun run;
  run.rows.resize(kNumRows);
  // Both timed runs start with a cold order cache so the serial baseline
  // and the parallel run measure the same work: the cache's within-run win
  // — reusing a converged variable order across the oracle rebuilds one
  // pipeline performs per circuit — is counted, never leaked between the
  // timed runs. The traced observability pass keeps the cache warm
  // instead: its phase table is the steady-state profile, where a repeat
  // invocation re-sifts nothing.
  if (cold_order_cache) OrderCache::instance().clear();
  Stopwatch watch;
  TaskPool::instance().parallel_for(
      0, kNumRows,
      [&](int64_t i) {
        PipelineResult r = run_ced_pipeline(nets[i], opt);
        Row& row = run.rows[i];
        row.gates = r.mapped_original.num_logic_nodes();
        row.checkgen_gates = r.mapped_checkgen.num_logic_nodes();
        row.approx_pct = 100.0 * r.mean_approximation_pct();
        row.area_overhead_pct = r.overheads.area_overhead_pct();
        row.erroneous = r.coverage.erroneous;
        row.detected = r.coverage.detected;
        row.coverage_pct = 100.0 * r.coverage.coverage();
      },
      threads);
  run.seconds = watch.seconds();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_pipeline.json";

  std::vector<Network> nets;
  for (const char* name : kSuite) nets.push_back(make_benchmark(name));

  // Worker count follows the APX_THREADS policy; the speedup gate keys off
  // the physical core count (a policy override on a small box still
  // exercises real multi-threaded determinism, but cannot hit 2.5x).
  const int policy = thread_count();
  const int parallel_threads = policy > 1 ? policy : 1;
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  std::printf("bench_pipeline: %d-circuit CED suite, 1 vs %d pool workers "
              "(hardware_concurrency: %d)\n\n",
              kNumRows, parallel_threads, hw);

  SuiteRun serial = run_suite(nets, 1);
  std::printf("%-24s %8.3fs\n", "suite, 1 thread", serial.seconds);
  SuiteRun parallel = run_suite(nets, parallel_threads);
  std::printf("%-24s %8.3fs\n",
              ("suite, " + std::to_string(parallel_threads) + " threads")
                  .c_str(),
              parallel.seconds);

  // Third pass with tracing enabled: the rows must still be bit-identical
  // (spans/counters observe, they must not perturb; queries are
  // order-invariant, so a warm cache cannot change them either), and its
  // phase summary becomes the exported per-phase breakdown. This pass
  // reuses the orders converged during the parallel run — the profile it
  // exports is the steady state the order cache exists to reach, with
  // cold sifting visible in serial_seconds/parallel_seconds instead.
  trace::reset();
  trace::set_trace_enabled(true);
  SuiteRun profiled = run_suite(nets, parallel_threads,
                                /*cold_order_cache=*/false);
  trace::set_trace_enabled(false);
  const std::vector<trace::PhaseStat> phases = trace::phase_summary();
  const std::vector<trace::CounterStat> counters = trace::counter_summary();
  std::printf("%-24s %8.3fs (tracing enabled)\n", "suite, traced",
              profiled.seconds);

  const bool identical = rows_identical(serial.rows, parallel.rows);
  const bool profiled_identical =
      rows_identical(parallel.rows, profiled.rows);
  const double speedup =
      parallel.seconds > 0.0 ? serial.seconds / parallel.seconds : 0.0;
  // The 2.5x bar needs real cores; enforce it only where they exist.
  const bool enforce_gate = hw >= 4 && parallel_threads >= 4;

  std::printf("\nsuite speedup at %d threads: %.2fx (gate %.1fx, %s)\n",
              parallel_threads, speedup, kSpeedupGate,
              enforce_gate ? "enforced" : "advisory: < 4 cores");
  std::printf("per-row outputs bit-identical: %s\n",
              identical ? "yes" : "NO");
  std::printf("traced rerun bit-identical:    %s\n\n",
              profiled_identical ? "yes" : "NO");

  std::printf("%-8s %7s %9s %7s %7s %7s\n", "circuit", "gates", "checkgen",
              "apx%", "cov%", "area%");
  for (int i = 0; i < kNumRows; ++i) {
    const Row& r = parallel.rows[i];
    std::printf("%-8s %7d %9d %7.1f %7.1f %7.1f\n", kSuite[i], r.gates,
                r.checkgen_gates, r.approx_pct, r.coverage_pct,
                r.area_overhead_pct);
  }

  std::printf("\n%-36s %8s %12s %12s\n", "phase", "count", "total_ms",
              "self_ms");
  for (const trace::PhaseStat& p : phases) {
    std::printf("%-36s %8lld %12.2f %12.2f\n", p.name.c_str(),
                static_cast<long long>(p.count), p.total_ms, p.self_ms);
  }
  std::printf("\n%-36s %12s\n", "counter", "value");
  for (const trace::CounterStat& c : counters) {
    std::printf("%-36s %12lld\n", c.name.c_str(),
                static_cast<long long>(c.value));
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"suite\": [");
  for (int i = 0; i < kNumRows; ++i) {
    std::fprintf(f, "\"%s\"%s", kSuite[i], i + 1 < kNumRows ? ", " : "");
  }
  std::fprintf(f, "],\n");
  std::fprintf(f, "  \"fault_samples\": %d,\n", scaled(1200));
  std::fprintf(f, "  \"hardware_concurrency\": %d,\n", hw);
  write_host_metadata(f);
  std::fprintf(f, "  \"threads_parallel\": %d,\n", parallel_threads);
  std::fprintf(f, "  \"serial_seconds\": %.4f,\n", serial.seconds);
  std::fprintf(f, "  \"parallel_seconds\": %.4f,\n", parallel.seconds);
  std::fprintf(f, "  \"speedup\": %.2f,\n", speedup);
  std::fprintf(f, "  \"speedup_gate\": %.1f,\n", kSpeedupGate);
  std::fprintf(f, "  \"gate_enforced\": %s,\n",
               enforce_gate ? "true" : "false");
  std::fprintf(f, "  \"rows_bit_identical\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(f, "  \"profiled_identical\": %s,\n",
               profiled_identical ? "true" : "false");
  std::fprintf(f, "  \"phases\": [\n");
  for (size_t i = 0; i < phases.size(); ++i) {
    const trace::PhaseStat& p = phases[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"count\": %lld, "
                 "\"total_ms\": %.3f, \"self_ms\": %.3f}%s\n",
                 p.name.c_str(), static_cast<long long>(p.count), p.total_ms,
                 p.self_ms, i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // Counters from the traced pass (flat name -> value map): the CI gate
  // reads bdd.order_cache_hits / bdd.reorder_skipped_budget from here.
  std::fprintf(f, "  \"counters\": {\n");
  for (size_t i = 0; i < counters.size(); ++i) {
    std::fprintf(f, "    \"%s\": %lld%s\n", counters[i].name.c_str(),
                 static_cast<long long>(counters[i].value),
                 i + 1 < counters.size() ? "," : "");
  }
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"rows\": [\n");
  for (int i = 0; i < kNumRows; ++i) {
    const Row& r = parallel.rows[i];
    std::fprintf(f,
                 "    {\"circuit\": \"%s\", \"gates\": %d, "
                 "\"checkgen_gates\": %d, \"approx_pct\": %.2f, "
                 "\"coverage_pct\": %.2f, \"area_overhead_pct\": %.2f, "
                 "\"erroneous\": %lld, \"detected\": %lld}%s\n",
                 kSuite[i], r.gates, r.checkgen_gates, r.approx_pct,
                 r.coverage_pct, r.area_overhead_pct,
                 static_cast<long long>(r.erroneous),
                 static_cast<long long>(r.detected),
                 i + 1 < kNumRows ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!identical || !profiled_identical) return 1;
  if (enforce_gate && speedup < kSpeedupGate) return 1;
  return 0;
}
