// Verification-oracle benchmark: full-rebuild vs incremental ApproxOracle
// on a Table-2-sized repair loop (the stage-2 pattern of the synthesis
// flow: mutate one node's SOP, refresh the oracle, re-verify every PO).
// The two modes must agree bit-for-bit on every verify() answer and every
// approximation percentage; the incremental oracle must clear a 3x
// end-to-end speedup. Emits BENCH_verify.json (fields documented in
// EXPERIMENTS.md).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/verify.hpp"

using namespace apx;
using namespace apx::bench;

namespace {

// One scripted "repair": overwrite a node's SOP (alternating between a
// weakened function and the original), mirroring fix_node's mutations.
struct Repair {
  NodeId node;
  Sop sop;
};

std::vector<Repair> make_script(const Network& net, int num_repairs) {
  // Candidate sites: multi-cube logic nodes, spread across the circuit.
  std::vector<NodeId> sites;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    const Node& n = net.node(id);
    if (n.kind == NodeKind::kLogic && n.sop.num_cubes() >= 2) {
      sites.push_back(id);
    }
  }
  std::vector<Repair> script;
  for (int i = 0; i < num_repairs; ++i) {
    NodeId id = sites[(i * 7919) % sites.size()];
    const Sop& orig = net.node(id).sop;
    if (i % 2 == 0) {
      // Weaken: drop the last cube (shrinks the node's onset).
      std::vector<Cube> cubes(orig.cubes().begin(), orig.cubes().end() - 1);
      script.push_back({id, Sop(orig.num_vars(), std::move(cubes))});
    } else {
      script.push_back({id, orig});  // restore the exact function
    }
  }
  return script;
}

struct RunResult {
  double seconds = 0.0;
  std::vector<uint8_t> verdicts;
  std::vector<double> pcts;
  ApproxOracle::Stats stats;
  bool used_bdds = false;
  double avg_probe_length = 0.0;
  BddManager::Stats bdd_stats;  // zeroes when the BDD path never activated
};

RunResult run_mode(const Network& net, const std::vector<Repair>& script,
                   ApproxOracle::RefreshMode mode, size_t budget) {
  Network approx = net;
  RunResult r;
  Stopwatch watch;
  ApproxOracle oracle(net, approx, budget, mode);
  for (const Repair& rep : script) {
    approx.set_sop(rep.node, rep.sop);
    oracle.refresh_approx();
    for (int po = 0; po < net.num_pos(); ++po) {
      r.verdicts.push_back(
          oracle.verify(po, ApproxDirection::kOneApprox) ? 1 : 0);
      r.pcts.push_back(oracle.approximation_pct(po, ApproxDirection::kOneApprox));
    }
  }
  r.seconds = watch.seconds();
  r.stats = oracle.oracle_stats();
  r.used_bdds = oracle.using_bdds();
  if (r.used_bdds) {
    r.bdd_stats = oracle.manager().stats();
    r.avg_probe_length = r.bdd_stats.avg_probe_length();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_verify.json";
  // term1 is the largest Table-2 stand-in whose global BDDs stay
  // comfortably inside the budget, so the headline measures the
  // dirty-cone BDD refresh (the SAT fallback chain has its own tests).
  const std::string circuit = argc > 2 ? argv[2] : "term1";
  const size_t budget = 1u << 20;

  Network net = make_benchmark(circuit);
  const int num_repairs = scaled(160);
  std::vector<Repair> script = make_script(net, num_repairs);

  std::printf("bench_verify: %s (%d PIs, %d POs, %d gates), %d scripted "
              "repairs x %d PO checks\n\n",
              circuit.c_str(), net.num_pis(), net.num_pos(), net.num_logic_nodes(),
              num_repairs, net.num_pos());

  RunResult full = run_mode(net, script,
                            ApproxOracle::RefreshMode::kFullRebuild, budget);
  std::printf("full rebuild per repair:   %8.3fs  (%llu oracle rebuilds)\n",
              full.seconds,
              static_cast<unsigned long long>(full.stats.full_rebuilds));
  RunResult inc = run_mode(net, script,
                           ApproxOracle::RefreshMode::kIncremental, budget);
  std::printf("incremental dirty-cone:    %8.3fs  (%llu node BDDs re-derived, "
              "%llu GC runs)\n",
              inc.seconds,
              static_cast<unsigned long long>(inc.stats.bdd_nodes_rebuilt),
              static_cast<unsigned long long>(inc.stats.gc_runs));

  bool verdicts_identical = full.verdicts == inc.verdicts;
  // Canonical BDDs make the minterm counts bit-identical, not merely close.
  bool pcts_identical =
      full.pcts.size() == inc.pcts.size() &&
      std::memcmp(full.pcts.data(), inc.pcts.data(),
                  full.pcts.size() * sizeof(double)) == 0;
  double speedup = full.seconds / inc.seconds;

  // Hash-quality assertion for the flat unique table: near-collision-free
  // probing on a real workload (see BddManager::Stats).
  bool probes_ok = !inc.used_bdds || inc.avg_probe_length < 4.0;

  std::printf("\nspeedup: %.1fx   verdicts bit-identical: %s   "
              "pcts bit-identical: %s\n",
              speedup, verdicts_identical ? "yes" : "NO",
              pcts_identical ? "yes" : "NO");
  std::printf("BDD path active: %s   avg unique-table probe length: %.3f\n",
              inc.used_bdds ? "yes" : "no", inc.avg_probe_length);
  std::printf("BDD arena: peak %llu nodes, %llu GC runs, %llu reorders "
              "(%.1f ms sifting)\n",
              static_cast<unsigned long long>(inc.bdd_stats.peak_nodes),
              static_cast<unsigned long long>(inc.bdd_stats.gc_runs),
              static_cast<unsigned long long>(inc.bdd_stats.reorder_runs),
              inc.bdd_stats.reorder_time_ms);

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  apx::bench::write_host_metadata(f);
  std::fprintf(f, "  \"circuit\": \"%s\",\n", circuit.c_str());
  std::fprintf(f, "  \"pis\": %d,\n", net.num_pis());
  std::fprintf(f, "  \"pos\": %d,\n", net.num_pos());
  std::fprintf(f, "  \"gates\": %d,\n", net.num_logic_nodes());
  std::fprintf(f, "  \"repairs\": %d,\n", num_repairs);
  std::fprintf(f, "  \"queries\": %zu,\n", full.verdicts.size());
  std::fprintf(f, "  \"bdd_budget\": %zu,\n", budget);
  std::fprintf(f, "  \"bdd_path_active\": %s,\n",
               inc.used_bdds ? "true" : "false");
  std::fprintf(f,
               "  \"full_rebuild\": {\"seconds\": %.4f, \"rebuilds\": %llu},\n",
               full.seconds,
               static_cast<unsigned long long>(full.stats.full_rebuilds));
  std::fprintf(
      f,
      "  \"incremental\": {\"seconds\": %.4f, \"refreshes\": %llu, "
      "\"bdd_nodes_rebuilt\": %llu, \"sat_nodes_reencoded\": %llu, "
      "\"gc_runs\": %llu, \"structural_hits\": %llu, \"bdd_queries\": %llu, "
      "\"sat_queries\": %llu},\n",
      inc.seconds, static_cast<unsigned long long>(inc.stats.incremental_refreshes),
      static_cast<unsigned long long>(inc.stats.bdd_nodes_rebuilt),
      static_cast<unsigned long long>(inc.stats.sat_nodes_reencoded),
      static_cast<unsigned long long>(inc.stats.gc_runs),
      static_cast<unsigned long long>(inc.stats.structural_hits),
      static_cast<unsigned long long>(inc.stats.bdd_queries),
      static_cast<unsigned long long>(inc.stats.sat_queries));
  std::fprintf(f, "  \"avg_unique_probe_length\": %.4f,\n",
               inc.avg_probe_length);
  std::fprintf(f,
               "  \"bdd\": {\"peak_nodes\": %llu, \"gc_runs\": %llu, "
               "\"reorder_runs\": %llu, \"reorder_time_ms\": %.3f},\n",
               static_cast<unsigned long long>(inc.bdd_stats.peak_nodes),
               static_cast<unsigned long long>(inc.bdd_stats.gc_runs),
               static_cast<unsigned long long>(inc.bdd_stats.reorder_runs),
               inc.bdd_stats.reorder_time_ms);
  std::fprintf(f, "  \"speedup\": %.2f,\n", speedup);
  std::fprintf(f, "  \"verdicts_bit_identical\": %s,\n",
               verdicts_identical ? "true" : "false");
  std::fprintf(f, "  \"pcts_bit_identical\": %s\n",
               pcts_identical ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  // CI gate: the incremental oracle must stay >= 3x ahead of full rebuilds
  // with bit-identical answers and a healthy unique table.
  return (speedup >= 3.0 && verdicts_identical && pcts_identical && probes_ok)
             ? 0
             : 1;
}
