// AIG substrate benchmark: the quick-synthesis scale gates. Measures the
// pieces the 10k-gate flow leans on —
//  * BLIF reader throughput (single-pass tokenizer + DFS dependency
//    resolution; a reverse-ordered netlist is the old resolver's quadratic
//    worst case),
//  * Network -> AIG -> rewrite -> Network on the two registered large
//    benchmarks (mult32: a 32x32 array multiplier, ~0% expected rewrite
//    gain because adder arrays are already 4-cut-optimal; aes_rp: an
//    AES-round-profile netlist where NPN cut rewriting earns >= 10%),
//  * SAT-verified round-trip equivalence over the full registered suite
//    plus bit-parallel simulation differentials on the large pair,
//  * the end-to-end CED pipeline on aes_rp (>= 10k mapped gates) under the
//    bench-tuned options, which exercises the AIG quick-synthesis path
//    inside run_ced_pipeline.
// Emits BENCH_aig.json (fields documented in EXPERIMENTS.md). Exit status
// enforces the gates: aes_rp AND reduction >= 10%, every equivalence check
// green, e2e wall clock within budget, and the e2e circuit really mapping
// to >= 10k gates.
#include <cstdio>
#include <string>
#include <vector>

#include "aig/aig.hpp"
#include "aig/convert.hpp"
#include "aig/rewrite.hpp"
#include "bench_util.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/pipeline.hpp"
#include "network/blif.hpp"
#include "network/network.hpp"
#include "sat/encode.hpp"
#include "sat/solver.hpp"
#include "sim/simulator.hpp"

using namespace apx;
using namespace apx::bench;

namespace {

size_t count_lines(const std::string& text) {
  size_t n = 1;
  for (char c : text) n += (c == '\n');
  return n;
}

// Reverse-ordered inverter chain: every table's fanin is defined after it.
std::string make_reverse_chain_blif(int chain) {
  std::string text = ".model rev\n.inputs x0\n.outputs y\n";
  text.reserve(text.size() + static_cast<size_t>(chain) * 24);
  text += ".names x" + std::to_string(chain) + " y\n1 1\n";
  for (int i = chain; i >= 1; --i) {
    text += ".names x" + std::to_string(i - 1) + " x" + std::to_string(i) +
            "\n0 1\n";
  }
  text += ".end\n";
  return text;
}

// Shared-solver SAT miter: every PO pair must be UNSAT-inequivalent.
bool all_pos_equivalent(const Network& a, const Network& b) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) return false;
  SatSolver solver;
  std::vector<int> pi_vars;
  for (int i = 0; i < a.num_pis(); ++i) pi_vars.push_back(solver.new_var());
  const std::vector<int> va = encode_network(solver, a, pi_vars);
  const std::vector<int> vb = encode_network(solver, b, pi_vars);
  for (int i = 0; i < a.num_pos(); ++i) {
    const Lit la(va[a.po(i).driver], false);
    const Lit lb(vb[b.po(i).driver], false);
    const Lit lx(solver.new_var(), false);
    solver.add_ternary(~lx, la, lb);
    solver.add_ternary(~lx, ~la, ~lb);
    solver.add_ternary(lx, ~la, lb);
    solver.add_ternary(lx, la, ~lb);
    if (solver.solve({lx}) != SatResult::kUnsat) return false;
  }
  return true;
}

// Bit-parallel differential: identical PO planes on `words`x64 random
// patterns (the converters preserve PI order, so one PatternSet serves
// both networks).
bool sim_equivalent(const Network& a, const Network& b, int words,
                    uint64_t seed) {
  PatternSet patterns = PatternSet::random(a.num_pis(), words, seed);
  Simulator sim_a(a);
  Simulator sim_b(b);
  sim_a.run(patterns);
  sim_b.run(patterns);
  for (int po = 0; po < a.num_pos(); ++po) {
    WordSpan pa = sim_a.value(a.po(po).driver);
    WordSpan pb = sim_b.value(b.po(po).driver);
    for (int w = 0; w < words; ++w) {
      if (pa[w] != pb[w]) return false;
    }
  }
  return true;
}

struct CircuitRow {
  std::string name;
  int pis = 0;
  int pos = 0;
  int logic_nodes = 0;
  double to_aig_seconds = 0.0;
  uint64_t ands_before = 0;
  double rewrite_seconds = 0.0;
  uint64_t ands_after = 0;
  double and_reduction_pct = 0.0;
  int rewrite_passes = 0;
  uint64_t cuts_enumerated = 0;
  double cuts_per_sec = 0.0;
  double to_network_seconds = 0.0;
  double round_trip_seconds = 0.0;
  bool sim_equivalent = false;
};

CircuitRow run_circuit(const std::string& name) {
  CircuitRow row;
  row.name = name;
  const Network net = make_benchmark(name);
  row.pis = net.num_pis();
  row.pos = net.num_pos();
  row.logic_nodes = net.num_logic_nodes();

  Stopwatch total;
  Stopwatch watch;
  const aig::Aig g = aig::network_to_aig(net);
  row.to_aig_seconds = watch.seconds();
  row.ands_before = g.count_reachable_ands();

  watch = Stopwatch();
  aig::RewriteStats stats;
  const aig::Aig rewritten = aig::rewrite(g, aig::RewriteOptions{}, &stats);
  row.rewrite_seconds = watch.seconds();
  row.ands_after = stats.ands_after;
  row.and_reduction_pct =
      row.ands_before == 0
          ? 0.0
          : 100.0 * static_cast<double>(row.ands_before - row.ands_after) /
                static_cast<double>(row.ands_before);
  row.rewrite_passes = stats.passes;
  row.cuts_enumerated = stats.cuts_enumerated;
  row.cuts_per_sec = row.rewrite_seconds > 0
                         ? static_cast<double>(stats.cuts_enumerated) /
                               row.rewrite_seconds
                         : 0.0;

  watch = Stopwatch();
  const Network back = aig::aig_to_network(rewritten);
  row.to_network_seconds = watch.seconds();
  row.round_trip_seconds = total.seconds();

  row.sim_equivalent = sim_equivalent(net, back, 64, /*seed=*/2026);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_aig.json";
  const int threads = bench_threads();

  // ---- BLIF reader throughput ----
  std::printf("bench_aig: AIG quick-synthesis scale gates\n\n");
  const Network mult = make_benchmark("mult32");
  const std::string mult_blif = write_blif_string(mult);
  Stopwatch watch;
  const Network mult_parsed = read_blif_string(mult_blif);
  const double blif_parse_seconds = watch.seconds();
  const size_t blif_lines = count_lines(mult_blif);
  // The writer emits one buffer table per PO whose name differs from its
  // driver node, so the parsed network legitimately carries extra logic
  // nodes; the round-trip check is functional, not structural.
  const bool blif_round_trip_ok =
      mult_parsed.num_pis() == mult.num_pis() &&
      mult_parsed.num_pos() == mult.num_pos() &&
      sim_equivalent(mult, mult_parsed, 64, /*seed=*/2026);

  const std::string reverse_blif = make_reverse_chain_blif(50000);
  const size_t reverse_lines = count_lines(reverse_blif);
  watch = Stopwatch();
  const Network reverse_net = read_blif_string(reverse_blif);
  const double reverse_parse_seconds = watch.seconds();
  const bool reverse_ok = reverse_net.num_logic_nodes() == 50001;

  std::printf("BLIF: mult32 %zu lines in %.3fs (%.0f lines/s); "
              "reverse-ordered %zu lines in %.3fs\n\n",
              blif_lines, blif_parse_seconds,
              blif_lines / std::max(blif_parse_seconds, 1e-9), reverse_lines,
              reverse_parse_seconds);

  // ---- AIG rewriting on the large pair ----
  std::printf("%-8s %6s | %8s %8s %6s | %10s %10s | %6s\n", "circuit",
              "nodes", "ANDs", "rewr", "gain%", "cuts", "cuts/s", "sim");
  std::vector<CircuitRow> rows;
  for (const std::string& name : large_benchmark_names()) {
    rows.push_back(run_circuit(name));
    const CircuitRow& r = rows.back();
    std::printf("%-8s %6d | %8llu %8llu %5.1f%% | %10llu %10.0f | %6s\n",
                r.name.c_str(), r.logic_nodes,
                static_cast<unsigned long long>(r.ands_before),
                static_cast<unsigned long long>(r.ands_after),
                r.and_reduction_pct,
                static_cast<unsigned long long>(r.cuts_enumerated),
                r.cuts_per_sec, r.sim_equivalent ? "ok" : "DIFF");
  }

  // ---- SAT round-trip over the full registered suite ----
  watch = Stopwatch();
  int suite_circuits = 0;
  bool suite_unsat = true;
  for (const std::string& name : benchmark_names()) {
    const Network net = make_benchmark(name);
    const Network back = aig::aig_to_network(aig::network_to_aig(net));
    suite_unsat = suite_unsat && all_pos_equivalent(net, back);
    ++suite_circuits;
  }
  const double suite_seconds = watch.seconds();
  std::printf("\nsuite round-trip: %d circuits SAT-mitred in %.1fs -> %s\n",
              suite_circuits, suite_seconds,
              suite_unsat ? "all UNSAT (equivalent)" : "MISMATCH");

  // ---- end-to-end CED pipeline on the >= 10k-gate benchmark ----
  const std::string e2e_name = "aes_rp";
  const Network e2e_net = make_benchmark(e2e_name);
  PipelineOptions opt = tuned_options(0.12);
  opt.approx.num_threads = threads;
  // At 128 PIs every oracle BDD overflows any realistic budget, so fail
  // fast toward the SAT path and its sampled percentage estimates (the
  // small budgets trade exactness of the reported approximation %, never
  // correctness — see ApproxOptions::bdd_budget). With the defaults the
  // synthesis stage spends minutes growing doomed BDDs before each
  // fallback.
  opt.approx.bdd_budget = 1u << 15;
  opt.approx.sat_conflict_budget = 1000;
  watch = Stopwatch();
  const PipelineResult e2e = run_ced_pipeline(e2e_net, opt);
  const double e2e_seconds = watch.seconds();
  const int e2e_mapped_gates = e2e.overheads.functional_area;
  std::printf("e2e %s: %.1fs, %d mapped gates, coverage %.1f%%, "
              "area overhead %.1f%%\n",
              e2e_name.c_str(), e2e_seconds, e2e_mapped_gates,
              100.0 * e2e.coverage.coverage(),
              e2e.overheads.area_overhead_pct());

  // ---- gates ----
  constexpr double kReductionGatePct = 10.0;
  constexpr double kE2eBudgetSeconds = 540.0;  // "single-digit minutes"
  constexpr int kScaleGateGates = 10000;
  double aes_reduction_pct = 0.0;
  bool sims_ok = true;
  for (const CircuitRow& r : rows) {
    if (r.name == e2e_name) aes_reduction_pct = r.and_reduction_pct;
    sims_ok = sims_ok && r.sim_equivalent;
  }
  const bool round_trip_equivalent =
      suite_unsat && sims_ok && blif_round_trip_ok && reverse_ok;
  const bool reduction_gate = aes_reduction_pct >= kReductionGatePct;
  const bool e2e_time_gate = e2e_seconds <= kE2eBudgetSeconds;
  const bool scale_gate = e2e_mapped_gates >= kScaleGateGates;
  const bool pass =
      round_trip_equivalent && reduction_gate && e2e_time_gate && scale_gate;

  std::printf("\ngates: reduction %.1f%% >= %.0f%% %s | equivalence %s | "
              "e2e %.1fs <= %.0fs %s | scale %d >= %d %s\n",
              aes_reduction_pct, kReductionGatePct,
              reduction_gate ? "ok" : "FAIL",
              round_trip_equivalent ? "ok" : "FAIL", e2e_seconds,
              kE2eBudgetSeconds, e2e_time_gate ? "ok" : "FAIL",
              e2e_mapped_gates, kScaleGateGates, scale_gate ? "ok" : "FAIL");

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  write_host_metadata(f);
  std::fprintf(f, "  \"threads\": %d,\n", threads);
  std::fprintf(f,
               "  \"blif\": {\"lines\": %zu, \"parse_seconds\": %.4f, "
               "\"lines_per_sec\": %.0f, \"reverse_lines\": %zu, "
               "\"reverse_parse_seconds\": %.4f, "
               "\"round_trip_sim_equivalent\": %s},\n",
               blif_lines, blif_parse_seconds,
               blif_lines / std::max(blif_parse_seconds, 1e-9), reverse_lines,
               reverse_parse_seconds, blif_round_trip_ok ? "true" : "false");
  std::fprintf(f, "  \"circuits\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const CircuitRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"name\": \"%s\", \"pis\": %d, \"pos\": %d, "
        "\"logic_nodes\": %d,\n"
        "     \"to_aig_seconds\": %.4f, \"ands_before\": %llu, "
        "\"rewrite_seconds\": %.4f, \"ands_after\": %llu,\n"
        "     \"and_reduction_pct\": %.2f, \"rewrite_passes\": %d, "
        "\"cuts_enumerated\": %llu, \"cuts_per_sec\": %.0f,\n"
        "     \"to_network_seconds\": %.4f, \"round_trip_seconds\": %.4f, "
        "\"sim_equivalent\": %s}%s\n",
        r.name.c_str(), r.pis, r.pos, r.logic_nodes, r.to_aig_seconds,
        static_cast<unsigned long long>(r.ands_before), r.rewrite_seconds,
        static_cast<unsigned long long>(r.ands_after), r.and_reduction_pct,
        r.rewrite_passes, static_cast<unsigned long long>(r.cuts_enumerated),
        r.cuts_per_sec, r.to_network_seconds, r.round_trip_seconds,
        r.sim_equivalent ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f,
               "  \"suite_round_trip\": {\"circuits\": %d, "
               "\"sat_miters_unsat\": %s, \"seconds\": %.2f},\n",
               suite_circuits, suite_unsat ? "true" : "false", suite_seconds);
  std::fprintf(f, "  \"round_trip_equivalent\": %s,\n",
               round_trip_equivalent ? "true" : "false");
  std::fprintf(f, "  \"aes_rp_and_reduction_pct\": %.2f,\n",
               aes_reduction_pct);
  std::fprintf(f, "  \"reduction_gate_pct\": %.1f,\n", kReductionGatePct);
  std::fprintf(f,
               "  \"e2e\": {\"circuit\": \"%s\", \"mapped_gates\": %d, "
               "\"pipeline_seconds\": %.1f, \"coverage_pct\": %.2f, "
               "\"area_overhead_pct\": %.2f},\n",
               e2e_name.c_str(), e2e_mapped_gates, e2e_seconds,
               100.0 * e2e.coverage.coverage(),
               e2e.overheads.area_overhead_pct());
  std::fprintf(f, "  \"e2e_budget_seconds\": %.1f,\n", kE2eBudgetSeconds);
  std::fprintf(f, "  \"scale_gate_gates\": %d,\n", kScaleGateGates);
  std::fprintf(f, "  \"gates_pass\": %s\n", pass ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return pass ? 0 : 1;
}
