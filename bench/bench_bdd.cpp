// BDD variable-ordering benchmark: builds every PO cone of each circuit
// (original and a cube-dropped approximation) under three orderings —
// natural (identity PI order), static (interleaved fanin-DFS from the POs,
// network/ordering.hpp), and static+sift (dynamic reordering on top) — and
// reports peak arena nodes, build time, and the SAT-fallback count (PO
// cones that overflowed the node budget and would be answered by the
// solver in the oracle). Implication verdicts and minterm fractions must
// be bit-identical across orderings on every commonly-built PO, and
// across thread counts (the circuit sweep is re-run on the shared task
// pool). Emits BENCH_bdd.json (fields documented in EXPERIMENTS.md).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bdd/network_bdd.hpp"
#include "bench_util.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/task_pool.hpp"
#include "network/ordering.hpp"

using namespace apx;
using namespace apx::bench;

namespace {

enum Mode { kNatural = 0, kStatic = 1, kSift = 2 };
constexpr const char* kModeKeys[3] = {"natural", "static", "static_sift"};

// Approximation under test: drop the last cube of a few multi-cube nodes
// (the stage-2 "weaken" mutation). What matters here is not the verdict
// itself but that every ordering reports the same one.
Network make_weakened(const Network& net) {
  Network weak = net;
  int weakened = 0;
  for (NodeId id = 0; id < weak.num_nodes() && weakened < 4; ++id) {
    const Node& n = weak.node(id);
    if (n.kind != NodeKind::kLogic || n.sop.num_cubes() < 2) continue;
    if ((id % 3) != 0) continue;  // spread the sites out
    std::vector<Cube> cubes(n.sop.cubes().begin(), n.sop.cubes().end() - 1);
    weak.set_sop(id, Sop(n.sop.num_vars(), std::move(cubes)));
    ++weakened;
  }
  return weak;
}

struct ModeResult {
  double build_seconds = 0.0;
  uint64_t peak_nodes = 0;
  int fallbacks = 0;  // PO cones lost to BddOverflow (SAT would answer)
  uint64_t reorder_runs = 0;
  double reorder_time_ms = 0.0;
  double avg_probe_length = 0.0;
  std::vector<int> built;         // PO indices with both f and g built
  std::vector<uint8_t> verdicts;  // implies(g, f), aligned with `built`
  std::vector<double> pcts;       // sat_fraction(f), sat_fraction(g) pairs
};

ModeResult run_mode(const Network& net, const Network& weak, Mode mode,
                    size_t budget) {
  std::vector<int> order;
  if (mode != kNatural) order = static_pi_order(net);
  BddManager mgr(net.num_pis(), budget, order);
  mgr.set_auto_reorder(mode == kSift);
  if (mode == kSift) mgr.set_reorder_threshold(256);

  ModeResult r;
  const int P = net.num_pos();
  std::vector<BddManager::Ref> f_refs(P, BddManager::kInvalidRef);
  std::vector<BddManager::Ref> g_refs(P, BddManager::kInvalidRef);
  mgr.register_external_refs(&f_refs);
  mgr.register_external_refs(&g_refs);
  Stopwatch watch;
  for (int po = 0; po < P; ++po) {
    if (auto ref = build_po_bdd(mgr, net, po)) {
      f_refs[po] = *ref;
    } else {
      ++r.fallbacks;
    }
  }
  for (int po = 0; po < P; ++po) {
    if (auto ref = build_po_bdd(mgr, weak, po)) {
      g_refs[po] = *ref;
    } else {
      ++r.fallbacks;
    }
  }
  if (mode == kSift) mgr.reorder();  // settle the finished root set
  r.build_seconds = watch.seconds();

  for (int po = 0; po < P; ++po) {
    if (f_refs[po] == BddManager::kInvalidRef ||
        g_refs[po] == BddManager::kInvalidRef) {
      continue;
    }
    try {
      bool holds = mgr.implies(g_refs[po], f_refs[po]);
      r.built.push_back(po);
      r.verdicts.push_back(holds ? 1 : 0);
      r.pcts.push_back(mgr.sat_fraction(f_refs[po]));
      r.pcts.push_back(mgr.sat_fraction(g_refs[po]));
    } catch (const BddOverflow&) {
      ++r.fallbacks;
    }
    if (mgr.reorder_pending()) mgr.reorder();
  }
  r.peak_nodes = mgr.stats().peak_nodes;
  r.reorder_runs = mgr.stats().reorder_runs;
  r.reorder_time_ms = mgr.stats().reorder_time_ms;
  r.avg_probe_length = mgr.stats().avg_probe_length();
  return r;
}

// Verdicts/pcts restricted to the POs every mode managed to build must be
// bit-identical: canonical BDDs answer the same regardless of the order.
bool modes_agree(const ModeResult modes[3]) {
  std::vector<int> common = modes[0].built;
  for (int m = 1; m < 3; ++m) {
    std::vector<int> next;
    std::set_intersection(common.begin(), common.end(),
                          modes[m].built.begin(), modes[m].built.end(),
                          std::back_inserter(next));
    common = std::move(next);
  }
  std::vector<uint8_t> verdicts[3];
  std::vector<double> pcts[3];
  for (int m = 0; m < 3; ++m) {
    const ModeResult& mr = modes[m];
    for (size_t i = 0; i < mr.built.size(); ++i) {
      if (!std::binary_search(common.begin(), common.end(), mr.built[i])) {
        continue;
      }
      verdicts[m].push_back(mr.verdicts[i]);
      pcts[m].push_back(mr.pcts[2 * i]);
      pcts[m].push_back(mr.pcts[2 * i + 1]);
    }
  }
  for (int m = 1; m < 3; ++m) {
    if (verdicts[m] != verdicts[0]) return false;
    if (pcts[m].size() != pcts[0].size() ||
        std::memcmp(pcts[m].data(), pcts[0].data(),
                    pcts[0].size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

struct CircuitResult {
  std::string name;
  int pis = 0;
  int pos = 0;
  int gates = 0;
  ModeResult modes[3];
  bool results_identical = false;
  double reduction = 0.0;  // natural peak / static+sift peak
};

CircuitResult run_circuit(const std::string& name, size_t budget) {
  Network net = make_benchmark(name);
  Network weak = make_weakened(net);
  CircuitResult c;
  c.name = name;
  c.pis = net.num_pis();
  c.pos = net.num_pos();
  c.gates = net.num_logic_nodes();
  for (int m = 0; m < 3; ++m) {
    c.modes[m] = run_mode(net, weak, static_cast<Mode>(m), budget);
  }
  c.results_identical = modes_agree(c.modes);
  c.reduction = static_cast<double>(c.modes[kNatural].peak_nodes) /
                static_cast<double>(c.modes[kSift].peak_nodes);
  return c;
}

bool same_answers(const CircuitResult& a, const CircuitResult& b) {
  for (int m = 0; m < 3; ++m) {
    if (a.modes[m].built != b.modes[m].built) return false;
    if (a.modes[m].verdicts != b.modes[m].verdicts) return false;
    if (a.modes[m].pcts.size() != b.modes[m].pcts.size() ||
        std::memcmp(a.modes[m].pcts.data(), b.modes[m].pcts.data(),
                    a.modes[m].pcts.size() * sizeof(double)) != 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_bdd.json";
  // Arithmetic circuits whose natural (separated a.., b..) PI order is
  // exponentially bad, plus MCNC-profile stand-ins where the structural
  // heuristic has to earn its keep on irregular logic.
  const std::vector<std::string> circuits = {"rca8",  "rca16", "cmp8",
                                             "cmp16", "cmb",   "cordic",
                                             "term1", "alu1"};
  const size_t budget = 1u << 18;
  const int threads = resolve_thread_option(bench_threads());

  std::printf("bench_bdd: PO-cone builds under natural / static / "
              "static+sift orderings (budget %zu nodes)\n\n",
              budget);
  std::printf("%-8s %6s | %10s %10s %10s | %6s %5s %5s | %s\n", "circuit",
              "PIs", "nat peak", "stat peak", "sift peak", "redux", "fb:n",
              "fb:s", "reorders");

  std::vector<CircuitResult> serial;
  for (const std::string& name : circuits) {
    serial.push_back(run_circuit(name, budget));
    const CircuitResult& c = serial.back();
    std::printf("%-8s %6d | %10llu %10llu %10llu | %5.1fx %5d %5d | %llu "
                "(%.1f ms)\n",
                c.name.c_str(), c.pis,
                static_cast<unsigned long long>(c.modes[kNatural].peak_nodes),
                static_cast<unsigned long long>(c.modes[kStatic].peak_nodes),
                static_cast<unsigned long long>(c.modes[kSift].peak_nodes),
                c.reduction, c.modes[kNatural].fallbacks,
                c.modes[kSift].fallbacks,
                static_cast<unsigned long long>(c.modes[kSift].reorder_runs),
                c.modes[kSift].reorder_time_ms);
  }

  // Thread-count differential: same sweep, one task-pool task per circuit
  // (managers are task-local, so the answers may not depend on the
  // schedule or the worker count).
  std::vector<CircuitResult> parallel(circuits.size());
  TaskPool::instance().parallel_for(
      0, static_cast<int64_t>(circuits.size()),
      [&](int64_t i) { parallel[i] = run_circuit(circuits[i], budget); },
      threads);
  bool parallel_identical = true;
  for (size_t i = 0; i < circuits.size(); ++i) {
    parallel_identical = parallel_identical && same_answers(serial[i], parallel[i]);
  }

  bool orderings_identical = true;
  bool sift_peak_le_natural = true;
  int two_x_count = 0;
  int fallbacks_natural = 0, fallbacks_static = 0, fallbacks_sift = 0;
  for (const CircuitResult& c : serial) {
    orderings_identical = orderings_identical && c.results_identical;
    sift_peak_le_natural =
        sift_peak_le_natural &&
        c.modes[kSift].peak_nodes <= c.modes[kNatural].peak_nodes;
    if (c.modes[kNatural].peak_nodes >= 2 * c.modes[kSift].peak_nodes) {
      ++two_x_count;
    }
    fallbacks_natural += c.modes[kNatural].fallbacks;
    fallbacks_static += c.modes[kStatic].fallbacks;
    fallbacks_sift += c.modes[kSift].fallbacks;
  }
  bool two_x_on_half = two_x_count * 2 >= static_cast<int>(circuits.size());
  bool fallbacks_reduced = fallbacks_sift <= fallbacks_natural;

  std::printf("\n>=2x peak reduction on %d/%zu circuits; "
              "SAT fallbacks natural=%d static=%d static+sift=%d\n",
              two_x_count, circuits.size(), fallbacks_natural,
              fallbacks_static, fallbacks_sift);
  std::printf("orderings bit-identical: %s   threads (%d) bit-identical: %s\n",
              orderings_identical ? "yes" : "NO", threads,
              parallel_identical ? "yes" : "NO");

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  write_host_metadata(f);
  std::fprintf(f, "  \"bdd_budget\": %zu,\n", budget);
  std::fprintf(f, "  \"threads\": %d,\n", threads);
  std::fprintf(f, "  \"circuits\": [\n");
  for (size_t i = 0; i < serial.size(); ++i) {
    const CircuitResult& c = serial[i];
    std::fprintf(f, "    {\"name\": \"%s\", \"pis\": %d, \"pos\": %d, "
                 "\"gates\": %d,\n",
                 c.name.c_str(), c.pis, c.pos, c.gates);
    for (int m = 0; m < 3; ++m) {
      const ModeResult& mr = c.modes[m];
      std::fprintf(
          f,
          "     \"%s\": {\"peak_nodes\": %llu, \"build_seconds\": %.4f, "
          "\"fallbacks\": %d, \"reorder_runs\": %llu, "
          "\"reorder_time_ms\": %.3f, \"avg_probe_length\": %.3f},\n",
          kModeKeys[m], static_cast<unsigned long long>(mr.peak_nodes),
          mr.build_seconds, mr.fallbacks,
          static_cast<unsigned long long>(mr.reorder_runs),
          mr.reorder_time_ms, mr.avg_probe_length);
    }
    std::fprintf(f, "     \"peak_reduction_vs_natural\": %.2f, "
                 "\"results_bit_identical\": %s}%s\n",
                 c.reduction, c.results_identical ? "true" : "false",
                 i + 1 < serial.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"circuits_with_2x_reduction\": %d,\n", two_x_count);
  std::fprintf(f, "  \"sift_peak_le_natural_all\": %s,\n",
               sift_peak_le_natural ? "true" : "false");
  std::fprintf(f,
               "  \"fallbacks\": {\"natural\": %d, \"static\": %d, "
               "\"static_sift\": %d},\n",
               fallbacks_natural, fallbacks_static, fallbacks_sift);
  std::fprintf(f, "  \"orderings_bit_identical\": %s,\n",
               orderings_identical ? "true" : "false");
  std::fprintf(f, "  \"parallel_bit_identical\": %s\n",
               parallel_identical ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());

  // CI gate: ordering must never hurt peak size, must halve it on at
  // least half the suite, must not add SAT fallbacks, and every answer
  // must be independent of ordering and thread count.
  return (sift_peak_le_natural && two_x_on_half && fallbacks_reduced &&
          orderings_identical && parallel_identical)
             ? 0
             : 1;
}
