#include "core/tsc_analysis.hpp"

#include <gtest/gtest.h>

namespace apx {
namespace {

const CheckerFaultReport& find_fault(const TscReport& report,
                                     const std::string& site, bool stuck) {
  for (const auto& f : report.faults) {
    if (f.site == site && f.stuck_value == stuck) return f;
  }
  throw std::logic_error("fault not found");
}

TEST(TscAnalysisTest, BothDirectionsCodeDisjoint) {
  EXPECT_TRUE(analyze_approx_checker(ApproxDirection::kZeroApprox)
                  .code_disjoint);
  EXPECT_TRUE(analyze_approx_checker(ApproxDirection::kOneApprox)
                  .code_disjoint);
}

TEST(TscAnalysisTest, ZeroApproxSelfTestingExceptionsMatchPaper) {
  // Paper Sec. 3.2: Y stuck-at-0 and X stuck-at-1 always violate
  // self-testing for a 0-approximation.
  TscReport r = analyze_approx_checker(ApproxDirection::kZeroApprox);
  EXPECT_FALSE(find_fault(r, "Y", false).self_testing);
  EXPECT_FALSE(find_fault(r, "X", true).self_testing);
  // The opposite-direction input faults are testable.
  EXPECT_TRUE(find_fault(r, "Y", true).self_testing);
  EXPECT_TRUE(find_fault(r, "X", false).self_testing);
  // Rail output faults are testable (rails take both values in operation).
  for (const char* site : {"rail1", "rail2"}) {
    EXPECT_TRUE(find_fault(r, site, false).self_testing) << site;
    EXPECT_TRUE(find_fault(r, site, true).self_testing) << site;
  }
}

TEST(TscAnalysisTest, OneApproxSelfTestingExceptionsAreDual) {
  TscReport r = analyze_approx_checker(ApproxDirection::kOneApprox);
  EXPECT_FALSE(find_fault(r, "Y", true).self_testing);
  EXPECT_FALSE(find_fault(r, "X", false).self_testing);
  EXPECT_TRUE(find_fault(r, "Y", false).self_testing);
  EXPECT_TRUE(find_fault(r, "X", true).self_testing);
}

TEST(TscAnalysisTest, ExceptionListHasExactlyTwoEntries) {
  for (ApproxDirection dir :
       {ApproxDirection::kZeroApprox, ApproxDirection::kOneApprox}) {
    TscReport r = analyze_approx_checker(dir);
    EXPECT_EQ(r.self_testing_exceptions().size(), 2u);
    EXPECT_FALSE(r.fully_self_testing());
  }
}

TEST(TscAnalysisTest, FaultSecurenessExceptionsInvolveY) {
  // Paper: "the checker is not fault secure for stuck-at faults at Y when
  // X=1" — the Y-line faults are exactly where fault-secureness fails.
  TscReport r = analyze_approx_checker(ApproxDirection::kZeroApprox);
  bool y_violates = !find_fault(r, "Y", false).fault_secure ||
                    !find_fault(r, "Y", true).fault_secure;
  EXPECT_TRUE(y_violates);
  // Rail faults are always fault-secure (they flip exactly one rail, which
  // makes the pair invalid rather than a wrong codeword).
  for (const char* site : {"rail1", "rail2"}) {
    EXPECT_TRUE(find_fault(r, site, false).fault_secure) << site;
    EXPECT_TRUE(find_fault(r, site, true).fault_secure) << site;
  }
}

}  // namespace
}  // namespace apx
