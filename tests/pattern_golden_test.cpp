// Golden-vector regression for PatternSet's layout-independent seeding.
//
// Every pattern word is derived purely from (seed, pi, w) — see
// derive_seed in sim/rng.hpp — so the exact words below must survive any
// storage or evaluation-order change (SoA arena strides, SIMD tiers,
// generation loop rewrites). If one of these literals moves, every
// committed coverage number derived from random campaigns silently shifts
// with it: bump them only for a deliberate, documented seeding change.
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

namespace apx {
namespace {

TEST(PatternGoldenTest, RandomWordsArePinned) {
  PatternSet p = PatternSet::random(3, 2, 0xFEED5EEDULL);
  const uint64_t expected[3][2] = {
      {0x0bc78493c2a14f92ULL, 0xcc913a22b5e64f85ULL},
      {0xac65ce27887e2ba2ULL, 0x7319c007b339718fULL},
      {0xb479224a26215630ULL, 0x8e99e508fa3c2a49ULL},
  };
  for (int pi = 0; pi < 3; ++pi) {
    for (int w = 0; w < 2; ++w) {
      EXPECT_EQ(p.word(pi, w), expected[pi][w]) << "pi=" << pi << " w=" << w;
    }
  }
}

TEST(PatternGoldenTest, BiasedWordsArePinned) {
  PatternSet p = PatternSet::biased({0.0, 0.25, 0.5, 1.0}, 2, 0xFEED5EEDULL);
  const uint64_t expected[4][2] = {
      {0x0000000000000000ULL, 0x0000000000000000ULL},  // prob 0 -> never set
      {0x1062400495409492ULL, 0xe0b0408ca0033020ULL},
      {0xd28c70a9b0351f52ULL, 0xfa865c6a74fd9d06ULL},
      {0xffffffffffffffffULL, 0xffffffffffffffffULL},  // prob 1 -> all-ones
  };
  for (int pi = 0; pi < 4; ++pi) {
    for (int w = 0; w < 2; ++w) {
      EXPECT_EQ(p.word(pi, w), expected[pi][w]) << "pi=" << pi << " w=" << w;
    }
  }
}

TEST(PatternGoldenTest, DeriveSeedIsPinned) {
  EXPECT_EQ(derive_seed(0x1234, 5), 0x0f0df9cad724a892ULL);
}

// Word (pi, w) must not depend on how many words or PIs the set holds:
// growing either direction of the set extends it without disturbing the
// existing words. This is the property that makes campaign results
// independent of batch geometry choices.
TEST(PatternGoldenTest, RandomWordsAreLayoutIndependent) {
  const uint64_t seed = 0xA5A5;
  PatternSet small = PatternSet::random(3, 2, seed);
  PatternSet wide = PatternSet::random(3, 9, seed);
  PatternSet tall = PatternSet::random(11, 2, seed);
  for (int pi = 0; pi < 3; ++pi) {
    for (int w = 0; w < 2; ++w) {
      EXPECT_EQ(small.word(pi, w), wide.word(pi, w));
      EXPECT_EQ(small.word(pi, w), tall.word(pi, w));
    }
  }
}

TEST(PatternGoldenTest, BiasedWordsAreLayoutIndependent) {
  const uint64_t seed = 0xB0B0;
  const std::vector<double> probs3 = {0.3, 0.6, 0.9};
  const std::vector<double> probs5 = {0.3, 0.6, 0.9, 0.1, 0.8};
  PatternSet small = PatternSet::biased(probs3, 2, seed);
  PatternSet wide = PatternSet::biased(probs3, 7, seed);
  PatternSet tall = PatternSet::biased(probs5, 2, seed);
  for (int pi = 0; pi < 3; ++pi) {
    for (int w = 0; w < 2; ++w) {
      EXPECT_EQ(small.word(pi, w), wide.word(pi, w));
      EXPECT_EQ(small.word(pi, w), tall.word(pi, w));
    }
  }
}

// Distinct seeds and distinct (pi, w) indices must decorrelate: equal words
// would mean the per-index derivation collapsed.
TEST(PatternGoldenTest, IndicesAndSeedsDecorrelate) {
  PatternSet a = PatternSet::random(2, 2, 1);
  PatternSet b = PatternSet::random(2, 2, 2);
  EXPECT_NE(a.word(0, 0), a.word(0, 1));
  EXPECT_NE(a.word(0, 0), a.word(1, 0));
  EXPECT_NE(a.word(0, 0), b.word(0, 0));
}

}  // namespace
}  // namespace apx
