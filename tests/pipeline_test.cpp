#include "core/pipeline.hpp"

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"

namespace apx {
namespace {

PipelineOptions fast_options(double threshold = 0.1) {
  PipelineOptions opt;
  opt.approx.significance_threshold = threshold;
  opt.reliability.num_fault_samples = 300;
  opt.coverage.num_fault_samples = 300;
  return opt;
}

TEST(PipelineTest, EndToEndOnComparator) {
  Network net = make_benchmark("cmp4");
  PipelineResult r = run_ced_pipeline(net, fast_options());
  EXPECT_TRUE(r.synthesis.all_verified());
  EXPECT_EQ(r.directions.size(), static_cast<size_t>(net.num_pos()));
  EXPECT_GT(r.coverage.runs, 0);
  EXPECT_GE(r.coverage.coverage(), 0.0);
  EXPECT_LE(r.coverage.coverage(), 1.0);
  EXPECT_GT(r.overheads.functional_area, 0);
  EXPECT_GT(r.mean_approximation_pct(), 0.5);
}

TEST(PipelineTest, CoverageBelowMaxCoverageBound) {
  // Achieved CED coverage cannot exceed the reliability-derived maximum by
  // more than sampling noise (paper Table 1: Max vs Achieved).
  Network net = make_benchmark("cordic");
  PipelineResult r = run_ced_pipeline(net, fast_options(0.05));
  EXPECT_LE(r.coverage.coverage(), r.reliability.max_ced_coverage + 0.12);
}

TEST(PipelineTest, ApproxCircuitIsFasterThanOriginal) {
  // The paper reports ~38% lower delay for the approximate circuit; at the
  // very least it must never be slower (that is the no-performance-penalty
  // requirement for non-intrusive CED).
  for (const char* name : {"cmb", "cordic"}) {
    Network net = make_benchmark(name);
    PipelineResult r = run_ced_pipeline(net, fast_options(0.1));
    EXPECT_LE(r.checkgen_delay, r.original_delay) << name;
  }
}

TEST(PipelineTest, LogicSharingReducesOverhead) {
  Network net = make_benchmark("cmb");
  PipelineOptions base = fast_options(0.05);
  PipelineResult plain = run_ced_pipeline(net, base);
  base.logic_sharing = true;
  PipelineResult shared = run_ced_pipeline(net, base);
  EXPECT_LE(shared.ced.overhead_area(), plain.ced.overhead_area());
}

TEST(PipelineTest, ThresholdSweepsTradeOff) {
  // Higher threshold -> smaller check generator (the paper's fine-grained
  // overhead/coverage trade-off).
  Network net = make_benchmark("cordic");
  PipelineResult tight = run_ced_pipeline(net, fast_options(0.01));
  PipelineResult loose = run_ced_pipeline(net, fast_options(0.5));
  EXPECT_LE(loose.mapped_checkgen.num_logic_nodes(),
            tight.mapped_checkgen.num_logic_nodes());
}

}  // namespace
}  // namespace apx
