#include "mapping/mapper.hpp"

#include <gtest/gtest.h>

#include <random>

#include "mapping/optimize.hpp"
#include "sat/encode.hpp"

namespace apx {
namespace {

Network random_network(std::mt19937& rng, int pis, int nodes) {
  Network net;
  std::vector<NodeId> pool;
  for (int i = 0; i < pis; ++i) pool.push_back(net.add_pi("p" + std::to_string(i)));
  for (int g = 0; g < nodes; ++g) {
    int k = 2 + static_cast<int>(rng() % 3);  // 2-4 fanins
    std::vector<NodeId> fanins;
    for (int j = 0; j < k; ++j) fanins.push_back(pool[rng() % pool.size()]);
    Sop sop(k);
    int cubes = 1 + static_cast<int>(rng() % 3);
    for (int c = 0; c < cubes; ++c) {
      Cube cube = Cube::full(k);
      for (int v = 0; v < k; ++v) {
        int roll = static_cast<int>(rng() % 3);
        if (roll == 0) cube.set(v, LitCode::kNeg);
        if (roll == 1) cube.set(v, LitCode::kPos);
      }
      sop.add_cube(cube);
    }
    if (sop.empty()) continue;
    pool.push_back(net.add_node(fanins, sop));
  }
  net.add_po("f", pool.back());
  net.add_po("g", pool[pool.size() / 2]);
  return net;
}

class MapperEquivalence
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MapperEquivalence, MappedNetworkIsEquivalent) {
  auto [seed, impl_index] = GetParam();
  std::mt19937 rng(seed);
  Network net = random_network(rng, 6, 12);
  const Implementation& impl = standard_implementations()[impl_index];
  Network mapped = technology_map(net, {impl.library, impl.script});
  EXPECT_TRUE(is_mapped(mapped)) << impl.name;
  for (int po = 0; po < net.num_pos(); ++po) {
    EXPECT_EQ(check_po_equivalence(net, po, mapped, po), CheckResult::kHolds)
        << impl.name << " po " << po;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByImpl, MapperEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3),
                       ::testing::Values(0, 1, 2, 3, 4)));

TEST(MapperTest, Nand2LibraryUsesOnlyInvertersAndNands) {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  net.add_po("f", net.add_node({a, b, c}, *Sop::parse(3, "11-\n--1")));
  Network mapped = technology_map(net, {&GateLibrary::nand2(),
                                        ScriptKind::kBalance});
  for (NodeId id = 0; id < mapped.num_nodes(); ++id) {
    const Node& n = mapped.node(id);
    if (n.kind != NodeKind::kLogic) continue;
    bool is_inv = n.fanins.size() == 1;
    bool is_nand = n.fanins.size() == 2 && n.sop.num_cubes() == 2;
    EXPECT_TRUE(is_inv || is_nand) << n.sop.to_string();
  }
}

TEST(MapperTest, BalanceIsShallowerThanCascade) {
  // A wide AND: balanced tree depth ~log2, cascade depth ~n.
  Network net;
  std::vector<NodeId> pis;
  const int w = 16;
  Sop sop = Sop(w);
  Cube all = Cube::full(w);
  for (int i = 0; i < w; ++i) {
    pis.push_back(net.add_pi("x" + std::to_string(i)));
    all.set(i, LitCode::kPos);
  }
  sop.add_cube(all);
  net.add_po("f", net.add_node(pis, sop));
  Network bal = technology_map(net, {&GateLibrary::basic(), ScriptKind::kBalance});
  Network cas = technology_map(net, {&GateLibrary::basic(), ScriptKind::kCascade});
  EXPECT_EQ(mapped_delay(bal), 4);   // log2(16)
  EXPECT_EQ(mapped_delay(cas), 15);  // linear chain
  EXPECT_EQ(mapped_area(bal), 15);
  EXPECT_EQ(mapped_area(cas), 15);
}

TEST(MapperTest, FactoringSharesCommonLiteral) {
  // f = a b + a c + a d: factored form a(b+c+d) needs 3 gates (2x OR + AND)
  // vs two-level 3 ANDs + 2 ORs = 5.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  NodeId d = net.add_pi("d");
  net.add_po("f", net.add_node({a, b, c, d},
                               *Sop::parse(4, "11--\n1-1-\n1--1")));
  Network fac = technology_map(net, {&GateLibrary::basic(), ScriptKind::kFactor});
  Network two = technology_map(net, {&GateLibrary::basic(), ScriptKind::kBalance});
  EXPECT_EQ(mapped_area(fac), 3);
  EXPECT_EQ(mapped_area(two), 5);
  EXPECT_EQ(check_po_equivalence(fac, 0, two, 0), CheckResult::kHolds);
}

TEST(MapperTest, ConstantsPropagate) {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId zero = net.add_const(false);
  net.add_po("f", net.add_and(a, zero));
  Network mapped = technology_map(net);
  EXPECT_EQ(mapped.num_logic_nodes(), 0);
  EXPECT_EQ(mapped.node(mapped.po(0).driver).kind, NodeKind::kConst0);
}

TEST(OptimizeTest, SweepsConstantsAndBuffers) {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId one = net.add_const(true);
  NodeId t = net.add_and(a, one);       // == a
  NodeId buf = net.add_buf(t);          // == a
  NodeId inv2 = net.add_not(net.add_not(buf));  // == a
  net.add_po("f", net.add_and(inv2, b));
  Network opt = optimize(net);
  EXPECT_EQ(opt.num_logic_nodes(), 1);
  EXPECT_EQ(check_po_equivalence(net, 0, opt, 0), CheckResult::kHolds);
}

TEST(OptimizeTest, StrashMergesDuplicates) {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId x = net.add_and(a, b);
  NodeId y = net.add_and(a, b);
  net.add_po("f", net.add_or(x, y));
  Network opt = optimize(net);
  // x and y merge; the OR of identical signals minimizes to a buffer which
  // collapses, leaving just the AND.
  EXPECT_EQ(opt.num_logic_nodes(), 1);
  EXPECT_EQ(check_po_equivalence(net, 0, opt, 0), CheckResult::kHolds);
}

TEST(OptimizeTest, MinimizeReducesRedundantSop) {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  // ab + a'c + bc (redundant consensus term).
  NodeId f = net.add_node({a, b, c}, *Sop::parse(3, "11-\n0-1\n-11"));
  net.add_po("f", f);
  Network opt = optimize(net);
  EXPECT_EQ(opt.node(opt.po(0).driver).sop.num_cubes(), 2);
  EXPECT_EQ(check_po_equivalence(net, 0, opt, 0), CheckResult::kHolds);
}

class OptimizeProperty : public ::testing::TestWithParam<int> {};

TEST_P(OptimizeProperty, PreservesAllOutputs) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 5; ++trial) {
    Network net = random_network(rng, 6, 15);
    Network opt = optimize(net);
    for (int po = 0; po < net.num_pos(); ++po) {
      EXPECT_EQ(check_po_equivalence(net, po, opt, po), CheckResult::kHolds);
    }
    EXPECT_LE(opt.num_logic_nodes(), net.num_logic_nodes());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OptimizeProperty,
                         ::testing::Values(5, 15, 25, 35));

}  // namespace
}  // namespace apx
