// Tests for the shared work-stealing task pool (core/task_pool.hpp): the
// scheduling invariants (every index exactly once, inline fallback,
// exception propagation, nested submission), the APX_THREADS policy
// plumbing, and the bit-identity contract on the real consumers —
// analyze_reliability and evaluate_ced_coverage across 1/2/8 workers.
#include "core/task_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "core/ced.hpp"
#include "mapping/mapper.hpp"
#include "mapping/optimize.hpp"
#include "reliability/reliability.hpp"

namespace apx {
namespace {

// Restores the programmatic thread-count override on scope exit so a
// failing test cannot leak its policy into later tests.
struct ThreadCountGuard {
  ~ThreadCountGuard() { set_thread_count(0); }
};

TEST(TaskPoolTest, ParseThreadEnv) {
  EXPECT_EQ(parse_thread_env(nullptr), 0);
  EXPECT_EQ(parse_thread_env(""), 0);
  EXPECT_EQ(parse_thread_env("junk"), 0);
  EXPECT_EQ(parse_thread_env("4x"), 0);
  EXPECT_EQ(parse_thread_env("-3"), 0);
  EXPECT_EQ(parse_thread_env("0"), 0);
  EXPECT_EQ(parse_thread_env("1"), 1);
  EXPECT_EQ(parse_thread_env("8"), 8);
  // Absurd requests clamp to the pool's hard cap instead of spawning.
  EXPECT_EQ(parse_thread_env("100000"), TaskPool::kMaxWorkers);
}

TEST(TaskPoolTest, ResolveThreadOption) {
  ThreadCountGuard guard;
  set_thread_count(3);
  EXPECT_EQ(resolve_thread_option(0), 3);   // defer to policy
  EXPECT_EQ(resolve_thread_option(-1), 3);  // defer to policy
  EXPECT_EQ(resolve_thread_option(5), 5);   // explicit request wins
  EXPECT_EQ(resolve_thread_option(TaskPool::kMaxWorkers + 7),
            TaskPool::kMaxWorkers);
}

TEST(TaskPoolTest, EveryIndexExactlyOnce) {
  const int n = 10000;
  std::vector<std::atomic<int>> hits(n);
  TaskPool::instance().parallel_for(
      0, n, [&](int64_t i) { hits[i].fetch_add(1); }, /*max_slots=*/8,
      /*grain=*/7);
  for (int i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(TaskPoolTest, SingleSlotRunsInlineOnCaller) {
  const std::thread::id caller = std::this_thread::get_id();
  bool on_caller = true;
  bool slot_zero = true;
  TaskPool::instance().parallel_for_slotted(
      0, 64, /*max_slots=*/1, /*grain=*/1, [&](int slot, int64_t) {
        on_caller = on_caller && std::this_thread::get_id() == caller;
        slot_zero = slot_zero && slot == 0;
      });
  EXPECT_TRUE(on_caller);
  EXPECT_TRUE(slot_zero);
}

// APX_THREADS=1 is delivered through the same policy path as
// set_thread_count(1) (thread_count() consults the override, then the
// cached env parse): loops must degrade to the inline serial path.
TEST(TaskPoolTest, ThreadCountOneFallsBackToInline) {
  ThreadCountGuard guard;
  set_thread_count(1);
  EXPECT_EQ(thread_count(), 1);
  const std::thread::id caller = std::this_thread::get_id();
  bool on_caller = true;
  TaskPool::instance().parallel_for(
      0, 128, [&](int64_t) {
        on_caller = on_caller && std::this_thread::get_id() == caller;
      });  // max_slots=0 -> policy -> 1 -> inline
  EXPECT_TRUE(on_caller);
}

TEST(TaskPoolTest, ExceptionPropagatesAndPoolSurvives) {
  EXPECT_THROW(
      TaskPool::instance().parallel_for(
          0, 1000,
          [&](int64_t i) {
            if (i == 537) throw std::runtime_error("chunk failure");
          },
          /*max_slots=*/4),
      std::runtime_error);
  // Inline path must propagate identically.
  EXPECT_THROW(
      TaskPool::instance().parallel_for(
          0, 10, [&](int64_t) { throw std::runtime_error("inline failure"); },
          /*max_slots=*/1),
      std::runtime_error);
  // The pool remains fully usable after a failed loop.
  std::atomic<int> count{0};
  TaskPool::instance().parallel_for(
      0, 100, [&](int64_t) { count.fetch_add(1); }, /*max_slots=*/4);
  EXPECT_EQ(count.load(), 100);
}

TEST(TaskPoolTest, NestedSubmissionCompletes) {
  const int outer = 6, inner = 200;
  std::vector<std::atomic<int>> hits(outer * inner);
  TaskPool::instance().parallel_for(
      0, outer,
      [&](int64_t i) {
        TaskPool::instance().parallel_for(
            0, inner,
            [&](int64_t j) { hits[i * inner + j].fetch_add(1); },
            /*max_slots=*/4);
      },
      /*max_slots=*/4);
  for (int k = 0; k < outer * inner; ++k) {
    ASSERT_EQ(hits[k].load(), 1) << "cell " << k;
  }
}

TEST(TaskPoolTest, ParallelMapOrdersResults) {
  std::vector<int64_t> out = TaskPool::instance().parallel_map<int64_t>(
      1000, [](int64_t i) { return i * i; }, /*max_slots=*/8);
  ASSERT_EQ(out.size(), 1000u);
  for (int64_t i = 0; i < 1000; ++i) ASSERT_EQ(out[i], i * i);
}

// The ordered reduction folds on the caller in index order, so even a
// non-associative floating-point sum is bit-identical for any worker count.
TEST(TaskPoolTest, ReduceOrderedBitIdenticalAcrossWorkerCounts) {
  auto run = [&](int slots) {
    return TaskPool::instance().reduce_ordered<double>(
        4096, 0.0, [](int64_t i) { return 1.0 / static_cast<double>(i + 1); },
        [](double a, double b) { return a + b; }, slots);
  };
  const double serial = run(1);
  for (int slots : {2, 8}) {
    double parallel = run(slots);
    EXPECT_EQ(std::memcmp(&serial, &parallel, sizeof(double)), 0)
        << "slots=" << slots;
  }
}

// --- Bit-identity on the real consumers ---------------------------------

TEST(TaskPoolDeterminism, AnalyzeReliabilityAcrossThreadCounts) {
  Network mapped = technology_map(quick_synthesis(make_benchmark("cmb")));
  ReliabilityOptions opt;
  opt.num_fault_samples = 300;
  opt.num_threads = 1;
  ReliabilityReport serial = analyze_reliability(mapped, opt);
  ASSERT_GT(serial.runs, 0);
  for (int threads : {2, 8}) {
    opt.num_threads = threads;
    ReliabilityReport parallel = analyze_reliability(mapped, opt);
    ASSERT_EQ(parallel.outputs.size(), serial.outputs.size());
    for (size_t o = 0; o < serial.outputs.size(); ++o) {
      EXPECT_EQ(parallel.outputs[o].rate_0_to_1, serial.outputs[o].rate_0_to_1)
          << "po " << o << " threads " << threads;
      EXPECT_EQ(parallel.outputs[o].rate_1_to_0, serial.outputs[o].rate_1_to_0)
          << "po " << o << " threads " << threads;
    }
    EXPECT_EQ(parallel.any_output_error_rate, serial.any_output_error_rate);
    EXPECT_EQ(parallel.max_ced_coverage, serial.max_ced_coverage);
  }
}

TEST(TaskPoolDeterminism, CedCoverageAcrossThreadCounts) {
  Network mapped = technology_map(quick_synthesis(make_benchmark("cmb")));
  std::vector<ApproxDirection> dirs(mapped.num_pos(),
                                    ApproxDirection::kZeroApprox);
  CedDesign ced = build_ced_design(mapped, mapped, dirs);
  CoverageOptions opt;
  opt.num_fault_samples = 300;
  opt.num_threads = 1;
  CoverageResult serial = evaluate_ced_coverage(ced, opt);
  ASSERT_GT(serial.runs, 0);
  for (int threads : {2, 8}) {
    opt.num_threads = threads;
    CoverageResult parallel = evaluate_ced_coverage(ced, opt);
    EXPECT_EQ(parallel.erroneous, serial.erroneous) << "threads " << threads;
    EXPECT_EQ(parallel.detected, serial.detected) << "threads " << threads;
    EXPECT_EQ(parallel.runs, serial.runs) << "threads " << threads;
  }
}

}  // namespace
}  // namespace apx
