#include "baselines/parity.hpp"
#include "baselines/partial_duplication.hpp"

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "mapping/optimize.hpp"
#include "sim/simulator.hpp"

namespace apx {
namespace {

Network mapped_bench(const std::string& name) {
  return technology_map(quick_synthesis(make_benchmark(name)));
}

TEST(ParityTest, PredictorComputesOutputParity) {
  Network mapped = mapped_bench("rca4");
  Network pred = build_parity_predictor(mapped);
  ASSERT_EQ(pred.num_pos(), 1);
  Simulator sim_m(mapped);
  Simulator sim_p(pred);
  PatternSet patterns = PatternSet::random(mapped.num_pis(), 8, 77);
  sim_m.run(patterns);
  sim_p.run(patterns);
  for (int w = 0; w < 8; ++w) {
    uint64_t parity = 0;
    for (const PrimaryOutput& po : mapped.pos()) {
      parity ^= sim_m.value(po.driver)[w];
    }
    EXPECT_EQ(parity, sim_p.value(pred.po(0).driver)[w]) << w;
  }
}

TEST(ParityTest, NoFalseAlarms) {
  Network mapped = mapped_bench("rca4");
  CedDesign ced = build_parity_ced(mapped);
  Simulator sim(ced.design);
  sim.run(PatternSet::random(ced.design.num_pis(), 32, 5));
  const auto& z1 = sim.value(ced.error_pair.rail1);
  const auto& z2 = sim.value(ced.error_pair.rail2);
  for (size_t w = 0; w < z1.size(); ++w) EXPECT_EQ(z1[w] ^ z2[w], ~0ULL);
}

TEST(ParityTest, DetectsSingleOutputErrors) {
  // On a decoder exactly one output is hot; most single faults flip an odd
  // number of outputs, so parity coverage should be substantial.
  Network mapped = mapped_bench("dec38");
  CedDesign ced = build_parity_ced(mapped);
  CoverageOptions copt;
  copt.num_fault_samples = 300;
  CoverageResult cov = evaluate_ced_coverage(ced, copt);
  EXPECT_GT(cov.erroneous, 0);
  EXPECT_GT(cov.coverage(), 0.5);
}

TEST(ParityTest, OverheadIsRoughlyFullDuplication) {
  Network mapped = mapped_bench("cmp4");
  CedDesign ced = build_parity_ced(mapped);
  OverheadReport rep = measure_overheads(ced);
  // Paper reports ~106% average area overhead for parity prediction.
  EXPECT_GT(rep.area_overhead_pct(), 60.0);
}

TEST(PartialDuplicationTest, FullTargetDuplicatesEverything) {
  Network mapped = mapped_bench("cmp4");
  PartialDuplicationResult r = build_partial_duplication(mapped, 1.01);
  EXPECT_EQ(r.duplicated_pos.size(), static_cast<size_t>(mapped.num_pos()));
}

TEST(PartialDuplicationTest, LowTargetDuplicatesFewer) {
  Network mapped = mapped_bench("dec38");
  PartialDuplicationResult full = build_partial_duplication(mapped, 1.01);
  PartialDuplicationResult half = build_partial_duplication(mapped, 0.4);
  EXPECT_LT(half.duplicated_pos.size(), full.duplicated_pos.size());
  EXPECT_LT(half.ced.overhead_area(), full.ced.overhead_area());
  EXPECT_GE(half.estimated_coverage, 0.4);
}

TEST(PartialDuplicationTest, NoFalseAlarmsAndDetectsErrors) {
  Network mapped = mapped_bench("cmp4");
  PartialDuplicationResult r = build_partial_duplication(mapped, 0.9);
  Simulator sim(r.ced.design);
  sim.run(PatternSet::random(r.ced.design.num_pis(), 32, 6));
  const auto& z1 = sim.value(r.ced.error_pair.rail1);
  const auto& z2 = sim.value(r.ced.error_pair.rail2);
  for (size_t w = 0; w < z1.size(); ++w) EXPECT_EQ(z1[w] ^ z2[w], ~0ULL);

  CoverageOptions copt;
  copt.num_fault_samples = 300;
  CoverageResult cov = evaluate_ced_coverage(r.ced, copt);
  EXPECT_GT(cov.coverage(), 0.5);
}

TEST(PartialDuplicationTest, WireOnlyNetworkHasNoFaultSites) {
  // PIs wired straight to POs: enumerate_faults() is empty. The old
  // ranking loop computed rng() % 0 — integer division by zero (UB,
  // SIGFPE in practice) — before ever reaching the guarded histogram.
  Network net;
  net.set_name("wires");
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  net.add_po("x", a);
  net.add_po("y", b);
  net.check();

  PartialDuplicationResult r = build_partial_duplication(net, 0.9);
  EXPECT_EQ(r.estimated_coverage, 0.0);
  // With zero observed errors no prefix reaches the target: every PO is
  // duplicated.
  EXPECT_EQ(r.duplicated_pos.size(), 2u);
}

TEST(PartialDuplicationTest, SelectionIsThreadCountInvariant) {
  Network mapped = mapped_bench("dec38");
  PartialDuplicationOptions serial;
  serial.num_threads = 1;
  PartialDuplicationOptions parallel = serial;
  parallel.num_threads = 4;
  PartialDuplicationResult a = build_partial_duplication(mapped, 0.7, serial);
  PartialDuplicationResult b =
      build_partial_duplication(mapped, 0.7, parallel);
  EXPECT_EQ(a.duplicated_pos, b.duplicated_pos);
  EXPECT_EQ(a.estimated_coverage, b.estimated_coverage);
  EXPECT_EQ(a.ced.design.num_nodes(), b.ced.design.num_nodes());
}

TEST(PartialDuplicationTest, CoverageTracksEstimate) {
  Network mapped = mapped_bench("dec38");
  PartialDuplicationResult r = build_partial_duplication(mapped, 0.7);
  CoverageOptions copt;
  copt.num_fault_samples = 500;
  CoverageResult cov = evaluate_ced_coverage(r.ced, copt);
  // Duplication detects every error visible at a duplicated output, so the
  // measured coverage should be near the selection-time estimate.
  EXPECT_NEAR(cov.coverage(), r.estimated_coverage, 0.15);
}

}  // namespace
}  // namespace apx
