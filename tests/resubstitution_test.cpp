#include <gtest/gtest.h>

#include <random>

#include "mapping/optimize.hpp"
#include "sat/encode.hpp"

namespace apx {
namespace {

TEST(ResubstitutionTest, ReusesExistingDivisor) {
  // d = b + c exists; f = ab + ac + e should rewrite to f = a*d + e.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  NodeId e = net.add_pi("e");
  NodeId d = net.add_node({b, c}, *Sop::parse(2, "1-\n-1"), "d");
  NodeId f = net.add_node({a, b, c, e},
                          *Sop::parse(4, "11--\n1-1-\n---1"), "f");
  net.add_po("d", d);
  net.add_po("f", f);
  Network before = net;
  int before_lits = net.total_literals();

  int rewrites = resubstitute(net);
  EXPECT_EQ(rewrites, 1);
  EXPECT_LT(net.total_literals(), before_lits);
  // f now has d as a fanin.
  const Node& fn = net.node(f);
  EXPECT_NE(std::find(fn.fanins.begin(), fn.fanins.end(), d),
            fn.fanins.end());
  for (int po = 0; po < net.num_pos(); ++po) {
    EXPECT_EQ(check_po_equivalence(before, po, net, po), CheckResult::kHolds);
  }
}

TEST(ResubstitutionTest, NoDivisorNoChange) {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId f = net.add_xor(a, b, "f");
  net.add_po("f", f);
  EXPECT_EQ(resubstitute(net), 0);
}

TEST(ResubstitutionTest, NeverCreatesCycles) {
  std::mt19937 rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    Network net;
    std::vector<NodeId> pool;
    for (int i = 0; i < 5; ++i) pool.push_back(net.add_pi("p" + std::to_string(i)));
    for (int g = 0; g < 20; ++g) {
      int k = 2 + static_cast<int>(rng() % 3);
      std::vector<NodeId> fanins;
      while (static_cast<int>(fanins.size()) < k) {
        NodeId cand = pool[rng() % pool.size()];
        if (std::find(fanins.begin(), fanins.end(), cand) == fanins.end()) {
          fanins.push_back(cand);
        }
      }
      Sop sop(k);
      for (int ci = 0; ci < 2 + static_cast<int>(rng() % 2); ++ci) {
        Cube c = Cube::full(k);
        for (int v = 0; v < k; ++v) {
          int roll = static_cast<int>(rng() % 3);
          if (roll == 0) c.set(v, LitCode::kNeg);
          if (roll == 1) c.set(v, LitCode::kPos);
        }
        sop.add_cube(c);
      }
      sop.make_scc_free();
      if (sop.empty()) continue;
      pool.push_back(net.add_node(fanins, sop));
    }
    net.add_po("f", pool.back());
    net.add_po("g", pool[pool.size() / 2]);
    Network before = net;
    resubstitute(net);
    net.check();  // throws on cycles
    for (int po = 0; po < net.num_pos(); ++po) {
      EXPECT_EQ(check_po_equivalence(before, po, net, po),
                CheckResult::kHolds);
    }
  }
}

TEST(ResubstitutionTest, OptimizeOptionRunsIt) {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  NodeId d = net.add_node({b, c}, *Sop::parse(2, "1-\n-1"), "d");
  NodeId f = net.add_node({a, b, c},
                          *Sop::parse(3, "11-\n1-1"), "f");
  net.add_po("d", d);
  net.add_po("f", f);
  OptimizeOptions opt;
  opt.resubstitute = true;
  Network out = optimize(net, opt);
  EXPECT_EQ(check_po_equivalence(net, 1, out, 1), CheckResult::kHolds);
  EXPECT_LE(out.total_literals(), net.total_literals());
}

}  // namespace
}  // namespace apx
