#include "core/observability.hpp"

#include <gtest/gtest.h>

namespace apx {
namespace {

TEST(ObservabilityTest, AndGateObservability) {
  // g = a & b: a is observable iff b = 1, so obs0(a) ~ P(a=0,b=1) = 0.25
  // and obs1(a) ~ P(a=1,b=1) = 0.25 under uniform inputs.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId g = net.add_and(a, b, "g");
  net.add_po("g", g);
  ObservabilityAnalysis obs(net, 256);
  const FaninObservability& fa = obs.fanin_obs(g, 0);
  EXPECT_NEAR(fa.obs0, 0.25, 0.02);
  EXPECT_NEAR(fa.obs1, 0.25, 0.02);
}

TEST(ObservabilityTest, XorAlwaysObservable) {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId g = net.add_xor(a, b, "g");
  net.add_po("g", g);
  ObservabilityAnalysis obs(net, 256);
  const FaninObservability& fa = obs.fanin_obs(g, 0);
  EXPECT_NEAR(fa.obs0 + fa.obs1, 1.0, 1e-12);
  EXPECT_NEAR(fa.obs0, 0.5, 0.02);
}

TEST(ObservabilityTest, SkewedFaninSkewsPhases) {
  // g = a & t where t = b | c | d is mostly 1: obs1(t at g) requires a=1 and
  // t=1 -> ~0.4375; obs0(t) requires a=1, t=0 -> ~0.0625.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  NodeId d = net.add_pi("d");
  NodeId t = net.add_node({b, c, d}, *Sop::parse(3, "1--\n-1-\n--1"), "t");
  NodeId g = net.add_and(a, t, "g");
  net.add_po("g", g);
  ObservabilityAnalysis obs(net, 256);
  const FaninObservability& ft = obs.fanin_obs(g, 1);
  EXPECT_NEAR(ft.obs1, 0.4375, 0.02);
  EXPECT_NEAR(ft.obs0, 0.0625, 0.02);
  EXPECT_GT(ft.obs1 / ft.obs0, 3.0);
}

TEST(ObservabilityTest, UnobservableFaninHasZeroObservability) {
  // g depends on a only: the b column is present but never bound.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId g = net.add_node({a, b}, *Sop::parse(2, "1-"), "g");
  net.add_po("g", g);
  ObservabilityAnalysis obs(net, 64);
  EXPECT_DOUBLE_EQ(obs.fanin_obs(g, 1).obs0, 0.0);
  EXPECT_DOUBLE_EQ(obs.fanin_obs(g, 1).obs1, 0.0);
  EXPECT_NEAR(obs.fanin_obs(g, 0).total(), 1.0, 1e-12);
}

TEST(ObservabilityTest, SignalProbabilityTracksFunction) {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId g = net.add_or(a, b, "g");
  net.add_po("g", g);
  ObservabilityAnalysis obs(net, 256);
  EXPECT_NEAR(obs.signal_probability(g), 0.75, 0.02);
  EXPECT_NEAR(obs.signal_probability(a), 0.5, 0.02);
}

TEST(ObservabilityTest, DeterministicForFixedSeed) {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId g = net.add_and(a, b, "g");
  net.add_po("g", g);
  ObservabilityAnalysis o1(net, 32, 77);
  ObservabilityAnalysis o2(net, 32, 77);
  EXPECT_DOUBLE_EQ(o1.fanin_obs(g, 0).obs0, o2.fanin_obs(g, 0).obs0);
}

}  // namespace
}  // namespace apx
