#include "bdd/network_bdd.hpp"

#include <gtest/gtest.h>

#include <random>

namespace apx {
namespace {

TEST(NetworkBddTest, Fig1StyleNetwork) {
  // f = ab + (c + d): evaluate both the node BDDs and minterm counts.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  NodeId d = net.add_pi("d");
  NodeId n4 = net.add_and(a, b, "n4");
  NodeId n5 = net.add_or(c, d, "n5");
  NodeId f = net.add_or(n4, n5, "f");
  net.add_po("f", f);

  NetworkBdds bdds(net);
  auto& mgr = bdds.manager();
  EXPECT_NEAR(mgr.sat_fraction(bdds.node_ref(n4)), 0.25, 1e-12);
  EXPECT_NEAR(mgr.sat_fraction(bdds.node_ref(n5)), 0.75, 1e-12);
  // f = ab + c + d is 1 on 13 of 16 minterms.
  EXPECT_NEAR(mgr.sat_count(bdds.po_ref(0)), 13.0, 1e-9);
}

TEST(NetworkBddTest, Section2Example) {
  // F = a + b + c'd' + cd; G = a + b. G is a 1-approximation covering
  // 12/14 one-minterms (85.72%, paper Sec. 2).
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  NodeId d = net.add_pi("d");
  NodeId xnor_cd = net.add_node({c, d}, *Sop::parse(2, "00\n11"), "xnor");
  NodeId ab = net.add_or(a, b, "ab");
  NodeId f = net.add_or(ab, xnor_cd, "F");
  net.add_po("F", f);
  net.add_po("G", ab);

  NetworkBdds bdds(net);
  auto& mgr = bdds.manager();
  auto f_ref = bdds.po_ref(0);
  auto g_ref = bdds.po_ref(1);
  EXPECT_TRUE(mgr.implies(g_ref, f_ref));
  double approx_pct = mgr.sat_count(g_ref) / mgr.sat_count(f_ref);
  EXPECT_NEAR(approx_pct, 12.0 / 14.0, 1e-9);  // 85.72%
}

TEST(NetworkBddTest, EvalSopMatchesNodeConstruction) {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  NodeId g = net.add_node({a, b, c}, *Sop::parse(3, "11-\n--1"), "g");
  net.add_po("g", g);
  NetworkBdds bdds(net);
  // Re-evaluate the same SOP through eval_sop.
  auto ref = bdds.eval_sop(*Sop::parse(3, "11-\n--1"),
                           {bdds.node_ref(a), bdds.node_ref(b), bdds.node_ref(c)});
  EXPECT_EQ(ref, bdds.po_ref(0));
}

TEST(NetworkBddTest, ConstantsAndBuffers) {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId buf = net.add_buf(a);
  NodeId one = net.add_const(true);
  net.add_po("buf", buf);
  net.add_po("one", one);
  NetworkBdds bdds(net);
  EXPECT_EQ(bdds.po_ref(0), bdds.node_ref(a));
  EXPECT_EQ(bdds.po_ref(1), bdds.manager().one());
}

TEST(NetworkBddTest, BuildPoBddReturnsNulloptOnOverflow) {
  // Hidden-weighted-bit-like construction that blows tiny budgets.
  Network net;
  std::vector<NodeId> pis;
  for (int i = 0; i < 12; ++i) pis.push_back(net.add_pi("x" + std::to_string(i)));
  NodeId acc = pis[0];
  for (int i = 1; i < 12; ++i) {
    acc = net.add_xor(acc, net.add_and(pis[i], pis[(i * 7) % 12]));
  }
  net.add_po("f", acc);
  BddManager mgr(12, 16);
  EXPECT_EQ(build_po_bdd(mgr, net, 0), std::nullopt);
}

}  // namespace
}  // namespace apx
