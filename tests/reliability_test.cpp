#include "reliability/reliability.hpp"

#include <gtest/gtest.h>

namespace apx {
namespace {

// A wide AND cone: output is 1 rarely, so faults overwhelmingly cause
// 0->1 errors => 0-approximation must dominate.
Network and_cone(int width) {
  Network net;
  std::vector<NodeId> pis;
  for (int i = 0; i < width; ++i) pis.push_back(net.add_pi("x" + std::to_string(i)));
  NodeId acc = pis[0];
  for (int i = 1; i < width; ++i) acc = net.add_and(acc, pis[i]);
  net.add_po("f", acc);
  return net;
}

Network or_cone(int width) {
  Network net;
  std::vector<NodeId> pis;
  for (int i = 0; i < width; ++i) pis.push_back(net.add_pi("x" + std::to_string(i)));
  NodeId acc = pis[0];
  for (int i = 1; i < width; ++i) acc = net.add_or(acc, pis[i]);
  net.add_po("f", acc);
  return net;
}

TEST(ReliabilityTest, AndConeSkewsToZeroApprox) {
  ReliabilityOptions opt;
  opt.num_fault_samples = 400;
  ReliabilityReport r = analyze_reliability(and_cone(6), opt);
  ASSERT_EQ(r.outputs.size(), 1u);
  EXPECT_GT(r.outputs[0].rate_0_to_1, r.outputs[0].rate_1_to_0);
  EXPECT_EQ(r.outputs[0].dominant(), ApproxDirection::kZeroApprox);
  EXPECT_GT(r.outputs[0].skew(), 0.8);
  EXPECT_GT(r.max_ced_coverage, 0.8);
  EXPECT_LE(r.max_ced_coverage, 1.0 + 1e-12);
}

TEST(ReliabilityTest, OrConeSkewsToOneApprox) {
  ReliabilityOptions opt;
  opt.num_fault_samples = 400;
  ReliabilityReport r = analyze_reliability(or_cone(6), opt);
  EXPECT_EQ(r.outputs[0].dominant(), ApproxDirection::kOneApprox);
  EXPECT_GT(r.outputs[0].rate_1_to_0, r.outputs[0].rate_0_to_1);
}

TEST(ReliabilityTest, XorHasNoSkew) {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  net.add_po("f", net.add_xor(a, b));
  ReliabilityOptions opt;
  opt.num_fault_samples = 500;
  ReliabilityReport r = analyze_reliability(net, opt);
  // XOR output is unbiased; the two directions should be within noise.
  EXPECT_NEAR(r.outputs[0].rate_0_to_1, r.outputs[0].rate_1_to_0, 0.05);
  // Max coverage therefore hovers near the dominant share (about half).
  EXPECT_LT(r.max_ced_coverage, 0.75);
}

TEST(ReliabilityTest, RatesAreConsistent) {
  ReliabilityOptions opt;
  opt.num_fault_samples = 300;
  Network net = and_cone(4);
  ReliabilityReport r = analyze_reliability(net, opt);
  EXPECT_GT(r.runs, 0);
  // Single output: any_output_error_rate equals the output's total rate.
  EXPECT_NEAR(r.any_output_error_rate, r.outputs[0].total_rate(), 1e-12);
  // Determinism for a fixed seed.
  ReliabilityReport r2 = analyze_reliability(net, opt);
  EXPECT_DOUBLE_EQ(r.any_output_error_rate, r2.any_output_error_rate);
  EXPECT_DOUBLE_EQ(r.max_ced_coverage, r2.max_ced_coverage);
}

TEST(ReliabilityTest, ChooseDirectionsMatchesDominant) {
  ReliabilityOptions opt;
  opt.num_fault_samples = 200;
  Network net = and_cone(4);
  NodeId a = net.pis()[0];
  NodeId b = net.pis()[1];
  net.add_po("g", net.add_or(a, b));
  ReliabilityReport r = analyze_reliability(net, opt);
  auto dirs = choose_directions(r);
  ASSERT_EQ(dirs.size(), 2u);
  EXPECT_EQ(dirs[0], ApproxDirection::kZeroApprox);
  EXPECT_EQ(dirs[1], ApproxDirection::kOneApprox);
}

TEST(ReliabilityTest, EmptyNetworkYieldsEmptyReport) {
  Network net;
  net.add_pi("a");
  ReliabilityReport r = analyze_reliability(net);
  EXPECT_EQ(r.runs, 0);
  EXPECT_TRUE(r.outputs.empty());
}

}  // namespace
}  // namespace apx
