#include "network/verilog.hpp"

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"

namespace apx {
namespace {

TEST(VerilogTest, EmitsWellFormedModule) {
  Network net = make_benchmark("fadd");
  std::string v = write_verilog_string(net, "fadd");
  EXPECT_NE(v.find("module fadd ("), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("input a;"), std::string::npos);
  EXPECT_NE(v.find("output sum"), std::string::npos);
  // XOR node appears as a two-cube OR of AND terms.
  EXPECT_NE(v.find("|"), std::string::npos);
  EXPECT_NE(v.find("~"), std::string::npos);
}

TEST(VerilogTest, SanitizesHostileNames) {
  Network net;
  NodeId a = net.add_pi("sig[3]");
  NodeId b = net.add_pi("3weird");
  net.add_po("out.x", net.add_and(a, b));
  std::string v = write_verilog_string(net);
  EXPECT_EQ(v.find('['), std::string::npos);
  EXPECT_EQ(v.find('.'), std::string::npos);
  EXPECT_NE(v.find("sig_3_"), std::string::npos);
  EXPECT_NE(v.find("n_3weird"), std::string::npos);
}

TEST(VerilogTest, ConstantsAndEmptySops) {
  Network net;
  (void)net.add_pi("a");
  net.add_po("one", net.add_const(true));
  net.add_po("zero", net.add_const(false));
  std::string v = write_verilog_string(net);
  EXPECT_NE(v.find("= 1'b1;"), std::string::npos);
  EXPECT_NE(v.find("= 1'b0;"), std::string::npos);
}

TEST(VerilogTest, UniquifiesCollidingNames) {
  Network net;
  NodeId a = net.add_pi("x_1");
  NodeId b = net.add_pi("x.1");  // sanitizes to x_1 as well
  net.add_po("y", net.add_or(a, b));
  std::string v = write_verilog_string(net);
  // Both inputs must appear as distinct identifiers.
  EXPECT_NE(v.find("x_1,"), std::string::npos);
  EXPECT_NE(v.find("x_1_0"), std::string::npos);
}

}  // namespace
}  // namespace apx
