// Cross-module integration sweeps: the full CED pipeline run over every
// embedded benchmark and every (library, script) implementation, checking
// the system-level invariants that every configuration must satisfy:
//   * every approximation verifies,
//   * the fault-free CED design never raises the error pair,
//   * coverage is within [0, 1] and bounded by detected <= erroneous,
//   * the approximate circuit is never deeper than the original,
//   * the mapped design is functionally equivalent to the input.
#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "core/pipeline.hpp"
#include "mapping/optimize.hpp"
#include "sat/encode.hpp"
#include "sim/simulator.hpp"

namespace apx {
namespace {

PipelineOptions small_options() {
  PipelineOptions opt;
  opt.approx.significance_threshold = 0.15;
  opt.reliability.num_fault_samples = 200;
  opt.coverage.num_fault_samples = 200;
  return opt;
}

class PipelineOverBenchmarks : public ::testing::TestWithParam<const char*> {};

TEST_P(PipelineOverBenchmarks, SystemInvariantsHold) {
  Network net = make_benchmark(GetParam());
  PipelineResult r = run_ced_pipeline(net, small_options());

  EXPECT_TRUE(r.synthesis.all_verified());
  EXPECT_GE(r.coverage.detected, 0);
  EXPECT_LE(r.coverage.detected, r.coverage.erroneous);
  EXPECT_LE(r.checkgen_delay, r.original_delay);
  EXPECT_EQ(r.directions.size(), static_cast<size_t>(net.num_pos()));

  // No false alarms in fault-free operation.
  Simulator sim(r.ced.design);
  sim.run(PatternSet::random(r.ced.design.num_pis(), 16, 1));
  const auto& z1 = sim.value(r.ced.error_pair.rail1);
  const auto& z2 = sim.value(r.ced.error_pair.rail2);
  for (size_t w = 0; w < z1.size(); ++w) {
    ASSERT_EQ(z1[w] ^ z2[w], ~0ULL) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Embedded, PipelineOverBenchmarks,
                         ::testing::Values("c17", "fadd", "rca4", "rca8",
                                           "mux41", "dec38", "cmp4", "maj5",
                                           "alu1", "cmb", "cordic"));

class PipelineOverImplementations : public ::testing::TestWithParam<int> {};

TEST_P(PipelineOverImplementations, EveryLibraryScriptWorks) {
  const Implementation& impl = standard_implementations()[GetParam()];
  Network net = make_benchmark("cmp4");
  PipelineOptions opt = small_options();
  opt.map_options = {impl.library, impl.script};
  PipelineResult r = run_ced_pipeline(net, opt);
  EXPECT_TRUE(r.synthesis.all_verified()) << impl.name;

  // The mapped original must still compute the input functions.
  Network reference = quick_synthesis(net);
  for (int po = 0; po < net.num_pos(); ++po) {
    EXPECT_EQ(check_po_equivalence(reference, po, r.mapped_original, po),
              CheckResult::kHolds)
        << impl.name << " po " << po;
  }
}

INSTANTIATE_TEST_SUITE_P(AllImpls, PipelineOverImplementations,
                         ::testing::Range(0, 5));

TEST(IntegrationTest, MixedDirectionsAcrossOutputs) {
  // Force both checker flavors in one design.
  Network net = make_benchmark("cmp4");
  Network opt = quick_synthesis(net);
  Network mapped = technology_map(opt);
  std::vector<ApproxDirection> dirs = {ApproxDirection::kZeroApprox,
                                       ApproxDirection::kOneApprox};
  ApproxOptions aopt;
  aopt.significance_threshold = 0.1;
  ApproxResult synth = synthesize_approximation(opt, dirs, aopt);
  ASSERT_TRUE(synth.all_verified());
  CedDesign ced = build_ced_design(mapped, technology_map(synth.approx), dirs);
  Simulator sim(ced.design);
  sim.run(PatternSet::random(ced.design.num_pis(), 16, 2));
  const auto& z1 = sim.value(ced.error_pair.rail1);
  const auto& z2 = sim.value(ced.error_pair.rail2);
  for (size_t w = 0; w < z1.size(); ++w) {
    EXPECT_EQ(z1[w] ^ z2[w], ~0ULL);
  }
}

TEST(IntegrationTest, RepeatedPipelineRunsAreDeterministic) {
  Network net = make_benchmark("dec38");
  PipelineResult a = run_ced_pipeline(net, small_options());
  PipelineResult b = run_ced_pipeline(net, small_options());
  EXPECT_EQ(a.coverage.detected, b.coverage.detected);
  EXPECT_EQ(a.coverage.erroneous, b.coverage.erroneous);
  EXPECT_EQ(a.mapped_checkgen.num_logic_nodes(),
            b.mapped_checkgen.num_logic_nodes());
  EXPECT_DOUBLE_EQ(a.mean_approximation_pct(), b.mean_approximation_pct());
}

}  // namespace
}  // namespace apx
