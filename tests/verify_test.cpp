// Tests for the incremental ApproxOracle: the structural fast path, the
// BDD-overflow -> SAT fallback chain, solver-instance survival across
// refreshes, and incremental-vs-full-rebuild equivalence.
#include "core/verify.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "network/ordering.hpp"
#include "sim/simulator.hpp"

namespace apx {
namespace {

// Three POs sharing internal cones: enough structure that a single-node
// repair dirties some cones and leaves others untouched.
Network shared_cone_net() {
  Network net;
  std::vector<NodeId> pi;
  for (int i = 0; i < 8; ++i) {
    pi.push_back(net.add_pi("x" + std::to_string(i)));
  }
  NodeId n1 = net.add_and(pi[0], pi[1], "n1");
  NodeId n2 = net.add_or(pi[2], pi[3], "n2");
  NodeId n3 = net.add_xor(pi[4], pi[5], "n3");
  NodeId n4 = net.add_and(n1, n2, "n4");
  NodeId n5 = net.add_or(n3, pi[6], "n5");
  NodeId n6 = net.add_and(n4, n5, "n6");
  NodeId n7 = net.add_or(n4, pi[7], "n7");
  NodeId n8 = net.add_xor(n5, n7, "n8");
  net.add_po("f0", n6);
  net.add_po("f1", n7);
  net.add_po("f2", n8);
  return net;
}

// Evaluates one PO of a network on a single input assignment.
bool eval_po(const Network& net, int po, const std::vector<uint8_t>& input) {
  PatternSet p(net.num_pis(), 1);
  for (int i = 0; i < net.num_pis(); ++i) {
    p.set_word(i, 0, input[i] ? 1u : 0u);
  }
  Simulator sim(net);
  sim.run(p);
  return sim.value(net.po(po).driver)[0] & 1u;
}

TEST(VerifyOracleTest, StructuralShortCircuitTouchesNoSolver) {
  Network net = shared_cone_net();
  Network approx = net;  // identical clone
  ApproxOracle oracle(net, approx);
  for (int po = 0; po < net.num_pos(); ++po) {
    EXPECT_TRUE(oracle.verify(po, ApproxDirection::kOneApprox));
    EXPECT_TRUE(oracle.verify(po, ApproxDirection::kZeroApprox));
  }
  const ApproxOracle::Stats& s = oracle.oracle_stats();
  EXPECT_EQ(s.structural_hits, 2u * net.num_pos());
  EXPECT_EQ(s.bdd_queries, 0u);
  EXPECT_EQ(s.sat_queries, 0u);
  EXPECT_EQ(oracle.sat_identity(), nullptr);  // solver never constructed
}

TEST(VerifyOracleTest, BddOverflowFallsBackToSatWithCounterexample) {
  // F = a & b, G = a | b: G is NOT a 1-approximation of F.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  net.add_po("f", net.add_and(a, b, "f"));
  Network approx;
  NodeId a2 = approx.add_pi("a");
  NodeId b2 = approx.add_pi("b");
  approx.add_po("f", approx.add_or(a2, b2, "f"));

  // A 4-node budget cannot even hold the PI variables: the initial build
  // overflows and every query must go through the SAT fallback.
  ApproxOracle oracle(net, approx, /*bdd_budget=*/4);
  EXPECT_FALSE(oracle.using_bdds());

  EXPECT_FALSE(oracle.verify(0, ApproxDirection::kOneApprox));
  EXPECT_EQ(oracle.oracle_stats().bdd_queries, 0u);
  EXPECT_GE(oracle.oracle_stats().sat_queries, 1u);

  // The counterexample must witness G = 1, F = 0.
  const std::vector<uint8_t>& cex = oracle.last_counterexample();
  ASSERT_EQ(cex.size(), 2u);
  EXPECT_TRUE(eval_po(approx, 0, cex));
  EXPECT_FALSE(eval_po(net, 0, cex));

  // The other direction (F => G) holds and the SAT path proves it.
  EXPECT_TRUE(oracle.verify(0, ApproxDirection::kZeroApprox));
}

TEST(VerifyOracleTest, SatInstanceSurvivesRefresh) {
  // F = (a & b) | (c & d); keep the BDD path disabled so every
  // non-structural query exercises the incremental SAT encoding.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  NodeId d = net.add_pi("d");
  NodeId n1 = net.add_and(a, b, "n1");
  NodeId n2 = net.add_and(c, d, "n2");
  net.add_po("f", net.add_or(n1, n2, "f"));
  Network approx = net;

  ApproxOracle oracle(net, approx, /*bdd_budget=*/4);
  EXPECT_FALSE(oracle.using_bdds());

  // Repair 1: drop the a&b term. G = c & d is a valid 1-approximation.
  approx.set_sop(n1, Sop::zero(2));
  oracle.refresh_approx();
  EXPECT_TRUE(oracle.verify(0, ApproxDirection::kOneApprox));
  const void* solver = oracle.sat_identity();
  ASSERT_NE(solver, nullptr);

  // Repair 2: widen n1 to just `a`. G = a | (c & d) is NOT one.
  approx.set_sop(n1, *Sop::parse(2, "1-"));
  oracle.refresh_approx();
  EXPECT_FALSE(oracle.verify(0, ApproxDirection::kOneApprox));
  ASSERT_EQ(oracle.last_counterexample().size(), 4u);
  EXPECT_TRUE(eval_po(approx, 0, oracle.last_counterexample()));
  EXPECT_FALSE(eval_po(net, 0, oracle.last_counterexample()));

  // Repair 3: restore exactness of n1 -> structural fast path again.
  approx.set_sop(n1, net.node(n1).sop);
  oracle.refresh_approx();
  EXPECT_TRUE(oracle.verify(0, ApproxDirection::kOneApprox));

  // Acceptance criterion: the solver instance never changed, so learned
  // clauses survived every repair; dirty cones were re-encoded in place.
  EXPECT_EQ(oracle.sat_identity(), solver);
  const ApproxOracle::Stats& s = oracle.oracle_stats();
  EXPECT_EQ(s.full_rebuilds, 1u);  // only the constructor
  EXPECT_EQ(s.incremental_refreshes, 3u);
  EXPECT_GT(s.sat_nodes_reencoded, 0u);
}

TEST(VerifyOracleTest, IncrementalMatchesFullRebuild) {
  Network net = shared_cone_net();
  Network approx_inc = net;
  Network approx_full = net;
  ApproxOracle inc(net, approx_inc, 1u << 18,
                   ApproxOracle::RefreshMode::kIncremental);
  ApproxOracle full(net, approx_full, 1u << 18,
                    ApproxOracle::RefreshMode::kFullRebuild);
  ASSERT_TRUE(inc.using_bdds());
  ASSERT_TRUE(full.using_bdds());

  // A scripted repair sequence: shrink, widen, constant-ize, restore.
  NodeId n1 = *net.find_node("n1");
  NodeId n4 = *net.find_node("n4");
  NodeId n5 = *net.find_node("n5");
  const std::vector<std::pair<NodeId, Sop>> script = {
      {n1, Sop::zero(2)},
      {n4, *Sop::parse(2, "1-")},
      {n5, Sop::one(2)},
      {n4, net.node(n4).sop},
      {n1, *Sop::parse(2, "-1")},
      {n5, net.node(n5).sop},
  };
  for (const auto& [id, sop] : script) {
    approx_inc.set_sop(id, sop);
    approx_full.set_sop(id, sop);
    inc.refresh_approx();
    full.refresh_approx();
    for (int po = 0; po < net.num_pos(); ++po) {
      for (ApproxDirection dir :
           {ApproxDirection::kOneApprox, ApproxDirection::kZeroApprox}) {
        EXPECT_EQ(inc.verify(po, dir), full.verify(po, dir))
            << "po=" << po << " dir=" << static_cast<int>(dir);
        // Canonical BDDs make the minterm counts bit-identical, not
        // merely approximately equal.
        EXPECT_EQ(inc.approximation_pct(po, dir),
                  full.approximation_pct(po, dir))
            << "po=" << po << " dir=" << static_cast<int>(dir);
      }
    }
  }
  EXPECT_EQ(inc.oracle_stats().full_rebuilds, 1u);
  EXPECT_EQ(inc.oracle_stats().incremental_refreshes, script.size());
  EXPECT_EQ(full.oracle_stats().full_rebuilds, 1u + script.size());
  EXPECT_GT(inc.oracle_stats().bdd_nodes_rebuilt, 0u);
}

TEST(VerifyOracleTest, NoOpRefreshIsFree) {
  Network net = shared_cone_net();
  Network approx = net;
  ApproxOracle oracle(net, approx);
  oracle.refresh_approx();
  oracle.refresh_approx();
  EXPECT_EQ(oracle.oracle_stats().incremental_refreshes, 0u);
  EXPECT_EQ(oracle.oracle_stats().full_rebuilds, 1u);
}

// The order cache seeds every oracle rebuilt over the same original network
// with the previously converged variable order. Because BDD queries are
// order-invariant, the seeded oracles must agree bit-for-bit with the cold
// one on every verdict and every minterm count -- this is the screening /
// pct-sweep pattern, where many short-lived oracles are built over one net.
TEST(VerifyOracleTest, OrderCacheSeedsRepeatedOracleBuilds) {
  OrderCache::instance().clear();
  Network net = shared_cone_net();

  // Cold build: miss, sift if warranted, store the converged order.
  std::vector<uint8_t> cold_verdicts;
  std::vector<double> cold_pcts;
  std::vector<int> cold_order;
  {
    Network approx = net;
    NodeId n1 = *approx.find_node("n1");
    approx.set_sop(n1, Sop::zero(2));  // weaken: a real 1-approximation
    ApproxOracle oracle(net, approx);
    ASSERT_TRUE(oracle.using_bdds());
    for (int po = 0; po < net.num_pos(); ++po) {
      for (ApproxDirection dir :
           {ApproxDirection::kOneApprox, ApproxDirection::kZeroApprox}) {
        cold_verdicts.push_back(oracle.verify(po, dir) ? 1 : 0);
        cold_pcts.push_back(oracle.approximation_pct(po, dir));
      }
    }
    cold_order = oracle.manager().export_order();
  }
  const OrderCache::Stats after_cold = OrderCache::instance().stats();
  EXPECT_GE(after_cold.misses, 1u);
  EXPECT_GE(after_cold.stores, 1u);

  // Warm rebuilds: every fresh oracle over the same original must hit the
  // cache, adopt the stored order, and reproduce the cold answers exactly.
  for (int round = 0; round < 3; ++round) {
    Network approx = net;
    NodeId n1 = *approx.find_node("n1");
    approx.set_sop(n1, Sop::zero(2));
    ApproxOracle oracle(net, approx);
    ASSERT_TRUE(oracle.using_bdds());
    EXPECT_EQ(oracle.manager().export_order(), cold_order) << "round " << round;
    size_t q = 0;
    for (int po = 0; po < net.num_pos(); ++po) {
      for (ApproxDirection dir :
           {ApproxDirection::kOneApprox, ApproxDirection::kZeroApprox}) {
        EXPECT_EQ(oracle.verify(po, dir) ? 1 : 0, cold_verdicts[q])
            << "round " << round << " po " << po;
        // Bit-identical, not approximately equal: canonical BDDs count the
        // same minterms under any variable order.
        EXPECT_EQ(oracle.approximation_pct(po, dir), cold_pcts[q])
            << "round " << round << " po " << po;
        ++q;
      }
    }
  }
  EXPECT_GE(OrderCache::instance().stats().hits, after_cold.hits + 3u);
  OrderCache::instance().clear();
}

// Repeated refreshes of ONE oracle (the repair-loop pattern) must also stay
// bit-identical to a cold full-rebuild oracle when the incremental one was
// seeded from the cache: refreshes reuse the seeded manager, full rebuilds
// re-consult the cache every time.
TEST(VerifyOracleTest, OrderCacheSeededRefreshMatchesColdRebuild) {
  OrderCache::instance().clear();
  Network net = shared_cone_net();
  Network approx_inc = net;
  Network approx_full = net;
  ApproxOracle inc(net, approx_inc, 1u << 18,
                   ApproxOracle::RefreshMode::kIncremental);
  ApproxOracle full(net, approx_full, 1u << 18,
                    ApproxOracle::RefreshMode::kFullRebuild);
  ASSERT_TRUE(inc.using_bdds());
  ASSERT_TRUE(full.using_bdds());

  NodeId n1 = *net.find_node("n1");
  NodeId n5 = *net.find_node("n5");
  const std::vector<std::pair<NodeId, Sop>> script = {
      {n1, Sop::zero(2)},
      {n5, Sop::one(2)},
      {n1, net.node(n1).sop},
      {n5, net.node(n5).sop},
  };
  for (const auto& [id, sop] : script) {
    approx_inc.set_sop(id, sop);
    approx_full.set_sop(id, sop);
    inc.refresh_approx();
    full.refresh_approx();  // full rebuild: hits the cache on every repair
    for (int po = 0; po < net.num_pos(); ++po) {
      for (ApproxDirection dir :
           {ApproxDirection::kOneApprox, ApproxDirection::kZeroApprox}) {
        EXPECT_EQ(inc.verify(po, dir), full.verify(po, dir));
        EXPECT_EQ(inc.approximation_pct(po, dir),
                  full.approximation_pct(po, dir));
      }
    }
  }
  // The full-rebuild oracle rebuilt once per repair; all but the first
  // build found the cache warm.
  EXPECT_GE(OrderCache::instance().stats().hits, script.size());
  OrderCache::instance().clear();
}

// Stale-cache case: a structural mutation of the original network moves its
// content hash, so a fresh oracle must NOT adopt the order cached for the
// pre-mutation network -- it misses, re-sifts, and still answers correctly.
TEST(VerifyOracleTest, OrderCacheStaleEntryMissesAfterStructuralMutation) {
  OrderCache::instance().clear();
  Network net = shared_cone_net();
  const uint64_t hash_before = network_content_hash(net);
  {
    Network approx = net;
    ApproxOracle oracle(net, approx);
    ASSERT_TRUE(oracle.using_bdds());
  }  // leaves an entry cached under hash_before
  EXPECT_GE(OrderCache::instance().stats().stores, 1u);

  // Structural mutation of the ORIGINAL: re-wire n1 onto different fanins.
  // structure_version bumps and the content hash moves with it.
  NodeId n1 = *net.find_node("n1");
  NodeId x0 = *net.find_node("x0");
  NodeId x2 = *net.find_node("x2");
  const uint64_t version_before = net.structure_version();
  net.set_function(n1, {x0, x2}, *Sop::parse(2, "11"));
  EXPECT_GT(net.structure_version(), version_before);
  EXPECT_NE(network_content_hash(net), hash_before);

  const OrderCache::Stats before = OrderCache::instance().stats();
  Network approx = net;  // identical clone of the mutated network
  ApproxOracle oracle(net, approx);
  ASSERT_TRUE(oracle.using_bdds());
  // The stale entry was keyed under the old hash: this build must miss.
  EXPECT_GT(OrderCache::instance().stats().misses, before.misses);
  EXPECT_EQ(OrderCache::instance().stats().hits, before.hits);
  // And the freshly sifted oracle still answers correctly.
  for (int po = 0; po < net.num_pos(); ++po) {
    EXPECT_TRUE(oracle.verify(po, ApproxDirection::kOneApprox));
    EXPECT_TRUE(oracle.verify(po, ApproxDirection::kZeroApprox));
  }
  OrderCache::instance().clear();
}

TEST(VerifyOracleTest, StructuralChangeForcesRebuild) {
  Network net = shared_cone_net();
  Network approx = net;
  ApproxOracle oracle(net, approx);
  NodeId n1 = *approx.find_node("n1");
  NodeId x2 = *approx.find_node("x2");
  NodeId x0 = *approx.find_node("x0");
  // Re-wire n1 onto different fanins: a structural mutation.
  approx.set_function(n1, {x0, x2}, *Sop::parse(2, "11"));
  oracle.refresh_approx();
  EXPECT_EQ(oracle.oracle_stats().full_rebuilds, 2u);
  // Still answers correctly: n1 = x0 & x2 is not contained in x0 & x1.
  EXPECT_FALSE(oracle.verify(0, ApproxDirection::kOneApprox));
}

}  // namespace
}  // namespace apx
