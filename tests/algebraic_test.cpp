#include "sop/algebraic.hpp"

#include <gtest/gtest.h>

#include <random>

#include "tt/truth_table.hpp"

namespace apx {
namespace {

TEST(AlgebraicTest, CubeQuotientBasics) {
  Cube abc = *Cube::parse("111");
  Cube ab = *Cube::parse("11-");
  auto q = cube_quotient(abc, ab);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->to_string(), "--1");
  // Division by a literal the cube lacks fails.
  EXPECT_FALSE(cube_quotient(*Cube::parse("1--"), *Cube::parse("-1-")));
  // Phase clash fails.
  EXPECT_FALSE(cube_quotient(*Cube::parse("10-"), *Cube::parse("11-")));
  // Division by the full cube is identity.
  auto id = cube_quotient(abc, Cube::full(3));
  EXPECT_EQ(*id, abc);
}

TEST(AlgebraicTest, TextbookDivision) {
  // f = abc + abd + e ; d = c + d (over vars a,b,c,d,e) ->
  // quotient ab, remainder e.
  Sop f = *Sop::parse(5, "111--\n11-1-\n----1");
  Sop d = *Sop::parse(5, "--1--\n---1-");
  auto [q, r] = algebraic_divide(f, d);
  ASSERT_EQ(q.num_cubes(), 1);
  EXPECT_EQ(q.cube(0).to_string(), "11---");
  ASSERT_EQ(r.num_cubes(), 1);
  EXPECT_EQ(r.cube(0).to_string(), "----1");
}

TEST(AlgebraicTest, NonDivisorGivesEmptyQuotient) {
  Sop f = *Sop::parse(3, "11-\n--1");
  Sop d = *Sop::parse(3, "10-\n-01");
  auto [q, r] = algebraic_divide(f, d);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(r.num_cubes(), f.num_cubes());
}

TEST(AlgebraicTest, DivisionIdentityHoldsOnRandomCovers) {
  std::mt19937 rng(5);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 6;
    auto random_cover = [&](int cubes, int max_lits) {
      Sop s(n);
      for (int i = 0; i < cubes; ++i) {
        Cube c = Cube::full(n);
        int lits = 1 + static_cast<int>(rng() % max_lits);
        for (int j = 0; j < lits; ++j) {
          c.set(static_cast<int>(rng() % n),
                (rng() & 1) ? LitCode::kPos : LitCode::kNeg);
        }
        s.add_cube(c);
      }
      return s;
    };
    Sop q0 = random_cover(2, 2);
    Sop d = random_cover(2, 2);
    Sop r0 = random_cover(1, 3);
    Sop f = Sop::disjunction(algebraic_product(q0, d), r0);
    auto [q, r] = algebraic_divide(f, d);
    // Identity: f == q*d + r as a Boolean function (algebraic equality may
    // renormalize cube multiplicity, Boolean equality is the invariant that
    // matters downstream).
    Sop rebuilt = Sop::disjunction(algebraic_product(q, d), r);
    EXPECT_EQ(TruthTable::from_sop(rebuilt), TruthTable::from_sop(f))
        << "trial " << trial;
  }
}

TEST(AlgebraicTest, CommonCubeAndCubeFreedom) {
  Sop f = *Sop::parse(4, "11-1\n1-11");
  EXPECT_EQ(common_cube(f).to_string(), "1--1");
  EXPECT_FALSE(is_cube_free(f));
  Sop g = *Sop::parse(4, "11--\n--11");
  EXPECT_TRUE(is_cube_free(g));
  EXPECT_TRUE(common_cube(g).is_full());
  // Single cubes are never cube-free.
  EXPECT_FALSE(is_cube_free(*Sop::parse(4, "1---")));
}

TEST(AlgebraicTest, KernelsOfTextbookExample) {
  // f = adf + aef + bdf + bef + cdf + cef + g  (classic SIS example)
  // over a..g: kernels include (a+b+c), (d+e), and f itself.
  // vars: a=0 b=1 c=2 d=3 e=4 f=5 g=6
  Sop f = *Sop::parse(7, "1--1-1-\n1---11-\n-1-1-1-\n-1--11-\n--11-1-\n--1-11-\n------1");
  std::vector<Kernel> kernels = find_kernels(f);
  Sop abc = *Sop::parse(7, "1------\n-1-----\n--1----");
  Sop de = *Sop::parse(7, "---1---\n----1--");
  abc.canonicalize();
  de.canonicalize();
  bool found_abc = false, found_de = false;
  for (const Kernel& k : kernels) {
    Sop canon = k.kernel;
    canon.canonicalize();
    if (canon == abc) found_abc = true;
    if (canon == de) found_de = true;
  }
  EXPECT_TRUE(found_abc);
  EXPECT_TRUE(found_de);
  // Every kernel is cube-free.
  for (const Kernel& k : kernels) {
    EXPECT_TRUE(k.kernel.num_cubes() == 1 || is_cube_free(k.kernel))
        << k.kernel.to_string();
  }
}

TEST(AlgebraicTest, BestKernelSavesLiterals) {
  // f = ab + ac + ad: best kernel (b+c+d) saves literals.
  Sop f = *Sop::parse(4, "11--\n1-1-\n1--1");
  auto k = best_kernel(f);
  ASSERT_TRUE(k.has_value());
  auto [q, r] = algebraic_divide(f, k->kernel);
  int factored_cost = q.literal_count() + k->kernel.literal_count() +
                      r.literal_count();
  EXPECT_LT(factored_cost, f.literal_count());
}

TEST(AlgebraicTest, NoKernelForSimpleFunctions) {
  EXPECT_FALSE(best_kernel(*Sop::parse(3, "111")).has_value());
  EXPECT_FALSE(best_kernel(*Sop::parse(3, "1--\n-1-")).has_value());
}

}  // namespace
}  // namespace apx
