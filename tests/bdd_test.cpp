#include "bdd/bdd.hpp"

#include <gtest/gtest.h>

#include <random>

namespace apx {
namespace {

TEST(BddTest, TerminalsAndVariables) {
  BddManager mgr(3);
  EXPECT_EQ(mgr.zero(), 0u);
  EXPECT_EQ(mgr.one(), 1u);
  auto x0 = mgr.var(0);
  EXPECT_TRUE(mgr.evaluate(x0, 0b001));
  EXPECT_FALSE(mgr.evaluate(x0, 0b110));
  auto nx1 = mgr.literal(1, false);
  EXPECT_TRUE(mgr.evaluate(nx1, 0b001));
  EXPECT_FALSE(mgr.evaluate(nx1, 0b010));
}

TEST(BddTest, BasicOperations) {
  BddManager mgr(2);
  auto a = mgr.var(0);
  auto b = mgr.var(1);
  auto ab = mgr.bdd_and(a, b);
  auto a_or_b = mgr.bdd_or(a, b);
  auto a_xor_b = mgr.bdd_xor(a, b);
  for (uint64_t m = 0; m < 4; ++m) {
    bool va = m & 1, vb = (m >> 1) & 1;
    EXPECT_EQ(mgr.evaluate(ab, m), va && vb);
    EXPECT_EQ(mgr.evaluate(a_or_b, m), va || vb);
    EXPECT_EQ(mgr.evaluate(a_xor_b, m), va != vb);
  }
}

TEST(BddTest, CanonicityHashConsing) {
  BddManager mgr(3);
  auto a = mgr.var(0);
  auto b = mgr.var(1);
  // a & b built two ways must be the same node.
  auto ab1 = mgr.bdd_and(a, b);
  auto ab2 = mgr.bdd_not(mgr.bdd_or(mgr.bdd_not(a), mgr.bdd_not(b)));
  EXPECT_EQ(ab1, ab2);
  // Idempotence and involution.
  EXPECT_EQ(mgr.bdd_and(a, a), a);
  EXPECT_EQ(mgr.bdd_not(mgr.bdd_not(a)), a);
}

TEST(BddTest, SatFraction) {
  BddManager mgr(4);
  auto a = mgr.var(0);
  auto b = mgr.var(1);
  auto c = mgr.var(2);
  auto d = mgr.var(3);
  // Paper Sec. 2 example: F = a + b + c'd' + cd has 14/16 minterms.
  auto f = mgr.bdd_or(
      mgr.bdd_or(a, b),
      mgr.bdd_or(mgr.bdd_and(mgr.bdd_not(c), mgr.bdd_not(d)),
                 mgr.bdd_and(c, d)));
  EXPECT_NEAR(mgr.sat_fraction(f), 14.0 / 16.0, 1e-12);
  EXPECT_NEAR(mgr.sat_count(f), 14.0, 1e-9);
  // G = a + b covers 12/16 = 85.7% of F's minterms.
  auto g = mgr.bdd_or(a, b);
  EXPECT_NEAR(mgr.sat_count(g) / mgr.sat_count(f), 12.0 / 14.0, 1e-9);
}

TEST(BddTest, Implication) {
  BddManager mgr(4);
  auto a = mgr.var(0);
  auto b = mgr.var(1);
  auto f = mgr.bdd_or(a, b);
  auto g = mgr.bdd_or(f, mgr.var(2));
  EXPECT_TRUE(mgr.implies(f, g));
  EXPECT_FALSE(mgr.implies(g, f));
  EXPECT_TRUE(mgr.implies(mgr.zero(), f));
  EXPECT_TRUE(mgr.implies(f, mgr.one()));
}

TEST(BddTest, Cofactor) {
  BddManager mgr(3);
  auto a = mgr.var(0);
  auto b = mgr.var(1);
  auto f = mgr.bdd_or(mgr.bdd_and(a, b), mgr.bdd_and(mgr.bdd_not(a), mgr.var(2)));
  EXPECT_EQ(mgr.cofactor(f, 0, true), b);
  EXPECT_EQ(mgr.cofactor(f, 0, false), mgr.var(2));
}

TEST(BddTest, SupportAndSize) {
  BddManager mgr(5);
  auto f = mgr.bdd_and(mgr.var(1), mgr.var(3));
  auto s = mgr.support(f);
  EXPECT_FALSE(s[0]);
  EXPECT_TRUE(s[1]);
  EXPECT_FALSE(s[2]);
  EXPECT_TRUE(s[3]);
  EXPECT_EQ(mgr.size(f), 2u);
  EXPECT_EQ(mgr.size(mgr.one()), 0u);
}

TEST(BddTest, NodeLimitThrows) {
  // A tiny budget must overflow when building a multiplier-ish function.
  BddManager mgr(16, 24);
  auto acc = mgr.zero();
  EXPECT_THROW(
      {
        for (int i = 0; i < 8; ++i) {
          acc = mgr.bdd_xor(acc, mgr.bdd_and(mgr.var(i), mgr.var(15 - i)));
        }
      },
      BddOverflow);
}

class BddRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(BddRandomProperty, MatchesDirectEvaluation) {
  std::mt19937 rng(GetParam());
  const int n = 6;
  BddManager mgr(n);
  // Build a random expression tree and an evaluator closure alongside.
  std::vector<BddManager::Ref> refs;
  for (int i = 0; i < n; ++i) refs.push_back(mgr.var(i));
  for (int step = 0; step < 40; ++step) {
    auto a = refs[rng() % refs.size()];
    auto b = refs[rng() % refs.size()];
    switch (rng() % 4) {
      case 0:
        refs.push_back(mgr.bdd_and(a, b));
        break;
      case 1:
        refs.push_back(mgr.bdd_or(a, b));
        break;
      case 2:
        refs.push_back(mgr.bdd_xor(a, b));
        break;
      case 3:
        refs.push_back(mgr.bdd_not(a));
        break;
    }
  }
  // Validate sat_fraction of the last ref against brute-force evaluation.
  auto f = refs.back();
  uint64_t ones = 0;
  for (uint64_t m = 0; m < (1u << n); ++m) {
    if (mgr.evaluate(f, m)) ++ones;
  }
  EXPECT_NEAR(mgr.sat_fraction(f), static_cast<double>(ones) / (1u << n),
              1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddRandomProperty,
                         ::testing::Values(10, 20, 30, 40, 50, 60));

TEST(BddTest, GarbageCollectPreservesLiveFunctions) {
  const int n = 8;
  BddManager mgr(n);
  // A live function with real structure: odd parity of all 8 variables.
  auto parity = mgr.zero();
  for (int i = 0; i < n; ++i) parity = mgr.bdd_xor(parity, mgr.var(i));
  // Plenty of garbage: conjunction chains that nothing keeps alive.
  auto junk = mgr.one();
  for (int i = 0; i < n; ++i) {
    junk = mgr.bdd_and(junk, mgr.bdd_or(mgr.var(i), mgr.var((i + 3) % n)));
  }
  std::vector<bool> truth(1u << n);
  for (uint64_t m = 0; m < (1u << n); ++m) truth[m] = mgr.evaluate(parity, m);
  size_t before = mgr.num_nodes();

  auto remap = mgr.garbage_collect({parity});
  ASSERT_LT(mgr.num_nodes(), before);
  ASSERT_NE(remap[parity], BddManager::kInvalidRef);
  EXPECT_EQ(remap[junk], BddManager::kInvalidRef);  // collected

  auto parity2 = remap[parity];
  for (uint64_t m = 0; m < (1u << n); ++m) {
    EXPECT_EQ(mgr.evaluate(parity2, m), truth[m]);
  }
  EXPECT_NEAR(mgr.sat_fraction(parity2), 0.5, 1e-12);
  EXPECT_EQ(mgr.size(parity2), static_cast<size_t>(2 * n - 1));

  // The manager stays usable after compaction: hash-consing still holds.
  auto again = mgr.zero();
  for (int i = 0; i < n; ++i) again = mgr.bdd_xor(again, mgr.var(i));
  EXPECT_EQ(again, parity2);
}

TEST(BddTest, UniqueTableProbeLengthStaysShort) {
  // The splitmix64-mixed flat table should stay near collision-free on a
  // realistic workload (sequentially allocated refs are the adversarial
  // case for weak mixing).
  const int n = 16;
  BddManager mgr(n);
  auto f = mgr.zero();
  for (int i = 0; i < n; ++i) f = mgr.bdd_xor(f, mgr.var(i));
  auto g = mgr.one();
  for (int i = 0; i + 1 < n; ++i) {
    g = mgr.bdd_and(g, mgr.bdd_or(mgr.var(i), mgr.var(i + 1)));
  }
  (void)mgr.bdd_and(f, g);
  const BddManager::Stats& s = mgr.stats();
  ASSERT_GT(s.unique_lookups, 0u);
  EXPECT_LT(s.avg_probe_length(), 4.0);
}

}  // namespace
}  // namespace apx
