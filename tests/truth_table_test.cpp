#include "tt/truth_table.hpp"

#include <gtest/gtest.h>

#include <random>

namespace apx {
namespace {

TruthTable random_tt(std::mt19937& rng, int n) {
  TruthTable t(n);
  for (uint64_t m = 0; m < t.num_minterms(); ++m) {
    t.set(m, rng() & 1);
  }
  return t;
}

TEST(TruthTableTest, ConstantsAndVariables) {
  TruthTable z(3);
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.count_ones(), 0u);
  TruthTable o = TruthTable::ones(3);
  EXPECT_TRUE(o.is_one());
  EXPECT_EQ(o.count_ones(), 8u);

  TruthTable v0 = TruthTable::variable(3, 0);
  TruthTable v2 = TruthTable::variable(3, 2);
  for (uint64_t m = 0; m < 8; ++m) {
    EXPECT_EQ(v0.get(m), static_cast<bool>(m & 1));
    EXPECT_EQ(v2.get(m), static_cast<bool>((m >> 2) & 1));
  }
}

TEST(TruthTableTest, WideVariablesSpanWords) {
  const int n = 9;  // 512 minterms, 8 words
  for (int v = 0; v < n; ++v) {
    TruthTable t = TruthTable::variable(n, v);
    EXPECT_EQ(t.count_ones(), 256u) << "var " << v;
    for (uint64_t m = 0; m < t.num_minterms(); m += 37) {
      EXPECT_EQ(t.get(m), static_cast<bool>((m >> v) & 1));
    }
  }
}

TEST(TruthTableTest, BooleanOps) {
  TruthTable a = TruthTable::variable(2, 0);
  TruthTable b = TruthTable::variable(2, 1);
  EXPECT_EQ((a & b).to_binary(), "1000");
  EXPECT_EQ((a | b).to_binary(), "1110");
  EXPECT_EQ((a ^ b).to_binary(), "0110");
  EXPECT_EQ((~a).to_binary(), "0101");
}

TEST(TruthTableTest, FromSopMatchesEvaluation) {
  Sop s = *Sop::parse(4, "1--0\n-11-");
  TruthTable t = TruthTable::from_sop(s);
  for (uint64_t m = 0; m < 16; ++m) {
    EXPECT_EQ(t.get(m), s.covers_minterm(m)) << m;
  }
}

TEST(TruthTableTest, CofactorLowAndHighVars) {
  std::mt19937 rng(3);
  for (int n : {3, 5, 7, 8}) {
    TruthTable t = random_tt(rng, n);
    for (int v = 0; v < n; ++v) {
      TruthTable c0 = t.cofactor(v, false);
      TruthTable c1 = t.cofactor(v, true);
      for (uint64_t m = 0; m < t.num_minterms(); ++m) {
        uint64_t m0 = m & ~(1ULL << v);
        uint64_t m1 = m | (1ULL << v);
        EXPECT_EQ(c0.get(m), t.get(m0));
        EXPECT_EQ(c1.get(m), t.get(m1));
      }
      EXPECT_FALSE(c0.depends_on(v));
      EXPECT_FALSE(c1.depends_on(v));
    }
  }
}

TEST(TruthTableTest, BooleanDifferenceOfXor) {
  // f = x0 ^ x1: every variable always observable.
  TruthTable f =
      TruthTable::variable(2, 0) ^ TruthTable::variable(2, 1);
  EXPECT_TRUE(f.boolean_difference(0).is_one());
  EXPECT_TRUE(f.boolean_difference(1).is_one());
  // f = x0 & x1: x0 observable only when x1 = 1.
  TruthTable g =
      TruthTable::variable(2, 0) & TruthTable::variable(2, 1);
  EXPECT_EQ(g.boolean_difference(0), TruthTable::variable(2, 1));
}

TEST(TruthTableTest, ImpliesSemantics) {
  TruthTable a = TruthTable::variable(3, 0) & TruthTable::variable(3, 1);
  TruthTable b = TruthTable::variable(3, 0);
  EXPECT_TRUE(TruthTable::implies(a, b));
  EXPECT_FALSE(TruthTable::implies(b, a));
}

class IsopProperty : public ::testing::TestWithParam<int> {};

TEST_P(IsopProperty, IsopReproducesFunction) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    int n = 1 + static_cast<int>(rng() % 7);
    TruthTable t = random_tt(rng, n);
    Sop cover = t.isop();
    TruthTable back = TruthTable::from_sop(cover);
    EXPECT_EQ(back, t) << "n=" << n << " tt=" << t.to_binary();
  }
}

TEST_P(IsopProperty, IntervalIsopStaysInInterval) {
  std::mt19937 rng(GetParam() + 500);
  for (int trial = 0; trial < 25; ++trial) {
    int n = 2 + static_cast<int>(rng() % 6);
    TruthTable lower = random_tt(rng, n);
    TruthTable extra = random_tt(rng, n);
    TruthTable upper = lower | extra;
    Sop cover = TruthTable::isop_interval(lower, upper);
    TruthTable result = TruthTable::from_sop(cover);
    EXPECT_TRUE(TruthTable::implies(lower, result));
    EXPECT_TRUE(TruthTable::implies(result, upper));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsopProperty,
                         ::testing::Values(3, 9, 27, 81, 243));

TEST(TruthTableTest, IsopOnConstants) {
  EXPECT_TRUE(TruthTable(4).isop().empty());
  Sop one_cover = TruthTable::ones(4).isop();
  ASSERT_EQ(one_cover.num_cubes(), 1);
  EXPECT_TRUE(one_cover.cube(0).is_full());
}

TEST(TruthTableTest, FromBinaryRoundTrip) {
  TruthTable t = TruthTable::from_binary(2, "0110");
  EXPECT_EQ(t.to_binary(), "0110");
  EXPECT_TRUE(t.get(1));
  EXPECT_TRUE(t.get(2));
  EXPECT_FALSE(t.get(0));
  EXPECT_FALSE(t.get(3));
}

TEST(TruthTableTest, RejectsOversizedTables) {
  EXPECT_THROW(TruthTable(27), std::invalid_argument);
}

}  // namespace
}  // namespace apx
