#include "aig/aig.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "aig/convert.hpp"
#include "aig/cuts.hpp"
#include "aig/npn.hpp"
#include "aig/rewrite.hpp"
#include "benchmarks/benchmarks.hpp"
#include "mapping/optimize.hpp"
#include "network/ordering.hpp"
#include "sat/encode.hpp"
#include "sat/solver.hpp"

namespace apx::aig {
namespace {

/// Evaluates every node of the AIG under one input assignment (bit i of
/// `assignment` = value of PI i); returns per-node values.
std::vector<char> eval_nodes(const Aig& g, uint32_t assignment) {
  std::vector<char> value(g.num_nodes(), 0);
  for (uint32_t id = 1; id < static_cast<uint32_t>(g.num_nodes()); ++id) {
    if (g.is_pi(id)) {
      value[id] = (assignment >> g.pi_index(id)) & 1;
      continue;
    }
    const Lit f0 = g.fanin0(id);
    const Lit f1 = g.fanin1(id);
    value[id] = (value[lit_node(f0)] ^ (lit_complemented(f0) ? 1 : 0)) &
                (value[lit_node(f1)] ^ (lit_complemented(f1) ? 1 : 0));
  }
  return value;
}

bool eval_lit(const std::vector<char>& value, Lit l) {
  return (value[lit_node(l)] ^ (lit_complemented(l) ? 1 : 0)) != 0;
}

/// Random strashed AIG over `num_pis` inputs, every PI-reachable signal a
/// candidate fanin; POs sampled from the last few signals.
Aig random_aig(uint32_t seed, int num_pis, int num_ands, int num_pos) {
  std::mt19937 rng(seed);
  Aig g;
  std::vector<Lit> sigs;
  for (int i = 0; i < num_pis; ++i) sigs.push_back(g.add_pi());
  for (int i = 0; i < num_ands; ++i) {
    std::uniform_int_distribution<size_t> pick(0, sigs.size() - 1);
    const Lit a = lit_not_cond(sigs[pick(rng)], rng() & 1);
    const Lit b = lit_not_cond(sigs[pick(rng)], rng() & 1);
    sigs.push_back(g.create_and(a, b));
  }
  for (int i = 0; i < num_pos; ++i) {
    std::uniform_int_distribution<size_t> pick(sigs.size() / 2,
                                               sigs.size() - 1);
    g.add_po(lit_not_cond(sigs[pick(rng)], rng() & 1));
  }
  return g;
}

/// Shared-solver SAT miter: encodes both networks once over common PI
/// variables and proves every PO pair equivalent (UNSAT of the XOR).
::testing::AssertionResult all_pos_equivalent(const Network& a,
                                              const Network& b) {
  if (a.num_pis() != b.num_pis() || a.num_pos() != b.num_pos()) {
    return ::testing::AssertionFailure() << "interface mismatch";
  }
  SatSolver solver;
  std::vector<int> pi_vars;
  for (int i = 0; i < a.num_pis(); ++i) pi_vars.push_back(solver.new_var());
  const std::vector<int> va = encode_network(solver, a, pi_vars);
  const std::vector<int> vb = encode_network(solver, b, pi_vars);
  for (int i = 0; i < a.num_pos(); ++i) {
    const apx::Lit la(va[a.po(i).driver], false);
    const apx::Lit lb(vb[b.po(i).driver], false);
    const int x = solver.new_var();
    const apx::Lit lx(x, false);
    solver.add_ternary(~lx, la, lb);
    solver.add_ternary(~lx, ~la, ~lb);
    solver.add_ternary(lx, ~la, lb);
    solver.add_ternary(lx, la, ~lb);
    if (solver.solve({lx}) != SatResult::kUnsat) {
      return ::testing::AssertionFailure()
             << "PO " << i << " (" << a.po(i).name << ") differs";
    }
  }
  return ::testing::AssertionSuccess();
}

TEST(AigTest, FoldingAndStructuralHashing) {
  Aig g;
  const Lit a = g.add_pi("a");
  const Lit b = g.add_pi("b");

  EXPECT_EQ(g.create_and(a, kLitFalse), kLitFalse);
  EXPECT_EQ(g.create_and(kLitTrue, b), b);
  EXPECT_EQ(g.create_and(a, a), a);
  EXPECT_EQ(g.create_and(a, lit_not(a)), kLitFalse);
  EXPECT_EQ(g.num_ands(), 0);

  const Lit ab = g.create_and(a, b);
  EXPECT_EQ(g.create_and(b, a), ab);  // commutative dedup
  EXPECT_EQ(g.create_and(a, b), ab);
  EXPECT_EQ(g.num_ands(), 1);

  EXPECT_EQ(g.lookup_and(a, b), ab);
  EXPECT_EQ(g.lookup_and(lit_not(a), b), kInvalidLit);
  EXPECT_EQ(g.num_ands(), 1);  // lookup never inserts

  g.check();
}

TEST(AigTest, GateConstructorsSemantics) {
  Aig g;
  const Lit a = g.add_pi("a");
  const Lit b = g.add_pi("b");
  const Lit s = g.add_pi("s");
  g.add_po(g.create_or(a, b), "or");
  g.add_po(g.create_xor(a, b), "xor");
  g.add_po(g.create_mux(s, a, b), "mux");
  for (uint32_t m = 0; m < 8; ++m) {
    const bool va = m & 1, vb = (m >> 1) & 1, vs = (m >> 2) & 1;
    const std::vector<char> val = eval_nodes(g, m);
    EXPECT_EQ(eval_lit(val, g.po_lit(0)), va || vb);
    EXPECT_EQ(eval_lit(val, g.po_lit(1)), va != vb);
    EXPECT_EQ(eval_lit(val, g.po_lit(2)), vs ? va : vb);
  }
}

TEST(AigTest, RandomGraphsKeepStrashInvariants) {
  for (uint32_t seed = 1; seed <= 10; ++seed) {
    const Aig g = random_aig(seed, 6, 80, 4);
    ASSERT_NO_THROW(g.check());
  }
}

TEST(AigTest, CutTruthTablesMatchSimulation) {
  for (uint32_t seed = 1; seed <= 5; ++seed) {
    const Aig g = random_aig(seed, 6, 60, 3);
    const CutSet cs = enumerate_cuts(g);
    for (uint32_t m = 0; m < 64; ++m) {
      const std::vector<char> val = eval_nodes(g, m);
      for (uint32_t id = 1; id < static_cast<uint32_t>(g.num_nodes()); ++id) {
        for (const Cut& c : cs.cuts[id]) {
          int minterm = 0;
          for (int j = 0; j < c.size; ++j) {
            minterm |= (val[c.leaves[j]] ? 1 : 0) << j;
          }
          ASSERT_EQ((c.tt >> minterm) & 1, val[id])
              << "seed " << seed << " node " << id;
        }
      }
    }
  }
}

TEST(AigTest, CutSetsAreBoundedAndContainTrivialCut) {
  const Aig g = random_aig(7, 6, 120, 3);
  CutOptions options;
  const CutSet cs = enumerate_cuts(g, options);
  for (uint32_t id = 1; id < static_cast<uint32_t>(g.num_nodes()); ++id) {
    const auto& cuts = cs.cuts[id];
    ASSERT_FALSE(cuts.empty());
    EXPECT_LE(static_cast<int>(cuts.size()), options.max_cuts);
    const Cut& trivial = cuts.back();
    EXPECT_EQ(trivial.size, 1);
    EXPECT_EQ(trivial.leaves[0], id);
    EXPECT_EQ(trivial.tt, tt16::kVar[0]);
    for (const Cut& c : cuts) {
      for (int j = 1; j < c.size; ++j) {
        EXPECT_LT(c.leaves[j - 1], c.leaves[j]);  // sorted, unique
      }
    }
  }
}

TEST(AigTest, RewriteDbImplementsEveryClass) {
  const NpnTable& npn = NpnTable::instance();
  const RewriteDb& db = RewriteDb::instance();
  for (uint16_t rep : npn.representatives()) {
    ASSERT_TRUE(db.has(rep));
    Aig g;
    Lit xs[4];
    for (int i = 0; i < 4; ++i) xs[i] = g.add_pi();
    const Lit out = RewriteDb::instantiate(&g, db.entry(rep), xs);
    g.add_po(out);
    for (uint32_t m = 0; m < 16; ++m) {
      const std::vector<char> val = eval_nodes(g, m);
      ASSERT_EQ(eval_lit(val, out), ((rep >> m) & 1) != 0) << "class " << rep;
    }
    EXPECT_EQ(db.cost(rep), g.count_reachable_ands());
  }
}

TEST(AigTest, RewritePreservesFunctionAndNeverGrows) {
  for (uint32_t seed = 1; seed <= 6; ++seed) {
    const Aig src = random_aig(seed, 8, 120, 5);
    RewriteStats stats;
    const Aig out = rewrite(src, RewriteOptions{}, &stats);
    ASSERT_NO_THROW(out.check());
    EXPECT_LE(stats.ands_after, stats.ands_before);
    EXPECT_EQ(stats.ands_after, out.count_reachable_ands());
    ASSERT_EQ(out.num_pos(), src.num_pos());
    for (uint32_t m = 0; m < 256; ++m) {
      const std::vector<char> val_src = eval_nodes(src, m);
      const std::vector<char> val_out = eval_nodes(out, m);
      for (int i = 0; i < src.num_pos(); ++i) {
        ASSERT_EQ(eval_lit(val_out, out.po_lit(i)),
                  eval_lit(val_src, src.po_lit(i)))
            << "seed " << seed << " po " << i << " m " << m;
      }
    }
  }
}

TEST(AigTest, RoundTripSatMiterOnFullSuite) {
  // Network -> AIG -> Network must be UNSAT-equivalent on every PO of
  // every registered benchmark (the structural hash may only merge).
  for (const std::string& name : benchmark_names()) {
    const Network net = make_benchmark(name);
    const Aig aig = network_to_aig(net);
    ASSERT_NO_THROW(aig.check()) << name;
    const Network back = aig_to_network(aig);
    EXPECT_TRUE(all_pos_equivalent(net, back)) << name;
  }
}

TEST(AigTest, RewrittenRoundTripEquivalentOnMediumSuite) {
  for (const char* name : {"term1", "x1", "alu1", "rca16"}) {
    const Network net = make_benchmark(name);
    const Network synth = aig_quick_synthesis(net);
    EXPECT_TRUE(all_pos_equivalent(net, synth)) << name;
  }
}

TEST(AigTest, QuickSynthesisRoutesByThreshold) {
  // Below the threshold the new overloads are bit-identical to the legacy
  // optimize() pass (content hash catches any divergence).
  const Network net = make_benchmark("term1");
  const Network legacy = optimize(net);
  const Network routed = quick_synthesis(net);
  EXPECT_EQ(network_content_hash(routed), network_content_hash(legacy));

  // Forcing the AIG path (threshold 0) still preserves the function.
  const Network forced = quick_synthesis(net, 0);
  EXPECT_TRUE(all_pos_equivalent(net, forced));
}

TEST(AigTest, ConvertersPreserveInterfaceNamesAndOrder) {
  const Network net = make_benchmark("alu1");
  const Aig aig = network_to_aig(net);
  ASSERT_EQ(aig.num_pis(), net.num_pis());
  ASSERT_EQ(aig.num_pos(), net.num_pos());
  for (int i = 0; i < net.num_pis(); ++i) {
    EXPECT_EQ(aig.pi_name(i), net.node(net.pis()[i]).name);
  }
  const Network back = aig_to_network(aig);
  ASSERT_EQ(back.num_pis(), net.num_pis());
  ASSERT_EQ(back.num_pos(), net.num_pos());
  for (int i = 0; i < net.num_pis(); ++i) {
    EXPECT_EQ(back.node(back.pis()[i]).name, net.node(net.pis()[i]).name);
  }
  for (int i = 0; i < net.num_pos(); ++i) {
    EXPECT_EQ(back.po(i).name, net.po(i).name);
  }
}

}  // namespace
}  // namespace apx::aig
