#include "sat/solver.hpp"

#include <gtest/gtest.h>

#include <random>

namespace apx {
namespace {

TEST(SatTest, TrivialSat) {
  SatSolver s;
  int a = s.new_var();
  s.add_unit(Lit(a, false));
  EXPECT_EQ(s.solve(), SatResult::kSat);
  EXPECT_TRUE(s.model_value(a));
}

TEST(SatTest, TrivialUnsat) {
  SatSolver s;
  int a = s.new_var();
  s.add_unit(Lit(a, false));
  s.add_unit(Lit(a, true));
  EXPECT_EQ(s.solve(), SatResult::kUnsat);
}

TEST(SatTest, EmptyClauseUnsat) {
  SatSolver s;
  (void)s.new_var();
  s.add_clause({});
  EXPECT_EQ(s.solve(), SatResult::kUnsat);
}

TEST(SatTest, PropagationChain) {
  SatSolver s;
  const int n = 20;
  std::vector<int> v;
  for (int i = 0; i < n; ++i) v.push_back(s.new_var());
  // v0 and (v_i -> v_{i+1}) chain; force v0 true.
  s.add_unit(Lit(v[0], false));
  for (int i = 0; i + 1 < n; ++i) {
    s.add_binary(Lit(v[i], true), Lit(v[i + 1], false));
  }
  EXPECT_EQ(s.solve(), SatResult::kSat);
  for (int i = 0; i < n; ++i) EXPECT_TRUE(s.model_value(v[i]));
}

TEST(SatTest, PigeonHole3Into2IsUnsat) {
  // PHP(3,2): 3 pigeons in 2 holes, classic small UNSAT instance.
  SatSolver s;
  int p[3][2];
  for (auto& row : p) {
    for (int& x : row) x = s.new_var();
  }
  for (int i = 0; i < 3; ++i) {
    s.add_binary(Lit(p[i][0], false), Lit(p[i][1], false));
  }
  for (int h = 0; h < 2; ++h) {
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        s.add_binary(Lit(p[i][h], true), Lit(p[j][h], true));
      }
    }
  }
  EXPECT_EQ(s.solve(), SatResult::kUnsat);
}

TEST(SatTest, AssumptionsDoNotPoisonSolver) {
  SatSolver s;
  int a = s.new_var();
  int b = s.new_var();
  s.add_binary(Lit(a, false), Lit(b, false));  // a | b
  // UNSAT under assumptions ~a, ~b.
  EXPECT_EQ(s.solve({Lit(a, true), Lit(b, true)}), SatResult::kUnsat);
  // Still SAT without assumptions.
  EXPECT_EQ(s.solve(), SatResult::kSat);
  // SAT under one assumption.
  EXPECT_EQ(s.solve({Lit(a, true)}), SatResult::kSat);
  EXPECT_FALSE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
}

TEST(SatTest, XorChainForcesParity) {
  // x0 ^ x1 ^ ... ^ x5 = 1 encoded via intermediates; check model parity.
  SatSolver s;
  const int n = 6;
  std::vector<int> x;
  for (int i = 0; i < n; ++i) x.push_back(s.new_var());
  int acc = x[0];
  for (int i = 1; i < n; ++i) {
    int t = s.new_var();
    Lit a(acc, false), b(x[i], false), o(t, false);
    // t = a ^ b.
    s.add_ternary(~o, a, b);
    s.add_ternary(~o, ~a, ~b);
    s.add_ternary(o, ~a, b);
    s.add_ternary(o, a, ~b);
    acc = t;
  }
  s.add_unit(Lit(acc, false));
  ASSERT_EQ(s.solve(), SatResult::kSat);
  int parity = 0;
  for (int i = 0; i < n; ++i) parity ^= s.model_value(x[i]) ? 1 : 0;
  EXPECT_EQ(parity, 1);
}

// Random 3-SAT instances cross-checked against brute force.
class SatRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(SatRandomProperty, AgreesWithBruteForce) {
  std::mt19937 rng(GetParam());
  for (int instance = 0; instance < 15; ++instance) {
    const int n = 8;
    const int m = 20 + static_cast<int>(rng() % 25);
    std::vector<std::vector<Lit>> formula;
    for (int c = 0; c < m; ++c) {
      std::vector<Lit> clause;
      for (int k = 0; k < 3; ++k) {
        clause.push_back(Lit(static_cast<int>(rng() % n), rng() & 1));
      }
      formula.push_back(clause);
    }
    // Brute force.
    bool expect_sat = false;
    for (uint64_t a = 0; a < (1u << n) && !expect_sat; ++a) {
      bool all = true;
      for (const auto& clause : formula) {
        bool any = false;
        for (Lit l : clause) {
          bool v = (a >> l.var()) & 1;
          if (v != l.negated()) {
            any = true;
            break;
          }
        }
        if (!any) {
          all = false;
          break;
        }
      }
      expect_sat = all;
    }
    SatSolver s;
    for (int i = 0; i < n; ++i) (void)s.new_var();
    for (auto& clause : formula) s.add_clause(clause);
    SatResult r = s.solve();
    EXPECT_EQ(r == SatResult::kSat, expect_sat) << "instance " << instance;
    if (r == SatResult::kSat) {
      // Verify the model.
      for (const auto& clause : formula) {
        bool any = false;
        for (Lit l : clause) {
          if (s.model_value(l.var()) != l.negated()) {
            any = true;
            break;
          }
        }
        EXPECT_TRUE(any);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatRandomProperty,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707));

TEST(SatTest, ConflictBudgetReturnsUnknown) {
  // PHP(8,7) is hard enough to exceed a 1-conflict budget.
  SatSolver s;
  const int pigeons = 8, holes = 7;
  std::vector<std::vector<int>> p(pigeons, std::vector<int>(holes));
  for (auto& row : p) {
    for (int& x : row) x = s.new_var();
  }
  for (int i = 0; i < pigeons; ++i) {
    std::vector<Lit> clause;
    for (int h = 0; h < holes; ++h) clause.push_back(Lit(p[i][h], false));
    s.add_clause(clause);
  }
  for (int h = 0; h < holes; ++h) {
    for (int i = 0; i < pigeons; ++i) {
      for (int j = i + 1; j < pigeons; ++j) {
        s.add_binary(Lit(p[i][h], true), Lit(p[j][h], true));
      }
    }
  }
  EXPECT_EQ(s.solve({}, 1), SatResult::kUnknown);
  EXPECT_EQ(s.solve({}, -1), SatResult::kUnsat);
}

}  // namespace
}  // namespace apx
