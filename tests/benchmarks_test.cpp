#include "benchmarks/benchmarks.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <random>

#include "mapping/mapper.hpp"
#include "mapping/optimize.hpp"
#include "sim/simulator.hpp"

namespace apx {
namespace {

TEST(BenchmarksTest, C17MatchesKnownFunction) {
  Network net = make_c17();
  net.check();
  Simulator sim(net);
  sim.run(PatternSet::exhaustive(5));
  // Reference model: inputs 1,2,3,6,7 in PI order.
  for (uint64_t m = 0; m < 32; ++m) {
    bool i1 = m & 1, i2 = (m >> 1) & 1, i3 = (m >> 2) & 1, i6 = (m >> 3) & 1,
         i7 = (m >> 4) & 1;
    bool n10 = !(i1 && i3);
    bool n11 = !(i3 && i6);
    bool n16 = !(i2 && n11);
    bool n19 = !(n11 && i7);
    bool o22 = !(n10 && n16);
    bool o23 = !(n16 && n19);
    EXPECT_EQ(static_cast<bool>((sim.value(net.po(0).driver)[0] >> m) & 1),
              o22);
    EXPECT_EQ(static_cast<bool>((sim.value(net.po(1).driver)[0] >> m) & 1),
              o23);
  }
}

TEST(BenchmarksTest, RippleAdderAdds) {
  Network net = make_ripple_adder(4);
  Simulator sim(net);
  sim.run(PatternSet::exhaustive(9));
  for (uint64_t m = 0; m < 512; m += 11) {
    uint64_t a = m & 0xF, b = (m >> 4) & 0xF, cin = (m >> 8) & 1;
    uint64_t expect = a + b + cin;
    uint64_t got = 0;
    for (int i = 0; i < 4; ++i) {
      NodeId drv = net.po(i).driver;
      if ((sim.value(drv)[m >> 6] >> (m & 63)) & 1) got |= 1ULL << i;
    }
    if ((sim.value(net.po(4).driver)[m >> 6] >> (m & 63)) & 1) got |= 16;
    EXPECT_EQ(got, expect) << "a=" << a << " b=" << b << " cin=" << cin;
  }
}

TEST(BenchmarksTest, Comparator4Compares) {
  Network net = make_comparator4();
  Simulator sim(net);
  sim.run(PatternSet::exhaustive(8));
  for (uint64_t m = 0; m < 256; m += 7) {
    uint64_t a = m & 0xF, b = (m >> 4) & 0xF;
    bool eq = (sim.value(net.po(0).driver)[m >> 6] >> (m & 63)) & 1;
    bool gt = (sim.value(net.po(1).driver)[m >> 6] >> (m & 63)) & 1;
    EXPECT_EQ(eq, a == b);
    EXPECT_EQ(gt, a > b);
  }
}

TEST(BenchmarksTest, Majority5Counts) {
  Network net = make_majority5();
  Simulator sim(net);
  sim.run(PatternSet::exhaustive(5));
  for (uint64_t m = 0; m < 32; ++m) {
    bool maj = (sim.value(net.po(0).driver)[0] >> m) & 1;
    EXPECT_EQ(maj, __builtin_popcountll(m) >= 3) << m;
  }
}

TEST(BenchmarksTest, Decoder38OneHot) {
  Network net = make_decoder38();
  Simulator sim(net);
  sim.run(PatternSet::exhaustive(4));
  for (uint64_t m = 0; m < 16; ++m) {
    int sel = m & 7;
    bool en = (m >> 3) & 1;
    int hot = -1, count = 0;
    for (int o = 0; o < 8; ++o) {
      if ((sim.value(net.po(o).driver)[0] >> m) & 1) {
        hot = o;
        ++count;
      }
    }
    if (!en) {
      EXPECT_EQ(count, 0);
    } else {
      EXPECT_EQ(count, 1);
      EXPECT_EQ(hot, sel);
    }
  }
}

TEST(BenchmarksTest, GeneratedProfilesHitTargets) {
  // Spot-check the small and mid profiles: gate counts within 35% of the
  // published target, interface counts exact.
  for (const char* name : {"cmb", "cordic", "term1"}) {
    const BenchmarkProfile& p = mcnc_profile(name);
    Network net = generate_benchmark(p);
    EXPECT_EQ(net.num_pis(), p.num_pis) << name;
    EXPECT_EQ(net.num_pos(), p.num_pos) << name;
    int area = mapped_area(technology_map(quick_synthesis(net)));
    EXPECT_GT(area, p.target_gates * 0.65) << name;
    EXPECT_LT(area, p.target_gates * 1.35) << name;
  }
}

TEST(BenchmarksTest, GenerationIsDeterministic) {
  Network a = generate_benchmark(mcnc_profile("cmb"));
  Network b = generate_benchmark(mcnc_profile("cmb"));
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.total_literals(), b.total_literals());
}

TEST(BenchmarksTest, LargeBenchmarksHaveExactProfiles) {
  // The AIG scale gates are calibrated against these exact sizes; both
  // circuits are deterministic, so a generator or multiplier change that
  // moves the counts must be deliberate. Both sit above the
  // quick-synthesis AIG threshold (5000 logic nodes).
  const std::vector<std::string> names = large_benchmark_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "mult32");
  EXPECT_EQ(names[1], "aes_rp");

  Network mult = make_benchmark("mult32");
  mult.check();
  EXPECT_EQ(mult.num_pis(), 64);
  EXPECT_EQ(mult.num_pos(), 64);
  EXPECT_EQ(mult.num_logic_nodes(), 5888);

  Network aes = make_benchmark("aes_rp");
  aes.check();
  EXPECT_EQ(aes.num_pis(), 128);
  EXPECT_EQ(aes.num_pos(), 128);
  EXPECT_EQ(aes.num_logic_nodes(), 5085);

  // The large names stay out of the default suite list (suite-wide tests
  // iterate benchmark_names() and must not pick up 10k-gate circuits).
  const std::vector<std::string> suite = benchmark_names();
  for (const std::string& n : names) {
    EXPECT_EQ(std::count(suite.begin(), suite.end(), n), 0) << n;
  }
}

TEST(BenchmarksTest, MultiplierMultiplies) {
  // 64 random 32x32 products checked in one bit-parallel pass.
  Network net = make_multiplier(32);
  std::mt19937_64 rng(2026);
  std::array<uint64_t, 64> a_vals;
  std::array<uint64_t, 64> b_vals;
  for (int p = 0; p < 64; ++p) {
    a_vals[p] = rng() & 0xFFFFFFFFull;
    b_vals[p] = rng() & 0xFFFFFFFFull;
  }
  PatternSet patterns(net.num_pis(), 1);
  for (int i = 0; i < 32; ++i) {
    uint64_t wa = 0;
    uint64_t wb = 0;
    for (int p = 0; p < 64; ++p) {
      wa |= ((a_vals[p] >> i) & 1) << p;
      wb |= ((b_vals[p] >> i) & 1) << p;
    }
    patterns.set_word(i, 0, wa);       // PIs a0..a31
    patterns.set_word(32 + i, 0, wb);  // PIs b0..b31
  }
  Simulator sim(net);
  sim.run(patterns);
  for (int p = 0; p < 64; ++p) {
    const uint64_t expect = a_vals[p] * b_vals[p];
    uint64_t got = 0;
    for (int c = 0; c < 64; ++c) {
      if ((sim.value(net.po(c).driver)[0] >> p) & 1) got |= 1ULL << c;
    }
    EXPECT_EQ(got, expect) << "a=" << a_vals[p] << " b=" << b_vals[p];
  }
}

TEST(BenchmarksTest, AllNamesConstructible) {
  for (const std::string& name : benchmark_names()) {
    if (name == "i10" || name == "des" || name == "frg2" || name == "dalu" ||
        name == "i8") {
      continue;  // large profiles exercised by the bench harness
    }
    Network net = make_benchmark(name);
    net.check();
    EXPECT_GT(net.num_pos(), 0) << name;
  }
  EXPECT_THROW(make_benchmark("nope"), std::out_of_range);
}

}  // namespace
}  // namespace apx
