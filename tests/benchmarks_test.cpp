#include "benchmarks/benchmarks.hpp"

#include <gtest/gtest.h>

#include "mapping/mapper.hpp"
#include "mapping/optimize.hpp"
#include "sim/simulator.hpp"

namespace apx {
namespace {

TEST(BenchmarksTest, C17MatchesKnownFunction) {
  Network net = make_c17();
  net.check();
  Simulator sim(net);
  sim.run(PatternSet::exhaustive(5));
  // Reference model: inputs 1,2,3,6,7 in PI order.
  for (uint64_t m = 0; m < 32; ++m) {
    bool i1 = m & 1, i2 = (m >> 1) & 1, i3 = (m >> 2) & 1, i6 = (m >> 3) & 1,
         i7 = (m >> 4) & 1;
    bool n10 = !(i1 && i3);
    bool n11 = !(i3 && i6);
    bool n16 = !(i2 && n11);
    bool n19 = !(n11 && i7);
    bool o22 = !(n10 && n16);
    bool o23 = !(n16 && n19);
    EXPECT_EQ(static_cast<bool>((sim.value(net.po(0).driver)[0] >> m) & 1),
              o22);
    EXPECT_EQ(static_cast<bool>((sim.value(net.po(1).driver)[0] >> m) & 1),
              o23);
  }
}

TEST(BenchmarksTest, RippleAdderAdds) {
  Network net = make_ripple_adder(4);
  Simulator sim(net);
  sim.run(PatternSet::exhaustive(9));
  for (uint64_t m = 0; m < 512; m += 11) {
    uint64_t a = m & 0xF, b = (m >> 4) & 0xF, cin = (m >> 8) & 1;
    uint64_t expect = a + b + cin;
    uint64_t got = 0;
    for (int i = 0; i < 4; ++i) {
      NodeId drv = net.po(i).driver;
      if ((sim.value(drv)[m >> 6] >> (m & 63)) & 1) got |= 1ULL << i;
    }
    if ((sim.value(net.po(4).driver)[m >> 6] >> (m & 63)) & 1) got |= 16;
    EXPECT_EQ(got, expect) << "a=" << a << " b=" << b << " cin=" << cin;
  }
}

TEST(BenchmarksTest, Comparator4Compares) {
  Network net = make_comparator4();
  Simulator sim(net);
  sim.run(PatternSet::exhaustive(8));
  for (uint64_t m = 0; m < 256; m += 7) {
    uint64_t a = m & 0xF, b = (m >> 4) & 0xF;
    bool eq = (sim.value(net.po(0).driver)[m >> 6] >> (m & 63)) & 1;
    bool gt = (sim.value(net.po(1).driver)[m >> 6] >> (m & 63)) & 1;
    EXPECT_EQ(eq, a == b);
    EXPECT_EQ(gt, a > b);
  }
}

TEST(BenchmarksTest, Majority5Counts) {
  Network net = make_majority5();
  Simulator sim(net);
  sim.run(PatternSet::exhaustive(5));
  for (uint64_t m = 0; m < 32; ++m) {
    bool maj = (sim.value(net.po(0).driver)[0] >> m) & 1;
    EXPECT_EQ(maj, __builtin_popcountll(m) >= 3) << m;
  }
}

TEST(BenchmarksTest, Decoder38OneHot) {
  Network net = make_decoder38();
  Simulator sim(net);
  sim.run(PatternSet::exhaustive(4));
  for (uint64_t m = 0; m < 16; ++m) {
    int sel = m & 7;
    bool en = (m >> 3) & 1;
    int hot = -1, count = 0;
    for (int o = 0; o < 8; ++o) {
      if ((sim.value(net.po(o).driver)[0] >> m) & 1) {
        hot = o;
        ++count;
      }
    }
    if (!en) {
      EXPECT_EQ(count, 0);
    } else {
      EXPECT_EQ(count, 1);
      EXPECT_EQ(hot, sel);
    }
  }
}

TEST(BenchmarksTest, GeneratedProfilesHitTargets) {
  // Spot-check the small and mid profiles: gate counts within 35% of the
  // published target, interface counts exact.
  for (const char* name : {"cmb", "cordic", "term1"}) {
    const BenchmarkProfile& p = mcnc_profile(name);
    Network net = generate_benchmark(p);
    EXPECT_EQ(net.num_pis(), p.num_pis) << name;
    EXPECT_EQ(net.num_pos(), p.num_pos) << name;
    int area = mapped_area(technology_map(quick_synthesis(net)));
    EXPECT_GT(area, p.target_gates * 0.65) << name;
    EXPECT_LT(area, p.target_gates * 1.35) << name;
  }
}

TEST(BenchmarksTest, GenerationIsDeterministic) {
  Network a = generate_benchmark(mcnc_profile("cmb"));
  Network b = generate_benchmark(mcnc_profile("cmb"));
  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.total_literals(), b.total_literals());
}

TEST(BenchmarksTest, AllNamesConstructible) {
  for (const std::string& name : benchmark_names()) {
    if (name == "i10" || name == "des" || name == "frg2" || name == "dalu" ||
        name == "i8") {
      continue;  // large profiles exercised by the bench harness
    }
    Network net = make_benchmark(name);
    net.check();
    EXPECT_GT(net.num_pos(), 0) << name;
  }
  EXPECT_THROW(make_benchmark("nope"), std::out_of_range);
}

}  // namespace
}  // namespace apx
