#include "core/logic_sharing.hpp"

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "core/approx_synthesis.hpp"
#include "mapping/mapper.hpp"
#include "mapping/optimize.hpp"
#include "sim/simulator.hpp"

namespace apx {
namespace {

CedDesign make_design(double threshold, SharingReport* report = nullptr,
                      bool share = true) {
  Network net = make_benchmark("cmp4");
  Network opt = quick_synthesis(net);
  Network mapped = technology_map(opt);
  std::vector<ApproxDirection> dirs(net.num_pos(),
                                    ApproxDirection::kZeroApprox);
  ApproxOptions aopt;
  aopt.significance_threshold = threshold;
  ApproxResult r = synthesize_approximation(opt, dirs, aopt);
  Network checkgen = technology_map(r.approx);
  CedDesign ced = build_ced_design(mapped, checkgen, dirs);
  if (share) {
    SharingReport rep = apply_logic_sharing(ced);
    if (report != nullptr) *report = rep;
  }
  return ced;
}

TEST(LogicSharingTest, SharingReducesOrKeepsArea) {
  SharingReport rep;
  CedDesign shared = make_design(0.05, &rep);
  CedDesign unshared = make_design(0.05, nullptr, false);
  EXPECT_LE(shared.overhead_area(), unshared.overhead_area());
  EXPECT_EQ(rep.checkgen_area_after,
            static_cast<int>(shared.checkgen_nodes.size()));
  EXPECT_LE(rep.checkgen_area_after, rep.checkgen_area_before);
}

TEST(LogicSharingTest, SharedDesignStillNeverFalseAlarms) {
  CedDesign ced = make_design(0.05);
  Simulator sim(ced.design);
  sim.run(PatternSet::random(ced.design.num_pis(), 64, 9));
  const auto& z1 = sim.value(ced.error_pair.rail1);
  const auto& z2 = sim.value(ced.error_pair.rail2);
  for (size_t w = 0; w < z1.size(); ++w) {
    EXPECT_EQ(z1[w] ^ z2[w], ~0ULL);
  }
}

TEST(LogicSharingTest, SharedDesignRemainsValidNetwork) {
  CedDesign ced = make_design(0.05);
  ced.design.check();
  // Node partitions must stay within bounds after the remap.
  for (NodeId id : ced.functional_nodes) {
    ASSERT_GE(id, 0);
    ASSERT_LT(id, ced.design.num_nodes());
  }
  for (NodeId id : ced.checkgen_nodes) {
    ASSERT_LT(id, ced.design.num_nodes());
  }
  ASSERT_NE(ced.error_pair.rail1, kNullNode);
  ASSERT_NE(ced.error_pair.rail2, kNullNode);
}

TEST(LogicSharingTest, PerfectDuplicateMergesEntirely) {
  // If the check generator IS the original circuit, every checkgen node is
  // equivalent to a functional node and merges away.
  Network net = make_benchmark("c17");
  Network mapped = technology_map(quick_synthesis(net));
  std::vector<ApproxDirection> dirs(net.num_pos(),
                                    ApproxDirection::kZeroApprox);
  CedDesign ced = build_ced_design(mapped, mapped, dirs);
  SharingOptions all;
  all.max_error_mass = 1.0;  // unlimited criticality budget
  SharingReport rep = apply_logic_sharing(ced, all);
  EXPECT_EQ(rep.checkgen_area_after, 0);
  EXPECT_GT(rep.merged_nodes, 0);
  // The fully shared design detects nothing (both copies fail together) in
  // the functional cone, but it must still not false-alarm.
  Simulator sim(ced.design);
  sim.run(PatternSet::random(ced.design.num_pis(), 16, 4));
  const auto& z1 = sim.value(ced.error_pair.rail1);
  const auto& z2 = sim.value(ced.error_pair.rail2);
  for (size_t w = 0; w < z1.size(); ++w) EXPECT_EQ(z1[w] ^ z2[w], ~0ULL);
}

TEST(LogicSharingTest, SharingTradesCoverage) {
  // Coverage with sharing must not exceed coverage without (statistically:
  // same seeds, same fault model).
  CedDesign shared = make_design(0.05);
  CedDesign unshared = make_design(0.05, nullptr, false);
  CoverageOptions copt;
  copt.num_fault_samples = 400;
  double cov_shared = evaluate_ced_coverage(shared, copt).coverage();
  double cov_unshared = evaluate_ced_coverage(unshared, copt).coverage();
  EXPECT_LE(cov_shared, cov_unshared + 0.05);
}

}  // namespace
}  // namespace apx
