#include "core/checker.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace apx {
namespace {

// Evaluates the checker truth behavior exhaustively over (X, Y).
struct CheckerEval {
  // rails[x][y] = (rail1, rail2) values.
  bool rail1[2][2];
  bool rail2[2][2];
};

CheckerEval eval_checker(ApproxDirection dir) {
  Network net;
  NodeId y = net.add_pi("Y");
  NodeId x = net.add_pi("X");
  TwoRail pair = build_approx_checker(net, y, x, dir);
  net.add_po("r1", pair.rail1);
  net.add_po("r2", pair.rail2);
  Simulator sim(net);
  sim.run(PatternSet::exhaustive(2));
  CheckerEval ev;
  for (int vy = 0; vy < 2; ++vy) {
    for (int vx = 0; vx < 2; ++vx) {
      uint64_t m = vy | (vx << 1);
      ev.rail1[vx][vy] = (sim.value(net.po(0).driver)[0] >> m) & 1;
      ev.rail2[vx][vy] = (sim.value(net.po(1).driver)[0] >> m) & 1;
    }
  }
  return ev;
}

TEST(CheckerTest, ZeroApproxCodeDisjoint) {
  // Valid codewords (X,Y) in {00, 10, 11} -> two-rail valid (rails differ);
  // the invalid codeword 01 -> rails agree (error).
  CheckerEval ev = eval_checker(ApproxDirection::kZeroApprox);
  EXPECT_NE(ev.rail1[0][0], ev.rail2[0][0]);
  EXPECT_NE(ev.rail1[1][0], ev.rail2[1][0]);
  EXPECT_NE(ev.rail1[1][1], ev.rail2[1][1]);
  EXPECT_EQ(ev.rail1[0][1], ev.rail2[0][1]);  // X=0,Y=1 flagged
}

TEST(CheckerTest, OneApproxCodeDisjoint) {
  // Valid codewords {00, 01, 11}; invalid 10 (X=1, Y=0).
  CheckerEval ev = eval_checker(ApproxDirection::kOneApprox);
  EXPECT_NE(ev.rail1[0][0], ev.rail2[0][0]);
  EXPECT_NE(ev.rail1[0][1], ev.rail2[0][1]);
  EXPECT_NE(ev.rail1[1][1], ev.rail2[1][1]);
  EXPECT_EQ(ev.rail1[1][0], ev.rail2[1][0]);
}

TEST(CheckerTest, EqualityCheckerFlagsMismatch) {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  TwoRail pair = build_equality_checker(net, a, b);
  net.add_po("r1", pair.rail1);
  net.add_po("r2", pair.rail2);
  Simulator sim(net);
  sim.run(PatternSet::exhaustive(2));
  for (uint64_t m = 0; m < 4; ++m) {
    bool va = m & 1, vb = (m >> 1) & 1;
    bool r1 = (sim.value(net.po(0).driver)[0] >> m) & 1;
    bool r2 = (sim.value(net.po(1).driver)[0] >> m) & 1;
    EXPECT_EQ(r1 != r2, va == vb) << m;  // valid iff equal
  }
}

TEST(CheckerTest, TwoRailCellTruthTable) {
  Network net;
  NodeId a1 = net.add_pi("a1");
  NodeId a2 = net.add_pi("a2");
  NodeId b1 = net.add_pi("b1");
  NodeId b2 = net.add_pi("b2");
  TwoRail out = two_rail_cell(net, {a1, a2}, {b1, b2});
  net.add_po("z1", out.rail1);
  net.add_po("z2", out.rail2);
  Simulator sim(net);
  sim.run(PatternSet::exhaustive(4));
  for (uint64_t m = 0; m < 16; ++m) {
    bool va1 = m & 1, va2 = (m >> 1) & 1, vb1 = (m >> 2) & 1,
         vb2 = (m >> 3) & 1;
    bool z1 = (sim.value(net.po(0).driver)[0] >> m) & 1;
    bool z2 = (sim.value(net.po(1).driver)[0] >> m) & 1;
    bool inputs_valid = (va1 != va2) && (vb1 != vb2);
    // TSC two-rail checker: output valid iff both input pairs valid.
    EXPECT_EQ(z1 != z2, inputs_valid) << m;
    // And exact function: z1 = a1 b1 + a2 b2.
    EXPECT_EQ(z1, (va1 && vb1) || (va2 && vb2)) << m;
  }
}

TEST(CheckerTest, TwoRailTreeValidityComposes) {
  // 5 pairs (odd count exercises the carry-through path).
  Network net;
  std::vector<TwoRail> pairs;
  std::vector<NodeId> pis;
  for (int i = 0; i < 5; ++i) {
    NodeId p1 = net.add_pi("p" + std::to_string(i) + "_1");
    NodeId p2 = net.add_pi("p" + std::to_string(i) + "_2");
    pis.push_back(p1);
    pis.push_back(p2);
    pairs.push_back({p1, p2});
  }
  TwoRail root = build_two_rail_tree(net, pairs);
  net.add_po("z1", root.rail1);
  net.add_po("z2", root.rail2);
  Simulator sim(net);
  sim.run(PatternSet::exhaustive(10));
  for (uint64_t m = 0; m < 1024; m += 7) {
    bool all_valid = true;
    for (int i = 0; i < 5; ++i) {
      bool r1 = (m >> (2 * i)) & 1;
      bool r2 = (m >> (2 * i + 1)) & 1;
      if (r1 == r2) all_valid = false;
    }
    bool z1 = (sim.value(net.po(0).driver)[0 + (m >> 6)] >> (m & 63)) & 1;
    bool z2 = (sim.value(net.po(1).driver)[0 + (m >> 6)] >> (m & 63)) & 1;
    EXPECT_EQ(z1 != z2, all_valid) << m;
  }
}

TEST(CheckerTest, EmptyTreeIsConstantValid) {
  Network net;
  TwoRail root = build_two_rail_tree(net, {});
  net.add_po("z1", root.rail1);
  net.add_po("z2", root.rail2);
  EXPECT_EQ(net.node(root.rail1).kind, NodeKind::kConst0);
  EXPECT_EQ(net.node(root.rail2).kind, NodeKind::kConst1);
}

// TSC self-testing exceptions (paper Sec. 3.2): for a 0-approximation,
// Y stuck-at-0 can never be detected during normal operation (the checker
// input becomes the valid codeword X=1,Y=0), and X stuck-at-1 likewise.
TEST(CheckerTest, ZeroApproxUndetectableFaultDirections) {
  // Use X = Y = the same function (a perfect 0-approximation): build
  // F = a&b protected by X = F.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId y = net.add_and(a, b, "Y");
  NodeId x = net.add_and(a, b, "X");
  TwoRail pair = build_approx_checker(net, y, x, ApproxDirection::kZeroApprox);
  net.add_po("z1", pair.rail1);
  net.add_po("z2", pair.rail2);
  Simulator sim(net);
  sim.run(PatternSet::exhaustive(2));

  auto rails_agree_somewhere = [&](StuckFault f) {
    sim.inject(f);
    uint64_t z1 = sim.faulty_value(net.po(0).driver)[0];
    uint64_t z2 = sim.faulty_value(net.po(1).driver)[0];
    uint64_t mask = 0xF;  // 4 exhaustive patterns replicated
    return ((~(z1 ^ z2)) & mask) != 0;
  };
  // Y stuck-at-0: checker sees valid codewords only -> never flagged.
  EXPECT_FALSE(rails_agree_somewhere({y, false}));
  // X stuck-at-1: likewise undetectable.
  EXPECT_FALSE(rails_agree_somewhere({x, true}));
  // The protected directions ARE detectable.
  EXPECT_TRUE(rails_agree_somewhere({y, true}));   // Y 0->1 errors
  EXPECT_TRUE(rails_agree_somewhere({x, false}));  // X stuck-at-0
}

}  // namespace
}  // namespace apx
