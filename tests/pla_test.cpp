#include "network/pla.hpp"

#include <gtest/gtest.h>

#include "sat/encode.hpp"
#include "tt/truth_table.hpp"

namespace apx {
namespace {

const char* kXorPla = R"(
# 2-input XOR plus an AND output
.i 2
.o 2
.ilb a b
.ob x y
01 10
10 10
11 01
.e
)";

TEST(PlaTest, ParsesMultiOutput) {
  Pla pla = read_pla_string(kXorPla);
  EXPECT_EQ(pla.num_inputs, 2);
  ASSERT_EQ(pla.onsets.size(), 2u);
  EXPECT_EQ(pla.onsets[0].num_cubes(), 2);  // xor
  EXPECT_EQ(pla.onsets[1].num_cubes(), 1);  // and
  EXPECT_EQ(pla.input_names[0], "a");
  EXPECT_EQ(pla.output_names[1], "y");
}

TEST(PlaTest, NetworkFromPlaComputesFunctions) {
  Network net = pla_to_network(read_pla_string(kXorPla));
  EXPECT_EQ(net.num_pis(), 2);
  EXPECT_EQ(net.num_pos(), 2);
  TruthTable x = TruthTable::from_sop(net.node(net.po(0).driver).sop);
  EXPECT_EQ(x.to_binary(), "0110");
  TruthTable y = TruthTable::from_sop(net.node(net.po(1).driver).sop);
  EXPECT_EQ(y.to_binary(), "1000");
}

TEST(PlaTest, DontCareRowsLandInDcSet) {
  const char* text = ".i 2\n.o 1\n11 1\n0- -\n.e\n";
  Pla pla = read_pla_string(text);
  EXPECT_EQ(pla.onsets[0].num_cubes(), 1);
  EXPECT_EQ(pla.dcsets[0].num_cubes(), 1);
}

TEST(PlaTest, RoundTripPreservesFunctions) {
  Pla pla = read_pla_string(kXorPla);
  Pla back = read_pla_string(write_pla_string(pla));
  Network a = pla_to_network(pla);
  Network b = pla_to_network(back);
  for (int o = 0; o < a.num_pos(); ++o) {
    EXPECT_EQ(check_po_equivalence(a, o, b, o), CheckResult::kHolds) << o;
  }
}

TEST(PlaTest, GluedPlanesSingleToken) {
  // Some writers glue input and output planes together.
  const char* text = ".i 2\n.o 1\n111\n.e\n";
  Pla pla = read_pla_string(text);
  EXPECT_EQ(pla.onsets[0].num_cubes(), 1);
  EXPECT_EQ(pla.onsets[0].cube(0).to_string(), "11");
}

TEST(PlaTest, NetworkToPlaCollapsesCones) {
  // Multi-level network -> two-level PLA with the same functions.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  NodeId t = net.add_and(a, b, "t");
  net.add_po("f", net.add_or(t, c, "f"));
  Pla pla = network_to_pla(net);
  Network two_level = pla_to_network(pla);
  EXPECT_EQ(check_po_equivalence(net, 0, two_level, 0), CheckResult::kHolds);
}

TEST(PlaTest, RejectsMalformed) {
  EXPECT_THROW(read_pla_string(".i 2\n11 1\n.e\n"), std::runtime_error);
  EXPECT_THROW(read_pla_string(".i 2\n.o 1\n1 1\n.e\n"), std::runtime_error);
  EXPECT_THROW(read_pla_string(".i 2\n.o 1\n11 x\n.e\n"), std::runtime_error);
  EXPECT_THROW(read_pla_string(".i 2\n.o 1\n.kiss\n.e\n"),
               std::runtime_error);
}

TEST(PlaTest, RejectsWideCollapse) {
  Network net;
  std::vector<NodeId> pis;
  for (int i = 0; i < kMaxLocalVars + 1; ++i) {
    pis.push_back(net.add_pi("x" + std::to_string(i)));
  }
  net.add_po("f", net.add_and(pis[0], pis[1]));
  EXPECT_THROW(network_to_pla(net), std::invalid_argument);
}

}  // namespace
}  // namespace apx
