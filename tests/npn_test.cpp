#include "aig/npn.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "tt/truth_table.hpp"

namespace apx::aig {
namespace {

// Independent re-implementations of the 16-bit truth-table operations via
// minterm loops (the library uses mask/shift identities; the tests must
// not share that code path).
uint16_t ref_flip(uint16_t f, int v) {
  uint16_t out = 0;
  for (int m = 0; m < 16; ++m) {
    out = static_cast<uint16_t>(out | (((f >> (m ^ (1 << v))) & 1) << m));
  }
  return out;
}

uint16_t ref_swap(uint16_t f, int v) {
  uint16_t out = 0;
  for (int m = 0; m < 16; ++m) {
    const int a = (m >> v) & 1;
    const int b = (m >> (v + 1)) & 1;
    const int src = (m & ~((1 << v) | (1 << (v + 1)))) | (b << v) |
                    (a << (v + 1));
    out = static_cast<uint16_t>(out | (((f >> src) & 1) << m));
  }
  return out;
}

TEST(NpnTest, Tt16OpsMatchMintermSemantics) {
  for (uint32_t f = 0; f < 65536; ++f) {
    const uint16_t t = static_cast<uint16_t>(f);
    for (int v = 0; v < 4; ++v) {
      ASSERT_EQ(tt16::flip_var(t, v), ref_flip(t, v)) << f << " v" << v;
    }
    for (int v = 0; v < 3; ++v) {
      ASSERT_EQ(tt16::swap_adjacent(t, v), ref_swap(t, v)) << f << " v" << v;
    }
  }
}

TEST(NpnTest, ProjectionsMatchTruthTable) {
  for (int v = 0; v < 4; ++v) {
    const TruthTable t = TruthTable::variable(4, v);
    for (uint64_t m = 0; m < 16; ++m) {
      EXPECT_EQ((tt16::kVar[v] >> m) & 1, t.get(m) ? 1 : 0);
    }
  }
}

TEST(NpnTest, NumClassesIs222) {
  EXPECT_EQ(NpnTable::instance().num_classes(), 222);
}

TEST(NpnTest, TransformContractExhaustive) {
  // Independent evaluator: for every function, replaying the stored
  // transform against the canonical table must reproduce the function on
  // each of the 16 minterms.
  const NpnTable& npn = NpnTable::instance();
  for (uint32_t f = 0; f < 65536; ++f) {
    const NpnEntry& t = npn.entry(static_cast<uint16_t>(f));
    for (int m = 0; m < 16; ++m) {
      int y = 0;
      for (int i = 0; i < 4; ++i) {
        const int x = (m >> t.perm(i)) & 1;
        y |= (x ^ (t.input_neg(i) ? 1 : 0)) << i;
      }
      const int expected = (f >> m) & 1;
      const int got = ((t.canon >> y) & 1) ^ (t.output_neg() ? 1 : 0);
      ASSERT_EQ(got, expected) << "f=" << f << " m=" << m;
    }
  }
}

TEST(NpnTest, DifferentialOrbitEnumerationOverAllFunctions) {
  // Re-derive the NPN classes from scratch with the reference operations
  // and exhaustive BFS; the precomputed table must agree on every orbit's
  // membership and on the (minimum-element) representative.
  const NpnTable& npn = NpnTable::instance();
  std::vector<char> visited(65536, 0);
  std::vector<uint32_t> stack;
  int classes = 0;
  for (uint32_t rep = 0; rep < 65536; ++rep) {
    if (visited[rep]) continue;
    ++classes;
    stack.assign(1, rep);
    visited[rep] = 1;
    while (!stack.empty()) {
      const uint16_t g = static_cast<uint16_t>(stack.back());
      stack.pop_back();
      ASSERT_EQ(npn.canonical(g), rep) << "g=" << g;
      ASSERT_LE(npn.canonical(g), g);
      uint16_t next[8];
      next[0] = static_cast<uint16_t>(~g & 0xFFFF);
      for (int v = 0; v < 4; ++v) next[1 + v] = ref_flip(g, v);
      for (int v = 0; v < 3; ++v) next[5 + v] = ref_swap(g, v);
      for (uint16_t h : next) {
        if (!visited[h]) {
          visited[h] = 1;
          stack.push_back(h);
        }
      }
    }
  }
  EXPECT_EQ(classes, 222);
  EXPECT_EQ(npn.num_classes(), classes);
}

TEST(NpnTest, RepresentativesAreFixedPoints) {
  const NpnTable& npn = NpnTable::instance();
  uint16_t prev = 0;
  bool first = true;
  for (uint16_t rep : npn.representatives()) {
    EXPECT_EQ(npn.canonical(rep), rep);
    const NpnEntry& t = npn.entry(rep);
    EXPECT_FALSE(t.output_neg());
    EXPECT_EQ(t.phase, 0);
    if (!first) EXPECT_GT(rep, prev);
    prev = rep;
    first = false;
  }
}

}  // namespace
}  // namespace apx::aig
