#include "sim/fault_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <random>

#include "benchmarks/benchmarks.hpp"
#include "core/ced.hpp"
#include "mapping/mapper.hpp"
#include "mapping/optimize.hpp"
#include "reliability/reliability.hpp"

namespace apx {
namespace {

Network random_network(uint32_t seed, int pis = 6, int gates = 30) {
  std::mt19937 rng(seed);
  Network net;
  std::vector<NodeId> pool;
  for (int i = 0; i < pis; ++i) {
    pool.push_back(net.add_pi("p" + std::to_string(i)));
  }
  for (int g = 0; g < gates; ++g) {
    NodeId a = pool[rng() % pool.size()];
    NodeId b = pool[rng() % pool.size()];
    switch (rng() % 3) {
      case 0: pool.push_back(net.add_and(a, b)); break;
      case 1: pool.push_back(net.add_or(a, b)); break;
      case 2: pool.push_back(net.add_xor(a, b)); break;
    }
  }
  net.add_po("f", pool.back());
  net.add_po("g", pool[pool.size() / 2]);
  return net;
}

CedDesign duplication_ced(const std::string& bench) {
  Network mapped = technology_map(quick_synthesis(make_benchmark(bench)));
  std::vector<ApproxDirection> dirs(mapped.num_pos(),
                                    ApproxDirection::kZeroApprox);
  return build_ced_design(mapped, mapped, dirs);
}

TEST(FaultEngineTest, RunBatchMatchesSimulator) {
  Network net = random_network(11);
  std::vector<StuckFault> faults = enumerate_faults(net);
  PatternSet patterns = PatternSet::random(net.num_pis(), 4, 77);

  Simulator sim(net);
  sim.run(patterns);

  FaultSimEngine engine(net);
  std::atomic<int> visited{0};
  // num_threads = 1 explicitly: the visitor injects into one shared
  // Simulator, which is not safe under concurrent visits.
  auto check = [&](int i, const StuckFault& fault,
                   const FaultView& view) {
    EXPECT_EQ(fault.node, faults[i].node);
    sim.inject(fault);
    for (NodeId id = 0; id < net.num_nodes(); ++id) {
      for (int w = 0; w < view.num_words(); ++w) {
        ASSERT_EQ(view.golden(id)[w], sim.value(id)[w]);
        ASSERT_EQ(view.faulty(id)[w], sim.faulty_value(id)[w])
            << "node " << id << " fault on " << fault.node;
      }
    }
    ++visited;
  };
  engine.run_batch(patterns, faults, check, /*num_threads=*/1);
  EXPECT_EQ(visited.load(), static_cast<int>(faults.size()));
}

// Satellite: run_batch's default num_threads used to be a hard-coded 1
// while every campaign-level option already defaulted to 0 = the
// APX_THREADS policy. The default is now 0, and results stay bit-identical
// between explicit 1 and the policy-resolved pool.
TEST(FaultEngineTest, RunBatchDefaultThreadsFollowsPolicyAndStaysIdentical) {
  Network net = random_network(21);
  std::vector<StuckFault> faults = enumerate_faults(net);
  PatternSet patterns = PatternSet::random(net.num_pis(), 4, 99);
  FaultSimEngine engine(net);

  auto fingerprint = [&](int num_threads) {
    std::vector<uint64_t> sums(faults.size(), 0);
    engine.run_batch(
        patterns, faults,
        [&](int i, const StuckFault&, const FaultView& view) {
          uint64_t h = 0;
          for (NodeId id = 0; id < net.num_nodes(); ++id) {
            for (int w = 0; w < view.num_words(); ++w) {
              h = h * 1099511628211ULL ^ (view.faulty(id)[w] & view.word_mask(w));
            }
          }
          sums[i] = h;
        },
        num_threads);
    return sums;
  };

  // 0 resolves through apx::thread_count() (APX_THREADS policy) — the
  // same resolution CampaignOptions/DetectOptions use.
  const std::vector<uint64_t> policy = fingerprint(0);
  const std::vector<uint64_t> serial = fingerprint(1);
  const std::vector<uint64_t> four = fingerprint(4);
  EXPECT_EQ(policy, serial);
  EXPECT_EQ(policy, four);
}

TEST(FaultEngineTest, UnexcitedFaultLeavesViewGolden) {
  // y = a | !a is constant 1; stuck-at-1 on it never differs from golden,
  // so nothing may propagate (early fault dropping inside the engine).
  Network net;
  NodeId a = net.add_pi("a");
  NodeId y = net.add_or(a, net.add_not(a), "y");
  NodeId z = net.add_and(y, a, "z");
  net.add_po("z", z);
  FaultSimEngine engine(net);
  PatternSet patterns = PatternSet::random(1, 2, 3);
  engine.run_batch(patterns, {{y, true}},
                   [&](int, const StuckFault&, const FaultView& view) {
                     EXPECT_FALSE(view.touched(y));
                     EXPECT_FALSE(view.touched(z));
                     for (int w = 0; w < view.num_words(); ++w) {
                       EXPECT_EQ(view.faulty(z)[w], view.golden(z)[w]);
                     }
                   });
}

TEST(FaultEngineTest, CampaignVisitsEverySampleExactlyOnce) {
  Network net = random_network(5);
  std::vector<StuckFault> faults = enumerate_faults(net);
  FaultSimEngine engine(net);
  CampaignOptions opt;
  opt.num_fault_samples = 100;
  opt.faults_per_batch = 16;
  opt.num_threads = 4;
  // random_network leaves some gates with no fanout and no PO — legitimate
  // here, the test only counts visits. kAllow keeps them simulatable.
  opt.dead_sites = DeadSitePolicy::kAllow;
  std::vector<int> visits(opt.num_fault_samples, 0);
  engine.run_campaign(
      opt,
      [&](uint64_t s) { return faults[SplitMix64(s).next() % faults.size()]; },
      [&](int i, const StuckFault&, const FaultView&) { ++visits[i]; });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(FaultEngineTest, SeedDerivationIsPureAndIndexStable) {
  EXPECT_EQ(derive_seed(42, 7), derive_seed(42, 7));
  EXPECT_NE(derive_seed(42, 7), derive_seed(42, 8));
  EXPECT_NE(derive_seed(42, 7), derive_seed(43, 7));
}

// Satellite requirement (c): 4-thread coverage counts bit-identical to the
// single-threaded path for a fixed seed.
TEST(FaultEngineTest, CoverageCountsBitIdenticalAcrossThreadCounts) {
  CedDesign ced = duplication_ced("cmp4");
  CoverageOptions base;
  base.num_fault_samples = 400;
  base.faults_per_batch = 32;

  CoverageOptions one = base;
  one.num_threads = 1;
  CoverageResult r1 = evaluate_ced_coverage(ced, one);

  CoverageOptions four = base;
  four.num_threads = 4;
  CoverageResult r4 = evaluate_ced_coverage(ced, four);

  EXPECT_GT(r1.erroneous, 0);
  EXPECT_EQ(r1.runs, r4.runs);
  EXPECT_EQ(r1.erroneous, r4.erroneous);
  EXPECT_EQ(r1.detected, r4.detected);
}

TEST(FaultEngineTest, ReliabilityBitIdenticalAcrossThreadCounts) {
  Network mapped = technology_map(quick_synthesis(make_benchmark("dec38")));
  ReliabilityOptions one;
  one.num_fault_samples = 300;
  one.num_threads = 1;
  ReliabilityOptions four = one;
  four.num_threads = 4;
  ReliabilityReport r1 = analyze_reliability(mapped, one);
  ReliabilityReport r4 = analyze_reliability(mapped, four);
  ASSERT_EQ(r1.outputs.size(), r4.outputs.size());
  for (size_t o = 0; o < r1.outputs.size(); ++o) {
    EXPECT_DOUBLE_EQ(r1.outputs[o].rate_0_to_1, r4.outputs[o].rate_0_to_1);
    EXPECT_DOUBLE_EQ(r1.outputs[o].rate_1_to_0, r4.outputs[o].rate_1_to_0);
  }
  EXPECT_DOUBLE_EQ(r1.any_output_error_rate, r4.any_output_error_rate);
  EXPECT_DOUBLE_EQ(r1.max_ced_coverage, r4.max_ced_coverage);
}

TEST(FaultEngineTest, DetectFaultsDropsDetectedFaults) {
  Network net = random_network(9);
  std::vector<StuckFault> faults = enumerate_faults(net);
  std::vector<NodeId> observe;
  for (const auto& po : net.pos()) observe.push_back(po.driver);

  FaultSimEngine engine(net);
  DetectOptions opt;
  opt.max_words = 32;
  opt.words_per_batch = 4;
  DetectionReport report = engine.detect_faults(faults, observe, opt);

  ASSERT_EQ(report.detected.size(), faults.size());
  const int num_batches = opt.max_words / opt.words_per_batch;
  // Dropping: detected faults stop consuming batches, so the total work is
  // below the no-dropping product whenever anything is detected early.
  EXPECT_GT(report.num_detected(), 0);
  EXPECT_LT(report.fault_batch_evals,
            static_cast<int64_t>(faults.size()) * num_batches);
  for (size_t i = 0; i < faults.size(); ++i) {
    if (report.detected[i]) {
      EXPECT_GE(report.detecting_batch[i], 0);
      EXPECT_LT(report.detecting_batch[i], num_batches);
    } else {
      EXPECT_EQ(report.detecting_batch[i], -1);
    }
  }

  // Thread count must not change what is detected or when.
  DetectOptions threaded = opt;
  threaded.num_threads = 4;
  DetectionReport r4 = engine.detect_faults(faults, observe, threaded);
  EXPECT_EQ(report.detected, r4.detected);
  EXPECT_EQ(report.detecting_batch, r4.detecting_batch);
}

TEST(FaultEngineTest, CampaignRejectsOutOfRangeFaultSites) {
  Network net = random_network(3);
  FaultSimEngine engine(net);
  CampaignOptions opt;
  opt.num_fault_samples = 4;
  EXPECT_THROW(
      engine.run_campaign(
          opt, [&](uint64_t) { return StuckFault{net.num_nodes(), false}; },
          [](int, const StuckFault&, const FaultView&) {}),
      std::logic_error);
}

}  // namespace
}  // namespace apx
