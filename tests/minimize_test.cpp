#include "sop/minimize.hpp"

#include <gtest/gtest.h>

#include <random>

#include "tt/truth_table.hpp"

namespace apx {
namespace {

Sop random_sop(std::mt19937& rng, int num_vars, int max_cubes) {
  Sop s(num_vars);
  int cubes = 1 + static_cast<int>(rng() % max_cubes);
  for (int i = 0; i < cubes; ++i) {
    Cube c = Cube::full(num_vars);
    for (int v = 0; v < num_vars; ++v) {
      int roll = static_cast<int>(rng() % 3);
      if (roll == 0) c.set(v, LitCode::kNeg);
      if (roll == 1) c.set(v, LitCode::kPos);
    }
    s.add_cube(c);
  }
  return s;
}

TEST(MinimizeTest, MergesAdjacentCubes) {
  // x0 x1 + x0 x1' should minimize to x0.
  Sop f = *Sop::parse(2, "11\n10");
  Sop m = minimize(f);
  EXPECT_EQ(m.num_cubes(), 1);
  EXPECT_EQ(m.cube(0).to_string(), "1-");
}

TEST(MinimizeTest, RemovesRedundantConsensusCube) {
  // ab + a'c + bc: the consensus cube bc is redundant.
  Sop f = *Sop::parse(3, "11-\n0-1\n-11");
  Sop m = minimize(f);
  EXPECT_EQ(m.num_cubes(), 2);
  TruthTable before = TruthTable::from_sop(f);
  TruthTable after = TruthTable::from_sop(m);
  EXPECT_EQ(before, after);
}

TEST(MinimizeTest, UsesDontCaresToExpand) {
  // onset = x0 x1, dc = x0 x1' -> minimizes to x0.
  Sop onset = *Sop::parse(2, "11");
  Sop dc = *Sop::parse(2, "10");
  Sop m = minimize(onset, dc);
  EXPECT_EQ(m.num_cubes(), 1);
  EXPECT_EQ(m.cube(0).to_string(), "1-");
}

TEST(MinimizeTest, TautologyMinimizesToFullCube) {
  Sop f = *Sop::parse(1, "0\n1");
  Sop m = minimize(f);
  ASSERT_EQ(m.num_cubes(), 1);
  EXPECT_TRUE(m.cube(0).is_full());
}

class MinimizeProperty : public ::testing::TestWithParam<int> {};

TEST_P(MinimizeProperty, PreservesFunctionWithinCare) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    int n = 2 + static_cast<int>(rng() % 5);
    Sop onset = random_sop(rng, n, 6);
    Sop dc = (rng() & 1) ? random_sop(rng, n, 3) : Sop::zero(n);
    Sop m = minimize(onset, dc);
    TruthTable on_tt = TruthTable::from_sop(onset);
    TruthTable dc_tt = TruthTable::from_sop(dc);
    TruthTable m_tt = TruthTable::from_sop(m);
    // onset <= result <= onset + dc.
    EXPECT_TRUE(TruthTable::implies(on_tt & ~dc_tt, m_tt));
    EXPECT_TRUE(TruthTable::implies(m_tt, on_tt | dc_tt));
  }
}

TEST_P(MinimizeProperty, IrredundantKeepsFunction) {
  std::mt19937 rng(GetParam() + 100);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 2 + static_cast<int>(rng() % 5);
    Sop f = random_sop(rng, n, 8);
    Sop g = irredundant(f, Sop::zero(n));
    EXPECT_EQ(TruthTable::from_sop(f), TruthTable::from_sop(g));
    // No cube of g is covered by the others.
    for (int i = 0; i < g.num_cubes(); ++i) {
      Sop rest(n);
      for (int j = 0; j < g.num_cubes(); ++j) {
        if (j != i) rest.add_cube(g.cube(j));
      }
      EXPECT_FALSE(rest.covers_cube(g.cube(i)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizeProperty,
                         ::testing::Values(2, 4, 8, 16, 32));

}  // namespace
}  // namespace apx
