#include "sop/minimize.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "tt/truth_table.hpp"

namespace apx {
namespace {

Sop random_sop(std::mt19937& rng, int num_vars, int max_cubes) {
  Sop s(num_vars);
  int cubes = 1 + static_cast<int>(rng() % max_cubes);
  for (int i = 0; i < cubes; ++i) {
    Cube c = Cube::full(num_vars);
    for (int v = 0; v < num_vars; ++v) {
      int roll = static_cast<int>(rng() % 3);
      if (roll == 0) c.set(v, LitCode::kNeg);
      if (roll == 1) c.set(v, LitCode::kPos);
    }
    s.add_cube(c);
  }
  return s;
}

TEST(MinimizeTest, MergesAdjacentCubes) {
  // x0 x1 + x0 x1' should minimize to x0.
  Sop f = *Sop::parse(2, "11\n10");
  Sop m = minimize(f);
  EXPECT_EQ(m.num_cubes(), 1);
  EXPECT_EQ(m.cube(0).to_string(), "1-");
}

TEST(MinimizeTest, RemovesRedundantConsensusCube) {
  // ab + a'c + bc: the consensus cube bc is redundant.
  Sop f = *Sop::parse(3, "11-\n0-1\n-11");
  Sop m = minimize(f);
  EXPECT_EQ(m.num_cubes(), 2);
  TruthTable before = TruthTable::from_sop(f);
  TruthTable after = TruthTable::from_sop(m);
  EXPECT_EQ(before, after);
}

TEST(MinimizeTest, UsesDontCaresToExpand) {
  // onset = x0 x1, dc = x0 x1' -> minimizes to x0.
  Sop onset = *Sop::parse(2, "11");
  Sop dc = *Sop::parse(2, "10");
  Sop m = minimize(onset, dc);
  EXPECT_EQ(m.num_cubes(), 1);
  EXPECT_EQ(m.cube(0).to_string(), "1-");
}

TEST(MinimizeTest, TautologyMinimizesToFullCube) {
  Sop f = *Sop::parse(1, "0\n1");
  Sop m = minimize(f);
  ASSERT_EQ(m.num_cubes(), 1);
  EXPECT_TRUE(m.cube(0).is_full());
}

class MinimizeProperty : public ::testing::TestWithParam<int> {};

TEST_P(MinimizeProperty, PreservesFunctionWithinCare) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    int n = 2 + static_cast<int>(rng() % 5);
    Sop onset = random_sop(rng, n, 6);
    Sop dc = (rng() & 1) ? random_sop(rng, n, 3) : Sop::zero(n);
    Sop m = minimize(onset, dc);
    TruthTable on_tt = TruthTable::from_sop(onset);
    TruthTable dc_tt = TruthTable::from_sop(dc);
    TruthTable m_tt = TruthTable::from_sop(m);
    // onset <= result <= onset + dc.
    EXPECT_TRUE(TruthTable::implies(on_tt & ~dc_tt, m_tt));
    EXPECT_TRUE(TruthTable::implies(m_tt, on_tt | dc_tt));
  }
}

TEST_P(MinimizeProperty, IrredundantKeepsFunction) {
  std::mt19937 rng(GetParam() + 100);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 2 + static_cast<int>(rng() % 5);
    Sop f = random_sop(rng, n, 8);
    Sop g = irredundant(f, Sop::zero(n));
    EXPECT_EQ(TruthTable::from_sop(f), TruthTable::from_sop(g));
    // No cube of g is covered by the others.
    for (int i = 0; i < g.num_cubes(); ++i) {
      Sop rest(n);
      for (int j = 0; j < g.num_cubes(); ++j) {
        if (j != i) rest.add_cube(g.cube(j));
      }
      EXPECT_FALSE(rest.covers_cube(g.cube(i)));
    }
  }
}

// Reference copy of the pre-scratch-reuse irredundant(): rebuilds the rest
// cover from scratch per probe, with the dc cubes appended AFTER the other
// cubes (the old ordering). The production version hoists dc to a fixed
// prefix and truncates; the two must pick exactly the same cubes.
Sop irredundant_reference(const Sop& cover, const Sop& dc) {
  std::vector<Cube> cubes = cover.cubes();
  std::sort(cubes.begin(), cubes.end(), [](const Cube& a, const Cube& b) {
    return a.literal_count() > b.literal_count();
  });
  std::vector<bool> removed(cubes.size(), false);
  for (size_t i = 0; i < cubes.size(); ++i) {
    Sop rest(cover.num_vars());
    for (size_t j = 0; j < cubes.size(); ++j) {
      if (j != i && !removed[j]) rest.add_cube(cubes[j]);
    }
    for (const Cube& d : dc.cubes()) rest.add_cube(d);
    if (rest.covers_cube(cubes[i])) removed[i] = true;
  }
  Sop result(cover.num_vars());
  for (size_t i = 0; i < cubes.size(); ++i) {
    if (!removed[i]) result.add_cube(cubes[i]);
  }
  return result;
}

// Replica of minimize.cpp's reduce_cube, on the public Sop API.
Cube reduce_cube_reference(const Cube& c, const Sop& rest_plus_dc) {
  Sop cof = rest_plus_dc.cofactor(c);
  Sop comp = Sop::complement(cof);
  if (comp.empty()) return c;
  const int n = c.num_vars();
  Cube super = comp.cube(0);
  for (int i = 1; i < comp.num_cubes(); ++i) {
    const Cube& o = comp.cube(i);
    for (int v = 0; v < n; ++v) {
      super.set(v, static_cast<LitCode>(static_cast<uint8_t>(super.get(v)) |
                                        static_cast<uint8_t>(o.get(v))));
    }
  }
  auto reduced = c.intersect(super);
  return reduced ? *reduced : c;
}

TEST_P(MinimizeProperty, IrredundantMatchesPerProbeRebuild) {
  std::mt19937 rng(GetParam() + 200);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 2 + static_cast<int>(rng() % 5);
    Sop f = random_sop(rng, n, 8);
    Sop dc = (rng() & 1) ? random_sop(rng, n, 3) : Sop::zero(n);
    EXPECT_EQ(irredundant(f, dc), irredundant_reference(f, dc));
  }
}

TEST_P(MinimizeProperty, ReduceIsRestOrderIndependent) {
  // The scratch-cover rewrite moved the dc cubes from the tail of the rest
  // cover to a fixed prefix. REDUCE must not care: its result depends only
  // on the function of rest + dc, not the cube order.
  std::mt19937 rng(GetParam() + 300);
  for (int trial = 0; trial < 20; ++trial) {
    int n = 2 + static_cast<int>(rng() % 5);
    Sop f = random_sop(rng, n, 6);
    Sop dc = random_sop(rng, n, 3);
    for (int i = 0; i < f.num_cubes(); ++i) {
      Sop others_then_dc(n);
      Sop dc_then_others(n);
      for (const Cube& d : dc.cubes()) dc_then_others.add_cube(d);
      for (int j = 0; j < f.num_cubes(); ++j) {
        if (j != i) {
          others_then_dc.add_cube(f.cube(j));
          dc_then_others.add_cube(f.cube(j));
        }
      }
      for (const Cube& d : dc.cubes()) others_then_dc.add_cube(d);
      EXPECT_EQ(
          reduce_cube_reference(f.cube(i), others_then_dc).to_string(),
          reduce_cube_reference(f.cube(i), dc_then_others).to_string());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizeProperty,
                         ::testing::Values(2, 4, 8, 16, 32));

}  // namespace
}  // namespace apx
