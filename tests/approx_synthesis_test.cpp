#include "core/approx_synthesis.hpp"

#include <gtest/gtest.h>

#include <random>

#include "bdd/network_bdd.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/verify.hpp"
#include "mapping/mapper.hpp"
#include "mapping/optimize.hpp"

namespace apx {
namespace {

// The Sec. 2 example: F = a + b + c'd' + cd.
Network section2_network() {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  NodeId d = net.add_pi("d");
  NodeId ab = net.add_or(a, b, "ab");
  NodeId xnor_cd = net.add_node({c, d}, *Sop::parse(2, "00\n11"), "xnor");
  NodeId f = net.add_or(ab, xnor_cd, "F");
  net.add_po("F", f);
  return net;
}

TEST(ApproxSynthesisTest, Section2ExampleVerifiesAndCovers) {
  Network net = section2_network();
  ApproxOptions opt;
  opt.significance_threshold = 0.45;  // aggressive: drop the xnor path
  ApproxResult result =
      synthesize_approximation(net, {ApproxDirection::kOneApprox}, opt);
  ASSERT_EQ(result.po_stats.size(), 1u);
  EXPECT_TRUE(result.po_stats[0].verified);
  // G must imply F; a good solution reaches >= 12/14 coverage (a+b).
  EXPECT_TRUE(verify_po_approximation(net, result.approx, 0,
                                      ApproxDirection::kOneApprox));
  EXPECT_GE(result.po_stats[0].approximation_pct, 12.0 / 14.0 - 1e-9);
  // And it should be smaller than the original.
  EXPECT_LT(technology_map(result.approx).num_logic_nodes(),
            technology_map(optimize(net)).num_logic_nodes());
}

TEST(ApproxSynthesisTest, ZeroApproxDirection) {
  // F = (a|b) & (c|d): a 0-approximation G satisfies ~G => ~F (F => G).
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  NodeId d = net.add_pi("d");
  NodeId l = net.add_or(a, b, "l");
  NodeId r = net.add_or(c, d, "r");
  NodeId f = net.add_and(l, r, "F");
  net.add_po("F", f);
  ApproxOptions opt;
  opt.significance_threshold = 0.3;
  ApproxResult result =
      synthesize_approximation(net, {ApproxDirection::kZeroApprox}, opt);
  EXPECT_TRUE(result.po_stats[0].verified);
  NetworkBdds orig_bdds(net);
  auto g = build_po_bdd(orig_bdds.manager(), result.approx, 0);
  ASSERT_TRUE(g.has_value());
  EXPECT_TRUE(orig_bdds.manager().implies(orig_bdds.po_ref(0), *g));
}

TEST(ApproxSynthesisTest, ZeroThresholdKeepsExactFunction) {
  Network net = section2_network();
  ApproxOptions opt;
  opt.significance_threshold = 0.0;
  ApproxResult result =
      synthesize_approximation(net, {ApproxDirection::kOneApprox}, opt);
  EXPECT_TRUE(result.po_stats[0].verified);
  EXPECT_NEAR(result.po_stats[0].approximation_pct, 1.0, 1e-9);
}

TEST(ApproxSynthesisTest, HigherThresholdNeverIncreasesApproxPct) {
  Network net = make_benchmark("cmp4");
  std::vector<ApproxDirection> dirs(net.num_pos(),
                                    ApproxDirection::kZeroApprox);
  double prev = 2.0;
  for (double th : {0.0, 0.1, 0.4}) {
    ApproxOptions opt;
    opt.significance_threshold = th;
    ApproxResult r = synthesize_approximation(net, dirs, opt);
    EXPECT_TRUE(r.all_verified()) << "threshold " << th;
    double mean = 0.0;
    for (const auto& s : r.po_stats) mean += s.approximation_pct;
    mean /= r.po_stats.size();
    EXPECT_LE(mean, prev + 0.05) << "threshold " << th;
    prev = mean;
  }
}

// The load-bearing property: every synthesized approximation verifies, for
// random networks, random directions and a sweep of thresholds.
class SynthesisProperty
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

Network random_multilevel(std::mt19937& rng, int pis, int nodes, int pos) {
  Network net;
  std::vector<NodeId> pool;
  for (int i = 0; i < pis; ++i) pool.push_back(net.add_pi("p" + std::to_string(i)));
  for (int g = 0; g < nodes; ++g) {
    int k = 2 + static_cast<int>(rng() % 3);
    std::vector<NodeId> fanins;
    while (static_cast<int>(fanins.size()) < k) {
      NodeId cand = pool[rng() % pool.size()];
      if (std::find(fanins.begin(), fanins.end(), cand) == fanins.end()) {
        fanins.push_back(cand);
      }
    }
    Sop sop(k);
    int cubes = 1 + static_cast<int>(rng() % 3);
    for (int ci = 0; ci < cubes; ++ci) {
      Cube c = Cube::full(k);
      for (int v = 0; v < k; ++v) {
        int roll = static_cast<int>(rng() % 3);
        if (roll == 0) c.set(v, LitCode::kNeg);
        if (roll == 1) c.set(v, LitCode::kPos);
      }
      sop.add_cube(c);
    }
    sop.make_scc_free();
    if (sop.empty()) continue;
    pool.push_back(net.add_node(fanins, sop));
  }
  for (int o = 0; o < pos; ++o) {
    net.add_po("o" + std::to_string(o), pool[pool.size() - 1 - o]);
  }
  net.cleanup();
  return net;
}

TEST_P(SynthesisProperty, AllApproximationsVerify) {
  auto [seed, threshold] = GetParam();
  std::mt19937 rng(seed);
  for (int trial = 0; trial < 4; ++trial) {
    Network net = random_multilevel(rng, 6, 20, 3);
    std::vector<ApproxDirection> dirs;
    for (int o = 0; o < net.num_pos(); ++o) {
      dirs.push_back((rng() & 1) ? ApproxDirection::kOneApprox
                                 : ApproxDirection::kZeroApprox);
    }
    ApproxOptions opt;
    opt.significance_threshold = threshold;
    ApproxResult result = synthesize_approximation(net, dirs, opt);
    EXPECT_TRUE(result.all_verified()) << "seed " << seed << " trial " << trial;
    // Independent re-verification through the BDD oracle.
    for (int o = 0; o < net.num_pos(); ++o) {
      EXPECT_TRUE(verify_po_approximation(net, result.approx, o, dirs[o]))
          << "po " << o;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByThreshold, SynthesisProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(0.05, 0.2, 0.5)));

TEST(ApproxSynthesisTest, ReducesEmbeddedBenchmarks) {
  for (const char* name : {"c17", "rca4", "cmp4", "dec38", "maj5"}) {
    Network net = make_benchmark(name);
    std::vector<ApproxDirection> dirs(net.num_pos(),
                                      ApproxDirection::kZeroApprox);
    ApproxOptions opt;
    opt.significance_threshold = 0.15;
    ApproxResult r = synthesize_approximation(net, dirs, opt);
    EXPECT_TRUE(r.all_verified()) << name;
  }
}

TEST(ApproxSynthesisTest, DirectionCountMismatchThrows) {
  Network net = section2_network();
  EXPECT_THROW(synthesize_approximation(net, {}), std::logic_error);
}

}  // namespace
}  // namespace apx
