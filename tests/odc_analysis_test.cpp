#include "core/odc_analysis.hpp"

#include <gtest/gtest.h>

namespace apx {
namespace {

TEST(OdcAnalysisTest, FullyObservableChain) {
  // f = NOT(NOT(a)): each internal node is observable everywhere.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId t = net.add_not(a, "t");
  NodeId f = net.add_not(t, "f");
  net.add_po("f", f);
  auto odc = global_odc_fractions(net);
  ASSERT_TRUE(odc.has_value());
  EXPECT_DOUBLE_EQ((*odc)[t], 0.0);
  EXPECT_DOUBLE_EQ((*odc)[f], 0.0);
  EXPECT_DOUBLE_EQ((*odc)[a], 0.0);
}

TEST(OdcAnalysisTest, MaskedNodeHasOdc) {
  // f = (a & b) | c: the AND node is unobservable whenever c = 1.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  NodeId t = net.add_and(a, b, "t");
  NodeId f = net.add_or(t, c, "f");
  net.add_po("f", f);
  auto odc = global_odc_fractions(net);
  ASSERT_TRUE(odc.has_value());
  EXPECT_DOUBLE_EQ((*odc)[t], 0.5);  // unobservable iff c = 1
  EXPECT_DOUBLE_EQ((*odc)[f], 0.0);
}

TEST(OdcAnalysisTest, DanglingNodeFullyDontCare) {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId dangle = net.add_and(a, b, "dangle");
  net.add_po("f", net.add_or(a, b, "f"));
  auto odc = global_odc_fractions(net);
  ASSERT_TRUE(odc.has_value());
  EXPECT_DOUBLE_EQ((*odc)[dangle], 1.0);
}

TEST(OdcAnalysisTest, MultiOutputObservabilityCombines) {
  // t feeds PO1 everywhere-observable and is also masked at PO2; global
  // observability is the OR, so the ODC is what PO1 leaves (nothing).
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  NodeId t = net.add_xor(a, b, "t");
  net.add_po("direct", t);
  net.add_po("masked", net.add_and(t, c, "m"));
  auto odc = global_odc_fractions(net);
  ASSERT_TRUE(odc.has_value());
  EXPECT_DOUBLE_EQ((*odc)[t], 0.0);
}

TEST(OdcAnalysisTest, ReconvergenceCreatesGlobalOdc) {
  // f = (a & b) ^ (a & b): t1 = t2 = a&b; f == 0 — both internal ANDs are
  // globally unobservable through the XOR cancellation even though each is
  // locally observable.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId t1 = net.add_and(a, b, "t1");
  NodeId t2 = net.add_and(a, b, "t2");
  NodeId f = net.add_xor(t1, t2, "f");
  net.add_po("f", f);
  auto odc = global_odc_fractions(net);
  ASSERT_TRUE(odc.has_value());
  // Toggling ONLY t1 (with t2 intact) always changes f: observable! The
  // global ODC of t1 is therefore 0 despite f being constant — the ODC is
  // a single-node sensitivity notion.
  EXPECT_DOUBLE_EQ((*odc)[t1], 0.0);
  // But a node above the cancellation (the XOR itself) is a constant
  // producer; toggling it changes the PO directly.
  EXPECT_DOUBLE_EQ((*odc)[f], 0.0);
}

TEST(OdcAnalysisTest, BudgetOverflowReturnsNullopt) {
  Network net;
  std::vector<NodeId> pis;
  for (int i = 0; i < 10; ++i) pis.push_back(net.add_pi("x" + std::to_string(i)));
  NodeId acc = pis[0];
  for (int i = 1; i < 10; ++i) acc = net.add_xor(acc, net.add_and(pis[i], acc));
  net.add_po("f", acc);
  OdcAnalysisOptions opt;
  opt.bdd_budget = 8;
  EXPECT_EQ(global_odc_fractions(net, opt), std::nullopt);
}

}  // namespace
}  // namespace apx
