#include <gtest/gtest.h>

#include <random>

#include "bdd/bdd.hpp"

namespace apx {
namespace {

// Random BDD built alongside a brute-force truth vector for cross-checking.
struct RandomFunction {
  BddManager::Ref ref;
  std::vector<bool> truth;  // indexed by minterm
};

RandomFunction random_function(BddManager& mgr, std::mt19937& rng, int n) {
  std::vector<BddManager::Ref> refs;
  for (int i = 0; i < n; ++i) refs.push_back(mgr.var(i));
  for (int step = 0; step < 25; ++step) {
    auto a = refs[rng() % refs.size()];
    auto b = refs[rng() % refs.size()];
    switch (rng() % 3) {
      case 0:
        refs.push_back(mgr.bdd_and(a, b));
        break;
      case 1:
        refs.push_back(mgr.bdd_or(a, b));
        break;
      case 2:
        refs.push_back(mgr.bdd_xor(a, b));
        break;
    }
  }
  RandomFunction f;
  f.ref = refs.back();
  f.truth.resize(1u << n);
  for (uint64_t m = 0; m < (1u << n); ++m) f.truth[m] = mgr.evaluate(f.ref, m);
  return f;
}

class BddOpsProperty : public ::testing::TestWithParam<int> {};

TEST_P(BddOpsProperty, QuantifiersMatchBruteForce) {
  std::mt19937 rng(GetParam());
  const int n = 5;
  BddManager mgr(n);
  RandomFunction f = random_function(mgr, rng, n);
  for (int v = 0; v < n; ++v) {
    auto ex = mgr.exists(f.ref, v);
    auto fa = mgr.forall(f.ref, v);
    for (uint64_t m = 0; m < (1u << n); ++m) {
      uint64_t m0 = m & ~(1ULL << v);
      uint64_t m1 = m | (1ULL << v);
      EXPECT_EQ(mgr.evaluate(ex, m), f.truth[m0] || f.truth[m1]);
      EXPECT_EQ(mgr.evaluate(fa, m), f.truth[m0] && f.truth[m1]);
    }
    // exists f => ... => forall f ordering.
    EXPECT_TRUE(mgr.implies(fa, f.ref));
    EXPECT_TRUE(mgr.implies(f.ref, ex));
  }
}

TEST_P(BddOpsProperty, BooleanDifferenceMatchesDefinition) {
  std::mt19937 rng(GetParam() + 77);
  const int n = 5;
  BddManager mgr(n);
  RandomFunction f = random_function(mgr, rng, n);
  for (int v = 0; v < n; ++v) {
    auto diff = mgr.boolean_difference(f.ref, v);
    for (uint64_t m = 0; m < (1u << n); ++m) {
      bool expect = f.truth[m & ~(1ULL << v)] != f.truth[m | (1ULL << v)];
      EXPECT_EQ(mgr.evaluate(diff, m), expect);
    }
  }
}

TEST_P(BddOpsProperty, ComposeMatchesSubstitution) {
  std::mt19937 rng(GetParam() + 154);
  const int n = 5;
  BddManager mgr(n);
  RandomFunction f = random_function(mgr, rng, n);
  RandomFunction g = random_function(mgr, rng, n);
  for (int v = 0; v < n; ++v) {
    // g must not depend on v for the brute-force check to be simple; make
    // it independent by quantifying v out.
    auto g_free = mgr.exists(g.ref, v);
    auto composed = mgr.compose(f.ref, v, g_free);
    for (uint64_t m = 0; m < (1u << n); ++m) {
      bool gv = mgr.evaluate(g_free, m);
      uint64_t subst = gv ? (m | (1ULL << v)) : (m & ~(1ULL << v));
      EXPECT_EQ(mgr.evaluate(composed, m), f.truth[subst]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddOpsProperty,
                         ::testing::Values(1, 12, 123, 1234));

TEST(BddOpsTest, ExistsManyQuantifiesAll) {
  BddManager mgr(4);
  // f = x0 & x1 & ~x2: quantifying x0, x1, x2 leaves the constant 1.
  auto f = mgr.bdd_and(mgr.bdd_and(mgr.var(0), mgr.var(1)),
                       mgr.bdd_not(mgr.var(2)));
  std::vector<bool> vars = {true, true, true, false};
  EXPECT_EQ(mgr.exists_many(f, vars), mgr.one());
  // Universal over the same: constant 0.
  auto g = f;
  for (int v = 0; v < 3; ++v) g = mgr.forall(g, v);
  EXPECT_EQ(g, mgr.zero());
}

}  // namespace
}  // namespace apx
