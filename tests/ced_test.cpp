#include "core/ced.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "benchmarks/benchmarks.hpp"
#include "core/approx_synthesis.hpp"
#include "mapping/mapper.hpp"
#include "mapping/optimize.hpp"
#include "sim/simulator.hpp"

namespace apx {
namespace {

struct CedSetup {
  Network mapped;
  Network checkgen;
  std::vector<ApproxDirection> dirs;
  CedDesign ced;
};

CedSetup build_setup(const std::string& bench, double threshold) {
  CedSetup s;
  Network net = make_benchmark(bench);
  Network opt = quick_synthesis(net);
  s.mapped = technology_map(opt);
  s.dirs.assign(net.num_pos(), ApproxDirection::kZeroApprox);
  ApproxOptions aopt;
  aopt.significance_threshold = threshold;
  ApproxResult r = synthesize_approximation(opt, s.dirs, aopt);
  EXPECT_TRUE(r.all_verified());
  s.checkgen = technology_map(r.approx);
  s.ced = build_ced_design(s.mapped, s.checkgen, s.dirs);
  return s;
}

TEST(CedTest, DesignPartitionsAreDisjointAndComplete) {
  CedSetup s = build_setup("cmp4", 0.1);
  const CedDesign& ced = s.ced;
  size_t total = ced.functional_nodes.size() + ced.checkgen_nodes.size() +
                 ced.checker_nodes.size();
  EXPECT_EQ(static_cast<int>(total), ced.design.num_logic_nodes());
  EXPECT_EQ(ced.functional_area(), s.mapped.num_logic_nodes());
  EXPECT_EQ(static_cast<int>(ced.checkgen_nodes.size()),
            s.checkgen.num_logic_nodes());
}

TEST(CedTest, FaultFreeDesignNeverFlags) {
  CedSetup s = build_setup("cmp4", 0.1);
  Simulator sim(s.ced.design);
  sim.run(PatternSet::random(s.ced.design.num_pis(), 64, 3));
  const auto& z1 = sim.value(s.ced.error_pair.rail1);
  const auto& z2 = sim.value(s.ced.error_pair.rail2);
  for (size_t w = 0; w < z1.size(); ++w) {
    EXPECT_EQ(z1[w] ^ z2[w], ~0ULL) << "false alarm in fault-free operation";
  }
}

TEST(CedTest, ProtectedDirectionFaultsAreDetected) {
  // Single-output AND cone protected by a perfect 0-approximation (the
  // function itself): every 0->1 output error must be flagged.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  NodeId y = net.add_and(net.add_and(a, b), c, "y");
  net.add_po("y", y);
  Network mapped = technology_map(net);
  CedDesign ced = build_ced_design(mapped, mapped,
                                   {ApproxDirection::kZeroApprox});
  CoverageOptions copt;
  copt.num_fault_samples = 200;
  CoverageResult cov = evaluate_ced_coverage(ced, copt);
  EXPECT_GT(cov.erroneous, 0);
  // With a perfect check function both directions at the single output are
  // covered for 0->1; 1->0 errors at Y present as valid codewords. The AND
  // cone is 0-dominant, so overall coverage must be high.
  EXPECT_GT(cov.coverage(), 0.7);
}

TEST(CedTest, CoverageWithinBounds) {
  CedSetup s = build_setup("dec38", 0.1);
  CoverageOptions copt;
  copt.num_fault_samples = 300;
  CoverageResult cov = evaluate_ced_coverage(s.ced, copt);
  EXPECT_GE(cov.detected, 0);
  EXPECT_LE(cov.detected, cov.erroneous);
  EXPECT_GT(cov.runs, 0);
}

TEST(CedTest, CoverageIsDeterministicForSeed) {
  CedSetup s = build_setup("cmp4", 0.1);
  CoverageOptions copt;
  copt.num_fault_samples = 100;
  CoverageResult a = evaluate_ced_coverage(s.ced, copt);
  CoverageResult b = evaluate_ced_coverage(s.ced, copt);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.erroneous, b.erroneous);
}

TEST(CedTest, OverheadReportConsistency) {
  CedSetup s = build_setup("cmp4", 0.1);
  OverheadReport rep = measure_overheads(s.ced);
  EXPECT_EQ(rep.functional_area, s.mapped.num_logic_nodes());
  EXPECT_GT(rep.functional_activity, 0.0);
  EXPECT_GT(rep.overhead_activity, 0.0);
  EXPECT_GT(rep.area_overhead_pct(), 0.0);
}

TEST(CedTest, InterfaceMismatchThrows) {
  Network a = make_benchmark("c17");
  Network b = make_benchmark("fadd");
  Network ma = technology_map(quick_synthesis(a));
  Network mb = technology_map(quick_synthesis(b));
  EXPECT_THROW(build_ced_design(ma, mb,
                                {ApproxDirection::kZeroApprox,
                                 ApproxDirection::kZeroApprox}),
               std::logic_error);
}

TEST(CedTest, HigherThresholdLowersOverhead) {
  CedSetup tight = build_setup("cmp4", 0.02);
  CedSetup loose = build_setup("cmp4", 0.4);
  EXPECT_LE(loose.checkgen.num_logic_nodes(),
            tight.checkgen.num_logic_nodes());
}

TEST(CedTest, CoverageHelperNeverNanAndClamped) {
  CoverageResult r;
  EXPECT_EQ(r.coverage(), 0.0);  // 0/0 must not be NaN
  r.erroneous = 0;
  r.detected = 5;
  EXPECT_EQ(r.coverage(), 0.0);
  r.erroneous = 10;
  r.detected = 0;
  EXPECT_EQ(r.coverage(), 0.0);
  r.detected = 7;
  EXPECT_DOUBLE_EQ(r.coverage(), 0.7);
  // Defensive clamp: detected > erroneous must not report > 100%.
  r.detected = 12;
  EXPECT_EQ(r.coverage(), 1.0);
  EXPECT_TRUE(std::isfinite(r.coverage()));
}

TEST(CedTest, OverheadHelpersNeverNanOnDegenerateDenominators) {
  OverheadReport rep;  // all-zero: wire-only functional circuit
  rep.checkgen_area = 3;
  rep.overhead_area = 5;
  rep.checkgen_activity = 1.5;
  rep.overhead_activity = 2.0;
  EXPECT_EQ(rep.area_overhead_pct(), 0.0);
  EXPECT_EQ(rep.power_overhead_pct(), 0.0);
  EXPECT_EQ(rep.area_overhead_with_checkers_pct(), 0.0);
  EXPECT_EQ(rep.power_overhead_with_checkers_pct(), 0.0);
}

TEST(CedTest, TrivialDesignMeasuresFinite) {
  // A CED design with no functional logic: coverage degrades to zero runs
  // and every reported percentage stays finite.
  Network original;
  original.set_name("wires");
  NodeId a = original.add_pi("a");
  original.add_po("x", a);
  std::vector<int> checked;  // duplicate nothing
  CedDesign ced = build_duplication_ced(original, original, checked);

  CoverageResult cov = evaluate_ced_coverage(ced);
  EXPECT_EQ(cov.erroneous, 0);
  EXPECT_EQ(cov.coverage(), 0.0);

  OverheadReport rep = measure_overheads(ced);
  EXPECT_TRUE(std::isfinite(rep.area_overhead_pct()));
  EXPECT_TRUE(std::isfinite(rep.power_overhead_pct()));
  EXPECT_TRUE(std::isfinite(rep.area_overhead_with_checkers_pct()));
  EXPECT_TRUE(std::isfinite(rep.power_overhead_with_checkers_pct()));
}

}  // namespace
}  // namespace apx
