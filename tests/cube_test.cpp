#include "sop/cube.hpp"

#include <gtest/gtest.h>

#include <random>

namespace apx {
namespace {

TEST(CubeTest, FullCubeProperties) {
  Cube c = Cube::full(5);
  EXPECT_EQ(c.num_vars(), 5);
  EXPECT_TRUE(c.is_full());
  EXPECT_FALSE(c.is_empty());
  EXPECT_EQ(c.literal_count(), 0);
  EXPECT_EQ(c.free_count(), 5);
  EXPECT_DOUBLE_EQ(c.space_fraction(), 1.0);
  EXPECT_EQ(c.to_string(), "-----");
}

TEST(CubeTest, ParseRoundTrip) {
  auto c = Cube::parse("1-0-1");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->to_string(), "1-0-1");
  EXPECT_EQ(c->get(0), LitCode::kPos);
  EXPECT_EQ(c->get(1), LitCode::kFree);
  EXPECT_EQ(c->get(2), LitCode::kNeg);
  EXPECT_EQ(c->literal_count(), 3);
  EXPECT_DOUBLE_EQ(c->space_fraction(), 0.125);
}

TEST(CubeTest, ParseRejectsBadChars) {
  EXPECT_FALSE(Cube::parse("1x0").has_value());
  EXPECT_FALSE(Cube::parse("1 0").has_value());
}

TEST(CubeTest, MintermCube) {
  Cube c = Cube::minterm(4, 0b1010);
  EXPECT_EQ(c.to_string(), "0101");  // var0 lowest bit, printed first
  EXPECT_TRUE(c.covers_minterm(0b1010));
  EXPECT_FALSE(c.covers_minterm(0b1011));
  EXPECT_EQ(c.literal_count(), 4);
}

TEST(CubeTest, ContainsAndIntersect) {
  Cube big = *Cube::parse("1--");
  Cube small = *Cube::parse("1-0");
  EXPECT_TRUE(big.contains(small));
  EXPECT_FALSE(small.contains(big));
  EXPECT_TRUE(big.contains(big));

  auto inter = big.intersect(small);
  ASSERT_TRUE(inter.has_value());
  EXPECT_EQ(*inter, small);

  Cube disjoint = *Cube::parse("0--");
  EXPECT_FALSE(big.intersect(disjoint).has_value());
  EXPECT_EQ(big.distance(disjoint), 1);
  EXPECT_EQ(big.distance(small), 0);
}

TEST(CubeTest, DistanceCountsConflicts) {
  Cube a = *Cube::parse("10-1");
  Cube b = *Cube::parse("01-0");
  EXPECT_EQ(a.distance(b), 3);
}

TEST(CubeTest, CofactorFreesVariable) {
  Cube c = *Cube::parse("1-0");
  auto c1 = c.cofactor(0, true);
  ASSERT_TRUE(c1.has_value());
  EXPECT_EQ(c1->to_string(), "--0");
  EXPECT_FALSE(c.cofactor(0, false).has_value());
  auto c2 = c.cofactor(1, true);  // free var: cofactor keeps cube
  ASSERT_TRUE(c2.has_value());
  EXPECT_EQ(c2->to_string(), "1-0");
}

TEST(CubeTest, EmptyDetection) {
  Cube c = Cube::full(3);
  c.set(1, LitCode::kEmpty);
  EXPECT_TRUE(c.is_empty());
  EXPECT_DOUBLE_EQ(c.space_fraction(), 0.0);
}

TEST(CubeTest, WideCubesCrossWordBoundary) {
  // 40 vars -> multiple words (32 vars per word).
  Cube c = Cube::full(40);
  c.set(35, LitCode::kPos);
  c.set(2, LitCode::kNeg);
  EXPECT_EQ(c.literal_count(), 2);
  EXPECT_EQ(c.get(35), LitCode::kPos);
  EXPECT_EQ(c.get(2), LitCode::kNeg);
  EXPECT_FALSE(c.is_empty());

  Cube d = Cube::full(40);
  d.set(35, LitCode::kNeg);
  EXPECT_EQ(c.distance(d), 1);
  EXPECT_FALSE(c.intersect(d).has_value());
}

TEST(CubeTest, HashDiffersForDifferentCubes) {
  Cube a = *Cube::parse("1-0");
  Cube b = *Cube::parse("1-1");
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), Cube::parse("1-0")->hash());
}

// Property: containment agrees with minterm-wise coverage.
class CubeContainmentProperty : public ::testing::TestWithParam<int> {};

TEST_P(CubeContainmentProperty, ContainmentMatchesMinterms) {
  std::mt19937 rng(GetParam());
  const int n = 6;
  auto random_cube = [&] {
    Cube c = Cube::full(n);
    for (int v = 0; v < n; ++v) {
      int roll = static_cast<int>(rng() % 4);
      if (roll == 0) c.set(v, LitCode::kNeg);
      if (roll == 1) c.set(v, LitCode::kPos);
    }
    return c;
  };
  for (int trial = 0; trial < 50; ++trial) {
    Cube a = random_cube();
    Cube b = random_cube();
    bool contains = a.contains(b);
    bool minterm_subset = true;
    for (uint64_t m = 0; m < (1u << n); ++m) {
      if (b.covers_minterm(m) && !a.covers_minterm(m)) {
        minterm_subset = false;
        break;
      }
    }
    EXPECT_EQ(contains, minterm_subset)
        << "a=" << a.to_string() << " b=" << b.to_string();

    // Intersection agrees with minterm-wise AND.
    auto inter = a.intersect(b);
    for (uint64_t m = 0; m < (1u << n); ++m) {
      bool both = a.covers_minterm(m) && b.covers_minterm(m);
      bool covered = inter.has_value() && inter->covers_minterm(m);
      EXPECT_EQ(both, covered);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CubeContainmentProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 11, 17, 23));

}  // namespace
}  // namespace apx
