// Word-tail handling when the vector count is not a multiple of 64
// (CampaignOptions::vectors_per_fault / run_batch's num_vectors): the final
// partial word's padding bits must never excite a fault, keep a dying event
// alive, or count toward detection — in the engine *and* in every consumer
// doing popcount accounting through FaultView::word_mask.
#include "sim/fault_engine.hpp"

#include <gtest/gtest.h>

#include <bit>

#include "benchmarks/benchmarks.hpp"
#include "core/ced.hpp"
#include "mapping/mapper.hpp"
#include "mapping/optimize.hpp"

namespace apx {
namespace {

// a AND b -> po. With 100 of 128 vectors valid, patterns are words 0..1
// and bits 36..63 of word 1 are padding.
struct AndFixture {
  Network net;
  NodeId a, b, g;

  AndFixture() {
    a = net.add_pi("a");
    b = net.add_pi("b");
    g = net.add_and(a, b, "g");
    net.add_po("y", g);
    net.check();
  }
};

constexpr int kVectors = 100;
constexpr uint64_t kTail = (1ULL << (kVectors % 64)) - 1;

TEST(FaultTailTest, PaddingBitsCannotExciteAFault) {
  AndFixture fx;
  // All valid patterns drive a = b = 1, so the AND's golden value is 1 on
  // every valid vector and a stuck-at-1 there is unexcitable. The padding
  // bits drive a = 0, where golden is 0 and the stuck-at-1 *would* differ —
  // only the tail mask keeps this fault silent.
  PatternSet patterns(2, 2);
  patterns.set_word(0, 0, ~0ULL);
  patterns.set_word(0, 1, kTail);
  patterns.set_word(1, 0, ~0ULL);
  patterns.set_word(1, 1, ~0ULL);

  FaultSimEngine engine(fx.net);
  int visits = 0;
  engine.run_batch(
      patterns, {{fx.g, true}},
      [&](int, const StuckFault&, const FaultView& v) {
        ++visits;
        EXPECT_EQ(v.num_vectors(), kVectors);
        EXPECT_EQ(v.num_words(), 2);
        EXPECT_EQ(v.word_mask(0), ~0ULL);
        EXPECT_EQ(v.word_mask(1), kTail);
        EXPECT_FALSE(v.touched(fx.g))
            << "padding-only difference must not excite the fault";
        // faulty() falls back to the golden row for untouched nodes, so
        // downstream popcounts see zero difference.
        EXPECT_EQ(v.faulty(fx.g), v.golden(fx.g));
      },
      /*num_threads=*/1, /*num_vectors=*/kVectors);
  EXPECT_EQ(visits, 1);

  // Same batch with every vector valid: the word-1 difference is now real
  // and must propagate.
  visits = 0;
  engine.run_batch(patterns, {{fx.g, true}},
                   [&](int, const StuckFault&, const FaultView& v) {
                     ++visits;
                     EXPECT_EQ(v.num_vectors(), 128);
                     EXPECT_EQ(v.word_mask(1), ~0ULL);
                     EXPECT_TRUE(v.touched(fx.g));
                   },
                   /*num_threads=*/1, /*num_vectors=*/0);
  EXPECT_EQ(visits, 1);
}

TEST(FaultTailTest, PaddingBitsCannotKeepAPropagatingEventAlive) {
  AndFixture fx;
  // Excite the fault at the PI (stuck-at-0 on a, which is 1 on some valid
  // patterns), but make b = 0 exactly on the valid patterns of word 1 so
  // the difference reaching the AND gate survives only in padding bits
  // there; word 0 carries the real detection.
  PatternSet patterns(2, 2);
  patterns.set_word(0, 0, ~0ULL);
  patterns.set_word(0, 1, ~0ULL);
  patterns.set_word(1, 0, ~0ULL);
  patterns.set_word(1, 1, ~kTail);  // b = 1 only on padding vectors

  FaultSimEngine engine(fx.net);
  engine.run_batch(
      patterns, {{fx.a, false}},
      [&](int, const StuckFault&, const FaultView& v) {
        ASSERT_TRUE(v.touched(fx.a));
        ASSERT_TRUE(v.touched(fx.g));  // word 0 detects for real
        // Detection accounting masked per word: word 1's padding-only
        // difference contributes nothing.
        int64_t detected = 0;
        for (int w = 0; w < v.num_words(); ++w) {
          uint64_t err = v.golden(fx.g)[w] ^ v.faulty(fx.g)[w];
          detected += std::popcount(err & v.word_mask(w));
        }
        EXPECT_EQ(detected, 64);  // word 0 only
      },
      /*num_threads=*/1, /*num_vectors=*/kVectors);

  // With only word 1's patterns in play the surviving difference is pure
  // padding: the propagated event must die at the gate.
  PatternSet word1(2, 1);
  word1.set_word(0, 0, ~0ULL);
  word1.set_word(1, 0, ~kTail);
  engine.run_batch(word1, {{fx.a, false}},
                   [&](int, const StuckFault&, const FaultView& v) {
                     EXPECT_TRUE(v.touched(fx.a));
                     EXPECT_FALSE(v.touched(fx.g))
                         << "event alive on padding bits only";
                   },
                   /*num_threads=*/1, /*num_vectors=*/kVectors % 64);
}

TEST(FaultTailTest, MultiSitePaddingBitsCannotExciteASpec) {
  AndFixture fx;
  // Both sites agree with golden on every valid vector and differ only on
  // padding bits: a = b = 1 on the valid patterns, 0 on padding, with both
  // sites stuck-at-1. The whole spec must stay unexcited.
  PatternSet patterns(2, 2);
  patterns.set_word(0, 0, ~0ULL);
  patterns.set_word(0, 1, kTail);
  patterns.set_word(1, 0, ~0ULL);
  patterns.set_word(1, 1, kTail);

  FaultSpec spec;
  spec.add({fx.a, true, false, 0, 0});
  spec.add({fx.b, true, false, 0, 0});

  FaultSimEngine engine(fx.net);
  int visits = 0;
  engine.run_batch(
      patterns, {spec},
      [&](int, const FaultSpec&, const FaultView& v) {
        ++visits;
        EXPECT_FALSE(v.touched(fx.a));
        EXPECT_FALSE(v.touched(fx.b));
        EXPECT_FALSE(v.touched(fx.g));
        EXPECT_EQ(v.faulty(fx.g), v.golden(fx.g));
      },
      /*num_threads=*/1, /*num_vectors=*/kVectors);
  EXPECT_EQ(visits, 1);
}

TEST(FaultTailTest, MultiSiteDetectionCountsAreTailMasked) {
  AndFixture fx;
  // Word 0 carries a real 64-vector detection (a forced 0 under a = b = 1);
  // in word 1 the propagated difference at the AND gate lands on padding
  // bits only (a = 1 exactly on padding there). The b site's forced value
  // matches golden everywhere in word 1.
  PatternSet patterns(2, 2);
  patterns.set_word(0, 0, ~0ULL);
  patterns.set_word(0, 1, ~kTail);  // a = 1 only on padding vectors
  patterns.set_word(1, 0, ~0ULL);
  patterns.set_word(1, 1, ~0ULL);

  FaultSpec spec;
  spec.add({fx.a, false, false, 0, 0});
  spec.add({fx.b, true, false, 0, 0});

  FaultSimEngine engine(fx.net);
  engine.run_batch(
      patterns, {spec},
      [&](int, const FaultSpec&, const FaultView& v) {
        ASSERT_TRUE(v.touched(fx.a));
        ASSERT_TRUE(v.touched(fx.g));
        // Raw word 1 of the gate differs on the 28 padding bits; the
        // masked accounting every consumer uses must see word 0 only.
        int64_t detected = 0;
        for (int w = 0; w < v.num_words(); ++w) {
          uint64_t err = v.golden(fx.g)[w] ^ v.faulty(fx.g)[w];
          detected += std::popcount(err & v.word_mask(w));
        }
        EXPECT_EQ(detected, 64);
      },
      /*num_threads=*/1, /*num_vectors=*/kVectors);
}

TEST(FaultTailTest, TransientBurstOverhangingTheTailIsMasked) {
  AndFixture fx;
  // A burst window [96, 128) overhangs the 100-vector batch: its word-1
  // bits 32..63 are forced, but only vectors 96..99 are valid. Golden g is
  // 0 throughout word 1 (a = 0 there), so the stuck-at-1 burst differs on
  // all 32 window bits — exactly 4 of which may ever count.
  PatternSet patterns(2, 2);
  patterns.set_word(0, 0, ~0ULL);
  patterns.set_word(0, 1, 0);
  patterns.set_word(1, 0, ~0ULL);
  patterns.set_word(1, 1, ~0ULL);

  FaultSpec spec;
  spec.add({fx.g, true, true, /*burst_start=*/96, /*burst_length=*/32});

  FaultSimEngine engine(fx.net);
  engine.run_batch(
      patterns, {spec},
      [&](int, const FaultSpec&, const FaultView& v) {
        ASSERT_TRUE(v.touched(fx.g));
        // Outside the burst window the site holds golden exactly.
        EXPECT_EQ(v.faulty(fx.g)[0], v.golden(fx.g)[0]);
        int64_t detected = 0;
        for (int w = 0; w < v.num_words(); ++w) {
          uint64_t err = v.golden(fx.g)[w] ^ v.faulty(fx.g)[w];
          detected += std::popcount(err & v.word_mask(w));
        }
        EXPECT_EQ(detected, 4) << "only valid vectors of the burst count";
      },
      /*num_threads=*/1, /*num_vectors=*/kVectors);
}

TEST(FaultTailTest, RunBatchRejectsOversizedVectorCounts) {
  AndFixture fx;
  PatternSet patterns(2, 1);
  FaultSimEngine engine(fx.net);
  EXPECT_THROW(engine.run_batch(patterns, {{fx.g, true}},
                                [](int, const StuckFault&, const FaultView&) {},
                                1, 65),
               std::logic_error);
}

TEST(FaultTailTest, CoverageAccountsExactlyTheValidVectors) {
  Network mapped = technology_map(quick_synthesis(make_benchmark("cmp8")));
  std::vector<ApproxDirection> dirs(mapped.num_pos(),
                                    ApproxDirection::kZeroApprox);
  CedDesign ced = build_ced_design(mapped, mapped, dirs);

  CoverageOptions options;
  options.num_fault_samples = 40;
  options.vectors_per_fault = kVectors;
  CoverageResult partial = evaluate_ced_coverage(ced, options);
  EXPECT_EQ(partial.runs, int64_t{40} * kVectors);
  EXPECT_GT(partial.erroneous, 0);
  // Counting happens under word_mask, so no count can exceed the valid
  // vector budget.
  EXPECT_LE(partial.erroneous, partial.runs);
  EXPECT_LE(partial.detected, partial.erroneous);

  // The valid 100-vector prefix of a 128-vector campaign sees the same
  // patterns (layout-independent seeding), so widening the tail can only
  // add detections, never remove them.
  options.vectors_per_fault = 0;
  options.words_per_fault = 2;
  CoverageResult full = evaluate_ced_coverage(ced, options);
  EXPECT_EQ(full.runs, int64_t{40} * 128);
  EXPECT_GE(full.erroneous, partial.erroneous);
  EXPECT_GE(full.detected, partial.detected);
}

}  // namespace
}  // namespace apx
