// Tests for the generalized fault models of FaultSimEngine (FaultSpec:
// multi-site stuck-at and burst-transient faults) plus the bit-identity
// pins of the legacy single-stuck-at path: the exact erroneous/detected
// counts below were captured from the pre-FaultSpec engine, so any change
// to the single-fault substrate's results fails loudly here.
#include "sim/fault_engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <numeric>
#include <vector>

#include "baselines/partial_duplication.hpp"
#include "benchmarks/benchmarks.hpp"
#include "core/ced.hpp"
#include "mapping/mapper.hpp"
#include "mapping/optimize.hpp"
#include "reliability/reliability.hpp"
#include "sim/kernels.hpp"
#include "sim/transition_fault.hpp"

// Global allocation counter for the zero-allocation steady-state tests
// (same pattern as topology_view_test.cpp).
namespace {
std::atomic<int64_t> g_allocs{0};
}

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace apx {
namespace {

// ---- reference evaluation -------------------------------------------------

uint64_t window_mask(int32_t start, int32_t len, int w) {
  const int64_t lo = static_cast<int64_t>(w) * 64;
  const int64_t hi = lo + 64;
  const int64_t s = std::max<int64_t>(start, lo);
  const int64_t e = std::min<int64_t>(static_cast<int64_t>(start) + len, hi);
  if (s >= e) return 0;
  const int b = static_cast<int>(e - lo);
  const int a = static_cast<int>(s - lo);
  const uint64_t upto = b == 64 ? ~0ULL : (1ULL << b) - 1;
  return upto & ~((1ULL << a) - 1);
}

using Plane = std::vector<std::vector<uint64_t>>;

// Brute-force full re-simulation with the spec's sites overridden, matching
// the engine's semantics: permanent sites hold `forced` on every vector;
// transient sites hold (golden & ~window) | (forced & window), where golden
// is the *fault-free* value (site rows are pinned for the whole batch).
Plane reference_plane(const Network& net, const PatternSet& pats,
                      const FaultSpec* spec, const Plane* golden) {
  const int W = pats.num_words();
  Plane val(net.num_nodes(), std::vector<uint64_t>(W, 0));
  auto view = net.topology();
  std::vector<int> pi_col(net.num_nodes(), -1);
  for (int i = 0; i < net.num_pis(); ++i) pi_col[net.pis()[i]] = i;
  std::vector<const uint64_t*> fanin;
  for (NodeId id : view->topo()) {
    const Node& n = net.node(id);
    uint64_t* out = val[id].data();
    switch (n.kind) {
      case NodeKind::kPi: {
        const WordSpan col = pats.column(pi_col[id]);
        std::copy(col.begin(), col.end(), out);
        break;
      }
      case NodeKind::kConst0:
        break;  // zero-initialized
      case NodeKind::kConst1:
        std::fill(out, out + W, ~0ULL);
        break;
      case NodeKind::kLogic: {
        fanin.clear();
        for (NodeId f : n.fanins) fanin.push_back(val[f].data());
        eval_sop_words(n.sop, fanin.data(), W, out);
        break;
      }
    }
    if (spec == nullptr) continue;
    for (int s = 0; s < spec->num_sites; ++s) {
      const FaultSite& site = spec->sites[s];
      if (site.node != id) continue;
      const uint64_t forced = site.stuck_value ? ~0ULL : 0ULL;
      if (!site.transient) {
        std::fill(out, out + W, forced);
      } else {
        for (int w = 0; w < W; ++w) {
          const uint64_t m =
              window_mask(site.burst_start, site.burst_length, w);
          out[w] = ((*golden)[id][w] & ~m) | (forced & m);
        }
      }
    }
  }
  return val;
}

CedDesign duplication_ced(const std::string& bench) {
  Network net = make_benchmark(bench);
  std::vector<int> checked(net.num_pos());
  std::iota(checked.begin(), checked.end(), 0);
  return build_duplication_ced(net, net, checked);
}

// a, b PIs; g = a & b drives the PO; `orphan` has neither fanouts nor a PO
// (a dead fault site); c0 is a constant-0 node feeding the second PO.
struct DeadSiteFixture {
  Network net;
  NodeId g = kNullNode;
  NodeId orphan = kNullNode;
  NodeId c0 = kNullNode;

  DeadSiteFixture() {
    NodeId a = net.add_pi("a");
    NodeId b = net.add_pi("b");
    g = net.add_and(a, b, "g");
    orphan = net.add_or(a, b, "orphan");
    c0 = net.add_const(false);
    NodeId h = net.add_or(g, c0, "h");
    net.add_po("f", g);
    net.add_po("h", h);
  }
};

// ---- bit-identity pins (captured from the pre-FaultSpec engine) -----------

TEST(FaultModelPinTest, SingleStuckAtCoverageReproducesSeedCounts) {
  CedDesign ced = duplication_ced("cmp8");
  CoverageOptions o;
  o.num_fault_samples = 300;
  o.words_per_fault = 2;
  CoverageResult r = evaluate_ced_coverage(ced, o);
  EXPECT_EQ(r.runs, 38400);
  EXPECT_EQ(r.erroneous, 7261);
  EXPECT_EQ(r.detected, 7261);

  // Non-multiple-of-64 vector count (tail-masked final word).
  CoverageOptions o2 = o;
  o2.vectors_per_fault = 100;
  CoverageResult r2 = evaluate_ced_coverage(ced, o2);
  EXPECT_EQ(r2.runs, 30000);
  EXPECT_EQ(r2.erroneous, 5652);
  EXPECT_EQ(r2.detected, 5652);
}

TEST(FaultModelPinTest, SingleStuckAtReliabilityReproducesSeedRates) {
  Network net = make_benchmark("dec38");
  ReliabilityOptions ro;
  ro.num_fault_samples = 300;
  ro.words_per_fault = 2;
  ReliabilityReport rep = analyze_reliability(net, ro);
  EXPECT_EQ(rep.runs, 38400);
  // Exact doubles (integer counts / runs): EXPECT_EQ pins bit identity.
  EXPECT_EQ(rep.any_output_error_rate, 0.53565104166666666);
  EXPECT_EQ(rep.max_ced_coverage, 0.9449171082697263);
  ASSERT_EQ(rep.outputs.size(), 8u);
  EXPECT_EQ(rep.outputs[0].rate_0_to_1, 0.059947916666666663);
  EXPECT_EQ(rep.outputs[0].rate_1_to_0, 0.0026302083333333334);
  EXPECT_EQ(rep.outputs[7].rate_0_to_1, 0.045468750000000002);
  EXPECT_EQ(rep.outputs[7].rate_1_to_0, 0.0040885416666666665);
}

// ---- FaultSpec semantics --------------------------------------------------

TEST(FaultModelTest, SingleSiteSpecMatchesStuckFaultPathByteForByte) {
  Network net = make_benchmark("rca8");
  std::vector<StuckFault> faults = enumerate_faults(net);
  std::vector<FaultSpec> specs;
  for (const StuckFault& f : faults) specs.push_back(FaultSpec::stuck_at(f));
  PatternSet patterns = PatternSet::random(net.num_pis(), 3, 0xF00D);
  FaultSimEngine engine(net);

  std::vector<std::vector<uint64_t>> legacy(faults.size());
  engine.run_batch(
      patterns, faults,
      [&](int i, const StuckFault&, const FaultView& v) {
        std::vector<uint64_t>& plane = legacy[i];
        for (NodeId id = 0; id < net.num_nodes(); ++id) {
          for (int w = 0; w < v.num_words(); ++w) {
            plane.push_back(v.faulty(id)[w]);
          }
        }
      },
      /*num_threads=*/1);

  std::vector<std::vector<uint64_t>> spec_planes(specs.size());
  engine.run_batch(
      patterns, specs,
      [&](int i, const FaultSpec&, const FaultView& v) {
        std::vector<uint64_t>& plane = spec_planes[i];
        for (NodeId id = 0; id < net.num_nodes(); ++id) {
          for (int w = 0; w < v.num_words(); ++w) {
            plane.push_back(v.faulty(id)[w]);
          }
        }
      },
      /*num_threads=*/1);

  ASSERT_EQ(legacy.size(), spec_planes.size());
  for (size_t i = 0; i < legacy.size(); ++i) {
    EXPECT_EQ(legacy[i], spec_planes[i]) << "fault " << i;
  }
}

TEST(FaultModelTest, MultiSiteStuckAtMatchesBruteForceResimulation) {
  Network net = make_benchmark("rca8");
  std::vector<NodeId> logic;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    if (net.node(id).kind == NodeKind::kLogic) logic.push_back(id);
  }
  ASSERT_GE(logic.size(), 8u);

  // Double, triple and quadruple faults over spread-out sites, mixed
  // polarities (including sites inside each other's fanout cones).
  std::vector<FaultSpec> specs;
  for (int k = 2; k <= 4; ++k) {
    FaultSpec spec;
    for (int s = 0; s < k; ++s) {
      FaultSite site;
      site.node = logic[(s * logic.size()) / k + static_cast<size_t>(k)];
      site.stuck_value = (s ^ k) & 1;
      spec.add(site);
    }
    specs.push_back(spec);
  }

  PatternSet patterns = PatternSet::random(net.num_pis(), 2, 0xBEEF);
  FaultSimEngine engine(net);
  engine.run_batch(
      patterns, specs,
      [&](int i, const FaultSpec& spec, const FaultView& v) {
        const Plane ref = reference_plane(net, patterns, &spec, nullptr);
        for (NodeId id = 0; id < net.num_nodes(); ++id) {
          for (int w = 0; w < v.num_words(); ++w) {
            ASSERT_EQ(v.faulty(id)[w], ref[id][w])
                << "spec " << i << " node " << id << " word " << w;
          }
        }
      },
      /*num_threads=*/1);
}

TEST(FaultModelTest, TransientBurstForcesOnlyItsWindow) {
  Network net = make_benchmark("rca8");
  std::vector<NodeId> logic;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    if (net.node(id).kind == NodeKind::kLogic) logic.push_back(id);
  }
  PatternSet patterns = PatternSet::random(net.num_pis(), 2, 0xB00);
  const Plane golden = reference_plane(net, patterns, nullptr, nullptr);

  FaultSpec spec;
  FaultSite site;
  site.node = logic[logic.size() / 3];
  site.stuck_value = true;
  site.transient = true;
  site.burst_start = 37;  // straddles the word 0 / word 1 boundary
  site.burst_length = 41;
  spec.add(site);

  FaultSimEngine engine(net);
  engine.run_batch(
      patterns, {spec},
      [&](int, const FaultSpec&, const FaultView& v) {
        const Plane ref = reference_plane(net, patterns, &spec, &golden);
        for (NodeId id = 0; id < net.num_nodes(); ++id) {
          for (int w = 0; w < v.num_words(); ++w) {
            ASSERT_EQ(v.faulty(id)[w], ref[id][w])
                << "node " << id << " word " << w;
            // Every node's deviation is confined to the burst window:
            // outside it the site holds golden, so nothing can differ.
            const uint64_t diff = v.faulty(id)[w] ^ v.golden(id)[w];
            EXPECT_EQ(diff & ~window_mask(site.burst_start, site.burst_length,
                                          w),
                      0u)
                << "node " << id << " word " << w;
          }
        }
      },
      /*num_threads=*/1);
}

TEST(FaultModelTest, ModelCampaignsBitIdenticalAcrossThreadCounts) {
  CedDesign ced = duplication_ced("cmp4");
  for (FaultModel model :
       {FaultModel::kMultiStuckAt, FaultModel::kTransientBurst}) {
    CoverageOptions base;
    base.num_fault_samples = 200;
    base.words_per_fault = 2;
    base.vectors_per_fault = 100;  // exercise the tail-masked final word
    base.model = model;
    base.sites_per_fault = 2;
    base.burst_vectors = 24;

    CoverageOptions one = base;
    one.num_threads = 1;
    CoverageOptions four = base;
    four.num_threads = 4;
    CoverageResult r1 = evaluate_ced_coverage(ced, one);
    CoverageResult r4 = evaluate_ced_coverage(ced, four);
    EXPECT_GT(r1.erroneous, 0) << fault_model_name(model);
    EXPECT_EQ(r1.runs, r4.runs) << fault_model_name(model);
    EXPECT_EQ(r1.erroneous, r4.erroneous) << fault_model_name(model);
    EXPECT_EQ(r1.detected, r4.detected) << fault_model_name(model);
  }
}

TEST(FaultModelTest, ModelKnobChangesTheSampledCampaign) {
  CedDesign ced = duplication_ced("cmp4");
  CoverageOptions o;
  o.num_fault_samples = 200;
  o.words_per_fault = 2;
  CoverageResult single = evaluate_ced_coverage(ced, o);
  o.model = FaultModel::kMultiStuckAt;
  CoverageResult dbl = evaluate_ced_coverage(ced, o);
  // Double faults excite strictly more often than single faults here.
  EXPECT_GT(dbl.erroneous, single.erroneous);
}

TEST(FaultModelTest, ReliabilityModelsBitIdenticalAcrossThreadCounts) {
  Network net = make_benchmark("dec38");
  ReliabilityOptions one;
  one.num_fault_samples = 200;
  one.words_per_fault = 2;
  one.model = FaultModel::kTransientBurst;
  one.burst_vectors = 16;
  one.num_threads = 1;
  ReliabilityOptions four = one;
  four.num_threads = 4;
  ReliabilityReport r1 = analyze_reliability(net, one);
  ReliabilityReport r4 = analyze_reliability(net, four);
  EXPECT_GT(r1.any_output_error_rate, 0.0);
  EXPECT_EQ(r1.any_output_error_rate, r4.any_output_error_rate);
  EXPECT_EQ(r1.max_ced_coverage, r4.max_ced_coverage);
  ASSERT_EQ(r1.outputs.size(), r4.outputs.size());
  for (size_t o = 0; o < r1.outputs.size(); ++o) {
    EXPECT_EQ(r1.outputs[o].rate_0_to_1, r4.outputs[o].rate_0_to_1);
    EXPECT_EQ(r1.outputs[o].rate_1_to_0, r4.outputs[o].rate_1_to_0);
  }
}

TEST(FaultModelTest, PartialDuplicationSelectionDeterministicUnderModels) {
  Network mapped = technology_map(quick_synthesis(make_benchmark("cmp4")));
  PartialDuplicationOptions opt;
  opt.num_fault_samples = 200;
  opt.words_per_fault = 2;
  opt.model = FaultModel::kMultiStuckAt;
  opt.sites_per_fault = 2;
  opt.num_threads = 1;
  PartialDuplicationResult r1 = build_partial_duplication(mapped, 0.9, opt);
  opt.num_threads = 4;
  PartialDuplicationResult r4 = build_partial_duplication(mapped, 0.9, opt);
  EXPECT_EQ(r1.duplicated_pos, r4.duplicated_pos);
  EXPECT_EQ(r1.estimated_coverage, r4.estimated_coverage);
  EXPECT_FALSE(r1.duplicated_pos.empty());
}

// ---- dead-site policy -----------------------------------------------------

TEST(FaultModelTest, CampaignRejectsConstantSiteOfSamePolarity) {
  DeadSiteFixture fx;
  FaultSimEngine engine(fx.net);
  CampaignOptions opt;
  opt.num_fault_samples = 4;
  EXPECT_THROW(
      engine.run_campaign(
          opt, [&](uint64_t) { return StuckFault{fx.c0, false}; },
          [](int, const StuckFault&, const FaultView&) {}),
      std::logic_error);
  // Opposite polarity on the same constant is a live (excitable) fault.
  EXPECT_TRUE(engine.is_live_site(fx.c0, true));
  EXPECT_FALSE(engine.is_live_site(fx.c0, false));
}

TEST(FaultModelTest, CampaignRejectsUnconnectedSite) {
  DeadSiteFixture fx;
  FaultSimEngine engine(fx.net);
  EXPECT_FALSE(engine.is_live_site(fx.orphan, true));
  CampaignOptions opt;
  opt.num_fault_samples = 4;
  EXPECT_THROW(
      engine.run_campaign(
          opt, [&](uint64_t) { return StuckFault{fx.orphan, true}; },
          [](int, const StuckFault&, const FaultView&) {}),
      std::logic_error);

  // kAllow restores the legacy behavior: the dead sample simulates (and
  // trivially stays golden at the PO drivers).
  opt.dead_sites = DeadSitePolicy::kAllow;
  int visits = 0;
  engine.run_campaign(
      opt, [&](uint64_t) { return StuckFault{fx.orphan, true}; },
      [&](int, const StuckFault&, const FaultView& v) {
        ++visits;
        EXPECT_FALSE(v.touched(fx.g));
      });
  EXPECT_EQ(visits, 4);
}

TEST(FaultModelTest, CampaignResamplesDeadSitesDeterministically) {
  DeadSiteFixture fx;
  FaultSimEngine engine(fx.net);
  CampaignOptions opt;
  opt.num_fault_samples = 64;
  opt.num_threads = 1;
  opt.dead_sites = DeadSitePolicy::kResample;
  // Pure-but-half-dead sampler: even seeds draw the orphan.
  auto sampler = [&](uint64_t s) {
    return (s & 1) ? StuckFault{fx.g, true} : StuckFault{fx.orphan, true};
  };
  auto run = [&](int threads) {
    CampaignOptions o = opt;
    o.num_threads = threads;
    std::vector<NodeId> drawn(o.num_fault_samples, kNullNode);
    engine.run_campaign(o, sampler,
                        [&](int i, const StuckFault& f, const FaultView&) {
                          drawn[i] = f.node;
                        });
    return drawn;
  };
  const std::vector<NodeId> a = run(1);
  for (NodeId n : a) EXPECT_EQ(n, fx.g);  // every dead draw was replaced
  EXPECT_EQ(a, run(1));                   // replay-deterministic
  EXPECT_EQ(a, run(4));                   // and thread-count independent
}

// ---- validation -----------------------------------------------------------

TEST(FaultModelTest, SpecValidationCatchesStructuralErrors) {
  Network net = make_benchmark("c17");
  FaultSimEngine engine(net);
  PatternSet patterns = PatternSet::random(net.num_pis(), 1, 1);
  auto ignore = [](int, const FaultSpec&, const FaultView&) {};

  FaultSpec empty;
  EXPECT_THROW(engine.run_batch(patterns, {empty}, ignore),
               std::logic_error);

  std::vector<NodeId> logic;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    if (net.node(id).kind == NodeKind::kLogic) logic.push_back(id);
  }
  FaultSpec dup;
  dup.add({logic[0], false, false, 0, 0});
  dup.add({logic[0], true, false, 0, 0});
  EXPECT_THROW(engine.run_batch(patterns, {dup}, ignore), std::logic_error);

  FaultSpec window;
  FaultSite t;
  t.node = logic[0];
  t.transient = true;
  t.burst_start = 64;  // beyond the 64-vector batch
  t.burst_length = 8;
  window.add(t);
  EXPECT_THROW(engine.run_batch(patterns, {window}, ignore),
               std::logic_error);

  FaultSpec overflow;
  for (int s = 0; s < FaultSpec::kMaxSites; ++s) {
    overflow.add({logic[s], false, false, 0, 0});
  }
  EXPECT_THROW(overflow.add({logic[4], false, false, 0, 0}),
               std::logic_error);
}

TEST(FaultModelTest, MakeSamplerValidatesItsInputs) {
  CampaignOptions opt;
  EXPECT_THROW(
      FaultSimEngine::make_sampler(FaultModel::kSingleStuckAt, {}, opt),
      std::invalid_argument);
  opt.sites_per_fault = 3;
  EXPECT_THROW(
      FaultSimEngine::make_sampler(FaultModel::kMultiStuckAt, {1, 2}, opt),
      std::invalid_argument);
}

TEST(FaultModelTest, StockSamplersArePureInTheSampleSeed) {
  CampaignOptions opt;
  opt.sites_per_fault = 3;
  opt.burst_vectors = 10;
  std::vector<NodeId> sites{3, 4, 5, 6, 7, 8};
  for (FaultModel model :
       {FaultModel::kSingleStuckAt, FaultModel::kMultiStuckAt,
        FaultModel::kTransientBurst}) {
    opt.model = model;
    auto s1 = FaultSimEngine::make_sampler(model, sites, opt);
    auto s2 = FaultSimEngine::make_sampler(model, sites, opt);
    for (uint64_t seed : {1ull, 42ull, 0xDEADull}) {
      const FaultSpec a = s1(seed);
      const FaultSpec b = s2(seed);
      ASSERT_EQ(a.num_sites, b.num_sites);
      for (int s = 0; s < a.num_sites; ++s) {
        EXPECT_EQ(a.sites[s].node, b.sites[s].node);
        EXPECT_EQ(a.sites[s].stuck_value, b.sites[s].stuck_value);
        EXPECT_EQ(a.sites[s].transient, b.sites[s].transient);
        EXPECT_EQ(a.sites[s].burst_start, b.sites[s].burst_start);
        EXPECT_EQ(a.sites[s].burst_length, b.sites[s].burst_length);
        // Multi-site draws are distinct nodes.
        for (int t = 0; t < s; ++t) {
          EXPECT_NE(a.sites[s].node, a.sites[t].node);
        }
      }
    }
  }
}

// ---- allocation-free steady state -----------------------------------------

TEST(FaultModelTest, TransitionSimulatorSteadyStateDoesNotAllocate) {
  Network net = make_benchmark("c17");
  std::vector<TransitionFault> faults = enumerate_transition_faults(net);
  TransitionSimulator sim(net);
  PatternSet launch = PatternSet::random(net.num_pis(), 4, 11);
  PatternSet capture = PatternSet::random(net.num_pis(), 4, 22);
  sim.run(launch, capture);
  // Warm-up: size every scratch buffer (cone marks, fanin pointers, the
  // forced/mask rows) to its steady-state capacity.
  for (const TransitionFault& f : faults) {
    sim.inject(f);
    (void)sim.launch_mask(f);
  }
  const int64_t before = g_allocs.load(std::memory_order_relaxed);
  uint64_t sink = 0;
  for (const TransitionFault& f : faults) {
    sim.inject(f);
    sink ^= sim.faulty_value(f.node)[0];
    sink ^= sim.launch_mask(f)[0];
  }
  const int64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0) << "sink=" << sink;
}

TEST(FaultModelTest, SimulatorStuckAtInjectionSteadyStateDoesNotAllocate) {
  Network net = make_benchmark("c17");
  std::vector<StuckFault> faults = enumerate_faults(net);
  Simulator sim(net);
  sim.run(PatternSet::random(net.num_pis(), 4, 33));
  for (const StuckFault& f : faults) sim.inject(f);
  const int64_t before = g_allocs.load(std::memory_order_relaxed);
  uint64_t sink = 0;
  for (const StuckFault& f : faults) {
    sim.inject(f);
    sink ^= sim.faulty_value(f.node)[0];
  }
  const int64_t after = g_allocs.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0) << "sink=" << sink;
}

}  // namespace
}  // namespace apx
