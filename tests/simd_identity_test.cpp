// Bit-identity across SIMD dispatch tiers (the tentpole guarantee: results
// are identical for any thread count x any SIMD width).
//
// Every kernel tier computes the same pure bitwise function over the same
// words, so golden and faulty value planes must be *byte-identical* whether
// evaluated 64, 256, or 512 bits per step — and everything derived from
// them (coverage counts, fault-detection reports, the synthesis screening
// prescreen and the approximate networks it shapes) must not move at all.
// The suite cycles every tier the host supports through the in-process
// simd::set_tier hook; CI additionally runs it once per APX_SIMD value so
// the env-var dispatch path is exercised too.
#include <gtest/gtest.h>

#include <bit>
#include <optional>
#include <string>
#include <vector>

#include "benchmarks/benchmarks.hpp"
#include "core/approx_synthesis.hpp"
#include "core/ced.hpp"
#include "mapping/mapper.hpp"
#include "mapping/optimize.hpp"
#include "network/bench_format.hpp"
#include "sim/fault_engine.hpp"
#include "sim/kernels.hpp"
#include "sim/simulator.hpp"

namespace apx {
namespace {

std::vector<simd::Tier> supported_tiers() {
  std::vector<simd::Tier> tiers;
  for (simd::Tier t :
       {simd::Tier::kScalar, simd::Tier::kAvx2, simd::Tier::kAvx512}) {
    if (simd::tier_supported(t)) tiers.push_back(t);
  }
  return tiers;
}

// Restores auto dispatch after each test so tier forcing cannot leak into
// other suites in the same binary.
class SimdIdentityTest : public ::testing::Test {
 protected:
  void TearDown() override { simd::set_tier(simd::best_supported_tier()); }
};

// Full golden + faulty value planes of a Simulator run, copied out of the
// arenas word by word so the comparison is content-based (byte identity of
// every node row, including sub-lane tails at odd word counts).
struct Planes {
  std::vector<std::vector<uint64_t>> golden;
  std::vector<std::vector<uint64_t>> faulty;
};

Planes capture_planes(const Network& net, int words, uint64_t seed) {
  Simulator sim(net);
  sim.run(PatternSet::random(net.num_pis(), words, seed));
  // A mid-circuit fault site with real fanout: the last logic node's first
  // fanin (deterministic for a fixed benchmark).
  NodeId site = kNullNode;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    if (net.node(id).kind == NodeKind::kLogic) site = id;
  }
  if (!net.node(site).fanins.empty()) site = net.node(site).fanins[0];
  sim.inject({site, true});
  Planes p;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    WordSpan g = sim.value(id);
    WordSpan f = sim.faulty_value(id);
    p.golden.emplace_back(g.begin(), g.end());
    p.faulty.emplace_back(f.begin(), f.end());
  }
  return p;
}

TEST_F(SimdIdentityTest, SimulatorPlanesAreByteIdenticalAcrossTiers) {
  Network net = technology_map(quick_synthesis(make_benchmark("cmp8")));
  // Odd word counts force every kernel through its sub-lane tail: 1 and 3
  // never reach the AVX-512 8-word stride, 7 exercises 4-word + scalar
  // remainders, 9 exercises the full stride plus both tails.
  for (int words : {1, 3, 7, 9}) {
    std::optional<Planes> reference;
    for (simd::Tier tier : supported_tiers()) {
      simd::set_tier(tier);
      Planes p = capture_planes(net, words, 0x1DE57);
      if (!reference) {
        reference = std::move(p);
        continue;
      }
      ASSERT_EQ(p.golden, reference->golden)
          << "golden plane diverged at tier " << simd::tier_name(tier)
          << ", words=" << words;
      ASSERT_EQ(p.faulty, reference->faulty)
          << "faulty plane diverged at tier " << simd::tier_name(tier)
          << ", words=" << words;
    }
  }
}

TEST_F(SimdIdentityTest, CoverageCountsAreIdenticalAcrossTiers) {
  Network mapped = technology_map(quick_synthesis(make_benchmark("cmp8")));
  std::vector<ApproxDirection> dirs(mapped.num_pos(),
                                    ApproxDirection::kZeroApprox);
  CedDesign ced = build_ced_design(mapped, mapped, dirs);
  CoverageOptions options;
  options.num_fault_samples = 400;
  options.words_per_fault = 3;  // odd count: kernels take their tail paths

  std::optional<CoverageResult> reference;
  for (simd::Tier tier : supported_tiers()) {
    simd::set_tier(tier);
    CoverageResult r = evaluate_ced_coverage(ced, options);
    if (!reference) {
      reference = r;
      continue;
    }
    EXPECT_EQ(r.runs, reference->runs);
    EXPECT_EQ(r.erroneous, reference->erroneous)
        << "tier " << simd::tier_name(tier);
    EXPECT_EQ(r.detected, reference->detected)
        << "tier " << simd::tier_name(tier);
  }
}

TEST_F(SimdIdentityTest, DetectionReportsAreIdenticalAcrossTiers) {
  Network net = technology_map(quick_synthesis(make_benchmark("rca16")));
  std::vector<StuckFault> faults = enumerate_faults(net);
  std::vector<NodeId> observe;
  for (int o = 0; o < net.num_pos(); ++o) observe.push_back(net.po(o).driver);
  DetectOptions options;
  options.max_words = 6;
  options.words_per_batch = 3;

  std::optional<DetectionReport> reference;
  for (simd::Tier tier : supported_tiers()) {
    simd::set_tier(tier);
    FaultSimEngine engine(net);
    DetectionReport r = engine.detect_faults(faults, observe, options);
    if (!reference) {
      reference = std::move(r);
      continue;
    }
    EXPECT_EQ(r.detected, reference->detected)
        << "tier " << simd::tier_name(tier);
    EXPECT_EQ(r.detecting_batch, reference->detecting_batch)
        << "tier " << simd::tier_name(tier);
    EXPECT_EQ(r.fault_batch_evals, reference->fault_batch_evals);
  }
}

// The synthesis screening prescreen runs on simulated planes; if a tier
// perturbed even one bit, stage-2 repair could take a different path and
// emit a structurally different approximate network. Serializing the
// result makes the comparison total.
TEST_F(SimdIdentityTest, SynthesisResultsAreIdenticalAcrossTiers) {
  Network net = make_benchmark("cmp8");
  std::vector<ApproxDirection> dirs(net.num_pos(),
                                    ApproxDirection::kZeroApprox);
  ApproxOptions options;
  options.sim_words = 9;  // odd: prescreen planes cross every tail path

  std::optional<std::string> reference;
  std::optional<int> reference_repairs;
  for (simd::Tier tier : supported_tiers()) {
    simd::set_tier(tier);
    ApproxResult r = synthesize_approximation(net, dirs, options);
    ASSERT_TRUE(r.all_verified());
    std::string text = write_bench_string(r.approx);
    if (!reference) {
      reference = std::move(text);
      reference_repairs = r.repairs;
      continue;
    }
    EXPECT_EQ(text, *reference) << "tier " << simd::tier_name(tier);
    EXPECT_EQ(r.repairs, *reference_repairs);
  }
}

TEST_F(SimdIdentityTest, PopcountKernelsAreIdenticalAcrossTiers) {
  // Random rows at word counts crossing every vector stride and tail, with
  // both a full and a partial final-word mask. Each tier must return the
  // exact integer the scalar reference computes.
  uint64_t s = 0xC0FFEE123456789ULL;
  auto next = [&s]() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  for (int words : {1, 3, 7, 9, 16, 33}) {
    std::vector<uint64_t> a(words), b(words), c(words);
    for (int w = 0; w < words; ++w) {
      a[w] = next();
      b[w] = next();
      c[w] = next();
    }
    for (uint64_t tail : {~0ULL, (1ULL << 17) - 1}) {
      auto ref = [&](auto f) {
        int64_t n = 0;
        for (int w = 0; w < words; ++w) {
          uint64_t mask = (w + 1 == words) ? tail : ~0ULL;
          n += std::popcount(f(a[w], b[w], c[w]) & mask);
        }
        return n;
      };
      const int64_t want_words = ref([](uint64_t x, uint64_t, uint64_t) {
        return x;
      });
      const int64_t want_and = ref([](uint64_t x, uint64_t y, uint64_t) {
        return x & y;
      });
      const int64_t want_xor_and = ref([](uint64_t x, uint64_t y, uint64_t z) {
        return (x ^ y) & z;
      });
      const int64_t want_andnot = ref([](uint64_t x, uint64_t y, uint64_t) {
        return ~x & y;
      });
      for (simd::Tier tier : supported_tiers()) {
        simd::set_tier(tier);
        EXPECT_EQ(popcount_words(a.data(), words, tail), want_words);
        EXPECT_EQ(popcount_and(a.data(), b.data(), words, tail), want_and);
        EXPECT_EQ(popcount_xor_and(a.data(), b.data(), c.data(), words, tail),
                  want_xor_and);
        EXPECT_EQ(popcount_andnot(a.data(), b.data(), words, tail),
                  want_andnot);

        std::vector<uint64_t> acc_xor(words, 0), acc_andnot(words, 0);
        accumulate_xor_or(acc_xor.data(), a.data(), b.data(), words);
        accumulate_andnot_or(acc_andnot.data(), a.data(), b.data(), words);
        for (int w = 0; w < words; ++w) {
          EXPECT_EQ(acc_xor[w], a[w] ^ b[w]);
          EXPECT_EQ(acc_andnot[w], ~a[w] & b[w]);
        }
      }
    }
  }
}

TEST_F(SimdIdentityTest, SetTierRejectsUnsupportedAndRecordsPolicy) {
  if (!simd::tier_supported(simd::Tier::kAvx512)) {
    EXPECT_THROW(simd::set_tier(simd::Tier::kAvx512), std::invalid_argument);
  }
  simd::set_tier(simd::Tier::kScalar);
  EXPECT_EQ(simd::active_tier(), simd::Tier::kScalar);
  EXPECT_EQ(simd::width_bits(), 64);
  EXPECT_STREQ(simd::policy(), "forced:scalar");
}

}  // namespace
}  // namespace apx
