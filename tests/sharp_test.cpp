#include <gtest/gtest.h>

#include <random>

#include "sop/sop.hpp"
#include "tt/truth_table.hpp"

namespace apx {
namespace {

Sop random_sop(std::mt19937& rng, int num_vars, int max_cubes) {
  Sop s(num_vars);
  int cubes = 1 + static_cast<int>(rng() % max_cubes);
  for (int i = 0; i < cubes; ++i) {
    Cube c = Cube::full(num_vars);
    for (int v = 0; v < num_vars; ++v) {
      int roll = static_cast<int>(rng() % 3);
      if (roll == 0) c.set(v, LitCode::kNeg);
      if (roll == 1) c.set(v, LitCode::kPos);
    }
    s.add_cube(c);
  }
  return s;
}

TEST(SharpTest, CubeSharpBasics) {
  // (--) # (1-) = (0-).
  Sop r = Sop::cube_sharp(*Cube::parse("--"), *Cube::parse("1-"));
  ASSERT_EQ(r.num_cubes(), 1);
  EXPECT_EQ(r.cube(0).to_string(), "0-");
  // Disjoint cubes: a # b = a.
  Sop d = Sop::cube_sharp(*Cube::parse("1-"), *Cube::parse("0-"));
  ASSERT_EQ(d.num_cubes(), 1);
  EXPECT_EQ(d.cube(0).to_string(), "1-");
  // a # a = empty.
  EXPECT_TRUE(Sop::cube_sharp(*Cube::parse("10"), *Cube::parse("10")).empty());
  // a contained in b: empty.
  EXPECT_TRUE(Sop::cube_sharp(*Cube::parse("10"), *Cube::parse("1-")).empty());
}

class SharpProperty : public ::testing::TestWithParam<int> {};

TEST_P(SharpProperty, CubeSharpMatchesSetDifference) {
  std::mt19937 rng(GetParam());
  const int n = 5;
  for (int trial = 0; trial < 40; ++trial) {
    Sop sa = random_sop(rng, n, 1);
    Sop sb = random_sop(rng, n, 1);
    const Cube& a = sa.cube(0);
    const Cube& b = sb.cube(0);
    for (auto* result : {new Sop(Sop::cube_sharp(a, b)),
                         new Sop(Sop::cube_disjoint_sharp(a, b))}) {
      for (uint64_t m = 0; m < (1u << n); ++m) {
        bool expect = a.covers_minterm(m) && !b.covers_minterm(m);
        EXPECT_EQ(result->covers_minterm(m), expect) << m;
      }
      delete result;
    }
    // Disjointness of the disjoint variant.
    Sop dis = Sop::cube_disjoint_sharp(a, b);
    for (int i = 0; i < dis.num_cubes(); ++i) {
      for (int j = i + 1; j < dis.num_cubes(); ++j) {
        EXPECT_FALSE(dis.cube(i).intersect(dis.cube(j)).has_value());
      }
    }
  }
}

TEST_P(SharpProperty, CoverSharpMatchesSetDifference) {
  std::mt19937 rng(GetParam() + 500);
  const int n = 5;
  for (int trial = 0; trial < 25; ++trial) {
    Sop f = random_sop(rng, n, 4);
    Sop g = random_sop(rng, n, 4);
    Sop diff = Sop::sharp(f, g);
    TruthTable expect =
        TruthTable::from_sop(f) & ~TruthTable::from_sop(g);
    EXPECT_EQ(TruthTable::from_sop(diff), expect);
  }
}

TEST_P(SharpProperty, MakeDisjointPreservesFunction) {
  std::mt19937 rng(GetParam() + 900);
  const int n = 5;
  for (int trial = 0; trial < 25; ++trial) {
    Sop f = random_sop(rng, n, 5);
    Sop dis = Sop::make_disjoint(f);
    EXPECT_EQ(TruthTable::from_sop(dis), TruthTable::from_sop(f));
    // Pairwise disjoint.
    double fraction_sum = 0.0;
    for (int i = 0; i < dis.num_cubes(); ++i) {
      fraction_sum += dis.cube(i).space_fraction();
      for (int j = i + 1; j < dis.num_cubes(); ++j) {
        EXPECT_FALSE(dis.cube(i).intersect(dis.cube(j)).has_value());
      }
    }
    // Disjointness makes exact counting a plain sum.
    EXPECT_NEAR(fraction_sum, TruthTable::from_sop(f).density(), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SharpProperty, ::testing::Values(3, 14, 159));

}  // namespace
}  // namespace apx
