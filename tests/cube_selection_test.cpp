#include "core/cube_selection.hpp"

#include <gtest/gtest.h>

#include <random>

#include "tt/truth_table.hpp"

namespace apx {
namespace {

TEST(CubeSelectionTest, ConformanceRules) {
  // Types for three fanins: 1, 0, DC.
  std::vector<NodeType> types = {NodeType::kOne, NodeType::kZero,
                                 NodeType::kDc};
  EXPECT_TRUE(cube_conforms(*Cube::parse("10-"), types));
  EXPECT_TRUE(cube_conforms(*Cube::parse("1--"), types));
  EXPECT_TRUE(cube_conforms(*Cube::parse("---"), types));
  EXPECT_FALSE(cube_conforms(*Cube::parse("0--"), types));   // neg on type-1
  EXPECT_FALSE(cube_conforms(*Cube::parse("-1-"), types));   // pos on type-0
  EXPECT_FALSE(cube_conforms(*Cube::parse("--1"), types));   // bound on DC
  EXPECT_FALSE(cube_conforms(*Cube::parse("--0"), types));

  // EX fanin accepts anything.
  std::vector<NodeType> all_ex = {NodeType::kEx, NodeType::kEx, NodeType::kEx};
  EXPECT_TRUE(cube_conforms(*Cube::parse("010"), all_ex));
}

TEST(CubeSelectionTest, ExactSelectionFiltersCubes) {
  Sop sop = *Sop::parse(3, "11-\n0-1\n1--");
  std::vector<NodeType> types = {NodeType::kOne, NodeType::kEx,
                                 NodeType::kDc};
  Sop sel = exact_cube_selection(sop, types);
  // "11-" ok (pos on type-1, pos on EX); "0-1" fails twice; "1--" ok.
  ASSERT_EQ(sel.num_cubes(), 2);
  EXPECT_EQ(sel.cube(0).to_string(), "11-");
  EXPECT_EQ(sel.cube(1).to_string(), "1--");
}

TEST(CubeSelectionTest, CubeProbability) {
  std::vector<double> probs = {0.5, 0.25, 0.8};
  EXPECT_NEAR(cube_probability(*Cube::parse("1--"), probs), 0.5, 1e-12);
  EXPECT_NEAR(cube_probability(*Cube::parse("-0-"), probs), 0.75, 1e-12);
  EXPECT_NEAR(cube_probability(*Cube::parse("101"), probs), 0.5 * 0.75 * 0.8,
              1e-12);
  EXPECT_NEAR(cube_probability(Cube::full(3), probs), 1.0, 1e-12);
}

TEST(CubeSelectionTest, OdcCoversAtLeastExactSpace) {
  // Paper: ODC-based selection explores a richer space than exact
  // selection. The feasible space always contains every conforming cube.
  std::mt19937 rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 3 + static_cast<int>(rng() % 3);
    Sop sop(n);
    int cubes = 2 + static_cast<int>(rng() % 4);
    for (int i = 0; i < cubes; ++i) {
      Cube c = Cube::full(n);
      for (int v = 0; v < n; ++v) {
        int roll = static_cast<int>(rng() % 3);
        if (roll == 0) c.set(v, LitCode::kNeg);
        if (roll == 1) c.set(v, LitCode::kPos);
      }
      sop.add_cube(c);
    }
    std::vector<NodeType> types;
    for (int v = 0; v < n; ++v) {
      types.push_back(static_cast<NodeType>(rng() % 4));
    }
    Sop exact = exact_cube_selection(sop, types);
    auto odc = odc_cube_selection(sop, types);
    ASSERT_TRUE(odc.has_value());
    TruthTable exact_tt = TruthTable::from_sop(exact);
    TruthTable odc_tt = TruthTable::from_sop(*odc);
    TruthTable f_tt = TruthTable::from_sop(sop);
    EXPECT_TRUE(TruthTable::implies(exact_tt, odc_tt))
        << "exact selection outside ODC feasible space";
    EXPECT_TRUE(TruthTable::implies(odc_tt, f_tt))
        << "feasible space leaked outside the function";
  }
}

TEST(CubeSelectionTest, OdcDiscoversUnobservableDcMinterm) {
  // g = x0 | (x1 & x2) with x1, x2 typed DC and x0 typed 1. Exact selection
  // keeps only cube "1--". The ODC space additionally contains the minterms
  // where x1/x2 are not observable (x0 = 1 already covers them), so the ODC
  // cover equals the exact one here; the richer-space property shows up as
  // set containment, exercised above. Here: a case where ODC strictly wins.
  //
  // g = x0 x1 + x0 x1' (= x0), x1 typed DC: the cube "1-" is in the ODC
  // space because x1 is unobservable everywhere, while exact selection on
  // the 2-cube SOP form finds no conforming cube.
  Sop sop = *Sop::parse(2, "11\n10");
  std::vector<NodeType> types = {NodeType::kOne, NodeType::kDc};
  Sop exact = exact_cube_selection(sop, types);
  EXPECT_EQ(exact.num_cubes(), 0);
  auto odc = odc_cube_selection(sop, types);
  ASSERT_TRUE(odc.has_value());
  TruthTable odc_tt = TruthTable::from_sop(*odc);
  EXPECT_EQ(odc_tt, TruthTable::from_sop(*Sop::parse(2, "1-")));
}

TEST(CubeSelectionTest, OdcRespectsTypedFaninPhases) {
  // g = x0 & x1 with x0 type 1, x1 type 0: feasible = g & (x0 + ~obs(x0))
  // & (~x1 + ~obs(x1)). obs(x0) = x1, obs(x1) = x0. feasible = x0 x1 &
  // (x0 + ~x1) & (~x1 + ~x0) = x0 x1 & ... = 0.
  Sop sop = *Sop::parse(2, "11");
  std::vector<NodeType> types = {NodeType::kOne, NodeType::kZero};
  auto odc = odc_cube_selection(sop, types);
  ASSERT_TRUE(odc.has_value());
  EXPECT_TRUE(TruthTable::from_sop(*odc).is_zero());
}

TEST(CubeSelectionTest, OdcRefusesWideSupport) {
  Sop sop(kMaxLocalVars + 1);
  Cube c = Cube::full(kMaxLocalVars + 1);
  c.set(0, LitCode::kPos);
  sop.add_cube(c);
  std::vector<NodeType> types(kMaxLocalVars + 1, NodeType::kEx);
  EXPECT_FALSE(odc_cube_selection(sop, types).has_value());
}

TEST(CubeSelectionTest, OdcOrdersByProbability) {
  // Two disjoint cubes; the higher-probability one must come first.
  Sop sop = *Sop::parse(3, "11-\n00-");
  std::vector<NodeType> types = {NodeType::kEx, NodeType::kEx, NodeType::kEx};
  std::vector<double> probs = {0.9, 0.9, 0.5};
  auto odc = odc_cube_selection(sop, types, &probs);
  ASSERT_TRUE(odc.has_value());
  ASSERT_GE(odc->num_cubes(), 2);
  EXPECT_GE(cube_probability(odc->cube(0), probs),
            cube_probability(odc->cube(1), probs));
}

}  // namespace
}  // namespace apx
