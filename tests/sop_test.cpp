#include "sop/sop.hpp"

#include <gtest/gtest.h>

#include <random>

namespace apx {
namespace {

Sop random_sop(std::mt19937& rng, int num_vars, int max_cubes) {
  Sop s(num_vars);
  int cubes = 1 + static_cast<int>(rng() % max_cubes);
  for (int i = 0; i < cubes; ++i) {
    Cube c = Cube::full(num_vars);
    for (int v = 0; v < num_vars; ++v) {
      int roll = static_cast<int>(rng() % 3);
      if (roll == 0) c.set(v, LitCode::kNeg);
      if (roll == 1) c.set(v, LitCode::kPos);
    }
    s.add_cube(c);
  }
  return s;
}

TEST(SopTest, ParseAndEvaluate) {
  Sop s = *Sop::parse(3, "1-0\n-11");
  EXPECT_EQ(s.num_cubes(), 2);
  EXPECT_TRUE(s.covers_minterm(0b001));   // x0=1, x2=0
  EXPECT_TRUE(s.covers_minterm(0b110));   // x1=1, x2=1
  EXPECT_FALSE(s.covers_minterm(0b000));
  EXPECT_EQ(s.literal_count(), 4);
}

TEST(SopTest, ZeroAndOne) {
  EXPECT_TRUE(Sop::tautology(Sop::one(4)));
  EXPECT_FALSE(Sop::tautology(Sop::zero(4)));
  EXPECT_TRUE(Sop::complement(Sop::zero(3)).cube(0).is_full());
  EXPECT_TRUE(Sop::complement(Sop::one(3)).empty());
}

TEST(SopTest, TautologyXorPair) {
  // x0 + x0' is a tautology.
  Sop s = *Sop::parse(2, "1-\n0-");
  EXPECT_TRUE(Sop::tautology(s));
  // x0 + x1 is not.
  Sop t = *Sop::parse(2, "1-\n-1");
  EXPECT_FALSE(Sop::tautology(t));
}

TEST(SopTest, ComplementSingleCube) {
  Sop s = *Sop::parse(3, "10-");
  Sop c = Sop::complement(s);
  // Complement of x0 x1' = x0' + x1.
  for (uint64_t m = 0; m < 8; ++m) {
    EXPECT_EQ(c.covers_minterm(m), !s.covers_minterm(m)) << m;
  }
}

TEST(SopTest, SccRemovesContainedCubes) {
  Sop s = *Sop::parse(3, "1--\n1-0\n110");
  s.make_scc_free();
  EXPECT_EQ(s.num_cubes(), 1);
  EXPECT_EQ(s.cube(0).to_string(), "1--");
}

TEST(SopTest, ConjunctionAndDisjunction) {
  Sop a = *Sop::parse(2, "1-");
  Sop b = *Sop::parse(2, "-1");
  Sop both = Sop::conjunction(a, b);
  EXPECT_EQ(both.num_cubes(), 1);
  EXPECT_EQ(both.cube(0).to_string(), "11");
  Sop either = Sop::disjunction(a, b);
  EXPECT_EQ(either.num_cubes(), 2);
}

TEST(SopTest, ImpliesSemantics) {
  Sop small = *Sop::parse(3, "11-");
  Sop big = *Sop::parse(3, "1--");
  EXPECT_TRUE(Sop::implies(small, big));
  EXPECT_FALSE(Sop::implies(big, small));
  EXPECT_TRUE(Sop::implies(small, small));
}

TEST(SopTest, CoversCubeUsesMultipleCubes) {
  // Cover x0 x1 + x0 x1' covers cube x0 even though no single cube does.
  Sop s = *Sop::parse(2, "11\n10");
  EXPECT_TRUE(s.covers_cube(*Cube::parse("1-")));
  EXPECT_FALSE(s.covers_cube(*Cube::parse("--")));
}

TEST(SopTest, ExactSpaceFraction) {
  // Sec. 2 example: F = a+b+c'd'+cd covers 14/16 minterms -> 0.875.
  Sop f = *Sop::parse(4, "1---\n-1--\n--00\n--11");
  EXPECT_NEAR(f.exact_space_fraction(), 14.0 / 16.0, 1e-12);
  // G = a + b covers 12/16.
  Sop g = *Sop::parse(4, "1---\n-1--");
  EXPECT_NEAR(g.exact_space_fraction(), 12.0 / 16.0, 1e-12);
}

TEST(SopTest, MostBinateVar) {
  Sop s = *Sop::parse(3, "1-0\n0-1\n--1");
  // var0 appears pos once, neg once (binate); var2 pos twice neg once.
  int v = s.most_binate_var();
  EXPECT_EQ(v, 2);  // 3 occurrences in both phases beats var0's 2
  Sop unate = *Sop::parse(3, "1--\n-1-");
  EXPECT_EQ(unate.most_binate_var(), -1);
  EXPECT_TRUE(unate.is_unate());
}

class SopProperty : public ::testing::TestWithParam<int> {};

TEST_P(SopProperty, ComplementIsExact) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 2 + static_cast<int>(rng() % 6);
    Sop f = random_sop(rng, n, 6);
    Sop fc = Sop::complement(f);
    for (uint64_t m = 0; m < (1ULL << n); ++m) {
      EXPECT_EQ(fc.covers_minterm(m), !f.covers_minterm(m))
          << "n=" << n << " m=" << m << "\nF:\n"
          << f.to_string();
    }
  }
}

TEST_P(SopProperty, TautologyMatchesEnumeration) {
  std::mt19937 rng(GetParam() + 1000);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 2 + static_cast<int>(rng() % 5);
    Sop f = random_sop(rng, n, 8);
    bool taut = true;
    for (uint64_t m = 0; m < (1ULL << n); ++m) {
      if (!f.covers_minterm(m)) {
        taut = false;
        break;
      }
    }
    EXPECT_EQ(Sop::tautology(f), taut);
  }
}

TEST_P(SopProperty, DoubleComplementPreservesFunction) {
  std::mt19937 rng(GetParam() + 2000);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = 2 + static_cast<int>(rng() % 5);
    Sop f = random_sop(rng, n, 5);
    Sop ff = Sop::complement(Sop::complement(f));
    for (uint64_t m = 0; m < (1ULL << n); ++m) {
      EXPECT_EQ(ff.covers_minterm(m), f.covers_minterm(m));
    }
  }
}

TEST_P(SopProperty, ImpliesMatchesEnumeration) {
  std::mt19937 rng(GetParam() + 3000);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 2 + static_cast<int>(rng() % 4);
    Sop a = random_sop(rng, n, 4);
    Sop b = random_sop(rng, n, 4);
    bool expected = true;
    for (uint64_t m = 0; m < (1ULL << n); ++m) {
      if (a.covers_minterm(m) && !b.covers_minterm(m)) {
        expected = false;
        break;
      }
    }
    EXPECT_EQ(Sop::implies(a, b), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SopProperty,
                         ::testing::Values(7, 13, 21, 29, 42, 99));

}  // namespace
}  // namespace apx
