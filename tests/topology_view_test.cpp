// Tests for the cache-resident topology snapshot (network/topology_view.hpp):
// version-keyed invalidation (structural mutations rebuild, function-only
// mutations don't), differential equivalence of the CSR/cone queries against
// the legacy Network traversals, and the allocation-free steady state of
// cone_of with caller-owned scratch.
#include "network/topology_view.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "network/network.hpp"

// Global allocation counter: the steady-state test asserts that warmed-up
// cone/fanout/topo queries through the view do not allocate.
namespace {
std::atomic<int64_t> g_allocs{0};
}

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace apx {
namespace {

// n4 = a & b;  n5 = c | d;  f = n4 | n5  (two overlapping PO cones below).
Network small_net() {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  NodeId d = net.add_pi("d");
  NodeId n4 = net.add_and(a, b, "n4");
  NodeId n5 = net.add_or(c, d, "n5");
  NodeId f = net.add_or(n4, n5, "f");
  net.add_po("f", f);
  net.add_po("g", n5);
  return net;
}

// A deeper pseudo-random DAG to exercise the differential checks beyond
// hand-sized examples.
Network layered_net(int pis, int layers, int per_layer) {
  Network net;
  std::vector<NodeId> pool;
  for (int i = 0; i < pis; ++i) {
    pool.push_back(net.add_pi("x" + std::to_string(i)));
  }
  uint64_t s = 0x9E3779B97F4A7C15ULL;
  auto next = [&s]() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  for (int l = 0; l < layers; ++l) {
    std::vector<NodeId> layer;
    for (int i = 0; i < per_layer; ++i) {
      NodeId a = pool[next() % pool.size()];
      NodeId b = pool[next() % pool.size()];
      layer.push_back((next() & 1) ? net.add_and(a, b) : net.add_xor(a, b));
    }
    for (NodeId id : layer) pool.push_back(id);
  }
  for (int o = 0; o < 4; ++o) {
    net.add_po("z" + std::to_string(o), pool[pool.size() - 1 - o]);
  }
  return net;
}

TEST(TopologyViewTest, CacheHitReturnsSameSnapshot) {
  Network net = small_net();
  auto v1 = net.topology();
  auto v2 = net.topology();
  EXPECT_EQ(v1.get(), v2.get()) << "unchanged structure must hit the cache";
  EXPECT_EQ(v1->structure_version(), net.structure_version());
}

TEST(TopologyViewTest, StructuralMutationRebuilds) {
  Network net = small_net();
  auto before = net.topology();

  // add_node is structural: new snapshot, new version.
  NodeId g = net.add_and(0, 1, "extra");
  net.add_po("h", g);
  auto after = net.topology();
  EXPECT_NE(before.get(), after.get());
  EXPECT_GT(after->structure_version(), before->structure_version());
  EXPECT_EQ(after->num_nodes(), net.num_nodes());

  // set_function (fanin rewire) is structural too.
  NodeId f = *net.find_node("f");
  Sop anded(2);
  Cube c = Cube::full(2);
  c.set(0, LitCode::kPos);
  c.set(1, LitCode::kPos);
  anded.add_cube(c);
  net.set_function(f, {*net.find_node("n4"), g}, std::move(anded));
  auto rewired = net.topology();
  EXPECT_NE(after.get(), rewired.get());

  // cleanup renumbers nodes: structural.
  net.cleanup();
  auto cleaned = net.topology();
  EXPECT_NE(rewired.get(), cleaned.get());
  EXPECT_EQ(cleaned->num_nodes(), net.num_nodes());

  // The old snapshots stay valid for their generation's shape.
  EXPECT_EQ(before->num_nodes(), 7);
}

TEST(TopologyViewTest, SetSopDoesNotInvalidate) {
  Network net = small_net();
  auto before = net.topology();
  NodeId n4 = *net.find_node("n4");
  Sop ored(2);
  for (int v = 0; v < 2; ++v) {
    Cube c = Cube::full(2);
    c.set(v, LitCode::kPos);
    ored.add_cube(c);
  }
  net.set_sop(n4, std::move(ored));  // function-only: same DAG shape
  auto after = net.topology();
  EXPECT_EQ(before.get(), after.get())
      << "set_sop must not invalidate the structure snapshot";
}

TEST(TopologyViewTest, MatchesLegacyTraversals) {
  for (Network net : {small_net(), layered_net(8, 6, 5)}) {
    auto view = net.topology();

    EXPECT_EQ(view->topo(), net.topo_order());
    EXPECT_EQ(view->levels(), net.levels());
    for (int i = 0; i < view->num_nodes(); ++i) {
      EXPECT_EQ(view->topo_position(view->topo()[i]), i);
    }

    std::vector<std::vector<NodeId>> legacy = net.fanouts();
    for (NodeId id = 0; id < net.num_nodes(); ++id) {
      TopologyView::Range r = view->fanouts(id);
      EXPECT_EQ(std::vector<NodeId>(r.begin(), r.end()), legacy[id]);
      EXPECT_EQ(view->fanout_count(id), static_cast<int>(legacy[id].size()));
      TopologyView::Range fi = view->fanins(id);
      EXPECT_EQ(std::vector<NodeId>(fi.begin(), fi.end()),
                net.node(id).fanins);
    }
  }
}

TEST(TopologyViewTest, ConeOfMatchesLegacy) {
  Network net = layered_net(8, 6, 5);
  auto view = net.topology();
  ConeScratch scratch;
  std::vector<NodeId> cone;

  // Empty roots: empty cone.
  view->cone_of(std::vector<NodeId>{}, scratch, cone);
  EXPECT_TRUE(cone.empty());
  EXPECT_TRUE(net.cone_of({}).empty());

  // PI-only roots: the cone is exactly the PIs themselves.
  std::vector<NodeId> pi_roots(net.pis().begin(), net.pis().begin() + 3);
  view->cone_of(pi_roots, scratch, cone);
  EXPECT_EQ(cone, net.cone_of(pi_roots));
  EXPECT_EQ(cone.size(), pi_roots.size());

  // Every single-root cone.
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    view->cone_of(&id, 1, scratch, cone);
    EXPECT_EQ(cone, net.cone_of({id}));
  }

  // Multi-root cones with overlap (PO drivers share structure by
  // construction): shared nodes must appear exactly once, in topo order.
  std::vector<NodeId> drivers;
  for (const PrimaryOutput& po : net.pos()) drivers.push_back(po.driver);
  view->cone_of(drivers, scratch, cone);
  EXPECT_EQ(cone, net.cone_of(drivers));
  std::vector<NodeId> uniq = cone;
  std::sort(uniq.begin(), uniq.end());
  EXPECT_EQ(std::unique(uniq.begin(), uniq.end()), uniq.end());
}

TEST(TopologyViewTest, ConeOfSteadyStateDoesNotAllocate) {
  Network net = layered_net(8, 6, 5);
  auto view = net.topology();
  ConeScratch scratch;
  std::vector<NodeId> cone;
  std::vector<NodeId> drivers;
  for (const PrimaryOutput& po : net.pos()) drivers.push_back(po.driver);

  // Warm-up: grows scratch and the output vector to steady-state capacity.
  view->cone_of(drivers, scratch, cone);
  NodeId root = drivers[0];
  view->cone_of(&root, 1, scratch, cone);

  const int64_t before = g_allocs.load();
  for (int rep = 0; rep < 100; ++rep) {
    view->cone_of(drivers, scratch, cone);
    view->cone_of(&root, 1, scratch, cone);
    int edges = 0;
    for (NodeId id : view->topo()) edges += view->fanout_count(id);
    for (NodeId id : cone) {
      for (NodeId out : view->fanouts(id)) edges += out;
    }
    ASSERT_GT(edges, 0);
  }
  EXPECT_EQ(g_allocs.load(), before)
      << "warmed-up cone/fanout/topo queries must not allocate";
}

}  // namespace
}  // namespace apx
