#include "network/network.hpp"

#include <gtest/gtest.h>

namespace apx {
namespace {

// Builds the paper's Fig. 1(a)-style small network:
//   n4 = a & b;  n5 = c | d;  f = n4 | n5.
Network small_net() {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  NodeId d = net.add_pi("d");
  NodeId n4 = net.add_and(a, b, "n4");
  NodeId n5 = net.add_or(c, d, "n5");
  NodeId f = net.add_or(n4, n5, "f");
  net.add_po("f", f);
  return net;
}

TEST(NetworkTest, BasicCounts) {
  Network net = small_net();
  EXPECT_EQ(net.num_pis(), 4);
  EXPECT_EQ(net.num_pos(), 1);
  EXPECT_EQ(net.num_logic_nodes(), 3);
  EXPECT_EQ(net.depth(), 2);
  net.check();
}

TEST(NetworkTest, TopoOrderRespectsEdges) {
  Network net = small_net();
  auto order = net.topo_order();
  std::vector<int> position(net.num_nodes());
  for (size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    for (NodeId f : net.node(id).fanins) {
      EXPECT_LT(position[f], position[id]);
    }
  }
}

TEST(NetworkTest, LevelsAndDepth) {
  Network net = small_net();
  auto level = net.levels();
  NodeId f = *net.find_node("f");
  EXPECT_EQ(level[f], 2);
  for (NodeId pi : net.pis()) EXPECT_EQ(level[pi], 0);
}

TEST(NetworkTest, FanoutsAreInverseOfFanins) {
  Network net = small_net();
  auto fanouts = net.fanouts();
  NodeId a = *net.find_node("a");
  NodeId n4 = *net.find_node("n4");
  ASSERT_EQ(fanouts[a].size(), 1u);
  EXPECT_EQ(fanouts[a][0], n4);
}

TEST(NetworkTest, ExtractConeKeepsOnlySupport) {
  Network net = small_net();
  // Add an unrelated PO.
  NodeId e = net.add_pi("e");
  NodeId g = net.add_not(e, "g");
  net.add_po("g", g);

  Network cone = net.extract_cone(0);  // PO f
  EXPECT_EQ(cone.num_pis(), 4);
  EXPECT_EQ(cone.num_pos(), 1);
  EXPECT_EQ(cone.num_logic_nodes(), 3);
  cone.check();

  Network cone_g = net.extract_cone(1);
  EXPECT_EQ(cone_g.num_pis(), 1);
  EXPECT_EQ(cone_g.num_logic_nodes(), 1);
}

TEST(NetworkTest, CleanupDropsUnreachable) {
  Network net = small_net();
  NodeId a = *net.find_node("a");
  NodeId dangling = net.add_not(a, "dangling");
  (void)dangling;
  EXPECT_EQ(net.num_logic_nodes(), 4);
  net.cleanup();
  EXPECT_EQ(net.num_logic_nodes(), 3);
  EXPECT_EQ(net.num_pis(), 4);  // PIs always kept
  net.check();
}

TEST(NetworkTest, AppendIntoMapsPis) {
  Network inner;
  NodeId x = inner.add_pi("x");
  NodeId y = inner.add_pi("y");
  NodeId z = inner.add_xor(x, y, "z");
  inner.add_po("z", z);

  Network outer = small_net();
  NodeId a = *outer.find_node("a");
  NodeId b = *outer.find_node("b");
  auto map = inner.append_into(outer, {a, b});
  EXPECT_NE(map[z], kNullNode);
  outer.add_po("z2", map[z]);
  outer.check();
  EXPECT_EQ(outer.num_logic_nodes(), 4);
}

TEST(NetworkTest, CycleDetection) {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId n1 = net.add_and(a, a, "n1");
  // Introduce a cycle by making n1 its own fanin.
  net.set_function(n1, {a, n1}, *Sop::parse(2, "11"));
  net.add_po("o", n1);
  EXPECT_THROW(net.topo_order(), std::logic_error);
}

TEST(NetworkTest, DuplicateNamesGetUniqued) {
  Network net;
  net.add_pi("sig");
  NodeId second = net.add_pi("sig");
  EXPECT_NE(net.node(second).name, "sig");
}

TEST(NetworkTest, AddNodeValidatesWidth) {
  Network net;
  NodeId a = net.add_pi("a");
  EXPECT_THROW(net.add_node({a}, *Sop::parse(2, "11")), std::logic_error);
}

TEST(NetworkTest, VersionStampsTrackSopMutations) {
  Network net = small_net();
  uint64_t v0 = net.version();
  EXPECT_TRUE(net.dirty_since(v0).empty());

  NodeId n4 = *net.find_node("n4");
  uint64_t sv = net.structure_version();
  net.set_sop(n4, net.node(n4).sop);
  EXPECT_GT(net.version(), v0);
  EXPECT_EQ(net.structure_version(), sv);  // SOP rewrite is not structural
  EXPECT_EQ(net.node_version(n4), net.version());

  auto dirty = net.dirty_since(v0);
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], n4);
  EXPECT_TRUE(net.dirty_since(net.version()).empty());

  // A second mutation of another node: both are dirty w.r.t. v0, only the
  // newer one w.r.t. the intermediate version.
  uint64_t v1 = net.version();
  NodeId n5 = *net.find_node("n5");
  net.set_sop(n5, net.node(n5).sop);
  EXPECT_EQ(net.dirty_since(v0).size(), 2u);
  ASSERT_EQ(net.dirty_since(v1).size(), 1u);
  EXPECT_EQ(net.dirty_since(v1)[0], n5);
}

TEST(NetworkTest, StructureVersionTracksShapeChanges) {
  Network net = small_net();
  NodeId a = *net.find_node("a");
  NodeId b = *net.find_node("b");

  uint64_t sv = net.structure_version();
  NodeId g = net.add_not(a, "g");
  EXPECT_GT(net.structure_version(), sv);

  sv = net.structure_version();
  net.set_function(g, {a, b}, *Sop::parse(2, "11"));
  EXPECT_GT(net.structure_version(), sv);
  EXPECT_EQ(net.node_version(g), net.version());

  sv = net.structure_version();
  net.add_po("g", g);
  EXPECT_GT(net.structure_version(), sv);

  sv = net.structure_version();
  net.set_po_driver(1, a);
  EXPECT_GT(net.structure_version(), sv);

  // cleanup() may renumber nodes: every survivor is re-stamped dirty.
  sv = net.version();
  net.cleanup();
  EXPECT_GT(net.structure_version(), sv);
  EXPECT_EQ(net.dirty_since(sv).size(), static_cast<size_t>(net.num_nodes()));
}

TEST(NetworkTest, ConstNodes) {
  Network net;
  NodeId c1 = net.add_const(true);
  NodeId c0 = net.add_const(false);
  net.add_po("one", c1);
  net.add_po("zero", c0);
  net.check();
  EXPECT_EQ(net.num_logic_nodes(), 0);
  EXPECT_EQ(net.depth(), 0);
}

}  // namespace
}  // namespace apx
