#include "core/masking.hpp"

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "core/approx_synthesis.hpp"
#include "mapping/mapper.hpp"
#include "mapping/optimize.hpp"
#include "sim/simulator.hpp"

namespace apx {
namespace {

MaskingDesign perfect_masking_design(const std::vector<ApproxDirection>& dirs,
                                     const Network& net) {
  Network mapped = technology_map(quick_synthesis(net));
  return build_masking_design(mapped, mapped, dirs);
}

TEST(MaskingTest, FaultFreeMaskedOutputsEqualRawOutputs) {
  Network net = make_benchmark("cmp4");
  std::vector<ApproxDirection> dirs(net.num_pos(),
                                    ApproxDirection::kZeroApprox);
  dirs[1] = ApproxDirection::kOneApprox;  // exercise both masking gates
  MaskingDesign d = perfect_masking_design(dirs, net);
  Simulator sim(d.ced.design);
  sim.run(PatternSet::random(d.ced.design.num_pis(), 32, 11));
  for (size_t o = 0; o < d.masked_outputs.size(); ++o) {
    const auto& raw = sim.value(d.ced.functional_outputs[o]);
    const auto& masked = sim.value(d.masked_outputs[o]);
    EXPECT_EQ(raw, masked) << "output " << o;
  }
}

TEST(MaskingTest, PerfectCheckFunctionMasksAllProtectedErrors) {
  // With X == Y exactly, every 0->1 error at a 0-approx-protected output is
  // masked (Y* = Y_faulty AND X = 0 whenever golden Y = 0).
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  net.add_po("y", net.add_and(net.add_and(a, b), c));
  Network mapped = technology_map(net);
  MaskingDesign d =
      build_masking_design(mapped, mapped, {ApproxDirection::kZeroApprox});

  Simulator sim(d.ced.design);
  sim.run(PatternSet::exhaustive(3));
  NodeId y = d.ced.functional_outputs[0];
  NodeId m = d.masked_outputs[0];
  for (NodeId site : d.ced.functional_nodes) {
    sim.inject({site, true});  // stuck-at-1 creates 0->1 errors
    uint64_t golden = sim.value(y)[0];
    uint64_t masked_err = (golden ^ sim.faulty_value(m)[0]) & ~golden;
    EXPECT_EQ(masked_err & 0xFF, 0u) << "unmasked 0->1 error at site "
                                     << site;
  }
}

TEST(MaskingTest, SynthesizedCheckerReducesErrorRate) {
  Network net = make_benchmark("dec38");
  Network opt = quick_synthesis(net);
  Network mapped = technology_map(opt);
  std::vector<ApproxDirection> dirs(net.num_pos(),
                                    ApproxDirection::kZeroApprox);
  ApproxOptions aopt;
  aopt.significance_threshold = 0.05;
  ApproxResult r = synthesize_approximation(opt, dirs, aopt);
  ASSERT_TRUE(r.all_verified());
  MaskingDesign d =
      build_masking_design(mapped, technology_map(r.approx), dirs);
  CoverageOptions copt;
  copt.num_fault_samples = 400;
  MaskingResult mr = evaluate_masking(d, copt);
  EXPECT_GT(mr.runs, 0);
  EXPECT_LE(mr.masked_errors, mr.raw_errors);
  // A decoder's outputs are overwhelmingly 0, so 0-approx masking should
  // correct a visible share of the errors.
  EXPECT_GT(mr.masking_effectiveness(), 0.2);
}

TEST(MaskingTest, MaskedOutputsAreProperPos) {
  Network net = make_benchmark("c17");
  std::vector<ApproxDirection> dirs(net.num_pos(),
                                    ApproxDirection::kOneApprox);
  MaskingDesign d = perfect_masking_design(dirs, net);
  // Two new POs named "<po>_masked".
  int masked_pos = 0;
  for (const PrimaryOutput& po : d.ced.design.pos()) {
    if (po.name.find("_masked") != std::string::npos) ++masked_pos;
  }
  EXPECT_EQ(masked_pos, net.num_pos());
  d.ced.design.check();
}

}  // namespace
}  // namespace apx
