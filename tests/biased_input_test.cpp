#include <gtest/gtest.h>

#include <bit>
#include <cmath>

#include "core/verify.hpp"
#include "sim/simulator.hpp"

namespace apx {
namespace {

double measured_prob(const PatternSet& p, int pi) {
  int64_t ones = 0;
  for (int w = 0; w < p.num_words(); ++w) {
    ones += std::popcount(p.word(pi, w));
  }
  return static_cast<double>(ones) / (64.0 * p.num_words());
}

TEST(BiasedPatternTest, HitsRequestedProbabilities) {
  std::vector<double> probs = {0.0, 0.125, 0.3, 0.5, 0.75, 0.9, 1.0};
  PatternSet p = PatternSet::biased(probs, 512, 99);
  EXPECT_DOUBLE_EQ(measured_prob(p, 0), 0.0);
  EXPECT_DOUBLE_EQ(measured_prob(p, 6), 1.0);
  for (size_t i = 1; i + 1 < probs.size(); ++i) {
    EXPECT_NEAR(measured_prob(p, static_cast<int>(i)), probs[i], 0.01)
        << "pi " << i;
  }
}

TEST(BiasedPatternTest, UniformBiasMatchesRandom) {
  std::vector<double> probs(4, 0.5);
  PatternSet p = PatternSet::biased(probs, 256, 7);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(measured_prob(p, i), 0.5, 0.02);
  }
}

TEST(BiasedPatternTest, HitsRequestedProbabilitiesOverThousandWords) {
  std::vector<double> probs = {0.2, 0.33, 0.5, 0.66, 0.8};
  PatternSet p = PatternSet::biased(probs, 1000, 0xB1A5);
  for (size_t i = 0; i < probs.size(); ++i) {
    EXPECT_NEAR(measured_prob(p, static_cast<int>(i)), probs[i], 0.01)
        << "pi " << i;
  }
}

TEST(BiasedPatternTest, RejectsOutOfRangeProbabilities) {
  EXPECT_THROW(PatternSet::biased({-0.1}, 4, 1), std::invalid_argument);
  EXPECT_THROW(PatternSet::biased({0.5, 1.5}, 4, 1), std::invalid_argument);
  EXPECT_THROW(PatternSet::biased({std::nan("")}, 4, 1),
               std::invalid_argument);
}

TEST(BiasedPatternTest, Deterministic) {
  std::vector<double> probs = {0.3, 0.7};
  PatternSet a = PatternSet::biased(probs, 16, 42);
  PatternSet b = PatternSet::biased(probs, 16, 42);
  EXPECT_EQ(a.word(0, 5), b.word(0, 5));
  EXPECT_EQ(a.word(1, 9), b.word(1, 9));
}

TEST(WeightedApproximationTest, BiasChangesApproximationPercentage) {
  // F = a + b + c'd' + cd, G = a + b (the Sec. 2 example). Uniform inputs:
  // 12/14 = 85.7%. If a and b are almost always 1, G covers nearly all of
  // F's weighted on-set; if a and b are almost always 0, G covers almost
  // none of it.
  Network f;
  NodeId a = f.add_pi("a");
  NodeId b = f.add_pi("b");
  NodeId c = f.add_pi("c");
  NodeId d = f.add_pi("d");
  NodeId ab = f.add_or(a, b);
  NodeId xnor = f.add_node({c, d}, *Sop::parse(2, "00\n11"));
  f.add_po("F", f.add_or(ab, xnor));

  Network g;
  NodeId a2 = g.add_pi("a");
  NodeId b2 = g.add_pi("b");
  (void)g.add_pi("c");
  (void)g.add_pi("d");
  g.add_po("G", g.add_or(a2, b2));

  std::vector<double> uniform(4, 0.5);
  double base = weighted_approximation_percentage(
      f, g, 0, ApproxDirection::kOneApprox, uniform);
  EXPECT_NEAR(base, 12.0 / 14.0, 0.02);

  std::vector<double> ab_high = {0.95, 0.95, 0.5, 0.5};
  double high = weighted_approximation_percentage(
      f, g, 0, ApproxDirection::kOneApprox, ab_high);
  EXPECT_GT(high, 0.97);

  std::vector<double> ab_low = {0.05, 0.05, 0.5, 0.5};
  double low = weighted_approximation_percentage(
      f, g, 0, ApproxDirection::kOneApprox, ab_low);
  EXPECT_LT(low, 0.35);
}

}  // namespace
}  // namespace apx
