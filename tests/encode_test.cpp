#include "sat/encode.hpp"

#include <gtest/gtest.h>

#include <random>

#include "bdd/network_bdd.hpp"

namespace apx {
namespace {

Network xor_tree(int width, const std::string& name) {
  Network net;
  net.set_name(name);
  std::vector<NodeId> sigs;
  for (int i = 0; i < width; ++i) sigs.push_back(net.add_pi("x" + std::to_string(i)));
  while (sigs.size() > 1) {
    std::vector<NodeId> next;
    for (size_t i = 0; i + 1 < sigs.size(); i += 2) {
      next.push_back(net.add_xor(sigs[i], sigs[i + 1]));
    }
    if (sigs.size() % 2) next.push_back(sigs.back());
    sigs = next;
  }
  net.add_po("parity", sigs[0]);
  return net;
}

Network xor_chain(int width, const std::string& name) {
  Network net;
  net.set_name(name);
  std::vector<NodeId> pis;
  for (int i = 0; i < width; ++i) pis.push_back(net.add_pi("x" + std::to_string(i)));
  NodeId acc = pis[0];
  for (int i = 1; i < width; ++i) acc = net.add_xor(acc, pis[i]);
  net.add_po("parity", acc);
  return net;
}

TEST(EncodeTest, XorTreeEqualsXorChain) {
  Network a = xor_tree(8, "tree");
  Network b = xor_chain(8, "chain");
  EXPECT_EQ(check_po_equivalence(a, 0, b, 0), CheckResult::kHolds);
  EXPECT_EQ(check_po_implication(a, 0, b, 0), CheckResult::kHolds);
}

TEST(EncodeTest, DetectsNonImplication) {
  // a&b implies a|b but not vice versa.
  Network f;
  NodeId a1 = f.add_pi("a");
  NodeId b1 = f.add_pi("b");
  f.add_po("o", f.add_and(a1, b1));
  Network g;
  NodeId a2 = g.add_pi("a");
  NodeId b2 = g.add_pi("b");
  g.add_po("o", g.add_or(a2, b2));
  EXPECT_EQ(check_po_implication(f, 0, g, 0), CheckResult::kHolds);
  EXPECT_EQ(check_po_implication(g, 0, f, 0), CheckResult::kFails);
  // The counterexample must satisfy g and falsify f.
  uint64_t cex = last_counterexample();
  bool va = cex & 1, vb = (cex >> 1) & 1;
  EXPECT_TRUE(va || vb);
  EXPECT_FALSE(va && vb);
}

TEST(EncodeTest, ConstantNodes) {
  Network f;
  (void)f.add_pi("a");
  f.add_po("zero", f.add_const(false));
  Network g;
  NodeId a = g.add_pi("a");
  g.add_po("o", g.add_and(a, g.add_not(a)));
  EXPECT_EQ(check_po_equivalence(f, 0, g, 0), CheckResult::kHolds);
}

// Cross-check SAT-based equivalence against BDD evaluation on random nets.
class EncodeProperty : public ::testing::TestWithParam<int> {};

Network random_network(std::mt19937& rng, int pis, int gates) {
  Network net;
  std::vector<NodeId> pool;
  for (int i = 0; i < pis; ++i) pool.push_back(net.add_pi("p" + std::to_string(i)));
  for (int g = 0; g < gates; ++g) {
    NodeId a = pool[rng() % pool.size()];
    NodeId b = pool[rng() % pool.size()];
    switch (rng() % 4) {
      case 0:
        pool.push_back(net.add_and(a, b));
        break;
      case 1:
        pool.push_back(net.add_or(a, b));
        break;
      case 2:
        pool.push_back(net.add_xor(a, b));
        break;
      case 3:
        pool.push_back(net.add_not(a));
        break;
    }
  }
  net.add_po("f", pool.back());
  return net;
}

TEST_P(EncodeProperty, SatAgreesWithBddOnImplication) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    Network a = random_network(rng, 5, 15);
    Network b = random_network(rng, 5, 15);
    NetworkBdds abdd(a);
    // Build b in the same manager for a fair comparison.
    auto b_ref = build_po_bdd(abdd.manager(), b, 0);
    ASSERT_TRUE(b_ref.has_value());
    bool bdd_implies = abdd.manager().implies(abdd.po_ref(0), *b_ref);
    CheckResult sat_result = check_po_implication(a, 0, b, 0);
    EXPECT_EQ(sat_result == CheckResult::kHolds, bdd_implies) << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EncodeProperty,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace apx
