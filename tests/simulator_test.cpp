#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <random>

#include "bdd/network_bdd.hpp"

namespace apx {
namespace {

Network adder_bit() {
  // Full adder: sum = a^b^cin, cout = ab + cin(a^b).
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId cin = net.add_pi("cin");
  NodeId axb = net.add_xor(a, b, "axb");
  NodeId sum = net.add_xor(axb, cin, "sum");
  NodeId ab = net.add_and(a, b, "ab");
  NodeId c2 = net.add_and(cin, axb, "c2");
  NodeId cout = net.add_or(ab, c2, "cout");
  net.add_po("sum", sum);
  net.add_po("cout", cout);
  return net;
}

TEST(SimulatorTest, ExhaustiveFullAdder) {
  Network net = adder_bit();
  Simulator sim(net);
  sim.run(PatternSet::exhaustive(3));
  NodeId sum = net.po(0).driver;
  NodeId cout = net.po(1).driver;
  for (uint64_t m = 0; m < 8; ++m) {
    int a = m & 1, b = (m >> 1) & 1, c = (m >> 2) & 1;
    int expect_sum = a ^ b ^ c;
    int expect_cout = (a + b + c) >= 2;
    EXPECT_EQ((sim.value(sum)[0] >> m) & 1, static_cast<uint64_t>(expect_sum));
    EXPECT_EQ((sim.value(cout)[0] >> m) & 1,
              static_cast<uint64_t>(expect_cout));
  }
}

TEST(SimulatorTest, SignalProbabilityExhaustive) {
  Network net = adder_bit();
  Simulator sim(net);
  sim.run(PatternSet::exhaustive(3));
  // sum is 1 on 4/8 minterms; cout on 4/8.
  EXPECT_NEAR(sim.signal_probability(net.po(0).driver), 0.5, 1e-12);
  EXPECT_NEAR(sim.signal_probability(net.po(1).driver), 0.5, 1e-12);
  EXPECT_NEAR(sim.switching_activity(net.po(0).driver), 0.5, 1e-12);
}

TEST(SimulatorTest, RandomSimulationMatchesBdd) {
  std::mt19937 rng(7);
  for (int trial = 0; trial < 5; ++trial) {
    Network net;
    std::vector<NodeId> pool;
    for (int i = 0; i < 6; ++i) pool.push_back(net.add_pi("p" + std::to_string(i)));
    for (int g = 0; g < 25; ++g) {
      NodeId a = pool[rng() % pool.size()];
      NodeId b = pool[rng() % pool.size()];
      switch (rng() % 3) {
        case 0:
          pool.push_back(net.add_and(a, b));
          break;
        case 1:
          pool.push_back(net.add_or(a, b));
          break;
        case 2:
          pool.push_back(net.add_xor(a, b));
          break;
      }
    }
    net.add_po("f", pool.back());

    Simulator sim(net);
    sim.run(PatternSet::exhaustive(6));
    NetworkBdds bdds(net);
    EXPECT_NEAR(sim.signal_probability(net.po(0).driver),
                bdds.manager().sat_fraction(bdds.po_ref(0)), 1e-12);
  }
}

TEST(SimulatorTest, StuckFaultForcesValue) {
  Network net = adder_bit();
  Simulator sim(net);
  sim.run(PatternSet::exhaustive(3));
  NodeId axb = *net.find_node("axb");
  sim.inject({axb, true});
  EXPECT_EQ(sim.faulty_value(axb)[0], ~0ULL);
  // Downstream cone (sum) must differ where a^b == 0 -> sum flips.
  NodeId sum = net.po(0).driver;
  uint64_t golden = sim.value(sum)[0];
  uint64_t faulty = sim.faulty_value(sum)[0];
  for (uint64_t m = 0; m < 8; ++m) {
    int a = m & 1, b = (m >> 1) & 1, c = (m >> 2) & 1;
    bool expect_flip = (a ^ b) == 0;
    EXPECT_EQ(((golden ^ faulty) >> m) & 1, static_cast<uint64_t>(expect_flip))
        << m << " c=" << c;
  }
}

TEST(SimulatorTest, FaultOutsideConeLeavesGolden) {
  Network net = adder_bit();
  Simulator sim(net);
  sim.run(PatternSet::exhaustive(3));
  NodeId ab = *net.find_node("ab");
  NodeId sum = net.po(0).driver;
  sim.inject({ab, true});
  // sum does not depend on ab.
  EXPECT_EQ(sim.faulty_value(sum)[0], sim.value(sum)[0]);
  // cout does.
  NodeId cout = net.po(1).driver;
  EXPECT_NE(sim.faulty_value(cout)[0], sim.value(cout)[0]);
}

TEST(SimulatorTest, SuccessiveInjectionsAreIndependent) {
  Network net = adder_bit();
  Simulator sim(net);
  sim.run(PatternSet::exhaustive(3));
  NodeId sum = net.po(0).driver;
  sim.inject({*net.find_node("axb"), true});
  uint64_t first = sim.faulty_value(sum)[0];
  sim.inject({*net.find_node("ab"), true});
  // After the second injection, sum must read golden again (ab not in its
  // cone), not the stale value from the first fault.
  EXPECT_EQ(sim.faulty_value(sum)[0], sim.value(sum)[0]);
  sim.inject({*net.find_node("axb"), true});
  EXPECT_EQ(sim.faulty_value(sum)[0], first);
}

TEST(SimulatorTest, SecondRunInvalidatesPriorFaultValues) {
  // Regression for the epoch logic: a re-run with same-shaped patterns must
  // not leave stale faulty values readable (golden_ is reused in place).
  Network net = adder_bit();
  Simulator sim(net);
  sim.run(PatternSet::exhaustive(3));
  NodeId axb = *net.find_node("axb");
  sim.inject({axb, true});
  ASSERT_NE(sim.faulty_value(axb)[0], sim.value(axb)[0]);
  sim.run(PatternSet::exhaustive(3));  // same shape: no reallocation path
  EXPECT_EQ(sim.faulty_value(axb)[0], sim.value(axb)[0]);
  NodeId sum = net.po(0).driver;
  EXPECT_EQ(sim.faulty_value(sum)[0], sim.value(sum)[0]);
}

TEST(SimulatorTest, InjectForcedValidatesArguments) {
  Network net = adder_bit();
  Simulator sim(net);
  NodeId axb = *net.find_node("axb");
  // Before run(): no pattern shape to validate against.
  EXPECT_THROW(sim.inject_forced(axb, {}), std::logic_error);
  sim.run(PatternSet::exhaustive(3));  // 1 word
  EXPECT_THROW(sim.inject_forced(axb, std::vector<uint64_t>(2, 0)),
               std::logic_error);
  EXPECT_THROW(sim.inject_forced(kNullNode, std::vector<uint64_t>(1, 0)),
               std::logic_error);
  EXPECT_THROW(sim.inject_forced(net.num_nodes(), std::vector<uint64_t>(1, 0)),
               std::logic_error);
  // A well-formed call still works after the failed attempts.
  sim.inject_forced(axb, std::vector<uint64_t>(1, ~0ULL));
  EXPECT_EQ(sim.faulty_value(axb)[0], ~0ULL);
}

TEST(SimulatorTest, EnumerateFaultsCoversLogicNodesTwice) {
  Network net = adder_bit();
  auto faults = enumerate_faults(net);
  EXPECT_EQ(faults.size(), 2u * net.num_logic_nodes());
}

TEST(SimulatorTest, RandomPatternsAreReproducible) {
  PatternSet a = PatternSet::random(4, 3, 42);
  PatternSet b = PatternSet::random(4, 3, 42);
  PatternSet c = PatternSet::random(4, 3, 43);
  EXPECT_EQ(a.word(2, 1), b.word(2, 1));
  EXPECT_NE(a.word(2, 1), c.word(2, 1));
}

TEST(SimulatorTest, ExhaustiveSmallReplicates) {
  // 2 PIs -> 4 patterns replicated to fill 64 bits; probabilities exact.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  net.add_po("o", net.add_and(a, b));
  Simulator sim(net);
  sim.run(PatternSet::exhaustive(2));
  EXPECT_NEAR(sim.signal_probability(net.po(0).driver), 0.25, 1e-12);
}

}  // namespace
}  // namespace apx
