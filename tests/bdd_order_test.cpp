// Order-invariance and dynamic-reordering tests for the BDD manager's
// permutation layer (bdd.hpp): every query — evaluate, sat_count, implies,
// boolean_difference — must be bit-identical whether the manager runs the
// identity order, a random permutation, the structural static order
// (network/ordering.hpp), or sifts dynamically mid-build. The independent
// reference is the truth-table engine (src/tt), composed over the network.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/network_bdd.hpp"
#include "benchmarks/benchmarks.hpp"
#include "network/ordering.hpp"
#include "tt/truth_table.hpp"

namespace apx {
namespace {

Network random_network(std::mt19937& rng, int pis, int gates) {
  Network net;
  std::vector<NodeId> pool;
  for (int i = 0; i < pis; ++i) {
    pool.push_back(net.add_pi("p" + std::to_string(i)));
  }
  for (int g = 0; g < gates; ++g) {
    NodeId a = pool[rng() % pool.size()];
    NodeId b = pool[rng() % pool.size()];
    switch (rng() % 4) {
      case 0:
        pool.push_back(net.add_and(a, b));
        break;
      case 1:
        pool.push_back(net.add_or(a, b));
        break;
      case 2:
        pool.push_back(net.add_xor(a, b));
        break;
      case 3:
        pool.push_back(net.add_not(a));
        break;
    }
  }
  net.add_po("f", pool.back());
  net.add_po("g", pool[pool.size() / 2]);
  return net;
}

// Global truth table of every node, composed bottom-up with the tt engine
// (independent of the BDD package: different recursion, different memo).
std::vector<TruthTable> global_tables(const Network& net) {
  const int n = net.num_pis();
  std::vector<TruthTable> tt(net.num_nodes(), TruthTable::zeros(n));
  for (NodeId id : net.topo_order()) {
    const Node& node = net.node(id);
    switch (node.kind) {
      case NodeKind::kConst0:
        tt[id] = TruthTable::zeros(n);
        break;
      case NodeKind::kConst1:
        tt[id] = TruthTable::ones(n);
        break;
      case NodeKind::kPi:
        tt[id] = TruthTable::variable(n, net.pi_index(id));
        break;
      case NodeKind::kLogic: {
        TruthTable acc = TruthTable::zeros(n);
        for (const Cube& c : node.sop.cubes()) {
          TruthTable cube_tt = TruthTable::ones(n);
          for (int v = 0; v < c.num_vars(); ++v) {
            LitCode code = c.get(v);
            if (code == LitCode::kFree) continue;
            const TruthTable& fanin = tt[node.fanins[v]];
            cube_tt &= (code == LitCode::kPos) ? fanin : ~fanin;
          }
          acc |= cube_tt;
        }
        tt[id] = acc;
        break;
      }
    }
  }
  return tt;
}

double tt_count(const TruthTable& t) {
  double count = 0.0;
  for (uint64_t m = 0; m < (uint64_t{1} << t.num_vars()); ++m) {
    count += t.get(m) ? 1.0 : 0.0;
  }
  return count;
}

std::vector<int> random_order(int n, uint32_t seed) {
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::mt19937 rng(seed);
  std::shuffle(order.begin(), order.end(), rng);
  return order;
}

// One manager configuration under test: an explicit level_to_var order
// plus optionally forced sifting (tiny trigger threshold) mid-build.
struct OrderConfig {
  const char* name;
  std::vector<int> order;
  bool sift;
};

// Builds both PO cones under `cfg` and checks every query against the
// truth-table reference. Exercises the cooperative reorder path exactly
// the way NetworkBdds/ApproxOracle do (registered refs + polling).
void check_config(const Network& net, const std::vector<TruthTable>& tt,
                  const OrderConfig& cfg) {
  const int n = net.num_pis();
  BddManager mgr(n, 1u << 20, cfg.order);
  mgr.set_auto_reorder(cfg.sift);
  if (cfg.sift) mgr.set_reorder_threshold(48);

  std::vector<BddManager::Ref> po(net.num_pos(), BddManager::kInvalidRef);
  mgr.register_external_refs(&po);
  for (int i = 0; i < net.num_pos(); ++i) {
    auto ref = build_po_bdd(mgr, net, i);
    ASSERT_TRUE(ref.has_value()) << cfg.name;
    po[i] = *ref;
  }
  if (cfg.sift) {
    mgr.reorder();  // settle: refs in `po` are rewritten in place
    EXPECT_FALSE(mgr.reorder_pending());
  }

  // The permutation layer must remain a permutation whatever sifting did.
  std::vector<char> seen(n, 0);
  for (int l = 0; l < n; ++l) {
    int v = mgr.var_at_level(l);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, n);
    EXPECT_EQ(mgr.level_of_var(v), l) << cfg.name;
    EXPECT_FALSE(seen[v]) << cfg.name;
    seen[v] = 1;
  }

  for (int i = 0; i < net.num_pos(); ++i) {
    const TruthTable& ref_tt = tt[net.pos()[i].driver];
    for (uint64_t m = 0; m < (uint64_t{1} << n); ++m) {
      ASSERT_EQ(mgr.evaluate(po[i], m), ref_tt.get(m))
          << cfg.name << " po " << i << " minterm " << m;
    }
    // Counting and Boolean difference go through sat_fraction/cofactor,
    // which recurse by level: exact equality, not approximate.
    EXPECT_EQ(mgr.sat_count(po[i]), tt_count(ref_tt)) << cfg.name;
    for (int v = 0; v < n; ++v) {
      BddManager::Ref diff = mgr.boolean_difference(po[i], v);
      EXPECT_EQ(mgr.sat_count(diff), tt_count(ref_tt.boolean_difference(v)))
          << cfg.name << " po " << i << " var " << v;
    }
  }
  const TruthTable& f = tt[net.pos()[0].driver];
  const TruthTable& g = tt[net.pos()[1].driver];
  EXPECT_EQ(mgr.implies(po[0], po[1]), (f & ~g) == TruthTable::zeros(n))
      << cfg.name;
  mgr.unregister_external_refs(&po);
}

class BddOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(BddOrderProperty, QueriesInvariantUnderOrdering) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    const int pis = 6 + static_cast<int>(rng() % 5);  // 6..10 PIs
    Network net = random_network(rng, pis, 28);
    std::vector<TruthTable> tt = global_tables(net);
    std::vector<OrderConfig> configs;
    configs.push_back({"identity", {}, false});
    configs.push_back({"static", static_pi_order(net), false});
    configs.push_back({"random-a", random_order(pis, GetParam() * 31 + trial), false});
    configs.push_back({"random-b", random_order(pis, GetParam() * 57 + trial), false});
    configs.push_back({"identity+sift", {}, true});
    configs.push_back({"static+sift", static_pi_order(net), true});
    for (const OrderConfig& cfg : configs) check_config(net, tt, cfg);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddOrderProperty,
                         ::testing::Values(3, 17, 29, 71));

// Sifting keeps every externally held Ref valid: adjacent-level swaps are
// in place, and the GC phase rewrites registered vectors through the
// remap. Hold the full node-BDD vector of a comparator (the classic
// order-sensitive function), force repeated reorders, and re-check every
// node function after each one.
TEST(BddSifting, RefsSurviveRepeatedReorders) {
  Network net = make_comparator(6);  // 12 PIs, separated (bad) PI order
  std::vector<TruthTable> tt = global_tables(net);
  BddManager mgr(net.num_pis(), 1u << 20);  // identity order
  mgr.set_auto_reorder(false);

  std::vector<NodeId> roots;
  for (const PrimaryOutput& p : net.pos()) roots.push_back(p.driver);
  std::vector<BddManager::Ref> refs = build_cone_bdds(mgr, net, roots);
  mgr.register_external_refs(&refs);

  const size_t natural_size = mgr.live_nodes();
  for (int round = 0; round < 3; ++round) {
    mgr.reorder();
    for (NodeId id = 0; id < net.num_nodes(); ++id) {
      if (refs[id] == kNoBddRef) continue;
      for (uint64_t m = 0; m < (uint64_t{1} << net.num_pis()); m += 7) {
        ASSERT_EQ(mgr.evaluate(refs[id], m), tt[id].get(m))
            << "round " << round << " node " << id << " minterm " << m;
      }
    }
  }
  // The separated order is exponentially bad for a comparator; sifting
  // must find a materially smaller (interleaved-like) order.
  EXPECT_LT(mgr.live_nodes(), natural_size);
  EXPECT_GE(mgr.stats().reorder_runs, 3u);
  mgr.unregister_external_refs(&refs);
}

// Unregistered callers get the GC remap back from reorder() and must be
// able to chase their refs through it (garbage_collect contract).
TEST(BddSifting, ReorderRemapCoversExtraRoots) {
  Network net = make_comparator(4);
  std::vector<TruthTable> tt = global_tables(net);
  BddManager mgr(net.num_pis(), 1u << 20);
  mgr.set_auto_reorder(false);

  std::vector<NodeId> roots;
  for (const PrimaryOutput& p : net.pos()) roots.push_back(p.driver);
  std::vector<BddManager::Ref> refs = build_cone_bdds(mgr, net, roots);

  std::vector<BddManager::Ref> remap = mgr.reorder(refs);  // not registered
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    if (refs[id] == kNoBddRef) continue;
    BddManager::Ref moved = remap[refs[id]];
    ASSERT_NE(moved, BddManager::kInvalidRef);
    for (uint64_t m = 0; m < (uint64_t{1} << net.num_pis()); ++m) {
      ASSERT_EQ(mgr.evaluate(moved, m), tt[id].get(m));
    }
  }
}

// With no registered vectors and no extras, reorder() must not collect
// the arena out from under the caller: identity map, nothing freed.
TEST(BddSifting, ReorderWithoutRootsIsIdentity) {
  BddManager mgr(4);
  BddManager::Ref f = mgr.bdd_and(mgr.var(0), mgr.var(2));
  size_t before = mgr.live_nodes();
  std::vector<BddManager::Ref> remap = mgr.reorder();
  EXPECT_EQ(mgr.live_nodes(), before);
  EXPECT_EQ(remap[f], f);
  EXPECT_TRUE(mgr.evaluate(f, 0b0101));
}

// make_node only latches the trigger; reorder() clears it, shrinks the
// comparator, and backs the threshold off so it cannot thrash.
TEST(BddSifting, AutoTriggerLatchesAndClears) {
  Network net = make_comparator(8);  // 16 PIs: identity order blows up
  BddManager mgr(net.num_pis(), 1u << 20);
  mgr.set_auto_reorder(true);
  mgr.set_reorder_threshold(128);

  std::vector<NodeId> roots;
  for (const PrimaryOutput& p : net.pos()) roots.push_back(p.driver);
  // build_cone_bdds polls the latch and reorders internally; afterwards
  // the latch must be clear and at least one sift must have run.
  std::vector<BddManager::Ref> refs = build_cone_bdds(mgr, net, roots);
  EXPECT_FALSE(mgr.reorder_pending());
  EXPECT_GE(mgr.stats().reorder_runs, 1u);

  // Spot-check the comparator functions (a == b and a > b on 8+8 bits).
  std::mt19937 rng(99);
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng() % 256, b = rng() % 256;
    uint64_t input = a | (b << 8);
    EXPECT_EQ(mgr.evaluate(refs[roots[0]], input), a == b);
    EXPECT_EQ(mgr.evaluate(refs[roots[1]], input), a > b);
  }
}

// The static structural order alone (no sifting) must already beat the
// separated identity order on the comparator: interleaving is the known
// linear-size order for it.
TEST(BddOrdering, StaticOrderBeatsIdentityOnComparator) {
  Network net = make_comparator(8);
  size_t identity_size, static_size;
  {
    BddManager mgr(net.num_pis(), 1u << 20);
    mgr.set_auto_reorder(false);
    auto f = build_po_bdd(mgr, net, 1);
    ASSERT_TRUE(f.has_value());
    identity_size = mgr.size(*f);
  }
  {
    BddManager mgr(net.num_pis(), 1u << 20, static_pi_order(net));
    mgr.set_auto_reorder(false);
    auto f = build_po_bdd(mgr, net, 1);
    ASSERT_TRUE(f.has_value());
    static_size = mgr.size(*f);
  }
  EXPECT_LT(static_size * 4, identity_size);
}

// Regression (ISSUE 6 satellite): set_reorder_threshold must re-evaluate
// the latched request against the new threshold. Raising it above the
// current live count clears a pending reorder instead of forcing a
// spurious full sift at the next safe point; lowering it below the live
// count latches one without waiting for another make_node.
TEST(BddSifting, SetReorderThresholdReevaluatesLatch) {
  Network net = make_comparator(4);
  BddManager mgr(net.num_pis(), 1u << 20);
  mgr.set_auto_reorder(true);
  mgr.set_reorder_threshold(16);

  // Build WITHOUT polling the latch so it stays pending.
  std::vector<NodeId> roots;
  for (const PrimaryOutput& p : net.pos()) roots.push_back(p.driver);
  mgr.set_auto_reorder(false);
  std::vector<BddManager::Ref> refs = build_cone_bdds(mgr, net, roots);
  mgr.set_auto_reorder(true);
  mgr.set_reorder_threshold(16);  // live >> 16: latches immediately
  ASSERT_TRUE(mgr.reorder_pending());

  // Raising the threshold above the live count must clear the latch...
  mgr.set_reorder_threshold(2 * mgr.live_nodes());
  EXPECT_FALSE(mgr.reorder_pending());
  // ...and lowering it back below must re-latch.
  mgr.set_reorder_threshold(mgr.live_nodes() / 2);
  EXPECT_TRUE(mgr.reorder_pending());
  mgr.set_reorder_threshold(2 * mgr.live_nodes());
  EXPECT_FALSE(mgr.reorder_pending());
  EXPECT_EQ(mgr.stats().reorder_runs, 0u);  // latch games never sifted
}

// Regression (ISSUE 6 satellite): the sifting convergence check used a
// `prev / 50` tolerance, which is 0 for tables under 50 nodes — the pass
// loop then compared with zero slack instead of requiring a real gain.
// On a small, already-optimal table sifting must converge (single pass,
// no size growth, functions intact).
TEST(BddSifting, SmallTableConvergence) {
  Network net = make_comparator(2);  // 4 PIs: well under 50 nodes
  std::vector<TruthTable> tt = global_tables(net);
  BddManager mgr(net.num_pis(), 1u << 20);
  mgr.set_auto_reorder(false);
  std::vector<NodeId> roots;
  for (const PrimaryOutput& p : net.pos()) roots.push_back(p.driver);
  std::vector<BddManager::Ref> refs = build_cone_bdds(mgr, net, roots);
  mgr.register_external_refs(&refs);
  ASSERT_LT(mgr.live_nodes(), 50u);

  const size_t before = mgr.live_nodes();
  mgr.reorder();  // converges; the old zero-tolerance check is the bug
  EXPECT_LE(mgr.live_nodes(), before);
  EXPECT_EQ(mgr.stats().reorder_runs, 1u);
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    if (refs[id] == kNoBddRef) continue;
    for (uint64_t m = 0; m < (uint64_t{1} << net.num_pis()); ++m) {
      ASSERT_EQ(mgr.evaluate(refs[id], m), tt[id].get(m));
    }
  }
  mgr.unregister_external_refs(&refs);
}

// export_order round-trips through seed_order: a fresh manager seeded with
// a sifted manager's order carries the identical permutation.
TEST(BddOrdering, ExportSeedOrderRoundTrip) {
  Network net = make_comparator(6);
  BddManager mgr(net.num_pis(), 1u << 20, static_pi_order(net));
  mgr.set_auto_reorder(false);
  std::vector<NodeId> roots;
  for (const PrimaryOutput& p : net.pos()) roots.push_back(p.driver);
  std::vector<BddManager::Ref> refs = build_cone_bdds(mgr, net, roots);
  mgr.register_external_refs(&refs);
  mgr.reorder();
  std::vector<int> order = mgr.export_order();
  ASSERT_EQ(order.size(), static_cast<size_t>(net.num_pis()));
  mgr.unregister_external_refs(&refs);

  BddManager seeded(net.num_pis(), 1u << 20);
  seeded.seed_order(order);
  for (int l = 0; l < net.num_pis(); ++l) {
    EXPECT_EQ(seeded.var_at_level(l), mgr.var_at_level(l));
  }

  // Seeding is only legal before any internal node exists.
  BddManager dirty(net.num_pis(), 1u << 20);
  dirty.bdd_and(dirty.var(0), dirty.var(1));
  EXPECT_THROW(dirty.seed_order(order), std::logic_error);
  // And the permutation itself is validated.
  std::vector<int> bogus(net.num_pis(), 0);
  BddManager empty(net.num_pis(), 1u << 20);
  EXPECT_THROW(empty.seed_order(bogus), std::logic_error);
}

// The reorder budget absorbs requests while the arena stays at or below
// the budget: no sift, refs untouched, identity remap, and the skip is
// counted. Outgrowing the budget sifts as usual.
TEST(BddSifting, ReorderBudgetAbsorbsRequests) {
  Network net = make_comparator(6);
  BddManager mgr(net.num_pis(), 1u << 20, static_pi_order(net));
  mgr.set_auto_reorder(false);
  std::vector<NodeId> roots;
  for (const PrimaryOutput& p : net.pos()) roots.push_back(p.driver);
  std::vector<BddManager::Ref> refs = build_cone_bdds(mgr, net, roots);
  mgr.register_external_refs(&refs);

  mgr.set_reorder_budget(2 * mgr.live_nodes());
  std::vector<BddManager::Ref> before = refs;
  std::vector<BddManager::Ref> remap = mgr.reorder();
  EXPECT_EQ(mgr.stats().reorder_runs, 0u);
  EXPECT_EQ(mgr.stats().reorder_skipped, 1u);
  EXPECT_EQ(refs, before);  // identity: nothing moved
  for (BddManager::Ref r : before) {
    if (r != kNoBddRef) EXPECT_EQ(remap[r], r);
  }

  // Below-budget arena: a second request is absorbed too.
  mgr.reorder();
  EXPECT_EQ(mgr.stats().reorder_skipped, 2u);

  // Disarm the budget: the same request now really sifts.
  mgr.set_reorder_budget(0);
  mgr.reorder();
  EXPECT_EQ(mgr.stats().reorder_runs, 1u);
  mgr.unregister_external_refs(&refs);
}

// Seeding a converged order through the OrderCache must reproduce the
// cold-sift results bit-for-bit: same permutation, same query answers.
// This is the cache analogue of QueriesInvariantUnderOrdering — stronger,
// because the seeded manager must also skip re-sifting (budget armed).
TEST(OrderCacheTest, SeededOrderMatchesColdSift) {
  OrderCache::instance().clear();
  Network net = make_comparator(6);
  std::vector<TruthTable> tt = global_tables(net);

  // Cold build: miss, sift, store.
  std::vector<double> cold_counts;
  std::vector<int> cold_order;
  {
    NetworkBdds bdds(net);
    cold_order = bdds.manager().export_order();
    for (int po = 0; po < net.num_pos(); ++po) {
      cold_counts.push_back(bdds.manager().sat_count(bdds.po_ref(po)));
    }
  }
  ASSERT_GE(OrderCache::instance().stats().misses, 1u);
  ASSERT_GE(OrderCache::instance().stats().stores, 1u);

  // Warm rebuilds: hit, seeded, identical answers and order every time.
  for (int round = 0; round < 3; ++round) {
    uint64_t hits_before = OrderCache::instance().stats().hits;
    NetworkBdds bdds(net);
    EXPECT_GT(OrderCache::instance().stats().hits, hits_before);
    EXPECT_EQ(bdds.manager().export_order(), cold_order);
    for (int po = 0; po < net.num_pos(); ++po) {
      EXPECT_EQ(bdds.manager().sat_count(bdds.po_ref(po)),
                cold_counts[po]);
      const TruthTable& ref_tt = tt[net.pos()[po].driver];
      for (uint64_t m = 0; m < (uint64_t{1} << net.num_pis()); m += 5) {
        ASSERT_EQ(bdds.manager().evaluate(bdds.po_ref(po), m),
                  ref_tt.get(m));
      }
    }
  }
  OrderCache::instance().clear();
}

// Content-hash staleness: any mutation — a local SOP rewrite or a
// structural rewiring — moves the hash, so a stale converged order is
// unreachable by construction (the mutated network misses and re-sifts).
TEST(OrderCacheTest, MutationMovesContentHash) {
  Network net = make_comparator(4);
  Network clone = net;
  EXPECT_EQ(network_content_hash(net), network_content_hash(clone));

  // Local function change (bumps version, not structure_version).
  NodeId node = kNullNode;
  for (NodeId id = 0; id < clone.num_nodes(); ++id) {
    if (clone.node(id).kind == NodeKind::kLogic) {
      node = id;
      break;
    }
  }
  ASSERT_NE(node, kNullNode);
  uint64_t sv_before = clone.structure_version();
  clone.set_sop(node, Sop::zero(clone.node(node).sop.num_vars()));
  EXPECT_EQ(clone.structure_version(), sv_before);
  EXPECT_NE(network_content_hash(net), network_content_hash(clone));

  // Structural change (bumps structure_version): also moves the hash.
  Network clone2 = net;
  NodeId a = clone2.pis()[0];
  NodeId b = clone2.pis()[1];
  clone2.set_function(node, {a, b}, *Sop::parse(2, "11"));
  EXPECT_GT(clone2.structure_version(), net.structure_version());
  EXPECT_NE(network_content_hash(net), network_content_hash(clone2));
}

// Cache mechanics: width-mismatched hits are misses (hash-collision
// guard), keep-best stores prefer strictly smaller converged sizes, and
// clear() really empties.
TEST(OrderCacheTest, StorePolicyAndCollisionGuard) {
  OrderCache& cache = OrderCache::instance();
  cache.clear();
  const uint64_t key = 0xABCDEF;
  cache.store(key, {{1, 0, 2}, 100});
  ASSERT_TRUE(cache.lookup(key, 3).has_value());
  EXPECT_FALSE(cache.lookup(key, 4).has_value()) << "width mismatch = miss";

  cache.store(key, {{0, 1, 2}, 200});  // worse: rejected
  EXPECT_EQ(cache.lookup(key, 3)->converged_live, 100u);
  cache.store(key, {{2, 1, 0}, 50});  // better: replaces
  EXPECT_EQ(cache.lookup(key, 3)->converged_live, 50u);
  EXPECT_EQ(cache.lookup(key, 3)->level_to_var, (std::vector<int>{2, 1, 0}));
  EXPECT_GE(cache.stats().stores_rejected, 1u);

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.lookup(key, 3).has_value());
  cache.clear();
}

// The LRU cap bounds the process-wide cache: stores past the cap evict the
// least-recently-used entry (lookups and re-stores refresh recency), the
// eviction counter advances, and clear() restores the default capacity.
TEST(OrderCacheTest, LruCapEvictsLeastRecentlyUsed) {
  OrderCache& cache = OrderCache::instance();
  cache.clear();
  EXPECT_EQ(cache.max_entries(), OrderCache::kDefaultMaxEntries);
  cache.set_max_entries(3);
  cache.store(1, {{0}, 10});
  cache.store(2, {{0}, 10});
  cache.store(3, {{0}, 10});
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  ASSERT_TRUE(cache.lookup(1, 1).has_value());  // 1 is now most recent
  cache.store(4, {{0}, 10});                    // evicts LRU = 2
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.lookup(2, 1).has_value());
  EXPECT_TRUE(cache.lookup(1, 1).has_value());
  EXPECT_TRUE(cache.lookup(3, 1).has_value());
  EXPECT_TRUE(cache.lookup(4, 1).has_value());

  // A keep-best-rejected re-store still refreshes recency: the lookups
  // above (1, then 3, then 4) left 1 least-recent; re-storing 1 touches
  // it, so the next overflow must evict 3 instead.
  cache.store(1, {{0}, 99});  // rejected (worse), but touches
  cache.store(5, {{0}, 10});  // evicts LRU = 3
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_FALSE(cache.lookup(3, 1).has_value());
  EXPECT_TRUE(cache.lookup(1, 1).has_value());

  // Shrinking the cap below the current size evicts immediately.
  cache.set_max_entries(1);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.stats().evictions, 4u);

  cache.clear();
  EXPECT_EQ(cache.max_entries(), OrderCache::kDefaultMaxEntries);
}

// static_pi_order is a permutation of the PI indices for every benchmark
// circuit (the BddManager constructor asserts this too, but a direct test
// localizes failures to the heuristic).
TEST(BddOrdering, StaticOrderIsPermutation) {
  for (const std::string& name : benchmark_names()) {
    Network net = make_benchmark(name);
    std::vector<int> order = static_pi_order(net);
    ASSERT_EQ(order.size(), static_cast<size_t>(net.num_pis())) << name;
    std::vector<char> seen(net.num_pis(), 0);
    for (int v : order) {
      ASSERT_GE(v, 0) << name;
      ASSERT_LT(v, net.num_pis()) << name;
      EXPECT_FALSE(seen[v]) << name;
      seen[v] = 1;
    }
  }
}

}  // namespace
}  // namespace apx
