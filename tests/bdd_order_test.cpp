// Order-invariance and dynamic-reordering tests for the BDD manager's
// permutation layer (bdd.hpp): every query — evaluate, sat_count, implies,
// boolean_difference — must be bit-identical whether the manager runs the
// identity order, a random permutation, the structural static order
// (network/ordering.hpp), or sifts dynamically mid-build. The independent
// reference is the truth-table engine (src/tt), composed over the network.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include "bdd/bdd.hpp"
#include "bdd/network_bdd.hpp"
#include "benchmarks/benchmarks.hpp"
#include "network/ordering.hpp"
#include "tt/truth_table.hpp"

namespace apx {
namespace {

Network random_network(std::mt19937& rng, int pis, int gates) {
  Network net;
  std::vector<NodeId> pool;
  for (int i = 0; i < pis; ++i) {
    pool.push_back(net.add_pi("p" + std::to_string(i)));
  }
  for (int g = 0; g < gates; ++g) {
    NodeId a = pool[rng() % pool.size()];
    NodeId b = pool[rng() % pool.size()];
    switch (rng() % 4) {
      case 0:
        pool.push_back(net.add_and(a, b));
        break;
      case 1:
        pool.push_back(net.add_or(a, b));
        break;
      case 2:
        pool.push_back(net.add_xor(a, b));
        break;
      case 3:
        pool.push_back(net.add_not(a));
        break;
    }
  }
  net.add_po("f", pool.back());
  net.add_po("g", pool[pool.size() / 2]);
  return net;
}

// Global truth table of every node, composed bottom-up with the tt engine
// (independent of the BDD package: different recursion, different memo).
std::vector<TruthTable> global_tables(const Network& net) {
  const int n = net.num_pis();
  std::vector<TruthTable> tt(net.num_nodes(), TruthTable::zeros(n));
  for (NodeId id : net.topo_order()) {
    const Node& node = net.node(id);
    switch (node.kind) {
      case NodeKind::kConst0:
        tt[id] = TruthTable::zeros(n);
        break;
      case NodeKind::kConst1:
        tt[id] = TruthTable::ones(n);
        break;
      case NodeKind::kPi:
        tt[id] = TruthTable::variable(n, net.pi_index(id));
        break;
      case NodeKind::kLogic: {
        TruthTable acc = TruthTable::zeros(n);
        for (const Cube& c : node.sop.cubes()) {
          TruthTable cube_tt = TruthTable::ones(n);
          for (int v = 0; v < c.num_vars(); ++v) {
            LitCode code = c.get(v);
            if (code == LitCode::kFree) continue;
            const TruthTable& fanin = tt[node.fanins[v]];
            cube_tt &= (code == LitCode::kPos) ? fanin : ~fanin;
          }
          acc |= cube_tt;
        }
        tt[id] = acc;
        break;
      }
    }
  }
  return tt;
}

double tt_count(const TruthTable& t) {
  double count = 0.0;
  for (uint64_t m = 0; m < (uint64_t{1} << t.num_vars()); ++m) {
    count += t.get(m) ? 1.0 : 0.0;
  }
  return count;
}

std::vector<int> random_order(int n, uint32_t seed) {
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::mt19937 rng(seed);
  std::shuffle(order.begin(), order.end(), rng);
  return order;
}

// One manager configuration under test: an explicit level_to_var order
// plus optionally forced sifting (tiny trigger threshold) mid-build.
struct OrderConfig {
  const char* name;
  std::vector<int> order;
  bool sift;
};

// Builds both PO cones under `cfg` and checks every query against the
// truth-table reference. Exercises the cooperative reorder path exactly
// the way NetworkBdds/ApproxOracle do (registered refs + polling).
void check_config(const Network& net, const std::vector<TruthTable>& tt,
                  const OrderConfig& cfg) {
  const int n = net.num_pis();
  BddManager mgr(n, 1u << 20, cfg.order);
  mgr.set_auto_reorder(cfg.sift);
  if (cfg.sift) mgr.set_reorder_threshold(48);

  std::vector<BddManager::Ref> po(net.num_pos(), BddManager::kInvalidRef);
  mgr.register_external_refs(&po);
  for (int i = 0; i < net.num_pos(); ++i) {
    auto ref = build_po_bdd(mgr, net, i);
    ASSERT_TRUE(ref.has_value()) << cfg.name;
    po[i] = *ref;
  }
  if (cfg.sift) {
    mgr.reorder();  // settle: refs in `po` are rewritten in place
    EXPECT_FALSE(mgr.reorder_pending());
  }

  // The permutation layer must remain a permutation whatever sifting did.
  std::vector<char> seen(n, 0);
  for (int l = 0; l < n; ++l) {
    int v = mgr.var_at_level(l);
    ASSERT_GE(v, 0);
    ASSERT_LT(v, n);
    EXPECT_EQ(mgr.level_of_var(v), l) << cfg.name;
    EXPECT_FALSE(seen[v]) << cfg.name;
    seen[v] = 1;
  }

  for (int i = 0; i < net.num_pos(); ++i) {
    const TruthTable& ref_tt = tt[net.pos()[i].driver];
    for (uint64_t m = 0; m < (uint64_t{1} << n); ++m) {
      ASSERT_EQ(mgr.evaluate(po[i], m), ref_tt.get(m))
          << cfg.name << " po " << i << " minterm " << m;
    }
    // Counting and Boolean difference go through sat_fraction/cofactor,
    // which recurse by level: exact equality, not approximate.
    EXPECT_EQ(mgr.sat_count(po[i]), tt_count(ref_tt)) << cfg.name;
    for (int v = 0; v < n; ++v) {
      BddManager::Ref diff = mgr.boolean_difference(po[i], v);
      EXPECT_EQ(mgr.sat_count(diff), tt_count(ref_tt.boolean_difference(v)))
          << cfg.name << " po " << i << " var " << v;
    }
  }
  const TruthTable& f = tt[net.pos()[0].driver];
  const TruthTable& g = tt[net.pos()[1].driver];
  EXPECT_EQ(mgr.implies(po[0], po[1]), (f & ~g) == TruthTable::zeros(n))
      << cfg.name;
  mgr.unregister_external_refs(&po);
}

class BddOrderProperty : public ::testing::TestWithParam<int> {};

TEST_P(BddOrderProperty, QueriesInvariantUnderOrdering) {
  std::mt19937 rng(GetParam());
  for (int trial = 0; trial < 4; ++trial) {
    const int pis = 6 + static_cast<int>(rng() % 5);  // 6..10 PIs
    Network net = random_network(rng, pis, 28);
    std::vector<TruthTable> tt = global_tables(net);
    std::vector<OrderConfig> configs;
    configs.push_back({"identity", {}, false});
    configs.push_back({"static", static_pi_order(net), false});
    configs.push_back({"random-a", random_order(pis, GetParam() * 31 + trial), false});
    configs.push_back({"random-b", random_order(pis, GetParam() * 57 + trial), false});
    configs.push_back({"identity+sift", {}, true});
    configs.push_back({"static+sift", static_pi_order(net), true});
    for (const OrderConfig& cfg : configs) check_config(net, tt, cfg);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BddOrderProperty,
                         ::testing::Values(3, 17, 29, 71));

// Sifting keeps every externally held Ref valid: adjacent-level swaps are
// in place, and the GC phase rewrites registered vectors through the
// remap. Hold the full node-BDD vector of a comparator (the classic
// order-sensitive function), force repeated reorders, and re-check every
// node function after each one.
TEST(BddSifting, RefsSurviveRepeatedReorders) {
  Network net = make_comparator(6);  // 12 PIs, separated (bad) PI order
  std::vector<TruthTable> tt = global_tables(net);
  BddManager mgr(net.num_pis(), 1u << 20);  // identity order
  mgr.set_auto_reorder(false);

  std::vector<NodeId> roots;
  for (const PrimaryOutput& p : net.pos()) roots.push_back(p.driver);
  std::vector<BddManager::Ref> refs = build_cone_bdds(mgr, net, roots);
  mgr.register_external_refs(&refs);

  const size_t natural_size = mgr.live_nodes();
  for (int round = 0; round < 3; ++round) {
    mgr.reorder();
    for (NodeId id = 0; id < net.num_nodes(); ++id) {
      if (refs[id] == kNoBddRef) continue;
      for (uint64_t m = 0; m < (uint64_t{1} << net.num_pis()); m += 7) {
        ASSERT_EQ(mgr.evaluate(refs[id], m), tt[id].get(m))
            << "round " << round << " node " << id << " minterm " << m;
      }
    }
  }
  // The separated order is exponentially bad for a comparator; sifting
  // must find a materially smaller (interleaved-like) order.
  EXPECT_LT(mgr.live_nodes(), natural_size);
  EXPECT_GE(mgr.stats().reorder_runs, 3u);
  mgr.unregister_external_refs(&refs);
}

// Unregistered callers get the GC remap back from reorder() and must be
// able to chase their refs through it (garbage_collect contract).
TEST(BddSifting, ReorderRemapCoversExtraRoots) {
  Network net = make_comparator(4);
  std::vector<TruthTable> tt = global_tables(net);
  BddManager mgr(net.num_pis(), 1u << 20);
  mgr.set_auto_reorder(false);

  std::vector<NodeId> roots;
  for (const PrimaryOutput& p : net.pos()) roots.push_back(p.driver);
  std::vector<BddManager::Ref> refs = build_cone_bdds(mgr, net, roots);

  std::vector<BddManager::Ref> remap = mgr.reorder(refs);  // not registered
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    if (refs[id] == kNoBddRef) continue;
    BddManager::Ref moved = remap[refs[id]];
    ASSERT_NE(moved, BddManager::kInvalidRef);
    for (uint64_t m = 0; m < (uint64_t{1} << net.num_pis()); ++m) {
      ASSERT_EQ(mgr.evaluate(moved, m), tt[id].get(m));
    }
  }
}

// With no registered vectors and no extras, reorder() must not collect
// the arena out from under the caller: identity map, nothing freed.
TEST(BddSifting, ReorderWithoutRootsIsIdentity) {
  BddManager mgr(4);
  BddManager::Ref f = mgr.bdd_and(mgr.var(0), mgr.var(2));
  size_t before = mgr.live_nodes();
  std::vector<BddManager::Ref> remap = mgr.reorder();
  EXPECT_EQ(mgr.live_nodes(), before);
  EXPECT_EQ(remap[f], f);
  EXPECT_TRUE(mgr.evaluate(f, 0b0101));
}

// make_node only latches the trigger; reorder() clears it, shrinks the
// comparator, and backs the threshold off so it cannot thrash.
TEST(BddSifting, AutoTriggerLatchesAndClears) {
  Network net = make_comparator(8);  // 16 PIs: identity order blows up
  BddManager mgr(net.num_pis(), 1u << 20);
  mgr.set_auto_reorder(true);
  mgr.set_reorder_threshold(128);

  std::vector<NodeId> roots;
  for (const PrimaryOutput& p : net.pos()) roots.push_back(p.driver);
  // build_cone_bdds polls the latch and reorders internally; afterwards
  // the latch must be clear and at least one sift must have run.
  std::vector<BddManager::Ref> refs = build_cone_bdds(mgr, net, roots);
  EXPECT_FALSE(mgr.reorder_pending());
  EXPECT_GE(mgr.stats().reorder_runs, 1u);

  // Spot-check the comparator functions (a == b and a > b on 8+8 bits).
  std::mt19937 rng(99);
  for (int i = 0; i < 200; ++i) {
    uint64_t a = rng() % 256, b = rng() % 256;
    uint64_t input = a | (b << 8);
    EXPECT_EQ(mgr.evaluate(refs[roots[0]], input), a == b);
    EXPECT_EQ(mgr.evaluate(refs[roots[1]], input), a > b);
  }
}

// The static structural order alone (no sifting) must already beat the
// separated identity order on the comparator: interleaving is the known
// linear-size order for it.
TEST(BddOrdering, StaticOrderBeatsIdentityOnComparator) {
  Network net = make_comparator(8);
  size_t identity_size, static_size;
  {
    BddManager mgr(net.num_pis(), 1u << 20);
    mgr.set_auto_reorder(false);
    auto f = build_po_bdd(mgr, net, 1);
    ASSERT_TRUE(f.has_value());
    identity_size = mgr.size(*f);
  }
  {
    BddManager mgr(net.num_pis(), 1u << 20, static_pi_order(net));
    mgr.set_auto_reorder(false);
    auto f = build_po_bdd(mgr, net, 1);
    ASSERT_TRUE(f.has_value());
    static_size = mgr.size(*f);
  }
  EXPECT_LT(static_size * 4, identity_size);
}

// static_pi_order is a permutation of the PI indices for every benchmark
// circuit (the BddManager constructor asserts this too, but a direct test
// localizes failures to the heuristic).
TEST(BddOrdering, StaticOrderIsPermutation) {
  for (const std::string& name : benchmark_names()) {
    Network net = make_benchmark(name);
    std::vector<int> order = static_pi_order(net);
    ASSERT_EQ(order.size(), static_cast<size_t>(net.num_pis())) << name;
    std::vector<char> seen(net.num_pis(), 0);
    for (int v : order) {
      ASSERT_GE(v, 0) << name;
      ASSERT_LT(v, net.num_pis()) << name;
      EXPECT_FALSE(seen[v]) << name;
      seen[v] = 1;
    }
  }
}

}  // namespace
}  // namespace apx
