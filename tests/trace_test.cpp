// Tests for the pipeline observability layer (core/trace.hpp): disabled-mode
// zero-cost contract, span nesting / self-time accounting, counter atomicity
// under the shared task pool, and the Chrome-tracing / JSON exporters.
#include "core/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/task_pool.hpp"

// Global allocation counter: the disabled-mode test asserts that spans and
// counter updates do not allocate (or do anything else measurable) when
// tracing is off.
namespace {
std::atomic<int64_t> g_allocs{0};
}

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace apx {
namespace {

void busy_wait_ms(int ms) {
  auto until =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < until) {
  }
}

const trace::PhaseStat* find_phase(const std::vector<trace::PhaseStat>& ps,
                                   const std::string& name) {
  for (const trace::PhaseStat& p : ps) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

const trace::CounterStat* find_counter(
    const std::vector<trace::CounterStat>& cs, const std::string& name) {
  for (const trace::CounterStat& c : cs) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

TEST(TraceTest, DisabledModeIsFree) {
  trace::set_trace_enabled(false);
  trace::reset();
  // Registering the counters may allocate; the hot loop below must not.
  trace::Counter& mono = trace::counter("test.disabled_mono");
  trace::Counter& gauge =
      trace::counter("test.disabled_gauge", trace::CounterKind::kGauge);

  const int64_t allocs_before = g_allocs.load();
  for (int i = 0; i < 1000; ++i) {
    trace::Span span("test.disabled_span");
    mono.add(1);
    gauge.set_max(i);
  }
  const int64_t allocs_after = g_allocs.load();

  EXPECT_EQ(allocs_after, allocs_before)
      << "disabled spans/counters must not allocate";
  EXPECT_EQ(mono.value(), 0) << "disabled counter adds must be dropped";
  EXPECT_EQ(gauge.value(), 0);
  EXPECT_EQ(find_phase(trace::phase_summary(), "test.disabled_span"), nullptr)
      << "disabled spans must not be recorded";
}

TEST(TraceTest, SpanNestingAndSelfTime) {
  trace::reset();
  trace::set_trace_enabled(true);
  {
    trace::Span outer("test.outer");
    busy_wait_ms(2);
    {
      trace::Span inner("test.inner");
      busy_wait_ms(2);
    }
  }
  trace::set_trace_enabled(false);

  std::vector<trace::PhaseStat> phases = trace::phase_summary();
  const trace::PhaseStat* outer = find_phase(phases, "test.outer");
  const trace::PhaseStat* inner = find_phase(phases, "test.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1);
  EXPECT_EQ(inner->count, 1);
  EXPECT_GE(outer->total_ms, inner->total_ms);
  // Nested child time is charged to the child: parent self = total - child.
  EXPECT_NEAR(outer->self_ms, outer->total_ms - inner->total_ms, 1e-6);
  // A leaf span's self time is its whole duration.
  EXPECT_NEAR(inner->self_ms, inner->total_ms, 1e-9);
}

TEST(TraceTest, CountersAtomicUnderTaskPool) {
  trace::reset();
  trace::set_trace_enabled(true);

  // Same name resolves to the same counter object from any call site.
  trace::Counter& mono = trace::counter("test.pool_mono");
  EXPECT_EQ(&mono, &trace::counter("test.pool_mono"));
  trace::Counter& gauge =
      trace::counter("test.pool_gauge", trace::CounterKind::kGauge);

  constexpr int64_t kN = 20000;
  TaskPool::instance().parallel_for(
      0, kN,
      [&](int64_t i) {
        mono.add(1);
        gauge.set_max(i);
        trace::Span span("test.pool_span");
      },
      4);
  trace::set_trace_enabled(false);

  EXPECT_EQ(mono.value(), kN);
  EXPECT_EQ(gauge.value(), kN - 1);
  const trace::PhaseStat* span = find_phase(trace::phase_summary(),
                                            "test.pool_span");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->count, kN);
}

TEST(TraceTest, ChromeTraceExportHasPerThreadTracks) {
  trace::reset();
  trace::set_trace_enabled(true);
  trace::counter("test.export_ctr").add(7);
  {
    trace::Span main_span("test.main_thread");
    busy_wait_ms(1);
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([] {
      trace::Span span("test.worker_thread");
      busy_wait_ms(1);
    });
  }
  for (std::thread& t : threads) t.join();
  trace::set_trace_enabled(false);

  const std::string path =
      ::testing::TempDir() + "apx_trace_test_export.json";
  trace::write_chrome_trace(path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"test.main_thread\""), std::string::npos);
  EXPECT_NE(text.find("\"test.worker_thread\""), std::string::npos);
  EXPECT_NE(text.find("\"test.export_ctr\""), std::string::npos);

  // Spans from distinct threads land on distinct tid tracks.
  std::vector<std::string> tids;
  for (size_t pos = 0; (pos = text.find("\"tid\": ", pos)) !=
                       std::string::npos;
       ++pos) {
    size_t end = text.find_first_of(",}", pos);
    std::string tid = text.substr(pos, end - pos);
    if (std::find(tids.begin(), tids.end(), tid) == tids.end()) {
      tids.push_back(tid);
    }
  }
  EXPECT_GE(tids.size(), 3u) << "main + 2 worker threads";

  // Brace balance as a cheap well-formedness check (CI re-parses the file
  // with a real JSON parser).
  int64_t depth = 0;
  for (char c : text) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(TraceTest, SummaryJsonAndReset) {
  trace::reset();
  trace::set_trace_enabled(true);
  {
    trace::Span span("test.summary_span");
  }
  trace::counter("test.summary_ctr").add(3);
  trace::set_trace_enabled(false);

  const std::string json = trace::summary_json();
  EXPECT_NE(json.find("\"phases\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"test.summary_span\""), std::string::npos);
  EXPECT_NE(json.find("\"test.summary_ctr\""), std::string::npos);

  const trace::CounterStat* ctr =
      find_counter(trace::counter_summary(), "test.summary_ctr");
  ASSERT_NE(ctr, nullptr);
  EXPECT_EQ(ctr->value, 3);

  trace::reset();
  EXPECT_EQ(find_phase(trace::phase_summary(), "test.summary_span"), nullptr);
  ctr = find_counter(trace::counter_summary(), "test.summary_ctr");
  ASSERT_NE(ctr, nullptr) << "reset zeroes counters but keeps them registered";
  EXPECT_EQ(ctr->value, 0);
}

}  // namespace
}  // namespace apx
