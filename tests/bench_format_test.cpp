#include "network/bench_format.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "benchmarks/benchmarks.hpp"
#include "sat/encode.hpp"
#include "sim/simulator.hpp"

namespace apx {
namespace {

const char* kC17Bench = R"(
# c17 in ISCAS89-style .bench
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

TEST(BenchFormatTest, ParsesC17AndMatchesEmbedded) {
  Network parsed = read_bench_string(kC17Bench);
  Network embedded = make_c17();
  ASSERT_EQ(parsed.num_pis(), embedded.num_pis());
  for (int o = 0; o < 2; ++o) {
    EXPECT_EQ(check_po_equivalence(parsed, o, embedded, o),
              CheckResult::kHolds);
  }
}

TEST(BenchFormatTest, GateVocabulary) {
  const char* text = R"(
INPUT(a)
INPUT(b)
OUTPUT(o1)
OUTPUT(o2)
OUTPUT(o3)
OUTPUT(o4)
o1 = XOR(a, b)
o2 = XNOR(a, b)
o3 = NOR(a, b)
o4 = BUFF(a)
)";
  Network net = read_bench_string(text);
  Simulator sim(net);
  sim.run(PatternSet::exhaustive(2));
  auto bits = [&](int po) { return sim.value(net.po(po).driver)[0] & 0xF; };
  EXPECT_EQ(bits(0), 0b0110u);  // XOR
  EXPECT_EQ(bits(1), 0b1001u);  // XNOR
  EXPECT_EQ(bits(2), 0b0001u);  // NOR
  EXPECT_EQ(bits(3), 0b1010u);  // BUFF(a)
}

TEST(BenchFormatTest, OutOfOrderDefinitions) {
  const char* text = R"(
INPUT(a)
OUTPUT(y)
y = NOT(t)
t = BUF(a)
)";
  Network net = read_bench_string(text);
  net.check();
  EXPECT_EQ(net.num_logic_nodes(), 2);
}

TEST(BenchFormatTest, RoundTripArbitraryNetwork) {
  Network net = make_benchmark("cmp4");
  std::string text = write_bench_string(net);
  Network back = read_bench_string(text);
  for (int o = 0; o < net.num_pos(); ++o) {
    EXPECT_EQ(check_po_equivalence(net, o, back, o), CheckResult::kHolds)
        << "po " << o;
  }
}

// Schema check on the committed BENCH_pipeline.json perf artifact (written
// by bench/bench_pipeline.cpp, fields documented in EXPERIMENTS.md). The
// repo carries no JSON dependency, so the check is structural: every
// required top-level and per-row key must appear, the braces/brackets of
// the hand-rolled fprintf writer must balance, and the committed artifact
// must record a bit-identical 1-vs-N run (the tentpole determinism claim).
TEST(BenchJsonTest, PipelineArtifactSchema) {
  const std::string path = std::string(APX_REPO_ROOT) + "/BENCH_pipeline.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing committed artifact: " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  const char* top_level[] = {
      "\"suite\"",           "\"fault_samples\"",
      "\"hardware_concurrency\"", "\"threads_parallel\"",
      "\"serial_seconds\"",  "\"parallel_seconds\"",
      "\"speedup\"",         "\"speedup_gate\"",
      "\"gate_enforced\"",   "\"rows_bit_identical\"",
      "\"profiled_identical\"", "\"phases\"",
      "\"counters\"",        "\"rows\"",
      // Host metadata: a `gate_enforced: false` artifact from a small
      // runner must say so in a machine-checkable way.
      "\"host_cores\"",      "\"thread_policy\"",
      "\"simd_width_bits\"", "\"simd_policy\"",
  };
  for (const char* key : top_level) {
    EXPECT_NE(text.find(key), std::string::npos) << "missing key " << key;
  }
  const char* per_row[] = {
      "\"circuit\"",      "\"gates\"",        "\"checkgen_gates\"",
      "\"approx_pct\"",   "\"coverage_pct\"", "\"area_overhead_pct\"",
      "\"erroneous\"",    "\"detected\"",
  };
  for (const char* key : per_row) {
    EXPECT_NE(text.find(key), std::string::npos) << "missing key " << key;
  }

  EXPECT_NE(text.find("\"rows_bit_identical\": true"), std::string::npos)
      << "committed artifact must record a bit-identical 1-vs-N run";
  EXPECT_NE(text.find("\"profiled_identical\": true"), std::string::npos)
      << "traced rerun must reproduce the rows bit-for-bit";

  // Per-phase breakdown entries from the traced pass.
  const char* per_phase[] = {
      "\"name\"", "\"count\"", "\"total_ms\"", "\"self_ms\"",
  };
  for (const char* key : per_phase) {
    EXPECT_NE(text.find(key), std::string::npos) << "missing key " << key;
  }
  EXPECT_NE(text.find("\"pipeline\""), std::string::npos)
      << "phases must include the whole-pipeline span";

  // Order-cache counters from the traced pass: the committed artifact must
  // show the cache in play (the CI gate checks the values; here only their
  // presence is structural).
  EXPECT_NE(text.find("\"bdd.order_cache_hits\""), std::string::npos);
  EXPECT_NE(text.find("\"bdd.order_cache_misses\""), std::string::npos);

  int braces = 0, brackets = 0;
  for (char c : text) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

// Same structural schema check for the committed BENCH_bdd.json artifact
// (written by bench/bench_bdd.cpp): the variable-ordering gates the CI run
// enforces must be recorded as passing in the committed snapshot.
TEST(BenchJsonTest, BddArtifactSchema) {
  const std::string path = std::string(APX_REPO_ROOT) + "/BENCH_bdd.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing committed artifact: " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  const char* top_level[] = {
      "\"bdd_budget\"",
      "\"threads\"",
      "\"circuits\"",
      "\"circuits_with_2x_reduction\"",
      "\"sift_peak_le_natural_all\"",
      "\"fallbacks\"",
      "\"orderings_bit_identical\"",
      "\"parallel_bit_identical\"",
      "\"host_cores\"",
      "\"thread_policy\"",
      "\"simd_width_bits\"",
      "\"simd_policy\"",
  };
  for (const char* key : top_level) {
    EXPECT_NE(text.find(key), std::string::npos) << "missing key " << key;
  }
  const char* per_row[] = {
      "\"name\"",          "\"pis\"",
      "\"pos\"",           "\"gates\"",
      "\"natural\"",       "\"static\"",
      "\"static_sift\"",   "\"peak_nodes\"",
      "\"build_seconds\"", "\"fallbacks\"",
      "\"reorder_runs\"",  "\"reorder_time_ms\"",
      "\"avg_probe_length\"", "\"peak_reduction_vs_natural\"",
      "\"results_bit_identical\"",
  };
  for (const char* key : per_row) {
    EXPECT_NE(text.find(key), std::string::npos) << "missing key " << key;
  }

  // The committed snapshot must show every ordering gate green.
  EXPECT_NE(text.find("\"sift_peak_le_natural_all\": true"), std::string::npos);
  EXPECT_NE(text.find("\"orderings_bit_identical\": true"), std::string::npos);
  EXPECT_NE(text.find("\"parallel_bit_identical\": true"), std::string::npos);

  int braces = 0, brackets = 0;
  for (char c : text) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

// Same structural schema check for the committed BENCH_faultsim.json
// artifact (written by bench/bench_faultsim.cpp): the thread-scaling rows,
// the per-SIMD-width rows, and both bit-identity claims (any thread count x
// any SIMD width) must be present and recorded as holding.
TEST(BenchJsonTest, FaultsimArtifactSchema) {
  const std::string path = std::string(APX_REPO_ROOT) + "/BENCH_faultsim.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing committed artifact: " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  const char* top_level[] = {
      "\"circuit\"",
      "\"ced_nodes\"",
      "\"functional_gates\"",
      "\"fault_samples\"",
      "\"words_per_fault\"",
      "\"vectors_per_fault\"",
      "\"baseline_per_fault_rerun\"",
      "\"engine\"",
      "\"simd\"",
      "\"sweep_words\"",
      "\"sweep_reps\"",
      "\"speedup_single_thread\"",
      "\"simd_speedup\"",
      "\"simd_speedup_gate\"",
      "\"simd_gate_enforced\"",
      "\"widths_bit_identical\"",
      "\"threads_bit_identical\"",
      "\"host_cores\"",
      "\"thread_policy\"",
      "\"simd_width_bits\"",
      "\"simd_policy\"",
  };
  for (const char* key : top_level) {
    EXPECT_NE(text.find(key), std::string::npos) << "missing key " << key;
  }
  const char* per_width[] = {
      "\"tier\"",
      "\"width_bits\"",
      "\"substrate_seconds\"",
      "\"substrate_patterns_per_sec\"",
      "\"plane_checksum\"",
      "\"engine_seconds\"",
      "\"engine_patterns_per_sec\"",
      "\"coverage_pct\"",
  };
  for (const char* key : per_width) {
    EXPECT_NE(text.find(key), std::string::npos) << "missing key " << key;
  }
  // The scalar row always exists (every host runs the portable kernel).
  EXPECT_NE(text.find("\"tier\": \"scalar\""), std::string::npos);

  // Per-fault-model coverage rows: every CED scheme measured under every
  // fault model, each with its own replayed thread/width identity bits.
  const char* per_model[] = {
      "\"fault_model_samples\"",
      "\"fault_models\"",
      "\"scheme\"",
      "\"model\"",
      "\"erroneous\"",
      "\"detected\"",
      "\"models_bit_identical\"",
  };
  for (const char* key : per_model) {
    EXPECT_NE(text.find(key), std::string::npos) << "missing key " << key;
  }
  for (const char* scheme : {"approx_ced", "duplication", "parity"}) {
    EXPECT_NE(text.find("\"scheme\": \"" + std::string(scheme) + "\""),
              std::string::npos)
        << "missing scheme row " << scheme;
  }
  for (const char* model :
       {"single_stuck_at", "multi_stuck_at", "transient_burst"}) {
    EXPECT_NE(text.find("\"model\": \"" + std::string(model) + "\""),
              std::string::npos)
        << "missing model row " << model;
  }

  // All determinism claims must hold in the committed snapshot.
  EXPECT_NE(text.find("\"threads_bit_identical\": true"), std::string::npos)
      << "committed artifact must record a bit-identical 1-vs-N thread run";
  EXPECT_NE(text.find("\"widths_bit_identical\": true"), std::string::npos)
      << "committed artifact must record bit-identical SIMD tiers";
  EXPECT_NE(text.find("\"models_bit_identical\": true"), std::string::npos)
      << "every fault-model row must replay bit-identically";
  EXPECT_EQ(text.find("\"threads_bit_identical\": false"), std::string::npos);
  EXPECT_EQ(text.find("\"widths_bit_identical\": false"), std::string::npos);

  int braces = 0, brackets = 0;
  for (char c : text) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

// Same structural schema check for the committed BENCH_aig.json artifact
// (written by bench/bench_aig.cpp): the AIG quick-synthesis scale gates
// must be recorded as passing in the committed snapshot.
TEST(BenchJsonTest, AigArtifactSchema) {
  const std::string path = std::string(APX_REPO_ROOT) + "/BENCH_aig.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing committed artifact: " << path;
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  const char* top_level[] = {
      "\"blif\"",
      "\"circuits\"",
      "\"suite_round_trip\"",
      "\"round_trip_equivalent\"",
      "\"aes_rp_and_reduction_pct\"",
      "\"reduction_gate_pct\"",
      "\"e2e\"",
      "\"e2e_budget_seconds\"",
      "\"scale_gate_gates\"",
      "\"gates_pass\"",
      "\"host_cores\"",
      "\"thread_policy\"",
      "\"simd_width_bits\"",
      "\"simd_policy\"",
  };
  for (const char* key : top_level) {
    EXPECT_NE(text.find(key), std::string::npos) << "missing key " << key;
  }
  const char* per_row[] = {
      "\"name\"",
      "\"logic_nodes\"",
      "\"to_aig_seconds\"",
      "\"ands_before\"",
      "\"rewrite_seconds\"",
      "\"ands_after\"",
      "\"and_reduction_pct\"",
      "\"rewrite_passes\"",
      "\"cuts_enumerated\"",
      "\"cuts_per_sec\"",
      "\"to_network_seconds\"",
      "\"round_trip_seconds\"",
      "\"sim_equivalent\"",
  };
  for (const char* key : per_row) {
    EXPECT_NE(text.find(key), std::string::npos) << "missing key " << key;
  }
  const char* blif_keys[] = {
      "\"lines\"",
      "\"parse_seconds\"",
      "\"lines_per_sec\"",
      "\"reverse_lines\"",
      "\"reverse_parse_seconds\"",
      "\"round_trip_sim_equivalent\": true",
  };
  for (const char* key : blif_keys) {
    EXPECT_NE(text.find(key), std::string::npos) << "missing key " << key;
  }
  // Both large benchmarks and the e2e circuit must be present.
  EXPECT_NE(text.find("\"name\": \"mult32\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"aes_rp\""), std::string::npos);
  EXPECT_NE(text.find("\"mapped_gates\""), std::string::npos);
  EXPECT_NE(text.find("\"pipeline_seconds\""), std::string::npos);

  // The committed snapshot must show every scale gate green.
  EXPECT_NE(text.find("\"sat_miters_unsat\": true"), std::string::npos);
  EXPECT_NE(text.find("\"round_trip_equivalent\": true"), std::string::npos);
  EXPECT_NE(text.find("\"gates_pass\": true"), std::string::npos);

  int braces = 0, brackets = 0;
  for (char c : text) {
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(BenchFormatTest, RejectsSequentialAndMalformed) {
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n"),
               std::runtime_error);
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n"),
               std::runtime_error);
  EXPECT_THROW(read_bench_string("INPUT(a)\nOUTPUT(y)\ny NOT a\n"),
               std::runtime_error);
  EXPECT_THROW(read_bench_string("OUTPUT(y)\ny = NOT(z)\n"),
               std::runtime_error);
}

}  // namespace
}  // namespace apx
