#include "network/blif.hpp"

#include <gtest/gtest.h>

#include "tt/truth_table.hpp"

namespace apx {
namespace {

const char* kSimpleBlif = R"(
# a tiny two-gate circuit
.model tiny
.inputs a b c
.outputs f
.names a b t1
11 1
.names t1 c f
1- 1
-1 1
.end
)";

TEST(BlifTest, ParsesSimpleModel) {
  Network net = read_blif_string(kSimpleBlif);
  EXPECT_EQ(net.name(), "tiny");
  EXPECT_EQ(net.num_pis(), 3);
  EXPECT_EQ(net.num_pos(), 1);
  EXPECT_EQ(net.num_logic_nodes(), 2);
  net.check();
}

TEST(BlifTest, OffsetRowsAreComplemented) {
  // f defined by off-set: f=0 iff a=1,b=1 -> f = (ab)'.
  const char* text = R"(
.model offs
.inputs a b
.outputs f
.names a b f
11 0
.end
)";
  Network net = read_blif_string(text);
  NodeId f = net.po(0).driver;
  TruthTable tt = TruthTable::from_sop(net.node(f).sop);
  EXPECT_EQ(tt.to_binary(), "0111");  // NAND
}

TEST(BlifTest, ConstantTables) {
  const char* text = R"(
.model consts
.inputs a
.outputs one zero
.names one
1
.names zero
.end
)";
  Network net = read_blif_string(text);
  EXPECT_EQ(net.node(net.po(0).driver).kind, NodeKind::kConst1);
  EXPECT_EQ(net.node(net.po(1).driver).kind, NodeKind::kConst0);
}

TEST(BlifTest, OutOfOrderTables) {
  const char* text = R"(
.model ooo
.inputs a b
.outputs f
.names t1 t2 f
11 1
.names a t1
0 1
.names b t2
1 1
.end
)";
  Network net = read_blif_string(text);
  net.check();
  EXPECT_EQ(net.num_logic_nodes(), 3);
}

TEST(BlifTest, LineContinuation) {
  const char* text =
      ".model cont\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end\n";
  Network net = read_blif_string(text);
  EXPECT_EQ(net.num_pis(), 2);
}

TEST(BlifTest, LineNumbersAfterContinuation) {
  // The '\' continuation on lines 2-3 must not rewind the physical line
  // counter: the bad .latch directive sits on physical line 7 and the
  // diagnostic has to say so (the old parser reported line 6 — and kept
  // drifting one further per continuation).
  const char* text =
      ".model cont\n"        // line 1
      ".inputs a \\\n"       // line 2 (continued...)
      "b\n"                  // line 3 (...joined into line 2)
      ".outputs f\n"         // line 4
      ".names a b f\n"       // line 5
      "11 1\n"               // line 6
      ".latch a b\n"         // line 7: unsupported directive
      ".end\n";
  try {
    read_blif_string(text);
    FAIL() << "expected .latch to be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 7"), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(BlifTest, ContinuationErrorsReportFirstPhysicalLine) {
  // A malformed directive assembled from a continuation is reported at the
  // line where the continuation started.
  const char* text =
      ".model cont\n"        // line 1
      ".inputs a b\n"        // line 2
      ".outputs f\n"         // line 3
      ".latch \\\n"          // line 4 (continued...)
      "a b\n"                // line 5
      ".end\n";
  try {
    read_blif_string(text);
    FAIL() << "expected .latch to be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 4"), std::string::npos)
        << "actual message: " << e.what();
  }
}

TEST(BlifTest, RoundTripPreservesFunction) {
  Network net = read_blif_string(kSimpleBlif);
  std::string text = write_blif_string(net);
  Network back = read_blif_string(text);
  EXPECT_EQ(back.num_pis(), net.num_pis());
  EXPECT_EQ(back.num_pos(), net.num_pos());
  // Compare PO functions by building local composition over the 3 PIs.
  // (tiny circuit: brute-force over all 8 input vectors using SOPs.)
  auto eval = [](const Network& n, uint64_t input) {
    std::vector<char> value(n.num_nodes(), 0);
    for (int i = 0; i < n.num_pis(); ++i) {
      value[n.pis()[i]] = (input >> i) & 1;
    }
    for (NodeId id : n.topo_order()) {
      const Node& node = n.node(id);
      if (node.kind == NodeKind::kConst1) value[id] = 1;
      if (node.kind != NodeKind::kLogic) continue;
      uint64_t local = 0;
      for (size_t j = 0; j < node.fanins.size(); ++j) {
        if (value[node.fanins[j]]) local |= 1ULL << j;
      }
      value[id] = node.sop.covers_minterm(local);
    }
    return value[n.po(0).driver];
  };
  for (uint64_t m = 0; m < 8; ++m) {
    EXPECT_EQ(eval(net, m), eval(back, m)) << m;
  }
}

TEST(BlifTest, RejectsMalformedInput) {
  EXPECT_THROW(read_blif_string(".model x\n.inputs a\n.outputs f\n.end\n"),
               std::runtime_error);
  EXPECT_THROW(read_blif_string("garbage row\n"), std::runtime_error);
  EXPECT_THROW(read_blif_string(".model x\n.latch a b\n.end\n"),
               std::runtime_error);
  // Mixed phase rows.
  EXPECT_THROW(read_blif_string(
                   ".model x\n.inputs a\n.outputs f\n.names a f\n1 1\n0 0\n.end\n"),
               std::runtime_error);
}

TEST(BlifTest, LargeReverseOrderedFileParsesLinearly) {
  // A 40k-table inverter chain listed leaf-last: every table's fanin is
  // defined *after* it, the worst case for the old repeated-sweep resolver
  // (quadratic; minutes at this size). The single-pass reader with DFS
  // resolution parses it in well under a second.
  constexpr int kChain = 40000;
  std::string text = ".model rev\n.inputs x0\n.outputs y\n";
  text.reserve(text.size() + kChain * 24);
  text += ".names x" + std::to_string(kChain) + " y\n1 1\n";
  for (int i = kChain; i >= 1; --i) {
    text += ".names x" + std::to_string(i - 1) + " x" + std::to_string(i) +
            "\n0 1\n";
  }
  text += ".end\n";
  Network net = read_blif_string(text);
  EXPECT_EQ(net.num_logic_nodes(), kChain + 1);
  net.check();
}

TEST(BlifTest, RejectsCyclicDefinition) {
  const char* text = R"(
.model cyc
.inputs a
.outputs f
.names f a g
11 1
.names g a f
1- 1
.end
)";
  EXPECT_THROW(read_blif_string(text), std::runtime_error);
}

}  // namespace
}  // namespace apx
