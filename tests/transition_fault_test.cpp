#include "sim/transition_fault.hpp"

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "core/delay_ced.hpp"
#include "mapping/mapper.hpp"
#include "mapping/optimize.hpp"

namespace apx {
namespace {

TEST(TransitionFaultTest, SlowToRiseHoldsZero) {
  // Single buffer: y = a. Launch a=0, capture a=1: slow-to-rise keeps 0.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId y = net.add_buf(a, "y");
  net.add_po("y", y);

  PatternSet launch(1, 1), capture(1, 1);
  launch.set_word(0, 0, 0b0011);   // patterns 0,1 launch at 1; 2,3 at 0
  capture.set_word(0, 0, 0b0101);  // capture values
  TransitionSimulator sim(net);
  sim.run(launch, capture);
  sim.inject({y, /*slow_to_rise=*/true});
  // Pattern 2: 0 -> 1 rising: faulty stays 0. Pattern 0: 1 -> 1 stays 1.
  uint64_t fv = sim.faulty_value(y)[0] & 0xF;
  EXPECT_EQ(fv, 0b0001u);
  // Launch mask marks exactly the rising patterns.
  EXPECT_EQ(sim.launch_mask({y, true})[0] & 0xF, 0b0100u);

  sim.inject({y, /*slow_to_rise=*/false});
  // Falling pattern 1 (1 -> 0): faulty stays 1.
  EXPECT_EQ(sim.faulty_value(y)[0] & 0xF, 0b0111u);
}

TEST(TransitionFaultTest, FaultPropagatesThroughCone) {
  // y = a & b: a slow-to-rise at the AND output shows at y only when the
  // output actually rises.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId y = net.add_and(a, b, "g");
  NodeId z = net.add_not(y, "z");
  net.add_po("z", z);

  PatternSet launch(2, 1), capture(2, 1);
  // One pattern: a,b launch 0,1 -> capture 1,1 (output rises 0 -> 1).
  launch.set_word(0, 0, 0b0);
  launch.set_word(1, 0, 0b1);
  capture.set_word(0, 0, 0b1);
  capture.set_word(1, 0, 0b1);
  TransitionSimulator sim(net);
  sim.run(launch, capture);
  EXPECT_EQ(sim.value(z)[0] & 1, 0u);  // fault-free: z = ~(1&1) = 0
  sim.inject({y, true});
  EXPECT_EQ(sim.faulty_value(z)[0] & 1, 1u);  // stale 0 at y -> z = 1
}

TEST(TransitionFaultTest, NoTransitionNoEffect) {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId y = net.add_buf(a, "y");
  net.add_po("y", y);
  PatternSet same(1, 1);
  same.set_word(0, 0, 0xF0F0F0F0F0F0F0F0ULL);
  TransitionSimulator sim(net);
  sim.run(same, same);
  sim.inject({y, true});
  EXPECT_EQ(sim.faulty_value(y)[0], sim.value(y)[0]);
  sim.inject({y, false});
  EXPECT_EQ(sim.faulty_value(y)[0], sim.value(y)[0]);
}

TEST(TransitionFaultTest, EnumerationCoversLogicNodesTwice) {
  Network net = make_benchmark("c17");
  EXPECT_EQ(enumerate_transition_faults(net).size(),
            2u * net.num_logic_nodes());
}

TEST(DelayCedTest, DelayFaultsAreDetectedByTheSameCheckers) {
  // Perfect check generator on an AND cone: delay faults produce
  // unidirectional capture errors that the stuck-at checkers flag.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  net.add_po("y", net.add_and(net.add_and(a, b), c));
  Network mapped = technology_map(net);
  CedDesign ced =
      build_ced_design(mapped, mapped, {ApproxDirection::kZeroApprox});
  DelayCoverageOptions opt;
  opt.num_fault_samples = 300;
  CoverageResult cov = evaluate_delay_fault_coverage(ced, opt);
  EXPECT_GT(cov.erroneous, 0);
  // An AND cone is mostly-0: slow-to-fall faults dominate the erroneous
  // captures (0->1 direction at the output), which the 0-approx checker
  // catches.
  EXPECT_GT(cov.coverage(), 0.5);
}

TEST(DelayCedTest, CoverageBoundedAndDeterministic) {
  Network net = make_benchmark("cmp4");
  Network opt = quick_synthesis(net);
  Network mapped = technology_map(opt);
  std::vector<ApproxDirection> dirs(net.num_pos(),
                                    ApproxDirection::kZeroApprox);
  CedDesign ced = build_ced_design(mapped, mapped, dirs);
  DelayCoverageOptions dopt;
  dopt.num_fault_samples = 200;
  CoverageResult one = evaluate_delay_fault_coverage(ced, dopt);
  CoverageResult two = evaluate_delay_fault_coverage(ced, dopt);
  EXPECT_EQ(one.detected, two.detected);
  EXPECT_LE(one.detected, one.erroneous);
}

}  // namespace
}  // namespace apx
