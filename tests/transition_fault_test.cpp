#include "sim/transition_fault.hpp"

#include <gtest/gtest.h>

#include "benchmarks/benchmarks.hpp"
#include "core/delay_ced.hpp"
#include "mapping/mapper.hpp"
#include "mapping/optimize.hpp"

namespace apx {
namespace {

TEST(TransitionFaultTest, SlowToRiseHoldsZero) {
  // Single buffer: y = a. Launch a=0, capture a=1: slow-to-rise keeps 0.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId y = net.add_buf(a, "y");
  net.add_po("y", y);

  PatternSet launch(1, 1), capture(1, 1);
  launch.set_word(0, 0, 0b0011);   // patterns 0,1 launch at 1; 2,3 at 0
  capture.set_word(0, 0, 0b0101);  // capture values
  TransitionSimulator sim(net);
  sim.run(launch, capture);
  sim.inject({y, /*slow_to_rise=*/true});
  // Pattern 2: 0 -> 1 rising: faulty stays 0. Pattern 0: 1 -> 1 stays 1.
  uint64_t fv = sim.faulty_value(y)[0] & 0xF;
  EXPECT_EQ(fv, 0b0001u);
  // Launch mask marks exactly the rising patterns.
  EXPECT_EQ(sim.launch_mask({y, true})[0] & 0xF, 0b0100u);

  sim.inject({y, /*slow_to_rise=*/false});
  // Falling pattern 1 (1 -> 0): faulty stays 1.
  EXPECT_EQ(sim.faulty_value(y)[0] & 0xF, 0b0111u);
}

TEST(TransitionFaultTest, FaultPropagatesThroughCone) {
  // y = a & b: a slow-to-rise at the AND output shows at y only when the
  // output actually rises.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId y = net.add_and(a, b, "g");
  NodeId z = net.add_not(y, "z");
  net.add_po("z", z);

  PatternSet launch(2, 1), capture(2, 1);
  // One pattern: a,b launch 0,1 -> capture 1,1 (output rises 0 -> 1).
  launch.set_word(0, 0, 0b0);
  launch.set_word(1, 0, 0b1);
  capture.set_word(0, 0, 0b1);
  capture.set_word(1, 0, 0b1);
  TransitionSimulator sim(net);
  sim.run(launch, capture);
  EXPECT_EQ(sim.value(z)[0] & 1, 0u);  // fault-free: z = ~(1&1) = 0
  sim.inject({y, true});
  EXPECT_EQ(sim.faulty_value(z)[0] & 1, 1u);  // stale 0 at y -> z = 1
}

TEST(TransitionFaultTest, NoTransitionNoEffect) {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId y = net.add_buf(a, "y");
  net.add_po("y", y);
  PatternSet same(1, 1);
  same.set_word(0, 0, 0xF0F0F0F0F0F0F0F0ULL);
  TransitionSimulator sim(net);
  sim.run(same, same);
  sim.inject({y, true});
  EXPECT_EQ(sim.faulty_value(y)[0], sim.value(y)[0]);
  sim.inject({y, false});
  EXPECT_EQ(sim.faulty_value(y)[0], sim.value(y)[0]);
}

TEST(TransitionFaultTest, EnumerationCoversPiStemsAndLogicNodesTwice) {
  // Both polarities of every PI fanout stem and every gate output: slow
  // transitions on input lines are defect sites too (they used to be
  // skipped, leaving PI delay faults unobservable in every measurement).
  Network net = make_benchmark("c17");
  EXPECT_EQ(enumerate_transition_faults(net).size(),
            2u * (net.num_logic_nodes() + net.num_pis()));
}

TEST(TransitionFaultTest, PiStemTransitionIsEnumeratedAndDetected) {
  // y = a & b observed directly at a PO: a slow-to-rise on PI stem `a`
  // (launch a=0, capture a=1, b=1) holds the stale 0 and flips y.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId y = net.add_and(a, b, "y");
  net.add_po("y", y);

  auto faults = enumerate_transition_faults(net);
  bool pi_rise_listed = false;
  for (const TransitionFault& f : faults) {
    pi_rise_listed = pi_rise_listed || (f.node == a && f.slow_to_rise);
  }
  EXPECT_TRUE(pi_rise_listed);

  PatternSet launch(2, 1), capture(2, 1);
  launch.set_word(0, 0, 0b0);   // a: 0 -> 1 (rising)
  launch.set_word(1, 0, 0b1);   // b: steady 1
  capture.set_word(0, 0, 0b1);
  capture.set_word(1, 0, 0b1);
  TransitionSimulator sim(net);
  sim.run(launch, capture);
  EXPECT_EQ(sim.value(y)[0] & 1, 1u);  // fault-free capture: y = 1
  sim.inject({a, /*slow_to_rise=*/true});
  // The stale 0 on the stem propagates: the fault is detected at the PO.
  EXPECT_EQ(sim.faulty_value(y)[0] & 1, 0u);
}

TEST(DelayCedTest, DelayFaultsAreDetectedByTheSameCheckers) {
  // Perfect check generator on an AND cone: delay faults produce
  // unidirectional capture errors that the stuck-at checkers flag.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  net.add_po("y", net.add_and(net.add_and(a, b), c));
  Network mapped = technology_map(net);
  CedDesign ced =
      build_ced_design(mapped, mapped, {ApproxDirection::kZeroApprox});
  DelayCoverageOptions opt;
  opt.num_fault_samples = 300;
  // Gate-level faults only: this asserts the paper's claim about checker
  // reuse for *gate* delay faults. PI-stem faults are common mode in an
  // exact-duplicate CED (see the test below) and would dilute coverage.
  opt.include_pi_stems = false;
  CoverageResult cov = evaluate_delay_fault_coverage(ced, opt);
  EXPECT_GT(cov.erroneous, 0);
  // An AND cone is mostly-0: slow-to-fall faults dominate the erroneous
  // captures (0->1 direction at the output), which the 0-approx checker
  // catches.
  EXPECT_GT(cov.coverage(), 0.5);
}

TEST(DelayCedTest, PiStemFaultsAreCommonModeInExactDuplication) {
  // A slow PI stem feeds the functional circuit and the check-symbol
  // generator the same stale value: the capture is erroneous, but the
  // rails agree — structurally undetectable by duplication. The erroneous
  // count must rise when PI stems are sampled while detection stays capped
  // at the gate-fault level (this is why include_pi_stems exists and why
  // the headline gate-level claim excludes stems).
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId y = net.add_and(a, b, "y");
  net.add_po("y", y);
  Network mapped = technology_map(net);
  CedDesign ced =
      build_ced_design(mapped, mapped, {ApproxDirection::kZeroApprox});

  TransitionSimulator sim(ced.design);
  PatternSet launch(2, 1), capture(2, 1);
  launch.set_word(0, 0, 0b0);  // a: 0 -> 1 rising
  launch.set_word(1, 0, 0b1);  // b: steady 1
  capture.set_word(0, 0, 0b1);
  capture.set_word(1, 0, 0b1);
  sim.run(launch, capture);
  sim.inject({a, /*slow_to_rise=*/true});
  const NodeId out = ced.functional_outputs[0];
  // The functional output is erroneous...
  EXPECT_NE(sim.faulty_value(out)[0] & 1, sim.value(out)[0] & 1);
  // ...but the rails agree exactly where duplication would flag an error
  // only if the two copies diverged — they cannot, the stale input is
  // common to both. Rails agree <=> error flagged; here they must
  // *disagree* (no detection).
  const uint64_t z1 = sim.faulty_value(ced.error_pair.rail1)[0] & 1;
  const uint64_t z2 = sim.faulty_value(ced.error_pair.rail2)[0] & 1;
  EXPECT_NE(z1, z2);
}

TEST(DelayCedTest, CoverageBoundedAndDeterministic) {
  Network net = make_benchmark("cmp4");
  Network opt = quick_synthesis(net);
  Network mapped = technology_map(opt);
  std::vector<ApproxDirection> dirs(net.num_pos(),
                                    ApproxDirection::kZeroApprox);
  CedDesign ced = build_ced_design(mapped, mapped, dirs);
  DelayCoverageOptions dopt;
  dopt.num_fault_samples = 200;
  CoverageResult one = evaluate_delay_fault_coverage(ced, dopt);
  CoverageResult two = evaluate_delay_fault_coverage(ced, dopt);
  EXPECT_EQ(one.detected, two.detected);
  EXPECT_LE(one.detected, one.erroneous);
}

}  // namespace
}  // namespace apx
