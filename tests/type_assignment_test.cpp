#include "core/type_assignment.hpp"

#include <gtest/gtest.h>

namespace apx {
namespace {

TEST(TypeAssignmentTest, PoDriverGetsRequestedDirection) {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId g = net.add_and(a, b, "g");
  net.add_po("g", g);
  TypeAssignment one = assign_types(net, {ApproxDirection::kOneApprox});
  EXPECT_EQ(one.of(g), NodeType::kOne);
  TypeAssignment zero = assign_types(net, {ApproxDirection::kZeroApprox});
  EXPECT_EQ(zero.of(g), NodeType::kZero);
}

TEST(TypeAssignmentTest, ConflictingPoRequestsYieldEx) {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId g = net.add_and(a, b, "g");
  net.add_po("g1", g);
  net.add_po("g2", g);
  TypeAssignment t = assign_types(
      net, {ApproxDirection::kOneApprox, ApproxDirection::kZeroApprox});
  EXPECT_EQ(t.of(g), NodeType::kEx);
}

TEST(TypeAssignmentTest, DanglingNodeIsDc) {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId g = net.add_and(a, b, "g");
  NodeId dangle = net.add_or(a, b, "dangle");
  (void)dangle;
  net.add_po("g", g);
  TypeAssignment t = assign_types(net, {ApproxDirection::kOneApprox});
  EXPECT_EQ(t.of(dangle), NodeType::kDc);
}

TEST(TypeAssignmentTest, StrictModeForcesExOnUsedFanins) {
  // Output requested EX via two conflicting POs; in strict mode its fanins
  // must become EX as well.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  NodeId t1 = net.add_and(a, b, "t1");
  NodeId t2 = net.add_or(b, c, "t2");
  NodeId g = net.add_xor(t1, t2, "g");
  net.add_po("g1", g);
  net.add_po("g2", g);
  TypeAssignmentOptions opt;
  opt.strict_ex_requests = true;
  TypeAssignment t = assign_types(
      net, {ApproxDirection::kOneApprox, ApproxDirection::kZeroApprox}, opt);
  EXPECT_EQ(t.of(g), NodeType::kEx);
  EXPECT_EQ(t.of(t1), NodeType::kEx);
  EXPECT_EQ(t.of(t2), NodeType::kEx);
}

TEST(TypeAssignmentTest, DefaultModeTypesExFaninsByObservability) {
  // Same circuit without strict mode: the XOR node's fanins are both fully
  // observable in both phases, so they are still requested EX here — but a
  // skewed fanin of an EX node gets a 0/1 type instead of being pinned EX.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  NodeId d = net.add_pi("d");
  NodeId t1 = net.add_node({b, c, d}, *Sop::parse(3, "1--\n-1-\n--1"), "t1");
  NodeId g = net.add_and(a, t1, "g");
  net.add_po("g1", g);
  net.add_po("g2", g);  // conflicting directions -> g is EX
  TypeAssignmentOptions opt;
  opt.sim_words = 256;
  TypeAssignment t = assign_types(
      net, {ApproxDirection::kOneApprox, ApproxDirection::kZeroApprox}, opt);
  EXPECT_EQ(t.of(g), NodeType::kEx);
  // t1 is mostly 1 at an AND: obs1 >> obs0 -> type 1 despite the EX parent.
  EXPECT_EQ(t.of(t1), NodeType::kOne);
}

TEST(TypeAssignmentTest, BarelyObservableFaninRequestedDc) {
  // g = wide_or | t: the wide OR is almost always 1, so t is rarely
  // observable and should be typed DC.
  Network net;
  std::vector<NodeId> pis;
  for (int i = 0; i < 6; ++i) pis.push_back(net.add_pi("x" + std::to_string(i)));
  NodeId t = net.add_pi("t");
  Sop or6(6);
  for (int v = 0; v < 6; ++v) {
    Cube c = Cube::full(6);
    c.set(v, LitCode::kPos);
    or6.add_cube(c);
  }
  NodeId wide = net.add_node(pis, std::move(or6), "wide");
  NodeId tbuf = net.add_buf(t, "tbuf");
  NodeId g = net.add_or(wide, tbuf, "g");
  net.add_po("g", g);
  TypeAssignmentOptions opt;
  opt.dc_fraction = 0.25;
  opt.sim_words = 256;
  TypeAssignment types = assign_types(net, {ApproxDirection::kOneApprox}, opt);
  // wide (obs ~ P(t=0)=0.5 scaled) stays typed, tbuf (obs ~ P(wide=0) ~
  // 1/64) goes DC.
  EXPECT_EQ(types.of(tbuf), NodeType::kDc);
  EXPECT_NE(types.of(wide), NodeType::kDc);
}

TEST(TypeAssignmentTest, SkewedFaninGetsDominantPhase) {
  // g = a & t with t = b|c|d (t mostly 1): obs1(t) >> obs0(t) -> type 1.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  NodeId d = net.add_pi("d");
  NodeId t = net.add_node({b, c, d}, *Sop::parse(3, "1--\n-1-\n--1"), "t");
  NodeId g = net.add_and(a, t, "g");
  net.add_po("g", g);
  TypeAssignmentOptions opt;
  opt.phase_ratio = 2.0;
  opt.sim_words = 256;
  TypeAssignment types = assign_types(net, {ApproxDirection::kOneApprox}, opt);
  EXPECT_EQ(types.of(t), NodeType::kOne);
}

TEST(TypeAssignmentTest, ComparableObservabilitiesGiveEx) {
  // g = a ^ b^-chain: both phases equally observable -> EX requested.
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId t = net.add_xor(a, b, "t");
  NodeId c = net.add_pi("c");
  NodeId g = net.add_xor(t, c, "g");
  net.add_po("g", g);
  TypeAssignment types = assign_types(net, {ApproxDirection::kOneApprox});
  EXPECT_EQ(types.of(t), NodeType::kEx);
}

TEST(TypeAssignmentTest, DcPropagatesThroughDcNodes) {
  // A DC node's fanins see DC requests (unless another fanout asks more).
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId inner = net.add_and(a, b, "inner");
  NodeId dangle = net.add_not(inner, "dangle");
  NodeId g = net.add_or(a, b, "g");
  (void)dangle;
  net.add_po("g", g);
  TypeAssignment types = assign_types(net, {ApproxDirection::kOneApprox});
  EXPECT_EQ(types.of(dangle), NodeType::kDc);
  EXPECT_EQ(types.of(inner), NodeType::kDc);
}

TEST(TypeAssignmentTest, CountsMatchTypes) {
  Network net;
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId g = net.add_and(a, b, "g");
  net.add_po("g", g);
  TypeAssignment t = assign_types(net, {ApproxDirection::kOneApprox});
  EXPECT_EQ(t.count(NodeType::kOne), 1);  // only g
  // PIs are EX by convention.
  EXPECT_EQ(t.count(NodeType::kEx), 2);
}

}  // namespace
}  // namespace apx
