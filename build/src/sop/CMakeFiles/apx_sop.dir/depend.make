# Empty dependencies file for apx_sop.
# This may be replaced when dependencies are built.
