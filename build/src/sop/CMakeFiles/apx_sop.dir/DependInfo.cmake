
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sop/algebraic.cpp" "src/sop/CMakeFiles/apx_sop.dir/algebraic.cpp.o" "gcc" "src/sop/CMakeFiles/apx_sop.dir/algebraic.cpp.o.d"
  "/root/repo/src/sop/cube.cpp" "src/sop/CMakeFiles/apx_sop.dir/cube.cpp.o" "gcc" "src/sop/CMakeFiles/apx_sop.dir/cube.cpp.o.d"
  "/root/repo/src/sop/minimize.cpp" "src/sop/CMakeFiles/apx_sop.dir/minimize.cpp.o" "gcc" "src/sop/CMakeFiles/apx_sop.dir/minimize.cpp.o.d"
  "/root/repo/src/sop/sop.cpp" "src/sop/CMakeFiles/apx_sop.dir/sop.cpp.o" "gcc" "src/sop/CMakeFiles/apx_sop.dir/sop.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
