file(REMOVE_RECURSE
  "libapx_sop.a"
)
