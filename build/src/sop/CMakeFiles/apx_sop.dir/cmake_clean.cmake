file(REMOVE_RECURSE
  "CMakeFiles/apx_sop.dir/algebraic.cpp.o"
  "CMakeFiles/apx_sop.dir/algebraic.cpp.o.d"
  "CMakeFiles/apx_sop.dir/cube.cpp.o"
  "CMakeFiles/apx_sop.dir/cube.cpp.o.d"
  "CMakeFiles/apx_sop.dir/minimize.cpp.o"
  "CMakeFiles/apx_sop.dir/minimize.cpp.o.d"
  "CMakeFiles/apx_sop.dir/sop.cpp.o"
  "CMakeFiles/apx_sop.dir/sop.cpp.o.d"
  "libapx_sop.a"
  "libapx_sop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apx_sop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
