# Empty dependencies file for apx_bdd.
# This may be replaced when dependencies are built.
