file(REMOVE_RECURSE
  "CMakeFiles/apx_bdd.dir/bdd.cpp.o"
  "CMakeFiles/apx_bdd.dir/bdd.cpp.o.d"
  "CMakeFiles/apx_bdd.dir/network_bdd.cpp.o"
  "CMakeFiles/apx_bdd.dir/network_bdd.cpp.o.d"
  "libapx_bdd.a"
  "libapx_bdd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apx_bdd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
