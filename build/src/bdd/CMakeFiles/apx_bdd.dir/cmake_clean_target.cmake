file(REMOVE_RECURSE
  "libapx_bdd.a"
)
