file(REMOVE_RECURSE
  "libapx_sat.a"
)
