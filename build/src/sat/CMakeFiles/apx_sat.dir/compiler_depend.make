# Empty compiler generated dependencies file for apx_sat.
# This may be replaced when dependencies are built.
