file(REMOVE_RECURSE
  "CMakeFiles/apx_sat.dir/encode.cpp.o"
  "CMakeFiles/apx_sat.dir/encode.cpp.o.d"
  "CMakeFiles/apx_sat.dir/solver.cpp.o"
  "CMakeFiles/apx_sat.dir/solver.cpp.o.d"
  "libapx_sat.a"
  "libapx_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apx_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
