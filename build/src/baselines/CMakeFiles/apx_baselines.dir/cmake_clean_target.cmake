file(REMOVE_RECURSE
  "libapx_baselines.a"
)
