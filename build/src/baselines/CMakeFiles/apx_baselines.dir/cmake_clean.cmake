file(REMOVE_RECURSE
  "CMakeFiles/apx_baselines.dir/parity.cpp.o"
  "CMakeFiles/apx_baselines.dir/parity.cpp.o.d"
  "CMakeFiles/apx_baselines.dir/partial_duplication.cpp.o"
  "CMakeFiles/apx_baselines.dir/partial_duplication.cpp.o.d"
  "libapx_baselines.a"
  "libapx_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apx_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
