# Empty dependencies file for apx_baselines.
# This may be replaced when dependencies are built.
