file(REMOVE_RECURSE
  "libapx_core.a"
)
