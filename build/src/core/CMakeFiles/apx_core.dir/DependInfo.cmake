
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/approx_synthesis.cpp" "src/core/CMakeFiles/apx_core.dir/approx_synthesis.cpp.o" "gcc" "src/core/CMakeFiles/apx_core.dir/approx_synthesis.cpp.o.d"
  "/root/repo/src/core/ced.cpp" "src/core/CMakeFiles/apx_core.dir/ced.cpp.o" "gcc" "src/core/CMakeFiles/apx_core.dir/ced.cpp.o.d"
  "/root/repo/src/core/checker.cpp" "src/core/CMakeFiles/apx_core.dir/checker.cpp.o" "gcc" "src/core/CMakeFiles/apx_core.dir/checker.cpp.o.d"
  "/root/repo/src/core/cube_selection.cpp" "src/core/CMakeFiles/apx_core.dir/cube_selection.cpp.o" "gcc" "src/core/CMakeFiles/apx_core.dir/cube_selection.cpp.o.d"
  "/root/repo/src/core/delay_ced.cpp" "src/core/CMakeFiles/apx_core.dir/delay_ced.cpp.o" "gcc" "src/core/CMakeFiles/apx_core.dir/delay_ced.cpp.o.d"
  "/root/repo/src/core/logic_sharing.cpp" "src/core/CMakeFiles/apx_core.dir/logic_sharing.cpp.o" "gcc" "src/core/CMakeFiles/apx_core.dir/logic_sharing.cpp.o.d"
  "/root/repo/src/core/masking.cpp" "src/core/CMakeFiles/apx_core.dir/masking.cpp.o" "gcc" "src/core/CMakeFiles/apx_core.dir/masking.cpp.o.d"
  "/root/repo/src/core/observability.cpp" "src/core/CMakeFiles/apx_core.dir/observability.cpp.o" "gcc" "src/core/CMakeFiles/apx_core.dir/observability.cpp.o.d"
  "/root/repo/src/core/odc_analysis.cpp" "src/core/CMakeFiles/apx_core.dir/odc_analysis.cpp.o" "gcc" "src/core/CMakeFiles/apx_core.dir/odc_analysis.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/apx_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/apx_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/tsc_analysis.cpp" "src/core/CMakeFiles/apx_core.dir/tsc_analysis.cpp.o" "gcc" "src/core/CMakeFiles/apx_core.dir/tsc_analysis.cpp.o.d"
  "/root/repo/src/core/type_assignment.cpp" "src/core/CMakeFiles/apx_core.dir/type_assignment.cpp.o" "gcc" "src/core/CMakeFiles/apx_core.dir/type_assignment.cpp.o.d"
  "/root/repo/src/core/verify.cpp" "src/core/CMakeFiles/apx_core.dir/verify.cpp.o" "gcc" "src/core/CMakeFiles/apx_core.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/network/CMakeFiles/apx_network.dir/DependInfo.cmake"
  "/root/repo/build/src/sop/CMakeFiles/apx_sop.dir/DependInfo.cmake"
  "/root/repo/build/src/tt/CMakeFiles/apx_tt.dir/DependInfo.cmake"
  "/root/repo/build/src/bdd/CMakeFiles/apx_bdd.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/apx_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/apx_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/reliability/CMakeFiles/apx_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/mapping/CMakeFiles/apx_mapping.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
