# Empty dependencies file for apx_core.
# This may be replaced when dependencies are built.
