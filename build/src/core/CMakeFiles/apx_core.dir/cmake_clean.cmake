file(REMOVE_RECURSE
  "CMakeFiles/apx_core.dir/approx_synthesis.cpp.o"
  "CMakeFiles/apx_core.dir/approx_synthesis.cpp.o.d"
  "CMakeFiles/apx_core.dir/ced.cpp.o"
  "CMakeFiles/apx_core.dir/ced.cpp.o.d"
  "CMakeFiles/apx_core.dir/checker.cpp.o"
  "CMakeFiles/apx_core.dir/checker.cpp.o.d"
  "CMakeFiles/apx_core.dir/cube_selection.cpp.o"
  "CMakeFiles/apx_core.dir/cube_selection.cpp.o.d"
  "CMakeFiles/apx_core.dir/delay_ced.cpp.o"
  "CMakeFiles/apx_core.dir/delay_ced.cpp.o.d"
  "CMakeFiles/apx_core.dir/logic_sharing.cpp.o"
  "CMakeFiles/apx_core.dir/logic_sharing.cpp.o.d"
  "CMakeFiles/apx_core.dir/masking.cpp.o"
  "CMakeFiles/apx_core.dir/masking.cpp.o.d"
  "CMakeFiles/apx_core.dir/observability.cpp.o"
  "CMakeFiles/apx_core.dir/observability.cpp.o.d"
  "CMakeFiles/apx_core.dir/odc_analysis.cpp.o"
  "CMakeFiles/apx_core.dir/odc_analysis.cpp.o.d"
  "CMakeFiles/apx_core.dir/pipeline.cpp.o"
  "CMakeFiles/apx_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/apx_core.dir/tsc_analysis.cpp.o"
  "CMakeFiles/apx_core.dir/tsc_analysis.cpp.o.d"
  "CMakeFiles/apx_core.dir/type_assignment.cpp.o"
  "CMakeFiles/apx_core.dir/type_assignment.cpp.o.d"
  "CMakeFiles/apx_core.dir/verify.cpp.o"
  "CMakeFiles/apx_core.dir/verify.cpp.o.d"
  "libapx_core.a"
  "libapx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
