# Empty compiler generated dependencies file for apx_sim.
# This may be replaced when dependencies are built.
