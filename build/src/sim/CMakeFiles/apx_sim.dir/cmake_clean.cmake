file(REMOVE_RECURSE
  "CMakeFiles/apx_sim.dir/simulator.cpp.o"
  "CMakeFiles/apx_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/apx_sim.dir/transition_fault.cpp.o"
  "CMakeFiles/apx_sim.dir/transition_fault.cpp.o.d"
  "libapx_sim.a"
  "libapx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
