file(REMOVE_RECURSE
  "libapx_sim.a"
)
