file(REMOVE_RECURSE
  "CMakeFiles/apx_benchmarks.dir/benchmarks.cpp.o"
  "CMakeFiles/apx_benchmarks.dir/benchmarks.cpp.o.d"
  "libapx_benchmarks.a"
  "libapx_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apx_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
