file(REMOVE_RECURSE
  "libapx_benchmarks.a"
)
