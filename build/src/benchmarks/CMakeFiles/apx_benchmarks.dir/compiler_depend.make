# Empty compiler generated dependencies file for apx_benchmarks.
# This may be replaced when dependencies are built.
