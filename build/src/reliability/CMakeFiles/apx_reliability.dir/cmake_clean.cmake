file(REMOVE_RECURSE
  "CMakeFiles/apx_reliability.dir/reliability.cpp.o"
  "CMakeFiles/apx_reliability.dir/reliability.cpp.o.d"
  "libapx_reliability.a"
  "libapx_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apx_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
