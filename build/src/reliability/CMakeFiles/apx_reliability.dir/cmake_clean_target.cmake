file(REMOVE_RECURSE
  "libapx_reliability.a"
)
