# Empty compiler generated dependencies file for apx_reliability.
# This may be replaced when dependencies are built.
