file(REMOVE_RECURSE
  "CMakeFiles/apx_mapping.dir/library.cpp.o"
  "CMakeFiles/apx_mapping.dir/library.cpp.o.d"
  "CMakeFiles/apx_mapping.dir/mapper.cpp.o"
  "CMakeFiles/apx_mapping.dir/mapper.cpp.o.d"
  "CMakeFiles/apx_mapping.dir/optimize.cpp.o"
  "CMakeFiles/apx_mapping.dir/optimize.cpp.o.d"
  "libapx_mapping.a"
  "libapx_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apx_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
