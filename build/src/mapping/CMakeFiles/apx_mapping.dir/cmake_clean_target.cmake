file(REMOVE_RECURSE
  "libapx_mapping.a"
)
