# Empty compiler generated dependencies file for apx_mapping.
# This may be replaced when dependencies are built.
