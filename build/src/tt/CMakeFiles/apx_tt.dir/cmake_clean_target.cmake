file(REMOVE_RECURSE
  "libapx_tt.a"
)
