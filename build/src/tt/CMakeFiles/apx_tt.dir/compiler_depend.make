# Empty compiler generated dependencies file for apx_tt.
# This may be replaced when dependencies are built.
