file(REMOVE_RECURSE
  "CMakeFiles/apx_tt.dir/truth_table.cpp.o"
  "CMakeFiles/apx_tt.dir/truth_table.cpp.o.d"
  "libapx_tt.a"
  "libapx_tt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apx_tt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
