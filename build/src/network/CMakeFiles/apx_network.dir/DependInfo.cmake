
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/network/bench_format.cpp" "src/network/CMakeFiles/apx_network.dir/bench_format.cpp.o" "gcc" "src/network/CMakeFiles/apx_network.dir/bench_format.cpp.o.d"
  "/root/repo/src/network/blif.cpp" "src/network/CMakeFiles/apx_network.dir/blif.cpp.o" "gcc" "src/network/CMakeFiles/apx_network.dir/blif.cpp.o.d"
  "/root/repo/src/network/network.cpp" "src/network/CMakeFiles/apx_network.dir/network.cpp.o" "gcc" "src/network/CMakeFiles/apx_network.dir/network.cpp.o.d"
  "/root/repo/src/network/pla.cpp" "src/network/CMakeFiles/apx_network.dir/pla.cpp.o" "gcc" "src/network/CMakeFiles/apx_network.dir/pla.cpp.o.d"
  "/root/repo/src/network/verilog.cpp" "src/network/CMakeFiles/apx_network.dir/verilog.cpp.o" "gcc" "src/network/CMakeFiles/apx_network.dir/verilog.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sop/CMakeFiles/apx_sop.dir/DependInfo.cmake"
  "/root/repo/build/src/tt/CMakeFiles/apx_tt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
