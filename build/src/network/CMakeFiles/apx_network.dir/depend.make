# Empty dependencies file for apx_network.
# This may be replaced when dependencies are built.
