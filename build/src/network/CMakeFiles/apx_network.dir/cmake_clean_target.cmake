file(REMOVE_RECURSE
  "libapx_network.a"
)
