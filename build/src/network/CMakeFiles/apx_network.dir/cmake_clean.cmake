file(REMOVE_RECURSE
  "CMakeFiles/apx_network.dir/bench_format.cpp.o"
  "CMakeFiles/apx_network.dir/bench_format.cpp.o.d"
  "CMakeFiles/apx_network.dir/blif.cpp.o"
  "CMakeFiles/apx_network.dir/blif.cpp.o.d"
  "CMakeFiles/apx_network.dir/network.cpp.o"
  "CMakeFiles/apx_network.dir/network.cpp.o.d"
  "CMakeFiles/apx_network.dir/pla.cpp.o"
  "CMakeFiles/apx_network.dir/pla.cpp.o.d"
  "CMakeFiles/apx_network.dir/verilog.cpp.o"
  "CMakeFiles/apx_network.dir/verilog.cpp.o.d"
  "libapx_network.a"
  "libapx_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apx_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
