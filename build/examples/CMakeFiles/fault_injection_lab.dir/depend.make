# Empty dependencies file for fault_injection_lab.
# This may be replaced when dependencies are built.
