file(REMOVE_RECURSE
  "CMakeFiles/interop_tour.dir/interop_tour.cpp.o"
  "CMakeFiles/interop_tour.dir/interop_tour.cpp.o.d"
  "interop_tour"
  "interop_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interop_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
