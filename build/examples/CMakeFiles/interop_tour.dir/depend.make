# Empty dependencies file for interop_tour.
# This may be replaced when dependencies are built.
