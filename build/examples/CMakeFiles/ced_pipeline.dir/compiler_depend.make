# Empty compiler generated dependencies file for ced_pipeline.
# This may be replaced when dependencies are built.
