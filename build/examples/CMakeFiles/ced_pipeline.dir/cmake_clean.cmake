file(REMOVE_RECURSE
  "CMakeFiles/ced_pipeline.dir/ced_pipeline.cpp.o"
  "CMakeFiles/ced_pipeline.dir/ced_pipeline.cpp.o.d"
  "ced_pipeline"
  "ced_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ced_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
