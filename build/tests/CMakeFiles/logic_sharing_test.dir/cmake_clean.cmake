file(REMOVE_RECURSE
  "CMakeFiles/logic_sharing_test.dir/logic_sharing_test.cpp.o"
  "CMakeFiles/logic_sharing_test.dir/logic_sharing_test.cpp.o.d"
  "logic_sharing_test"
  "logic_sharing_test.pdb"
  "logic_sharing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logic_sharing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
