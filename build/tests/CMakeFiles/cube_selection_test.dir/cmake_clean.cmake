file(REMOVE_RECURSE
  "CMakeFiles/cube_selection_test.dir/cube_selection_test.cpp.o"
  "CMakeFiles/cube_selection_test.dir/cube_selection_test.cpp.o.d"
  "cube_selection_test"
  "cube_selection_test.pdb"
  "cube_selection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cube_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
