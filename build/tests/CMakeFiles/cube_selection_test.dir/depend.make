# Empty dependencies file for cube_selection_test.
# This may be replaced when dependencies are built.
