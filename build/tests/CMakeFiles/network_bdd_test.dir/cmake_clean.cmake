file(REMOVE_RECURSE
  "CMakeFiles/network_bdd_test.dir/network_bdd_test.cpp.o"
  "CMakeFiles/network_bdd_test.dir/network_bdd_test.cpp.o.d"
  "network_bdd_test"
  "network_bdd_test.pdb"
  "network_bdd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_bdd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
