file(REMOVE_RECURSE
  "CMakeFiles/sharp_test.dir/sharp_test.cpp.o"
  "CMakeFiles/sharp_test.dir/sharp_test.cpp.o.d"
  "sharp_test"
  "sharp_test.pdb"
  "sharp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sharp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
