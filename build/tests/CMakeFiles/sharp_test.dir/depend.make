# Empty dependencies file for sharp_test.
# This may be replaced when dependencies are built.
