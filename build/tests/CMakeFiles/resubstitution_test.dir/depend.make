# Empty dependencies file for resubstitution_test.
# This may be replaced when dependencies are built.
