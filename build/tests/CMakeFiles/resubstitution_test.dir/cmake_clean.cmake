file(REMOVE_RECURSE
  "CMakeFiles/resubstitution_test.dir/resubstitution_test.cpp.o"
  "CMakeFiles/resubstitution_test.dir/resubstitution_test.cpp.o.d"
  "resubstitution_test"
  "resubstitution_test.pdb"
  "resubstitution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resubstitution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
