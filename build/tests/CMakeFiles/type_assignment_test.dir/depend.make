# Empty dependencies file for type_assignment_test.
# This may be replaced when dependencies are built.
