file(REMOVE_RECURSE
  "CMakeFiles/type_assignment_test.dir/type_assignment_test.cpp.o"
  "CMakeFiles/type_assignment_test.dir/type_assignment_test.cpp.o.d"
  "type_assignment_test"
  "type_assignment_test.pdb"
  "type_assignment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/type_assignment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
