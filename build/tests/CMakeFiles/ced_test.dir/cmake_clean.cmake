file(REMOVE_RECURSE
  "CMakeFiles/ced_test.dir/ced_test.cpp.o"
  "CMakeFiles/ced_test.dir/ced_test.cpp.o.d"
  "ced_test"
  "ced_test.pdb"
  "ced_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ced_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
