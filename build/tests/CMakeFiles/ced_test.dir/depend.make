# Empty dependencies file for ced_test.
# This may be replaced when dependencies are built.
