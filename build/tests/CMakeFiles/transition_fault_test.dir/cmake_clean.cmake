file(REMOVE_RECURSE
  "CMakeFiles/transition_fault_test.dir/transition_fault_test.cpp.o"
  "CMakeFiles/transition_fault_test.dir/transition_fault_test.cpp.o.d"
  "transition_fault_test"
  "transition_fault_test.pdb"
  "transition_fault_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transition_fault_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
