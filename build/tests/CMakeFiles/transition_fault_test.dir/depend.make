# Empty dependencies file for transition_fault_test.
# This may be replaced when dependencies are built.
