file(REMOVE_RECURSE
  "CMakeFiles/biased_input_test.dir/biased_input_test.cpp.o"
  "CMakeFiles/biased_input_test.dir/biased_input_test.cpp.o.d"
  "biased_input_test"
  "biased_input_test.pdb"
  "biased_input_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biased_input_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
