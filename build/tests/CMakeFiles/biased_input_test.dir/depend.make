# Empty dependencies file for biased_input_test.
# This may be replaced when dependencies are built.
