file(REMOVE_RECURSE
  "CMakeFiles/algebraic_test.dir/algebraic_test.cpp.o"
  "CMakeFiles/algebraic_test.dir/algebraic_test.cpp.o.d"
  "algebraic_test"
  "algebraic_test.pdb"
  "algebraic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/algebraic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
