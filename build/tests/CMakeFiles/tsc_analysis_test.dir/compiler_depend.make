# Empty compiler generated dependencies file for tsc_analysis_test.
# This may be replaced when dependencies are built.
