file(REMOVE_RECURSE
  "CMakeFiles/tsc_analysis_test.dir/tsc_analysis_test.cpp.o"
  "CMakeFiles/tsc_analysis_test.dir/tsc_analysis_test.cpp.o.d"
  "tsc_analysis_test"
  "tsc_analysis_test.pdb"
  "tsc_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsc_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
