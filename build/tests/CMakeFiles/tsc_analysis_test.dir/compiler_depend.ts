# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for tsc_analysis_test.
