file(REMOVE_RECURSE
  "CMakeFiles/bdd_ops_test.dir/bdd_ops_test.cpp.o"
  "CMakeFiles/bdd_ops_test.dir/bdd_ops_test.cpp.o.d"
  "bdd_ops_test"
  "bdd_ops_test.pdb"
  "bdd_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bdd_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
