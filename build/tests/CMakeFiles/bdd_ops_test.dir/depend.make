# Empty dependencies file for bdd_ops_test.
# This may be replaced when dependencies are built.
