# Empty dependencies file for odc_analysis_test.
# This may be replaced when dependencies are built.
