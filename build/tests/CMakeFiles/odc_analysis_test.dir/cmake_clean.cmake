file(REMOVE_RECURSE
  "CMakeFiles/odc_analysis_test.dir/odc_analysis_test.cpp.o"
  "CMakeFiles/odc_analysis_test.dir/odc_analysis_test.cpp.o.d"
  "odc_analysis_test"
  "odc_analysis_test.pdb"
  "odc_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odc_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
