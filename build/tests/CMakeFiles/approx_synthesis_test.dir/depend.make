# Empty dependencies file for approx_synthesis_test.
# This may be replaced when dependencies are built.
