file(REMOVE_RECURSE
  "CMakeFiles/approx_synthesis_test.dir/approx_synthesis_test.cpp.o"
  "CMakeFiles/approx_synthesis_test.dir/approx_synthesis_test.cpp.o.d"
  "approx_synthesis_test"
  "approx_synthesis_test.pdb"
  "approx_synthesis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_synthesis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
