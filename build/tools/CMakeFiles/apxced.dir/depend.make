# Empty dependencies file for apxced.
# This may be replaced when dependencies are built.
