file(REMOVE_RECURSE
  "CMakeFiles/apxced.dir/apxced.cpp.o"
  "CMakeFiles/apxced.dir/apxced.cpp.o.d"
  "apxced"
  "apxced.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/apxced.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
