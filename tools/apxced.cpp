// apxced — command-line driver for the approximate-logic CED flow.
//
//   apxced stats   <circuit>                      network statistics
//   apxced convert <in> <out>                     format conversion
//   apxced synth   <circuit> [options]            synthesize the approximate
//                                                 check-symbol generator
//   apxced ced     <circuit> [options]            full CED report
//
// Options:
//   -t <threshold>   stage-1 significance threshold (default 0.2)
//   -o <file>        output file for `synth` (BLIF/.bench/.pla by extension)
//   --share          enable logic sharing (intrusive CED)
//   --samples <n>    fault-injection samples (default 2000)
//   --threads <n>    fault-simulation worker threads (default: all hardware
//                    threads; results are bit-identical for any count)
//   --profile        print a per-phase wall-time / counter table to stderr
//                    after the run (synth/ced)
//   --trace <file>   write a Chrome-tracing JSON (chrome://tracing or
//                    https://ui.perfetto.dev) of the run (synth/ced)
//
// Circuits are read by extension: .blif, .bench, .pla.
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include "core/pipeline.hpp"
#include "core/trace.hpp"
#include "mapping/optimize.hpp"
#include "network/bench_format.hpp"
#include "network/blif.hpp"
#include "network/pla.hpp"

namespace {

using namespace apx;

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

Network read_any(const std::string& path) {
  if (ends_with(path, ".blif")) return read_blif_file(path);
  if (ends_with(path, ".bench")) return read_bench_file(path);
  if (ends_with(path, ".pla")) return pla_to_network(read_pla_file(path));
  throw std::runtime_error("unknown input format (want .blif/.bench/.pla): " +
                           path);
}

void write_any(const Network& net, const std::string& path) {
  if (ends_with(path, ".blif")) {
    write_blif_file(net, path);
  } else if (ends_with(path, ".bench")) {
    write_bench_file(net, path);
  } else if (ends_with(path, ".pla")) {
    write_pla_file(network_to_pla(net), path);
  } else {
    throw std::runtime_error("unknown output format: " + path);
  }
}

int cmd_stats(const std::string& path) {
  Network net = read_any(path);
  Network mapped = technology_map(quick_synthesis(net));
  std::printf("%-20s %s\n", "name", net.name().c_str());
  std::printf("%-20s %d\n", "primary inputs", net.num_pis());
  std::printf("%-20s %d\n", "primary outputs", net.num_pos());
  std::printf("%-20s %d\n", "logic nodes", net.num_logic_nodes());
  std::printf("%-20s %d\n", "SOP literals", net.total_literals());
  std::printf("%-20s %d\n", "mapped gates", mapped.num_logic_nodes());
  std::printf("%-20s %d\n", "mapped depth", mapped.depth());
  return 0;
}

int cmd_convert(const std::string& in, const std::string& out) {
  Network net = read_any(in);
  write_any(net, out);
  std::printf("wrote %s (%d nodes, %d POs)\n", out.c_str(),
              net.num_logic_nodes(), net.num_pos());
  return 0;
}

struct CommonArgs {
  double threshold = 0.2;
  std::string output;
  bool share = false;
  int samples = 2000;
  int threads = 0;  // 0 = all hardware threads
  std::string trace_path;
  bool profile = false;
};

CommonArgs parse_common(int argc, char** argv, int start) {
  CommonArgs args;
  for (int i = start; i < argc; ++i) {
    std::string a = argv[i];
    auto need_value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        throw std::runtime_error(std::string(flag) + " needs a value");
      }
      return argv[++i];
    };
    if (a == "-t") {
      args.threshold = std::stod(need_value("-t"));
    } else if (a == "-o") {
      args.output = need_value("-o");
    } else if (a == "--share") {
      args.share = true;
    } else if (a == "--samples") {
      args.samples = std::stoi(need_value("--samples"));
    } else if (a == "--threads") {
      args.threads = std::stoi(need_value("--threads"));
    } else if (a == "--trace") {
      args.trace_path = need_value("--trace");
    } else if (a == "--profile") {
      args.profile = true;
    } else {
      throw std::runtime_error("unknown option: " + a);
    }
  }
  return args;
}

void begin_tracing(const CommonArgs& args) {
  if (args.profile || !args.trace_path.empty()) trace::set_trace_enabled(true);
}

void finish_tracing(const CommonArgs& args) {
  if (!args.trace_path.empty()) {
    trace::write_chrome_trace(args.trace_path);
    std::fprintf(stderr, "wrote trace to %s\n", args.trace_path.c_str());
  }
  if (args.profile) trace::write_profile(stderr);
}

PipelineOptions to_options(const CommonArgs& args) {
  PipelineOptions opt;
  opt.approx.significance_threshold = args.threshold;
  opt.reliability.num_fault_samples = args.samples;
  opt.reliability.num_threads = args.threads;
  opt.coverage.num_fault_samples = args.samples;
  opt.coverage.num_threads = args.threads;
  opt.logic_sharing = args.share;
  return opt;
}

int cmd_synth(const std::string& path, const CommonArgs& args) {
  begin_tracing(args);
  Network net = read_any(path);
  PipelineResult r = run_ced_pipeline(net, to_options(args));
  finish_tracing(args);
  std::printf("directions: ");
  for (auto d : r.directions) {
    std::printf("%c", d == ApproxDirection::kZeroApprox ? '0' : '1');
  }
  std::printf("\nverified: %s   mean approximation: %.1f%%\n",
              r.synthesis.all_verified() ? "yes" : "NO",
              100.0 * r.mean_approximation_pct());
  std::printf("check generator: %d gates (original %d), depth %d (vs %d)\n",
              r.mapped_checkgen.num_logic_nodes(),
              r.mapped_original.num_logic_nodes(), r.checkgen_delay,
              r.original_delay);
  if (!args.output.empty()) {
    write_any(r.synthesis.approx, args.output);
    std::printf("wrote %s\n", args.output.c_str());
  }
  return r.synthesis.all_verified() ? 0 : 1;
}

int cmd_ced(const std::string& path, const CommonArgs& args) {
  begin_tracing(args);
  Network net = read_any(path);
  PipelineResult r = run_ced_pipeline(net, to_options(args));
  finish_tracing(args);
  std::printf("%-24s %.1f%%\n", "area overhead",
              r.overheads.area_overhead_pct());
  std::printf("%-24s %.1f%%\n", "power overhead",
              r.overheads.power_overhead_pct());
  std::printf("%-24s %.1f%% (incl. checkers)\n", "total area overhead",
              r.overheads.area_overhead_with_checkers_pct());
  std::printf("%-24s %.1f%%\n", "CED coverage",
              100.0 * r.coverage.coverage());
  std::printf("%-24s %.1f%%\n", "max attainable coverage",
              100.0 * r.reliability.max_ced_coverage);
  std::printf("%-24s %d -> %d levels\n", "delay (orig -> approx)",
              r.original_delay, r.checkgen_delay);
  if (args.share) {
    std::printf("%-24s %d nodes merged\n", "logic sharing",
                r.sharing.merged_nodes);
  }
  if (!args.output.empty()) {
    write_any(r.ced.design, args.output);
    std::printf("wrote CED design to %s\n", args.output.c_str());
  }
  return r.synthesis.all_verified() ? 0 : 1;
}

int usage() {
  std::fprintf(stderr,
               "usage: apxced <stats|convert|synth|ced> <circuit> "
               "[options]\n  see the header of tools/apxced.cpp\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  std::string cmd = argv[1];
  try {
    if (cmd == "stats") return cmd_stats(argv[2]);
    if (cmd == "convert") {
      if (argc < 4) return usage();
      return cmd_convert(argv[2], argv[3]);
    }
    if (cmd == "synth") return cmd_synth(argv[2], parse_common(argc, argv, 3));
    if (cmd == "ced") return cmd_ced(argv[2], parse_common(argc, argv, 3));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "apxced: %s\n", e.what());
    return 1;
  }
  return usage();
}
