// Algebraic (weak) division and kernel extraction (Brayton–McMullen), the
// classic multi-level factoring machinery. Used by the technology mapper's
// factoring script to find good divisors, which directly lowers the gate
// count of both the original and the approximate circuits.
//
// All operations treat SOPs as algebraic expressions: cubes are products of
// literals, covers are sums, and division is defined so that
//   f = quotient * divisor + remainder
// holds as an algebraic identity (no Boolean simplification).
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "sop/sop.hpp"

namespace apx {

/// Cube-by-cube quotient: c / d is defined when every literal of d appears
/// in c; the result is c with d's literals removed.
std::optional<Cube> cube_quotient(const Cube& c, const Cube& d);

/// Algebraic division of cover f by cover d. Returns (quotient, remainder)
/// with f = quotient*d + remainder (as cube multisets). The quotient is
/// empty when d does not algebraically divide f.
std::pair<Sop, Sop> algebraic_divide(const Sop& f, const Sop& d);

/// Product of two covers as an algebraic expression (concatenates literals
/// cube-by-cube; cubes with clashing literals are dropped).
Sop algebraic_product(const Sop& a, const Sop& b);

/// The largest cube dividing every cube of f (its "common cube").
Cube common_cube(const Sop& f);

/// Is f cube-free (no literal common to all cubes, and more than one cube
/// or a single non-trivial structure)?
bool is_cube_free(const Sop& f);

/// A kernel of f and the co-kernel cube that produced it.
struct Kernel {
  Sop kernel;
  Cube co_kernel;
};

/// All kernels of f (level-0 and higher), including f itself if cube-free.
std::vector<Kernel> find_kernels(const Sop& f);

/// Heuristically selects the kernel whose extraction saves the most
/// literals; returns nullopt when f has no non-trivial kernel.
std::optional<Kernel> best_kernel(const Sop& f);

}  // namespace apx
