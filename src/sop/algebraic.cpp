#include "sop/algebraic.hpp"

#include <algorithm>
#include <cassert>

namespace apx {

std::optional<Cube> cube_quotient(const Cube& c, const Cube& d) {
  assert(c.num_vars() == d.num_vars());
  Cube q = Cube::full(c.num_vars());
  for (int v = 0; v < c.num_vars(); ++v) {
    LitCode dc = d.get(v);
    LitCode cc = c.get(v);
    if (dc == LitCode::kFree) {
      q.set(v, cc);
      continue;
    }
    if (cc != dc) return std::nullopt;  // d's literal absent (or clashing)
    // Literal cancels out of the quotient.
  }
  return q;
}

std::pair<Sop, Sop> algebraic_divide(const Sop& f, const Sop& d) {
  assert(f.num_vars() == d.num_vars());
  if (d.empty()) return {Sop(f.num_vars()), f};

  // Quotient = intersection over d's cubes of { c / d_i : c in f }.
  std::vector<Cube> quotient;
  bool first = true;
  for (const Cube& di : d.cubes()) {
    std::vector<Cube> vi;
    for (const Cube& c : f.cubes()) {
      if (auto q = cube_quotient(c, di)) vi.push_back(*q);
    }
    std::sort(vi.begin(), vi.end());
    if (first) {
      quotient = std::move(vi);
      first = false;
    } else {
      std::vector<Cube> merged;
      std::set_intersection(quotient.begin(), quotient.end(), vi.begin(),
                            vi.end(), std::back_inserter(merged));
      quotient = std::move(merged);
    }
    if (quotient.empty()) break;
  }
  Sop q(f.num_vars(), quotient);

  // Remainder = f minus the cubes of q*d.
  Sop product = algebraic_product(q, d);
  std::vector<Cube> product_cubes = product.cubes();
  std::sort(product_cubes.begin(), product_cubes.end());
  Sop r(f.num_vars());
  std::vector<bool> used(product_cubes.size(), false);
  for (const Cube& c : f.cubes()) {
    auto it = std::lower_bound(product_cubes.begin(), product_cubes.end(), c);
    bool matched = false;
    while (it != product_cubes.end() && *it == c) {
      size_t idx = static_cast<size_t>(it - product_cubes.begin());
      if (!used[idx]) {
        used[idx] = true;
        matched = true;
        break;
      }
      ++it;
    }
    if (!matched) r.add_cube(c);
  }
  return {std::move(q), std::move(r)};
}

Sop algebraic_product(const Sop& a, const Sop& b) {
  Sop result(a.num_vars());
  for (const Cube& ca : a.cubes()) {
    for (const Cube& cb : b.cubes()) {
      // Literal-wise union; drop cubes with clashing phases (x * x' = 0 in
      // the Boolean sense; algebraically the operands should be disjoint-
      // support anyway).
      Cube c = Cube::full(a.num_vars());
      bool clash = false;
      for (int v = 0; v < a.num_vars() && !clash; ++v) {
        LitCode la = ca.get(v);
        LitCode lb = cb.get(v);
        if (la == LitCode::kFree) {
          c.set(v, lb);
        } else if (lb == LitCode::kFree || lb == la) {
          c.set(v, la);
        } else {
          clash = true;
        }
      }
      if (!clash) result.add_cube(c);
    }
  }
  return result;
}

Cube common_cube(const Sop& f) {
  if (f.empty()) return Cube::full(f.num_vars());
  Cube common = f.cube(0);
  for (int i = 1; i < f.num_cubes(); ++i) {
    const Cube& c = f.cube(i);
    for (int v = 0; v < f.num_vars(); ++v) {
      if (common.get(v) != LitCode::kFree && common.get(v) != c.get(v)) {
        common.set(v, LitCode::kFree);
      }
    }
  }
  return common;
}

bool is_cube_free(const Sop& f) {
  if (f.num_cubes() <= 1) return false;
  return common_cube(f).literal_count() == 0;
}

namespace {

// Divide f by a single literal (var, phase): quotient cubes only.
Sop literal_quotient(const Sop& f, int var, LitCode code) {
  Sop q(f.num_vars());
  for (const Cube& c : f.cubes()) {
    if (c.get(var) == code) q.add_cube(c.without_var(var));
  }
  return q;
}

void kernels_rec(const Sop& f, const Cube& co_kernel, int start_literal,
                 std::vector<Kernel>& out) {
  const int n = f.num_vars();
  // Each "literal index" packs (var, phase): 2*var + (pos ? 0 : 1).
  for (int li = start_literal; li < 2 * n; ++li) {
    int var = li / 2;
    LitCode code = (li % 2 == 0) ? LitCode::kPos : LitCode::kNeg;
    // Count occurrences.
    int count = 0;
    for (const Cube& c : f.cubes()) {
      if (c.get(var) == code) ++count;
    }
    if (count < 2) continue;
    Sop q = literal_quotient(f, var, code);
    Cube cc = common_cube(q);
    // Skip if the common cube contains a literal with a smaller index:
    // that kernel was (or will be) found from that literal instead.
    bool skip = false;
    for (int v = 0; v < n && !skip; ++v) {
      LitCode l = cc.get(v);
      if (l == LitCode::kFree) continue;
      int idx = 2 * v + (l == LitCode::kPos ? 0 : 1);
      if (idx < li) skip = true;
    }
    if (skip) continue;
    // Make cube-free.
    Sop kernel(q.num_vars());
    for (const Cube& c : q.cubes()) {
      Cube reduced = c;
      for (int v = 0; v < n; ++v) {
        if (cc.get(v) != LitCode::kFree) reduced.set(v, LitCode::kFree);
      }
      kernel.add_cube(reduced);
    }
    // Build the co-kernel: existing co-kernel * literal * common cube.
    Cube ck = co_kernel;
    ck.set(var, code);
    for (int v = 0; v < n; ++v) {
      if (cc.get(v) != LitCode::kFree) ck.set(v, cc.get(v));
    }
    kernels_rec(kernel, ck, li + 1, out);
    out.push_back({kernel, ck});
  }
}

}  // namespace

std::vector<Kernel> find_kernels(const Sop& f) {
  std::vector<Kernel> out;
  kernels_rec(f, Cube::full(f.num_vars()), 0, out);
  if (is_cube_free(f)) {
    out.push_back({f, Cube::full(f.num_vars())});
  }
  return out;
}

std::optional<Kernel> best_kernel(const Sop& f) {
  std::vector<Kernel> kernels = find_kernels(f);
  const Kernel* best = nullptr;
  int best_savings = 0;
  for (const Kernel& k : kernels) {
    if (k.kernel.num_cubes() < 2) continue;
    if (k.kernel.num_cubes() == f.num_cubes() &&
        k.co_kernel.literal_count() == 0) {
      continue;  // the trivial kernel (f itself)
    }
    auto [q, r] = algebraic_divide(f, k.kernel);
    if (q.empty()) continue;
    // Literal cost of f vs factored (q * kernel + r).
    int before = f.literal_count();
    int after = q.literal_count() + k.kernel.literal_count() +
                r.literal_count();
    int savings = before - after;
    if (savings > best_savings) {
      best_savings = savings;
      best = &k;
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

}  // namespace apx
