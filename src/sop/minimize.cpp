#include "sop/minimize.hpp"

#include <algorithm>
#include <cassert>

namespace apx {
namespace {

// Greedy literal removal: try to free each bound literal of `c`; keep the
// removal if the enlarged cube still does not intersect any offset cube.
Cube expand_cube(Cube c, const Sop& offset) {
  const int n = c.num_vars();
  // Order variables by how many offset cubes would block their removal,
  // removing the least-blocked literals first.
  std::vector<int> order;
  for (int v = 0; v < n; ++v) {
    if (c.get(v) != LitCode::kFree) order.push_back(v);
  }
  std::vector<int> blockers(n, 0);
  for (int v : order) {
    Cube t = c.without_var(v);
    for (const Cube& off : offset.cubes()) {
      if (t.distance(off) == 0) ++blockers[v];
    }
  }
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return blockers[a] < blockers[b]; });
  for (int v : order) {
    Cube t = c.without_var(v);
    bool clash = false;
    for (const Cube& off : offset.cubes()) {
      if (t.distance(off) == 0) {
        clash = true;
        break;
      }
    }
    if (!clash) c = t;
  }
  return c;
}

// REDUCE: shrink cube c to the smallest cube covering the part of the onset
// that only c covers. We use the standard formulation: c reduced =
// smallest cube containing c AND complement(rest + dc) cofactored by c.
Cube reduce_cube(const Cube& c, const Sop& rest_plus_dc) {
  Sop cof = rest_plus_dc.cofactor(c);
  Sop comp = Sop::complement(cof);
  if (comp.empty()) return c;  // cube fully covered elsewhere; leave intact
  // Supercube of comp, then intersect with c.
  const int n = c.num_vars();
  Cube super = comp.cube(0);
  for (int i = 1; i < comp.num_cubes(); ++i) {
    const Cube& o = comp.cube(i);
    for (int v = 0; v < n; ++v) {
      LitCode a = super.get(v);
      LitCode b = o.get(v);
      super.set(v, static_cast<LitCode>(static_cast<uint8_t>(a) |
                                        static_cast<uint8_t>(b)));
    }
  }
  auto reduced = c.intersect(super);
  return reduced ? *reduced : c;
}

}  // namespace

Sop expand_against_offset(const Sop& cover, const Sop& offset) {
  Sop result(cover.num_vars());
  for (const Cube& c : cover.cubes()) {
    result.add_cube(expand_cube(c, offset));
  }
  result.make_scc_free();
  return result;
}

Sop irredundant(const Sop& cover, const Sop& dc) {
  // Greedy: walk cubes largest-first; drop a cube if the remaining cover
  // plus dc still covers it.
  std::vector<Cube> cubes = cover.cubes();
  std::sort(cubes.begin(), cubes.end(), [](const Cube& a, const Cube& b) {
    return a.literal_count() > b.literal_count();
  });
  std::vector<bool> removed(cubes.size(), false);
  // Scratch cover reused across probes: the dc cubes form a fixed prefix,
  // each probe truncates back to it and appends the surviving other cubes.
  // A cover is a set (order-independent), so hoisting dc to the front
  // changes nothing semantically.
  Sop rest(cover.num_vars());
  for (const Cube& d : dc.cubes()) rest.add_cube(d);
  const int dc_prefix = rest.num_cubes();
  for (size_t i = 0; i < cubes.size(); ++i) {
    rest.truncate(dc_prefix);
    for (size_t j = 0; j < cubes.size(); ++j) {
      if (j != i && !removed[j]) rest.add_cube(cubes[j]);
    }
    if (rest.covers_cube(cubes[i])) removed[i] = true;
  }
  Sop result(cover.num_vars());
  for (size_t i = 0; i < cubes.size(); ++i) {
    if (!removed[i]) result.add_cube(cubes[i]);
  }
  return result;
}

Sop minimize(const Sop& onset, const Sop& dc, const MinimizeOptions& options) {
  assert(onset.num_vars() == dc.num_vars());
  Sop care = Sop::disjunction(onset, dc);
  Sop offset = Sop::complement(care);
  Sop cover = onset;
  cover.make_scc_free();
  cover = expand_against_offset(cover, offset);
  cover = irredundant(cover, dc);
  // Scratch rest-cover for REDUCE, hoisted out of the refinement loop: the
  // dc cubes never change, so they sit as a fixed prefix and each cube's
  // probe rebuilds only the tail (covers are order-independent sets).
  Sop rest(cover.num_vars());
  for (const Cube& d : dc.cubes()) rest.add_cube(d);
  const int dc_prefix = rest.num_cubes();
  for (int iter = 0; iter < options.refine_iterations; ++iter) {
    // REDUCE / EXPAND / IRREDUNDANT refinement.
    Sop reduced(cover.num_vars());
    for (int i = 0; i < cover.num_cubes(); ++i) {
      rest.truncate(dc_prefix);
      for (int j = 0; j < cover.num_cubes(); ++j) {
        if (j != i) rest.add_cube(cover.cube(j));
      }
      reduced.add_cube(reduce_cube(cover.cube(i), rest));
    }
    Sop next = expand_against_offset(reduced, offset);
    next = irredundant(next, dc);
    if (next.literal_count() >= cover.literal_count() &&
        next.num_cubes() >= cover.num_cubes()) {
      break;
    }
    cover = next;
  }
  return cover;
}

}  // namespace apx
