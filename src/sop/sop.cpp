#include "sop/sop.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace apx {

Sop::Sop(int num_vars, std::vector<Cube> cubes)
    : num_vars_(num_vars), cubes_(std::move(cubes)) {
  for (const Cube& c : cubes_) {
    assert(c.num_vars() == num_vars_);
    (void)c;
  }
}

Sop Sop::one(int num_vars) {
  Sop s(num_vars);
  s.add_cube(Cube::full(num_vars));
  return s;
}

std::optional<Sop> Sop::parse(int num_vars, const std::string& text) {
  Sop s(num_vars);
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    // Trim whitespace.
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r'))
      line.pop_back();
    size_t start = line.find_first_not_of(' ');
    if (start == std::string::npos) continue;
    line = line.substr(start);
    if (line.empty()) continue;
    auto cube = Cube::parse(line);
    if (!cube || cube->num_vars() != num_vars) return std::nullopt;
    s.add_cube(*cube);
  }
  return s;
}

int Sop::literal_count() const {
  int total = 0;
  for (const Cube& c : cubes_) total += c.literal_count();
  return total;
}

void Sop::add_cube(Cube c) {
  assert(c.num_vars() == num_vars_);
  if (c.is_empty()) return;
  cubes_.push_back(std::move(c));
}

bool Sop::covers_minterm(uint64_t minterm) const {
  for (const Cube& c : cubes_) {
    if (c.covers_minterm(minterm)) return true;
  }
  return false;
}

Sop Sop::cofactor(int var, bool value) const {
  Sop result(num_vars_);
  for (const Cube& c : cubes_) {
    if (auto cf = c.cofactor(var, value)) result.add_cube(*cf);
  }
  return result;
}

Sop Sop::cofactor(const Cube& q) const {
  // espresso cofactor: cube c contributes c with q's bound vars freed,
  // provided c intersects q.
  Sop result(num_vars_);
  for (const Cube& c : cubes_) {
    if (c.distance(q) > 0) continue;
    Cube r = c;
    for (int v = 0; v < num_vars_; ++v) {
      if (q.get(v) != LitCode::kFree) r.set(v, LitCode::kFree);
    }
    result.add_cube(r);
  }
  return result;
}

void Sop::make_scc_free() {
  // Remove empty cubes and cubes contained in another cube. Sort by
  // descending free count so potential containers come first.
  std::vector<Cube> kept;
  std::sort(cubes_.begin(), cubes_.end(), [](const Cube& a, const Cube& b) {
    return a.literal_count() < b.literal_count();
  });
  for (const Cube& c : cubes_) {
    if (c.is_empty()) continue;
    bool contained = false;
    for (const Cube& k : kept) {
      if (k.contains(c)) {
        contained = true;
        break;
      }
    }
    if (!contained) kept.push_back(c);
  }
  cubes_ = std::move(kept);
}

Sop Sop::disjunction(const Sop& a, const Sop& b) {
  assert(a.num_vars_ == b.num_vars_);
  Sop result = a;
  for (const Cube& c : b.cubes_) result.add_cube(c);
  return result;
}

Sop Sop::conjunction(const Sop& a, const Sop& b) {
  assert(a.num_vars_ == b.num_vars_);
  Sop result(a.num_vars_);
  for (const Cube& ca : a.cubes_) {
    for (const Cube& cb : b.cubes_) {
      if (auto i = ca.intersect(cb)) result.add_cube(*i);
    }
  }
  result.make_scc_free();
  return result;
}

namespace {

// Merge result for the Shannon recombination in complement():
// x'·c0 + x·c1, with single-cube-containment cleanup.
Sop shannon_merge(int var, const Sop& c0, const Sop& c1, int num_vars) {
  Sop result(num_vars);
  for (Cube c : c0.cubes()) {
    // Only bind the splitting var if the cube is not also present in c1
    // (simple merge of identical cubes saves literals).
    c.set(var, LitCode::kNeg);
    result.add_cube(std::move(c));
  }
  for (Cube c : c1.cubes()) {
    c.set(var, LitCode::kPos);
    result.add_cube(std::move(c));
  }
  // Merge x'·c with x·c into c.
  Sop merged(num_vars);
  std::vector<bool> used(result.num_cubes(), false);
  for (int i = 0; i < result.num_cubes(); ++i) {
    if (used[i]) continue;
    Cube ci = result.cube(i);
    LitCode li = ci.get(var);
    bool fused = false;
    if (li != LitCode::kFree) {
      for (int j = i + 1; j < result.num_cubes(); ++j) {
        if (used[j]) continue;
        Cube cj = result.cube(j);
        LitCode lj = cj.get(var);
        if (lj == LitCode::kFree || lj == li) continue;
        if (ci.without_var(var) == cj.without_var(var)) {
          used[j] = true;
          merged.add_cube(ci.without_var(var));
          fused = true;
          break;
        }
      }
    }
    if (!fused) merged.add_cube(ci);
  }
  merged.make_scc_free();
  return merged;
}

}  // namespace

Sop Sop::complement(const Sop& f) {
  const int n = f.num_vars();
  // Terminal cases.
  if (f.empty()) return Sop::one(n);
  for (const Cube& c : f.cubes()) {
    if (c.is_full()) return Sop::zero(n);
  }
  if (f.num_cubes() == 1) {
    // DeMorgan on a single cube: one cube per bound literal.
    Sop result(n);
    const Cube& c = f.cube(0);
    for (int v = 0; v < n; ++v) {
      LitCode code = c.get(v);
      if (code == LitCode::kNeg || code == LitCode::kPos) {
        Cube lit = Cube::full(n);
        lit.set(v, code == LitCode::kNeg ? LitCode::kPos : LitCode::kNeg);
        result.add_cube(std::move(lit));
      }
    }
    return result;
  }
  int var = f.most_binate_var();
  if (var < 0) {
    // Unate cover: split on the most frequently bound variable anyway;
    // recursion still terminates since cofactoring frees the variable.
    std::vector<int> count(n, 0);
    for (const Cube& c : f.cubes()) {
      for (int v = 0; v < n; ++v) {
        if (c.get(v) != LitCode::kFree) ++count[v];
      }
    }
    var = static_cast<int>(
        std::max_element(count.begin(), count.end()) - count.begin());
    if (count[var] == 0) {
      // All cubes full: handled above, so unreachable; defensive.
      return Sop::zero(n);
    }
  }
  Sop c0 = complement(f.cofactor(var, false));
  Sop c1 = complement(f.cofactor(var, true));
  return shannon_merge(var, c0, c1, n);
}

Sop Sop::cube_sharp(const Cube& a, const Cube& b) {
  const int n = a.num_vars();
  Sop result(n);
  if (a.is_empty()) return result;
  if (a.distance(b) > 0) {
    result.add_cube(a);  // disjoint: nothing removed
    return result;
  }
  // For each variable where b binds tighter than a, emit a with that
  // variable flipped to b's complementary phase.
  for (int v = 0; v < n; ++v) {
    LitCode la = a.get(v);
    LitCode lb = b.get(v);
    if (lb == LitCode::kFree || la == lb) continue;
    // Here la is kFree (a looser than b at v) — otherwise distance > 0.
    Cube piece = a;
    piece.set(v, lb == LitCode::kPos ? LitCode::kNeg : LitCode::kPos);
    result.add_cube(piece);
  }
  return result;
}

Sop Sop::cube_disjoint_sharp(const Cube& a, const Cube& b) {
  const int n = a.num_vars();
  Sop result(n);
  if (a.is_empty()) return result;
  if (a.distance(b) > 0) {
    result.add_cube(a);
    return result;
  }
  // Sequential splitting: fix processed variables to b's phase so pieces
  // are pairwise disjoint.
  Cube base = a;
  for (int v = 0; v < n; ++v) {
    LitCode la = a.get(v);
    LitCode lb = b.get(v);
    if (lb == LitCode::kFree || la == lb) continue;
    Cube piece = base;
    piece.set(v, lb == LitCode::kPos ? LitCode::kNeg : LitCode::kPos);
    result.add_cube(piece);
    base.set(v, lb);
  }
  return result;
}

Sop Sop::sharp(const Sop& f, const Sop& g) {
  Sop result = f;
  for (const Cube& b : g.cubes()) {
    Sop next(f.num_vars());
    for (const Cube& a : result.cubes()) {
      Sop pieces = cube_sharp(a, b);
      for (const Cube& piece : pieces.cubes()) {
        next.add_cube(piece);
      }
    }
    next.make_scc_free();
    result = std::move(next);
  }
  return result;
}

Sop Sop::make_disjoint(const Sop& f) {
  Sop result(f.num_vars());
  for (const Cube& c : f.cubes()) {
    // Add c minus everything already in the result, as disjoint pieces.
    std::vector<Cube> pieces = {c};
    for (const Cube& prev : result.cubes()) {
      std::vector<Cube> next;
      for (const Cube& piece : pieces) {
        Sop shards = cube_disjoint_sharp(piece, prev);
        for (const Cube& p : shards.cubes()) {
          next.push_back(p);
        }
      }
      pieces = std::move(next);
      if (pieces.empty()) break;
    }
    for (const Cube& piece : pieces) result.add_cube(piece);
  }
  return result;
}

bool Sop::tautology(const Sop& f) {
  if (f.empty()) return false;
  for (const Cube& c : f.cubes()) {
    if (c.is_full()) return true;
  }
  int var = f.most_binate_var();
  if (var < 0) {
    // Unate cover with no full cube is never a tautology.
    return false;
  }
  return tautology(f.cofactor(var, false)) && tautology(f.cofactor(var, true));
}

bool Sop::implies(const Sop& a, const Sop& b) {
  assert(a.num_vars() == b.num_vars());
  for (const Cube& c : a.cubes()) {
    if (!b.covers_cube(c)) return false;
  }
  return true;
}

bool Sop::covers_cube(const Cube& c) const {
  if (c.is_empty()) return true;
  return tautology(cofactor(c));
}

double Sop::exact_space_fraction() const {
  // Disjoint-sharp decomposition: fraction(F) = sum over cubes of
  // fraction(c_i sharp (c_0..c_{i-1})). Implemented recursively via
  // cofactor-based counting on the cover.
  struct Counter {
    static double count(const Sop& f) {
      if (f.empty()) return 0.0;
      for (const Cube& c : f.cubes()) {
        if (c.is_full()) return 1.0;
      }
      // Split on any bound var.
      int var = -1;
      for (const Cube& c : f.cubes()) {
        for (int v = 0; v < f.num_vars(); ++v) {
          if (c.get(v) != LitCode::kFree) {
            var = v;
            break;
          }
        }
        if (var >= 0) break;
      }
      if (var < 0) return f.num_cubes() > 0 ? 1.0 : 0.0;
      Sop f0 = f.cofactor(var, false);
      Sop f1 = f.cofactor(var, true);
      f0.make_scc_free();
      f1.make_scc_free();
      return 0.5 * (count(f0) + count(f1));
    }
  };
  Sop f = *this;
  f.make_scc_free();
  return Counter::count(f);
}

bool Sop::is_unate() const { return most_binate_var() < 0; }

int Sop::most_binate_var() const {
  std::vector<int> pos(num_vars_, 0), neg(num_vars_, 0);
  for (const Cube& c : cubes_) {
    for (int v = 0; v < num_vars_; ++v) {
      LitCode code = c.get(v);
      if (code == LitCode::kPos) ++pos[v];
      if (code == LitCode::kNeg) ++neg[v];
    }
  }
  int best = -1;
  int best_score = 0;
  for (int v = 0; v < num_vars_; ++v) {
    if (pos[v] > 0 && neg[v] > 0) {
      int score = pos[v] + neg[v];
      if (score > best_score) {
        best_score = score;
        best = v;
      }
    }
  }
  return best;
}

void Sop::canonicalize() {
  make_scc_free();
  std::sort(cubes_.begin(), cubes_.end());
  cubes_.erase(std::unique(cubes_.begin(), cubes_.end()), cubes_.end());
}

std::string Sop::to_string() const {
  std::string s;
  for (const Cube& c : cubes_) {
    if (!s.empty()) s.push_back('\n');
    s += c.to_string();
  }
  return s;
}

bool Sop::operator==(const Sop& other) const {
  return num_vars_ == other.num_vars_ && cubes_ == other.cubes_;
}

}  // namespace apx
