// Espresso-style heuristic two-level minimization: EXPAND against the
// off-set, IRREDUNDANT via tautology checking, and an optional REDUCE pass.
// Used by the quick-synthesis/mapping flow and by the approximation stage
// when rewriting node SOPs (paper Sec. 2.2 "Approximation of SOPs").
#pragma once

#include "sop/sop.hpp"

namespace apx {

/// Options for the heuristic minimizer.
struct MinimizeOptions {
  /// Run the REDUCE/EXPAND refinement loop this many extra times.
  int refine_iterations = 1;
};

/// Expands each cube of `cover` to a prime of (cover + dc) by removing
/// literals while staying disjoint from `offset`. Returns an SCC-free cover.
Sop expand_against_offset(const Sop& cover, const Sop& offset);

/// Removes cubes that are covered by (rest of cover + dc).
Sop irredundant(const Sop& cover, const Sop& dc);

/// Heuristic minimization of the incompletely specified function
/// (onset, dc). The result covers onset and is contained in onset + dc.
Sop minimize(const Sop& onset, const Sop& dc,
             const MinimizeOptions& options = {});

/// Convenience: minimize a completely specified cover.
inline Sop minimize(const Sop& onset) {
  return minimize(onset, Sop::zero(onset.num_vars()));
}

}  // namespace apx
