#include "sop/cube.hpp"

#include <bit>
#include <cassert>
#include <cmath>

namespace apx {
namespace {

// Repeating 01 / 10 masks used to detect empty (00) positions in a word.
constexpr uint64_t kLoBits = 0x5555555555555555ULL;  // low bit of each pair
constexpr uint64_t kHiBits = 0xAAAAAAAAAAAAAAAAULL;  // high bit of each pair

int words_needed(int num_vars) { return (num_vars + 31) / 32; }

// Mask selecting only the pairs belonging to real variables in the last word.
uint64_t tail_mask(int num_vars) {
  int used = num_vars % 32;
  if (used == 0) return ~0ULL;
  return (~0ULL) >> (64 - 2 * used);
}

}  // namespace

Cube::Cube(int num_vars) : num_vars_(num_vars) {
  assert(num_vars >= 0);
  words_.assign(words_needed(num_vars), ~0ULL);
  if (!words_.empty()) words_.back() &= tail_mask(num_vars);
}

Cube Cube::full(int num_vars) { return Cube(num_vars); }

Cube Cube::minterm(int num_vars, uint64_t minterm) {
  assert(num_vars <= 64);
  Cube c(num_vars);
  for (int v = 0; v < num_vars; ++v) {
    c.set(v, ((minterm >> v) & 1) ? LitCode::kPos : LitCode::kNeg);
  }
  return c;
}

std::optional<Cube> Cube::parse(const std::string& text) {
  Cube c(static_cast<int>(text.size()));
  for (size_t i = 0; i < text.size(); ++i) {
    switch (text[i]) {
      case '0':
        c.set(static_cast<int>(i), LitCode::kNeg);
        break;
      case '1':
        c.set(static_cast<int>(i), LitCode::kPos);
        break;
      case '-':
      case '2':
        break;  // already free
      default:
        return std::nullopt;
    }
  }
  return c;
}

LitCode Cube::get(int var) const {
  assert(var >= 0 && var < num_vars_);
  return static_cast<LitCode>((words_[word_of(var)] >> shift_of(var)) & 3);
}

void Cube::set(int var, LitCode code) {
  assert(var >= 0 && var < num_vars_);
  uint64_t& w = words_[word_of(var)];
  w &= ~(3ULL << shift_of(var));
  w |= static_cast<uint64_t>(code) << shift_of(var);
}

bool Cube::is_empty() const {
  if (num_vars_ == 0) return false;
  for (size_t i = 0; i < words_.size(); ++i) {
    uint64_t w = words_[i];
    uint64_t mask = (i + 1 == words_.size()) ? tail_mask(num_vars_) : ~0ULL;
    // Fold each pair's bits into the pair's high bit; a pair is 00 (empty
    // position) iff the folded bit is 0.
    uint64_t occupied = ((w & kLoBits) << 1) | (w & kHiBits);
    if ((~occupied & kHiBits & mask) != 0) return true;
  }
  return false;
}

bool Cube::is_full() const {
  for (size_t i = 0; i < words_.size(); ++i) {
    uint64_t mask = (i + 1 == words_.size()) ? tail_mask(num_vars_) : ~0ULL;
    if ((words_[i] & mask) != mask) return false;
  }
  return true;
}

bool Cube::contains(const Cube& other) const {
  assert(num_vars_ == other.num_vars_);
  for (size_t i = 0; i < words_.size(); ++i) {
    if ((other.words_[i] & ~words_[i]) != 0) return false;
  }
  return true;
}

std::optional<Cube> Cube::intersect(const Cube& other) const {
  assert(num_vars_ == other.num_vars_);
  Cube result(num_vars_);
  for (size_t i = 0; i < words_.size(); ++i) {
    result.words_[i] = words_[i] & other.words_[i];
  }
  if (result.is_empty()) return std::nullopt;
  return result;
}

int Cube::distance(const Cube& other) const {
  assert(num_vars_ == other.num_vars_);
  int dist = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    uint64_t w = words_[i] & other.words_[i];
    // Count pairs that became 00.
    uint64_t occupied = ((w & kLoBits) << 1) | (w & kHiBits);
    uint64_t mask = (i + 1 == words_.size()) ? tail_mask(num_vars_) : ~0ULL;
    dist += std::popcount(~occupied & kHiBits & mask);
  }
  return dist;
}

int Cube::literal_count() const {
  int bound = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    uint64_t w = words_[i];
    uint64_t mask = (i + 1 == words_.size()) ? tail_mask(num_vars_) : ~0ULL;
    // A position is bound iff exactly one of its two bits is set.
    uint64_t one_bit = ((w & kLoBits) << 1) ^ (w & kHiBits);
    bound += std::popcount(one_bit & mask);
  }
  return bound;
}

double Cube::space_fraction() const {
  if (is_empty()) return 0.0;
  return std::ldexp(1.0, -literal_count());
}

bool Cube::covers_minterm(uint64_t minterm) const {
  assert(num_vars_ <= 64);
  for (int v = 0; v < num_vars_; ++v) {
    LitCode code = get(v);
    bool bit = (minterm >> v) & 1;
    if (code == LitCode::kEmpty) return false;
    if (code == LitCode::kNeg && bit) return false;
    if (code == LitCode::kPos && !bit) return false;
  }
  return true;
}

std::optional<Cube> Cube::cofactor(int var, bool value) const {
  LitCode code = get(var);
  if (code == LitCode::kEmpty) return std::nullopt;
  if (code == (value ? LitCode::kNeg : LitCode::kPos)) return std::nullopt;
  Cube result = *this;
  result.set(var, LitCode::kFree);
  return result;
}

Cube Cube::without_var(int var) const {
  Cube result = *this;
  result.set(var, LitCode::kFree);
  return result;
}

std::string Cube::to_string() const {
  std::string s;
  s.reserve(num_vars_);
  for (int v = 0; v < num_vars_; ++v) {
    switch (get(v)) {
      case LitCode::kEmpty:
        s.push_back('E');
        break;
      case LitCode::kNeg:
        s.push_back('0');
        break;
      case LitCode::kPos:
        s.push_back('1');
        break;
      case LitCode::kFree:
        s.push_back('-');
        break;
    }
  }
  return s;
}

size_t Cube::hash() const {
  size_t h = static_cast<size_t>(num_vars_) * 0x9E3779B97F4A7C15ULL;
  for (uint64_t w : words_) {
    h ^= w + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

bool Cube::operator<(const Cube& other) const {
  if (num_vars_ != other.num_vars_) return num_vars_ < other.num_vars_;
  return words_ < other.words_;
}

}  // namespace apx
