// Sum-of-products cover over a fixed variable count, with the classical
// two-level operations the synthesis core relies on: cofactoring, tautology,
// unate-recursive complementation, containment, and single-cube-containment
// cleanup. DeMorgan phase conversion (on-set SOP <-> off-set SOP, paper
// Sec. 2.1) is `complement()`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sop/cube.hpp"

namespace apx {

/// A cover (set of cubes, interpreted as their union / logical OR).
class Sop {
 public:
  Sop() = default;

  /// Empty cover (constant 0) over `num_vars` variables.
  explicit Sop(int num_vars) : num_vars_(num_vars) {}

  Sop(int num_vars, std::vector<Cube> cubes);

  /// Constant-one cover: the single full cube.
  static Sop one(int num_vars);

  /// Constant-zero cover: no cubes.
  static Sop zero(int num_vars) { return Sop(num_vars); }

  /// Parses an espresso-style cover, one cube per line, e.g. "1-0\n-11".
  /// Empty string parses to the zero cover. Returns nullopt on bad input
  /// or inconsistent widths.
  static std::optional<Sop> parse(int num_vars, const std::string& text);

  int num_vars() const { return num_vars_; }
  int num_cubes() const { return static_cast<int>(cubes_.size()); }
  bool empty() const { return cubes_.empty(); }
  const std::vector<Cube>& cubes() const { return cubes_; }
  const Cube& cube(int i) const { return cubes_[i]; }

  /// Total bound-literal count across cubes (classic SOP cost measure).
  int literal_count() const;

  void add_cube(Cube c);
  void clear() { cubes_.clear(); }

  /// Keeps only the first `n` cubes (no-op if the cover is already that
  /// small). Lets callers reuse one cover as scratch: fill a fixed prefix
  /// once, truncate back to it, append the per-iteration tail.
  void truncate(int n) {
    if (n < num_cubes()) cubes_.resize(static_cast<size_t>(n));
  }

  /// Does the cover evaluate to 1 on the given minterm (num_vars <= 64)?
  bool covers_minterm(uint64_t minterm) const;

  /// Cofactor of the cover w.r.t. var=value.
  Sop cofactor(int var, bool value) const;

  /// Cofactor of the cover w.r.t. a cube (espresso generalized cofactor).
  Sop cofactor(const Cube& c) const;

  /// Removes cubes contained in other single cubes and empty cubes.
  void make_scc_free();

  /// Union (OR) of two covers over the same variables.
  static Sop disjunction(const Sop& a, const Sop& b);

  /// Product (AND) of two covers (cube-by-cube intersections).
  static Sop conjunction(const Sop& a, const Sop& b);

  /// Unate-recursive complement. The result covers exactly the off-set.
  static Sop complement(const Sop& f);

  /// Sharp (set difference) of two cubes: a # b covers exactly the
  /// minterms of a not in b, as a cover of up to num_vars cubes.
  static Sop cube_sharp(const Cube& a, const Cube& b);

  /// Disjoint sharp: like cube_sharp but the result cubes are pairwise
  /// disjoint (useful for exact counting and disjoint covers).
  static Sop cube_disjoint_sharp(const Cube& a, const Cube& b);

  /// Cover difference f # g (minterms of f not covered by g).
  static Sop sharp(const Sop& f, const Sop& g);

  /// Rewrites the cover as a union of pairwise-disjoint cubes.
  static Sop make_disjoint(const Sop& f);

  /// Is the cover a tautology (covers the whole space)?
  static bool tautology(const Sop& f);

  /// Does cover `a` imply cover `b` (a => b, i.e. every minterm of a is
  /// covered by b)? Implemented as tautology(b cofactored by each cube of a).
  static bool implies(const Sop& a, const Sop& b);

  /// Is cube `c` covered by this cover (c => cover)?
  bool covers_cube(const Cube& c) const;

  /// Exact fraction of the input space covered (via disjoint-cube
  /// decomposition; worst-case exponential, intended for small covers).
  double exact_space_fraction() const;

  /// True if no variable appears in both phases across the cover.
  bool is_unate() const;

  /// Most-binate variable (appears in both phases, maximal occurrence);
  /// returns -1 if the cover is unate.
  int most_binate_var() const;

  /// Canonical sort + dedup (for comparisons in tests).
  void canonicalize();

  std::string to_string() const;

  bool operator==(const Sop& other) const;

 private:
  int num_vars_ = 0;
  std::vector<Cube> cubes_;
};

}  // namespace apx
