// Positional-cube-notation cube over a fixed number of Boolean variables.
//
// Each variable occupies 2 bits using the classic espresso encoding:
//   01 -> variable appears complemented  (the cube requires x = 0)
//   10 -> variable appears positive      (the cube requires x = 1)
//   11 -> variable is free / don't care
//   00 -> empty (contradictory) position; the whole cube denotes the
//         empty set as soon as any position is 00
//
// Cubes are the atoms of the two-level (SOP) layer and of the cube-selection
// algorithms in the approximate-logic synthesis core (paper Sec. 2.1.2).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace apx {

/// 2-bit per-variable literal codes (espresso positional cube notation).
enum class LitCode : uint8_t {
  kEmpty = 0,  ///< contradictory position; cube is the empty set
  kNeg = 1,    ///< literal x' (requires x = 0)
  kPos = 2,    ///< literal x  (requires x = 1)
  kFree = 3,   ///< variable unconstrained
};

/// A product term (cube) over `num_vars` Boolean variables.
class Cube {
 public:
  Cube() = default;

  /// Constructs the full (tautology) cube: every variable free.
  explicit Cube(int num_vars);

  /// Full cube over `num_vars` variables (all positions kFree).
  static Cube full(int num_vars);

  /// Minterm cube from the low `num_vars` bits of `minterm`
  /// (bit i gives the polarity of variable i). Requires num_vars <= 64.
  static Cube minterm(int num_vars, uint64_t minterm);

  /// Parses a cube from espresso-style text, e.g. "1-0" (x0 x2' with x1
  /// free). Accepts characters '0', '1', '-'. Returns nullopt on bad input.
  static std::optional<Cube> parse(const std::string& text);

  int num_vars() const { return num_vars_; }

  LitCode get(int var) const;
  void set(int var, LitCode code);

  /// True if any position is kEmpty (cube denotes the empty set).
  bool is_empty() const;

  /// True if every position is kFree (cube covers the whole space).
  bool is_full() const;

  /// Set-containment: does this cube cover every minterm of `other`?
  /// (Positionwise: other's code bits are a subset of this cube's bits.)
  bool contains(const Cube& other) const;

  /// Positionwise AND. Returns nullopt if the result is empty.
  std::optional<Cube> intersect(const Cube& other) const;

  /// Number of variable positions whose positionwise AND is empty
  /// (the classic cube "distance"; 0 means the cubes intersect).
  int distance(const Cube& other) const;

  /// Number of bound literals (positions that are kPos or kNeg).
  int literal_count() const;

  /// Number of free positions.
  int free_count() const { return num_vars_ - literal_count(); }

  /// Fraction of the 2^num_vars space covered: 2^-literal_count, or 0 if
  /// empty.
  double space_fraction() const;

  /// Does the cube cover the given minterm (bit i of `minterm` = var i)?
  /// Requires num_vars <= 64.
  bool covers_minterm(uint64_t minterm) const;

  /// Cofactor w.r.t. var=value: returns nullopt if the cube does not
  /// intersect that half-space; otherwise the cube with `var` freed.
  std::optional<Cube> cofactor(int var, bool value) const;

  /// Returns a copy with the literal on `var` removed (set to kFree).
  Cube without_var(int var) const;

  /// espresso-style text, e.g. "1-0".
  std::string to_string() const;

  bool operator==(const Cube& other) const {
    return num_vars_ == other.num_vars_ && words_ == other.words_;
  }
  bool operator!=(const Cube& other) const { return !(*this == other); }

  /// Stable hash for use in unordered containers.
  size_t hash() const;

  /// Lexicographic order on the packed representation (for canonical sort).
  bool operator<(const Cube& other) const;

 private:
  static constexpr int kVarsPerWord = 32;  // 2 bits per var

  int word_of(int var) const { return var / kVarsPerWord; }
  int shift_of(int var) const { return 2 * (var % kVarsPerWord); }

  int num_vars_ = 0;
  std::vector<uint64_t> words_;
};

struct CubeHash {
  size_t operator()(const Cube& c) const { return c.hash(); }
};

}  // namespace apx
