#include "network/network.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/trace.hpp"
#include "network/topology_view.hpp"

namespace apx {

namespace {

Sop sop_and2() { return *Sop::parse(2, "11"); }
Sop sop_or2() { return *Sop::parse(2, "1-\n-1"); }
Sop sop_xor2() { return *Sop::parse(2, "10\n01"); }
Sop sop_not1() { return *Sop::parse(1, "0"); }
Sop sop_buf1() { return *Sop::parse(1, "1"); }

}  // namespace

std::shared_ptr<const TopologyView> Network::topology_cache_snapshot() const {
  std::lock_guard<std::mutex> lock(topo_mutex_);
  return topo_cache_;
}

Network::Network(const Network& other)
    : name_(other.name_),
      nodes_(other.nodes_),
      pis_(other.pis_),
      pos_(other.pos_),
      name_map_(other.name_map_),
      anon_counter_(other.anon_counter_),
      version_(other.version_),
      structure_version_(other.structure_version_),
      node_version_(other.node_version_),
      topo_cache_(other.topology_cache_snapshot()) {}

Network& Network::operator=(const Network& other) {
  if (this == &other) return *this;
  std::shared_ptr<const TopologyView> cache = other.topology_cache_snapshot();
  name_ = other.name_;
  nodes_ = other.nodes_;
  pis_ = other.pis_;
  pos_ = other.pos_;
  name_map_ = other.name_map_;
  anon_counter_ = other.anon_counter_;
  version_ = other.version_;
  structure_version_ = other.structure_version_;
  node_version_ = other.node_version_;
  std::lock_guard<std::mutex> lock(topo_mutex_);
  topo_cache_ = std::move(cache);
  return *this;
}

Network::Network(Network&& other) noexcept
    : name_(std::move(other.name_)),
      nodes_(std::move(other.nodes_)),
      pis_(std::move(other.pis_)),
      pos_(std::move(other.pos_)),
      name_map_(std::move(other.name_map_)),
      anon_counter_(other.anon_counter_),
      version_(other.version_),
      structure_version_(other.structure_version_),
      node_version_(std::move(other.node_version_)) {
  std::lock_guard<std::mutex> lock(other.topo_mutex_);
  topo_cache_ = std::move(other.topo_cache_);
}

Network& Network::operator=(Network&& other) noexcept {
  if (this == &other) return *this;
  name_ = std::move(other.name_);
  nodes_ = std::move(other.nodes_);
  pis_ = std::move(other.pis_);
  pos_ = std::move(other.pos_);
  name_map_ = std::move(other.name_map_);
  anon_counter_ = other.anon_counter_;
  version_ = other.version_;
  structure_version_ = other.structure_version_;
  node_version_ = std::move(other.node_version_);
  std::shared_ptr<const TopologyView> cache;
  {
    std::lock_guard<std::mutex> lock(other.topo_mutex_);
    cache = std::move(other.topo_cache_);
  }
  std::lock_guard<std::mutex> lock(topo_mutex_);
  topo_cache_ = std::move(cache);
  return *this;
}

std::shared_ptr<const TopologyView> Network::topology() const {
  std::lock_guard<std::mutex> lock(topo_mutex_);
  if (topo_cache_ != nullptr &&
      topo_cache_->structure_version() == structure_version_) {
    if (trace::enabled()) {
      static trace::Counter& hits = trace::counter("topo.view_hits");
      hits.add(1);
    }
    return topo_cache_;
  }
  topo_cache_ = TopologyView::build(*this);
  return topo_cache_;
}

uint64_t Network::bump(NodeId id) {
  ++version_;
  if (id >= 0) {
    if (node_version_.size() < nodes_.size()) {
      node_version_.resize(nodes_.size(), 0);
    }
    node_version_[id] = version_;
  }
  return version_;
}

uint64_t Network::bump_structure() {
  structure_version_ = ++version_;
  return version_;
}

std::vector<NodeId> Network::dirty_since(uint64_t v) const {
  std::vector<NodeId> dirty;
  for (NodeId id = 0;
       id < static_cast<NodeId>(node_version_.size()) && id < num_nodes();
       ++id) {
    if (node_version_[id] > v) dirty.push_back(id);
  }
  return dirty;
}

std::string Network::unique_name(const std::string& base) {
  std::string candidate = base.empty()
                              ? "n" + std::to_string(anon_counter_++)
                              : base;
  while (name_map_.count(candidate)) {
    candidate = base + "_" + std::to_string(anon_counter_++);
    if (base.empty()) candidate = "n" + std::to_string(anon_counter_++);
  }
  return candidate;
}

NodeId Network::add_pi(const std::string& name) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.kind = NodeKind::kPi;
  n.name = unique_name(name);
  nodes_.push_back(std::move(n));
  pis_.push_back(id);
  name_map_[nodes_[id].name] = id;
  node_version_.push_back(bump_structure());
  return id;
}

NodeId Network::add_const(bool value) {
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.kind = value ? NodeKind::kConst1 : NodeKind::kConst0;
  n.name = unique_name(value ? "const1" : "const0");
  n.sop = value ? Sop::one(0) : Sop::zero(0);
  nodes_.push_back(std::move(n));
  name_map_[nodes_[id].name] = id;
  node_version_.push_back(bump_structure());
  return id;
}

NodeId Network::add_node(std::vector<NodeId> fanins, Sop sop,
                         const std::string& name) {
  if (static_cast<int>(fanins.size()) != sop.num_vars()) {
    throw std::logic_error("add_node: fanin count != SOP variable count");
  }
  NodeId id = static_cast<NodeId>(nodes_.size());
  Node n;
  n.kind = NodeKind::kLogic;
  n.name = unique_name(name);
  n.fanins = std::move(fanins);
  n.sop = std::move(sop);
  nodes_.push_back(std::move(n));
  name_map_[nodes_[id].name] = id;
  node_version_.push_back(bump_structure());
  return id;
}

NodeId Network::add_and(NodeId a, NodeId b, const std::string& name) {
  return add_node({a, b}, sop_and2(), name);
}
NodeId Network::add_or(NodeId a, NodeId b, const std::string& name) {
  return add_node({a, b}, sop_or2(), name);
}
NodeId Network::add_xor(NodeId a, NodeId b, const std::string& name) {
  return add_node({a, b}, sop_xor2(), name);
}
NodeId Network::add_not(NodeId a, const std::string& name) {
  return add_node({a}, sop_not1(), name);
}
NodeId Network::add_buf(NodeId a, const std::string& name) {
  return add_node({a}, sop_buf1(), name);
}

int Network::add_po(const std::string& name, NodeId driver) {
  pos_.push_back({name, driver});
  bump_structure();
  return static_cast<int>(pos_.size()) - 1;
}

void Network::set_po_driver(int po_index, NodeId driver) {
  pos_.at(po_index).driver = driver;
  bump_structure();
}

int Network::num_logic_nodes() const {
  int count = 0;
  for (const Node& n : nodes_) {
    if (n.kind == NodeKind::kLogic) ++count;
  }
  return count;
}

int Network::total_literals() const {
  int total = 0;
  for (const Node& n : nodes_) {
    if (n.kind == NodeKind::kLogic) total += n.sop.literal_count();
  }
  return total;
}

int Network::pi_index(NodeId id) const {
  for (size_t i = 0; i < pis_.size(); ++i) {
    if (pis_[i] == id) return static_cast<int>(i);
  }
  return -1;
}

void Network::set_sop(NodeId id, Sop sop) {
  Node& n = nodes_[id];
  if (sop.num_vars() != static_cast<int>(n.fanins.size())) {
    throw std::logic_error("set_sop: SOP width mismatch");
  }
  n.sop = std::move(sop);
  bump(id);
}

void Network::set_function(NodeId id, std::vector<NodeId> fanins, Sop sop) {
  if (static_cast<int>(fanins.size()) != sop.num_vars()) {
    throw std::logic_error("set_function: fanin count != SOP width");
  }
  Node& n = nodes_[id];
  n.fanins = std::move(fanins);
  n.sop = std::move(sop);
  bump_structure();
  bump(id);
}

std::optional<NodeId> Network::find_node(const std::string& name) const {
  auto it = name_map_.find(name);
  if (it != name_map_.end()) return it->second;
  return std::nullopt;
}

// The legacy copy-out structure APIs below all ride the cached
// TopologyView: cold call sites keep their value semantics while paying a
// cache hit plus one copy instead of a fresh DFS; hot paths hold the view
// itself (Network::topology()).

std::vector<NodeId> Network::topo_order() const { return topology()->topo(); }

std::vector<int> Network::levels() const { return topology()->levels(); }

int Network::depth() const {
  std::vector<int> level = levels();
  int d = 0;
  for (const PrimaryOutput& po : pos_) {
    if (po.driver != kNullNode) d = std::max(d, level[po.driver]);
  }
  return d;
}

std::vector<std::vector<NodeId>> Network::fanouts() const {
  std::shared_ptr<const TopologyView> view = topology();
  std::vector<std::vector<NodeId>> result(num_nodes());
  for (NodeId id = 0; id < num_nodes(); ++id) {
    TopologyView::Range edges = view->fanouts(id);
    result[id].assign(edges.begin(), edges.end());
  }
  return result;
}

std::vector<NodeId> Network::cone_of(const std::vector<NodeId>& roots) const {
  ConeScratch scratch;
  std::vector<NodeId> result;
  topology()->cone_of(roots, scratch, result);
  return result;
}

Network Network::extract_cone(int po_index) const {
  const PrimaryOutput& po = pos_.at(po_index);
  Network result;
  result.set_name(name_ + "_cone_" + po.name);
  std::vector<NodeId> map(num_nodes(), kNullNode);
  for (NodeId id : cone_of({po.driver})) {
    const Node& n = nodes_[id];
    switch (n.kind) {
      case NodeKind::kPi:
        map[id] = result.add_pi(n.name);
        break;
      case NodeKind::kConst0:
        map[id] = result.add_const(false);
        break;
      case NodeKind::kConst1:
        map[id] = result.add_const(true);
        break;
      case NodeKind::kLogic: {
        std::vector<NodeId> fanins;
        fanins.reserve(n.fanins.size());
        for (NodeId f : n.fanins) fanins.push_back(map[f]);
        map[id] = result.add_node(std::move(fanins), n.sop, n.name);
        break;
      }
    }
  }
  result.add_po(po.name, map[po.driver]);
  return result;
}

std::vector<NodeId> Network::cleanup() {
  std::vector<NodeId> roots;
  for (const PrimaryOutput& po : pos_) {
    if (po.driver != kNullNode) roots.push_back(po.driver);
  }
  std::vector<bool> keep(num_nodes(), false);
  for (NodeId id : cone_of(roots)) keep[id] = true;
  // Always keep PIs (interface stability).
  for (NodeId id : pis_) keep[id] = true;

  std::vector<NodeId> map(num_nodes(), kNullNode);
  std::vector<Node> new_nodes;
  std::vector<NodeId> new_pis;
  std::unordered_map<std::string, NodeId> new_name_map;
  for (NodeId id : topo_order()) {
    if (!keep[id]) continue;
    NodeId nid = static_cast<NodeId>(new_nodes.size());
    Node n = nodes_[id];
    for (NodeId& f : n.fanins) f = map[f];
    map[id] = nid;
    new_name_map[n.name] = nid;
    if (n.kind == NodeKind::kPi) new_pis.push_back(nid);
    new_nodes.push_back(std::move(n));
  }
  // Preserve original PI order.
  std::vector<NodeId> ordered_pis;
  for (NodeId id : pis_) ordered_pis.push_back(map[id]);
  nodes_ = std::move(new_nodes);
  pis_ = std::move(ordered_pis);
  name_map_ = std::move(new_name_map);
  for (PrimaryOutput& po : pos_) {
    if (po.driver != kNullNode) po.driver = map[po.driver];
  }
  // Node ids changed meaning: every node is dirty from any prior snapshot.
  node_version_.assign(nodes_.size(), bump_structure());
  return map;
}

std::vector<NodeId> Network::append_into(
    Network& dest, const std::vector<NodeId>& pi_map) const {
  if (pi_map.size() != pis_.size()) {
    throw std::logic_error("append_into: pi_map size mismatch");
  }
  std::vector<NodeId> map(num_nodes(), kNullNode);
  for (size_t i = 0; i < pis_.size(); ++i) map[pis_[i]] = pi_map[i];
  for (NodeId id : topo_order()) {
    if (map[id] != kNullNode) continue;
    const Node& n = nodes_[id];
    switch (n.kind) {
      case NodeKind::kPi:
        throw std::logic_error("append_into: unmapped PI");
      case NodeKind::kConst0:
        map[id] = dest.add_const(false);
        break;
      case NodeKind::kConst1:
        map[id] = dest.add_const(true);
        break;
      case NodeKind::kLogic: {
        std::vector<NodeId> fanins;
        fanins.reserve(n.fanins.size());
        for (NodeId f : n.fanins) fanins.push_back(map[f]);
        map[id] = dest.add_node(std::move(fanins), n.sop, n.name);
        break;
      }
    }
  }
  return map;
}

void Network::check() const {
  for (NodeId id = 0; id < num_nodes(); ++id) {
    const Node& n = nodes_[id];
    if (n.kind == NodeKind::kLogic) {
      if (static_cast<int>(n.fanins.size()) != n.sop.num_vars()) {
        throw std::logic_error("check: node " + n.name + " SOP width");
      }
      for (NodeId f : n.fanins) {
        if (f < 0 || f >= num_nodes()) {
          throw std::logic_error("check: node " + n.name + " bad fanin");
        }
      }
    }
  }
  for (const PrimaryOutput& po : pos_) {
    if (po.driver == kNullNode || po.driver >= num_nodes()) {
      throw std::logic_error("check: PO " + po.name + " undriven");
    }
  }
  topology();  // builds (or reuses) the cached view; throws on cycles
}

}  // namespace apx
