// Multi-level, technology-independent Boolean network: a DAG of nodes whose
// local functions are SOP covers over their fanins (the network model of
// paper Sec. 2.1 / Hachtel-Somenzi). Primary outputs are named references to
// driver nodes. The same class also represents technology-mapped netlists
// (nodes restricted to library-gate SOPs).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sop/sop.hpp"

namespace apx {

class TopologyView;

using NodeId = int32_t;
inline constexpr NodeId kNullNode = -1;

enum class NodeKind : uint8_t {
  kConst0,
  kConst1,
  kPi,     ///< primary input
  kLogic,  ///< internal node with an SOP local function over its fanins
};

struct Node {
  NodeKind kind = NodeKind::kLogic;
  std::string name;
  std::vector<NodeId> fanins;
  /// On-set SOP over the fanins (variable i of the SOP = fanins[i]).
  Sop sop;
};

/// A named primary output and the node driving it.
struct PrimaryOutput {
  std::string name;
  NodeId driver = kNullNode;
};

class Network {
 public:
  Network() = default;
  // Hand-written because the topology cache carries a mutex; the logical
  // state copies/moves member-wise, and the cached view (immutable, keyed
  // on the copied structure_version) is shared rather than rebuilt.
  Network(const Network& other);
  Network& operator=(const Network& other);
  Network(Network&& other) noexcept;
  Network& operator=(Network&& other) noexcept;
  ~Network() = default;

  // ---- construction ----
  NodeId add_pi(const std::string& name);
  NodeId add_const(bool value);
  /// Adds a logic node computing `sop` over `fanins`. SOP variable i refers
  /// to fanins[i]. An empty fanin list with a non-empty SOP makes a const.
  NodeId add_node(std::vector<NodeId> fanins, Sop sop,
                  const std::string& name = "");
  /// Convenience for simple gates.
  NodeId add_and(NodeId a, NodeId b, const std::string& name = "");
  NodeId add_or(NodeId a, NodeId b, const std::string& name = "");
  NodeId add_xor(NodeId a, NodeId b, const std::string& name = "");
  NodeId add_not(NodeId a, const std::string& name = "");
  NodeId add_buf(NodeId a, const std::string& name = "");

  int add_po(const std::string& name, NodeId driver);
  void set_po_driver(int po_index, NodeId driver);
  void set_name(const std::string& name) { name_ = name; }

  // ---- access ----
  const std::string& name() const { return name_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_pis() const { return static_cast<int>(pis_.size()); }
  int num_pos() const { return static_cast<int>(pos_.size()); }
  /// Number of logic (non-PI, non-const) nodes.
  int num_logic_nodes() const;
  int total_literals() const;

  const Node& node(NodeId id) const { return nodes_[id]; }
  /// Mutations through this reference bypass the version stamps (below);
  /// use set_sop/set_function for changes that caches must observe.
  Node& node(NodeId id) { return nodes_[id]; }
  const std::vector<NodeId>& pis() const { return pis_; }
  const std::vector<PrimaryOutput>& pos() const { return pos_; }
  const PrimaryOutput& po(int i) const { return pos_[i]; }

  /// Index of `id` in the PI list, or -1.
  int pi_index(NodeId id) const;

  /// Replaces the local function of a logic node (fanins unchanged).
  void set_sop(NodeId id, Sop sop);

  /// Replaces fanins and SOP of a logic node together.
  void set_function(NodeId id, std::vector<NodeId> fanins, Sop sop);

  /// Finds a node by name (linear scan fallback after map).
  std::optional<NodeId> find_node(const std::string& name) const;

  // ---- structure ----
  /// Cached flat-arena snapshot of the structure (topo order, levels, CSR
  /// fanin/fanout adjacency, allocation-free cone queries) — the hot-path
  /// API. Rebuilt lazily when structure_version() moved; a cache hit is a
  /// mutex lock + shared_ptr copy. The returned view is immutable and
  /// outlives later mutations (it snapshots, not references). Throws
  /// std::logic_error on cycles. Thread-safe.
  std::shared_ptr<const TopologyView> topology() const;

  /// Topological order (PIs and constants first). Throws on cycles.
  /// Convenience copy out of topology(); hot paths should hold the view.
  std::vector<NodeId> topo_order() const;

  /// Per-node logic depth: PIs/consts 0, logic nodes 1 + max(fanin level).
  std::vector<int> levels() const;

  /// Maximum level over PO drivers (critical path in unit delay).
  int depth() const;

  /// Per-node fanout lists (recomputed on demand).
  std::vector<std::vector<NodeId>> fanouts() const;

  /// Nodes in the transitive fanin cone of the given roots (including
  /// the roots and PIs), in topological order.
  std::vector<NodeId> cone_of(const std::vector<NodeId>& roots) const;

  /// Extracts the single-output cone feeding PO `po_index` into a fresh
  /// network whose PIs are the original PIs the cone depends on.
  Network extract_cone(int po_index) const;

  /// Removes nodes unreachable from any PO. Returns the old->new node map
  /// (kNullNode for dropped nodes).
  std::vector<NodeId> cleanup();

  /// Deep copy of this network appended into `dest`; PIs are mapped via
  /// `pi_map` (from this network's PI index to a node in dest). Returns the
  /// node map from this network's ids to dest ids. POs are not copied.
  std::vector<NodeId> append_into(Network& dest,
                                  const std::vector<NodeId>& pi_map) const;

  /// Basic sanity invariants (acyclic, fanin widths match SOPs). Throws
  /// std::logic_error with a description on violation.
  void check() const;

  // ---- change tracking ----
  // Monotone version stamps let long-lived analyses (the verification
  // oracle, cached simulators) refresh only what changed between calls
  // instead of rebuilding from scratch. Every mutation bumps the network
  // version and stamps the touched node with it; structural mutations
  // (new nodes, fanin changes, PO rewires, renumbering) additionally bump
  // the structure version, which invalidates cached topo orders/fanouts.

  /// Current network version; bumped by every mutation.
  uint64_t version() const { return version_; }

  /// Version of the last mutation that changed the DAG shape (node set,
  /// fanins, PO drivers or node ids) rather than just a local function.
  uint64_t structure_version() const { return structure_version_; }

  /// Version stamp of the last mutation touching node `id`.
  uint64_t node_version(NodeId id) const { return node_version_[id]; }

  /// Ids of nodes mutated after version `v` (ascending id order). With
  /// `v == version()` this is empty; with `v == 0` it is every node.
  std::vector<NodeId> dirty_since(uint64_t v) const;

 private:
  std::string unique_name(const std::string& base);

  uint64_t bump(NodeId id);
  uint64_t bump_structure();

  /// Snapshot of the cached view under the cache mutex (copy/move helpers).
  std::shared_ptr<const TopologyView> topology_cache_snapshot() const;

  std::string name_;
  std::vector<Node> nodes_;
  std::vector<NodeId> pis_;
  std::vector<PrimaryOutput> pos_;
  std::unordered_map<std::string, NodeId> name_map_;
  int anon_counter_ = 0;
  uint64_t version_ = 0;
  uint64_t structure_version_ = 0;
  std::vector<uint64_t> node_version_;

  // Lazily built structure snapshot, valid while its structure_version
  // matches structure_version_ (mutations don't clear it; topology()
  // compares versions). The mutex only guards the cache slot — the view
  // itself is immutable.
  mutable std::mutex topo_mutex_;
  mutable std::shared_ptr<const TopologyView> topo_cache_;
};

}  // namespace apx
