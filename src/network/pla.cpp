#include "network/pla.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "tt/truth_table.hpp"

namespace apx {
namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::runtime_error("PLA line " + std::to_string(line) + ": " +
                           message);
}

}  // namespace

Pla read_pla_string(const std::string& text) {
  Pla pla;
  int num_outputs = -1;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;
    if (tok == ".i") {
      if (!(ls >> pla.num_inputs) || pla.num_inputs < 0) {
        fail(line_no, "bad .i");
      }
    } else if (tok == ".o") {
      if (!(ls >> num_outputs) || num_outputs <= 0) fail(line_no, "bad .o");
      pla.onsets.assign(num_outputs, Sop(pla.num_inputs));
      pla.dcsets.assign(num_outputs, Sop(pla.num_inputs));
    } else if (tok == ".ilb") {
      std::string name;
      while (ls >> name) pla.input_names.push_back(name);
    } else if (tok == ".ob") {
      std::string name;
      while (ls >> name) pla.output_names.push_back(name);
    } else if (tok == ".p" || tok == ".type") {
      continue;  // cube count / type hints are ignored
    } else if (tok == ".e" || tok == ".end") {
      break;
    } else if (tok[0] == '.') {
      fail(line_no, "unsupported directive " + tok);
    } else {
      if (num_outputs < 0) fail(line_no, "cube before .o");
      std::string out_plane;
      if (!(ls >> out_plane)) {
        // Single-token rows are allowed for .o 1 with glued planes.
        if (static_cast<int>(tok.size()) == pla.num_inputs + num_outputs) {
          out_plane = tok.substr(pla.num_inputs);
          tok = tok.substr(0, pla.num_inputs);
        } else {
          fail(line_no, "missing output plane");
        }
      }
      if (static_cast<int>(tok.size()) != pla.num_inputs) {
        fail(line_no, "input plane width mismatch");
      }
      if (static_cast<int>(out_plane.size()) != num_outputs) {
        fail(line_no, "output plane width mismatch");
      }
      auto cube = Cube::parse(tok);
      if (!cube) fail(line_no, "bad input plane");
      for (int o = 0; o < num_outputs; ++o) {
        switch (out_plane[o]) {
          case '1':
          case '4':
            pla.onsets[o].add_cube(*cube);
            break;
          case '-':
          case '2':
            pla.dcsets[o].add_cube(*cube);
            break;
          case '0':
          case '~':
          case '3':
            break;  // not covered for this output
          default:
            fail(line_no, "bad output plane character");
        }
      }
    }
  }
  if (num_outputs < 0) {
    throw std::runtime_error("PLA: missing .o directive");
  }
  return pla;
}

Pla read_pla_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open PLA file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_pla_string(buffer.str());
}

std::string write_pla_string(const Pla& pla) {
  std::ostringstream out;
  out << ".i " << pla.num_inputs << "\n";
  out << ".o " << pla.onsets.size() << "\n";
  if (!pla.input_names.empty()) {
    out << ".ilb";
    for (const auto& n : pla.input_names) out << " " << n;
    out << "\n";
  }
  if (!pla.output_names.empty()) {
    out << ".ob";
    for (const auto& n : pla.output_names) out << " " << n;
    out << "\n";
  }
  const int num_outputs = static_cast<int>(pla.onsets.size());
  auto emit = [&](const Cube& cube, int output, char symbol) {
    out << cube.to_string() << " ";
    for (int o = 0; o < num_outputs; ++o) {
      out << (o == output ? symbol : '0');
    }
    out << "\n";
  };
  for (int o = 0; o < num_outputs; ++o) {
    for (const Cube& c : pla.onsets[o].cubes()) emit(c, o, '1');
    if (o < static_cast<int>(pla.dcsets.size())) {
      for (const Cube& c : pla.dcsets[o].cubes()) emit(c, o, '-');
    }
  }
  out << ".e\n";
  return out.str();
}

void write_pla_file(const Pla& pla, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write PLA file: " + path);
  out << write_pla_string(pla);
}

Network pla_to_network(const Pla& pla) {
  Network net;
  net.set_name("pla");
  std::vector<NodeId> pis;
  for (int i = 0; i < pla.num_inputs; ++i) {
    std::string name = i < static_cast<int>(pla.input_names.size())
                           ? pla.input_names[i]
                           : "i" + std::to_string(i);
    pis.push_back(net.add_pi(name));
  }
  for (size_t o = 0; o < pla.onsets.size(); ++o) {
    std::string name = o < pla.output_names.size()
                           ? pla.output_names[o]
                           : "o" + std::to_string(o);
    Sop sop = pla.onsets[o];
    sop.make_scc_free();
    NodeId node = sop.empty() ? net.add_const(false)
                              : net.add_node(pis, std::move(sop), name);
    net.add_po(name, node);
  }
  net.check();
  return net;
}

Pla network_to_pla(const Network& net) {
  if (net.num_pis() > kMaxLocalVars) {
    throw std::invalid_argument(
        "network_to_pla: too many PIs for two-level collapapse");
  }
  Pla pla;
  pla.num_inputs = net.num_pis();
  for (NodeId pi : net.pis()) pla.input_names.push_back(net.node(pi).name);

  // Evaluate every PO over the full minterm space, then extract an
  // irredundant cover per output.
  const uint64_t space = 1ULL << net.num_pis();
  std::vector<NodeId> order = net.topo_order();
  std::vector<char> value(net.num_nodes(), 0);
  std::vector<TruthTable> po_tts(net.num_pos(), TruthTable(net.num_pis()));
  for (uint64_t m = 0; m < space; ++m) {
    for (int i = 0; i < net.num_pis(); ++i) {
      value[net.pis()[i]] = (m >> i) & 1;
    }
    for (NodeId id : order) {
      const Node& n = net.node(id);
      if (n.kind == NodeKind::kConst1) value[id] = 1;
      if (n.kind != NodeKind::kLogic) continue;
      uint64_t local = 0;
      for (size_t j = 0; j < n.fanins.size(); ++j) {
        if (value[n.fanins[j]]) local |= 1ULL << j;
      }
      value[id] = n.sop.covers_minterm(local) ? 1 : 0;
    }
    for (int o = 0; o < net.num_pos(); ++o) {
      if (value[net.po(o).driver]) po_tts[o].set(m, true);
    }
  }
  for (int o = 0; o < net.num_pos(); ++o) {
    pla.output_names.push_back(net.po(o).name);
    pla.onsets.push_back(po_tts[o].isop());
    pla.dcsets.push_back(Sop(net.num_pis()));
  }
  return pla;
}

}  // namespace apx
