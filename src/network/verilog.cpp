#include "network/verilog.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace apx {
namespace {

std::string sanitize(const std::string& name) {
  std::string out;
  for (char c : name) {
    out.push_back(std::isalnum(static_cast<unsigned char>(c)) ? c : '_');
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out = "n_" + out;
  }
  return out;
}

}  // namespace

std::string write_verilog_string(const Network& net,
                                 const std::string& module_name) {
  // Unique Verilog identifiers per node.
  std::vector<std::string> vname(net.num_nodes());
  std::unordered_set<std::string> used;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    std::string base = sanitize(net.node(id).name);
    std::string candidate = base;
    int counter = 0;
    while (used.count(candidate)) {
      candidate = base + "_" + std::to_string(counter++);
    }
    used.insert(candidate);
    vname[id] = candidate;
  }
  // Output ports may not collide with internal nets; give POs dedicated
  // port names.
  std::vector<std::string> po_port(net.num_pos());
  for (int o = 0; o < net.num_pos(); ++o) {
    std::string base = sanitize(net.po(o).name);
    std::string candidate = base;
    int counter = 0;
    while (used.count(candidate)) {
      candidate = base + "_po" + std::to_string(counter++);
    }
    used.insert(candidate);
    po_port[o] = candidate;
  }

  std::ostringstream out;
  std::string module =
      module_name.empty()
          ? (net.name().empty() ? "top" : sanitize(net.name()))
          : module_name;
  out << "module " << module << " (";
  bool first = true;
  for (NodeId pi : net.pis()) {
    out << (first ? "" : ", ") << vname[pi];
    first = false;
  }
  for (int o = 0; o < net.num_pos(); ++o) {
    out << (first ? "" : ", ") << po_port[o];
    first = false;
  }
  out << ");\n";
  for (NodeId pi : net.pis()) out << "  input " << vname[pi] << ";\n";
  for (int o = 0; o < net.num_pos(); ++o) {
    out << "  output " << po_port[o] << ";\n";
  }
  for (NodeId id : net.topo_order()) {
    if (net.node(id).kind != NodeKind::kPi) {
      out << "  wire " << vname[id] << ";\n";
    }
  }

  for (NodeId id : net.topo_order()) {
    const Node& n = net.node(id);
    switch (n.kind) {
      case NodeKind::kPi:
        break;
      case NodeKind::kConst0:
        out << "  assign " << vname[id] << " = 1'b0;\n";
        break;
      case NodeKind::kConst1:
        out << "  assign " << vname[id] << " = 1'b1;\n";
        break;
      case NodeKind::kLogic: {
        out << "  assign " << vname[id] << " = ";
        if (n.sop.empty()) {
          out << "1'b0";
        } else {
          bool first_cube = true;
          for (const Cube& c : n.sop.cubes()) {
            if (!first_cube) out << " | ";
            first_cube = false;
            std::ostringstream term;
            bool first_lit = true;
            for (int v = 0; v < n.sop.num_vars(); ++v) {
              LitCode code = c.get(v);
              if (code == LitCode::kFree) continue;
              if (!first_lit) term << " & ";
              first_lit = false;
              if (code == LitCode::kNeg) term << "~";
              term << vname[n.fanins[v]];
            }
            if (first_lit) {
              out << "1'b1";  // full cube
            } else if (n.sop.num_cubes() > 1) {
              out << "(" << term.str() << ")";
            } else {
              out << term.str();
            }
          }
        }
        out << ";\n";
        break;
      }
    }
  }
  for (int o = 0; o < net.num_pos(); ++o) {
    out << "  assign " << po_port[o] << " = " << vname[net.po(o).driver]
        << ";\n";
  }
  out << "endmodule\n";
  return out.str();
}

void write_verilog_file(const Network& net, const std::string& path,
                        const std::string& module_name) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write Verilog file: " + path);
  out << write_verilog_string(net, module_name);
}

}  // namespace apx
