#include "network/ordering.hpp"

#include <algorithm>

namespace apx {

std::vector<int> static_pi_order(const Network& net) {
  const std::vector<int> depth = net.levels();
  std::vector<char> seen(net.num_nodes(), 0);
  std::vector<int> order;
  order.reserve(net.num_pis());

  std::vector<NodeId> stack;
  std::vector<int> fanin_idx;  // scratch for the deepest-first fanin sort
  for (const PrimaryOutput& po : net.pos()) {
    if (po.driver == kNullNode) continue;
    stack.push_back(po.driver);
    while (!stack.empty()) {
      NodeId id = stack.back();
      stack.pop_back();
      if (seen[id]) continue;
      seen[id] = 1;
      const Node& n = net.node(id);
      if (n.kind == NodeKind::kPi) {
        order.push_back(net.pi_index(id));
        continue;
      }
      // Push fanins shallowest-first so the deepest fanin is expanded
      // first (LIFO): variables feeding long reconvergent paths surface
      // early and land near the top of the order.
      fanin_idx.assign(n.fanins.size(), 0);
      for (size_t i = 0; i < n.fanins.size(); ++i) {
        fanin_idx[i] = static_cast<int>(i);
      }
      std::stable_sort(fanin_idx.begin(), fanin_idx.end(),
                       [&](int a, int b) {
                         return depth[n.fanins[a]] < depth[n.fanins[b]];
                       });
      for (int i : fanin_idx) stack.push_back(n.fanins[i]);
    }
  }
  // PIs outside every PO cone still need a level: append them.
  for (int i = 0; i < net.num_pis(); ++i) {
    if (!seen[net.pis()[i]]) order.push_back(i);
  }
  return order;
}

}  // namespace apx
