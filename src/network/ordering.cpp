#include "network/ordering.hpp"

#include <algorithm>

#include "core/trace.hpp"

namespace apx {

std::vector<int> static_pi_order(const Network& net) {
  const std::vector<int> depth = net.levels();
  std::vector<char> seen(net.num_nodes(), 0);
  std::vector<int> order;
  order.reserve(net.num_pis());

  std::vector<NodeId> stack;
  std::vector<int> fanin_idx;  // scratch for the deepest-first fanin sort
  for (const PrimaryOutput& po : net.pos()) {
    if (po.driver == kNullNode) continue;
    stack.push_back(po.driver);
    while (!stack.empty()) {
      NodeId id = stack.back();
      stack.pop_back();
      if (seen[id]) continue;
      seen[id] = 1;
      const Node& n = net.node(id);
      if (n.kind == NodeKind::kPi) {
        order.push_back(net.pi_index(id));
        continue;
      }
      // Push fanins shallowest-first so the deepest fanin is expanded
      // first (LIFO): variables feeding long reconvergent paths surface
      // early and land near the top of the order.
      fanin_idx.assign(n.fanins.size(), 0);
      for (size_t i = 0; i < n.fanins.size(); ++i) {
        fanin_idx[i] = static_cast<int>(i);
      }
      std::stable_sort(fanin_idx.begin(), fanin_idx.end(),
                       [&](int a, int b) {
                         return depth[n.fanins[a]] < depth[n.fanins[b]];
                       });
      for (int i : fanin_idx) stack.push_back(n.fanins[i]);
    }
  }
  // PIs outside every PO cone still need a level: append them.
  for (int i = 0; i < net.num_pis(); ++i) {
    if (!seen[net.pis()[i]]) order.push_back(i);
  }
  return order;
}

namespace {

// SplitMix64 finalizer — same mixer the BDD unique table and the fault
// engine's seed derivation use; full-avalanche so positionally-combined
// fields cannot cancel.
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t combine(uint64_t h, uint64_t v) { return mix64(h ^ mix64(v)); }

}  // namespace

uint64_t network_content_hash(const Network& net) {
  uint64_t h = mix64(0x417070726f784f64ULL);  // arbitrary domain tag
  h = combine(h, static_cast<uint64_t>(net.num_pis()));
  h = combine(h, static_cast<uint64_t>(net.num_nodes()));
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    const Node& n = net.node(id);
    h = combine(h, static_cast<uint64_t>(n.kind));
    if (n.kind == NodeKind::kPi) {
      h = combine(h, static_cast<uint64_t>(net.pi_index(id)));
      continue;
    }
    for (NodeId f : n.fanins) h = combine(h, static_cast<uint64_t>(f));
    h = combine(h, static_cast<uint64_t>(n.sop.num_cubes()));
    for (const Cube& c : n.sop.cubes()) {
      for (int v = 0; v < c.num_vars(); ++v) {
        h = combine(h, static_cast<uint64_t>(c.get(v)) + 1);
      }
    }
  }
  for (const PrimaryOutput& po : net.pos()) {
    h = combine(h, static_cast<uint64_t>(po.driver));
  }
  return h;
}

OrderCache& OrderCache::instance() {
  static OrderCache cache;
  return cache;
}

void OrderCache::touch_locked(Entry& e, uint64_t key) {
  if (e.lru_it != lru_.begin()) {
    lru_.erase(e.lru_it);
    lru_.push_front(key);
    e.lru_it = lru_.begin();
  }
}

void OrderCache::enforce_cap_locked() {
  static trace::Counter& evictions =
      trace::counter("bdd.order_cache_evictions");
  while (map_.size() > max_entries_) {
    const uint64_t victim = lru_.back();
    lru_.pop_back();
    map_.erase(victim);
    ++stats_.evictions;
    evictions.add(1);
  }
}

std::optional<CachedOrder> OrderCache::lookup(uint64_t key, int num_pis) {
  static trace::Counter& hits = trace::counter("bdd.order_cache_hits");
  static trace::Counter& misses = trace::counter("bdd.order_cache_misses");
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end() ||
      it->second.order.level_to_var.size() != static_cast<size_t>(num_pis)) {
    ++stats_.misses;
    misses.add(1);
    return std::nullopt;
  }
  ++stats_.hits;
  hits.add(1);
  touch_locked(it->second, key);
  return it->second.order;
}

void OrderCache::store(uint64_t key, CachedOrder entry) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = map_.try_emplace(key);
  if (inserted) {
    lru_.push_front(key);
    it->second.lru_it = lru_.begin();
    it->second.order = std::move(entry);
    ++stats_.stores;
    enforce_cap_locked();
    return;
  }
  // Keep-best: replace only when the candidate converged strictly smaller.
  // First-write-wins otherwise, so concurrent workers racing to store the
  // same circuit cannot flip-flop the entry. Either way the key was just
  // used, so refresh its LRU position.
  touch_locked(it->second, key);
  if (entry.converged_live > 0 &&
      entry.converged_live < it->second.order.converged_live) {
    it->second.order = std::move(entry);
    ++stats_.stores;
  } else {
    ++stats_.stores_rejected;
  }
}

void OrderCache::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  max_entries_ = kDefaultMaxEntries;
  stats_ = Stats{};
}

void OrderCache::set_max_entries(size_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  max_entries_ = n < 1 ? 1 : n;
  enforce_cap_locked();
}

size_t OrderCache::max_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_entries_;
}

OrderCache::Stats OrderCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t OrderCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

std::vector<int> cached_or_static_order(const Network& net, uint64_t* key_out,
                                        size_t* reorder_budget_out) {
  const uint64_t key = network_content_hash(net);
  if (key_out != nullptr) *key_out = key;
  if (std::optional<CachedOrder> hit =
          OrderCache::instance().lookup(key, net.num_pis())) {
    if (reorder_budget_out != nullptr) {
      *reorder_budget_out = 2 * hit->converged_live;
    }
    return std::move(hit->level_to_var);
  }
  return static_pi_order(net);
}

}  // namespace apx
