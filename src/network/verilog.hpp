// Structural gate-level Verilog writer: emits a module with one
// `assign` per node using &, |, ~ expressions derived from the SOPs.
// Useful for handing CED designs to downstream RTL flows. (No reader:
// parsing Verilog is out of scope for a combinational BLIF-first library.)
#pragma once

#include <string>

#include "network/network.hpp"

namespace apx {

/// Serializes `net` as a synthesizable structural Verilog module. Node
/// names are sanitized into Verilog identifiers (alphanumerics and '_');
/// collisions after sanitization are uniquified.
std::string write_verilog_string(const Network& net,
                                 const std::string& module_name = "");
void write_verilog_file(const Network& net, const std::string& path,
                        const std::string& module_name = "");

}  // namespace apx
