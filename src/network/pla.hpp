// Berkeley PLA (espresso) format reader/writer for two-level functions:
// .i/.o/.ilb/.ob/.p directives with input-plane cubes over {0,1,-} and
// output-plane columns over {0,1,-,~} (1 = in on-set, - = don't care,
// 0/~ = off-set/not covered). Multi-output PLAs load as one network node
// per output sharing the PI list.
#pragma once

#include <string>
#include <vector>

#include "network/network.hpp"
#include "sop/sop.hpp"

namespace apx {

/// A parsed two-level PLA: one on-set (and optional dc-set) per output.
struct Pla {
  int num_inputs = 0;
  std::vector<std::string> input_names;   // may be empty
  std::vector<std::string> output_names;  // may be empty
  std::vector<Sop> onsets;                // one per output
  std::vector<Sop> dcsets;                // one per output
};

/// Parses PLA text. Throws std::runtime_error on malformed input.
Pla read_pla_string(const std::string& text);
Pla read_pla_file(const std::string& path);

/// Serializes (on-set rows; dc rows appended with output column '-').
std::string write_pla_string(const Pla& pla);
void write_pla_file(const Pla& pla, const std::string& path);

/// Builds a (two-level) network from a PLA: one SOP node per output over
/// the shared PIs. Don't-care sets are dropped (functions are completely
/// specified by their on-sets).
Network pla_to_network(const Pla& pla);

/// Extracts a PLA view of a network by collapsing each PO cone to two-level
/// form (only feasible for networks whose PO support fits kMaxLocalVars;
/// throws std::invalid_argument otherwise).
Pla network_to_pla(const Network& net);

}  // namespace apx
