// Structural BDD variable-ordering heuristics over a Network, plus the
// process-wide cache of *converged* orders.
//
// The quality of a BDD variable order dominates both peak node count and
// build time (often exponentially: a ripple-carry adder is linear under an
// interleaved order and exponential under the "all a's then all b's" PI
// order). static_pi_order computes the classic Malik/Fujita-style order:
// an interleaved depth-first traversal of the PO fanin cones, appending
// each primary input the first time the walk reaches it, with fanins
// visited deepest-first so the variables feeding long paths end up near
// the top of the order. The result seeds BddManager's permutation layer;
// sifting (BddManager::reorder) refines it dynamically.
//
// Sifting is expensive — before the OrderCache it was ~98% of pipeline
// wall time, because the synthesis flow rebuilds BDDs for the same cones
// over and over (the repair loop refreshes the oracle 13+ times per
// circuit, and the screening/percentage sweeps spin up private per-chunk
// oracles over the same network pair). An order that sifting already
// converged on for a given circuit is just as good the next time that
// circuit's cones are built, so OrderCache memoizes it process-wide,
// keyed by a content hash of the network. Consumers (ApproxOracle,
// NetworkBdds) seed fresh managers from the cache and arm the manager's
// reorder budget with the recorded converged size, so a seeded build
// skips sifting entirely unless it grows well past what the converged
// order achieved.
//
// Determinism: a cached order can never change any BDD *answer* — every
// query (implies, sat_fraction, evaluate) is exact under any variable
// order — so sharing the cache across task-pool workers preserves the
// bit-identity contract of ALGORITHM.md §8 regardless of which worker
// stores first. The store policy (first entry wins unless a later one
// converged strictly smaller) keeps the cache contents stable anyway.
// Staleness is handled by construction: the key is a hash of the network
// CONTENT, so any mutation — including structural ones that bump
// Network::structure_version() — produces a different key and misses.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "network/network.hpp"

namespace apx {

/// Returns a permutation of the PI indices: position l holds the PI index
/// placed at BDD level l (level 0 = top of the order). PIs outside every
/// PO cone are appended at the bottom. Deterministic for a given network.
std::vector<int> static_pi_order(const Network& net);

/// Stable content hash of a network: PIs, every node's kind/fanins/SOP
/// cubes, and the PO drivers, splitmix-mixed position by position. Two
/// networks with identical construction-order content collide on purpose
/// (that is the cache hit); any mutation — local SOP rewrite or structural
/// change — moves the hash. Never hashes addresses, so the value is stable
/// across runs and processes.
uint64_t network_content_hash(const Network& net);

/// A variable order that sifting converged on, plus the live-node count
/// the converged build ended at (the basis for the reorder budget: a
/// seeded rebuild should not pay for sifting again until it exceeds a
/// multiple of this).
struct CachedOrder {
  std::vector<int> level_to_var;
  size_t converged_live = 0;
};

/// Process-wide map from network content hash to converged variable
/// order. Thread-safe; shared by every oracle and cone builder in the
/// process (including all task-pool workers).
///
/// Bounded: the cache holds at most `max_entries()` orders and evicts the
/// least-recently-used one past the cap (content hashes are ephemeral —
/// every approximation round produces a new key, so an unbounded map grows
/// with pipeline length). Eviction can only cost a later re-sift (a miss);
/// it can never change a BDD answer, so the bit-identity contract is
/// unaffected by cache pressure.
class OrderCache {
 public:
  /// Default LRU capacity. An entry is one PI permutation (a few hundred
  /// bytes), so the default bounds the cache near a megabyte while still
  /// covering every distinct cone a long repair campaign touches.
  static constexpr size_t kDefaultMaxEntries = 1024;

  static OrderCache& instance();

  /// Returns the cached order for `key` when present AND sized for
  /// `num_pis` variables (a width mismatch would be a hash collision
  /// across different circuits; treated as a miss). Counts a hit or miss
  /// in both the internal stats and the `bdd.order_cache_hits/misses`
  /// trace counters.
  std::optional<CachedOrder> lookup(uint64_t key, int num_pis);

  /// Records a converged order. First write wins unless `entry` converged
  /// strictly smaller than the stored one (keep-best), so repeated
  /// rebuilds of an evolving approximation cannot churn the entry.
  void store(uint64_t key, CachedOrder entry);

  /// Drops every entry and zeroes the stats (tests, bench cold-runs).
  /// Restores the default capacity.
  void clear();

  /// Caps the cache at `n` entries (n >= 1), evicting LRU entries
  /// immediately if it is already over. Tests use tiny caps to exercise
  /// the eviction path.
  void set_max_entries(size_t n);
  size_t max_entries() const;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stores = 0;           ///< entries inserted or improved
    uint64_t stores_rejected = 0;  ///< keep-best kept the existing entry
    uint64_t evictions = 0;        ///< entries dropped by the LRU cap
  };
  Stats stats() const;
  size_t size() const;

 private:
  OrderCache() = default;

  struct Entry {
    CachedOrder order;
    std::list<uint64_t>::iterator lru_it;  // position in lru_
  };

  /// Moves `key` to the most-recent end. Caller holds mu_.
  void touch_locked(Entry& e, uint64_t key);
  /// Evicts LRU entries until size() <= max_entries_. Caller holds mu_.
  void enforce_cap_locked();

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, Entry> map_;
  std::list<uint64_t> lru_;  // front = most recently used
  size_t max_entries_ = kDefaultMaxEntries;
  Stats stats_;
};

/// Cache-aware seed order for a BDD manager over `net`'s PIs: the cached
/// converged order on a hit, static_pi_order on a miss. `key_out` always
/// receives the content hash (for the caller's later store); on a hit
/// `reorder_budget_out` receives 2x the recorded converged live-node
/// count (pass to BddManager::set_reorder_budget so the seeded build
/// skips sifting until it outgrows the converged order), on a miss it is
/// left at 0 (no budget: cold builds sift as before).
std::vector<int> cached_or_static_order(const Network& net, uint64_t* key_out,
                                        size_t* reorder_budget_out);

}  // namespace apx
