// Structural BDD variable-ordering heuristics over a Network.
//
// The quality of a BDD variable order dominates both peak node count and
// build time (often exponentially: a ripple-carry adder is linear under an
// interleaved order and exponential under the "all a's then all b's" PI
// order). static_pi_order computes the classic Malik/Fujita-style order:
// an interleaved depth-first traversal of the PO fanin cones, appending
// each primary input the first time the walk reaches it, with fanins
// visited deepest-first so the variables feeding long paths end up near
// the top of the order. The result seeds BddManager's permutation layer;
// sifting (BddManager::reorder) refines it dynamically.
#pragma once

#include <vector>

#include "network/network.hpp"

namespace apx {

/// Returns a permutation of the PI indices: position l holds the PI index
/// placed at BDD level l (level 0 = top of the order). PIs outside every
/// PO cone are appended at the bottom. Deterministic for a given network.
std::vector<int> static_pi_order(const Network& net);

}  // namespace apx
