#include "network/blif.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace apx {
namespace {

struct RawNames {
  std::vector<std::string> signals;  // fanins..., output last
  std::vector<std::pair<std::string, char>> rows;  // cube text, output value
  int line = 0;
};

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string t;
  while (in >> t) tokens.push_back(t);
  return tokens;
}

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::runtime_error("BLIF line " + std::to_string(line) + ": " +
                           message);
}

}  // namespace

Network read_blif_string(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::string model_name;
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::vector<RawNames> tables;
  RawNames* current = nullptr;

  int line_no = 0;
  std::string pending;  // for '\' continuations
  int pending_start = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments.
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    while (!line.empty() && (line.back() == '\r' || line.back() == ' '))
      line.pop_back();
    if (!line.empty() && line.back() == '\\') {
      line.pop_back();
      if (pending.empty()) pending_start = line_no;
      pending += line + " ";
      continue;
    }
    // A joined continuation is reported at its first physical line, but
    // line_no itself keeps counting physical lines — rewinding it here
    // would shift every diagnostic after the continuation.
    int effective_line = line_no;
    if (!pending.empty()) {
      line = pending + line;
      pending.clear();
      effective_line = pending_start;
    }
    auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string& head = tokens[0];
    if (head == ".model") {
      if (tokens.size() >= 2) model_name = tokens[1];
      current = nullptr;
    } else if (head == ".inputs") {
      input_names.insert(input_names.end(), tokens.begin() + 1, tokens.end());
      current = nullptr;
    } else if (head == ".outputs") {
      output_names.insert(output_names.end(), tokens.begin() + 1,
                          tokens.end());
      current = nullptr;
    } else if (head == ".names") {
      if (tokens.size() < 2) fail(effective_line, ".names needs an output");
      RawNames raw;
      raw.signals.assign(tokens.begin() + 1, tokens.end());
      raw.line = effective_line;
      tables.push_back(std::move(raw));
      current = &tables.back();
    } else if (head == ".end") {
      break;
    } else if (head[0] == '.') {
      // Unsupported directive (.latch etc.) -> reject: combinational only.
      fail(effective_line, "unsupported directive " + head);
    } else {
      if (current == nullptr) fail(effective_line, "cube row outside .names");
      if (tokens.size() == 1) {
        // Single-token row: constant table row ("1" or "0").
        if (current->signals.size() != 1)
          fail(effective_line, "bad constant row arity");
        current->rows.push_back({"", tokens[0][0]});
      } else if (tokens.size() == 2) {
        current->rows.push_back({tokens[0], tokens[1][0]});
      } else {
        fail(effective_line, "bad cube row");
      }
    }
  }

  Network net;
  net.set_name(model_name);
  std::unordered_map<std::string, NodeId> by_name;
  for (const std::string& n : input_names) by_name[n] = net.add_pi(n);

  // Two passes: create placeholder nodes first (BLIF tables may be in any
  // order), then fill functions.
  for (const RawNames& raw : tables) {
    const std::string& out = raw.signals.back();
    if (by_name.count(out)) fail(raw.line, "signal redefined: " + out);
    // Placeholder: filled below.
    by_name[out] = kNullNode;
  }
  // Creation in dependency order via repeated sweeps (tables are usually
  // already ordered; bounded by number of tables).
  std::vector<bool> done(tables.size(), false);
  size_t remaining = tables.size();
  while (remaining > 0) {
    size_t progress = 0;
    for (size_t t = 0; t < tables.size(); ++t) {
      if (done[t]) continue;
      const RawNames& raw = tables[t];
      bool ready = true;
      for (size_t i = 0; i + 1 < raw.signals.size(); ++i) {
        auto it = by_name.find(raw.signals[i]);
        if (it == by_name.end()) {
          fail(raw.line, "undefined signal " + raw.signals[i]);
        }
        if (it->second == kNullNode) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      const int num_ins = static_cast<int>(raw.signals.size()) - 1;
      Sop onset(num_ins);
      Sop offset(num_ins);
      for (const auto& [cube_text, value] : raw.rows) {
        std::optional<Cube> cube =
            num_ins == 0 ? Cube::full(0) : Cube::parse(cube_text);
        if (!cube || cube->num_vars() != num_ins) {
          fail(raw.line, "bad cube in table for " + raw.signals.back());
        }
        if (value == '1') {
          onset.add_cube(*cube);
        } else if (value == '0') {
          offset.add_cube(*cube);
        } else {
          fail(raw.line, "bad output value in table");
        }
      }
      if (!onset.empty() && !offset.empty()) {
        fail(raw.line, "mixed on-set and off-set rows");
      }
      NodeId id;
      if (num_ins == 0) {
        // Constant node.
        id = net.add_const(!onset.empty());
      } else {
        std::vector<NodeId> fanins;
        for (int i = 0; i < num_ins; ++i) fanins.push_back(by_name[raw.signals[i]]);
        Sop sop = !offset.empty() ? Sop::complement(offset) : onset;
        sop.make_scc_free();
        id = net.add_node(std::move(fanins), std::move(sop),
                          raw.signals.back());
      }
      by_name[raw.signals.back()] = id;
      done[t] = true;
      ++progress;
      --remaining;
    }
    if (progress == 0) {
      throw std::runtime_error("BLIF: cyclic or incomplete definitions");
    }
  }

  for (const std::string& out : output_names) {
    auto it = by_name.find(out);
    if (it == by_name.end() || it->second == kNullNode) {
      throw std::runtime_error("BLIF: undefined output " + out);
    }
    net.add_po(out, it->second);
  }
  net.check();
  return net;
}

Network read_blif_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open BLIF file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_blif_string(buffer.str());
}

std::string write_blif_string(const Network& net) {
  std::ostringstream out;
  out << ".model " << (net.name().empty() ? "top" : net.name()) << "\n";
  out << ".inputs";
  for (NodeId pi : net.pis()) out << " " << net.node(pi).name;
  out << "\n.outputs";
  for (const PrimaryOutput& po : net.pos()) out << " " << po.name;
  out << "\n";
  for (NodeId id : net.topo_order()) {
    const Node& n = net.node(id);
    if (n.kind == NodeKind::kPi) continue;
    if (n.kind == NodeKind::kConst0 || n.kind == NodeKind::kConst1) {
      out << ".names " << n.name << "\n";
      if (n.kind == NodeKind::kConst1) out << "1\n";
      continue;
    }
    out << ".names";
    for (NodeId f : n.fanins) out << " " << net.node(f).name;
    out << " " << n.name << "\n";
    for (const Cube& c : n.sop.cubes()) {
      out << c.to_string() << " 1\n";
    }
  }
  // POs whose driver has a different name get a buffer table.
  for (const PrimaryOutput& po : net.pos()) {
    if (net.node(po.driver).name != po.name) {
      out << ".names " << net.node(po.driver).name << " " << po.name
          << "\n1 1\n";
    }
  }
  out << ".end\n";
  return out.str();
}

void write_blif_file(const Network& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write BLIF file: " + path);
  out << write_blif_string(net);
}

}  // namespace apx
