#include "network/blif.hpp"

#include <algorithm>
#include <deque>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <unordered_map>

namespace apx {
namespace {

// The reader tokenizes the whole buffer in a single pass into string_views
// (no per-line stream objects, no per-token string copies) and keeps table
// metadata as ranges over two flat pools reserved from a first-pass count,
// so 100k-line files parse without quadratic reallocation. Views point into
// the input text; continuation-joined lines live in a deque whose elements
// never move.
struct RawTable {
  uint32_t first_signal = 0;  // range in signal_pool: fanins..., output last
  uint32_t num_signals = 0;
  uint32_t first_row = 0;  // range in row_pool
  uint32_t num_rows = 0;
  int line = 0;
};

void split_tokens(std::string_view line,
                  std::vector<std::string_view>* tokens) {
  tokens->clear();
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) {
      ++i;
    }
    const size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
           line[i] != '\r') {
      ++i;
    }
    if (i > start) tokens->push_back(line.substr(start, i - start));
  }
}

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::runtime_error("BLIF line " + std::to_string(line) + ": " +
                           message);
}

/// Builds a cube directly from its row text (same contract as Cube::parse,
/// minus the intermediate std::string).
std::optional<Cube> parse_cube(std::string_view text) {
  Cube c(static_cast<int>(text.size()));
  for (size_t i = 0; i < text.size(); ++i) {
    switch (text[i]) {
      case '0':
        c.set(static_cast<int>(i), LitCode::kNeg);
        break;
      case '1':
        c.set(static_cast<int>(i), LitCode::kPos);
        break;
      case '-':
      case '2':
        break;  // already free
      default:
        return std::nullopt;
    }
  }
  return c;
}

}  // namespace

Network read_blif_string(const std::string& text) {
  // First pass: cheap counts to size every pool up front. ".names" may also
  // match inside comments; that only over-reserves slightly.
  const size_t line_count =
      1 + static_cast<size_t>(std::count(text.begin(), text.end(), '\n'));
  size_t names_count = 0;
  for (size_t p = text.find(".names"); p != std::string::npos;
       p = text.find(".names", p + 6)) {
    ++names_count;
  }

  std::string_view model_name;
  std::vector<std::string_view> input_names;
  std::vector<std::string_view> output_names;
  std::vector<RawTable> tables;
  std::vector<std::string_view> signal_pool;
  std::vector<std::pair<std::string_view, char>> row_pool;  // cube, value
  tables.reserve(names_count);
  signal_pool.reserve(names_count * 4);
  row_pool.reserve(line_count);
  std::deque<std::string> joined;  // stable storage for '\' continuations
  std::vector<std::string_view> tokens;
  RawTable* current = nullptr;

  int line_no = 0;
  std::string pending;  // accumulates '\' continuations
  int pending_start = 0;
  size_t pos = 0;
  const std::string_view full(text);
  while (pos <= full.size()) {
    if (pos == full.size() && pending.empty()) break;
    size_t eol = full.find('\n', pos);
    if (eol == std::string_view::npos) eol = full.size();
    std::string_view line = full.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    line = line.substr(0, line.find('#'));  // strip comments
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    if (!line.empty() && line.back() == '\\') {
      line.remove_suffix(1);
      if (pending.empty()) pending_start = line_no;
      pending.append(line);
      pending.push_back(' ');
      continue;
    }
    // A joined continuation is reported at its first physical line, but
    // line_no itself keeps counting physical lines — rewinding it here
    // would shift every diagnostic after the continuation.
    int effective_line = line_no;
    if (!pending.empty()) {
      pending.append(line);
      joined.push_back(std::move(pending));
      pending.clear();
      line = joined.back();
      effective_line = pending_start;
    }
    split_tokens(line, &tokens);
    if (tokens.empty()) continue;
    const std::string_view head = tokens[0];
    if (head == ".model") {
      if (tokens.size() >= 2) model_name = tokens[1];
      current = nullptr;
    } else if (head == ".inputs") {
      input_names.insert(input_names.end(), tokens.begin() + 1, tokens.end());
      current = nullptr;
    } else if (head == ".outputs") {
      output_names.insert(output_names.end(), tokens.begin() + 1,
                          tokens.end());
      current = nullptr;
    } else if (head == ".names") {
      if (tokens.size() < 2) fail(effective_line, ".names needs an output");
      RawTable raw;
      raw.first_signal = static_cast<uint32_t>(signal_pool.size());
      raw.num_signals = static_cast<uint32_t>(tokens.size() - 1);
      signal_pool.insert(signal_pool.end(), tokens.begin() + 1, tokens.end());
      raw.first_row = static_cast<uint32_t>(row_pool.size());
      raw.line = effective_line;
      tables.push_back(raw);
      current = &tables.back();
    } else if (head == ".end") {
      break;
    } else if (head[0] == '.') {
      // Unsupported directive (.latch etc.) -> reject: combinational only.
      fail(effective_line, "unsupported directive " + std::string(head));
    } else {
      if (current == nullptr) fail(effective_line, "cube row outside .names");
      if (tokens.size() == 1) {
        // Single-token row: constant table row ("1" or "0").
        if (current->num_signals != 1)
          fail(effective_line, "bad constant row arity");
        row_pool.push_back({std::string_view(), tokens[0][0]});
      } else if (tokens.size() == 2) {
        row_pool.push_back({tokens[0], tokens[1][0]});
      } else {
        fail(effective_line, "bad cube row");
      }
      ++current->num_rows;
    }
  }

  Network net;
  net.set_name(std::string(model_name));
  std::unordered_map<std::string_view, NodeId> by_name;
  std::unordered_map<std::string_view, uint32_t> table_of;  // output -> index
  by_name.reserve(input_names.size() + tables.size());
  table_of.reserve(tables.size());
  for (const std::string_view n : input_names) {
    by_name[n] = net.add_pi(std::string(n));
  }

  // Placeholders first (BLIF tables may be in any order), then build in
  // dependency order.
  for (size_t t = 0; t < tables.size(); ++t) {
    const RawTable& raw = tables[t];
    const std::string_view out =
        signal_pool[raw.first_signal + raw.num_signals - 1];
    if (by_name.count(out)) {
      fail(raw.line, "signal redefined: " + std::string(out));
    }
    by_name[out] = kNullNode;  // placeholder: filled below
    table_of[out] = static_cast<uint32_t>(t);
  }

  // Materializes one table once all its fanins exist.
  auto build_table = [&](uint32_t t) {
    const RawTable& raw = tables[t];
    const std::string_view* signals = signal_pool.data() + raw.first_signal;
    const std::string_view out = signals[raw.num_signals - 1];
    const int num_ins = static_cast<int>(raw.num_signals) - 1;
    Sop onset(num_ins);
    Sop offset(num_ins);
    for (uint32_t r = raw.first_row; r < raw.first_row + raw.num_rows; ++r) {
      const auto& [cube_text, value] = row_pool[r];
      std::optional<Cube> cube =
          num_ins == 0 ? Cube::full(0) : parse_cube(cube_text);
      if (!cube || cube->num_vars() != num_ins) {
        fail(raw.line, "bad cube in table for " + std::string(out));
      }
      if (value == '1') {
        onset.add_cube(*cube);
      } else if (value == '0') {
        offset.add_cube(*cube);
      } else {
        fail(raw.line, "bad output value in table");
      }
    }
    if (!onset.empty() && !offset.empty()) {
      fail(raw.line, "mixed on-set and off-set rows");
    }
    NodeId id;
    if (num_ins == 0) {
      // Constant node.
      id = net.add_const(!onset.empty());
    } else {
      std::vector<NodeId> fanins;
      fanins.reserve(num_ins);
      for (int i = 0; i < num_ins; ++i) fanins.push_back(by_name[signals[i]]);
      Sop sop = !offset.empty() ? Sop::complement(offset) : onset;
      sop.make_scc_free();
      id = net.add_node(std::move(fanins), std::move(sop), std::string(out));
    }
    by_name[out] = id;
  };

  // Iterative DFS over the name-dependency graph: linear in tables + fanin
  // references (the former repeated-sweep resolution was quadratic on
  // reverse-ordered files). state: 0 = unvisited, 1 = on stack awaiting
  // fanins, 2 = built.
  std::vector<char> state(tables.size(), 0);
  std::vector<uint32_t> stack;
  for (uint32_t root = 0; root < tables.size(); ++root) {
    if (state[root] == 2) continue;
    stack.assign(1, root);
    while (!stack.empty()) {
      const uint32_t t = stack.back();
      if (state[t] == 2) {
        stack.pop_back();
        continue;
      }
      const RawTable& raw = tables[t];
      bool pushed = false;
      if (state[t] == 0) {
        state[t] = 1;
        for (uint32_t i = 0; i + 1 < raw.num_signals; ++i) {
          const std::string_view s = signal_pool[raw.first_signal + i];
          auto it = by_name.find(s);
          if (it == by_name.end()) {
            fail(raw.line, "undefined signal " + std::string(s));
          }
          if (it->second != kNullNode) continue;  // PI or already built
          const uint32_t dep = table_of.at(s);
          if (state[dep] == 1) {
            // A fanin still on the stack below us closes a cycle.
            throw std::runtime_error("BLIF: cyclic or incomplete definitions");
          }
          if (state[dep] == 0) {
            stack.push_back(dep);
            pushed = true;
          }
        }
      }
      if (pushed) continue;  // revisit t after its fanins are built
      build_table(t);
      state[t] = 2;
      stack.pop_back();
    }
  }

  for (const std::string_view out : output_names) {
    auto it = by_name.find(out);
    if (it == by_name.end() || it->second == kNullNode) {
      throw std::runtime_error("BLIF: undefined output " + std::string(out));
    }
    net.add_po(std::string(out), it->second);
  }
  net.check();
  return net;
}

Network read_blif_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open BLIF file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_blif_string(buffer.str());
}

std::string write_blif_string(const Network& net) {
  std::ostringstream out;
  out << ".model " << (net.name().empty() ? "top" : net.name()) << "\n";
  out << ".inputs";
  for (NodeId pi : net.pis()) out << " " << net.node(pi).name;
  out << "\n.outputs";
  for (const PrimaryOutput& po : net.pos()) out << " " << po.name;
  out << "\n";
  for (NodeId id : net.topo_order()) {
    const Node& n = net.node(id);
    if (n.kind == NodeKind::kPi) continue;
    if (n.kind == NodeKind::kConst0 || n.kind == NodeKind::kConst1) {
      out << ".names " << n.name << "\n";
      if (n.kind == NodeKind::kConst1) out << "1\n";
      continue;
    }
    out << ".names";
    for (NodeId f : n.fanins) out << " " << net.node(f).name;
    out << " " << n.name << "\n";
    for (const Cube& c : n.sop.cubes()) {
      out << c.to_string() << " 1\n";
    }
  }
  // POs whose driver has a different name get a buffer table.
  for (const PrimaryOutput& po : net.pos()) {
    if (net.node(po.driver).name != po.name) {
      out << ".names " << net.node(po.driver).name << " " << po.name
          << "\n1 1\n";
    }
  }
  out << ".end\n";
  return out.str();
}

void write_blif_file(const Network& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write BLIF file: " + path);
  out << write_blif_string(net);
}

}  // namespace apx
