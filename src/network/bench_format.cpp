#include "network/bench_format.hpp"

#include <algorithm>
#include <bit>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

namespace apx {
namespace {

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::runtime_error(".bench line " + std::to_string(line) + ": " +
                           message);
}

std::string strip(const std::string& s) {
  size_t a = s.find_first_not_of(" \t\r");
  if (a == std::string::npos) return "";
  size_t b = s.find_last_not_of(" \t\r");
  return s.substr(a, b - a + 1);
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

// Gate SOP over k fanins.
Sop gate_sop(const std::string& type, int k, int line) {
  Sop sop(k);
  auto all = [&](LitCode code) {
    Cube c = Cube::full(k);
    for (int v = 0; v < k; ++v) c.set(v, code);
    return c;
  };
  if (type == "AND") {
    sop.add_cube(all(LitCode::kPos));
  } else if (type == "NAND") {
    for (int v = 0; v < k; ++v) {
      Cube c = Cube::full(k);
      c.set(v, LitCode::kNeg);
      sop.add_cube(c);
    }
  } else if (type == "OR") {
    for (int v = 0; v < k; ++v) {
      Cube c = Cube::full(k);
      c.set(v, LitCode::kPos);
      sop.add_cube(c);
    }
  } else if (type == "NOR") {
    sop.add_cube(all(LitCode::kNeg));
  } else if (type == "XOR" || type == "XNOR") {
    if (k < 1 || k > 16) fail(line, "XOR arity unsupported");
    bool want = type == "XOR";
    for (uint64_t m = 0; m < (1ULL << k); ++m) {
      bool parity = std::popcount(m) & 1;
      if (parity == want) sop.add_cube(Cube::minterm(k, m));
    }
  } else if (type == "NOT") {
    if (k != 1) fail(line, "NOT needs one input");
    sop.add_cube(all(LitCode::kNeg));
  } else if (type == "BUF" || type == "BUFF") {
    if (k != 1) fail(line, "BUF needs one input");
    sop.add_cube(all(LitCode::kPos));
  } else {
    fail(line, "unsupported gate " + type);
  }
  return sop;
}

}  // namespace

Network read_bench_string(const std::string& text) {
  struct RawGate {
    std::string out;
    std::string type;
    std::vector<std::string> ins;
    int line;
  };
  std::vector<std::string> inputs, outputs;
  std::vector<RawGate> gates;

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = strip(line);
    if (line.empty()) continue;
    std::string up = upper(line);
    if (up.rfind("INPUT", 0) == 0 || up.rfind("OUTPUT", 0) == 0) {
      size_t open = line.find('(');
      size_t close = line.rfind(')');
      if (open == std::string::npos || close == std::string::npos ||
          close <= open) {
        fail(line_no, "malformed declaration");
      }
      std::string name = strip(line.substr(open + 1, close - open - 1));
      if (up.rfind("INPUT", 0) == 0) {
        inputs.push_back(name);
      } else {
        outputs.push_back(name);
      }
      continue;
    }
    size_t eq = line.find('=');
    if (eq == std::string::npos) fail(line_no, "expected assignment");
    RawGate gate;
    gate.out = strip(line.substr(0, eq));
    gate.line = line_no;
    std::string rhs = strip(line.substr(eq + 1));
    size_t open = rhs.find('(');
    size_t close = rhs.rfind(')');
    if (open == std::string::npos || close == std::string::npos) {
      fail(line_no, "expected GATE(...)");
    }
    gate.type = upper(strip(rhs.substr(0, open)));
    if (gate.type == "DFF") fail(line_no, "sequential elements unsupported");
    std::string args = rhs.substr(open + 1, close - open - 1);
    std::istringstream as(args);
    std::string arg;
    while (std::getline(as, arg, ',')) {
      arg = strip(arg);
      if (!arg.empty()) gate.ins.push_back(arg);
    }
    gates.push_back(std::move(gate));
  }

  Network net;
  net.set_name("bench");
  std::unordered_map<std::string, NodeId> by_name;
  for (const std::string& name : inputs) by_name[name] = net.add_pi(name);

  // Iterate until all gates resolve (inputs may be declared in any order).
  std::vector<bool> done(gates.size(), false);
  size_t remaining = gates.size();
  while (remaining > 0) {
    size_t progress = 0;
    for (size_t g = 0; g < gates.size(); ++g) {
      if (done[g]) continue;
      const RawGate& gate = gates[g];
      bool ready = true;
      for (const std::string& name : gate.ins) {
        if (!by_name.count(name)) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      NodeId id;
      if (gate.type == "CONST0" || gate.type == "GND") {
        id = net.add_const(false);
      } else if (gate.type == "CONST1" || gate.type == "VDD") {
        id = net.add_const(true);
      } else {
        std::vector<NodeId> fanins;
        for (const std::string& name : gate.ins) {
          fanins.push_back(by_name.at(name));
        }
        id = net.add_node(fanins,
                          gate_sop(gate.type,
                                   static_cast<int>(fanins.size()),
                                   gate.line),
                          gate.out);
      }
      by_name[gate.out] = id;
      done[g] = true;
      ++progress;
      --remaining;
    }
    if (progress == 0) {
      throw std::runtime_error(".bench: cyclic or undefined signals");
    }
  }
  for (const std::string& name : outputs) {
    auto it = by_name.find(name);
    if (it == by_name.end()) {
      throw std::runtime_error(".bench: undefined output " + name);
    }
    net.add_po(name, it->second);
  }
  net.check();
  return net;
}

Network read_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open .bench file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return read_bench_string(buffer.str());
}

std::string write_bench_string(const Network& net) {
  std::ostringstream out;
  for (NodeId pi : net.pis()) {
    out << "INPUT(" << net.node(pi).name << ")\n";
  }
  for (const PrimaryOutput& po : net.pos()) {
    out << "OUTPUT(" << net.node(po.driver).name << ")\n";
  }
  // Classify each node's SOP; general SOPs expand via helper signals.
  int helper = 0;
  for (NodeId id : net.topo_order()) {
    const Node& n = net.node(id);
    if (n.kind == NodeKind::kPi) continue;
    if (n.kind == NodeKind::kConst0) {
      out << n.name << " = CONST0()\n";
      continue;
    }
    if (n.kind == NodeKind::kConst1) {
      out << n.name << " = CONST1()\n";
      continue;
    }
    const Sop& sop = n.sop;
    auto fanin_name = [&](int v) { return net.node(n.fanins[v]).name; };
    // Single cube, all positive -> AND; all negative -> NOR; single
    // literal -> BUF/NOT; otherwise expand.
    std::vector<std::string> cube_signals;
    for (const Cube& c : sop.cubes()) {
      std::vector<std::pair<int, bool>> lits;  // (var, positive)
      for (int v = 0; v < sop.num_vars(); ++v) {
        if (c.get(v) == LitCode::kPos) lits.push_back({v, true});
        if (c.get(v) == LitCode::kNeg) lits.push_back({v, false});
      }
      std::vector<std::string> terms;
      for (auto [v, pos] : lits) {
        if (pos) {
          terms.push_back(fanin_name(v));
        } else {
          std::string inv = n.name + "_n" + std::to_string(helper++);
          out << inv << " = NOT(" << fanin_name(v) << ")\n";
          terms.push_back(inv);
        }
      }
      if (terms.empty()) {
        std::string one = n.name + "_c" + std::to_string(helper++);
        out << one << " = CONST1()\n";
        cube_signals.push_back(one);
      } else if (terms.size() == 1) {
        cube_signals.push_back(terms[0]);
      } else {
        std::string cube_name = n.name + "_a" + std::to_string(helper++);
        out << cube_name << " = AND(";
        for (size_t i = 0; i < terms.size(); ++i) {
          out << (i ? ", " : "") << terms[i];
        }
        out << ")\n";
        cube_signals.push_back(cube_name);
      }
    }
    if (cube_signals.empty()) {
      out << n.name << " = CONST0()\n";
    } else if (cube_signals.size() == 1) {
      out << n.name << " = BUF(" << cube_signals[0] << ")\n";
    } else {
      out << n.name << " = OR(";
      for (size_t i = 0; i < cube_signals.size(); ++i) {
        out << (i ? ", " : "") << cube_signals[i];
      }
      out << ")\n";
    }
  }
  return out.str();
}

void write_bench_file(const Network& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write .bench file: " + path);
  out << write_bench_string(net);
}

}  // namespace apx
