#include "network/topology_view.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/trace.hpp"

namespace apx {

std::shared_ptr<const TopologyView> TopologyView::build(const Network& net) {
  if (trace::enabled()) {
    static trace::Counter& builds = trace::counter("topo.view_builds");
    builds.add(1);
  }
  auto view = std::shared_ptr<TopologyView>(new TopologyView());
  view->structure_version_ = net.structure_version();
  const int n = net.num_nodes();

  // Topological order: the exact iterative DFS the legacy topo_order()
  // ran (roots 0..n-1, fanins pushed in list order). Consumers' result
  // bytes are pinned to this order, so it must not change.
  std::vector<int> state(n, 0);  // 0 unvisited, 1 on stack, 2 done
  view->topo_.reserve(n);
  std::vector<std::pair<NodeId, size_t>> stack;
  for (NodeId root = 0; root < n; ++root) {
    if (state[root] != 0) continue;
    stack.emplace_back(root, 0);
    state[root] = 1;
    while (!stack.empty()) {
      auto& [id, next] = stack.back();
      const auto& fanins = net.node(id).fanins;
      if (next < fanins.size()) {
        NodeId f = fanins[next++];
        if (state[f] == 1) throw std::logic_error("topo_order: cycle");
        if (state[f] == 0) {
          state[f] = 1;
          stack.emplace_back(f, 0);
        }
      } else {
        state[id] = 2;
        view->topo_.push_back(id);
        stack.pop_back();
      }
    }
  }

  view->topo_pos_.assign(n, 0);
  for (int i = 0; i < n; ++i) {
    view->topo_pos_[view->topo_[i]] = static_cast<int32_t>(i);
  }

  // Levels over the topo order (PIs/consts 0).
  view->level_.assign(n, 0);
  for (NodeId id : view->topo_) {
    const Node& node = net.node(id);
    if (node.kind != NodeKind::kLogic) continue;
    int max_in = -1;
    for (NodeId f : node.fanins) max_in = std::max(max_in, view->level_[f]);
    view->level_[id] = max_in + 1;
    view->max_level_ = std::max(view->max_level_, view->level_[id]);
  }

  // CSR fanin + fanout adjacency. Filling fanouts in ascending consumer id
  // (then fanin-list) order reproduces the legacy fanouts() edge order.
  view->fanin_offset_.assign(n + 1, 0);
  view->fanout_offset_.assign(n + 1, 0);
  size_t total_edges = 0;
  for (NodeId id = 0; id < n; ++id) {
    const auto& fanins = net.node(id).fanins;
    view->fanin_offset_[id + 1] =
        view->fanin_offset_[id] + static_cast<int32_t>(fanins.size());
    for (NodeId f : fanins) ++view->fanout_offset_[f + 1];
    total_edges += fanins.size();
  }
  for (NodeId id = 0; id < n; ++id) {
    view->fanout_offset_[id + 1] += view->fanout_offset_[id];
  }
  view->fanin_edges_.resize(total_edges);
  view->fanout_edges_.resize(total_edges);
  std::vector<int32_t> fill(view->fanout_offset_.begin(),
                            view->fanout_offset_.end() - 1);
  for (NodeId id = 0; id < n; ++id) {
    const auto& fanins = net.node(id).fanins;
    int32_t base = view->fanin_offset_[id];
    for (size_t k = 0; k < fanins.size(); ++k) {
      NodeId f = fanins[k];
      view->fanin_edges_[base + static_cast<int32_t>(k)] = f;
      view->fanout_edges_[fill[f]++] = id;
    }
  }
  return view;
}

void TopologyView::cone_of(const NodeId* roots, int num_roots,
                           ConeScratch& scratch,
                           std::vector<NodeId>& out) const {
  out.clear();
  scratch.marks.begin(num_nodes());
  scratch.stack.clear();
  for (int i = 0; i < num_roots; ++i) {
    NodeId r = roots[i];
    if (scratch.marks.insert(r)) {
      scratch.stack.push_back(r);
      out.push_back(r);
    }
  }
  while (!scratch.stack.empty()) {
    NodeId id = scratch.stack.back();
    scratch.stack.pop_back();
    for (NodeId f : fanins(id)) {
      if (scratch.marks.insert(f)) {
        scratch.stack.push_back(f);
        out.push_back(f);
      }
    }
  }
  // Sorting by topo position equals filtering the full topo order (the
  // legacy formulation) without the O(num_nodes) scan per call.
  std::sort(out.begin(), out.end(), [this](NodeId a, NodeId b) {
    return topo_pos_[a] < topo_pos_[b];
  });
}

}  // namespace apx
