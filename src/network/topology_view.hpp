// Cache-resident, version-stamped snapshot of a Network's structure.
//
// Network::topo_order(), levels(), fanouts(), and cone_of() historically
// re-ran a DFS and allocated fresh vectors (including a vector-of-vectors
// for fanouts) on every call, at ~30 call sites — a visible traversal tax
// once plane evaluation went SIMD-wide. A TopologyView computes all of it
// once per Network::structure_version() into one flat arena:
//
//   * topological order (byte-identical to the legacy DFS order, which
//     downstream bit-identity gates depend on) plus each node's position
//     in it,
//   * per-node levels and the maximum level,
//   * fanout AND fanin adjacency in CSR form (one offsets array + one
//     contiguous edge array each) instead of vector-of-vectors,
//   * cone_of() as an epoch-stamped mark sweep over the CSR fanin arrays
//     into a caller-owned scratch, so steady-state cone queries allocate
//     nothing.
//
// Views are immutable and shared: Network::topology() returns a
// shared_ptr<const TopologyView> that consumers hold across calls;
// structural mutations bump structure_version() which makes the next
// topology() call rebuild (counted by the apx_trace counters
// `topo.view_builds` / `topo.view_hits`). Function-only mutations
// (set_sop) do not invalidate the view.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "network/network.hpp"

namespace apx {

/// Reusable epoch-stamped node marks: clearing between generations is O(1)
/// (an epoch bump) instead of O(n), and storage is reused across calls so
/// the steady state allocates nothing.
class EpochMarks {
 public:
  /// Starts a new generation over `n` slots; all marks read as unset.
  void begin(int n) {
    if (static_cast<int>(mark_.size()) < n) mark_.resize(n, 0);
    if (++epoch_ == 0) {  // uint32 epoch wrapped: old stamps would alias
      std::fill(mark_.begin(), mark_.end(), 0u);
      epoch_ = 1;
    }
  }
  bool test(NodeId id) const { return mark_[id] == epoch_; }
  void set(NodeId id) { mark_[id] = epoch_; }
  /// Sets the mark; returns true when it was previously unset.
  bool insert(NodeId id) {
    if (mark_[id] == epoch_) return false;
    mark_[id] = epoch_;
    return true;
  }

 private:
  std::vector<uint32_t> mark_;
  uint32_t epoch_ = 0;
};

/// Caller-owned scratch for TopologyView::cone_of. One instance per thread
/// (or per long-lived analysis object), reused across calls.
struct ConeScratch {
  EpochMarks marks;
  std::vector<NodeId> stack;
};

class TopologyView {
 public:
  /// Contiguous CSR adjacency slice.
  class Range {
   public:
    const NodeId* begin() const { return begin_; }
    const NodeId* end() const { return end_; }
    int size() const { return static_cast<int>(end_ - begin_); }
    bool empty() const { return begin_ == end_; }
    NodeId operator[](int i) const { return begin_[i]; }

   private:
    friend class TopologyView;
    Range(const NodeId* b, const NodeId* e) : begin_(b), end_(e) {}
    const NodeId* begin_;
    const NodeId* end_;
  };

  /// Builds a snapshot of `net` (throws std::logic_error on cycles, like
  /// the legacy topo_order). Normally reached via Network::topology().
  static std::shared_ptr<const TopologyView> build(const Network& net);

  /// structure_version() of the network at build time.
  uint64_t structure_version() const { return structure_version_; }

  int num_nodes() const { return static_cast<int>(topo_.size()); }

  /// Topological order (PIs and constants first); identical element order
  /// to the legacy Network::topo_order() DFS.
  const std::vector<NodeId>& topo() const { return topo_; }

  /// Index of `id` within topo().
  int topo_position(NodeId id) const { return topo_pos_[id]; }

  /// Per-node logic depth (PIs/consts 0) and its maximum.
  const std::vector<int>& levels() const { return level_; }
  int level(NodeId id) const { return level_[id]; }
  int max_level() const { return max_level_; }

  /// Fanout edges of `id` (consumers in ascending id order, with one entry
  /// per fanin occurrence — identical multiset to the legacy fanouts()).
  Range fanouts(NodeId id) const {
    return Range(fanout_edges_.data() + fanout_offset_[id],
                 fanout_edges_.data() + fanout_offset_[id + 1]);
  }
  int fanout_count(NodeId id) const {
    return static_cast<int>(fanout_offset_[id + 1] - fanout_offset_[id]);
  }

  /// Fanin edges of `id` in fanin-list order.
  Range fanins(NodeId id) const {
    return Range(fanin_edges_.data() + fanin_offset_[id],
                 fanin_edges_.data() + fanin_offset_[id + 1]);
  }
  int fanin_count(NodeId id) const {
    return static_cast<int>(fanin_offset_[id + 1] - fanin_offset_[id]);
  }

  /// Transitive fanin cone of `roots` (roots included), written to `out`
  /// in topological order — identical contents to the legacy
  /// Network::cone_of. Allocation-free once `scratch` and `out` have grown
  /// to their steady-state capacity.
  void cone_of(const NodeId* roots, int num_roots, ConeScratch& scratch,
               std::vector<NodeId>& out) const;
  void cone_of(const std::vector<NodeId>& roots, ConeScratch& scratch,
               std::vector<NodeId>& out) const {
    cone_of(roots.data(), static_cast<int>(roots.size()), scratch, out);
  }

 private:
  TopologyView() = default;

  uint64_t structure_version_ = 0;
  std::vector<NodeId> topo_;
  std::vector<int32_t> topo_pos_;
  std::vector<int> level_;
  int max_level_ = 0;
  std::vector<int32_t> fanout_offset_;  ///< num_nodes + 1 entries
  std::vector<NodeId> fanout_edges_;
  std::vector<int32_t> fanin_offset_;  ///< num_nodes + 1 entries
  std::vector<NodeId> fanin_edges_;
};

}  // namespace apx
