// BLIF reader/writer for combinational networks (.model/.inputs/.outputs/
// .names/.end). On-set rows ("<cube> 1") and off-set rows ("<cube> 0") are
// supported; off-set tables are complemented into on-set SOPs on load.
#pragma once

#include <string>

#include "network/network.hpp"

namespace apx {

/// Parses a BLIF description. Throws std::runtime_error with a line-number
/// message on malformed input.
Network read_blif_string(const std::string& text);
Network read_blif_file(const std::string& path);

/// Serializes a network as BLIF (on-set rows only).
std::string write_blif_string(const Network& net);
void write_blif_file(const Network& net, const std::string& path);

}  // namespace apx
