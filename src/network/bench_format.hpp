// ISCAS .bench format reader/writer: INPUT(x)/OUTPUT(y) declarations and
// gate assignments y = GATE(a, b, ...) with the classic gate vocabulary
// (AND, OR, NAND, NOR, XOR, XNOR, NOT, BUF/BUFF, CONST0/CONST1).
#pragma once

#include <string>

#include "network/network.hpp"

namespace apx {

/// Parses .bench text. Throws std::runtime_error on malformed input or
/// unsupported gates (sequential DFF elements are rejected: this library is
/// combinational).
Network read_bench_string(const std::string& text);
Network read_bench_file(const std::string& path);

/// Serializes a network whose nodes are simple gates; nodes with general
/// SOPs are emitted as a two-level AND/OR/NOT expansion.
std::string write_bench_string(const Network& net);
void write_bench_file(const Network& net, const std::string& path);

}  // namespace apx
