// Benchmark circuits for tests, examples and the paper-table harnesses.
//
// Two sources (see DESIGN.md substitutions):
//  * Embedded hand-written classics (c17, adders, mux/decoder, comparator,
//    majority, ALU slice) with exactly known functions.
//  * A deterministic, seeded generator producing multi-level networks that
//    match each MCNC benchmark's published profile (PI/PO counts, mapped
//    gate count, signal-probability skew); these stand in for the original
//    MCNC netlists, which are not redistributable here.
#pragma once

#include <string>
#include <vector>

#include "network/network.hpp"

namespace apx {

/// Profile of a generated benchmark.
struct BenchmarkProfile {
  std::string name;
  int num_pis = 8;
  int num_pos = 2;
  /// Target mapped gate count (basic library, balance script); the
  /// generator self-calibrates to land near this.
  int target_gates = 100;
  /// 0..1: skew of literal polarities / node flavors. Higher values yield
  /// more extreme signal probabilities (and more error-direction skew).
  double skew = 0.6;
  int max_fanin = 4;
  /// Logic depth target (MCNC circuits are wide and shallow; typical mapped
  /// depths are 8-20 levels). The generator builds this many layers.
  int target_depth = 10;
  uint64_t seed = 1;
};

/// Deterministically generates a network matching the profile.
Network generate_benchmark(const BenchmarkProfile& profile);

/// Profiles mirroring the paper's Table 2 circuits (cmb, cordic, term1, x1,
/// i2, frg2, dalu, i10) plus the Table 1 sources (i8, des).
const std::vector<BenchmarkProfile>& mcnc_profiles();

/// Looks up a profile by name; throws std::out_of_range if unknown.
const BenchmarkProfile& mcnc_profile(const std::string& name);

// ---- embedded exact circuits ----
Network make_c17();
Network make_full_adder();
Network make_ripple_adder(int bits);
Network make_mux41();
Network make_decoder38();
/// N-bit magnitude comparator (eq, gt POs). PI order is a0..aN-1,b0..bN-1 —
/// the separated order that is exponentially bad for the identity BDD
/// ordering and linear under interleaving, which the ordering benches use.
Network make_comparator(int bits);
Network make_comparator4();
Network make_majority5();
Network make_alu_slice();
/// bits x bits unsigned array multiplier (carry-save column reduction,
/// structural AND/XOR/OR nodes, 2*bits product POs). mult32 is the
/// deterministic >=10k-gate workhorse of the AIG scale gates.
Network make_multiplier(int bits);

// ---- large generated benchmarks (AIG scale gates) ----
// Deliberately kept out of benchmark_names(): suite-wide tests iterate
// that list, and these are one to two orders of magnitude larger than the
// committed suite. make_benchmark() still resolves them by name.

/// Profiles of the registered large benchmarks ("aes_rp": an AES-round-
/// profile netlist — 128-bit datapath interface, ~12k mapped gates).
const std::vector<BenchmarkProfile>& large_profiles();

/// Names of the registered large benchmarks ("mult32", "aes_rp", ...).
std::vector<std::string> large_benchmark_names();

/// Unified lookup: embedded circuits by name ("c17", "rca4"/"rca8"/"rca16",
/// "mux41", "dec38", "cmp4"/"cmp8"/"cmp16", "maj5", "alu1") or generated
/// MCNC stand-ins ("cmb", "cordic", ..., "i10"). Throws std::out_of_range
/// if unknown.
Network make_benchmark(const std::string& name);

/// All available benchmark names.
std::vector<std::string> benchmark_names();

}  // namespace apx
