#include "benchmarks/benchmarks.hpp"

#include <algorithm>
#include <bit>
#include <random>
#include <stdexcept>

#include "mapping/mapper.hpp"
#include "mapping/optimize.hpp"

namespace apx {
namespace {

Network generate_raw(const BenchmarkProfile& profile, int num_nodes) {
  std::mt19937_64 rng(profile.seed * 0x9E3779B97F4A7C15ULL + 1);
  Network net;
  net.set_name(profile.name);
  std::vector<NodeId> pool;
  // Estimated signal probability per node (independence assumption). Real
  // MCNC logic keeps internal signals away from the constants even at
  // depth; polarity choices below steer toward that.
  std::vector<double> prob;
  for (int i = 0; i < profile.num_pis; ++i) {
    pool.push_back(net.add_pi("pi" + std::to_string(i)));
    prob.push_back(0.5);
  }
  // Nodes not yet referenced by any fanin; consuming them keeps the DAG
  // connected so little logic is stranded.
  std::vector<NodeId> unused = pool;

  auto take_unused = [&]() -> NodeId {
    size_t i = rng() % unused.size();
    NodeId id = unused[i];
    unused[i] = unused.back();
    unused.pop_back();
    return id;
  };

  // Layered construction: MCNC-class circuits are wide and shallow, so
  // nodes are organized into target_depth layers and draw fanins mostly
  // from the immediately preceding layer (plus long-range picks for
  // reconvergence).
  const int depth = std::max(2, profile.target_depth);
  const int per_layer = std::max(1, num_nodes / depth);
  size_t prev_layer_begin = 0;
  size_t prev_layer_end = pool.size();
  size_t this_layer_begin = pool.size();

  for (int i = 0; i < num_nodes; ++i) {
    if (static_cast<int>(pool.size() - this_layer_begin) >= per_layer) {
      prev_layer_begin = this_layer_begin;
      prev_layer_end = pool.size();
      this_layer_begin = pool.size();
    }
    int k = 2 + static_cast<int>(rng() % static_cast<uint64_t>(
                                     std::max(1, profile.max_fanin - 1)));
    std::vector<NodeId> fanins;
    // Consume unconsumed nodes at a rate that leaves ~num_pos sinks at the
    // end (each node produces one signal; balanced consumption prevents
    // stranded logic that the calibration loop would otherwise chase).
    if (!unused.empty()) fanins.push_back(take_unused());
    int surplus = static_cast<int>(unused.size()) - profile.num_pos;
    if (surplus > 0 && !unused.empty() &&
        static_cast<int>(rng() % std::max(1, num_nodes - i)) < surplus) {
      NodeId extra = take_unused();
      if (std::find(fanins.begin(), fanins.end(), extra) == fanins.end()) {
        fanins.push_back(extra);
      }
    }
    while (static_cast<int>(fanins.size()) < k) {
      NodeId cand;
      int roll = static_cast<int>(rng() % 100);
      if (roll < 70 && prev_layer_end > prev_layer_begin) {
        cand = pool[prev_layer_begin +
                    rng() % (prev_layer_end - prev_layer_begin)];
      } else if (roll < 90) {
        cand = pool[rng() % std::max<size_t>(prev_layer_end, 1)];
      } else {
        cand = pool[rng() % pool.size()];
      }
      if (std::find(fanins.begin(), fanins.end(), cand) == fanins.end()) {
        fanins.push_back(cand);
      }
    }
    k = static_cast<int>(fanins.size());

    // Node flavor: AND-like and OR-like nodes (control-dominated structure)
    // vs general unate-leaning SOPs. Literal polarities are steered by the
    // fanins' estimated signal probabilities so deep nodes neither saturate
    // to constants (AND cubes prefer each fanin's likelier phase, OR
    // literals its rarer phase) nor lose all skew.
    std::vector<double> fp;
    for (NodeId f : fanins) fp.push_back(prob[f]);
    auto lit_prob = [&](int v, LitCode code) {
      return code == LitCode::kPos ? fp[v] : 1.0 - fp[v];
    };
    auto steered_code = [&](int v, bool prefer_likely) {
      // Only steer when the fanin is drifting toward a constant; inside the
      // healthy band polarities stay random, preserving the natural signal
      // skew that gives outputs a dominant error direction.
      bool steer = fp[v] < 0.05 || fp[v] > 0.95;
      bool likely_is_pos = fp[v] >= 0.5;
      bool pick_pos = steer ? (prefer_likely == likely_is_pos)
                            : static_cast<bool>(rng() & 1);
      return pick_pos ? LitCode::kPos : LitCode::kNeg;
    };
    Sop sop(k);
    double flavor = static_cast<double>(rng() % 1000) / 1000.0;
    double node_prob = 0.5;
    if (flavor < profile.skew / 2) {
      // AND-like: single cube over all fanins, likelier phases preferred.
      Cube c = Cube::full(k);
      node_prob = 1.0;
      for (int v = 0; v < k; ++v) {
        LitCode code = steered_code(v, /*prefer_likely=*/true);
        c.set(v, code);
        node_prob *= lit_prob(v, code);
      }
      sop.add_cube(c);
    } else if (flavor < profile.skew) {
      // OR-like: one single-literal cube per fanin, rarer phases preferred.
      double p_none = 1.0;
      for (int v = 0; v < k; ++v) {
        Cube c = Cube::full(k);
        LitCode code = steered_code(v, /*prefer_likely=*/false);
        c.set(v, code);
        p_none *= 1.0 - lit_prob(v, code);
        sop.add_cube(c);
      }
      node_prob = 1.0 - p_none;
    } else {
      // General: 2-3 cubes, each variable bound with probability ~0.7.
      // MCNC-class control logic is predominantly locally unate, so most
      // general nodes fix one polarity per variable across their cubes.
      int cubes = 2 + static_cast<int>(rng() % 2);
      bool unate = (rng() % 100) < 80;
      std::vector<LitCode> polarity(k);
      for (int v = 0; v < k; ++v) {
        polarity[v] = steered_code(v, /*prefer_likely=*/(rng() & 1));
      }
      node_prob = 0.0;
      for (int ci = 0; ci < cubes; ++ci) {
        Cube c = Cube::full(k);
        double cube_p = 1.0;
        bool bound_any = false;
        for (int v = 0; v < k; ++v) {
          if ((rng() % 100) < 70) {
            LitCode code = unate ? polarity[v]
                                 : steered_code(v, (rng() & 1));
            c.set(v, code);
            cube_p *= lit_prob(v, code);
            bound_any = true;
          }
        }
        if (!bound_any) {
          int v = static_cast<int>(rng() % k);
          c.set(v, polarity[v]);
          cube_p *= lit_prob(v, polarity[v]);
        }
        node_prob = std::min(1.0, node_prob + cube_p);
        sop.add_cube(c);
      }
      sop.make_scc_free();
    }
    NodeId id = net.add_node(fanins, std::move(sop));
    pool.push_back(id);
    prob.push_back(std::clamp(node_prob, 0.02, 0.98));
    unused.push_back(id);
  }

  // Merge leftover sinks pairwise until at most num_pos remain, so every
  // generated gate ends up in some PO cone.
  {
    std::vector<NodeId> sinks;
    for (NodeId id : unused) {
      if (net.node(id).kind == NodeKind::kLogic) sinks.push_back(id);
    }
    while (static_cast<int>(sinks.size()) > std::max(1, profile.num_pos)) {
      NodeId a = sinks.back();
      sinks.pop_back();
      NodeId b = sinks.back();
      sinks.pop_back();
      NodeId merged = (rng() & 1) ? net.add_and(a, b) : net.add_or(a, b);
      sinks.push_back(merged);
    }
    unused = sinks;
  }

  // POs: prefer the unconsumed sinks; top up with the deepest nodes.
  std::vector<NodeId> po_drivers;
  for (NodeId id : unused) {
    if (net.node(id).kind == NodeKind::kLogic) po_drivers.push_back(id);
  }
  std::sort(po_drivers.begin(), po_drivers.end());
  if (static_cast<int>(po_drivers.size()) > profile.num_pos) {
    // Evenly subsample to the requested count.
    std::vector<NodeId> picked;
    double step = static_cast<double>(po_drivers.size()) / profile.num_pos;
    for (int i = 0; i < profile.num_pos; ++i) {
      picked.push_back(po_drivers[static_cast<size_t>(i * step)]);
    }
    po_drivers = std::move(picked);
  } else {
    for (NodeId id = static_cast<NodeId>(net.num_nodes()) - 1;
         id >= 0 && static_cast<int>(po_drivers.size()) < profile.num_pos;
         --id) {
      if (net.node(id).kind != NodeKind::kLogic) continue;
      if (std::find(po_drivers.begin(), po_drivers.end(), id) ==
          po_drivers.end()) {
        po_drivers.push_back(id);
      }
    }
  }
  for (size_t i = 0; i < po_drivers.size(); ++i) {
    net.add_po("po" + std::to_string(i), po_drivers[i]);
  }
  net.cleanup();
  net.check();
  return net;
}

}  // namespace

Network generate_benchmark(const BenchmarkProfile& profile) {
  // Self-calibration: adjust the node count until the mapped gate count
  // lands near the target (deterministic for a fixed profile).
  int nodes = std::max(4, profile.target_gates / 3);
  Network best;
  int best_err = -1;
  for (int iter = 0; iter < 4; ++iter) {
    Network net = generate_raw(profile, nodes);
    int area = mapped_area(technology_map(quick_synthesis(net)));
    int err = std::abs(area - profile.target_gates);
    if (best_err < 0 || err < best_err) {
      best_err = err;
      best = net;
    }
    if (area == 0) {
      nodes *= 2;
      continue;
    }
    if (err <= profile.target_gates / 10) break;
    int64_t scaled = static_cast<int64_t>(nodes) * profile.target_gates /
                     std::max(area, 1);
    scaled = std::min<int64_t>(scaled, 3LL * nodes);       // growth cap
    scaled = std::min<int64_t>(scaled, 4LL * profile.target_gates);
    nodes = std::max(4, static_cast<int>(scaled));
  }
  return best;
}

const std::vector<BenchmarkProfile>& mcnc_profiles() {
  // PI/PO counts follow the published MCNC statistics; gate targets follow
  // the paper's Tables 1-2.
  static const std::vector<BenchmarkProfile> profiles = {
      {"cmb", 16, 4, 57, 0.7, 4, 7, 101},
      {"cordic", 23, 2, 116, 0.65, 4, 10, 102},
      {"term1", 34, 10, 260, 0.6, 4, 9, 103},
      {"x1", 51, 35, 442, 0.55, 4, 8, 104},
      {"i2", 201, 1, 440, 0.7, 4, 11, 105},
      {"frg2", 143, 139, 1089, 0.6, 4, 11, 106},
      {"dalu", 75, 16, 1166, 0.6, 4, 13, 107},
      {"i10", 257, 224, 2866, 0.55, 4, 14, 108},
      {"i8", 133, 81, 1000, 0.6, 4, 10, 109},
      {"des", 256, 245, 3000, 0.55, 4, 12, 110},
  };
  return profiles;
}

const BenchmarkProfile& mcnc_profile(const std::string& name) {
  for (const auto& p : mcnc_profiles()) {
    if (p.name == name) return p;
  }
  throw std::out_of_range("unknown MCNC profile: " + name);
}

Network make_c17() {
  Network net;
  net.set_name("c17");
  NodeId i1 = net.add_pi("1");
  NodeId i2 = net.add_pi("2");
  NodeId i3 = net.add_pi("3");
  NodeId i6 = net.add_pi("6");
  NodeId i7 = net.add_pi("7");
  Sop nand2 = *Sop::parse(2, "0-\n-0");
  NodeId n10 = net.add_node({i1, i3}, nand2, "10");
  NodeId n11 = net.add_node({i3, i6}, nand2, "11");
  NodeId n16 = net.add_node({i2, n11}, nand2, "16");
  NodeId n19 = net.add_node({n11, i7}, nand2, "19");
  NodeId o22 = net.add_node({n10, n16}, nand2, "22");
  NodeId o23 = net.add_node({n16, n19}, nand2, "23");
  net.add_po("22", o22);
  net.add_po("23", o23);
  return net;
}

Network make_full_adder() {
  Network net;
  net.set_name("fadd");
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId cin = net.add_pi("cin");
  NodeId axb = net.add_xor(a, b, "axb");
  NodeId sum = net.add_xor(axb, cin, "sum");
  NodeId ab = net.add_and(a, b, "ab");
  NodeId c2 = net.add_and(cin, axb, "c2");
  NodeId cout = net.add_or(ab, c2, "cout");
  net.add_po("sum", sum);
  net.add_po("cout", cout);
  return net;
}

Network make_ripple_adder(int bits) {
  Network net;
  net.set_name("rca" + std::to_string(bits));
  std::vector<NodeId> a, b;
  for (int i = 0; i < bits; ++i) a.push_back(net.add_pi("a" + std::to_string(i)));
  for (int i = 0; i < bits; ++i) b.push_back(net.add_pi("b" + std::to_string(i)));
  NodeId carry = net.add_pi("cin");
  for (int i = 0; i < bits; ++i) {
    NodeId axb = net.add_xor(a[i], b[i]);
    NodeId sum = net.add_xor(axb, carry);
    NodeId ab = net.add_and(a[i], b[i]);
    NodeId c2 = net.add_and(carry, axb);
    carry = net.add_or(ab, c2);
    net.add_po("s" + std::to_string(i), sum);
  }
  net.add_po("cout", carry);
  return net;
}

Network make_mux41() {
  Network net;
  net.set_name("mux41");
  NodeId d0 = net.add_pi("d0");
  NodeId d1 = net.add_pi("d1");
  NodeId d2 = net.add_pi("d2");
  NodeId d3 = net.add_pi("d3");
  NodeId s0 = net.add_pi("s0");
  NodeId s1 = net.add_pi("s1");
  // out = d0 s1's0' + d1 s1's0 + d2 s1 s0' + d3 s1 s0.
  NodeId out = net.add_node({d0, d1, d2, d3, s0, s1},
                            *Sop::parse(6, "1---00\n-1--10\n--1-01\n---111"));
  net.add_po("y", out);
  return net;
}

Network make_decoder38() {
  Network net;
  net.set_name("dec38");
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId c = net.add_pi("c");
  NodeId en = net.add_pi("en");
  for (int i = 0; i < 8; ++i) {
    Cube cube = Cube::full(4);
    cube.set(0, (i & 1) ? LitCode::kPos : LitCode::kNeg);
    cube.set(1, (i & 2) ? LitCode::kPos : LitCode::kNeg);
    cube.set(2, (i & 4) ? LitCode::kPos : LitCode::kNeg);
    cube.set(3, LitCode::kPos);
    Sop sop(4);
    sop.add_cube(cube);
    net.add_po("y" + std::to_string(i),
               net.add_node({a, b, c, en}, std::move(sop)));
  }
  return net;
}

Network make_comparator(int bits) {
  Network net;
  net.set_name("cmp" + std::to_string(bits));
  std::vector<NodeId> a, b;
  for (int i = 0; i < bits; ++i) a.push_back(net.add_pi("a" + std::to_string(i)));
  for (int i = 0; i < bits; ++i) b.push_back(net.add_pi("b" + std::to_string(i)));
  // eq = AND of per-bit xnors; gt via a priority chain from the MSB:
  // gt = (a_n>b_n) + eq_n (a_{n-1}>b_{n-1}) + eq_n eq_{n-1} (...) + ...
  std::vector<NodeId> xnor, a_gt_b;
  for (int i = 0; i < bits; ++i) {
    xnor.push_back(net.add_node({a[i], b[i]}, *Sop::parse(2, "00\n11")));
    a_gt_b.push_back(net.add_node({a[i], b[i]}, *Sop::parse(2, "10")));
  }
  NodeId eq = xnor[0];
  for (int i = 1; i < bits; ++i) {
    eq = net.add_and(eq, xnor[i], i == bits - 1 ? "eq" : "");
  }
  NodeId gt = a_gt_b[bits - 1];
  NodeId eq_prefix = kNullNode;  // AND of xnors above bit i
  for (int i = bits - 2; i >= 0; --i) {
    eq_prefix = eq_prefix == kNullNode
                    ? xnor[i + 1]
                    : net.add_and(eq_prefix, xnor[i + 1]);
    gt = net.add_or(gt, net.add_and(eq_prefix, a_gt_b[i]));
  }
  net.add_po("eq", eq);
  net.add_po("gt", gt);
  return net;
}

Network make_comparator4() {
  Network net = make_comparator(4);
  net.set_name("cmp4");
  return net;
}

Network make_majority5() {
  Network net;
  net.set_name("maj5");
  std::vector<NodeId> x;
  for (int i = 0; i < 5; ++i) x.push_back(net.add_pi("x" + std::to_string(i)));
  Sop sop(5);
  for (int m = 0; m < 32; ++m) {
    if (std::popcount(static_cast<unsigned>(m)) != 3) continue;
    // One cube per 3-subset: those three inputs high.
    Cube c = Cube::full(5);
    for (int v = 0; v < 5; ++v) {
      if ((m >> v) & 1) c.set(v, LitCode::kPos);
    }
    sop.add_cube(c);
  }
  net.add_po("maj", net.add_node(x, std::move(sop)));
  return net;
}

Network make_alu_slice() {
  Network net;
  net.set_name("alu1");
  NodeId a = net.add_pi("a");
  NodeId b = net.add_pi("b");
  NodeId cin = net.add_pi("cin");
  NodeId op0 = net.add_pi("op0");
  NodeId op1 = net.add_pi("op1");
  NodeId a_and_b = net.add_and(a, b);
  NodeId a_or_b = net.add_or(a, b);
  NodeId a_xor_b = net.add_xor(a, b);
  NodeId sum = net.add_xor(a_xor_b, cin);
  NodeId c2 = net.add_and(cin, a_xor_b);
  NodeId cout = net.add_or(a_and_b, c2);
  // out = mux(op1 op0: 00->and, 01->or, 10->xor, 11->sum).
  NodeId out = net.add_node({a_and_b, a_or_b, a_xor_b, sum, op0, op1},
                            *Sop::parse(6, "1---00\n-1--10\n--1-01\n---111"));
  net.add_po("y", out);
  net.add_po("cout", cout);
  return net;
}

Network make_multiplier(int bits) {
  Network net;
  net.set_name("mult" + std::to_string(bits));
  std::vector<NodeId> a, b;
  for (int i = 0; i < bits; ++i) a.push_back(net.add_pi("a" + std::to_string(i)));
  for (int i = 0; i < bits; ++i) b.push_back(net.add_pi("b" + std::to_string(i)));

  // Partial products bucketed by output column, then carry-save column
  // compression: full adders three at a time, a half adder on the last
  // pair, carries feeding the next column. Fully structural and
  // deterministic — no generator, no calibration.
  std::vector<std::vector<NodeId>> col(2 * bits + 1);
  for (int i = 0; i < bits; ++i) {
    for (int j = 0; j < bits; ++j) {
      col[i + j].push_back(net.add_and(a[i], b[j]));
    }
  }
  for (int c = 0; c < 2 * bits; ++c) {
    size_t head = 0;
    while (col[c].size() - head >= 3) {
      const NodeId x = col[c][head];
      const NodeId y = col[c][head + 1];
      const NodeId z = col[c][head + 2];
      head += 3;
      const NodeId xy = net.add_xor(x, y);
      col[c].push_back(net.add_xor(xy, z));
      col[c + 1].push_back(
          net.add_or(net.add_and(x, y), net.add_and(z, xy)));
    }
    if (col[c].size() - head == 2) {
      const NodeId x = col[c][head];
      const NodeId y = col[c][head + 1];
      head += 2;
      col[c].push_back(net.add_xor(x, y));
      col[c + 1].push_back(net.add_and(x, y));
    }
    net.add_po("p" + std::to_string(c),
               col[c].empty() ? net.add_const(false) : col[c].back());
  }
  // Carries spilling past column 2*bits-1 are provably constant 0 (the
  // product fits in 2*bits bits); cleanup drops that dangling logic.
  net.cleanup();
  net.check();
  return net;
}

const std::vector<BenchmarkProfile>& large_profiles() {
  // aes_rp mirrors one round of a 128-bit block cipher datapath in
  // profile: 128-bit in/out, wide and shallow, ~12k mapped gates.
  static const std::vector<BenchmarkProfile> profiles = {
      {"aes_rp", 128, 128, 12000, 0.55, 4, 18, 111},
  };
  return profiles;
}

std::vector<std::string> large_benchmark_names() {
  std::vector<std::string> names = {"mult32"};
  for (const auto& p : large_profiles()) names.push_back(p.name);
  return names;
}

Network make_benchmark(const std::string& name) {
  if (name == "mult32") return make_multiplier(32);
  for (const auto& p : large_profiles()) {
    if (p.name == name) return generate_benchmark(p);
  }
  if (name == "c17") return make_c17();
  if (name == "fadd") return make_full_adder();
  if (name == "rca4") return make_ripple_adder(4);
  if (name == "rca8") return make_ripple_adder(8);
  if (name == "rca16") return make_ripple_adder(16);
  if (name == "mux41") return make_mux41();
  if (name == "dec38") return make_decoder38();
  if (name == "cmp4") return make_comparator4();
  if (name == "cmp8") return make_comparator(8);
  if (name == "cmp16") return make_comparator(16);
  if (name == "maj5") return make_majority5();
  if (name == "alu1") return make_alu_slice();
  return generate_benchmark(mcnc_profile(name));
}

std::vector<std::string> benchmark_names() {
  std::vector<std::string> names = {"c17",   "fadd", "rca4", "rca8",
                                    "rca16", "mux41", "dec38", "cmp4",
                                    "cmp8",  "cmp16", "maj5", "alu1"};
  for (const auto& p : mcnc_profiles()) names.push_back(p.name);
  return names;
}

}  // namespace apx
