// Transition (gate-delay) fault model for the paper's future-work item (i):
// "CED of errors caused by delay faults on speed-paths in logic circuits".
//
// A slow-to-rise (slow-to-fall) fault at a node delays its 0->1 (1->0)
// transition past the clock edge. Under the standard two-pattern model the
// faulty machine evaluates the second pattern with the fault site holding
// its first-pattern value whenever the delayed transition was required:
//   slow-to-rise: x_faulty = x2 AND x1   (a rising site stays 0)
//   slow-to-fall: x_faulty = x2 OR  x1   (a falling site stays 1)
// and the stale value propagates through the fanout cone.
#pragma once

#include <cstdint>
#include <vector>

#include "network/network.hpp"
#include "sim/simulator.hpp"

namespace apx {

struct TransitionFault {
  NodeId node = kNullNode;
  bool slow_to_rise = true;  ///< false = slow-to-fall
};

/// Two-pattern transition-fault simulator. Patterns are consumed as
/// (first, second) pairs sharing word geometry; results are the values at
/// the *second* pattern (launch-capture).
class TransitionSimulator {
 public:
  explicit TransitionSimulator(const Network& net);

  /// Simulates the fault-free pair.
  void run(const PatternSet& first, const PatternSet& second);

  /// Fault-free capture values (second pattern) of a node.
  WordSpan value(NodeId id) const;

  /// First-pattern (launch) values of a node.
  WordSpan launch_value(NodeId id) const;

  /// Injects a transition fault; faulty capture values readable via
  /// faulty_value(). run() must have been called first.
  void inject(const TransitionFault& fault);

  WordSpan faulty_value(NodeId id) const;

  /// Bit mask of patterns on which the fault is *launched* (the site
  /// actually makes the slow transition), per word. The view aliases a
  /// member scratch buffer: valid until the next launch_mask call.
  WordSpan launch_mask(const TransitionFault& fault);

 private:
  const Network& net_;
  Simulator first_;
  Simulator second_;
  // Per-injection scratch, reused across calls (no heap allocations on the
  // steady-state injection path).
  std::vector<uint64_t> forced_;
  std::vector<uint64_t> mask_;
};

/// Enumerates both transition faults of every PI fanout stem and every
/// logic node. A slow transition on a PI stem is a real defect site (the
/// paper's speed-paths start at the inputs); skipping them used to make PI
/// delay faults unobservable in every delay-CED measurement.
std::vector<TransitionFault> enumerate_transition_faults(const Network& net);

}  // namespace apx
