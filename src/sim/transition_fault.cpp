#include "sim/transition_fault.hpp"

namespace apx {

TransitionSimulator::TransitionSimulator(const Network& net)
    : net_(net), first_(net), second_(net) {}

void TransitionSimulator::run(const PatternSet& first,
                              const PatternSet& second) {
  first_.run(first);
  second_.run(second);
}

WordSpan TransitionSimulator::value(NodeId id) const {
  return second_.value(id);
}

WordSpan TransitionSimulator::launch_value(NodeId id) const {
  return first_.value(id);
}

void TransitionSimulator::inject(const TransitionFault& fault) {
  const WordSpan v1 = first_.value(fault.node);
  const WordSpan v2 = second_.value(fault.node);
  forced_.resize(v2.size());
  for (int w = 0; w < v2.num_words(); ++w) {
    // Slow-to-rise: a required 0->1 transition is missed (stays at 0), so
    // the captured value is v2 AND v1. Dually for slow-to-fall.
    forced_[w] = fault.slow_to_rise ? (v2[w] & v1[w]) : (v2[w] | v1[w]);
  }
  second_.inject_forced(fault.node, forced_.data());
}

WordSpan TransitionSimulator::faulty_value(NodeId id) const {
  return second_.faulty_value(id);
}

WordSpan TransitionSimulator::launch_mask(const TransitionFault& fault) {
  const WordSpan v1 = first_.value(fault.node);
  const WordSpan v2 = second_.value(fault.node);
  mask_.resize(v2.size());
  for (int w = 0; w < v2.num_words(); ++w) {
    mask_[w] = fault.slow_to_rise ? (~v1[w] & v2[w]) : (v1[w] & ~v2[w]);
  }
  return WordSpan(mask_.data(), v2.num_words());
}

std::vector<TransitionFault> enumerate_transition_faults(const Network& net) {
  std::vector<TransitionFault> faults;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    const NodeKind kind = net.node(id).kind;
    // PI fanout stems are delay-fault sites too: a slow transition on an
    // input line is launched exactly like a gate-output transition.
    if (kind == NodeKind::kLogic || kind == NodeKind::kPi) {
      faults.push_back({id, true});
      faults.push_back({id, false});
    }
  }
  return faults;
}

}  // namespace apx
