// Runtime-dispatched SIMD kernels for bit-parallel SOP evaluation.
//
// The simulation substrate's single hot operation is "evaluate one node's
// SOP over a row of pattern words". Three kernels implement it with
// identical bitwise semantics at different lane widths:
//
//   scalar  one 64-bit word per step (the portable baseline)
//   avx2    four words (256 bits) per step
//   avx512  eight words (512 bits) per step
//
// The active kernel is selected once at startup from CPUID
// (__builtin_cpu_supports), overridable with APX_SIMD=scalar|avx2|avx512
// (or auto). Requesting an unsupported tier falls back to the widest
// supported one below it; simd::policy() records the request so bench
// artifacts can tell a genuine avx512 run from a clamped one. Because every
// kernel computes the same pure bitwise function word by word (lane-width
// strides over full words, scalar on the sub-lane tail), results are
// byte-identical across tiers — the bit-identity guarantee the engine
// already gives for thread counts extends to SIMD widths.
#pragma once

#include <cstdint>

#include "sop/sop.hpp"

namespace apx {

namespace simd {

enum class Tier { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// True when the host CPU can execute this tier's kernel.
bool tier_supported(Tier tier);

/// Widest tier the host supports.
Tier best_supported_tier();

/// The tier the dispatcher currently routes to (resolved once from
/// APX_SIMD/CPUID on first use).
Tier active_tier();

/// Lane width of a tier / of the active tier, in pattern bits per step.
int width_bits(Tier tier);
int width_bits();

const char* tier_name(Tier tier);

/// The resolved dispatch policy, e.g. "auto", "scalar", or
/// "avx512->avx2(unsupported)" when a requested tier was clamped.
const char* policy();

/// Test hook: force a specific tier at runtime (bypassing APX_SIMD).
/// Throws std::invalid_argument if the host cannot execute it. Not
/// thread-safe against concurrently running kernels — call between
/// simulations only.
void set_tier(Tier tier);

}  // namespace simd

/// Evaluates a node's SOP bit-parallel over `num_words` words through the
/// active SIMD kernel. `fanin[k]` points at the word row of SOP variable k.
/// Shared evaluation kernel of Simulator and FaultSimEngine. Exactly the
/// words [0, num_words) are written; callers keeping padded rows rely on
/// padding words never being touched.
void eval_sop_words(const Sop& sop, const uint64_t* const* fanin,
                    int num_words, uint64_t* out);

/// True when rows a and b differ on any *valid* pattern bit: all bits of
/// words [0, num_words-1), and only the tail_mask bits of the final word.
/// Pass ~0ULL when every pattern of the final word is valid. Dispatched
/// like eval_sop_words; every tier returns the same bool.
bool rows_differ(const uint64_t* a, const uint64_t* b, int num_words,
                 uint64_t tail_mask);

// ---------------------------------------------------------------------------
// Masked popcount-reduce kernels: the campaign visitors' accounting loops
// (CED coverage, per-output error rates, rank histograms, observability,
// masking, approximation percentages) all reduce value rows to integer
// bit counts. Each kernel computes an exact integer sum — popcount over
// full words at vector width, with the final word's padding bits (those
// outside tail_mask) excluded — so every tier returns the identical
// integer and the bit-identity contract extends to the accounting side
// for free. Pass ~0ULL as tail_mask when every bit of the final word is
// valid.
// ---------------------------------------------------------------------------

/// popcount of row a over the valid bits.
int64_t popcount_words(const uint64_t* a, int num_words, uint64_t tail_mask);

/// popcount of (a & b) over the valid bits.
int64_t popcount_and(const uint64_t* a, const uint64_t* b, int num_words,
                     uint64_t tail_mask);

/// popcount of ((a ^ b) & c) over the valid bits — e.g. "erroneous AND
/// golden/faulty checker disagreement" style reductions.
int64_t popcount_xor_and(const uint64_t* a, const uint64_t* b,
                         const uint64_t* c, int num_words,
                         uint64_t tail_mask);

/// popcount of (~a & b) over the valid bits (directional error counts:
/// golden 0 / faulty 1 and vice versa).
int64_t popcount_andnot(const uint64_t* a, const uint64_t* b, int num_words,
                        uint64_t tail_mask);

/// acc[w] |= a[w] ^ b[w] for all words (row-combine step used to fold a
/// set of outputs into one "any output differs" row before counting).
void accumulate_xor_or(uint64_t* acc, const uint64_t* a, const uint64_t* b,
                       int num_words);

/// acc[w] |= ~a[w] & b[w] for all words.
void accumulate_andnot_or(uint64_t* acc, const uint64_t* a, const uint64_t* b,
                          int num_words);

}  // namespace apx
