// Shared-pattern, multi-threaded single-stuck-at fault-simulation engine.
//
// The measurement loops behind the paper's headline numbers (CED coverage,
// per-output error rates) sample thousands of (fault, vector-batch) pairs.
// The naive formulation re-generates a PatternSet and re-runs the entire
// golden machine once per sample — O(samples x network). This engine uses
// the classic "one golden run, N cone-incremental injections" structure:
//
//   * fault samples are grouped into batches that share one golden
//     simulation of one random PatternSet;
//   * each fault is evaluated event-driven over its fanout cone only,
//     walked level-by-level from precomputed fanout adjacency, with
//     propagation stopping as soon as a node's faulty value collapses back
//     to its golden value;
//   * faults are distributed over the shared process-wide task pool
//     (core/task_pool.hpp); every pool slot owns a reusable scratch arena
//     (faulty values, epochs, level buckets) over the shared read-only
//     golden image — no per-injection allocations;
//   * value planes are flat 64-byte-aligned SoA arenas (sim/arena.hpp)
//     evaluated by the runtime-dispatched SIMD kernels (sim/kernels.hpp);
//   * results are bit-identical for any thread count AND any SIMD width:
//     all randomness is derived deterministically per object index (see
//     sim/rng.hpp), visitors write into per-sample slots, and every kernel
//     tier computes the same pure bitwise function;
//   * campaigns may use pattern counts that are not multiples of 64
//     (vectors_per_fault): the final partial word's padding bits are
//     masked out of excitation, propagation-death, and detection checks,
//     so they can never count toward coverage.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "network/network.hpp"
#include "network/topology_view.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace apx {

/// Read-only view of one fault's effect on the current pattern batch,
/// handed to campaign visitors. Pointers are into the engine's golden
/// image and the calling worker's arena; valid only during the visit.
class FaultView {
 public:
  int num_words() const { return num_words_; }

  /// Number of valid pattern vectors in this batch; the high
  /// 64*num_words() - num_vectors() bits of the final word are padding.
  int num_vectors() const { return num_vectors_; }

  /// Valid-pattern mask of word w: all-ones except for the final word,
  /// whose padding bits are zero. AND this into any per-word popcount so
  /// padding patterns never reach a measurement.
  uint64_t word_mask(int w) const {
    return w + 1 == num_words_ ? tail_mask_ : ~0ULL;
  }

  /// Golden (fault-free) value words of a node.
  const uint64_t* golden(NodeId id) const {
    return golden_ + static_cast<size_t>(id) * stride_;
  }

  /// Value words of a node under the injected fault; identical storage to
  /// golden(id) when the fault cone did not reach the node.
  const uint64_t* faulty(NodeId id) const {
    return valid_[id] == epoch_
               ? values_ + static_cast<size_t>(id) * stride_
               : golden(id);
  }

  /// True when the fault perturbed this node on some *valid* pattern
  /// (padding bits of the final word never count).
  bool touched(NodeId id) const { return valid_[id] == epoch_; }

  /// Task-pool slot of the worker producing this view: dense in
  /// [0, num_threads) and unique among concurrently running visitors, so
  /// callers can accumulate into per-slot buffers without locking (merge
  /// them in slot order for bit-identical totals).
  int worker_slot() const { return worker_slot_; }

 private:
  friend class FaultSimEngine;
  const uint64_t* golden_ = nullptr;
  const uint64_t* values_ = nullptr;
  const uint32_t* valid_ = nullptr;
  uint32_t epoch_ = 0;
  int num_words_ = 0;
  int num_vectors_ = 0;
  int stride_ = 0;  ///< words per node row in both planes
  uint64_t tail_mask_ = ~0ULL;
  int worker_slot_ = 0;
};

/// A Monte-Carlo campaign: `num_fault_samples` sampled faults, each
/// simulated against `words_per_fault` 64-bit pattern words, with
/// `faults_per_batch` samples amortizing one shared golden run.
struct CampaignOptions {
  int num_fault_samples = 2000;
  int words_per_fault = 4;
  /// Pattern vectors per fault. 0 (default) means words_per_fault * 64; a
  /// positive value overrides words_per_fault (words = ceil(v / 64)) and
  /// masks the final word's padding bits out of all detection decisions.
  int vectors_per_fault = 0;
  /// Samples sharing one golden simulation (and its patterns). Larger
  /// values amortize more golden work; smaller values see more distinct
  /// vectors across the campaign.
  int faults_per_batch = 64;
  /// Parallelism cap on the shared task pool; 0 = apx::thread_count()
  /// (the APX_THREADS policy). Results are bit-identical for any value.
  int num_threads = 0;
  uint64_t seed = 0x5EED;
};

/// Options for detect_faults (fault-dropping coverage of a fault list).
struct DetectOptions {
  /// Pattern budget per fault, in 64-bit words.
  int max_words = 64;
  /// Words per shared golden batch; faults detected in an early batch are
  /// dropped from all later batches.
  int words_per_batch = 8;
  /// Parallelism cap on the shared task pool; 0 = apx::thread_count().
  int num_threads = 0;
  uint64_t seed = 0xD7EC7;
};

/// detect_faults result. `fault_batch_evals` counts (fault, batch) pairs
/// actually simulated — with dropping this is far below
/// faults * ceil(max_words / words_per_batch).
struct DetectionReport {
  std::vector<uint8_t> detected;
  /// Batch index at which each fault was first detected, -1 if never.
  std::vector<int32_t> detecting_batch;
  int64_t fault_batch_evals = 0;

  int64_t num_detected() const {
    int64_t n = 0;
    for (uint8_t d : detected) n += d;
    return n;
  }
};

/// Bit-parallel fault-simulation engine over a fixed network.
///
/// Thread-safety: run_campaign / run_batch / detect_faults are themselves
/// not reentrant (one campaign at a time per engine), but they invoke the
/// visitor concurrently from worker threads — a visitor must only touch
/// state owned by its sample index (or synchronize explicitly).
class FaultSimEngine {
 public:
  explicit FaultSimEngine(const Network& net);
  ~FaultSimEngine();

  FaultSimEngine(const FaultSimEngine&) = delete;
  FaultSimEngine& operator=(const FaultSimEngine&) = delete;

  /// Draws the fault for a sample from its derived seed. Must be pure.
  using Sampler = std::function<StuckFault(uint64_t sample_seed)>;
  /// Called exactly once per sample with that fault's view of its batch.
  using Visitor =
      std::function<void(int sample_index, const StuckFault& fault,
                         const FaultView& view)>;

  /// Runs a Monte-Carlo campaign: sample i's fault is
  /// sampler(derive_seed(seed, i)); batch b's patterns are
  /// PatternSet::random(pis, words_per_fault, derive_seed(seed ^
  /// kPatternStream, b)). Visitor calls may run concurrently but every
  /// sample index is visited exactly once, with identical (fault, view)
  /// content for any num_threads and any SIMD tier.
  void run_campaign(const CampaignOptions& options, const Sampler& sampler,
                    const Visitor& visit);

  /// Lower-level building block: one golden run on `patterns`, then every
  /// fault in `faults` evaluated against it (visit called with the fault's
  /// position in the list as sample index). A positive num_vectors
  /// restricts detection to the first num_vectors patterns (the final
  /// word's padding bits are masked out).
  void run_batch(const PatternSet& patterns,
                 const std::vector<StuckFault>& faults, const Visitor& visit,
                 int num_threads = 1, int num_vectors = 0);

  /// Classic fault-dropping detection: simulates every fault against
  /// successive random batches observed at `observe` nodes; a fault is
  /// dropped from later batches once some observed node differs from
  /// golden. Deterministic for any thread count.
  DetectionReport detect_faults(const std::vector<StuckFault>& faults,
                                const std::vector<NodeId>& observe,
                                const DetectOptions& options);

  const Network& network() const { return net_; }

  /// Pattern-stream tag of the seed contract (exposed for reproducing a
  /// campaign's pattern batches outside the engine).
  static constexpr uint64_t kPatternStream = 0xBA7C85EEDULL;

 private:
  struct Worker;

  void run_golden(const PatternSet& patterns, int num_vectors);
  void simulate_fault(Worker& w, const StuckFault& fault) const;
  FaultView view_of(const Worker& w, int slot) const;
  Worker& worker(int index);
  /// Dispatches f(worker, slot, i) for i in [begin, end) over up to
  /// `threads` slots of the shared task pool (arena `slot` is exclusive
  /// to the executing thread for the duration of the loop).
  void parallel_for(int begin, int end, int threads,
                    const std::function<void(Worker&, int, int)>& f);

  const Network& net_;
  /// Shared structure snapshot: topo order, levels, CSR fanout adjacency.
  /// Held for the engine's lifetime (the network must not mutate under a
  /// running campaign — same contract as before).
  std::shared_ptr<const TopologyView> view_;

  int num_words_ = 0;
  int num_vectors_ = 0;
  uint64_t tail_mask_ = ~0ULL;  ///< valid bits of the final word
  /// Shared read-only golden plane (one aligned row per node).
  ValueArena golden_;

  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace apx
