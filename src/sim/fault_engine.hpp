// Shared-pattern, multi-threaded fault-simulation engine (single and
// multi-site stuck-at faults, plus burst-transient faults).
//
// The measurement loops behind the paper's headline numbers (CED coverage,
// per-output error rates) sample thousands of (fault, vector-batch) pairs.
// The naive formulation re-generates a PatternSet and re-runs the entire
// golden machine once per sample — O(samples x network). This engine uses
// the classic "one golden run, N cone-incremental injections" structure:
//
//   * fault samples are grouped into batches that share one golden
//     simulation of one random PatternSet;
//   * each fault is evaluated event-driven over its fanout cone only,
//     walked level-by-level from precomputed fanout adjacency, with
//     propagation stopping as soon as a node's faulty value collapses back
//     to its golden value;
//   * faults are distributed over the shared process-wide task pool
//     (core/task_pool.hpp); every pool slot owns a reusable scratch arena
//     (faulty values, epochs, level buckets) over the shared read-only
//     golden image — no per-injection allocations;
//   * value planes are flat 64-byte-aligned SoA arenas (sim/arena.hpp)
//     evaluated by the runtime-dispatched SIMD kernels (sim/kernels.hpp);
//   * results are bit-identical for any thread count AND any SIMD width:
//     all randomness is derived deterministically per object index (see
//     sim/rng.hpp), visitors write into per-sample slots, and every kernel
//     tier computes the same pure bitwise function;
//   * campaigns may use pattern counts that are not multiples of 64
//     (vectors_per_fault): the final partial word's padding bits are
//     masked out of excitation, propagation-death, and detection checks,
//     so they can never count toward coverage;
//   * fault models beyond single stuck-at ride the same walk: a FaultSpec
//     seeds every site's row up front (transient sites force only their
//     burst window's bits, keeping golden elsewhere) and schedules the
//     union of the sites' fanouts; site rows are pinned for the batch so
//     the walk never re-evaluates them, which keeps the schedule — and
//     hence the results — independent of thread count and visit order.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "network/network.hpp"
#include "network/topology_view.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"

namespace apx {

/// Fault models a campaign can sample from. All three ride the same
/// event-driven substrate; kSingleStuckAt takes the exact code path the
/// original single-fault engine used (bit-identical results).
enum class FaultModel {
  kSingleStuckAt,   ///< one permanent stuck-at site per sample
  kMultiStuckAt,    ///< `sites_per_fault` simultaneous stuck-at sites
  kTransientBurst,  ///< one site forced only on a contiguous vector window
};

const char* fault_model_name(FaultModel model);

/// One site of a (possibly multi-site) fault. A permanent site forces
/// `stuck_value` on every pattern vector; a transient site forces it only
/// on vectors [burst_start, burst_start + burst_length) and carries the
/// golden value everywhere else.
struct FaultSite {
  NodeId node = kNullNode;
  bool stuck_value = false;
  bool transient = false;
  int32_t burst_start = 0;
  int32_t burst_length = 0;
};

/// A sampled fault: up to kMaxSites simultaneous sites. Plain value type;
/// construct single stuck-ats through the factory (deliberately no implicit
/// StuckFault conversion, so the legacy overloads stay unambiguous).
struct FaultSpec {
  static constexpr int kMaxSites = 4;

  FaultSite sites[kMaxSites] = {};
  int num_sites = 0;

  static FaultSpec stuck_at(const StuckFault& f) {
    FaultSpec spec;
    spec.sites[0].node = f.node;
    spec.sites[0].stuck_value = f.stuck_value;
    spec.num_sites = 1;
    return spec;
  }

  /// Appends a site; throws std::logic_error beyond kMaxSites.
  void add(const FaultSite& site);
};

/// What run_campaign does when a sampler returns a dead site — a stuck-at
/// that can never propagate: same-polarity stuck-at on a kConst0/kConst1
/// node, or a site with no fanouts that drives no PO. Silently simulating
/// such samples wastes campaign budget and quietly deflates error rates.
enum class DeadSitePolicy {
  /// Throw std::logic_error naming the sample (default: samplers are
  /// expected to draw from live gate-level sites; see the Sampler docs).
  kReject,
  /// Re-invoke the sampler with deterministically re-derived seeds until a
  /// live spec appears (bit-identical for any thread count; throws after
  /// 64 dead draws in a row).
  kResample,
  /// Legacy behavior: simulate the dead site anyway (it contributes
  /// golden-equal runs). For differential tests over arbitrary site lists.
  kAllow,
};

/// Read-only view of one fault's effect on the current pattern batch,
/// handed to campaign visitors. Pointers are into the engine's golden
/// image and the calling worker's arena; valid only during the visit.
class FaultView {
 public:
  int num_words() const { return num_words_; }

  /// Number of valid pattern vectors in this batch; the high
  /// 64*num_words() - num_vectors() bits of the final word are padding.
  int num_vectors() const { return num_vectors_; }

  /// Valid-pattern mask of word w: all-ones except for the final word,
  /// whose padding bits are zero. AND this into any per-word popcount so
  /// padding patterns never reach a measurement.
  uint64_t word_mask(int w) const {
    return w + 1 == num_words_ ? tail_mask_ : ~0ULL;
  }

  /// Golden (fault-free) value words of a node.
  const uint64_t* golden(NodeId id) const {
    return golden_ + static_cast<size_t>(id) * stride_;
  }

  /// Value words of a node under the injected fault; identical storage to
  /// golden(id) when the fault cone did not reach the node.
  const uint64_t* faulty(NodeId id) const {
    return valid_[id] == epoch_
               ? values_ + static_cast<size_t>(id) * stride_
               : golden(id);
  }

  /// True when the fault perturbed this node on some *valid* pattern
  /// (padding bits of the final word never count).
  bool touched(NodeId id) const { return valid_[id] == epoch_; }

  /// Task-pool slot of the worker producing this view: dense in
  /// [0, num_threads) and unique among concurrently running visitors, so
  /// callers can accumulate into per-slot buffers without locking (merge
  /// them in slot order for bit-identical totals).
  int worker_slot() const { return worker_slot_; }

 private:
  friend class FaultSimEngine;
  const uint64_t* golden_ = nullptr;
  const uint64_t* values_ = nullptr;
  const uint32_t* valid_ = nullptr;
  uint32_t epoch_ = 0;
  int num_words_ = 0;
  int num_vectors_ = 0;
  int stride_ = 0;  ///< words per node row in both planes
  uint64_t tail_mask_ = ~0ULL;
  int worker_slot_ = 0;
};

/// A Monte-Carlo campaign: `num_fault_samples` sampled faults, each
/// simulated against `words_per_fault` 64-bit pattern words, with
/// `faults_per_batch` samples amortizing one shared golden run.
struct CampaignOptions {
  int num_fault_samples = 2000;
  int words_per_fault = 4;
  /// Pattern vectors per fault. 0 (default) means words_per_fault * 64; a
  /// positive value overrides words_per_fault (words = ceil(v / 64)) and
  /// masks the final word's padding bits out of all detection decisions.
  int vectors_per_fault = 0;
  /// Samples sharing one golden simulation (and its patterns). Larger
  /// values amortize more golden work; smaller values see more distinct
  /// vectors across the campaign.
  int faults_per_batch = 64;
  /// Parallelism cap on the shared task pool; 0 = apx::thread_count()
  /// (the APX_THREADS policy). Results are bit-identical for any value.
  int num_threads = 0;
  uint64_t seed = 0x5EED;

  /// Fault model the stock samplers draw from (make_sampler). The engine
  /// core is model-agnostic — a campaign's model is whatever its sampler
  /// returns; these knobs parameterize the stock samplers only.
  FaultModel model = FaultModel::kSingleStuckAt;
  /// Simultaneous stuck-at sites per sample under kMultiStuckAt
  /// (clamped to [1, FaultSpec::kMaxSites]; sites are distinct nodes).
  int sites_per_fault = 2;
  /// Length of the forced vector window under kTransientBurst (clamped to
  /// [1, vectors]; the window start is derived from the sample seed).
  int burst_vectors = 16;
  /// Dead-site handling (see DeadSitePolicy).
  DeadSitePolicy dead_sites = DeadSitePolicy::kReject;
};

/// Options for detect_faults (fault-dropping coverage of a fault list).
struct DetectOptions {
  /// Pattern budget per fault, in 64-bit words.
  int max_words = 64;
  /// Words per shared golden batch; faults detected in an early batch are
  /// dropped from all later batches.
  int words_per_batch = 8;
  /// Parallelism cap on the shared task pool; 0 = apx::thread_count().
  int num_threads = 0;
  uint64_t seed = 0xD7EC7;
};

/// detect_faults result. `fault_batch_evals` counts (fault, batch) pairs
/// actually simulated — with dropping this is far below
/// faults * ceil(max_words / words_per_batch).
struct DetectionReport {
  std::vector<uint8_t> detected;
  /// Batch index at which each fault was first detected, -1 if never.
  std::vector<int32_t> detecting_batch;
  int64_t fault_batch_evals = 0;

  int64_t num_detected() const {
    int64_t n = 0;
    for (uint8_t d : detected) n += d;
    return n;
  }
};

/// Bit-parallel fault-simulation engine over a fixed network.
///
/// Thread-safety: run_campaign / run_batch / detect_faults are themselves
/// not reentrant (one campaign at a time per engine), but they invoke the
/// visitor concurrently from worker threads — a visitor must only touch
/// state owned by its sample index (or synchronize explicitly).
class FaultSimEngine {
 public:
  explicit FaultSimEngine(const Network& net);
  ~FaultSimEngine();

  FaultSimEngine(const FaultSimEngine&) = delete;
  FaultSimEngine& operator=(const FaultSimEngine&) = delete;

  /// Draws the fault for a sample from its derived seed. Must be pure: the
  /// returned fault depends only on sample_seed, never on call order.
  /// Contract: samplers should return *live* sites — gate-level nodes that
  /// are observable (have fanouts or drive a PO) and, for constants, the
  /// opposite polarity. Dead sites can never produce an erroneous run;
  /// CampaignOptions::dead_sites picks what the engine does with them.
  using Sampler = std::function<StuckFault(uint64_t sample_seed)>;
  /// Called exactly once per sample with that fault's view of its batch.
  using Visitor =
      std::function<void(int sample_index, const StuckFault& fault,
                         const FaultView& view)>;

  /// Generalized forms over FaultSpec (multi-site / transient faults).
  /// Same purity and liveness contract as Sampler, for every site.
  using SpecSampler = std::function<FaultSpec(uint64_t sample_seed)>;
  using SpecVisitor = std::function<void(
      int sample_index, const FaultSpec& fault, const FaultView& view)>;

  /// Runs a Monte-Carlo campaign: sample i's fault is
  /// sampler(derive_seed(seed, i)); batch b's patterns are
  /// PatternSet::random(pis, words_per_fault, derive_seed(seed ^
  /// kPatternStream, b)). Visitor calls may run concurrently but every
  /// sample index is visited exactly once, with identical (fault, view)
  /// content for any num_threads and any SIMD tier.
  void run_campaign(const CampaignOptions& options, const Sampler& sampler,
                    const Visitor& visit);

  /// FaultSpec campaign: identical seed/batch schedule; specs sampled
  /// through a single-site permanent sampler produce byte-identical views
  /// to the StuckFault overload.
  void run_campaign(const CampaignOptions& options, const SpecSampler& sampler,
                    const SpecVisitor& visit);

  /// Stock deterministic sampler for `options.model`, drawing uniformly
  /// from `sites` with per-site random polarity. kMultiStuckAt draws
  /// `options.sites_per_fault` distinct nodes; kTransientBurst places a
  /// `options.burst_vectors`-long forced window uniformly inside the
  /// campaign's vector range, both derived purely from the sample seed.
  /// kSingleStuckAt reproduces the legacy uniform stuck-at sampler bit for
  /// bit. `sites` must be non-empty.
  static SpecSampler make_sampler(FaultModel model,
                                  std::vector<NodeId> sites,
                                  const CampaignOptions& options);

  /// True when a stuck-at of this polarity at `node` can ever produce an
  /// erroneous run: the node is observable (fanouts or a PO driver) and is
  /// not a constant of the same polarity. See DeadSitePolicy.
  bool is_live_site(NodeId node, bool stuck_value) const;

  /// Lower-level building block: one golden run on `patterns`, then every
  /// fault in `faults` evaluated against it (visit called with the fault's
  /// position in the list as sample index). A positive num_vectors
  /// restricts detection to the first num_vectors patterns (the final
  /// word's padding bits are masked out). num_threads follows the
  /// CampaignOptions convention: 0 = apx::thread_count() (APX_THREADS
  /// policy); results are bit-identical for any value. No dead-site
  /// validation — the caller owns the explicit fault list.
  void run_batch(const PatternSet& patterns,
                 const std::vector<StuckFault>& faults, const Visitor& visit,
                 int num_threads = 0, int num_vectors = 0);

  /// FaultSpec form of run_batch.
  void run_batch(const PatternSet& patterns,
                 const std::vector<FaultSpec>& faults,
                 const SpecVisitor& visit, int num_threads = 0,
                 int num_vectors = 0);

  /// Classic fault-dropping detection: simulates every fault against
  /// successive random batches observed at `observe` nodes; a fault is
  /// dropped from later batches once some observed node differs from
  /// golden. Deterministic for any thread count.
  DetectionReport detect_faults(const std::vector<StuckFault>& faults,
                                const std::vector<NodeId>& observe,
                                const DetectOptions& options);

  const Network& network() const { return net_; }

  /// Pattern-stream tag of the seed contract (exposed for reproducing a
  /// campaign's pattern batches outside the engine).
  static constexpr uint64_t kPatternStream = 0xBA7C85EEDULL;

  /// Seed stream of DeadSitePolicy::kResample: dead sample i's redraw a
  /// uses sampler(derive_seed(derive_seed(seed, i) ^ kResampleStream, a)).
  static constexpr uint64_t kResampleStream = 0xDEAD517EULL;

 private:
  struct Worker;

  void run_golden(const PatternSet& patterns, int num_vectors);
  void simulate_fault(Worker& w, const StuckFault& fault) const;
  void simulate_fault(Worker& w, const FaultSpec& fault) const;
  /// Structural validation (range, duplicate sites, burst shape); throws
  /// std::logic_error. Returns true when every site is live.
  bool validate_spec(const FaultSpec& spec, int num_vectors) const;
  FaultView view_of(const Worker& w, int slot) const;
  Worker& worker(int index);
  /// Dispatches f(worker, slot, i) for i in [begin, end) over up to
  /// `threads` slots of the shared task pool (arena `slot` is exclusive
  /// to the executing thread for the duration of the loop).
  void parallel_for(int begin, int end, int threads,
                    const std::function<void(Worker&, int, int)>& f);

  const Network& net_;
  /// observable_[id]: node has fanouts or drives a PO (dead-site check).
  std::vector<uint8_t> observable_;
  /// Shared structure snapshot: topo order, levels, CSR fanout adjacency.
  /// Held for the engine's lifetime (the network must not mutate under a
  /// running campaign — same contract as before).
  std::shared_ptr<const TopologyView> view_;

  int num_words_ = 0;
  int num_vectors_ = 0;
  uint64_t tail_mask_ = ~0ULL;  ///< valid bits of the final word
  /// Shared read-only golden plane (one aligned row per node).
  ValueArena golden_;

  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace apx
