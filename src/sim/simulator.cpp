#include "sim/simulator.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "sim/rng.hpp"

namespace apx {

namespace {

/// Layout-independent per-word seed key: word w of PI pi draws from
/// derive_seed(seed, pi << 32 | w). PI and word indices never reach 2^31,
/// so keys are unique per (pi, w).
inline uint64_t word_key(int pi, int w) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(pi)) << 32) |
         static_cast<uint32_t>(w);
}

}  // namespace

PatternSet PatternSet::random(int num_pis, int num_words, uint64_t seed) {
  PatternSet p(num_pis, num_words);
  for (int i = 0; i < num_pis; ++i) {
    uint64_t* row = p.bits_.row(i);
    for (int w = 0; w < num_words; ++w) {
      row[w] = derive_seed(seed, word_key(i, w));
    }
  }
  return p;
}

PatternSet PatternSet::biased(const std::vector<double>& probs, int num_words,
                              uint64_t seed) {
  for (double p : probs) {
    if (!(p >= 0.0 && p <= 1.0)) {  // also rejects NaN
      throw std::invalid_argument(
          "PatternSet::biased: probability outside [0,1]");
    }
  }
  const int num_pis = static_cast<int>(probs.size());
  PatternSet p(num_pis, num_words);
  for (int i = 0; i < num_pis; ++i) {
    // Compose the bias from up to 16 random words: each bit independently
    // keeps a running Bernoulli(prob) approximation with 2^-16 resolution
    // (binary expansion trick: walk the probability's bits from LSB of
    // precision, AND for a 0 bit, OR for a 1 bit). Each (pi, word) cell
    // draws from its own derived seed, so the generated patterns are
    // independent of generation order and layout.
    uint32_t q = static_cast<uint32_t>(probs[i] * 65536.0 + 0.5);
    if (q == 0) continue;  // all zeros already
    uint64_t* row = p.bits_.row(i);
    for (int w = 0; w < num_words; ++w) {
      if (q >= 65536) {
        row[w] = ~0ULL;
        continue;
      }
      SplitMix64 rng(derive_seed(seed, word_key(i, w)));
      uint64_t acc = 0;
      bool first = true;
      for (int bit = 0; bit < 16; ++bit) {
        if (((q >> bit) & 1) == 0 && first) continue;
        uint64_t r = rng.next();
        if (first) {
          acc = r;
          first = false;
        } else if ((q >> bit) & 1) {
          acc = r | acc;
        } else {
          acc = r & acc;
        }
      }
      row[w] = acc;
    }
  }
  return p;
}

PatternSet PatternSet::exhaustive(int num_pis) {
  if (num_pis > 16) {
    throw std::invalid_argument("exhaustive patterns limited to 16 PIs");
  }
  uint64_t total = 1ULL << num_pis;
  int words = static_cast<int>((total + 63) / 64);
  PatternSet p(num_pis, words);
  for (uint64_t m = 0; m < total; ++m) {
    for (int i = 0; i < num_pis; ++i) {
      if ((m >> i) & 1) {
        p.bits_.row(i)[m >> 6] |= 1ULL << (m & 63);
      }
    }
  }
  // For fewer than 64 patterns the tail bits replicate pattern 0; that is
  // harmless for counting if callers scale by num_patterns, so we instead
  // replicate the full pattern block to keep probabilities exact.
  if (total < 64) {
    for (uint64_t m = total; m < 64; ++m) {
      uint64_t src = m % total;
      for (int i = 0; i < num_pis; ++i) {
        if ((p.bits_.row(i)[src >> 6] >> (src & 63)) & 1) {
          p.bits_.row(i)[0] |= 1ULL << m;
        }
      }
    }
  }
  return p;
}

Simulator::Simulator(const Network& net)
    : net_(net), view_(net.topology()) {}

void Simulator::run(const PatternSet& patterns) {
  if (patterns.num_pis() != net_.num_pis()) {
    throw std::logic_error("Simulator::run: PI count mismatch");
  }
  if (view_->structure_version() != net_.structure_version()) {
    view_ = net_.topology();
  }
  bool reshape = num_words_ != patterns.num_words() ||
                 golden_.rows() != net_.num_nodes();
  num_words_ = patterns.num_words();
  if (reshape) {
    golden_.reset(net_.num_nodes(), num_words_);
    faulty_.reset(net_.num_nodes(), num_words_);
    faulty_epoch_.assign(net_.num_nodes(), 0);
  }
  ++epoch_;  // invalidates any previous fault values
  for (int i = 0; i < net_.num_pis(); ++i) {
    std::memcpy(golden_.row(net_.pis()[i]), patterns.column(i).data(),
                sizeof(uint64_t) * num_words_);
  }
  std::vector<const uint64_t*> fanin;
  for (NodeId id : view_->topo()) {
    const Node& n = net_.node(id);
    uint64_t* out = golden_.row(id);
    switch (n.kind) {
      case NodeKind::kPi:
        break;
      case NodeKind::kConst0:
        std::memset(out, 0, sizeof(uint64_t) * num_words_);
        break;
      case NodeKind::kConst1:
        std::memset(out, 0xFF, sizeof(uint64_t) * num_words_);
        break;
      case NodeKind::kLogic: {
        fanin.clear();
        fanin.reserve(n.fanins.size());
        for (NodeId f : n.fanins) fanin.push_back(golden_.row(f));
        eval_sop_words(n.sop, fanin.data(), num_words_, out);
        break;
      }
    }
  }
}

double Simulator::signal_probability(NodeId id) const {
  int64_t ones = popcount_words(golden_.row(id), num_words_, ~0ULL);
  return static_cast<double>(ones) / (64.0 * num_words_);
}

double Simulator::switching_activity(NodeId id) const {
  double p = signal_probability(id);
  return 2.0 * p * (1.0 - p);
}

double Simulator::total_activity() const {
  double total = 0.0;
  for (NodeId id = 0; id < net_.num_nodes(); ++id) {
    if (net_.node(id).kind == NodeKind::kLogic) {
      total += switching_activity(id);
    }
  }
  return total;
}

void Simulator::inject(const StuckFault& fault) {
  if (num_words_ == 0) {
    throw std::logic_error("Simulator::inject_forced: run() must precede");
  }
  forced_scratch_.assign(static_cast<size_t>(num_words_),
                         fault.stuck_value ? ~0ULL : 0ULL);
  inject_forced(fault.node, forced_scratch_.data());
}

void Simulator::inject_forced(NodeId fault_node,
                              const std::vector<uint64_t>& forced) {
  if (num_words_ != 0 && forced.size() != static_cast<size_t>(num_words_)) {
    throw std::logic_error(
        "Simulator::inject_forced: forced word count mismatch");
  }
  inject_forced(fault_node, forced.data());
}

void Simulator::inject_forced(NodeId fault_node, const uint64_t* forced) {
  if (fault_node == kNullNode || fault_node < 0 ||
      fault_node >= net_.num_nodes()) {
    throw std::logic_error("Simulator::inject_forced: invalid fault node");
  }
  if (num_words_ == 0) {
    throw std::logic_error("Simulator::inject_forced: run() must precede");
  }
  StuckFault fault{fault_node, false};  // reuse the cone walk below
  ++epoch_;
  // Collect the fanout cone in topological order with epoch-stamped marks
  // (reused scratch: no per-injection allocation once warmed). The cached
  // topo order is walked from the fault site's position onward — nothing
  // before it can be in the fanout cone.
  const TopologyView& view = *view_;
  cone_marks_.begin(net_.num_nodes());
  cone_.clear();
  cone_marks_.set(fault.node);
  cone_.push_back(fault.node);
  const auto& topo = view.topo();
  for (size_t t = view.topo_position(fault.node) + 1; t < topo.size(); ++t) {
    NodeId id = topo[t];
    for (NodeId f : view.fanins(id)) {
      if (cone_marks_.test(f)) {
        cone_marks_.set(id);
        cone_.push_back(id);
        break;
      }
    }
  }
  for (NodeId id : cone_) {
    faulty_epoch_[id] = epoch_;
    if (id == fault.node) {
      std::memcpy(faulty_.row(id), forced, sizeof(uint64_t) * num_words_);
      continue;
    }
    const Node& n = net_.node(id);
    fanin_ptrs_.clear();
    for (NodeId f : n.fanins) {
      fanin_ptrs_.push_back(faulty_epoch_[f] == epoch_ ? faulty_.row(f)
                                                       : golden_.row(f));
    }
    eval_sop_words(n.sop, fanin_ptrs_.data(), num_words_, faulty_.row(id));
  }
}

WordSpan Simulator::faulty_value(NodeId id) const {
  return faulty_epoch_[id] == epoch_ && epoch_ > 0 ? faulty_.span(id)
                                                   : golden_.span(id);
}

std::vector<StuckFault> enumerate_faults(const Network& net) {
  std::vector<StuckFault> faults;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    if (net.node(id).kind == NodeKind::kLogic) {
      faults.push_back({id, false});
      faults.push_back({id, true});
    }
  }
  return faults;
}

}  // namespace apx
