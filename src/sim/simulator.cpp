#include "sim/simulator.hpp"

#include <bit>
#include <stdexcept>

namespace apx {

PatternSet PatternSet::random(int num_pis, int num_words, uint64_t seed) {
  PatternSet p(num_pis, num_words);
  std::mt19937_64 rng(seed);
  for (int i = 0; i < num_pis; ++i) {
    for (int w = 0; w < num_words; ++w) p.bits_[i][w] = rng();
  }
  return p;
}

PatternSet PatternSet::biased(const std::vector<double>& probs, int num_words,
                              uint64_t seed) {
  for (double p : probs) {
    if (!(p >= 0.0 && p <= 1.0)) {  // also rejects NaN
      throw std::invalid_argument(
          "PatternSet::biased: probability outside [0,1]");
    }
  }
  const int num_pis = static_cast<int>(probs.size());
  PatternSet p(num_pis, num_words);
  std::mt19937_64 rng(seed);
  for (int i = 0; i < num_pis; ++i) {
    // Compose the bias from 16 random words: each bit independently keeps a
    // running Bernoulli(prob) approximation with 2^-16 resolution (binary
    // expansion trick: walk the probability's bits from LSB of precision,
    // AND for a 0 bit, OR for a 1 bit).
    uint32_t q = static_cast<uint32_t>(probs[i] * 65536.0 + 0.5);
    if (q == 0) continue;      // all zeros already
    for (int w = 0; w < num_words; ++w) {
      if (q >= 65536) {
        p.bits_[i][w] = ~0ULL;
        continue;
      }
      uint64_t acc = 0;
      bool first = true;
      for (int bit = 0; bit < 16; ++bit) {
        if (((q >> bit) & 1) == 0 && first) continue;
        uint64_t r = rng();
        if (first) {
          acc = r;
          first = false;
        } else if ((q >> bit) & 1) {
          acc = r | acc;
        } else {
          acc = r & acc;
        }
      }
      p.bits_[i][w] = acc;
    }
  }
  return p;
}

PatternSet PatternSet::exhaustive(int num_pis) {
  if (num_pis > 16) {
    throw std::invalid_argument("exhaustive patterns limited to 16 PIs");
  }
  uint64_t total = 1ULL << num_pis;
  int words = static_cast<int>((total + 63) / 64);
  PatternSet p(num_pis, words);
  for (uint64_t m = 0; m < total; ++m) {
    for (int i = 0; i < num_pis; ++i) {
      if ((m >> i) & 1) {
        p.bits_[i][m >> 6] |= 1ULL << (m & 63);
      }
    }
  }
  // For fewer than 64 patterns the tail bits replicate pattern 0; that is
  // harmless for counting if callers scale by num_patterns, so we instead
  // replicate the full pattern block to keep probabilities exact.
  if (total < 64) {
    for (uint64_t m = total; m < 64; ++m) {
      uint64_t src = m % total;
      for (int i = 0; i < num_pis; ++i) {
        if ((p.bits_[i][src >> 6] >> (src & 63)) & 1) {
          p.bits_[i][0] |= 1ULL << m;
        }
      }
    }
  }
  return p;
}

Simulator::Simulator(const Network& net)
    : net_(net),
      topo_(net.topo_order()),
      structure_version_(net.structure_version()) {}

void eval_sop_words(const Sop& sop, const uint64_t* const* fanin,
                    int num_words, uint64_t* out) {
  for (int w = 0; w < num_words; ++w) {
    uint64_t acc = 0;
    for (const Cube& c : sop.cubes()) {
      uint64_t t = ~0ULL;
      for (int k = 0; k < sop.num_vars() && t; ++k) {
        LitCode code = c.get(k);
        if (code == LitCode::kFree) continue;
        uint64_t v = fanin[k][w];
        t &= (code == LitCode::kPos) ? v : ~v;
      }
      acc |= t;
      if (acc == ~0ULL) break;
    }
    out[w] = acc;
  }
}

void Simulator::run(const PatternSet& patterns) {
  if (patterns.num_pis() != net_.num_pis()) {
    throw std::logic_error("Simulator::run: PI count mismatch");
  }
  if (structure_version_ != net_.structure_version()) {
    topo_ = net_.topo_order();
    structure_version_ = net_.structure_version();
  }
  bool reshape = num_words_ != patterns.num_words() ||
                 golden_.size() != static_cast<size_t>(net_.num_nodes());
  num_words_ = patterns.num_words();
  if (reshape) {
    golden_.assign(net_.num_nodes(), std::vector<uint64_t>(num_words_, 0));
    faulty_.assign(net_.num_nodes(), {});
    faulty_epoch_.assign(net_.num_nodes(), 0);
  }
  ++epoch_;  // invalidates any previous fault values
  for (int i = 0; i < net_.num_pis(); ++i) {
    golden_[net_.pis()[i]] = patterns.column(i);
  }
  std::vector<const uint64_t*> fanin;
  for (NodeId id : topo_) {
    const Node& n = net_.node(id);
    switch (n.kind) {
      case NodeKind::kPi:
        break;
      case NodeKind::kConst0:
        golden_[id].assign(num_words_, 0);
        break;
      case NodeKind::kConst1:
        golden_[id].assign(num_words_, ~0ULL);
        break;
      case NodeKind::kLogic: {
        fanin.clear();
        fanin.reserve(n.fanins.size());
        for (NodeId f : n.fanins) fanin.push_back(golden_[f].data());
        eval_sop_words(n.sop, fanin.data(), num_words_, golden_[id].data());
        break;
      }
    }
  }
}

double Simulator::signal_probability(NodeId id) const {
  const auto& words = golden_[id];
  uint64_t ones = 0;
  for (uint64_t w : words) ones += std::popcount(w);
  return static_cast<double>(ones) / (64.0 * words.size());
}

double Simulator::switching_activity(NodeId id) const {
  double p = signal_probability(id);
  return 2.0 * p * (1.0 - p);
}

double Simulator::total_activity() const {
  double total = 0.0;
  for (NodeId id = 0; id < net_.num_nodes(); ++id) {
    if (net_.node(id).kind == NodeKind::kLogic) {
      total += switching_activity(id);
    }
  }
  return total;
}

void Simulator::inject(const StuckFault& fault) {
  std::vector<uint64_t> forced(num_words_,
                               fault.stuck_value ? ~0ULL : 0ULL);
  inject_forced(fault.node, forced);
}

void Simulator::inject_forced(NodeId fault_node,
                              const std::vector<uint64_t>& forced) {
  if (fault_node == kNullNode || fault_node < 0 ||
      fault_node >= net_.num_nodes()) {
    throw std::logic_error("Simulator::inject_forced: invalid fault node");
  }
  if (num_words_ == 0) {
    throw std::logic_error("Simulator::inject_forced: run() must precede");
  }
  if (forced.size() != static_cast<size_t>(num_words_)) {
    throw std::logic_error(
        "Simulator::inject_forced: forced word count mismatch");
  }
  StuckFault fault{fault_node, false};  // reuse the cone walk below
  ++epoch_;
  // Collect the fanout cone in topological order using per-node marks.
  std::vector<NodeId> cone;
  std::vector<bool> in_cone(net_.num_nodes(), false);
  in_cone[fault.node] = true;
  // topo_ is cached: walk it once, adding nodes any of whose fanins are in
  // the cone.
  for (NodeId id : topo_) {
    if (id == fault.node) {
      cone.push_back(id);
      continue;
    }
    for (NodeId f : net_.node(id).fanins) {
      if (in_cone[f]) {
        in_cone[id] = true;
        cone.push_back(id);
        break;
      }
    }
  }
  for (NodeId id : cone) {
    if (faulty_[id].empty()) faulty_[id].resize(num_words_);
    faulty_epoch_[id] = epoch_;
    if (id == fault.node) {
      faulty_[id] = forced;
      continue;
    }
    const Node& n = net_.node(id);
    std::vector<const uint64_t*> fanin;
    fanin.reserve(n.fanins.size());
    for (NodeId f : n.fanins) {
      fanin.push_back(faulty_epoch_[f] == epoch_ ? faulty_[f].data()
                                                 : golden_[f].data());
    }
    eval_sop_words(n.sop, fanin.data(), num_words_, faulty_[id].data());
  }
}

const std::vector<uint64_t>& Simulator::faulty_value(NodeId id) const {
  return faulty_epoch_[id] == epoch_ && epoch_ > 0 ? faulty_[id] : golden_[id];
}

std::vector<StuckFault> enumerate_faults(const Network& net) {
  std::vector<StuckFault> faults;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    if (net.node(id).kind == NodeKind::kLogic) {
      faults.push_back({id, false});
      faults.push_back({id, true});
    }
  }
  return faults;
}

}  // namespace apx
