// Seed-derivation primitives shared by the simulation substrate.
//
// SplitMix64 is the engine's cheap deterministic generator: statistically
// solid for sequential seeds, 8 bytes of state, no allocation (unlike
// std::mt19937_64's 2.5 KB). derive_seed is the layout-independence
// contract: every randomized object (fault sample, pattern batch, pattern
// word) draws from a seed derived purely from (master seed, object index),
// never from allocation or iteration order — so results are bit-identical
// for any thread count, any SIMD width, and any memory layout.
#pragma once

#include <cstdint>

namespace apx {

/// SplitMix64 mixing generator (Steele et al.).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}
  uint64_t next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// The seed-derivation contract: object `index` of a stream with master
/// seed `seed` uses splitmix64(seed ^ index). Campaigns derive fault
/// sample i's seed from (seed, i) and pattern batch b's seed from
/// (seed ^ kPatternStream, b); PatternSet derives word (pi, w) from
/// (seed, pi << 32 | w). Results depend only on the master seed and the
/// object's index — never on thread count, scheduling, or layout.
inline uint64_t derive_seed(uint64_t seed, uint64_t index) {
  return SplitMix64(seed ^ index).next();
}

}  // namespace apx
