// Flat, cache-line-aligned SoA storage for bit-parallel simulation planes.
//
// Every value plane (golden image, faulty scratch, pattern columns) is one
// contiguous allocation of `rows x stride` 64-bit words, with the stride
// rounded up to a full 64-byte cache line (8 words) so each row starts
// 64-byte aligned and the SIMD kernels (sim/kernels.hpp) can use aligned
// 256/512-bit loads at any lane offset that is a multiple of the lane
// width. Padding words beyond a row's logical word count are zeroed at
// allocation and never written by the kernels, so planes are byte-identical
// regardless of which kernel produced them.
#pragma once

#include <cstdint>
#include <cstring>
#include <new>

namespace apx {

/// Non-owning view of one row of a value plane (or any word run). Mirrors
/// the read surface of the std::vector<uint64_t> it replaced: indexing,
/// iteration, size(), data(), and content equality.
class WordSpan {
 public:
  WordSpan() = default;
  WordSpan(const uint64_t* data, int size) : data_(data), size_(size) {}

  const uint64_t* data() const { return data_; }
  int num_words() const { return size_; }
  size_t size() const { return static_cast<size_t>(size_); }
  bool empty() const { return size_ == 0; }

  uint64_t operator[](int w) const { return data_[w]; }
  const uint64_t* begin() const { return data_; }
  const uint64_t* end() const { return data_ + size_; }

  friend bool operator==(const WordSpan& a, const WordSpan& b) {
    return a.size_ == b.size_ &&
           (a.data_ == b.data_ ||
            std::memcmp(a.data_, b.data_, sizeof(uint64_t) * a.size_) == 0);
  }
  friend bool operator!=(const WordSpan& a, const WordSpan& b) {
    return !(a == b);
  }

 private:
  const uint64_t* data_ = nullptr;
  int size_ = 0;
};

/// Owning arena of `rows` rows of `words` 64-bit value words each, flat and
/// 64-byte aligned, with the row stride padded to a cache line.
class ValueArena {
 public:
  static constexpr int kAlign = 64;                       ///< bytes
  static constexpr int kWordsPerLine = kAlign / 8;        ///< 8 words

  /// Row stride (in words) for a logical row of `words` words.
  static int stride_for(int words) {
    return (words + kWordsPerLine - 1) / kWordsPerLine * kWordsPerLine;
  }

  ValueArena() = default;
  ~ValueArena() { release(); }

  ValueArena(const ValueArena&) = delete;
  ValueArena& operator=(const ValueArena&) = delete;

  ValueArena(ValueArena&& o) noexcept { steal(o); }
  ValueArena& operator=(ValueArena&& o) noexcept {
    if (this != &o) {
      release();
      steal(o);
    }
    return *this;
  }

  /// (Re)shapes to `rows x words`, zero-filling the whole plane. A resize
  /// to the current geometry still zeroes (callers use reset() to start a
  /// fresh plane).
  void reset(int rows, int words) {
    int stride = stride_for(words);
    size_t need = static_cast<size_t>(rows) * stride;
    if (need > capacity_) {
      release();
      data_ = static_cast<uint64_t*>(::operator new[](
          need * sizeof(uint64_t), std::align_val_t(kAlign)));
      capacity_ = need;
    }
    rows_ = rows;
    words_ = words;
    stride_ = stride;
    if (need > 0) std::memset(data_, 0, need * sizeof(uint64_t));
  }

  bool empty() const { return rows_ == 0; }
  int rows() const { return rows_; }
  int words() const { return words_; }      ///< logical words per row
  int stride() const { return stride_; }    ///< allocated words per row

  uint64_t* row(int r) { return data_ + static_cast<size_t>(r) * stride_; }
  const uint64_t* row(int r) const {
    return data_ + static_cast<size_t>(r) * stride_;
  }
  WordSpan span(int r) const { return WordSpan(row(r), words_); }

 private:
  void release() {
    if (data_ != nullptr) {
      ::operator delete[](data_, std::align_val_t(kAlign));
      data_ = nullptr;
    }
    capacity_ = 0;
    rows_ = words_ = stride_ = 0;
  }
  void steal(ValueArena& o) {
    data_ = o.data_;
    capacity_ = o.capacity_;
    rows_ = o.rows_;
    words_ = o.words_;
    stride_ = o.stride_;
    o.data_ = nullptr;
    o.capacity_ = 0;
    o.rows_ = o.words_ = o.stride_ = 0;
  }

  uint64_t* data_ = nullptr;
  size_t capacity_ = 0;  ///< allocated words
  int rows_ = 0;
  int words_ = 0;
  int stride_ = 0;
};

}  // namespace apx
