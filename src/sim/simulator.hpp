// Bit-parallel logic simulation with single-stuck-at fault injection and
// switching-activity estimation, over a flat 64-byte-aligned SoA value
// arena evaluated by runtime-dispatched SIMD kernels (sim/kernels.hpp).
// This is the measurement engine behind CED coverage (paper Sec. 4: random
// fault + random vector runs), power overhead (total switching activity),
// and the sampled estimates used by the synthesis core for signal
// probabilities.
#pragma once

#include <cstdint>
#include <vector>

#include "network/network.hpp"
#include "network/topology_view.hpp"
#include "sim/arena.hpp"
#include "sim/kernels.hpp"

namespace apx {

/// A batch of input patterns: one 64-bit word column per PI per word index.
/// Bit b of word(pi, w) is the value of that PI in pattern 64*w+b.
/// Columns live in one contiguous cache-line-aligned SoA arena (one padded
/// row per PI) so simulators can bulk-copy and SIMD kernels can read them
/// at full lane width.
class PatternSet {
 public:
  PatternSet(int num_pis, int num_words) : num_pis_(num_pis) {
    bits_.reset(num_pis, num_words);
  }

  /// Uniform random patterns. Word (pi, w) is derived purely from
  /// (seed, pi, w) — see derive_seed in sim/rng.hpp — so the generated
  /// patterns are independent of memory layout and generation order, and
  /// provably survive storage migrations unchanged (pinned by a
  /// golden-vector test).
  static PatternSet random(int num_pis, int num_words, uint64_t seed);

  /// Biased random patterns: bit of PI i is 1 with probability probs[i]
  /// (the paper's "input vectors not equally likely" setting, Sec. 2).
  /// Like random(), the randomness of word (pi, w) is derived purely from
  /// (seed, pi, w).
  static PatternSet biased(const std::vector<double>& probs, int num_words,
                           uint64_t seed);

  /// All 2^num_pis exhaustive patterns (requires num_pis <= 16).
  static PatternSet exhaustive(int num_pis);

  int num_pis() const { return num_pis_; }
  int num_words() const { return bits_.words(); }
  int num_patterns() const { return bits_.words() * 64; }

  uint64_t word(int pi, int w) const { return bits_.row(pi)[w]; }
  void set_word(int pi, int w, uint64_t value) { bits_.row(pi)[w] = value; }
  WordSpan column(int pi) const { return bits_.span(pi); }

 private:
  int num_pis_;
  ValueArena bits_;
};

/// A single stuck-at fault on the output of a node.
struct StuckFault {
  NodeId node = kNullNode;
  bool stuck_value = false;

  bool operator==(const StuckFault& o) const {
    return node == o.node && stuck_value == o.stuck_value;
  }
};

/// Bit-parallel good-machine/faulty-machine simulator over a network. The
/// simulator may outlive mutations of the network: run() re-evaluates every
/// node and refreshes its cached topological order whenever the network's
/// structure version moved, so one instance can be reused across repair
/// rounds instead of being reconstructed per round.
///
/// Value planes are flat SoA arenas (one aligned row per node); value()
/// and faulty_value() return non-owning WordSpan views that stay valid
/// until the next run() with a different geometry.
class Simulator {
 public:
  explicit Simulator(const Network& net);

  /// Simulates the fault-free circuit on the pattern set. Picks up any
  /// network mutation made since the previous run (SOP rewrites are
  /// re-evaluated unconditionally; structural changes re-derive the
  /// cached topological order via Network::structure_version()).
  void run(const PatternSet& patterns);

  /// Golden value words of a node (valid after run()).
  WordSpan value(NodeId id) const { return golden_.span(id); }

  /// Signal probability of a node over the simulated patterns.
  double signal_probability(NodeId id) const;

  /// Switching activity 2*p*(1-p) of a node under the temporal-independence
  /// model for uniformly random vectors.
  double switching_activity(NodeId id) const;

  /// Total switching activity over logic nodes ("power" in the paper's
  /// Table 2 metric).
  double total_activity() const;

  /// Simulates the circuit with `fault` injected; only the fault's fanout
  /// cone is re-evaluated. Results readable via faulty_value(). run() must
  /// have been called with the same patterns first.
  void inject(const StuckFault& fault);

  /// Generalized injection: forces the node's output to arbitrary per-word
  /// values (used by the transition-fault model) and re-evaluates the
  /// fanout cone.
  void inject_forced(NodeId node, const std::vector<uint64_t>& forced);

  /// Pointer form of inject_forced for callers that keep their own scratch
  /// (`forced` must hold num_words() words); allocation-free once warmed.
  void inject_forced(NodeId node, const uint64_t* forced);

  /// Value words of a node under the last injected fault.
  WordSpan faulty_value(NodeId id) const;

  const Network& network() const { return net_; }

 private:
  const Network& net_;
  /// Cached structure snapshot; refreshed by run() when the network's
  /// structure_version moved.
  std::shared_ptr<const TopologyView> view_;
  int num_words_ = 0;

  ValueArena golden_;
  // Faulty plane, same geometry as golden_; `faulty_epoch_[id]` tells
  // whether the row is valid for the current fault.
  ValueArena faulty_;
  std::vector<uint32_t> faulty_epoch_;
  uint32_t epoch_ = 0;

  // inject/inject_forced scratch, reused across injections (no per-call
  // heap allocations on the steady-state path).
  EpochMarks cone_marks_;
  std::vector<NodeId> cone_;
  std::vector<const uint64_t*> fanin_ptrs_;
  std::vector<uint64_t> forced_scratch_;
};

/// Enumerates all 2N single-stuck-at fault sites of the logic nodes of a
/// network (the paper's fault model: every gate equally likely to fail).
std::vector<StuckFault> enumerate_faults(const Network& net);

}  // namespace apx
