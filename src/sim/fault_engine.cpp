#include "sim/fault_engine.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/task_pool.hpp"
#include "core/trace.hpp"

namespace apx {

/// Per-thread scratch state: a faulty-value arena over the shared golden
/// image plus the event queue of the level-by-level cone walk. Reused
/// across faults and batches — no allocations on the injection path.
struct FaultSimEngine::Worker {
  std::vector<uint64_t> values;   ///< node-major faulty words
  std::vector<uint32_t> valid;    ///< epoch at which values[id] is current
  std::vector<uint32_t> queued;   ///< epoch at which id was scheduled
  uint32_t epoch = 0;
  std::vector<std::vector<NodeId>> buckets;  ///< event queue by level
  std::vector<const uint64_t*> fanin;        ///< scratch fanin pointers
};

FaultSimEngine::FaultSimEngine(const Network& net)
    : net_(net), topo_(net.topo_order()), level_(net.levels()),
      fanouts_(net.fanouts()) {
  for (int lvl : level_) max_level_ = std::max(max_level_, lvl);
}

FaultSimEngine::~FaultSimEngine() = default;

void FaultSimEngine::run_golden(const PatternSet& patterns) {
  if (patterns.num_pis() != net_.num_pis()) {
    throw std::logic_error("FaultSimEngine: PI count mismatch");
  }
  trace::Span span("faultsim.golden");
  if (trace::enabled()) {
    static trace::Counter& batches = trace::counter("faultsim.batches");
    static trace::Counter& words = trace::counter("faultsim.pattern_words");
    batches.add(1);
    words.add(patterns.num_words());
  }
  num_words_ = patterns.num_words();
  const int W = num_words_;
  golden_.resize(static_cast<size_t>(net_.num_nodes()) * W);
  for (int i = 0; i < net_.num_pis(); ++i) {
    const auto& col = patterns.column(i);
    std::copy(col.begin(), col.end(),
              golden_.begin() + static_cast<size_t>(net_.pis()[i]) * W);
  }
  std::vector<const uint64_t*> fanin;
  for (NodeId id : topo_) {
    const Node& n = net_.node(id);
    uint64_t* out = &golden_[static_cast<size_t>(id) * W];
    switch (n.kind) {
      case NodeKind::kPi:
        break;
      case NodeKind::kConst0:
        std::fill(out, out + W, 0ULL);
        break;
      case NodeKind::kConst1:
        std::fill(out, out + W, ~0ULL);
        break;
      case NodeKind::kLogic: {
        fanin.clear();
        fanin.reserve(n.fanins.size());
        for (NodeId f : n.fanins) {
          fanin.push_back(&golden_[static_cast<size_t>(f) * W]);
        }
        eval_sop_words(n.sop, fanin.data(), W, out);
        break;
      }
    }
  }
}

void FaultSimEngine::simulate_fault(Worker& w, const StuckFault& fault) const {
  const int W = num_words_;
  if (++w.epoch == 0) {
    // uint32 epoch wrapped: old marks would alias the fresh epoch.
    std::fill(w.valid.begin(), w.valid.end(), 0u);
    std::fill(w.queued.begin(), w.queued.end(), 0u);
    w.epoch = 1;
  }
  const uint32_t epoch = w.epoch;
  const uint64_t forced = fault.stuck_value ? ~0ULL : 0ULL;
  uint64_t* fv = &w.values[static_cast<size_t>(fault.node) * W];
  const uint64_t* gv = &golden_[static_cast<size_t>(fault.node) * W];
  bool excited = false;
  for (int i = 0; i < W; ++i) {
    fv[i] = forced;
    excited |= forced != gv[i];
  }
  // Fault value equals golden on every pattern: nothing can propagate.
  if (!excited) return;
  w.valid[fault.node] = epoch;

  auto schedule = [&](NodeId id) {
    if (w.queued[id] != epoch) {
      w.queued[id] = epoch;
      w.buckets[level_[id]].push_back(id);
    }
  };
  for (NodeId o : fanouts_[fault.node]) schedule(o);

  for (int lvl = level_[fault.node] + 1; lvl <= max_level_; ++lvl) {
    auto& bucket = w.buckets[lvl];
    for (NodeId id : bucket) {
      const Node& n = net_.node(id);
      w.fanin.clear();
      for (NodeId f : n.fanins) {
        w.fanin.push_back(w.valid[f] == epoch
                              ? &w.values[static_cast<size_t>(f) * W]
                              : &golden_[static_cast<size_t>(f) * W]);
      }
      uint64_t* out = &w.values[static_cast<size_t>(id) * W];
      eval_sop_words(n.sop, w.fanin.data(), W, out);
      const uint64_t* g = &golden_[static_cast<size_t>(id) * W];
      bool differs = false;
      for (int i = 0; i < W; ++i) differs |= out[i] != g[i];
      // Faulty value collapsed back to golden: the event dies here.
      if (!differs) continue;
      w.valid[id] = epoch;
      for (NodeId o : fanouts_[id]) schedule(o);
    }
    bucket.clear();
  }
}

FaultView FaultSimEngine::view_of(const Worker& w, int slot) const {
  FaultView v;
  v.golden_ = golden_.data();
  v.values_ = w.values.data();
  v.valid_ = w.valid.data();
  v.epoch_ = w.epoch;
  v.num_words_ = num_words_;
  v.worker_slot_ = slot;
  return v;
}

FaultSimEngine::Worker& FaultSimEngine::worker(int index) {
  while (static_cast<int>(workers_.size()) <= index) {
    workers_.push_back(std::make_unique<Worker>());
  }
  Worker& w = *workers_[index];
  size_t need = static_cast<size_t>(net_.num_nodes()) * num_words_;
  if (w.values.size() != need) {
    w.values.assign(need, 0);
    w.valid.assign(net_.num_nodes(), 0);
    w.queued.assign(net_.num_nodes(), 0);
    w.epoch = 0;
    w.buckets.assign(max_level_ + 1, {});
    w.fanin.clear();
  }
  return w;
}

// All fault-level parallelism rides the shared task pool: the engine never
// spawns threads of its own, so nested use (e.g. a whole-pipeline task per
// benchmark row, each running campaigns inside) shares one set of workers.
void FaultSimEngine::parallel_for(
    int begin, int end, int threads,
    const std::function<void(Worker&, int, int)>& f) {
  if (end <= begin) return;
  if (trace::enabled()) {
    static trace::Counter& sims = trace::counter("faultsim.fault_sims");
    sims.add(end - begin);
  }
  threads = std::min(threads, end - begin);
  for (int t = 0; t < threads; ++t) worker(t);  // size arenas up front
  TaskPool::instance().parallel_for_slotted(
      begin, end, threads, /*grain=*/1,
      [&](int slot, int64_t i) {
        f(*workers_[slot], slot, static_cast<int>(i));
      });
}

void FaultSimEngine::run_campaign(const CampaignOptions& options,
                                  const Sampler& sampler,
                                  const Visitor& visit) {
  if (options.words_per_fault <= 0 || options.faults_per_batch <= 0) {
    throw std::invalid_argument(
        "FaultSimEngine::run_campaign: non-positive batch geometry");
  }
  trace::Span span("faultsim.campaign");
  const int samples = options.num_fault_samples;
  if (samples <= 0) return;
  std::vector<StuckFault> faults(samples);
  for (int i = 0; i < samples; ++i) {
    faults[i] = sampler(derive_seed(options.seed, static_cast<uint64_t>(i)));
    if (faults[i].node == kNullNode || faults[i].node >= net_.num_nodes()) {
      throw std::logic_error("FaultSimEngine::run_campaign: sampler returned "
                             "an out-of-range fault site");
    }
  }
  const int threads = resolve_thread_option(options.num_threads);
  const int per_batch = options.faults_per_batch;
  const int num_batches = (samples + per_batch - 1) / per_batch;
  for (int b = 0; b < num_batches; ++b) {
    PatternSet patterns = PatternSet::random(
        net_.num_pis(), options.words_per_fault,
        derive_seed(options.seed ^ kPatternStream, static_cast<uint64_t>(b)));
    run_golden(patterns);
    int begin = b * per_batch;
    int end = std::min(samples, begin + per_batch);
    parallel_for(begin, end, threads, [&](Worker& w, int slot, int i) {
      simulate_fault(w, faults[i]);
      visit(i, faults[i], view_of(w, slot));
    });
  }
}

void FaultSimEngine::run_batch(const PatternSet& patterns,
                               const std::vector<StuckFault>& faults,
                               const Visitor& visit, int num_threads) {
  run_golden(patterns);
  const int threads = resolve_thread_option(num_threads);
  parallel_for(0, static_cast<int>(faults.size()), threads,
               [&](Worker& w, int slot, int i) {
                 simulate_fault(w, faults[i]);
                 visit(i, faults[i], view_of(w, slot));
               });
}

DetectionReport FaultSimEngine::detect_faults(
    const std::vector<StuckFault>& faults, const std::vector<NodeId>& observe,
    const DetectOptions& options) {
  DetectionReport report;
  report.detected.assign(faults.size(), 0);
  report.detecting_batch.assign(faults.size(), -1);
  if (faults.empty() || observe.empty() || options.max_words <= 0) {
    return report;
  }
  const int wpb = std::max(1, std::min(options.words_per_batch,
                                       options.max_words));
  const int num_batches = (options.max_words + wpb - 1) / wpb;
  const int threads = resolve_thread_option(options.num_threads);

  std::vector<int> alive(faults.size());
  for (size_t i = 0; i < faults.size(); ++i) alive[i] = static_cast<int>(i);

  for (int b = 0; b < num_batches && !alive.empty(); ++b) {
    PatternSet patterns = PatternSet::random(
        net_.num_pis(), wpb,
        derive_seed(options.seed ^ kPatternStream, static_cast<uint64_t>(b)));
    run_golden(patterns);
    std::vector<uint8_t> hit(alive.size(), 0);
    parallel_for(0, static_cast<int>(alive.size()), threads,
                 [&](Worker& w, int slot, int j) {
                   simulate_fault(w, faults[alive[j]]);
                   FaultView v = view_of(w, slot);
                   for (NodeId obs : observe) {
                     // touched() holds exactly when faulty != golden on
                     // some pattern — i.e. the fault is detected at obs.
                     if (v.touched(obs)) {
                       hit[j] = 1;
                       break;
                     }
                   }
                 });
    report.fault_batch_evals += static_cast<int64_t>(alive.size());
    std::vector<int> still_alive;
    still_alive.reserve(alive.size());
    for (size_t j = 0; j < alive.size(); ++j) {
      if (hit[j]) {
        report.detected[alive[j]] = 1;
        report.detecting_batch[alive[j]] = b;
      } else {
        still_alive.push_back(alive[j]);
      }
    }
    alive.swap(still_alive);  // fault dropping
  }
  return report;
}

}  // namespace apx
