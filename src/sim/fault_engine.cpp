#include "sim/fault_engine.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <string>

#include "core/task_pool.hpp"
#include "core/trace.hpp"

namespace apx {

namespace {

/// Bit mask of word `w` covering the vector window [start, start + len).
/// Bits outside the window are zero; a window that does not intersect the
/// word yields 0.
uint64_t window_word_mask(int32_t start, int32_t len, int w) {
  const int64_t lo = static_cast<int64_t>(w) * 64;
  const int64_t hi = lo + 64;
  const int64_t s = std::max<int64_t>(start, lo);
  const int64_t e = std::min<int64_t>(static_cast<int64_t>(start) + len, hi);
  if (s >= e) return 0;
  const int b = static_cast<int>(e - lo);
  const int a = static_cast<int>(s - lo);
  const uint64_t upto = b == 64 ? ~0ULL : (1ULL << b) - 1;
  return upto & ~((1ULL << a) - 1);
}

}  // namespace

const char* fault_model_name(FaultModel model) {
  switch (model) {
    case FaultModel::kSingleStuckAt: return "single_stuck_at";
    case FaultModel::kMultiStuckAt: return "multi_stuck_at";
    case FaultModel::kTransientBurst: return "transient_burst";
  }
  return "unknown";
}

void FaultSpec::add(const FaultSite& site) {
  if (num_sites >= kMaxSites) {
    throw std::logic_error("FaultSpec::add: more than kMaxSites sites");
  }
  sites[num_sites++] = site;
}

/// Per-thread scratch state: a faulty-value arena over the shared golden
/// image plus the event queue of the level-by-level cone walk. Reused
/// across faults and batches — no allocations on the injection path.
struct FaultSimEngine::Worker {
  ValueArena values;              ///< faulty plane (one row per node)
  std::vector<uint32_t> valid;    ///< epoch at which values row is current
  std::vector<uint32_t> queued;   ///< epoch at which id was scheduled
  uint32_t epoch = 0;
  std::vector<std::vector<NodeId>> buckets;  ///< event queue by level
  std::vector<const uint64_t*> fanin;        ///< scratch fanin pointers
};

FaultSimEngine::FaultSimEngine(const Network& net)
    : net_(net), view_(net.topology()) {
  observable_.assign(net.num_nodes(), 0);
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    if (!view_->fanouts(id).empty()) observable_[id] = 1;
  }
  for (const PrimaryOutput& po : net.pos()) {
    if (po.driver != kNullNode) observable_[po.driver] = 1;
  }
}

bool FaultSimEngine::is_live_site(NodeId node, bool stuck_value) const {
  if (node == kNullNode || node >= net_.num_nodes()) return false;
  const NodeKind kind = net_.node(node).kind;
  if (kind == NodeKind::kConst0 && !stuck_value) return false;
  if (kind == NodeKind::kConst1 && stuck_value) return false;
  return observable_[node] != 0;
}

bool FaultSimEngine::validate_spec(const FaultSpec& spec,
                                   int num_vectors) const {
  if (spec.num_sites <= 0 || spec.num_sites > FaultSpec::kMaxSites) {
    throw std::logic_error(
        "FaultSimEngine: FaultSpec with no sites (or too many)");
  }
  bool live = true;
  for (int s = 0; s < spec.num_sites; ++s) {
    const FaultSite& site = spec.sites[s];
    if (site.node == kNullNode || site.node >= net_.num_nodes()) {
      throw std::logic_error(
          "FaultSimEngine: sampler returned an out-of-range fault site");
    }
    for (int t = 0; t < s; ++t) {
      if (spec.sites[t].node == site.node) {
        throw std::logic_error(
            "FaultSimEngine: FaultSpec names the same node twice");
      }
    }
    if (site.transient &&
        (site.burst_length <= 0 || site.burst_start < 0 ||
         site.burst_start >= num_vectors)) {
      throw std::logic_error(
          "FaultSimEngine: transient burst window outside the campaign's "
          "vector range");
    }
    live = live && is_live_site(site.node, site.stuck_value);
  }
  return live;
}

FaultSimEngine::~FaultSimEngine() = default;

void FaultSimEngine::run_golden(const PatternSet& patterns, int num_vectors) {
  if (patterns.num_pis() != net_.num_pis()) {
    throw std::logic_error("FaultSimEngine: PI count mismatch");
  }
  const int total = patterns.num_words() * 64;
  if (num_vectors <= 0) num_vectors = total;
  if (num_vectors > total) {
    throw std::logic_error(
        "FaultSimEngine: num_vectors exceeds the pattern set");
  }
  trace::Span span("faultsim.golden");
  if (trace::enabled()) {
    static trace::Counter& batches = trace::counter("faultsim.batches");
    static trace::Counter& words = trace::counter("faultsim.pattern_words");
    batches.add(1);
    words.add(patterns.num_words());
  }
  num_words_ = patterns.num_words();
  num_vectors_ = num_vectors;
  tail_mask_ = (num_vectors % 64) != 0
                   ? (1ULL << (num_vectors % 64)) - 1
                   : ~0ULL;
  const int W = num_words_;
  if (golden_.rows() != net_.num_nodes() || golden_.words() != W) {
    golden_.reset(net_.num_nodes(), W);
  }
  for (int i = 0; i < net_.num_pis(); ++i) {
    std::memcpy(golden_.row(net_.pis()[i]), patterns.column(i).data(),
                sizeof(uint64_t) * W);
  }
  std::vector<const uint64_t*> fanin;
  for (NodeId id : view_->topo()) {
    const Node& n = net_.node(id);
    uint64_t* out = golden_.row(id);
    switch (n.kind) {
      case NodeKind::kPi:
        break;
      case NodeKind::kConst0:
        std::fill(out, out + W, 0ULL);
        break;
      case NodeKind::kConst1:
        std::fill(out, out + W, ~0ULL);
        break;
      case NodeKind::kLogic: {
        fanin.clear();
        fanin.reserve(n.fanins.size());
        for (NodeId f : n.fanins) fanin.push_back(golden_.row(f));
        eval_sop_words(n.sop, fanin.data(), W, out);
        break;
      }
    }
  }
}

void FaultSimEngine::simulate_fault(Worker& w, const StuckFault& fault) const {
  const int W = num_words_;
  if (++w.epoch == 0) {
    // uint32 epoch wrapped: old marks would alias the fresh epoch.
    std::fill(w.valid.begin(), w.valid.end(), 0u);
    std::fill(w.queued.begin(), w.queued.end(), 0u);
    w.epoch = 1;
  }
  const uint32_t epoch = w.epoch;
  const uint64_t forced = fault.stuck_value ? ~0ULL : 0ULL;
  uint64_t* fv = w.values.row(fault.node);
  const uint64_t* gv = golden_.row(fault.node);
  std::fill(fv, fv + W, forced);
  // Fault value equals golden on every valid pattern: nothing can
  // propagate (padding bits of the final word never excite a fault).
  if (!rows_differ(fv, gv, W, tail_mask_)) return;
  w.valid[fault.node] = epoch;

  const TopologyView& view = *view_;
  auto schedule = [&](NodeId id) {
    if (w.queued[id] != epoch) {
      w.queued[id] = epoch;
      w.buckets[view.level(id)].push_back(id);
    }
  };
  for (NodeId o : view.fanouts(fault.node)) schedule(o);

  const int max_level = view.max_level();
  for (int lvl = view.level(fault.node) + 1; lvl <= max_level; ++lvl) {
    auto& bucket = w.buckets[lvl];
    for (NodeId id : bucket) {
      const Node& n = net_.node(id);
      w.fanin.clear();
      for (NodeId f : n.fanins) {
        w.fanin.push_back(w.valid[f] == epoch ? w.values.row(f)
                                              : golden_.row(f));
      }
      uint64_t* out = w.values.row(id);
      eval_sop_words(n.sop, w.fanin.data(), W, out);
      // Faulty value collapsed back to golden on every valid pattern: the
      // event dies here (padding differences cannot keep it alive).
      if (!rows_differ(out, golden_.row(id), W, tail_mask_)) continue;
      w.valid[id] = epoch;
      for (NodeId o : view.fanouts(id)) schedule(o);
    }
    bucket.clear();
  }
}

// Generalized injection. For a single permanent site this walks the exact
// schedule of the StuckFault overload (the extra `queued` pin on the site
// is never consulted in a DAG), so the single-stuck-at path is
// byte-identical to the legacy engine.
void FaultSimEngine::simulate_fault(Worker& w, const FaultSpec& spec) const {
  const int W = num_words_;
  if (++w.epoch == 0) {
    // uint32 epoch wrapped: old marks would alias the fresh epoch.
    std::fill(w.valid.begin(), w.valid.end(), 0u);
    std::fill(w.queued.begin(), w.queued.end(), 0u);
    w.epoch = 1;
  }
  const uint32_t epoch = w.epoch;
  const TopologyView& view = *view_;

  // Pin every site before seeding: a site's row is forced below and must
  // never be re-evaluated by the cone walk, even when it lies inside
  // another site's fanout cone — a stuck site blocks propagation through
  // itself, and a transient site holds golden outside its burst window.
  // Pinning also makes the event schedule a pure function of the spec
  // (site order, then CSR fanout order), independent of threads.
  for (int s = 0; s < spec.num_sites; ++s) {
    w.queued[spec.sites[s].node] = epoch;
  }

  auto schedule = [&](NodeId id) {
    if (w.queued[id] != epoch) {
      w.queued[id] = epoch;
      w.buckets[view.level(id)].push_back(id);
    }
  };

  int min_level = view.max_level();
  bool excited = false;
  for (int s = 0; s < spec.num_sites; ++s) {
    const FaultSite& site = spec.sites[s];
    const uint64_t forced = site.stuck_value ? ~0ULL : 0ULL;
    uint64_t* fv = w.values.row(site.node);
    const uint64_t* gv = golden_.row(site.node);
    if (!site.transient) {
      std::fill(fv, fv + W, forced);
    } else {
      for (int word = 0; word < W; ++word) {
        const uint64_t m =
            window_word_mask(site.burst_start, site.burst_length, word);
        fv[word] = (gv[word] & ~m) | (forced & m);
      }
    }
    // Site value equals golden on every valid pattern: nothing propagates
    // from this site (padding bits of the final word never excite it).
    if (!rows_differ(fv, gv, W, tail_mask_)) continue;
    w.valid[site.node] = epoch;
    excited = true;
    min_level = std::min(min_level, view.level(site.node));
    for (NodeId o : view.fanouts(site.node)) schedule(o);
  }
  if (!excited) return;

  const int max_level = view.max_level();
  for (int lvl = min_level + 1; lvl <= max_level; ++lvl) {
    auto& bucket = w.buckets[lvl];
    for (NodeId id : bucket) {
      const Node& n = net_.node(id);
      w.fanin.clear();
      for (NodeId f : n.fanins) {
        w.fanin.push_back(w.valid[f] == epoch ? w.values.row(f)
                                              : golden_.row(f));
      }
      uint64_t* out = w.values.row(id);
      eval_sop_words(n.sop, w.fanin.data(), W, out);
      // Faulty value collapsed back to golden on every valid pattern: the
      // event dies here (padding differences cannot keep it alive).
      if (!rows_differ(out, golden_.row(id), W, tail_mask_)) continue;
      w.valid[id] = epoch;
      for (NodeId o : view.fanouts(id)) schedule(o);
    }
    bucket.clear();
  }
}

FaultView FaultSimEngine::view_of(const Worker& w, int slot) const {
  FaultView v;
  v.golden_ = golden_.row(0);
  v.values_ = w.values.row(0);
  v.valid_ = w.valid.data();
  v.epoch_ = w.epoch;
  v.num_words_ = num_words_;
  v.num_vectors_ = num_vectors_;
  v.stride_ = golden_.stride();
  v.tail_mask_ = tail_mask_;
  v.worker_slot_ = slot;
  return v;
}

FaultSimEngine::Worker& FaultSimEngine::worker(int index) {
  while (static_cast<int>(workers_.size()) <= index) {
    workers_.push_back(std::make_unique<Worker>());
  }
  Worker& w = *workers_[index];
  if (w.values.rows() != net_.num_nodes() || w.values.words() != num_words_) {
    w.values.reset(net_.num_nodes(), num_words_);
    w.valid.assign(net_.num_nodes(), 0);
    w.queued.assign(net_.num_nodes(), 0);
    w.epoch = 0;
    w.buckets.assign(view_->max_level() + 1, {});
    w.fanin.clear();
  }
  return w;
}

// All fault-level parallelism rides the shared task pool: the engine never
// spawns threads of its own, so nested use (e.g. a whole-pipeline task per
// benchmark row, each running campaigns inside) shares one set of workers.
void FaultSimEngine::parallel_for(
    int begin, int end, int threads,
    const std::function<void(Worker&, int, int)>& f) {
  if (end <= begin) return;
  if (trace::enabled()) {
    static trace::Counter& sims = trace::counter("faultsim.fault_sims");
    sims.add(end - begin);
  }
  threads = std::min(threads, end - begin);
  for (int t = 0; t < threads; ++t) worker(t);  // size arenas up front
  TaskPool::instance().parallel_for_slotted(
      begin, end, threads, /*grain=*/1,
      [&](int slot, int64_t i) {
        f(*workers_[slot], slot, static_cast<int>(i));
      });
}

// The legacy StuckFault campaign rides the FaultSpec core: the wrapper
// sampler produces single permanent sites, whose injection is
// byte-identical to the original single-stuck-at engine (see
// simulate_fault above), and the wrapper visitor hands the site back as a
// StuckFault. Seed schedule, batch geometry and dead-site policy are the
// spec core's.
void FaultSimEngine::run_campaign(const CampaignOptions& options,
                                  const Sampler& sampler,
                                  const Visitor& visit) {
  run_campaign(
      options,
      SpecSampler([&sampler](uint64_t sample_seed) {
        return FaultSpec::stuck_at(sampler(sample_seed));
      }),
      SpecVisitor([&visit](int i, const FaultSpec& f, const FaultView& v) {
        visit(i, StuckFault{f.sites[0].node, f.sites[0].stuck_value}, v);
      }));
}

void FaultSimEngine::run_campaign(const CampaignOptions& options,
                                  const SpecSampler& sampler,
                                  const SpecVisitor& visit) {
  if ((options.words_per_fault <= 0 && options.vectors_per_fault <= 0) ||
      options.faults_per_batch <= 0) {
    throw std::invalid_argument(
        "FaultSimEngine::run_campaign: non-positive batch geometry");
  }
  trace::Span span("faultsim.campaign");
  const int vectors = options.vectors_per_fault > 0
                          ? options.vectors_per_fault
                          : options.words_per_fault * 64;
  const int words = (vectors + 63) / 64;
  const int samples = options.num_fault_samples;
  if (samples <= 0) return;
  std::vector<FaultSpec> faults(samples);
  for (int i = 0; i < samples; ++i) {
    const uint64_t sample_seed =
        derive_seed(options.seed, static_cast<uint64_t>(i));
    FaultSpec spec = sampler(sample_seed);
    bool live = validate_spec(spec, vectors);
    if (!live && options.dead_sites == DeadSitePolicy::kReject) {
      throw std::logic_error(
          "FaultSimEngine::run_campaign: sampler returned a dead fault site "
          "(sample " +
          std::to_string(i) +
          "): a same-polarity stuck-at on a constant or an unobservable "
          "node can never produce an erroneous run; fix the sampler's site "
          "list or pick a DeadSitePolicy");
    }
    if (!live && options.dead_sites == DeadSitePolicy::kResample) {
      // Deterministic redraw: depends only on the sample seed, so any
      // thread count / batch geometry sees the same replacement spec.
      for (int attempt = 1; !live && attempt <= 64; ++attempt) {
        spec = sampler(derive_seed(sample_seed ^ kResampleStream,
                                   static_cast<uint64_t>(attempt)));
        live = validate_spec(spec, vectors);
      }
      if (!live) {
        throw std::logic_error(
            "FaultSimEngine::run_campaign: 64 consecutive dead redraws "
            "(sample " +
            std::to_string(i) + "); the sampler's site list looks dead");
      }
    }
    faults[i] = spec;
  }
  const int threads = resolve_thread_option(options.num_threads);
  const int per_batch = options.faults_per_batch;
  const int num_batches = (samples + per_batch - 1) / per_batch;
  for (int b = 0; b < num_batches; ++b) {
    PatternSet patterns = PatternSet::random(
        net_.num_pis(), words,
        derive_seed(options.seed ^ kPatternStream, static_cast<uint64_t>(b)));
    run_golden(patterns, vectors);
    int begin = b * per_batch;
    int end = std::min(samples, begin + per_batch);
    parallel_for(begin, end, threads, [&](Worker& w, int slot, int i) {
      simulate_fault(w, faults[i]);
      visit(i, faults[i], view_of(w, slot));
    });
  }
}

void FaultSimEngine::run_batch(const PatternSet& patterns,
                               const std::vector<StuckFault>& faults,
                               const Visitor& visit, int num_threads,
                               int num_vectors) {
  run_golden(patterns, num_vectors);
  const int threads = resolve_thread_option(num_threads);
  parallel_for(0, static_cast<int>(faults.size()), threads,
               [&](Worker& w, int slot, int i) {
                 simulate_fault(w, faults[i]);
                 visit(i, faults[i], view_of(w, slot));
               });
}

void FaultSimEngine::run_batch(const PatternSet& patterns,
                               const std::vector<FaultSpec>& faults,
                               const SpecVisitor& visit, int num_threads,
                               int num_vectors) {
  run_golden(patterns, num_vectors);
  // Structural validation only (range, duplicates, burst shape): the
  // caller owns the explicit fault list, so dead sites are allowed here.
  for (const FaultSpec& spec : faults) validate_spec(spec, num_vectors_);
  const int threads = resolve_thread_option(num_threads);
  parallel_for(0, static_cast<int>(faults.size()), threads,
               [&](Worker& w, int slot, int i) {
                 simulate_fault(w, faults[i]);
                 visit(i, faults[i], view_of(w, slot));
               });
}

FaultSimEngine::SpecSampler FaultSimEngine::make_sampler(
    FaultModel model, std::vector<NodeId> sites,
    const CampaignOptions& options) {
  if (sites.empty()) {
    throw std::invalid_argument(
        "FaultSimEngine::make_sampler: empty site list");
  }
  const int vectors = options.vectors_per_fault > 0
                          ? options.vectors_per_fault
                          : options.words_per_fault * 64;
  switch (model) {
    case FaultModel::kSingleStuckAt:
      // Exactly the legacy uniform stuck-at sampler (same SplitMix64 draw
      // order), so campaigns through this sampler reproduce historical
      // single-fault results bit for bit.
      return [sites = std::move(sites)](uint64_t sample_seed) {
        SplitMix64 rng(sample_seed);
        const NodeId node = sites[rng.next() % sites.size()];
        StuckFault fault{node, static_cast<bool>(rng.next() & 1)};
        return FaultSpec::stuck_at(fault);
      };
    case FaultModel::kMultiStuckAt: {
      const int k = std::min(std::max(options.sites_per_fault, 1),
                             FaultSpec::kMaxSites);
      // `sites` must hold at least k distinct nodes or the rejection loop
      // below cannot terminate; the size check catches the common case.
      if (static_cast<size_t>(k) > sites.size()) {
        throw std::invalid_argument(
            "FaultSimEngine::make_sampler: fewer candidate sites than "
            "sites_per_fault");
      }
      return [sites = std::move(sites), k](uint64_t sample_seed) {
        SplitMix64 rng(sample_seed);
        FaultSpec spec;
        while (spec.num_sites < k) {
          const NodeId node = sites[rng.next() % sites.size()];
          bool duplicate = false;
          for (int s = 0; s < spec.num_sites; ++s) {
            duplicate = duplicate || spec.sites[s].node == node;
          }
          if (duplicate) continue;
          FaultSite site;
          site.node = node;
          site.stuck_value = (rng.next() & 1) != 0;
          spec.add(site);
        }
        return spec;
      };
    }
    case FaultModel::kTransientBurst: {
      const int burst = std::min(std::max(options.burst_vectors, 1), vectors);
      return [sites = std::move(sites), burst, vectors](uint64_t sample_seed) {
        SplitMix64 rng(sample_seed);
        FaultSite site;
        site.node = sites[rng.next() % sites.size()];
        site.stuck_value = (rng.next() & 1) != 0;
        site.transient = true;
        site.burst_length = burst;
        site.burst_start = static_cast<int32_t>(
            rng.next() % static_cast<uint64_t>(vectors - burst + 1));
        FaultSpec spec;
        spec.add(site);
        return spec;
      };
    }
  }
  throw std::invalid_argument("FaultSimEngine::make_sampler: unknown model");
}

DetectionReport FaultSimEngine::detect_faults(
    const std::vector<StuckFault>& faults, const std::vector<NodeId>& observe,
    const DetectOptions& options) {
  DetectionReport report;
  report.detected.assign(faults.size(), 0);
  report.detecting_batch.assign(faults.size(), -1);
  if (faults.empty() || observe.empty() || options.max_words <= 0) {
    return report;
  }
  const int wpb = std::max(1, std::min(options.words_per_batch,
                                       options.max_words));
  const int num_batches = (options.max_words + wpb - 1) / wpb;
  const int threads = resolve_thread_option(options.num_threads);

  std::vector<int> alive(faults.size());
  for (size_t i = 0; i < faults.size(); ++i) alive[i] = static_cast<int>(i);

  for (int b = 0; b < num_batches && !alive.empty(); ++b) {
    PatternSet patterns = PatternSet::random(
        net_.num_pis(), wpb,
        derive_seed(options.seed ^ kPatternStream, static_cast<uint64_t>(b)));
    run_golden(patterns, 0);
    std::vector<uint8_t> hit(alive.size(), 0);
    parallel_for(0, static_cast<int>(alive.size()), threads,
                 [&](Worker& w, int slot, int j) {
                   simulate_fault(w, faults[alive[j]]);
                   FaultView v = view_of(w, slot);
                   for (NodeId obs : observe) {
                     // touched() holds exactly when faulty != golden on
                     // some pattern — i.e. the fault is detected at obs.
                     if (v.touched(obs)) {
                       hit[j] = 1;
                       break;
                     }
                   }
                 });
    report.fault_batch_evals += static_cast<int64_t>(alive.size());
    std::vector<int> still_alive;
    still_alive.reserve(alive.size());
    for (size_t j = 0; j < alive.size(); ++j) {
      if (hit[j]) {
        report.detected[alive[j]] = 1;
        report.detecting_batch[alive[j]] = b;
      } else {
        still_alive.push_back(alive[j]);
      }
    }
    alive.swap(still_alive);  // fault dropping
  }
  return report;
}

}  // namespace apx
