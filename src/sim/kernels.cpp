#include "sim/kernels.hpp"

#include <atomic>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define APX_SIMD_X86 1
#include <immintrin.h>
#else
#define APX_SIMD_X86 0
#endif

namespace apx {
namespace {

// ---------------------------------------------------------------------------
// Scalar kernel. The word range [begin, end) form also serves as the
// sub-lane tail of the vector kernels, so all tiers share one definition of
// the per-word semantics (including the treatment of kEmpty positions,
// which behave like kNeg exactly as the historical code did).
// ---------------------------------------------------------------------------

void eval_sop_scalar_range(const Sop& sop, const uint64_t* const* fanin,
                           int begin, int end, uint64_t* out) {
  for (int w = begin; w < end; ++w) {
    uint64_t acc = 0;
    for (const Cube& c : sop.cubes()) {
      uint64_t t = ~0ULL;
      for (int k = 0; k < sop.num_vars() && t; ++k) {
        LitCode code = c.get(k);
        if (code == LitCode::kFree) continue;
        uint64_t v = fanin[k][w];
        t &= (code == LitCode::kPos) ? v : ~v;
      }
      acc |= t;
      if (acc == ~0ULL) break;
    }
    out[w] = acc;
  }
}

void eval_sop_scalar(const Sop& sop, const uint64_t* const* fanin,
                     int num_words, uint64_t* out) {
  eval_sop_scalar_range(sop, fanin, 0, num_words, out);
}

#if APX_SIMD_X86

// ---------------------------------------------------------------------------
// AVX2 kernel: 4 words (256 pattern bits) per step. The early exits mirror
// the scalar ones at vector granularity (a cube dies when its product is
// zero on all four lanes; a node is done when the accumulator is all-ones
// on all four lanes) — they prune work without changing any output bit.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) void eval_sop_avx2(
    const Sop& sop, const uint64_t* const* fanin, int num_words,
    uint64_t* out) {
  const int nv = sop.num_vars();
  const __m256i ones = _mm256_set1_epi64x(-1);
  int w = 0;
  for (; w + 4 <= num_words; w += 4) {
    __m256i acc = _mm256_setzero_si256();
    for (const Cube& c : sop.cubes()) {
      __m256i t = ones;
      for (int k = 0; k < nv; ++k) {
        LitCode code = c.get(k);
        if (code == LitCode::kFree) continue;
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(fanin[k] + w));
        t = (code == LitCode::kPos) ? _mm256_and_si256(t, v)
                                    : _mm256_andnot_si256(v, t);
        if (_mm256_testz_si256(t, t)) break;
      }
      acc = _mm256_or_si256(acc, t);
      if (_mm256_testc_si256(acc, ones)) break;
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w), acc);
  }
  if (w < num_words) eval_sop_scalar_range(sop, fanin, w, num_words, out);
}

// ---------------------------------------------------------------------------
// AVX-512F kernel: 8 words (512 pattern bits) per step, with a 4-word
// 256-bit step on the tail so the Table-1-sized 4-word rows (the engine's
// default per-fault geometry) still run vectorized instead of degrading to
// the scalar tail. Every AVX-512F host has AVX2, and the target attribute
// requests both so the 256-bit intrinsics are available here.
//
// GCC's _mm512_andnot_epi64 lowers to the masked builtin with a
// deliberately undefined pass-through operand (`__Y = __Y` in the header);
// the all-ones mask means it is never read, but -Wmaybe-uninitialized
// cannot see that.
// ---------------------------------------------------------------------------

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

__attribute__((target("avx512f,avx2"))) void eval_sop_avx512(
    const Sop& sop, const uint64_t* const* fanin, int num_words,
    uint64_t* out) {
  const int nv = sop.num_vars();
  const __m512i ones = _mm512_set1_epi64(-1);
  int w = 0;
  for (; w + 8 <= num_words; w += 8) {
    __m512i acc = _mm512_setzero_si512();
    for (const Cube& c : sop.cubes()) {
      __m512i t = ones;
      for (int k = 0; k < nv; ++k) {
        LitCode code = c.get(k);
        if (code == LitCode::kFree) continue;
        __m512i v = _mm512_loadu_si512(fanin[k] + w);
        t = (code == LitCode::kPos) ? _mm512_and_epi64(t, v)
                                    : _mm512_andnot_epi64(v, t);
        if (_mm512_test_epi64_mask(t, t) == 0) break;
      }
      acc = _mm512_or_epi64(acc, t);
      if (_mm512_cmpneq_epu64_mask(acc, ones) == 0) break;
    }
    _mm512_storeu_si512(out + w, acc);
  }
  if (w + 4 <= num_words) {
    const __m256i ones256 = _mm256_set1_epi64x(-1);
    __m256i acc = _mm256_setzero_si256();
    for (const Cube& c : sop.cubes()) {
      __m256i t = ones256;
      for (int k = 0; k < nv; ++k) {
        LitCode code = c.get(k);
        if (code == LitCode::kFree) continue;
        __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(fanin[k] + w));
        t = (code == LitCode::kPos) ? _mm256_and_si256(t, v)
                                    : _mm256_andnot_si256(v, t);
        if (_mm256_testz_si256(t, t)) break;
      }
      acc = _mm256_or_si256(acc, t);
      if (_mm256_testc_si256(acc, ones256)) break;
    }
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + w), acc);
    w += 4;
  }
  if (w < num_words) eval_sop_scalar_range(sop, fanin, w, num_words, out);
}

#pragma GCC diagnostic pop

#endif  // APX_SIMD_X86

// ---------------------------------------------------------------------------
// Popcount-reduce / row-combine kernels. Scalar is the reference; the
// vector tiers compute identical integers because popcounting is exact —
// they count full words at lane width and then subtract the final word's
// padding contribution (bits outside tail_mask), so no rounding, ordering,
// or saturation can diverge between tiers.
// ---------------------------------------------------------------------------

int64_t popcount_words_scalar(const uint64_t* a, int n, uint64_t tail) {
  if (n <= 0) return 0;
  int64_t c = 0;
  for (int w = 0; w + 1 < n; ++w) c += std::popcount(a[w]);
  return c + std::popcount(a[n - 1] & tail);
}

int64_t popcount_and_scalar(const uint64_t* a, const uint64_t* b, int n,
                            uint64_t tail) {
  if (n <= 0) return 0;
  int64_t c = 0;
  for (int w = 0; w + 1 < n; ++w) c += std::popcount(a[w] & b[w]);
  return c + std::popcount(a[n - 1] & b[n - 1] & tail);
}

int64_t popcount_xor_and_scalar(const uint64_t* a, const uint64_t* b,
                                const uint64_t* c, int n, uint64_t tail) {
  if (n <= 0) return 0;
  int64_t count = 0;
  for (int w = 0; w + 1 < n; ++w) count += std::popcount((a[w] ^ b[w]) & c[w]);
  return count + std::popcount((a[n - 1] ^ b[n - 1]) & c[n - 1] & tail);
}

int64_t popcount_andnot_scalar(const uint64_t* a, const uint64_t* b, int n,
                               uint64_t tail) {
  if (n <= 0) return 0;
  int64_t c = 0;
  for (int w = 0; w + 1 < n; ++w) c += std::popcount(~a[w] & b[w]);
  return c + std::popcount(~a[n - 1] & b[n - 1] & tail);
}

void accumulate_xor_or_scalar(uint64_t* acc, const uint64_t* a,
                              const uint64_t* b, int n) {
  for (int w = 0; w < n; ++w) acc[w] |= a[w] ^ b[w];
}

void accumulate_andnot_or_scalar(uint64_t* acc, const uint64_t* a,
                                 const uint64_t* b, int n) {
  for (int w = 0; w < n; ++w) acc[w] |= ~a[w] & b[w];
}

bool rows_differ_scalar(const uint64_t* a, const uint64_t* b, int num_words,
                        uint64_t tail_mask) {
  if (num_words <= 0) return false;
  uint64_t diff = 0;
  for (int i = 0; i + 1 < num_words; ++i) diff |= a[i] ^ b[i];
  diff |= (a[num_words - 1] ^ b[num_words - 1]) & tail_mask;
  return diff != 0;
}

#if APX_SIMD_X86

// AVX2 has no vector popcount instruction; the standard pshufb nibble-LUT
// + psadbw reduction counts four words per step (exact byte counts summed
// into per-lane u64 totals). AVX-512F alone adds none of the byte ops this
// needs (VPOPCNTDQ / AVX512BW are separate extensions the dispatch tier
// does not require), so the avx512 tier routes the popcount reductions to
// this 256-bit path and keeps its 512-bit lanes for the combine/compare
// kernels below.

__attribute__((target("avx2"))) inline __m256i popcnt256(__m256i v) {
  const __m256i lut =
      _mm256_setr_epi8(0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, 0, 1,
                       1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low = _mm256_set1_epi8(0x0f);
  __m256i lo = _mm256_and_si256(v, low);
  __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low);
  __m256i cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(cnt, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) inline int64_t hsum256(__m256i acc) {
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  return static_cast<int64_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
}

__attribute__((target("avx2"))) int64_t popcount_words_avx2(const uint64_t* a,
                                                            int n,
                                                            uint64_t tail) {
  if (n <= 0) return 0;
  __m256i acc = _mm256_setzero_si256();
  int w = 0;
  for (; w + 4 <= n; w += 4) {
    acc = _mm256_add_epi64(
        acc,
        popcnt256(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w))));
  }
  int64_t c = hsum256(acc);
  for (; w < n; ++w) c += std::popcount(a[w]);
  return c - std::popcount(a[n - 1] & ~tail);
}

__attribute__((target("avx2"))) int64_t popcount_and_avx2(const uint64_t* a,
                                                          const uint64_t* b,
                                                          int n,
                                                          uint64_t tail) {
  if (n <= 0) return 0;
  __m256i acc = _mm256_setzero_si256();
  int w = 0;
  for (; w + 4 <= n; w += 4) {
    __m256i v = _mm256_and_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)));
    acc = _mm256_add_epi64(acc, popcnt256(v));
  }
  int64_t c = hsum256(acc);
  for (; w < n; ++w) c += std::popcount(a[w] & b[w]);
  return c - std::popcount(a[n - 1] & b[n - 1] & ~tail);
}

__attribute__((target("avx2"))) int64_t popcount_xor_and_avx2(
    const uint64_t* a, const uint64_t* b, const uint64_t* c, int n,
    uint64_t tail) {
  if (n <= 0) return 0;
  __m256i acc = _mm256_setzero_si256();
  int w = 0;
  for (; w + 4 <= n; w += 4) {
    __m256i v = _mm256_and_si256(
        _mm256_xor_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)),
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w))),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(c + w)));
    acc = _mm256_add_epi64(acc, popcnt256(v));
  }
  int64_t count = hsum256(acc);
  for (; w < n; ++w) count += std::popcount((a[w] ^ b[w]) & c[w]);
  return count - std::popcount((a[n - 1] ^ b[n - 1]) & c[n - 1] & ~tail);
}

__attribute__((target("avx2"))) int64_t popcount_andnot_avx2(
    const uint64_t* a, const uint64_t* b, int n, uint64_t tail) {
  if (n <= 0) return 0;
  __m256i acc = _mm256_setzero_si256();
  int w = 0;
  for (; w + 4 <= n; w += 4) {
    __m256i v = _mm256_andnot_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)));
    acc = _mm256_add_epi64(acc, popcnt256(v));
  }
  int64_t c = hsum256(acc);
  for (; w < n; ++w) c += std::popcount(~a[w] & b[w]);
  return c - std::popcount(~a[n - 1] & b[n - 1] & ~tail);
}

__attribute__((target("avx2"))) void accumulate_xor_or_avx2(uint64_t* acc,
                                                            const uint64_t* a,
                                                            const uint64_t* b,
                                                            int n) {
  int w = 0;
  for (; w + 4 <= n; w += 4) {
    __m256i v = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)));
    __m256i* out = reinterpret_cast<__m256i*>(acc + w);
    _mm256_storeu_si256(out, _mm256_or_si256(_mm256_loadu_si256(out), v));
  }
  for (; w < n; ++w) acc[w] |= a[w] ^ b[w];
}

__attribute__((target("avx2"))) void accumulate_andnot_or_avx2(
    uint64_t* acc, const uint64_t* a, const uint64_t* b, int n) {
  int w = 0;
  for (; w + 4 <= n; w += 4) {
    __m256i v = _mm256_andnot_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)));
    __m256i* out = reinterpret_cast<__m256i*>(acc + w);
    _mm256_storeu_si256(out, _mm256_or_si256(_mm256_loadu_si256(out), v));
  }
  for (; w < n; ++w) acc[w] |= ~a[w] & b[w];
}

__attribute__((target("avx2"))) bool rows_differ_avx2(const uint64_t* a,
                                                      const uint64_t* b,
                                                      int num_words,
                                                      uint64_t tail_mask) {
  if (num_words <= 0) return false;
  const int full = num_words - 1;  // the final word needs the mask
  int w = 0;
  for (; w + 4 <= full; w += 4) {
    __m256i d = _mm256_xor_si256(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + w)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + w)));
    if (!_mm256_testz_si256(d, d)) return true;
  }
  uint64_t diff = 0;
  for (; w < full; ++w) diff |= a[w] ^ b[w];
  diff |= (a[full] ^ b[full]) & tail_mask;
  return diff != 0;
}

__attribute__((target("avx512f"))) void accumulate_xor_or_avx512(
    uint64_t* acc, const uint64_t* a, const uint64_t* b, int n) {
  int w = 0;
  for (; w + 8 <= n; w += 8) {
    __m512i v = _mm512_xor_epi64(_mm512_loadu_si512(a + w),
                                 _mm512_loadu_si512(b + w));
    _mm512_storeu_si512(acc + w,
                        _mm512_or_epi64(_mm512_loadu_si512(acc + w), v));
  }
  for (; w < n; ++w) acc[w] |= a[w] ^ b[w];
}

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"

__attribute__((target("avx512f"))) void accumulate_andnot_or_avx512(
    uint64_t* acc, const uint64_t* a, const uint64_t* b, int n) {
  int w = 0;
  for (; w + 8 <= n; w += 8) {
    __m512i v = _mm512_andnot_epi64(_mm512_loadu_si512(a + w),
                                    _mm512_loadu_si512(b + w));
    _mm512_storeu_si512(acc + w,
                        _mm512_or_epi64(_mm512_loadu_si512(acc + w), v));
  }
  for (; w < n; ++w) acc[w] |= ~a[w] & b[w];
}

#pragma GCC diagnostic pop

__attribute__((target("avx512f"))) bool rows_differ_avx512(const uint64_t* a,
                                                           const uint64_t* b,
                                                           int num_words,
                                                           uint64_t tail_mask) {
  if (num_words <= 0) return false;
  const int full = num_words - 1;
  int w = 0;
  for (; w + 8 <= full; w += 8) {
    __m512i d = _mm512_xor_epi64(_mm512_loadu_si512(a + w),
                                 _mm512_loadu_si512(b + w));
    if (_mm512_test_epi64_mask(d, d) != 0) return true;
  }
  uint64_t diff = 0;
  for (; w < full; ++w) diff |= a[w] ^ b[w];
  diff |= (a[full] ^ b[full]) & tail_mask;
  return diff != 0;
}

#endif  // APX_SIMD_X86

// ---------------------------------------------------------------------------
// Dispatch. The active tier is resolved once (CPUID + APX_SIMD) and cached
// in an atomic so concurrently running workers read a settled value;
// simd::set_tier (tests, bench per-width rows) swaps it between runs.
// ---------------------------------------------------------------------------

using EvalFn = void (*)(const Sop&, const uint64_t* const*, int, uint64_t*);
using RowsDifferFn = bool (*)(const uint64_t*, const uint64_t*, int, uint64_t);
using Pop1Fn = int64_t (*)(const uint64_t*, int, uint64_t);
using Pop2Fn = int64_t (*)(const uint64_t*, const uint64_t*, int, uint64_t);
using Pop3Fn = int64_t (*)(const uint64_t*, const uint64_t*, const uint64_t*,
                           int, uint64_t);
using Acc2Fn = void (*)(uint64_t*, const uint64_t*, const uint64_t*, int);

struct Dispatch {
  simd::Tier tier;
  EvalFn eval;
  RowsDifferFn rows_differ;
  Pop1Fn popcount_words;
  Pop2Fn popcount_and;
  Pop3Fn popcount_xor_and;
  Pop2Fn popcount_andnot;
  Acc2Fn accumulate_xor_or;
  Acc2Fn accumulate_andnot_or;
};

const Dispatch kDispatchTable[3] = {
    {simd::Tier::kScalar, &eval_sop_scalar, &rows_differ_scalar,
     &popcount_words_scalar, &popcount_and_scalar, &popcount_xor_and_scalar,
     &popcount_andnot_scalar, &accumulate_xor_or_scalar,
     &accumulate_andnot_or_scalar},
#if APX_SIMD_X86
    {simd::Tier::kAvx2, &eval_sop_avx2, &rows_differ_avx2,
     &popcount_words_avx2, &popcount_and_avx2, &popcount_xor_and_avx2,
     &popcount_andnot_avx2, &accumulate_xor_or_avx2,
     &accumulate_andnot_or_avx2},
    // The avx512 tier reuses the 256-bit popcount path (AVX-512F alone has
    // no byte shuffle/popcount; see popcnt256) but runs 512-bit lanes for
    // the combine/compare kernels.
    {simd::Tier::kAvx512, &eval_sop_avx512, &rows_differ_avx512,
     &popcount_words_avx2, &popcount_and_avx2, &popcount_xor_and_avx2,
     &popcount_andnot_avx2, &accumulate_xor_or_avx512,
     &accumulate_andnot_or_avx512},
#else
    {simd::Tier::kAvx2, &eval_sop_scalar, &rows_differ_scalar,
     &popcount_words_scalar, &popcount_and_scalar, &popcount_xor_and_scalar,
     &popcount_andnot_scalar, &accumulate_xor_or_scalar,
     &accumulate_andnot_or_scalar},
    {simd::Tier::kAvx512, &eval_sop_scalar, &rows_differ_scalar,
     &popcount_words_scalar, &popcount_and_scalar, &popcount_xor_and_scalar,
     &popcount_andnot_scalar, &accumulate_xor_or_scalar,
     &accumulate_andnot_or_scalar},
#endif
};

std::atomic<const Dispatch*> g_active{nullptr};
std::string g_policy = "auto";

simd::Tier clamp_to_supported(simd::Tier requested) {
  simd::Tier t = requested;
  while (t != simd::Tier::kScalar && !simd::tier_supported(t)) {
    t = static_cast<simd::Tier>(static_cast<int>(t) - 1);
  }
  return t;
}

const Dispatch* resolve_from_env() {
  const char* env = std::getenv("APX_SIMD");
  std::string req = env != nullptr ? env : "auto";
  simd::Tier requested;
  if (req.empty() || req == "auto") {
    requested = simd::best_supported_tier();
    g_policy = "auto";
  } else if (req == "scalar") {
    requested = simd::Tier::kScalar;
    g_policy = req;
  } else if (req == "avx2") {
    requested = simd::Tier::kAvx2;
    g_policy = req;
  } else if (req == "avx512") {
    requested = simd::Tier::kAvx512;
    g_policy = req;
  } else {
    throw std::invalid_argument(
        "APX_SIMD must be scalar, avx2, avx512, or auto (got \"" + req +
        "\")");
  }
  simd::Tier actual = clamp_to_supported(requested);
  if (actual != requested) {
    g_policy = std::string(simd::tier_name(requested)) + "->" +
               simd::tier_name(actual) + "(unsupported)";
  }
  return &kDispatchTable[static_cast<int>(actual)];
}

const Dispatch& active_dispatch() {
  const Dispatch* d = g_active.load(std::memory_order_acquire);
  if (d == nullptr) {
    // Benign race: concurrent first calls resolve to the same table entry.
    d = resolve_from_env();
    g_active.store(d, std::memory_order_release);
  }
  return *d;
}

}  // namespace

namespace simd {

bool tier_supported(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return true;
#if APX_SIMD_X86
    case Tier::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Tier::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0;
#else
    case Tier::kAvx2:
    case Tier::kAvx512:
      return false;
#endif
  }
  return false;
}

Tier best_supported_tier() {
  if (tier_supported(Tier::kAvx512)) return Tier::kAvx512;
  if (tier_supported(Tier::kAvx2)) return Tier::kAvx2;
  return Tier::kScalar;
}

Tier active_tier() { return active_dispatch().tier; }

int width_bits(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return 64;
    case Tier::kAvx2:
      return 256;
    case Tier::kAvx512:
      return 512;
  }
  return 64;
}

int width_bits() { return width_bits(active_tier()); }

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kScalar:
      return "scalar";
    case Tier::kAvx2:
      return "avx2";
    case Tier::kAvx512:
      return "avx512";
  }
  return "scalar";
}

const char* policy() {
  active_dispatch();  // force resolution so the string is settled
  return g_policy.c_str();
}

void set_tier(Tier tier) {
  if (!tier_supported(tier)) {
    throw std::invalid_argument(std::string("simd::set_tier: host cannot ") +
                                "execute tier " + tier_name(tier));
  }
  active_dispatch();  // settle the policy string first
  g_policy = std::string("forced:") + tier_name(tier);
  g_active.store(&kDispatchTable[static_cast<int>(tier)],
                 std::memory_order_release);
}

}  // namespace simd

void eval_sop_words(const Sop& sop, const uint64_t* const* fanin,
                    int num_words, uint64_t* out) {
  active_dispatch().eval(sop, fanin, num_words, out);
}

bool rows_differ(const uint64_t* a, const uint64_t* b, int num_words,
                 uint64_t tail_mask) {
  return active_dispatch().rows_differ(a, b, num_words, tail_mask);
}

int64_t popcount_words(const uint64_t* a, int num_words, uint64_t tail_mask) {
  return active_dispatch().popcount_words(a, num_words, tail_mask);
}

int64_t popcount_and(const uint64_t* a, const uint64_t* b, int num_words,
                     uint64_t tail_mask) {
  return active_dispatch().popcount_and(a, b, num_words, tail_mask);
}

int64_t popcount_xor_and(const uint64_t* a, const uint64_t* b,
                         const uint64_t* c, int num_words,
                         uint64_t tail_mask) {
  return active_dispatch().popcount_xor_and(a, b, c, num_words, tail_mask);
}

int64_t popcount_andnot(const uint64_t* a, const uint64_t* b, int num_words,
                        uint64_t tail_mask) {
  return active_dispatch().popcount_andnot(a, b, num_words, tail_mask);
}

void accumulate_xor_or(uint64_t* acc, const uint64_t* a, const uint64_t* b,
                       int num_words) {
  active_dispatch().accumulate_xor_or(acc, a, b, num_words);
}

void accumulate_andnot_or(uint64_t* acc, const uint64_t* a, const uint64_t* b,
                          int num_words) {
  active_dispatch().accumulate_andnot_or(acc, a, b, num_words);
}

}  // namespace apx
