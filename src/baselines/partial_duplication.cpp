#include "baselines/partial_duplication.hpp"

#include <algorithm>
#include <numeric>

#include "core/task_pool.hpp"
#include "core/trace.hpp"
#include "sim/fault_engine.hpp"
#include "sim/kernels.hpp"
#include "sim/simulator.hpp"

namespace apx {
namespace {

// Unbiased bounded draw (Lemire multiply-shift with rejection). The legacy
// `rng() % n` pick over-weighted low fault indices whenever n does not
// divide 2^64.
size_t bounded_pick(SplitMix64& rng, uint64_t n) {
  uint64_t x = rng.next();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * n;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < n) {
    uint64_t threshold = (0 - n) % n;
    while (low < threshold) {
      x = rng.next();
      m = static_cast<unsigned __int128>(x) * n;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<size_t>(m >> 64);
}

CampaignOptions campaign_options(const PartialDuplicationOptions& options,
                                 uint64_t seed) {
  CampaignOptions copt;
  copt.num_fault_samples = options.num_fault_samples;
  copt.words_per_fault = options.words_per_fault;
  copt.faults_per_batch = options.faults_per_batch;
  copt.num_threads = options.num_threads;
  copt.seed = seed;
  return copt;
}

// Campaign dispatch over the configured fault model. The selection
// accounting is fault-agnostic, so the single-stuck-at path keeps the
// legacy bounded_pick sampler verbatim (bit-identical selections) while
// the richer models ride the engine's stock samplers.
void run_model_campaign(FaultSimEngine& engine, const Network& net,
                        const std::vector<StuckFault>& faults,
                        const PartialDuplicationOptions& options,
                        uint64_t seed,
                        const std::function<void(int, const FaultView&)>& body) {
  CampaignOptions copt = campaign_options(options, seed);
  if (options.model == FaultModel::kSingleStuckAt) {
    auto sampler = [&faults](uint64_t sample_seed) {
      SplitMix64 rng(sample_seed);
      return faults[bounded_pick(rng, faults.size())];
    };
    engine.run_campaign(copt, sampler,
                        [&](int i, const StuckFault&, const FaultView& v) {
                          body(i, v);
                        });
    return;
  }
  std::vector<NodeId> sites;
  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    if (net.node(id).kind == NodeKind::kLogic) sites.push_back(id);
  }
  copt.model = options.model;
  copt.sites_per_fault = options.sites_per_fault;
  copt.burst_vectors = options.burst_vectors;
  engine.run_campaign(
      copt, FaultSimEngine::make_sampler(options.model, std::move(sites), copt),
      [&](int i, const FaultSpec&, const FaultView& v) { body(i, v); });
}

// For POs ordered by rank, returns hist[k] = number of runs whose first
// erroneous PO (by rank) is rank k, plus the total erroneous-run count.
// Prefix-coverage(k) = sum(hist[0..k-1]) / erroneous.
struct RankHistogram {
  std::vector<int64_t> first_error_at_rank;
  int64_t erroneous = 0;
};

RankHistogram rank_histogram(const Network& net,
                             const std::vector<int>& ranked_pos,
                             const std::vector<StuckFault>& faults,
                             const PartialDuplicationOptions& options) {
  RankHistogram hist;
  const size_t ranks = ranked_pos.size();
  hist.first_error_at_rank.assign(ranks, 0);
  if (faults.empty() || options.num_fault_samples <= 0 || ranks == 0) {
    return hist;
  }

  FaultSimEngine engine(net);
  // Per-sample rows (ranks counters + the erroneous total), merged in
  // sample order afterwards so the result is bit-identical for any
  // thread count.
  const size_t stride = ranks + 1;
  std::vector<int64_t> rows(
      static_cast<size_t>(options.num_fault_samples) * stride, 0);
  // "First erroneous PO has rank k" counts via the prefix-OR identity: the
  // bits rank k claims are exactly the bits it adds to the running OR of
  // ranks 0..k, so row[k] = |prefix after k| - |prefix before k| — the
  // per-word remaining/any bookkeeping reduced to one accumulate and one
  // popcount kernel call per rank.
  const int slots = resolve_thread_option(options.num_threads);
  std::vector<std::vector<uint64_t>> any_scratch(slots);
  run_model_campaign(
      engine, net, faults, options, options.seed,
      [&](int i, const FaultView& v) {
        int64_t* row = rows.data() + static_cast<size_t>(i) * stride;
        const int W = v.num_words();
        const uint64_t tail = v.word_mask(W - 1);
        std::vector<uint64_t>& any_row = any_scratch[v.worker_slot()];
        any_row.assign(static_cast<size_t>(W), 0);
        int64_t prev = 0;
        for (size_t k = 0; k < ranks; ++k) {
          NodeId drv = net.po(ranked_pos[k]).driver;
          accumulate_xor_or(any_row.data(), v.golden(drv), v.faulty(drv), W);
          const int64_t cur = popcount_words(any_row.data(), W, tail);
          row[k] += cur - prev;
          prev = cur;
        }
        row[ranks] += prev;
      });
  for (int s = 0; s < options.num_fault_samples; ++s) {
    const int64_t* row = rows.data() + static_cast<size_t>(s) * stride;
    for (size_t k = 0; k < ranks; ++k) hist.first_error_at_rank[k] += row[k];
    hist.erroneous += row[ranks];
  }
  return hist;
}

// Per-output erroneous-bit counts over a fault-injection campaign, used to
// rank POs by error contribution.
std::vector<int64_t> output_error_counts(
    const Network& net, const std::vector<StuckFault>& faults,
    const PartialDuplicationOptions& options) {
  const size_t num_pos = static_cast<size_t>(net.num_pos());
  std::vector<int64_t> rate(num_pos, 0);
  if (faults.empty() || options.num_fault_samples <= 0 || num_pos == 0) {
    return rate;
  }

  FaultSimEngine engine(net);
  std::vector<int64_t> rows(
      static_cast<size_t>(options.num_fault_samples) * num_pos, 0);
  run_model_campaign(
      engine, net, faults, options, options.seed ^ 0xABCD,
      [&](int i, const FaultView& v) {
        int64_t* row = rows.data() + static_cast<size_t>(i) * num_pos;
        const int W = v.num_words();
        const uint64_t tail = v.word_mask(W - 1);
        for (size_t o = 0; o < num_pos; ++o) {
          NodeId drv = net.po(static_cast<int>(o)).driver;
          const uint64_t* g = v.golden(drv);
          const uint64_t* f = v.faulty(drv);
          // |g ^ f| = |~g & f| + |g & ~f|.
          row[o] += popcount_andnot(g, f, W, tail) +
                    popcount_andnot(f, g, W, tail);
        }
      });
  for (int s = 0; s < options.num_fault_samples; ++s) {
    const int64_t* row = rows.data() + static_cast<size_t>(s) * num_pos;
    for (size_t o = 0; o < num_pos; ++o) rate[o] += row[o];
  }
  return rate;
}

}  // namespace

PartialDuplicationResult build_partial_duplication(
    const Network& mapped, double target_coverage,
    const PartialDuplicationOptions& options) {
  trace::Span span("baseline.partial_dup");
  PartialDuplicationResult result;

  // A wire-only circuit has no gate-level fault sites; both campaigns must
  // degrade to zero counts instead of sampling from an empty list.
  std::vector<StuckFault> faults = enumerate_faults(mapped);

  // Rank POs by their error contribution (per-output error rate).
  std::vector<int64_t> rate = output_error_counts(mapped, faults, options);
  std::vector<int> ranked(mapped.num_pos());
  std::iota(ranked.begin(), ranked.end(), 0);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [&](int a, int b) { return rate[a] > rate[b]; });

  // Prefix coverage from one fault-injection pass; select the shortest
  // prefix reaching the target.
  RankHistogram hist = rank_histogram(mapped, ranked, faults, options);
  int64_t covered = 0;
  size_t chosen = ranked.size();
  for (size_t k = 0; k < ranked.size(); ++k) {
    covered += hist.first_error_at_rank[k];
    double coverage =
        hist.erroneous > 0
            ? static_cast<double>(covered) / static_cast<double>(hist.erroneous)
            : 0.0;
    if (coverage >= target_coverage) {
      chosen = k + 1;
      result.estimated_coverage = coverage;
      break;
    }
    result.estimated_coverage = coverage;
  }
  result.duplicated_pos.assign(ranked.begin(),
                               ranked.begin() + static_cast<long>(chosen));

  // Predictor: a copy of the circuit keeping only the duplicated POs (cone
  // sharing is preserved).
  Network predictor = mapped;
  {
    Network pruned;
    pruned.set_name(mapped.name() + "_pdup");
    std::vector<NodeId> pi_map;
    for (NodeId pi : mapped.pis()) {
      pi_map.push_back(pruned.add_pi(mapped.node(pi).name));
    }
    std::vector<NodeId> map = mapped.append_into(pruned, pi_map);
    for (int po : result.duplicated_pos) {
      pruned.add_po(mapped.po(po).name, map[mapped.po(po).driver]);
    }
    pruned.cleanup();
    predictor = std::move(pruned);
  }
  // Checker indices inside the predictor follow selection order.
  std::vector<int> predictor_pos(result.duplicated_pos.size());
  std::iota(predictor_pos.begin(), predictor_pos.end(), 0);

  // build_duplication_ced wants matching po indices between original and
  // predictor; construct the pairs directly.
  CedDesign ced;
  ced.design.set_name(mapped.name() + "_pdup_ced");
  std::vector<NodeId> pi_map;
  for (NodeId pi : mapped.pis()) {
    pi_map.push_back(ced.design.add_pi(mapped.node(pi).name));
  }
  int before = ced.design.num_nodes();
  std::vector<NodeId> omap = mapped.append_into(ced.design, pi_map);
  for (NodeId id = before; id < ced.design.num_nodes(); ++id) {
    if (ced.design.node(id).kind == NodeKind::kLogic) {
      ced.functional_nodes.push_back(id);
    }
  }
  before = ced.design.num_nodes();
  std::vector<NodeId> pmap = predictor.append_into(ced.design, pi_map);
  for (NodeId id = before; id < ced.design.num_nodes(); ++id) {
    if (ced.design.node(id).kind == NodeKind::kLogic) {
      ced.checkgen_nodes.push_back(id);
    }
  }
  for (int o = 0; o < mapped.num_pos(); ++o) {
    NodeId drv = omap[mapped.po(o).driver];
    ced.functional_outputs.push_back(drv);
    ced.design.add_po(mapped.po(o).name, drv);
  }
  before = ced.design.num_nodes();
  std::vector<TwoRail> pairs;
  for (size_t k = 0; k < result.duplicated_pos.size(); ++k) {
    NodeId a = omap[mapped.po(result.duplicated_pos[k]).driver];
    NodeId b = pmap[predictor.po(static_cast<int>(k)).driver];
    pairs.push_back(build_equality_checker(ced.design, a, b));
  }
  ced.error_pair = build_two_rail_tree(ced.design, std::move(pairs));
  for (NodeId id = before; id < ced.design.num_nodes(); ++id) {
    if (ced.design.node(id).kind == NodeKind::kLogic) {
      ced.checker_nodes.push_back(id);
    }
  }
  ced.design.add_po("err_rail1", ced.error_pair.rail1);
  ced.design.add_po("err_rail2", ced.error_pair.rail2);
  ced.design.check();
  result.ced = std::move(ced);
  return result;
}

}  // namespace apx
