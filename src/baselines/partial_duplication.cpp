#include "baselines/partial_duplication.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <random>

#include "sim/simulator.hpp"

namespace apx {
namespace {

// For POs ordered by rank, returns hist[k] = number of runs whose first
// erroneous PO (by rank) is rank k, plus the total erroneous-run count.
// Prefix-coverage(k) = sum(hist[0..k-1]) / erroneous.
struct RankHistogram {
  std::vector<int64_t> first_error_at_rank;
  int64_t erroneous = 0;
};

RankHistogram rank_histogram(const Network& net,
                             const std::vector<int>& ranked_pos,
                             const PartialDuplicationOptions& options) {
  RankHistogram hist;
  hist.first_error_at_rank.assign(ranked_pos.size(), 0);
  std::vector<StuckFault> faults = enumerate_faults(net);
  if (faults.empty()) return hist;
  std::mt19937_64 rng(options.seed);
  Simulator sim(net);
  for (int s = 0; s < options.num_fault_samples; ++s) {
    const StuckFault& fault = faults[rng() % faults.size()];
    PatternSet patterns =
        PatternSet::random(net.num_pis(), options.words_per_fault, rng());
    sim.run(patterns);
    sim.inject(fault);
    for (int w = 0; w < options.words_per_fault; ++w) {
      uint64_t remaining = ~0ULL;
      uint64_t any = 0;
      for (size_t k = 0; k < ranked_pos.size(); ++k) {
        NodeId drv = net.po(ranked_pos[k]).driver;
        uint64_t err = sim.value(drv)[w] ^ sim.faulty_value(drv)[w];
        any |= err;
        uint64_t first_here = err & remaining;
        hist.first_error_at_rank[k] += std::popcount(first_here);
        remaining &= ~err;
      }
      hist.erroneous += std::popcount(any);
    }
  }
  return hist;
}

}  // namespace

PartialDuplicationResult build_partial_duplication(
    const Network& mapped, double target_coverage,
    const PartialDuplicationOptions& options) {
  PartialDuplicationResult result;

  // Rank POs by their error contribution (per-output error rate).
  std::vector<double> rate(mapped.num_pos(), 0.0);
  {
    std::vector<StuckFault> faults = enumerate_faults(mapped);
    std::mt19937_64 rng(options.seed ^ 0xABCD);
    Simulator sim(mapped);
    for (int s = 0; s < options.num_fault_samples; ++s) {
      const StuckFault& fault = faults[rng() % faults.size()];
      PatternSet patterns =
          PatternSet::random(mapped.num_pis(), options.words_per_fault, rng());
      sim.run(patterns);
      sim.inject(fault);
      for (int o = 0; o < mapped.num_pos(); ++o) {
        NodeId drv = mapped.po(o).driver;
        for (int w = 0; w < options.words_per_fault; ++w) {
          rate[o] += std::popcount(sim.value(drv)[w] ^
                                   sim.faulty_value(drv)[w]);
        }
      }
    }
  }
  std::vector<int> ranked(mapped.num_pos());
  std::iota(ranked.begin(), ranked.end(), 0);
  std::sort(ranked.begin(), ranked.end(),
            [&](int a, int b) { return rate[a] > rate[b]; });

  // Prefix coverage from one fault-injection pass; select the shortest
  // prefix reaching the target.
  RankHistogram hist = rank_histogram(mapped, ranked, options);
  int64_t covered = 0;
  size_t chosen = ranked.size();
  for (size_t k = 0; k < ranked.size(); ++k) {
    covered += hist.first_error_at_rank[k];
    double coverage =
        hist.erroneous > 0
            ? static_cast<double>(covered) / static_cast<double>(hist.erroneous)
            : 0.0;
    if (coverage >= target_coverage) {
      chosen = k + 1;
      result.estimated_coverage = coverage;
      break;
    }
    result.estimated_coverage = coverage;
  }
  result.duplicated_pos.assign(ranked.begin(),
                               ranked.begin() + static_cast<long>(chosen));

  // Predictor: a copy of the circuit keeping only the duplicated POs (cone
  // sharing is preserved).
  Network predictor = mapped;
  {
    Network pruned;
    pruned.set_name(mapped.name() + "_pdup");
    std::vector<NodeId> pi_map;
    for (NodeId pi : mapped.pis()) {
      pi_map.push_back(pruned.add_pi(mapped.node(pi).name));
    }
    std::vector<NodeId> map = mapped.append_into(pruned, pi_map);
    for (int po : result.duplicated_pos) {
      pruned.add_po(mapped.po(po).name, map[mapped.po(po).driver]);
    }
    pruned.cleanup();
    predictor = std::move(pruned);
  }
  // Checker indices inside the predictor follow selection order.
  std::vector<int> predictor_pos(result.duplicated_pos.size());
  std::iota(predictor_pos.begin(), predictor_pos.end(), 0);

  // build_duplication_ced wants matching po indices between original and
  // predictor; construct the pairs directly.
  CedDesign ced;
  ced.design.set_name(mapped.name() + "_pdup_ced");
  std::vector<NodeId> pi_map;
  for (NodeId pi : mapped.pis()) {
    pi_map.push_back(ced.design.add_pi(mapped.node(pi).name));
  }
  int before = ced.design.num_nodes();
  std::vector<NodeId> omap = mapped.append_into(ced.design, pi_map);
  for (NodeId id = before; id < ced.design.num_nodes(); ++id) {
    if (ced.design.node(id).kind == NodeKind::kLogic) {
      ced.functional_nodes.push_back(id);
    }
  }
  before = ced.design.num_nodes();
  std::vector<NodeId> pmap = predictor.append_into(ced.design, pi_map);
  for (NodeId id = before; id < ced.design.num_nodes(); ++id) {
    if (ced.design.node(id).kind == NodeKind::kLogic) {
      ced.checkgen_nodes.push_back(id);
    }
  }
  for (int o = 0; o < mapped.num_pos(); ++o) {
    NodeId drv = omap[mapped.po(o).driver];
    ced.functional_outputs.push_back(drv);
    ced.design.add_po(mapped.po(o).name, drv);
  }
  before = ced.design.num_nodes();
  std::vector<TwoRail> pairs;
  for (size_t k = 0; k < result.duplicated_pos.size(); ++k) {
    NodeId a = omap[mapped.po(result.duplicated_pos[k]).driver];
    NodeId b = pmap[predictor.po(static_cast<int>(k)).driver];
    pairs.push_back(build_equality_checker(ced.design, a, b));
  }
  ced.error_pair = build_two_rail_tree(ced.design, std::move(pairs));
  for (NodeId id = before; id < ced.design.num_nodes(); ++id) {
    if (ced.design.node(id).kind == NodeKind::kLogic) {
      ced.checker_nodes.push_back(id);
    }
  }
  ced.design.add_po("err_rail1", ced.error_pair.rail1);
  ced.design.add_po("err_rail2", ced.error_pair.rail2);
  ced.design.check();
  result.ced = std::move(ced);
  return result;
}

}  // namespace apx
