#include "baselines/parity.hpp"

#include "mapping/optimize.hpp"

namespace apx {
namespace {

// Balanced XOR tree over `sigs` (each XOR2 is a library-mapped pair later;
// here the nodes are plain XOR2 gates, already primitive).
NodeId xor_tree(Network& net, std::vector<NodeId> sigs) {
  if (sigs.empty()) return net.add_const(false);
  while (sigs.size() > 1) {
    std::vector<NodeId> next;
    for (size_t i = 0; i + 1 < sigs.size(); i += 2) {
      next.push_back(net.add_xor(sigs[i], sigs[i + 1]));
    }
    if (sigs.size() % 2) next.push_back(sigs.back());
    sigs = std::move(next);
  }
  return sigs[0];
}

}  // namespace

Network build_parity_predictor(const Network& mapped,
                               const ParityOptions& options) {
  // Predictor = copy of the circuit + XOR tree over its outputs, collapsed
  // to a single PO, then optionally re-optimized and re-mapped.
  Network pred;
  pred.set_name(mapped.name() + "_parity_pred");
  std::vector<NodeId> pi_map;
  for (NodeId pi : mapped.pis()) {
    pi_map.push_back(pred.add_pi(mapped.node(pi).name));
  }
  std::vector<NodeId> map = mapped.append_into(pred, pi_map);
  std::vector<NodeId> outs;
  for (const PrimaryOutput& po : mapped.pos()) {
    outs.push_back(map[po.driver]);
  }
  pred.add_po("parity", xor_tree(pred, std::move(outs)));
  pred.cleanup();
  if (options.optimize_predictor) pred = quick_synthesis(pred);
  return technology_map(pred, options.map_options);
}

CedDesign build_parity_ced(const Network& mapped,
                           const ParityOptions& options) {
  Network predictor = build_parity_predictor(mapped, options);

  CedDesign ced;
  ced.design.set_name(mapped.name() + "_parity_ced");
  std::vector<NodeId> pi_map;
  for (NodeId pi : mapped.pis()) {
    pi_map.push_back(ced.design.add_pi(mapped.node(pi).name));
  }
  int before = ced.design.num_nodes();
  std::vector<NodeId> omap = mapped.append_into(ced.design, pi_map);
  for (NodeId id = before; id < ced.design.num_nodes(); ++id) {
    if (ced.design.node(id).kind == NodeKind::kLogic) {
      ced.functional_nodes.push_back(id);
    }
  }
  before = ced.design.num_nodes();
  std::vector<NodeId> pmap = predictor.append_into(ced.design, pi_map);
  for (NodeId id = before; id < ced.design.num_nodes(); ++id) {
    if (ced.design.node(id).kind == NodeKind::kLogic) {
      ced.checkgen_nodes.push_back(id);
    }
  }
  for (int o = 0; o < mapped.num_pos(); ++o) {
    NodeId drv = omap[mapped.po(o).driver];
    ced.functional_outputs.push_back(drv);
    ced.design.add_po(mapped.po(o).name, drv);
  }

  // Checker side: parity tree over the functional outputs + comparator.
  before = ced.design.num_nodes();
  NodeId actual_parity = xor_tree(ced.design, ced.functional_outputs);
  NodeId predicted = pmap[predictor.po(0).driver];
  ced.error_pair = build_equality_checker(ced.design, actual_parity, predicted);
  for (NodeId id = before; id < ced.design.num_nodes(); ++id) {
    if (ced.design.node(id).kind == NodeKind::kLogic) {
      ced.checker_nodes.push_back(id);
    }
  }
  ced.design.add_po("err_rail1", ced.error_pair.rail1);
  ced.design.add_po("err_rail2", ced.error_pair.rail2);
  ced.design.check();
  return ced;
}

}  // namespace apx
