// Single-bit parity-prediction CED baseline (paper Sec. 4, Table 2): a
// parity predictor computes the XOR of all output functions directly from
// the primary inputs; an output parity tree plus a comparator checks it.
// Detects any error flipping an odd number of outputs; costs roughly a full
// duplicate of the circuit plus two XOR trees (the paper reports ~106% area
// and ~97% power overhead, with a longer critical path).
#pragma once

#include "core/ced.hpp"
#include "mapping/mapper.hpp"
#include "network/network.hpp"

namespace apx {

struct ParityOptions {
  /// Library/script used to map the predictor (XOR trees decompose into
  /// the library's gates).
  MapOptions map_options;
  /// Run quick synthesis on the predictor cone before mapping.
  bool optimize_predictor = true;
};

/// Builds the parity-prediction CED design around a mapped circuit.
CedDesign build_parity_ced(const Network& mapped,
                           const ParityOptions& options = {});

/// The standalone parity-predictor network (single PO = XOR of all POs),
/// mapped with the given options. Exposed for delay studies (paper: parity
/// prediction lengthens the critical path by ~51%).
Network build_parity_predictor(const Network& mapped,
                               const ParityOptions& options = {});

}  // namespace apx
