// Partial-duplication CED baseline (Mohanram & Touba, ITC 2003 [10] in the
// paper): duplicate the output cones that contribute most to the soft-error
// rate and compare the duplicated outputs with equality checkers. The paper
// uses it as the intrusive state-of-the-art whose coverage is matched at
// lower cost by approximate-logic CED (Table 2).
#pragma once

#include <vector>

#include "core/ced.hpp"
#include "network/network.hpp"

namespace apx {

struct PartialDuplicationOptions {
  /// Fault-injection budget for ranking outputs / estimating coverage.
  int num_fault_samples = 1000;
  int words_per_fault = 4;
  /// Fault model driving both selection campaigns (output ranking and
  /// prefix coverage). kSingleStuckAt takes the exact legacy code path
  /// (bit-identical selections); the other models use the engine's stock
  /// samplers over the logic nodes.
  FaultModel model = FaultModel::kSingleStuckAt;
  /// Simultaneous stuck-at sites per sample under kMultiStuckAt.
  int sites_per_fault = 2;
  /// Forced vector-window length under kTransientBurst.
  int burst_vectors = 16;
  /// Fault samples amortizing one shared golden simulation in the
  /// FaultSimEngine (see src/sim/fault_engine.hpp).
  int faults_per_batch = 64;
  /// Parallelism cap on the shared task pool; 0 = apx::thread_count()
  /// (APX_THREADS policy). Selection is bit-identical for any value.
  int num_threads = 0;
  uint64_t seed = 0xD0B1;
};

struct PartialDuplicationResult {
  CedDesign ced;
  /// Indices of duplicated POs, in selection order.
  std::vector<int> duplicated_pos;
  /// Coverage estimate (fraction of erroneous runs visible at duplicated
  /// outputs) used during selection.
  double estimated_coverage = 0.0;
};

/// Duplicates output cones, most error-prone first, until the estimated
/// coverage reaches `target_coverage` (or all POs are duplicated).
PartialDuplicationResult build_partial_duplication(
    const Network& mapped, double target_coverage,
    const PartialDuplicationOptions& options = {});

}  // namespace apx
