#include "sat/solver.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/trace.hpp"

namespace apx {

int SatSolver::new_var() {
  int v = num_vars();
  assign_.push_back(Value::kUndef);
  level_.push_back(0);
  reason_.push_back(kNoReason);
  activity_.push_back(0.0);
  polarity_.push_back(false);
  seen_.push_back(false);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_pos_.push_back(-1);
  heap_insert(v);
  return v;
}

void SatSolver::heap_sift_up(int i) {
  int var = heap_[i];
  while (i > 0) {
    int parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[var]) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = var;
  heap_pos_[var] = i;
}

void SatSolver::heap_sift_down(int i) {
  int var = heap_[i];
  int size = static_cast<int>(heap_.size());
  while (true) {
    int child = 2 * i + 1;
    if (child >= size) break;
    if (child + 1 < size &&
        activity_[heap_[child + 1]] > activity_[heap_[child]]) {
      ++child;
    }
    if (activity_[heap_[child]] <= activity_[var]) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = i;
    i = child;
  }
  heap_[i] = var;
  heap_pos_[var] = i;
}

void SatSolver::heap_insert(int var) {
  if (heap_pos_[var] >= 0) return;
  heap_.push_back(var);
  heap_pos_[var] = static_cast<int>(heap_.size()) - 1;
  heap_sift_up(heap_pos_[var]);
}

void SatSolver::heap_update(int var) {
  if (heap_pos_[var] >= 0) heap_sift_up(heap_pos_[var]);
}

int SatSolver::heap_pop_undef() {
  while (!heap_.empty()) {
    int var = heap_[0];
    heap_[0] = heap_.back();
    heap_pos_[heap_[0]] = 0;
    heap_.pop_back();
    heap_pos_[var] = -1;
    if (!heap_.empty()) heap_sift_down(0);
    if (assign_[var] == Value::kUndef) return var;
  }
  return -1;
}

bool SatSolver::add_clause(std::vector<Lit> lits) {
  if (unsat_) return false;
  // solve() leaves its final trail in place (so model_value works); clause
  // addition reasons about root-level truth, so undo any leftover
  // decision levels first. This matters for incremental use, where
  // clauses arrive between solve() calls.
  if (!trail_lim_.empty()) backtrack(0);
  // Remove duplicates; detect tautologies; drop false literals at level 0.
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.code < b.code; });
  std::vector<Lit> cleaned;
  for (size_t i = 0; i < lits.size(); ++i) {
    if (i > 0 && lits[i] == lits[i - 1]) continue;
    if (i > 0 && lits[i].var() == lits[i - 1].var()) return true;  // taut
    if (value(lits[i]) == Value::kTrue && level_[lits[i].var()] == 0)
      return true;  // satisfied at root
    if (value(lits[i]) == Value::kFalse && level_[lits[i].var()] == 0)
      continue;  // false at root: drop
    cleaned.push_back(lits[i]);
  }
  if (cleaned.empty()) {
    unsat_ = true;
    return false;
  }
  if (cleaned.size() == 1) {
    if (value(cleaned[0]) == Value::kUndef) {
      enqueue(cleaned[0], kNoReason);
      if (propagate() != kNoReason) {
        unsat_ = true;
        return false;
      }
    } else if (value(cleaned[0]) == Value::kFalse) {
      unsat_ = true;
      return false;
    }
    return true;
  }
  Clause c;
  c.lits = std::move(cleaned);
  clauses_.push_back(std::move(c));
  attach_clause(static_cast<ClauseRef>(clauses_.size()) - 1);
  return true;
}

void SatSolver::attach_clause(ClauseRef cr) {
  const Clause& c = clauses_[cr];
  watches_[c.lits[0].code].push_back(cr);
  watches_[c.lits[1].code].push_back(cr);
}

void SatSolver::enqueue(Lit l, ClauseRef reason) {
  assert(value(l) == Value::kUndef);
  assign_[l.var()] = l.negated() ? Value::kFalse : Value::kTrue;
  level_[l.var()] = static_cast<int>(trail_lim_.size());
  reason_[l.var()] = reason;
  polarity_[l.var()] = !l.negated();
  trail_.push_back(l);
}

SatSolver::ClauseRef SatSolver::propagate() {
  while (prop_head_ < trail_.size()) {
    Lit p = trail_[prop_head_++];
    // Clauses watching ~p must be updated.
    std::vector<ClauseRef>& watchers = watches_[(~p).code];
    size_t keep = 0;
    for (size_t i = 0; i < watchers.size(); ++i) {
      ClauseRef cr = watchers[i];
      Clause& c = clauses_[cr];
      // Ensure the false literal is at position 1.
      Lit false_lit = ~p;
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      // If first watch is true, clause is satisfied.
      if (value(c.lits[0]) == Value::kTrue) {
        watchers[keep++] = cr;
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != Value::kFalse) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[c.lits[1].code].push_back(cr);
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Unit or conflict.
      watchers[keep++] = cr;
      if (value(c.lits[0]) == Value::kFalse) {
        // Conflict: keep remaining watchers and report.
        for (size_t j = i + 1; j < watchers.size(); ++j) {
          watchers[keep++] = watchers[j];
        }
        watchers.resize(keep);
        prop_head_ = trail_.size();
        return cr;
      }
      enqueue(c.lits[0], cr);
    }
    watchers.resize(keep);
  }
  return kNoReason;
}

void SatSolver::bump_var(int var) {
  activity_[var] += var_inc_;
  if (activity_[var] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
    // Rescaling preserves the heap order: no fix-up needed.
  }
  heap_update(var);
}

void SatSolver::decay_var_activity() { var_inc_ /= 0.95; }

void SatSolver::analyze(ClauseRef conflict, std::vector<Lit>& learnt,
                        int& bt_level) {
  learnt.clear();
  learnt.push_back(Lit());  // placeholder for the asserting literal
  int counter = 0;
  Lit p;
  p.code = -2;
  int index = static_cast<int>(trail_.size()) - 1;
  int current_level = static_cast<int>(trail_lim_.size());
  ClauseRef reason = conflict;

  std::vector<int> to_clear;
  do {
    assert(reason != kNoReason);
    Clause& c = clauses_[reason];
    if (c.learnt) c.activity += 1.0;
    for (Lit q : c.lits) {
      if (q == p) continue;
      int v = q.var();
      if (!seen_[v] && level_[v] > 0) {
        seen_[v] = true;
        to_clear.push_back(v);
        bump_var(v);
        if (level_[v] >= current_level) {
          ++counter;
        } else {
          learnt.push_back(q);
        }
      }
    }
    // Select next literal to expand from the trail.
    while (!seen_[trail_[index].var()]) --index;
    p = trail_[index];
    reason = reason_[p.var()];
    seen_[p.var()] = false;
    --index;
    --counter;
  } while (counter > 0);
  learnt[0] = ~p;

  // Compute backtrack level (second highest level in the clause).
  bt_level = 0;
  if (learnt.size() > 1) {
    size_t max_i = 1;
    for (size_t i = 2; i < learnt.size(); ++i) {
      if (level_[learnt[i].var()] > level_[learnt[max_i].var()]) max_i = i;
    }
    std::swap(learnt[1], learnt[max_i]);
    bt_level = level_[learnt[1].var()];
  }
  for (int v : to_clear) seen_[v] = false;
}

void SatSolver::backtrack(int target_level) {
  while (static_cast<int>(trail_lim_.size()) > target_level) {
    size_t lim = trail_lim_.back();
    trail_lim_.pop_back();
    while (trail_.size() > lim) {
      Lit l = trail_.back();
      trail_.pop_back();
      assign_[l.var()] = Value::kUndef;
      reason_[l.var()] = kNoReason;
      heap_insert(l.var());
    }
  }
  prop_head_ = trail_.size();
}

Lit SatSolver::pick_branch() {
  int best = heap_pop_undef();
  if (best < 0) {
    Lit l;
    l.code = -2;
    return l;
  }
  return Lit(best, !polarity_[best]);
}

void SatSolver::reduce_learnts() {
  // Drop the lower-activity half of long learnt clauses. Rebuild watches.
  std::vector<Clause> kept;
  std::vector<std::pair<double, size_t>> learnt_scores;
  for (size_t i = 0; i < clauses_.size(); ++i) {
    if (clauses_[i].learnt && clauses_[i].lits.size() > 2) {
      learnt_scores.push_back({clauses_[i].activity, i});
    }
  }
  if (learnt_scores.size() < 2000) return;
  std::sort(learnt_scores.begin(), learnt_scores.end());
  std::vector<bool> drop(clauses_.size(), false);
  for (size_t i = 0; i < learnt_scores.size() / 2; ++i) {
    size_t ci = learnt_scores[i].second;
    // Do not drop reason clauses of current assignments.
    bool is_reason = false;
    for (Lit l : clauses_[ci].lits) {
      if (reason_[l.var()] == static_cast<ClauseRef>(ci) &&
          assign_[l.var()] != Value::kUndef) {
        is_reason = true;
        break;
      }
    }
    if (!is_reason) drop[ci] = true;
  }
  std::vector<int32_t> remap(clauses_.size(), -1);
  for (size_t i = 0; i < clauses_.size(); ++i) {
    if (!drop[i]) {
      remap[i] = static_cast<int32_t>(kept.size());
      kept.push_back(std::move(clauses_[i]));
    }
  }
  clauses_ = std::move(kept);
  for (auto& w : watches_) w.clear();
  for (size_t i = 0; i < clauses_.size(); ++i) {
    attach_clause(static_cast<ClauseRef>(i));
  }
  for (int v = 0; v < num_vars(); ++v) {
    if (reason_[v] != kNoReason) reason_[v] = remap[reason_[v]];
  }
}

int64_t SatSolver::luby(int64_t i) {
  // Luby sequence (0-based): 1 1 2 1 1 2 4 1 1 2 ...
  int64_t size = 1;
  int64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i %= size;
  }
  return 1LL << seq;
}

SatResult SatSolver::solve(const std::vector<Lit>& assumptions,
                           int64_t conflict_budget) {
  // Per-call deltas fold into the trace registry on every return path.
  struct TracePublish {
    const SatSolver* s;
    int64_t conflicts0, decisions0;
    ~TracePublish() {
      if (!trace::enabled()) return;
      trace::counter("sat.solves").add(1);
      trace::counter("sat.conflicts").add(s->conflicts_total_ - conflicts0);
      trace::counter("sat.decisions").add(s->decisions_total_ - decisions0);
    }
  } publish{this, conflicts_total_, decisions_total_};

  if (unsat_) return SatResult::kUnsat;
  backtrack(0);
  if (propagate() != kNoReason) {
    unsat_ = true;
    return SatResult::kUnsat;
  }

  int64_t conflicts_this_call = 0;
  int64_t restart_count = 0;
  int64_t restart_limit = 100 * luby(restart_count);

  while (true) {
    ClauseRef conflict = propagate();
    if (conflict != kNoReason) {
      ++conflicts_total_;
      ++conflicts_this_call;
      if (trail_lim_.empty()) {
        unsat_ = true;
        return SatResult::kUnsat;
      }
      std::vector<Lit> learnt;
      int bt_level = 0;
      analyze(conflict, learnt, bt_level);
      // Never backtrack past the assumption levels.
      int assumption_levels = 0;
      for (size_t i = 0; i < trail_lim_.size() && i < assumptions.size(); ++i)
        ++assumption_levels;
      if (bt_level < assumption_levels) {
        // Conflict depends on assumptions only -> UNSAT under assumptions.
        if (bt_level == 0 && learnt.size() == 1 &&
            level_[learnt[0].var()] == 0) {
          // genuinely root-level implied; fall through
        }
        backtrack(bt_level);
      } else {
        backtrack(bt_level);
      }
      if (learnt.size() == 1) {
        if (value(learnt[0]) == Value::kFalse) {
          unsat_ = trail_lim_.empty();
          if (unsat_) return SatResult::kUnsat;
          // Conflicts with an assumption.
          return SatResult::kUnsat;
        }
        if (value(learnt[0]) == Value::kUndef) enqueue(learnt[0], kNoReason);
      } else {
        Clause c;
        c.lits = std::move(learnt);
        c.learnt = true;
        clauses_.push_back(std::move(c));
        ClauseRef cr = static_cast<ClauseRef>(clauses_.size()) - 1;
        attach_clause(cr);
        if (value(clauses_[cr].lits[0]) == Value::kUndef) {
          enqueue(clauses_[cr].lits[0], cr);
        }
      }
      decay_var_activity();
      if (conflict_budget >= 0 && conflicts_this_call > conflict_budget) {
        backtrack(0);
        return SatResult::kUnknown;
      }
      if (conflicts_this_call > restart_limit) {
        ++restart_count;
        restart_limit =
            conflicts_this_call + 100 * luby(restart_count);
        backtrack(0);
        reduce_learnts();
      }
      continue;
    }

    // Place assumptions first.
    if (trail_lim_.size() < assumptions.size()) {
      Lit a = assumptions[trail_lim_.size()];
      if (value(a) == Value::kTrue) {
        trail_lim_.push_back(trail_.size());  // dummy decision level
        continue;
      }
      if (value(a) == Value::kFalse) {
        return SatResult::kUnsat;  // assumptions contradictory
      }
      trail_lim_.push_back(trail_.size());
      enqueue(a, kNoReason);
      continue;
    }

    Lit next = pick_branch();
    if (next.code < 0) return SatResult::kSat;
    ++decisions_total_;
    trail_lim_.push_back(trail_.size());
    enqueue(next, kNoReason);
  }
}

bool SatSolver::model_value(int var) const {
  return assign_[var] == Value::kTrue;
}

}  // namespace apx
