#include "sat/encode.hpp"

#include <optional>
#include <stdexcept>

namespace apx {

namespace {
thread_local uint64_t g_last_cex = 0;

// Emits the Tseitin clauses defining `out_var` <-> n's SOP over the fanin
// variables in `var_of`. When `guard` is set (the negation of an
// activation literal) it is appended to every clause, so the definition
// only binds while the activation literal is assumed.
void encode_node_clauses(SatSolver& solver, const Node& n,
                         const std::vector<int>& var_of, int out_var,
                         std::optional<Lit> guard) {
  auto add = [&](std::vector<Lit> lits) {
    if (guard.has_value()) lits.push_back(*guard);
    solver.add_clause(std::move(lits));
  };
  Lit out(out_var, false);
  if (n.kind == NodeKind::kConst0) {
    add({~out});
    return;
  }
  if (n.kind == NodeKind::kConst1) {
    add({out});
    return;
  }
  // node <-> OR of cube variables; cube <-> AND of literals.
  const Sop& sop = n.sop;
  if (sop.empty()) {
    add({~out});
    return;
  }
  std::vector<Lit> or_clause;  // (~out | c1 | c2 | ...)
  or_clause.push_back(~out);
  for (const Cube& c : sop.cubes()) {
    // Gather cube literals over fanin SAT vars.
    std::vector<Lit> cube_lits;
    for (int k = 0; k < sop.num_vars(); ++k) {
      LitCode code = c.get(k);
      if (code == LitCode::kFree) continue;
      cube_lits.push_back(Lit(var_of[n.fanins[k]], code == LitCode::kNeg));
    }
    if (cube_lits.empty()) {
      // Full cube: node is constant 1.
      add({out});
      or_clause.clear();
      break;
    }
    if (cube_lits.size() == 1) {
      // cube var == the literal itself.
      Lit cl = cube_lits[0];
      add({~cl, out});  // cube -> out
      or_clause.push_back(cl);
      continue;
    }
    int cv = solver.new_var();
    Lit cl(cv, false);
    // cl -> each literal.
    for (Lit l : cube_lits) add({~cl, l});
    // all literals -> cl.
    std::vector<Lit> rev;
    for (Lit l : cube_lits) rev.push_back(~l);
    rev.push_back(cl);
    add(std::move(rev));
    // cube -> out.
    add({~cl, out});
    or_clause.push_back(cl);
  }
  if (!or_clause.empty()) {
    add(std::move(or_clause));
  }
}

}  // namespace

std::vector<int> encode_network(SatSolver& solver, const Network& net,
                                const std::vector<int>& pi_vars) {
  if (pi_vars.size() != static_cast<size_t>(net.num_pis())) {
    throw std::logic_error("encode_network: pi_vars size mismatch");
  }
  std::vector<int> var_of(net.num_nodes(), -1);
  for (int i = 0; i < net.num_pis(); ++i) var_of[net.pis()[i]] = pi_vars[i];

  for (NodeId id : net.topo_order()) {
    const Node& n = net.node(id);
    if (n.kind == NodeKind::kPi) continue;
    int v = solver.new_var();
    var_of[id] = v;
    encode_node_clauses(solver, n, var_of, v, std::nullopt);
  }
  return var_of;
}

IncrementalEncoding encode_network_incremental(
    SatSolver& solver, const Network& net, const std::vector<int>& pi_vars) {
  if (pi_vars.size() != static_cast<size_t>(net.num_pis())) {
    throw std::logic_error(
        "encode_network_incremental: pi_vars size mismatch");
  }
  IncrementalEncoding enc;
  enc.node_var.assign(net.num_nodes(), -1);
  enc.node_act.assign(net.num_nodes(), -1);
  for (int i = 0; i < net.num_pis(); ++i) {
    enc.node_var[net.pis()[i]] = pi_vars[i];
  }
  // The initial encoding is unguarded: activation literals are introduced
  // only when a definition is superseded (reencode_nodes), so the number
  // of per-solve assumptions tracks the churned set, not the network.
  for (NodeId id : net.topo_order()) {
    const Node& n = net.node(id);
    if (n.kind == NodeKind::kPi) continue;
    int v = solver.new_var();
    enc.node_var[id] = v;
    encode_node_clauses(solver, n, enc.node_var, v, std::nullopt);
  }
  return enc;
}

void reencode_nodes(SatSolver& solver, const Network& net,
                    const std::vector<NodeId>& nodes,
                    IncrementalEncoding& enc) {
  std::vector<bool> selected(net.num_nodes(), false);
  for (NodeId id : nodes) selected[id] = true;
  for (NodeId id : net.topo_order()) {
    if (!selected[id]) continue;
    const Node& n = net.node(id);
    if (n.kind == NodeKind::kPi) continue;
    // Retire a guarded old definition: the unit permanently satisfies
    // every clause carrying the old guard, including learned clauses
    // derived under it — the rest of the learned store stays live. An
    // unguarded old definition (from the initial encoding) needs no
    // retirement: it keeps pinning its now-dead output variable, which
    // nothing references once the fanout closure is re-encoded.
    if (enc.node_act[id] >= 0) {
      solver.add_unit(Lit(enc.node_act[id], true));
    }
    int v = solver.new_var();
    int act = solver.new_var();
    enc.node_var[id] = v;
    enc.node_act[id] = act;
    encode_node_clauses(solver, n, enc.node_var, v, Lit(act, true));
  }
}

void activation_assumptions(const IncrementalEncoding& enc,
                            std::vector<Lit>& out) {
  for (int act : enc.node_act) {
    if (act >= 0) out.push_back(Lit(act, false));
  }
}

namespace {

CheckResult run_check(const Network& a, int po_a, const Network& b, int po_b,
                      bool check_equivalence, int64_t conflict_budget) {
  if (a.num_pis() != b.num_pis()) {
    throw std::logic_error("miter check: PI count mismatch");
  }
  SatSolver solver;
  std::vector<int> pi_vars;
  for (int i = 0; i < a.num_pis(); ++i) pi_vars.push_back(solver.new_var());
  std::vector<int> va = encode_network(solver, a, pi_vars);
  std::vector<int> vb = encode_network(solver, b, pi_vars);
  Lit fa(va[a.po(po_a).driver], false);
  Lit fb(vb[b.po(po_b).driver], false);

  auto finish = [&](SatResult r) {
    switch (r) {
      case SatResult::kUnsat:
        return CheckResult::kHolds;
      case SatResult::kUnknown:
        return CheckResult::kUnknown;
      case SatResult::kSat: {
        g_last_cex = 0;
        for (int i = 0; i < a.num_pis() && i < 64; ++i) {
          if (solver.model_value(pi_vars[i])) g_last_cex |= 1ULL << i;
        }
        return CheckResult::kFails;
      }
    }
    return CheckResult::kUnknown;
  };

  if (!check_equivalence) {
    // a & ~b satisfiable <=> implication fails.
    return finish(solver.solve({fa, ~fb}, conflict_budget));
  }
  // Equivalence: check both directions under assumptions.
  CheckResult first = finish(solver.solve({fa, ~fb}, conflict_budget));
  if (first != CheckResult::kHolds) return first;
  return finish(solver.solve({~fa, fb}, conflict_budget));
}

}  // namespace

CheckResult check_po_implication(const Network& a, int po_a, const Network& b,
                                 int po_b, int64_t conflict_budget) {
  return run_check(a, po_a, b, po_b, false, conflict_budget);
}

CheckResult check_po_equivalence(const Network& a, int po_a, const Network& b,
                                 int po_b, int64_t conflict_budget) {
  return run_check(a, po_a, b, po_b, true, conflict_budget);
}

uint64_t last_counterexample() { return g_last_cex; }

}  // namespace apx
