#include "sat/encode.hpp"

#include <stdexcept>

namespace apx {

namespace {
thread_local uint64_t g_last_cex = 0;
}

std::vector<int> encode_network(SatSolver& solver, const Network& net,
                                const std::vector<int>& pi_vars) {
  if (pi_vars.size() != static_cast<size_t>(net.num_pis())) {
    throw std::logic_error("encode_network: pi_vars size mismatch");
  }
  std::vector<int> var_of(net.num_nodes(), -1);
  for (int i = 0; i < net.num_pis(); ++i) var_of[net.pis()[i]] = pi_vars[i];

  for (NodeId id : net.topo_order()) {
    const Node& n = net.node(id);
    if (n.kind == NodeKind::kPi) continue;
    int v = solver.new_var();
    var_of[id] = v;
    Lit out(v, false);
    if (n.kind == NodeKind::kConst0) {
      solver.add_unit(~out);
      continue;
    }
    if (n.kind == NodeKind::kConst1) {
      solver.add_unit(out);
      continue;
    }
    // node <-> OR of cube variables; cube <-> AND of literals.
    const Sop& sop = n.sop;
    if (sop.empty()) {
      solver.add_unit(~out);
      continue;
    }
    std::vector<Lit> or_clause;  // (~out | c1 | c2 | ...)
    or_clause.push_back(~out);
    for (const Cube& c : sop.cubes()) {
      // Gather cube literals over fanin SAT vars.
      std::vector<Lit> cube_lits;
      for (int k = 0; k < sop.num_vars(); ++k) {
        LitCode code = c.get(k);
        if (code == LitCode::kFree) continue;
        cube_lits.push_back(Lit(var_of[n.fanins[k]], code == LitCode::kNeg));
      }
      if (cube_lits.empty()) {
        // Full cube: node is constant 1.
        solver.add_unit(out);
        or_clause.clear();
        break;
      }
      if (cube_lits.size() == 1) {
        // cube var == the literal itself.
        Lit cl = cube_lits[0];
        solver.add_binary(~cl, out);  // cube -> out
        or_clause.push_back(cl);
        continue;
      }
      int cv = solver.new_var();
      Lit cl(cv, false);
      // cl -> each literal.
      for (Lit l : cube_lits) solver.add_binary(~cl, l);
      // all literals -> cl.
      std::vector<Lit> rev;
      for (Lit l : cube_lits) rev.push_back(~l);
      rev.push_back(cl);
      solver.add_clause(std::move(rev));
      // cube -> out.
      solver.add_binary(~cl, out);
      or_clause.push_back(cl);
    }
    if (!or_clause.empty()) {
      solver.add_clause(std::move(or_clause));
    }
  }
  return var_of;
}

namespace {

CheckResult run_check(const Network& a, int po_a, const Network& b, int po_b,
                      bool check_equivalence, int64_t conflict_budget) {
  if (a.num_pis() != b.num_pis()) {
    throw std::logic_error("miter check: PI count mismatch");
  }
  SatSolver solver;
  std::vector<int> pi_vars;
  for (int i = 0; i < a.num_pis(); ++i) pi_vars.push_back(solver.new_var());
  std::vector<int> va = encode_network(solver, a, pi_vars);
  std::vector<int> vb = encode_network(solver, b, pi_vars);
  Lit fa(va[a.po(po_a).driver], false);
  Lit fb(vb[b.po(po_b).driver], false);

  auto finish = [&](SatResult r) {
    switch (r) {
      case SatResult::kUnsat:
        return CheckResult::kHolds;
      case SatResult::kUnknown:
        return CheckResult::kUnknown;
      case SatResult::kSat: {
        g_last_cex = 0;
        for (int i = 0; i < a.num_pis() && i < 64; ++i) {
          if (solver.model_value(pi_vars[i])) g_last_cex |= 1ULL << i;
        }
        return CheckResult::kFails;
      }
    }
    return CheckResult::kUnknown;
  };

  if (!check_equivalence) {
    // a & ~b satisfiable <=> implication fails.
    return finish(solver.solve({fa, ~fb}, conflict_budget));
  }
  // Equivalence: check both directions under assumptions.
  CheckResult first = finish(solver.solve({fa, ~fb}, conflict_budget));
  if (first != CheckResult::kHolds) return first;
  return finish(solver.solve({~fa, fb}, conflict_budget));
}

}  // namespace

CheckResult check_po_implication(const Network& a, int po_a, const Network& b,
                                 int po_b, int64_t conflict_budget) {
  return run_check(a, po_a, b, po_b, false, conflict_budget);
}

CheckResult check_po_equivalence(const Network& a, int po_a, const Network& b,
                                 int po_b, int64_t conflict_budget) {
  return run_check(a, po_a, b, po_b, true, conflict_budget);
}

uint64_t last_counterexample() { return g_last_cex; }

}  // namespace apx
