// Tseitin encoding of networks into CNF, and miter-style combinational
// checks (implication and equivalence between po cones of two networks that
// share primary inputs by position).
#pragma once

#include <vector>

#include "network/network.hpp"
#include "sat/solver.hpp"

namespace apx {

/// Encodes a network into `solver`. `pi_vars` supplies the SAT variable for
/// each PI (shared across networks for miter checks). Returns the SAT
/// variable of each node (index by NodeId; PIs map to pi_vars).
std::vector<int> encode_network(SatSolver& solver, const Network& net,
                                const std::vector<int>& pi_vars);

/// Tri-state answer for budgeted checks.
enum class CheckResult { kHolds, kFails, kUnknown };

/// Checks whether PO `po_a` of `a` implies PO `po_b` of `b` for all inputs
/// (networks must have the same PI count; PIs correspond by position).
/// `conflict_budget` < 0 means unbounded.
CheckResult check_po_implication(const Network& a, int po_a, const Network& b,
                                 int po_b, int64_t conflict_budget = -1);

/// Checks functional equivalence of two PO cones.
CheckResult check_po_equivalence(const Network& a, int po_a, const Network& b,
                                 int po_b, int64_t conflict_budget = -1);

/// If the last check_po_* call on this thread returned kFails, this holds a
/// counterexample input assignment (bit i = PI i).
uint64_t last_counterexample();

}  // namespace apx
