// Tseitin encoding of networks into CNF, and miter-style combinational
// checks (implication and equivalence between po cones of two networks that
// share primary inputs by position).
#pragma once

#include <vector>

#include "network/network.hpp"
#include "sat/solver.hpp"

namespace apx {

/// Encodes a network into `solver`. `pi_vars` supplies the SAT variable for
/// each PI (shared across networks for miter checks). Returns the SAT
/// variable of each node (index by NodeId; PIs map to pi_vars).
std::vector<int> encode_network(SatSolver& solver, const Network& net,
                                const std::vector<int>& pi_vars);

/// Incremental network encoding for solvers that outlive network repairs:
/// a node's function can be superseded in place (reencode_nodes) without
/// resetting the solver — learned clauses survive. Superseding encodes the
/// node under a fresh output variable with a per-node activation literal
/// guarding the new clauses; the previous guarded definition is retired by
/// a unit on its dead activation literal. The initial encoding is
/// unguarded (its definitions are never retired, they just go stale on
/// dead variables), so per-solve assumptions scale with the set of nodes
/// ever re-encoded, not with the network.
struct IncrementalEncoding {
  std::vector<int> node_var;  ///< NodeId -> current SAT output variable
  std::vector<int> node_act;  ///< NodeId -> activation var (-1: unguarded)
};

/// Encodes `net` with activation guards (same clause shape as
/// encode_network otherwise). Every solve() against the encoding must
/// assume the current activation literals (activation_assumptions).
IncrementalEncoding encode_network_incremental(SatSolver& solver,
                                               const Network& net,
                                               const std::vector<int>& pi_vars);

/// Re-encodes `nodes` under fresh output and activation variables and
/// deactivates their previous clauses. `nodes` must be closed under fanout
/// among re-encoded definitions: if a node's function changed, every node
/// on a path from it to a consumed output has to be re-encoded too (their
/// clauses reference the superseded output variables otherwise). Any
/// iteration order is accepted; processing happens in topological order.
void reencode_nodes(SatSolver& solver, const Network& net,
                    const std::vector<NodeId>& nodes,
                    IncrementalEncoding& enc);

/// Appends the activation assumptions of the current encoding to `out`.
void activation_assumptions(const IncrementalEncoding& enc,
                            std::vector<Lit>& out);

/// Tri-state answer for budgeted checks.
enum class CheckResult { kHolds, kFails, kUnknown };

/// Checks whether PO `po_a` of `a` implies PO `po_b` of `b` for all inputs
/// (networks must have the same PI count; PIs correspond by position).
/// `conflict_budget` < 0 means unbounded.
CheckResult check_po_implication(const Network& a, int po_a, const Network& b,
                                 int po_b, int64_t conflict_budget = -1);

/// Checks functional equivalence of two PO cones.
CheckResult check_po_equivalence(const Network& a, int po_a, const Network& b,
                                 int po_b, int64_t conflict_budget = -1);

/// If the last check_po_* call on this thread returned kFails, this holds a
/// counterexample input assignment (bit i = PI i).
uint64_t last_counterexample();

}  // namespace apx
