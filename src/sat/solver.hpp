// A self-contained CDCL SAT solver (watched literals, first-UIP learning,
// VSIDS-style activities, phase saving, Luby restarts) used as the second
// implication oracle for approximation-correctness checks (paper Sec. 2.2:
// "this can be done very efficiently using SAT algorithms").
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace apx {

/// A literal: variable index with sign. Encoded as 2*var + (negated ? 1 : 0).
struct Lit {
  int32_t code = -2;

  Lit() = default;
  Lit(int var, bool negated) : code(2 * var + (negated ? 1 : 0)) {}

  int var() const { return code >> 1; }
  bool negated() const { return code & 1; }
  Lit operator~() const {
    Lit l;
    l.code = code ^ 1;
    return l;
  }
  bool operator==(const Lit& o) const { return code == o.code; }
  bool operator!=(const Lit& o) const { return code != o.code; }
};

enum class SatResult { kSat, kUnsat, kUnknown };

class SatSolver {
 public:
  SatSolver() = default;

  /// Creates a fresh variable; returns its index.
  int new_var();
  int num_vars() const { return static_cast<int>(assign_.size()); }

  /// Adds a clause (empty clause makes the instance trivially UNSAT).
  /// Returns false if the solver is already in an UNSAT state.
  bool add_clause(std::vector<Lit> lits);
  bool add_unit(Lit a) { return add_clause({a}); }
  bool add_binary(Lit a, Lit b) { return add_clause({a, b}); }
  bool add_ternary(Lit a, Lit b, Lit c) { return add_clause({a, b, c}); }

  /// Solves under assumptions. `conflict_budget` < 0 means unbounded.
  SatResult solve(const std::vector<Lit>& assumptions = {},
                  int64_t conflict_budget = -1);

  /// Model value of a variable after kSat (unassigned vars default false).
  bool model_value(int var) const;

  int64_t num_conflicts() const { return conflicts_total_; }
  int64_t num_decisions() const { return decisions_total_; }

 private:
  enum class Value : int8_t { kFalse = 0, kTrue = 1, kUndef = 2 };

  struct Clause {
    std::vector<Lit> lits;
    bool learnt = false;
    double activity = 0.0;
  };

  using ClauseRef = int32_t;
  static constexpr ClauseRef kNoReason = -1;

  Value value(Lit l) const {
    Value v = assign_[l.var()];
    if (v == Value::kUndef) return Value::kUndef;
    bool b = (v == Value::kTrue);
    return (b != l.negated()) ? Value::kTrue : Value::kFalse;
  }

  void enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef conflict, std::vector<Lit>& learnt, int& bt_level);
  void backtrack(int level);
  Lit pick_branch();
  void bump_var(int var);
  void decay_var_activity();
  void attach_clause(ClauseRef cr);
  void reduce_learnts();
  static int64_t luby(int64_t i);

  std::vector<Clause> clauses_;
  std::vector<std::vector<ClauseRef>> watches_;  // indexed by lit code
  std::vector<Value> assign_;
  std::vector<int> level_;
  std::vector<ClauseRef> reason_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  size_t prop_head_ = 0;

  // Max-heap over variable activities (MiniSat-style order heap).
  void heap_insert(int var);
  void heap_update(int var);
  int heap_pop_undef();
  void heap_sift_up(int i);
  void heap_sift_down(int i);

  std::vector<double> activity_;
  std::vector<bool> polarity_;  // saved phases
  double var_inc_ = 1.0;
  std::vector<int> heap_;      // variable indices, max-heap by activity
  std::vector<int> heap_pos_;  // var -> index in heap_, -1 if absent

  bool unsat_ = false;
  int64_t conflicts_total_ = 0;
  int64_t decisions_total_ = 0;
  std::vector<bool> seen_;  // scratch for analyze()
};

}  // namespace apx
