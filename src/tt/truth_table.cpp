#include "tt/truth_table.hpp"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace apx {
namespace {

// Classic alternating masks for in-word cofactoring of variables 0..5.
constexpr uint64_t kVarMasks[6] = {
    0xAAAAAAAAAAAAAAAAULL, 0xCCCCCCCCCCCCCCCCULL, 0xF0F0F0F0F0F0F0F0ULL,
    0xFF00FF00FF00FF00ULL, 0xFFFF0000FFFF0000ULL, 0xFFFFFFFF00000000ULL,
};

size_t words_for(int num_vars) {
  return num_vars <= 6 ? 1 : (1ULL << (num_vars - 6));
}

uint64_t live_mask(int num_vars) {
  if (num_vars >= 6) return ~0ULL;
  return (1ULL << (1ULL << num_vars)) - 1;
}

}  // namespace

TruthTable::TruthTable(int num_vars) : num_vars_(num_vars) {
  if (num_vars < 0 || num_vars > 26) {
    throw std::invalid_argument("TruthTable supports 0..26 variables");
  }
  words_.assign(words_for(num_vars), 0);
}

TruthTable TruthTable::ones(int num_vars) {
  TruthTable t(num_vars);
  for (auto& w : t.words_) w = ~0ULL;
  t.words_.back() &= live_mask(num_vars);
  if (num_vars < 6) t.words_[0] = live_mask(num_vars);
  return t;
}

TruthTable TruthTable::variable(int num_vars, int var) {
  assert(var >= 0 && var < num_vars);
  TruthTable t(num_vars);
  if (var < 6) {
    for (auto& w : t.words_) w = kVarMasks[var];
    t.words_[0] &= live_mask(num_vars);
    for (size_t i = 1; i < t.words_.size(); ++i) t.words_[i] = kVarMasks[var];
  } else {
    const size_t stride = 1ULL << (var - 6);
    for (size_t i = 0; i < t.words_.size(); ++i) {
      if ((i / stride) & 1) t.words_[i] = ~0ULL;
    }
  }
  return t;
}

TruthTable TruthTable::from_sop(const Sop& sop) {
  const int n = sop.num_vars();
  TruthTable result(n);
  for (const Cube& c : sop.cubes()) {
    if (c.is_empty()) continue;
    TruthTable cube_tt = ones(n);
    for (int v = 0; v < n; ++v) {
      LitCode code = c.get(v);
      if (code == LitCode::kPos) {
        cube_tt &= variable(n, v);
      } else if (code == LitCode::kNeg) {
        cube_tt &= ~variable(n, v);
      }
    }
    result |= cube_tt;
  }
  return result;
}

TruthTable TruthTable::from_binary(int num_vars, const std::string& bits) {
  TruthTable t(num_vars);
  if (bits.size() != t.num_minterms()) {
    throw std::invalid_argument("from_binary: wrong bit-string length");
  }
  for (uint64_t m = 0; m < t.num_minterms(); ++m) {
    char c = bits[bits.size() - 1 - m];
    if (c == '1') t.set(m, true);
  }
  return t;
}

bool TruthTable::get(uint64_t minterm) const {
  return (words_[minterm >> 6] >> (minterm & 63)) & 1;
}

void TruthTable::set(uint64_t minterm, bool value) {
  uint64_t& w = words_[minterm >> 6];
  uint64_t bit = 1ULL << (minterm & 63);
  if (value) {
    w |= bit;
  } else {
    w &= ~bit;
  }
}

bool TruthTable::is_zero() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

bool TruthTable::is_one() const { return *this == ones(num_vars_); }

uint64_t TruthTable::count_ones() const {
  uint64_t total = 0;
  for (uint64_t w : words_) total += std::popcount(w);
  return total;
}

double TruthTable::density() const {
  return static_cast<double>(count_ones()) /
         static_cast<double>(num_minterms());
}

TruthTable TruthTable::operator&(const TruthTable& o) const {
  TruthTable t = *this;
  t &= o;
  return t;
}
TruthTable TruthTable::operator|(const TruthTable& o) const {
  TruthTable t = *this;
  t |= o;
  return t;
}
TruthTable TruthTable::operator^(const TruthTable& o) const {
  TruthTable t = *this;
  t ^= o;
  return t;
}
TruthTable TruthTable::operator~() const {
  TruthTable t = *this;
  for (auto& w : t.words_) w = ~w;
  t.words_.back() &= live_mask(num_vars_);
  if (num_vars_ < 6) t.words_[0] &= live_mask(num_vars_);
  return t;
}

TruthTable& TruthTable::operator&=(const TruthTable& o) {
  assert(num_vars_ == o.num_vars_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= o.words_[i];
  return *this;
}
TruthTable& TruthTable::operator|=(const TruthTable& o) {
  assert(num_vars_ == o.num_vars_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= o.words_[i];
  return *this;
}
TruthTable& TruthTable::operator^=(const TruthTable& o) {
  assert(num_vars_ == o.num_vars_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] ^= o.words_[i];
  return *this;
}

bool TruthTable::operator==(const TruthTable& o) const {
  return num_vars_ == o.num_vars_ && words_ == o.words_;
}

bool TruthTable::implies(const TruthTable& a, const TruthTable& b) {
  assert(a.num_vars_ == b.num_vars_);
  for (size_t i = 0; i < a.words_.size(); ++i) {
    if ((a.words_[i] & ~b.words_[i]) != 0) return false;
  }
  return true;
}

TruthTable TruthTable::cofactor(int var, bool value) const {
  TruthTable t = *this;
  if (var < 6) {
    uint64_t mask = kVarMasks[var];
    int shift = 1 << var;
    for (auto& w : t.words_) {
      if (value) {
        uint64_t hi = w & mask;
        w = hi | (hi >> shift);
      } else {
        uint64_t lo = w & ~mask;
        w = lo | (lo << shift);
      }
    }
    if (num_vars_ < 6) t.words_[0] &= live_mask(num_vars_);
  } else {
    const size_t stride = 1ULL << (var - 6);
    for (size_t i = 0; i < t.words_.size(); ++i) {
      bool in_one_half = (i / stride) & 1;
      if (in_one_half != value) {
        // Copy from the sibling half.
        size_t sibling = value ? i + stride : i - stride;
        t.words_[i] = words_[sibling];
      }
    }
  }
  return t;
}

TruthTable TruthTable::boolean_difference(int var) const {
  return cofactor(var, false) ^ cofactor(var, true);
}

bool TruthTable::depends_on(int var) const {
  return !boolean_difference(var).is_zero();
}

namespace {

// Minato-Morreale ISOP on an interval [lower, upper]; recursion splits on
// the highest variable both tables may depend on.
Sop isop_rec(const TruthTable& lower, const TruthTable& upper, int top_var) {
  const int n = lower.num_vars();
  if (lower.is_zero()) return Sop::zero(n);
  if (upper.is_one()) return Sop::one(n);
  // Find actual splitting variable.
  int var = top_var;
  while (var >= 0 && !lower.depends_on(var) && !upper.depends_on(var)) --var;
  assert(var >= 0);

  TruthTable l0 = lower.cofactor(var, false);
  TruthTable l1 = lower.cofactor(var, true);
  TruthTable u0 = upper.cofactor(var, false);
  TruthTable u1 = upper.cofactor(var, true);

  // Cubes that must carry literal var' / var.
  Sop c0 = isop_rec(l0 & ~u1, u0, var - 1);
  Sop c1 = isop_rec(l1 & ~u0, u1, var - 1);

  TruthTable cov0 = TruthTable::from_sop(c0);
  TruthTable cov1 = TruthTable::from_sop(c1);
  TruthTable rem = (l0 & ~cov0) | (l1 & ~cov1);
  Sop cs = isop_rec(rem, u0 & u1, var - 1);

  Sop result(n);
  for (Cube c : c0.cubes()) {
    c.set(var, LitCode::kNeg);
    result.add_cube(std::move(c));
  }
  for (Cube c : c1.cubes()) {
    c.set(var, LitCode::kPos);
    result.add_cube(std::move(c));
  }
  for (const Cube& c : cs.cubes()) result.add_cube(c);
  return result;
}

}  // namespace

Sop TruthTable::isop() const { return isop_interval(*this, *this); }

Sop TruthTable::isop_interval(const TruthTable& lower,
                              const TruthTable& upper) {
  assert(lower.num_vars() == upper.num_vars());
  assert(implies(lower, upper));
  return isop_rec(lower, upper, lower.num_vars() - 1);
}

std::string TruthTable::to_binary() const {
  std::string s(num_minterms(), '0');
  for (uint64_t m = 0; m < num_minterms(); ++m) {
    if (get(m)) s[s.size() - 1 - m] = '1';
  }
  return s;
}

}  // namespace apx
