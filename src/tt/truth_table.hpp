// Dynamic-width truth tables used for local-function analysis: observability
// computation, ODC feasible-space evaluation (paper Sec. 2.1.2), and
// irredundant SOP extraction (Minato-Morreale ISOP).
//
// A table over n variables stores 2^n bits packed into 64-bit words; bit m
// is the function value on minterm m (bit i of m = value of variable i).
// Practical for n <= ~20; the synthesis core restricts local analysis to
// n <= kMaxLocalVars and falls back to sampling beyond that.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sop/sop.hpp"

namespace apx {

/// Largest local support for exact truth-table analysis in the synthesis
/// core; beyond this the callers use sampled estimates.
inline constexpr int kMaxLocalVars = 14;

class TruthTable {
 public:
  TruthTable() = default;

  /// Constant-zero table over `num_vars` variables (num_vars <= 26).
  explicit TruthTable(int num_vars);

  static TruthTable zeros(int num_vars) { return TruthTable(num_vars); }
  static TruthTable ones(int num_vars);

  /// Projection function of variable `var`.
  static TruthTable variable(int num_vars, int var);

  /// Table of an SOP cover (evaluated cube by cube).
  static TruthTable from_sop(const Sop& sop);

  /// Table from a binary string, msb = highest minterm. E.g. "1000" over
  /// 2 vars is AND.
  static TruthTable from_binary(int num_vars, const std::string& bits);

  int num_vars() const { return num_vars_; }
  uint64_t num_minterms() const { return 1ULL << num_vars_; }

  bool get(uint64_t minterm) const;
  void set(uint64_t minterm, bool value);

  bool is_zero() const;
  bool is_one() const;

  uint64_t count_ones() const;

  /// Fraction of minterms on which the function is 1.
  double density() const;

  TruthTable operator&(const TruthTable& o) const;
  TruthTable operator|(const TruthTable& o) const;
  TruthTable operator^(const TruthTable& o) const;
  TruthTable operator~() const;
  TruthTable& operator&=(const TruthTable& o);
  TruthTable& operator|=(const TruthTable& o);
  TruthTable& operator^=(const TruthTable& o);

  bool operator==(const TruthTable& o) const;
  bool operator!=(const TruthTable& o) const { return !(*this == o); }

  /// a => b (a & ~b == 0).
  static bool implies(const TruthTable& a, const TruthTable& b);

  /// Cofactor w.r.t. var = value (result still spans num_vars variables,
  /// with `var` made irrelevant).
  TruthTable cofactor(int var, bool value) const;

  /// Boolean difference d f / d var = f|var=0 XOR f|var=1 — the local
  /// observability function of `var` (paper Sec. 2.1.1).
  TruthTable boolean_difference(int var) const;

  /// Does the function depend on `var`?
  bool depends_on(int var) const;

  /// Irredundant SOP via the Minato-Morreale algorithm.
  Sop isop() const;

  /// ISOP of an interval: a cover C with lower <= C <= upper.
  static Sop isop_interval(const TruthTable& lower, const TruthTable& upper);

  std::string to_binary() const;

 private:
  int num_vars_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace apx
