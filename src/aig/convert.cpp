#include "aig/convert.hpp"

#include <stdexcept>

#include "core/trace.hpp"
#include "network/ordering.hpp"
#include "network/topology_view.hpp"
#include "tt/truth_table.hpp"

namespace apx::aig {
namespace {

Lit reduce_balanced(Aig* g, std::vector<Lit> v, bool is_and) {
  if (v.empty()) return is_and ? kLitTrue : kLitFalse;
  while (v.size() > 1) {
    std::vector<Lit> next;
    next.reserve((v.size() + 1) / 2);
    for (size_t i = 0; i + 1 < v.size(); i += 2) {
      next.push_back(is_and ? g->create_and(v[i], v[i + 1])
                            : g->create_or(v[i], v[i + 1]));
    }
    if (v.size() & 1) next.push_back(v.back());
    v = std::move(next);
  }
  return v[0];
}

}  // namespace

Aig network_to_aig(const Network& net) {
  trace::Span span("aig.from_network");
  const std::shared_ptr<const TopologyView> topo = net.topology();

  Aig aig;
  std::vector<Lit> mapped(net.num_nodes(), kInvalidLit);
  // PIs first, in PI-list order, so indices line up across the round trip.
  for (NodeId pi : net.pis()) {
    mapped[pi] = aig.add_pi(net.node(pi).name);
  }

  std::vector<Lit> cube_lits;
  std::vector<Lit> term_lits;
  for (NodeId id : topo->topo()) {
    const Node& n = net.node(id);
    switch (n.kind) {
      case NodeKind::kConst0:
        mapped[id] = kLitFalse;
        break;
      case NodeKind::kConst1:
        mapped[id] = kLitTrue;
        break;
      case NodeKind::kPi:
        break;  // pre-mapped
      case NodeKind::kLogic: {
        cube_lits.clear();
        for (const Cube& c : n.sop.cubes()) {
          term_lits.clear();
          for (size_t v = 0; v < n.fanins.size(); ++v) {
            const LitCode code = c.get(static_cast<int>(v));
            if (code == LitCode::kFree) continue;
            if (code == LitCode::kEmpty) {
              term_lits.assign(1, kLitFalse);
              break;
            }
            term_lits.push_back(lit_not_cond(mapped[n.fanins[v]],
                                             code == LitCode::kNeg));
          }
          cube_lits.push_back(
              reduce_balanced(&aig, term_lits, /*is_and=*/true));
        }
        mapped[id] = reduce_balanced(&aig, cube_lits, /*is_and=*/false);
        break;
      }
    }
  }

  for (const PrimaryOutput& po : net.pos()) {
    aig.add_po(mapped[po.driver], po.name);
  }
  return aig;
}

Network aig_to_network(const Aig& aig) {
  trace::Span span("aig.to_network");
  Network net;

  std::vector<NodeId> mapped(aig.num_nodes(), kNullNode);
  for (int i = 0; i < aig.num_pis(); ++i) {
    mapped[aig.pi_node(i)] = net.add_pi(aig.pi_name(i));
  }

  // Only the PO-reachable cone is materialized: the arena keeps every node
  // ever hashed, including cones abandoned by rewriting.
  std::vector<char> live(aig.num_nodes(), 0);
  {
    std::vector<uint32_t> stack;
    for (int i = 0; i < aig.num_pos(); ++i) {
      const uint32_t root = lit_node(aig.po_lit(i));
      if (!live[root]) {
        live[root] = 1;
        stack.push_back(root);
      }
    }
    while (!stack.empty()) {
      const uint32_t id = stack.back();
      stack.pop_back();
      if (!aig.is_and(id)) continue;
      for (Lit f : {aig.fanin0(id), aig.fanin1(id)}) {
        if (!live[lit_node(f)]) {
          live[lit_node(f)] = 1;
          stack.push_back(lit_node(f));
        }
      }
    }
  }

  NodeId consts[2] = {kNullNode, kNullNode};
  auto const_node = [&](bool value) {
    NodeId& slot = consts[value ? 1 : 0];
    if (slot == kNullNode) slot = net.add_const(value);
    return slot;
  };

  // Ascending id order is topological, so fanins are always mapped first.
  // Each AND becomes a 2-input SOP node whose cover is the ISOP of the
  // edge-polarity-adjusted local function (one cube; polarities become
  // cover literals).
  for (uint32_t id = 1; id < static_cast<uint32_t>(aig.num_nodes()); ++id) {
    if (!live[id] || !aig.is_and(id)) continue;
    const Lit f0 = aig.fanin0(id);
    const Lit f1 = aig.fanin1(id);
    TruthTable local = (lit_complemented(f0)
                            ? ~TruthTable::variable(2, 0)
                            : TruthTable::variable(2, 0)) &
                       (lit_complemented(f1) ? ~TruthTable::variable(2, 1)
                                             : TruthTable::variable(2, 1));
    mapped[id] = net.add_node({mapped[lit_node(f0)], mapped[lit_node(f1)]},
                              local.isop());
  }

  for (int i = 0; i < aig.num_pos(); ++i) {
    const Lit po = aig.po_lit(i);
    NodeId driver;
    if (lit_node(po) == 0) {
      driver = const_node(lit_complemented(po));
    } else {
      driver = mapped[lit_node(po)];
      if (lit_complemented(po)) {
        driver = net.add_node({driver}, (~TruthTable::variable(1, 0)).isop());
      }
    }
    net.add_po(aig.po_name(i), driver);
  }
  net.check();
  return net;
}

Network aig_quick_synthesis(const Network& net, const RewriteOptions& options,
                            RewriteStats* stats) {
  trace::Span span("aig.quick_synthesis");
  trace::counter("aig.quick_synthesis_calls").add(1);

  const Aig aig = network_to_aig(net);
  RewriteStats local;
  RewriteStats* s = stats ? stats : &local;
  const Aig rewritten = rewrite(aig, options, s);
  trace::counter("aig.rewrite_ands_saved")
      .add(s->ands_before - s->ands_after);

  Network result = aig_to_network(rewritten);
  result.set_name(net.name());
  result.cleanup();
  result.check();

  // The pass preserves the PI set (names and order), so a BDD variable
  // order that sifting already converged on for the input circuit is just
  // as good for the synthesized one — transfer it to the output's
  // content-hash key so downstream oracle builds start warm.
  if (auto cached = OrderCache::instance().lookup(network_content_hash(net),
                                                  net.num_pis())) {
    OrderCache::instance().store(network_content_hash(result),
                                 std::move(*cached));
  }
  return result;
}

}  // namespace apx::aig
