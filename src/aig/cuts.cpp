#include "aig/cuts.hpp"

#include <algorithm>

#include "aig/npn.hpp"

namespace apx::aig {
namespace {

/// Re-expresses a child cut's truth table over a merged leaf set that
/// contains the child's leaves. `pos[j]` is the index of child leaf j in
/// the merged set; each merged-space minterm is projected down to the
/// child's minterm to read its bit.
uint16_t expand_tt(uint16_t child_tt, const uint8_t* pos, int child_size,
                   int merged_size) {
  uint16_t out = 0;
  const int minterms = 1 << merged_size;
  for (int m = 0; m < minterms; ++m) {
    int mc = 0;
    for (int j = 0; j < child_size; ++j) {
      mc |= ((m >> pos[j]) & 1) << j;
    }
    out = static_cast<uint16_t>(out | (((child_tt >> mc) & 1) << m));
  }
  return out;
}

/// Merges two sorted leaf sets; returns false when the union exceeds k.
bool merge_leaves(const Cut& a, const Cut& b, Cut* out, uint8_t* pos_a,
                  uint8_t* pos_b) {
  int i = 0;
  int j = 0;
  int n = 0;
  while (i < a.size || j < b.size) {
    if (n == kMaxCutSize &&
        (i < a.size || j < b.size)) {
      return false;
    }
    if (j >= b.size || (i < a.size && a.leaves[i] < b.leaves[j])) {
      pos_a[i] = static_cast<uint8_t>(n);
      out->leaves[n++] = a.leaves[i++];
    } else if (i >= a.size || b.leaves[j] < a.leaves[i]) {
      pos_b[j] = static_cast<uint8_t>(n);
      out->leaves[n++] = b.leaves[j++];
    } else {
      pos_a[i] = static_cast<uint8_t>(n);
      pos_b[j] = static_cast<uint8_t>(n);
      out->leaves[n++] = a.leaves[i++];
      ++j;
    }
  }
  out->size = static_cast<uint8_t>(n);
  return true;
}

bool cut_less(const Cut& a, const Cut& b) {
  if (a.size != b.size) return a.size < b.size;
  for (int i = 0; i < a.size; ++i) {
    if (a.leaves[i] != b.leaves[i]) return a.leaves[i] < b.leaves[i];
  }
  return false;
}

bool same_leaves(const Cut& a, const Cut& b) {
  if (a.size != b.size) return false;
  for (int i = 0; i < a.size; ++i) {
    if (a.leaves[i] != b.leaves[i]) return false;
  }
  return true;
}

Cut trivial_cut(uint32_t node) {
  Cut c;
  c.leaves[0] = node;
  c.size = 1;
  c.tt = tt16::kVar[0];
  return c;
}

}  // namespace

CutSet enumerate_cuts(const Aig& aig, const CutOptions& options) {
  CutSet result;
  result.cuts.resize(aig.num_nodes());

  std::vector<Cut> scratch;
  scratch.reserve(static_cast<size_t>(options.max_cuts) * options.max_cuts +
                  1);

  for (uint32_t id = 1; id < static_cast<uint32_t>(aig.num_nodes()); ++id) {
    if (aig.is_pi(id)) {
      result.cuts[id].push_back(trivial_cut(id));
      ++result.total_enumerated;
      continue;
    }

    const Lit f0 = aig.fanin0(id);
    const Lit f1 = aig.fanin1(id);
    const auto& cuts0 = result.cuts[lit_node(f0)];
    const auto& cuts1 = result.cuts[lit_node(f1)];
    const uint16_t mask0 = lit_complemented(f0) ? 0xFFFF : 0x0000;
    const uint16_t mask1 = lit_complemented(f1) ? 0xFFFF : 0x0000;

    scratch.clear();
    for (const Cut& c0 : cuts0) {
      for (const Cut& c1 : cuts1) {
        Cut merged;
        uint8_t pos0[kMaxCutSize];
        uint8_t pos1[kMaxCutSize];
        if (!merge_leaves(c0, c1, &merged, pos0, pos1)) continue;
        const uint16_t t0 = expand_tt(
            static_cast<uint16_t>(c0.tt ^ mask0), pos0, c0.size, merged.size);
        const uint16_t t1 = expand_tt(
            static_cast<uint16_t>(c1.tt ^ mask1), pos1, c1.size, merged.size);
        // Extend to a full 4-variable table by replicating the live block:
        // variables >= size become genuine don't-cares, which keeps NPN
        // lookup uniform for every cut width.
        uint32_t block = static_cast<uint32_t>(t0 & t1) &
                         ((1u << (1 << merged.size)) - 1u);
        for (int w = 1 << merged.size; w < 16; w <<= 1) {
          block |= block << w;
        }
        merged.tt = static_cast<uint16_t>(block);
        scratch.push_back(merged);
        ++result.total_enumerated;
      }
    }

    std::sort(scratch.begin(), scratch.end(), cut_less);
    auto& out = result.cuts[id];
    for (const Cut& c : scratch) {
      if (!out.empty() && same_leaves(out.back(), c)) continue;
      out.push_back(c);
      if (static_cast<int>(out.size()) == options.max_cuts - 1) break;
    }
    out.push_back(trivial_cut(id));
    ++result.total_enumerated;
  }
  return result;
}

}  // namespace apx::aig
