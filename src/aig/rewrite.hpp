// DAG-aware cut rewriting against a precomputed optimal-network database,
// after Mishchenko et al. (DAG-aware AIG rewriting): for every AND node,
// enumerate priority 4-cuts, NPN-canonicalize each cut function, and look
// up a small pre-optimized AIG implementing its class. A global cover then
// picks, per node, the cut whose database implementation plus (shared)
// leaf costs is cheapest under area flow, and only the chosen cover is
// materialized into a fresh structurally-hashed AIG — so savings from
// replacing whole multi-node cones are captured, not just single nodes.
//
// Database construction is self-contained: for each of the 222 NPN classes
// the builder synthesizes candidate implementations (factored ISOP,
// complemented ISOP of the complement, memoized Shannon decomposition)
// into one shared strashing arena, keeps the candidate with the smallest
// reachable AND cone, and validates every stored network by exhaustive
// truth-table simulation before it can ever be instantiated.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "aig/aig.hpp"
#include "aig/cuts.hpp"

namespace apx::aig {

/// Optimal-network database indexed by NPN-canonical truth table.
///
/// Entries are straight-line AND programs over "database literals":
/// node 0 is constant false, nodes 1..4 are input slots 0..3, node 5+i is
/// the i-th instruction; a literal is 2*node + complement as usual.
class RewriteDb {
 public:
  struct Entry {
    std::vector<std::array<uint16_t, 2>> ands;  ///< fanin literal pairs
    uint16_t out = 0;                           ///< output literal
  };

  static const RewriteDb& instance();

  bool has(uint16_t canon) const { return index_[canon] >= 0; }
  const Entry& entry(uint16_t canon) const {
    return entries_[static_cast<size_t>(index_[canon])];
  }
  /// AND-node count of the stored implementation.
  int cost(uint16_t canon) const {
    return static_cast<int>(entry(canon).ands.size());
  }

  /// Materializes `entry(canon)` into `dst`, feeding input slot i with
  /// `slot_lits[i]`. Returns the output literal in `dst`.
  static Lit instantiate(Aig* dst, const Entry& e, const Lit slot_lits[4]);

 private:
  RewriteDb();

  std::vector<Entry> entries_;
  std::vector<int32_t> index_;  ///< canon -> entries_ index, -1 if not canon
};

struct RewriteOptions {
  int max_passes = 4;  ///< rewriting repeats until no gain, capped here
  CutOptions cuts;
};

struct RewriteStats {
  int passes = 0;
  int ands_before = 0;  ///< reachable ANDs entering the first pass
  int ands_after = 0;   ///< reachable ANDs after the last accepted pass
  size_t cuts_enumerated = 0;
};

/// Rewrites `src` into a (reachable-)AND-minimized equivalent AIG. PI/PO
/// count, names, and order are preserved. Never returns a worse graph:
/// each pass is guarded and the source is kept when a pass does not help.
Aig rewrite(const Aig& src, const RewriteOptions& options = {},
            RewriteStats* stats = nullptr);

}  // namespace apx::aig
