#include "aig/npn.hpp"

#include <deque>
#include <mutex>
#include <stdexcept>

namespace apx::aig {

namespace tt16 {

uint16_t flip_var(uint16_t f, int v) {
  switch (v) {
    case 0:
      return static_cast<uint16_t>(((f & 0xAAAA) >> 1) | ((f & 0x5555) << 1));
    case 1:
      return static_cast<uint16_t>(((f & 0xCCCC) >> 2) | ((f & 0x3333) << 2));
    case 2:
      return static_cast<uint16_t>(((f & 0xF0F0) >> 4) | ((f & 0x0F0F) << 4));
    default:
      return static_cast<uint16_t>(((f & 0xFF00) >> 8) | ((f & 0x00FF) << 8));
  }
}

uint16_t swap_adjacent(uint16_t f, int v) {
  // Keep the bits where both variables agree, exchange the 01/10 blocks.
  switch (v) {
    case 0:
      return static_cast<uint16_t>((f & 0x9999) | ((f & 0x2222) << 1) |
                                   ((f & 0x4444) >> 1));
    case 1:
      return static_cast<uint16_t>((f & 0xC3C3) | ((f & 0x0C0C) << 2) |
                                   ((f & 0x3030) >> 2));
    default:
      return static_cast<uint16_t>((f & 0xF00F) | ((f & 0x00F0) << 4) |
                                   ((f & 0x0F00) >> 4));
  }
}

}  // namespace tt16

namespace {

uint8_t make_perm(int p0, int p1, int p2, int p3) {
  return static_cast<uint8_t>(p0 | (p1 << 2) | (p2 << 4) | (p3 << 6));
}

constexpr uint8_t kIdentityPerm = 0 | (1 << 2) | (2 << 4) | (3 << 6);

}  // namespace

uint16_t NpnTable::apply(uint16_t canon, const NpnEntry& t) {
  uint16_t f = 0;
  for (int m = 0; m < 16; ++m) {
    int y = 0;
    for (int i = 0; i < 4; ++i) {
      const int x = (m >> t.perm(i)) & 1;
      y |= (x ^ (t.input_neg(i) ? 1 : 0)) << i;
    }
    const int bit = ((canon >> y) & 1) ^ (t.output_neg() ? 1 : 0);
    f = static_cast<uint16_t>(f | (bit << m));
  }
  return f;
}

NpnTable::NpnTable() {
  entries_.assign(65536, NpnEntry{});
  std::vector<char> claimed(65536, 0);

  // Orbit BFS. `entries_[g]` stores the transform reconstructing g from the
  // orbit's representative; the scan order makes that representative the
  // orbit minimum, i.e. the canonical form.
  std::deque<uint32_t> queue;
  for (uint32_t rep = 0; rep < 65536; ++rep) {
    if (claimed[rep]) continue;
    reps_.push_back(static_cast<uint16_t>(rep));
    claimed[rep] = 1;
    entries_[rep] = NpnEntry{static_cast<uint16_t>(rep), kIdentityPerm, 0};
    queue.clear();
    queue.push_back(rep);
    while (!queue.empty()) {
      const uint32_t g = queue.front();
      queue.pop_front();
      const NpnEntry base = entries_[g];

      auto claim = [&](uint16_t h, const NpnEntry& t) {
        if (claimed[h]) return;
        claimed[h] = 1;
        entries_[h] = t;
        queue.push_back(h);
      };

      // Output complement: h = ~g, so out_neg toggles on top of base.
      {
        NpnEntry t = base;
        t.phase = static_cast<uint8_t>(t.phase ^ 0x10);
        claim(static_cast<uint16_t>(~g & 0xFFFF), t);
      }
      // Input complement of variable v: h(x) = g(x with x_v flipped), so
      // every slot feeding v gains a negation.
      for (int v = 0; v < 4; ++v) {
        NpnEntry t = base;
        for (int i = 0; i < 4; ++i) {
          if (t.perm(i) == v) t.phase = static_cast<uint8_t>(t.phase ^ (1 << i));
        }
        claim(tt16::flip_var(static_cast<uint16_t>(g), v), t);
      }
      // Adjacent transposition (v, v+1): slots that read v now read v+1 and
      // vice versa.
      for (int v = 0; v < 3; ++v) {
        NpnEntry t = base;
        int p[4];
        for (int i = 0; i < 4; ++i) {
          p[i] = t.perm(i);
          if (p[i] == v) {
            p[i] = v + 1;
          } else if (p[i] == v + 1) {
            p[i] = v;
          }
        }
        t.perm_packed = make_perm(p[0], p[1], p[2], p[3]);
        claim(tt16::swap_adjacent(static_cast<uint16_t>(g), v), t);
      }
    }
  }

  // Exhaustive self-check of the transform contract: cheap (1M bit ops)
  // and turns any generator-composition bug into a hard startup failure
  // instead of silently wrong rewrites.
  for (uint32_t f = 0; f < 65536; ++f) {
    const NpnEntry& t = entries_[f];
    if (t.canon > f) {
      throw std::logic_error("npn: canonical form exceeds function");
    }
    if (apply(t.canon, t) != static_cast<uint16_t>(f)) {
      throw std::logic_error("npn: transform contract violated");
    }
  }
}

const NpnTable& NpnTable::instance() {
  static const NpnTable table;
  return table;
}

}  // namespace apx::aig
