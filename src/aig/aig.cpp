#include "aig/aig.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace apx::aig {
namespace {

// SplitMix64 finalizer (same mixer as network/ordering.cpp): full-avalanche
// so the packed (fanin0, fanin1) key spreads over the whole table.
uint64_t mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t key_of(Lit a, Lit b) {
  return (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
}

}  // namespace

Aig::Aig() {
  nodes_.push_back(AigNode{0, 0});  // node 0: constant false
  table_.resize(1024, 0);
}

Lit Aig::add_pi(const std::string& name) {
  const uint32_t node = static_cast<uint32_t>(nodes_.size());
  AigNode n;
  n.fanin0 = kInvalidLit;
  n.fanin1 = static_cast<Lit>(pis_.size());
  nodes_.push_back(n);
  pis_.push_back(node);
  pi_names_.push_back(name.empty() ? "pi" + std::to_string(pis_.size() - 1)
                                   : name);
  return make_lit(node, false);
}

int Aig::add_po(Lit lit, const std::string& name) {
  if (lit_node(lit) >= nodes_.size()) {
    throw std::logic_error("Aig::add_po: literal out of range");
  }
  pos_.push_back(lit);
  po_names_.push_back(name.empty() ? "po" + std::to_string(pos_.size() - 1)
                                   : name);
  return static_cast<int>(pos_.size()) - 1;
}

void Aig::grow_table() {
  std::vector<uint32_t> old = std::move(table_);
  table_.assign(old.size() * 2, 0);
  const size_t mask = table_.size() - 1;
  for (uint32_t slot : old) {
    if (slot == 0) continue;
    const AigNode& n = nodes_[slot - 1];
    size_t pos = static_cast<size_t>(mix64(key_of(n.fanin0, n.fanin1))) & mask;
    while (table_[pos] != 0) pos = (pos + 1) & mask;
    table_[pos] = slot;
  }
}

Lit Aig::strash_find_or_insert(Lit a, Lit b, bool insert_allowed) {
  // Normalize + fold. Sorted ascending by literal value, so the constant
  // node (and hence all constant cases) surfaces as `a`.
  if (a > b) std::swap(a, b);
  if (a == kLitFalse) return kLitFalse;
  if (a == kLitTrue) return b;
  if (a == b) return a;
  if (a == lit_not(b)) return kLitFalse;

  const size_t mask = table_.size() - 1;
  size_t pos = static_cast<size_t>(mix64(key_of(a, b))) & mask;
  while (table_[pos] != 0) {
    const AigNode& n = nodes_[table_[pos] - 1];
    if (n.fanin0 == a && n.fanin1 == b) {
      return make_lit(table_[pos] - 1, false);
    }
    pos = (pos + 1) & mask;
  }
  if (!insert_allowed) return kInvalidLit;

  const uint32_t node = static_cast<uint32_t>(nodes_.size());
  nodes_.push_back(AigNode{a, b});
  table_[pos] = node + 1;
  if (++table_used_ * 10 >= table_.size() * 7) grow_table();
  return make_lit(node, false);
}

Lit Aig::create_and(Lit a, Lit b) {
  if (lit_node(a) >= nodes_.size() || lit_node(b) >= nodes_.size()) {
    throw std::logic_error("Aig::create_and: literal out of range");
  }
  return strash_find_or_insert(a, b, /*insert_allowed=*/true);
}

Lit Aig::lookup_and(Lit a, Lit b) const {
  // Folding and probing never mutate; the insert-allowed flag is what
  // guards the table write, so the const_cast is sound.
  return const_cast<Aig*>(this)->strash_find_or_insert(
      a, b, /*insert_allowed=*/false);
}

std::vector<int> Aig::levels() const {
  std::vector<int> level(nodes_.size(), 0);
  for (uint32_t id = 1; id < nodes_.size(); ++id) {
    if (!is_and(id)) continue;
    level[id] = 1 + std::max(level[lit_node(nodes_[id].fanin0)],
                             level[lit_node(nodes_[id].fanin1)]);
  }
  return level;
}

int Aig::count_reachable_ands() const {
  std::vector<char> mark(nodes_.size(), 0);
  std::vector<uint32_t> stack;
  for (Lit po : pos_) {
    if (!mark[lit_node(po)]) {
      mark[lit_node(po)] = 1;
      stack.push_back(lit_node(po));
    }
  }
  int count = 0;
  while (!stack.empty()) {
    uint32_t id = stack.back();
    stack.pop_back();
    if (!is_and(id)) continue;
    ++count;
    for (Lit f : {nodes_[id].fanin0, nodes_[id].fanin1}) {
      if (!mark[lit_node(f)]) {
        mark[lit_node(f)] = 1;
        stack.push_back(lit_node(f));
      }
    }
  }
  return count;
}

void Aig::check() const {
  std::unordered_set<uint64_t> seen;
  for (uint32_t id = 1; id < nodes_.size(); ++id) {
    if (is_pi(id)) {
      if (pis_[nodes_[id].fanin1] != id) {
        throw std::logic_error("aig: PI index mismatch");
      }
      continue;
    }
    const AigNode& n = nodes_[id];
    if (lit_node(n.fanin0) >= id || lit_node(n.fanin1) >= id) {
      throw std::logic_error("aig: fanin does not precede node");
    }
    if (n.fanin0 > n.fanin1) {
      throw std::logic_error("aig: fanins not normalized");
    }
    if (lit_node(n.fanin0) == 0) {
      throw std::logic_error("aig: constant fanin not folded");
    }
    if (lit_node(n.fanin0) == lit_node(n.fanin1)) {
      throw std::logic_error("aig: equal/complement fanin pair not folded");
    }
    if (!seen.insert(key_of(n.fanin0, n.fanin1)).second) {
      throw std::logic_error("aig: duplicate AND node escaped strashing");
    }
  }
  for (Lit po : pos_) {
    if (lit_node(po) >= nodes_.size()) {
      throw std::logic_error("aig: PO literal out of range");
    }
  }
}

}  // namespace apx::aig
