// NPN canonicalization of 4-input Boolean functions, with a precomputed
// full table over all 2^16 truth tables.
//
// Two functions are NPN-equivalent when one can be obtained from the other
// by Negating inputs, Permuting inputs, and/or Negating the output — all
// transformations that are *free* in an AIG (complemented edges and
// wiring). The 65536 4-input functions collapse into 222 NPN classes, so a
// rewriting database only needs one optimal implementation per class.
//
// The table is built once per process by orbit BFS: truth tables are
// scanned in increasing order; the first unclaimed function is its class's
// canonical representative (hence canonical = minimum uint16 in the
// orbit), and its whole orbit is claimed by breadth-first application of
// the group generators (output complement, per-input complement, adjacent
// input transpositions), composing the transform along the way. Total work
// is O(65536 * generators) single-word bit operations — microseconds, so
// no baked-in data file is needed.
//
// Transform contract (verified exhaustively at build time): for
// `t = NpnTable::instance().entry(f)` and all minterms (x0..x3),
//
//   f(x0,x1,x2,x3) == canon(y0,y1,y3,y3) ^ t.output_neg
//   where y_i = x_{t.perm(i)} ^ t.input_neg(i)
//
// i.e. an implementation of `canon` computes f when its input slot i is
// fed variable perm(i), complemented per input_neg(i), and its output is
// complemented per output_neg(). This is exactly the direction the cut
// rewriter needs: instantiate the database network for `canon`, wire cut
// leaves into its inputs per the transform, done.
#pragma once

#include <cstdint>
#include <vector>

namespace apx::aig {

/// Truth-table operations on 16-bit tables over 4 variables (minterm m has
/// bit i of m = value of variable i). Exposed for tests and the cut layer.
namespace tt16 {

/// Projection tables of the four variables.
inline constexpr uint16_t kVar[4] = {0xAAAA, 0xCCCC, 0xF0F0, 0xFF00};

/// f with variable `v` complemented in the argument list.
uint16_t flip_var(uint16_t f, int v);

/// f with adjacent variables `v` and `v+1` exchanged (v in 0..2).
uint16_t swap_adjacent(uint16_t f, int v);

/// Does f depend on variable v?
inline bool depends_on(uint16_t f, int v) { return flip_var(f, v) != f; }

}  // namespace tt16

/// A packed NPN entry: canonical representative plus the transform
/// reconstructing the original function from it (see contract above).
struct NpnEntry {
  uint16_t canon = 0;
  uint8_t perm_packed = 0;  ///< 2 bits per input slot: perm(i)
  uint8_t phase = 0;        ///< bits 0-3 input_neg(i), bit 4 output_neg

  int perm(int slot) const { return (perm_packed >> (2 * slot)) & 3; }
  bool input_neg(int slot) const { return ((phase >> slot) & 1) != 0; }
  bool output_neg() const { return ((phase >> 4) & 1) != 0; }
};

/// Process-wide precomputed table; thread-safe after first use.
class NpnTable {
 public:
  static const NpnTable& instance();

  const NpnEntry& entry(uint16_t f) const { return entries_[f]; }
  uint16_t canonical(uint16_t f) const { return entries_[f].canon; }

  /// Number of distinct NPN classes (222 for 4 variables).
  int num_classes() const { return static_cast<int>(reps_.size()); }
  /// The canonical representatives, in increasing order.
  const std::vector<uint16_t>& representatives() const { return reps_; }

  /// Applies an entry's transform to `canon` (recomputes f; test hook).
  static uint16_t apply(uint16_t canon, const NpnEntry& t);

 private:
  NpnTable();

  std::vector<NpnEntry> entries_;
  std::vector<uint16_t> reps_;
};

}  // namespace apx::aig
