// Boundary converters between the SOP-node Network (the representation the
// paper's cube-selection core operates on) and the AIG substrate, plus the
// AIG-based quick-synthesis pass assembled from them.
//
// Network -> AIG walks the cached TopologyView order and builds each SOP
// node as balanced cube-AND / cover-OR trees; structural hashing collapses
// shared logic on the way in. AIG -> Network emits one 2-input SOP node
// per reachable AND (local function recovered by per-node ISOP through
// src/tt, so edge polarities become cover literals, not inverter chains);
// complemented POs get a single inverter node. PI/PO names and order are
// preserved in both directions, which is what makes the round-trip
// SAT-checkable output by output.
#pragma once

#include "aig/aig.hpp"
#include "aig/rewrite.hpp"
#include "network/network.hpp"

namespace apx::aig {

/// Converts an SOP network to an AIG (structural hashing on the way in).
Aig network_to_aig(const Network& net);

/// Converts the PO-reachable part of an AIG back to a 2-input SOP network.
Network aig_to_network(const Aig& aig);

/// Quick synthesis through the AIG substrate: convert, DAG-aware cut
/// rewriting, convert back, cleanup. PIs/POs preserved.
Network aig_quick_synthesis(const Network& net,
                            const RewriteOptions& options = {},
                            RewriteStats* stats = nullptr);

}  // namespace apx::aig
