#include "aig/rewrite.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "aig/npn.hpp"
#include "tt/truth_table.hpp"

namespace apx::aig {
namespace {

// ---- uint16 truth-table helpers (database construction) ----

uint16_t cofactor16(uint16_t f, int v, bool value) {
  const uint16_t p = tt16::kVar[v];
  const int w = 1 << v;
  if (value) {
    const uint16_t half = static_cast<uint16_t>(f & p);
    return static_cast<uint16_t>(half | (half >> w));
  }
  const uint16_t half = static_cast<uint16_t>(f & ~p);
  return static_cast<uint16_t>(half | (half << w));
}

TruthTable to_truth_table(uint16_t f) {
  TruthTable t(4);
  for (uint64_t m = 0; m < 16; ++m) t.set(m, ((f >> m) & 1) != 0);
  return t;
}

Lit reduce_balanced(Aig* g, std::vector<Lit> v, bool is_and) {
  if (v.empty()) return is_and ? kLitTrue : kLitFalse;
  while (v.size() > 1) {
    std::vector<Lit> next;
    next.reserve((v.size() + 1) / 2);
    for (size_t i = 0; i + 1 < v.size(); i += 2) {
      next.push_back(is_and ? g->create_and(v[i], v[i + 1])
                            : g->create_or(v[i], v[i + 1]));
    }
    if (v.size() & 1) next.push_back(v.back());
    v = std::move(next);
  }
  return v[0];
}

/// Factored ISOP candidate: balanced AND tree per cube, balanced OR tree
/// over cubes.
Lit build_from_sop(Aig* g, const Lit xs[4], const Sop& sop) {
  std::vector<Lit> cube_lits;
  cube_lits.reserve(sop.num_cubes());
  for (const Cube& c : sop.cubes()) {
    std::vector<Lit> lits;
    for (int v = 0; v < 4; ++v) {
      const LitCode code = c.get(v);
      if (code == LitCode::kPos) lits.push_back(xs[v]);
      if (code == LitCode::kNeg) lits.push_back(lit_not(xs[v]));
    }
    cube_lits.push_back(reduce_balanced(g, std::move(lits), /*is_and=*/true));
  }
  return reduce_balanced(g, std::move(cube_lits), /*is_and=*/false);
}

/// Memoized Shannon decomposition candidate; the memo persists across
/// classes (all candidates share one strashing arena, so sub-functions are
/// shared structurally AND by table).
Lit build_shannon(Aig* g, const Lit xs[4], uint16_t f,
                  std::unordered_map<uint16_t, Lit>* memo) {
  if (f == 0x0000) return kLitFalse;
  if (f == 0xFFFF) return kLitTrue;
  auto it = memo->find(f);
  if (it != memo->end()) return it->second;

  int v = 0;
  while (tt16::flip_var(f, v) == f) ++v;
  Lit result;
  if (f == tt16::kVar[v]) {
    result = xs[v];
  } else if (f == static_cast<uint16_t>(~tt16::kVar[v] & 0xFFFF)) {
    result = lit_not(xs[v]);
  } else {
    const Lit hi = build_shannon(g, xs, cofactor16(f, v, true), memo);
    const Lit lo = build_shannon(g, xs, cofactor16(f, v, false), memo);
    result = g->create_mux(xs[v], hi, lo);
  }
  memo->emplace(f, result);
  return result;
}

int cone_size(const Aig& g, Lit out) {
  std::vector<char> mark(g.num_nodes(), 0);
  std::vector<uint32_t> stack{lit_node(out)};
  mark[lit_node(out)] = 1;
  int count = 0;
  while (!stack.empty()) {
    const uint32_t id = stack.back();
    stack.pop_back();
    if (!g.is_and(id)) continue;
    ++count;
    for (Lit f : {g.fanin0(id), g.fanin1(id)}) {
      if (!mark[lit_node(f)]) {
        mark[lit_node(f)] = 1;
        stack.push_back(lit_node(f));
      }
    }
  }
  return count;
}

/// Extracts the cone of `out` from the shared scratch arena as a
/// straight-line database entry (ascending scratch ids are already
/// topological).
RewriteDb::Entry extract_entry(const Aig& g, Lit out) {
  std::vector<char> mark(g.num_nodes(), 0);
  std::vector<uint32_t> stack{lit_node(out)};
  mark[lit_node(out)] = 1;
  std::vector<uint32_t> cone;
  while (!stack.empty()) {
    const uint32_t id = stack.back();
    stack.pop_back();
    if (!g.is_and(id)) continue;
    cone.push_back(id);
    for (Lit f : {g.fanin0(id), g.fanin1(id)}) {
      if (!mark[lit_node(f)]) {
        mark[lit_node(f)] = 1;
        stack.push_back(lit_node(f));
      }
    }
  }
  std::sort(cone.begin(), cone.end());

  std::unordered_map<uint32_t, uint16_t> db_node;
  db_node.emplace(0, 0);
  for (int i = 0; i < g.num_pis(); ++i) {
    db_node.emplace(g.pi_node(i), static_cast<uint16_t>(1 + i));
  }
  RewriteDb::Entry e;
  auto to_db_lit = [&](Lit l) {
    return static_cast<uint16_t>((db_node.at(lit_node(l)) << 1) |
                                 (l & 1u));
  };
  for (uint32_t id : cone) {
    const uint16_t slot = static_cast<uint16_t>(5 + e.ands.size());
    e.ands.push_back({to_db_lit(g.fanin0(id)), to_db_lit(g.fanin1(id))});
    db_node.emplace(id, slot);
  }
  e.out = to_db_lit(out);
  return e;
}

/// Exhaustive simulation of a database entry; returns its truth table.
uint16_t simulate_entry(const RewriteDb::Entry& e) {
  std::vector<uint16_t> val(5 + e.ands.size(), 0);
  for (int i = 0; i < 4; ++i) val[1 + i] = tt16::kVar[i];
  auto lit_val = [&](uint16_t l) {
    return static_cast<uint16_t>(val[l >> 1] ^ ((l & 1u) ? 0xFFFF : 0x0000));
  };
  for (size_t j = 0; j < e.ands.size(); ++j) {
    val[5 + j] = static_cast<uint16_t>(lit_val(e.ands[j][0]) &
                                       lit_val(e.ands[j][1]));
  }
  return lit_val(e.out);
}

}  // namespace

RewriteDb::RewriteDb() : index_(65536, -1) {
  const NpnTable& npn = NpnTable::instance();
  Aig scratch;
  Lit xs[4];
  for (int i = 0; i < 4; ++i) xs[i] = scratch.add_pi();
  std::unordered_map<uint16_t, Lit> shannon_memo;

  for (uint16_t rep : npn.representatives()) {
    const uint16_t neg = static_cast<uint16_t>(~rep & 0xFFFF);
    const Lit candidates[3] = {
        build_from_sop(&scratch, xs, to_truth_table(rep).isop()),
        lit_not(build_from_sop(&scratch, xs, to_truth_table(neg).isop())),
        build_shannon(&scratch, xs, rep, &shannon_memo),
    };
    Lit best = candidates[0];
    int best_size = cone_size(scratch, best);
    for (int i = 1; i < 3; ++i) {
      const int size = cone_size(scratch, candidates[i]);
      if (size < best_size) {
        best = candidates[i];
        best_size = size;
      }
    }
    Entry e = extract_entry(scratch, best);
    if (simulate_entry(e) != rep) {
      throw std::logic_error("rewrite db: stored network does not match class");
    }
    index_[rep] = static_cast<int32_t>(entries_.size());
    entries_.push_back(std::move(e));
  }
}

const RewriteDb& RewriteDb::instance() {
  static const RewriteDb db;
  return db;
}

Lit RewriteDb::instantiate(Aig* dst, const Entry& e, const Lit slot_lits[4]) {
  std::vector<Lit> val(5 + e.ands.size(), kInvalidLit);
  val[0] = kLitFalse;
  for (int i = 0; i < 4; ++i) val[1 + i] = slot_lits[i];
  auto lit_val = [&](uint16_t l) {
    return lit_not_cond(val[l >> 1], (l & 1u) != 0);
  };
  for (size_t j = 0; j < e.ands.size(); ++j) {
    val[5 + j] = dst->create_and(lit_val(e.ands[j][0]), lit_val(e.ands[j][1]));
  }
  return lit_val(e.out);
}

namespace {

/// One rewriting pass: pick the cheapest cut implementation per node under
/// area flow, then materialize only the chosen cover into a fresh AIG.
Aig rewrite_pass(const Aig& src, const CutOptions& cut_options,
                 size_t* cuts_enumerated) {
  const NpnTable& npn = NpnTable::instance();
  const RewriteDb& db = RewriteDb::instance();
  const CutSet cs = enumerate_cuts(src, cut_options);
  *cuts_enumerated += cs.total_enumerated;

  // Fanout references — the sharing denominator of area flow. Counted over
  // the whole arena: dead strash-shared branches slightly inflate the
  // denominator, which only makes shared leaves look cheaper.
  std::vector<uint32_t> refs(src.num_nodes(), 0);
  for (uint32_t id = 1; id < static_cast<uint32_t>(src.num_nodes()); ++id) {
    if (!src.is_and(id)) continue;
    ++refs[lit_node(src.fanin0(id))];
    ++refs[lit_node(src.fanin1(id))];
  }
  for (int i = 0; i < src.num_pos(); ++i) ++refs[lit_node(src.po_lit(i))];

  // Per-node best cut by area flow: db cost of the cut's class plus the
  // leaves' flows diluted by their fanout. The structural 2-input cut is
  // always enumerated, so every node has a candidate and a do-nothing
  // cover reproduces the source graph.
  std::vector<double> flow(src.num_nodes(), 0.0);
  std::vector<int> best(src.num_nodes(), -1);
  for (uint32_t id = 1; id < static_cast<uint32_t>(src.num_nodes()); ++id) {
    if (!src.is_and(id)) continue;
    const auto& cuts = cs.cuts[id];
    double best_cost = 0.0;
    for (size_t ci = 0; ci < cuts.size(); ++ci) {
      const Cut& c = cuts[ci];
      if (c.size == 1 && c.leaves[0] == id) continue;  // trivial cut
      double cost = db.cost(npn.canonical(c.tt));
      for (int j = 0; j < c.size; ++j) {
        cost += flow[c.leaves[j]] /
                std::max<uint32_t>(1, refs[c.leaves[j]]);
      }
      if (best[id] < 0 || cost < best_cost) {
        best[id] = static_cast<int>(ci);
        best_cost = cost;
      }
    }
    flow[id] = best_cost;
  }

  // Materialize the cover bottom-up from the POs.
  Aig dst;
  std::vector<Lit> mapped(src.num_nodes(), kInvalidLit);
  mapped[0] = kLitFalse;
  for (int i = 0; i < src.num_pis(); ++i) {
    mapped[src.pi_node(i)] = dst.add_pi(src.pi_name(i));
  }

  std::vector<uint32_t> stack;
  auto build = [&](uint32_t root) {
    if (mapped[root] != kInvalidLit) return;
    stack.push_back(root);
    while (!stack.empty()) {
      const uint32_t n = stack.back();
      if (mapped[n] != kInvalidLit) {
        stack.pop_back();
        continue;
      }
      const Cut& c = cs.cuts[n][static_cast<size_t>(best[n])];
      bool ready = true;
      for (int j = 0; j < c.size; ++j) {
        if (mapped[c.leaves[j]] == kInvalidLit) {
          stack.push_back(c.leaves[j]);
          ready = false;
        }
      }
      if (!ready) continue;
      stack.pop_back();

      const NpnEntry& t = npn.entry(c.tt);
      Lit slots[4];
      for (int i = 0; i < 4; ++i) {
        const int v = t.perm(i);
        // Slots wired past the cut width feed classes that provably do not
        // depend on them (NPN preserves support).
        const Lit x = v < c.size ? mapped[c.leaves[v]] : kLitFalse;
        slots[i] = lit_not_cond(x, t.input_neg(i));
      }
      const Lit o = RewriteDb::instantiate(&dst, db.entry(t.canon), slots);
      mapped[n] = lit_not_cond(o, t.output_neg());
    }
  };

  for (int i = 0; i < src.num_pos(); ++i) {
    const Lit po = src.po_lit(i);
    build(lit_node(po));
    dst.add_po(lit_not_cond(mapped[lit_node(po)], lit_complemented(po)),
               src.po_name(i));
  }
  return dst;
}

}  // namespace

Aig rewrite(const Aig& src, const RewriteOptions& options,
            RewriteStats* stats) {
  RewriteStats local;
  RewriteStats* s = stats ? stats : &local;
  *s = RewriteStats{};
  s->ands_before = src.count_reachable_ands();

  Aig result = src;
  int current = s->ands_before;
  for (int pass = 0; pass < options.max_passes; ++pass) {
    Aig next = rewrite_pass(result, options.cuts, &s->cuts_enumerated);
    const int next_ands = next.count_reachable_ands();
    ++s->passes;
    if (next_ands >= current) break;  // pass guard: never accept a regression
    result = std::move(next);
    current = next_ands;
  }
  s->ands_after = current;
  return result;
}

}  // namespace apx::aig
