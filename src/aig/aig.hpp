// Flat, arena-allocated AND-inverter graph — the scalable representation
// behind the quick-synthesis pass (ROADMAP: 10k+-gate circuits; standard
// AIG practice after Mishchenko et al., DAG-aware rewriting).
//
// Every signal is a 32-bit *literal*: bit 0 is the complement flag, the
// upper bits index a node, so inverters are free edge attributes rather
// than nodes. Node 0 is the constant-false node (literal 0 = const 0,
// literal 1 = const 1); primary inputs and AND nodes share one flat arena.
// Nodes are immutable once created and fanins always precede their node,
// so ascending id order IS a topological order — traversals never sort.
//
// create_and() performs one-shot structural hashing: inputs are normalized
// (sorted, constant/identity/complement folded), and an open-addressed
// hash table maps each normalized (fanin0, fanin1) pair to its node, so a
// structurally duplicate AND is never materialized. This is the invariant
// the rewriting pass leans on: "cost of an implementation" is the number
// of hash misses it would take to build it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace apx::aig {

/// Complemented edge: 2*node + (complement? 1 : 0).
using Lit = uint32_t;

inline constexpr Lit kLitFalse = 0;  ///< constant 0 (node 0, plain)
inline constexpr Lit kLitTrue = 1;   ///< constant 1 (node 0, complemented)
inline constexpr Lit kInvalidLit = 0xFFFFFFFFu;

inline Lit make_lit(uint32_t node, bool complement) {
  return (node << 1) | static_cast<Lit>(complement);
}
inline uint32_t lit_node(Lit l) { return l >> 1; }
inline bool lit_complemented(Lit l) { return (l & 1u) != 0; }
inline Lit lit_not(Lit l) { return l ^ 1u; }
/// Conditional complement: l XOR c.
inline Lit lit_not_cond(Lit l, bool c) { return l ^ static_cast<Lit>(c); }

class Aig {
 public:
  Aig();

  // ---- construction ----
  /// Adds a primary input; returns its (plain) literal.
  Lit add_pi(const std::string& name = "");

  /// AND with structural hashing and folding: constant inputs, equal or
  /// complementary inputs, and duplicate structure never create a node.
  Lit create_and(Lit a, Lit b);

  Lit create_or(Lit a, Lit b) {
    return lit_not(create_and(lit_not(a), lit_not(b)));
  }
  Lit create_xor(Lit a, Lit b) {
    // a^b = (a + b)(ab)' — two of the three ANDs share structure with
    // common XNOR/MUX idioms under strashing.
    return create_and(lit_not(create_and(a, b)),
                      lit_not(create_and(lit_not(a), lit_not(b))));
  }
  /// s ? t : e.
  Lit create_mux(Lit s, Lit t, Lit e) {
    return create_or(create_and(s, t), create_and(lit_not(s), e));
  }

  /// Looks up what create_and(a, b) would return *without* inserting:
  /// kInvalidLit when a fresh node would be needed, the folded/hashed
  /// literal otherwise. The rewriting pass uses this for dry-run costing.
  Lit lookup_and(Lit a, Lit b) const;

  int add_po(Lit lit, const std::string& name = "");

  // ---- access ----
  /// Total nodes including the constant node and PIs.
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_pis() const { return static_cast<int>(pis_.size()); }
  int num_pos() const { return static_cast<int>(pos_.size()); }
  /// AND-node count — the area metric of the AIG world.
  int num_ands() const {
    return static_cast<int>(nodes_.size()) - 1 - num_pis();
  }

  bool is_const0(uint32_t node) const { return node == 0; }
  bool is_pi(uint32_t node) const {
    return node != 0 && nodes_[node].fanin0 == kInvalidLit;
  }
  bool is_and(uint32_t node) const {
    return node != 0 && nodes_[node].fanin0 != kInvalidLit;
  }

  Lit fanin0(uint32_t node) const { return nodes_[node].fanin0; }
  Lit fanin1(uint32_t node) const { return nodes_[node].fanin1; }

  /// PI index of a PI node (position in pis()), -1 otherwise.
  int pi_index(uint32_t node) const {
    return is_pi(node) ? static_cast<int>(nodes_[node].fanin1) : -1;
  }
  /// Node of PI `i`.
  uint32_t pi_node(int i) const { return pis_[i]; }
  const std::string& pi_name(int i) const { return pi_names_[i]; }

  Lit po_lit(int i) const { return pos_[i]; }
  const std::string& po_name(int i) const { return po_names_[i]; }

  /// Per-node logic level: constant/PIs 0, ANDs 1 + max(fanin levels).
  std::vector<int> levels() const;

  /// Number of AND nodes in the transitive fanin cone of some PO (the
  /// "live" size; strash-shared dead branches excluded).
  int count_reachable_ands() const;

  /// Structural-hash invariants: fanins precede nodes, normalized fanin
  /// order, no constant/equal/complement fanin pairs, no duplicate
  /// (fanin0, fanin1) AND pairs. Throws std::logic_error on violation.
  void check() const;

 private:
  struct AigNode {
    Lit fanin0 = kInvalidLit;  ///< kInvalidLit marks a PI
    Lit fanin1 = kInvalidLit;  ///< for PIs: the PI index
  };

  void grow_table();
  Lit strash_find_or_insert(Lit a, Lit b, bool insert_allowed);

  std::vector<AigNode> nodes_;
  std::vector<uint32_t> pis_;
  std::vector<std::string> pi_names_;
  std::vector<Lit> pos_;
  std::vector<std::string> po_names_;

  // Open-addressed strash table: slot holds node+1 (0 = empty). Sized a
  // power of two; grown at ~70% load.
  std::vector<uint32_t> table_;
  size_t table_used_ = 0;
};

}  // namespace apx::aig
