// Priority k-cut enumeration over an AIG, with per-cut truth tables.
//
// A cut of node n is a set of nodes ("leaves") such that every path from a
// PI to n passes through a leaf; the cut's truth table expresses n as a
// function of its leaves. Cuts of an AND node are products of its fanins'
// cuts (leaf-set union, truth tables ANDed after expansion into the merged
// leaf space, complemented edges folded into the child table).
//
// The full cut set is exponential, so this is *priority* enumeration in
// the standard style: per node, keep only the `max_cuts` best cuts under a
// (size, lexicographic-leaves) order, and always keep the trivial cut {n}
// so every node has at least one cut and enumeration never starves
// upstream. With k ≤ 4 each truth table is a single uint16 over the cut's
// leaves in slot order — exactly the domain of the NPN table, which is
// what makes cut rewriting a table lookup.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "aig/aig.hpp"

namespace apx::aig {

inline constexpr int kMaxCutSize = 4;

struct Cut {
  std::array<uint32_t, kMaxCutSize> leaves{};  ///< sorted node ids
  uint8_t size = 0;
  /// Function of the leaves (leaf i = variable i), always stored as a full
  /// 4-variable table: variables >= size are replicated don't-cares.
  uint16_t tt = 0;
};

struct CutOptions {
  int max_cuts = 8;  ///< cuts kept per node (including the trivial cut)
};

struct CutSet {
  /// cuts[node] — indexed by node id; empty for the constant node.
  std::vector<std::vector<Cut>> cuts;
  /// Total cuts enumerated before truncation (throughput accounting).
  size_t total_enumerated = 0;
};

/// Enumerates priority cuts for every node, in one ascending-id pass.
CutSet enumerate_cuts(const Aig& aig, const CutOptions& options = {});

}  // namespace apx::aig
