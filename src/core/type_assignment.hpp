// Type assignment (paper Sec. 2.1.1): walking the network in reverse
// topological order, every node is assigned one of the types 0 / 1 / EX / DC
// from the types its fanouts requested, and then requests types for its own
// fanins based on their local observabilities.
#pragma once

#include <vector>

#include "core/approx_types.hpp"
#include "core/observability.hpp"
#include "network/network.hpp"

namespace apx {

struct TypeAssignmentOptions {
  /// A fanin whose total observability is below this fraction of the
  /// node's maximum fanin observability is requested type DC (rule i).
  double dc_fraction = 0.1;
  /// If max(obs0, obs1) / min(obs0, obs1) exceeds this, the dominant phase
  /// is requested (rule ii); otherwise EX is requested (rule iii).
  double phase_ratio = 2.0;
  /// Simulation words used for the observability analysis.
  int sim_words = 64;
  uint64_t seed = 0x0B5E11;

  /// When true, a type-EX node requests type EX for every fanin it depends
  /// on. That is the premise under which the paper's composition theorem
  /// makes exact cube selection a construction-level guarantee — but EX
  /// floods transitively and suppresses most approximation, so the default
  /// follows the paper's prose (observability-based requests from every
  /// node) and relies on the verification + repair stage for correctness.
  bool strict_ex_requests = false;
};

struct TypeAssignment {
  /// Assigned type per node (indexed by NodeId). PIs and constants carry
  /// kEx (they are never modified).
  std::vector<NodeType> types;

  NodeType of(NodeId id) const { return types[id]; }
  int count(NodeType t) const;
};

/// Assigns types given the desired approximation direction of each PO.
TypeAssignment assign_types(const Network& net,
                            const std::vector<ApproxDirection>& directions,
                            const TypeAssignmentOptions& options = {});

/// Variant reusing an existing observability analysis.
TypeAssignment assign_types(const Network& net,
                            const std::vector<ApproxDirection>& directions,
                            const ObservabilityAnalysis& obs,
                            const TypeAssignmentOptions& options);

}  // namespace apx
