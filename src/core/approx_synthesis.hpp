// Iterative synthesis of approximate logic circuits (paper Sec. 2.2).
//
// Pipeline: type assignment -> stage 1 "approximation of SOPs" (discard
// insignificant cubes from phase-matched SOPs) -> per-PO correctness check
// (BDD with SAT fallback) -> stage 2 "ensuring correctness" (backward
// traversal to sources of incorrect approximation, repaired first by
// ODC-based cube selection, then by exact cube selection which the paper's
// theorem guarantees correct).
//
// One type-assignment refinement is made relative to the paper's prose and
// justified in DESIGN.md: a node assigned type EX requests type EX for the
// fanins it depends on. This is exactly the condition under which the
// paper's composition theorem yields a correctness guarantee for exact cube
// selection at the primary outputs.
#pragma once

#include <vector>

#include "core/approx_types.hpp"
#include "core/type_assignment.hpp"
#include "network/network.hpp"

namespace apx {

struct ApproxOptions {
  TypeAssignmentOptions type_options;

  /// Stage-1 significance threshold: a cube whose activation probability
  /// (under fanin signal probabilities) is below this is discarded. This is
  /// the main overhead-vs-coverage knob (0 disables stage-1 reduction).
  double significance_threshold = 0.02;

  /// Also reduce type-EX nodes in stage 1 (the paper reduces every node;
  /// EX reductions are usually undone by the repair stage, so this mostly
  /// trades runtime for exploration).
  bool reduce_ex_nodes = false;

  /// Cap on repair rounds before the guaranteed exact-selection fallback.
  int max_repair_rounds = 12;

  /// Ablation: try ODC-based cube selection before exact selection when
  /// repairing a node (paper Sec. 2.2). Off = exact-only repairs.
  bool use_odc_repair = true;

  /// Ablation: stage-1 additionally discards cubes binding DC-typed fanins
  /// at type-0/1 nodes (this is what removes whole DC cones).
  bool drop_dc_cubes = true;

  /// Ablation: stage-1 drops non-conforming cubes at typed nodes (the
  /// composition-theorem premise; cuts repair pressure drastically).
  bool conformance_filter = true;

  /// BDD node budget for verification and per-node correctness analysis.
  /// Overflow falls back to (complete) SAT checking plus sampled
  /// percentage estimates, so a small budget only trades exactness of the
  /// reported approximation percentage, never correctness.
  size_t bdd_budget = 1u << 18;

  /// Conflict cap per SAT verification query (see ApproxOracle); smaller
  /// values fail faster toward the guaranteed repair fallbacks.
  int64_t sat_conflict_budget = 5000;

  /// Random-simulation words for observability/signal probabilities.
  int sim_words = 64;
  uint64_t seed = 0x0B5E11;

  /// Parallelism cap (shared task pool) for the final approximation-
  /// percentage sweep; 0 = apx::thread_count() (APX_THREADS policy). The
  /// sweep is partitioned into a fixed number of chunks derived from the
  /// PO count alone (one private oracle per chunk), so results are
  /// bit-identical for any value. The verification screening is a serial
  /// bit-parallel simulation prescreen plus shared-oracle exact checks of
  /// the prescreen-clean POs; the mutating repair loop is always serial.
  int num_threads = 0;
};

struct PoApproxStats {
  ApproxDirection direction = ApproxDirection::kZeroApprox;
  bool verified = false;
  double approximation_pct = 0.0;
  /// Fraction of screening-prescreen sample bits that violated the PO's
  /// direction contract (0 when the prescreen observed no violation; an
  /// estimate of the pre-repair error rate, not of approximation_pct).
  double sim_violation_rate = 0.0;
};

struct ApproxResult {
  /// The approximate logic circuit: same PIs (by order) and one PO per
  /// original PO, cleaned of unused logic.
  Network approx;
  /// Types on the *original* network's node ids.
  TypeAssignment types;
  std::vector<PoApproxStats> po_stats;
  /// Total node repairs performed by stage 2.
  int repairs = 0;
  /// Number of POs already correct after stage 1 (paper: usually all).
  int correct_after_stage1 = 0;

  bool all_verified() const {
    for (const auto& s : po_stats) {
      if (!s.verified) return false;
    }
    return true;
  }
};

/// Synthesizes a 0/1-approximation of every PO of `net` per `directions`.
ApproxResult synthesize_approximation(
    const Network& net, const std::vector<ApproxDirection>& directions,
    const ApproxOptions& options = {});

}  // namespace apx
