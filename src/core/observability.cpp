#include "core/observability.hpp"

#include "core/approx_types.hpp"
#include "sim/kernels.hpp"

namespace apx {

std::string to_string(NodeType t) {
  switch (t) {
    case NodeType::kZero:
      return "0";
    case NodeType::kOne:
      return "1";
    case NodeType::kEx:
      return "EX";
    case NodeType::kDc:
      return "DC";
  }
  return "?";
}

std::string to_string(ApproxDirection d) {
  return d == ApproxDirection::kZeroApprox ? "0-approx" : "1-approx";
}

namespace {

// Evaluates one node's SOP on the given fanin value words, with fanin k's
// column complemented, into `out`.
void eval_with_flip(const Node& n, const std::vector<WordSpan>& fanin,
                    int flip_index, std::vector<uint64_t>& out) {
  const Sop& sop = n.sop;
  const int words = static_cast<int>(out.size());
  for (int w = 0; w < words; ++w) {
    uint64_t acc = 0;
    for (const Cube& c : sop.cubes()) {
      uint64_t t = ~0ULL;
      for (int k = 0; k < sop.num_vars() && t; ++k) {
        LitCode code = c.get(k);
        if (code == LitCode::kFree) continue;
        uint64_t v = fanin[k][w];
        if (k == flip_index) v = ~v;
        t &= (code == LitCode::kPos) ? v : ~v;
      }
      acc |= t;
      if (acc == ~0ULL) break;
    }
    out[w] = acc;
  }
}

}  // namespace

ObservabilityAnalysis::ObservabilityAnalysis(const Network& net, int words,
                                             uint64_t seed) {
  Simulator sim(net);
  sim.run(PatternSet::random(net.num_pis(), words, seed));

  obs_.resize(net.num_nodes());
  sig_prob_.resize(net.num_nodes(), 0.0);
  const double total_patterns = 64.0 * words;

  for (NodeId id = 0; id < net.num_nodes(); ++id) {
    sig_prob_[id] = sim.signal_probability(id);
    const Node& n = net.node(id);
    if (n.kind != NodeKind::kLogic) continue;
    obs_[id].resize(n.fanins.size());

    std::vector<WordSpan> fanin;
    fanin.reserve(n.fanins.size());
    for (NodeId f : n.fanins) fanin.push_back(sim.value(f));
    const WordSpan golden = sim.value(id);

    std::vector<uint64_t> flipped(words);
    for (size_t k = 0; k < n.fanins.size(); ++k) {
      eval_with_flip(n, fanin, static_cast<int>(k), flipped);
      // diff = golden ^ flipped splits over fanin k's value x as
      // c1 = |diff & x| and c0 = |diff| - c1, with |diff| by the
      // directional identity |a ^ b| = |~a & b| + |a & ~b|.
      const uint64_t* g = golden.data();
      const uint64_t* fl = flipped.data();
      const uint64_t* x = fanin[k].data();
      int64_t c1 = popcount_xor_and(g, fl, x, words, ~0ULL);
      int64_t c0 = popcount_andnot(g, fl, words, ~0ULL) +
                   popcount_andnot(fl, g, words, ~0ULL) - c1;
      obs_[id][k].obs0 = static_cast<double>(c0) / total_patterns;
      obs_[id][k].obs1 = static_cast<double>(c1) / total_patterns;
    }
  }
}

}  // namespace apx
