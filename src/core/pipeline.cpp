#include "core/pipeline.hpp"

#include "core/trace.hpp"
#include "mapping/optimize.hpp"

namespace apx {

double PipelineResult::mean_approximation_pct() const {
  if (synthesis.po_stats.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : synthesis.po_stats) sum += s.approximation_pct;
  return sum / static_cast<double>(synthesis.po_stats.size());
}

PipelineResult run_ced_pipeline(const Network& net,
                                const PipelineOptions& options) {
  trace::Span pipeline_span("pipeline");
  PipelineResult result;

  // 1. Quick synthesis and mapping of the functional circuit.
  Network optimized;
  {
    trace::Span s("pipeline.quick_synthesis");
    optimized = quick_synthesis(net);
  }
  {
    trace::Span s("pipeline.map_functional");
    result.mapped_original = technology_map(optimized, options.map_options);
  }

  // 2. Reliability analysis on the mapped netlist decides, per output,
  //    which error direction dominates and hence the approximation type.
  {
    trace::Span s("pipeline.reliability");
    result.reliability =
        analyze_reliability(result.mapped_original, options.reliability);
    result.directions = choose_directions(result.reliability);
  }

  // 3. Approximate-logic synthesis on the technology-independent network.
  {
    trace::Span s("pipeline.synthesis");
    result.synthesis =
        synthesize_approximation(optimized, result.directions, options.approx);
  }

  // 4. Map the approximate circuit with the same library/script.
  {
    trace::Span s("pipeline.map_checkgen");
    result.mapped_checkgen =
        technology_map(result.synthesis.approx, options.map_options);
  }

  // 5. Assemble and measure the CED design.
  {
    trace::Span s("pipeline.assemble_ced");
    result.ced = build_ced_design(result.mapped_original,
                                  result.mapped_checkgen, result.directions);
  }
  if (options.logic_sharing) {
    trace::Span s("pipeline.logic_sharing");
    result.sharing = apply_logic_sharing(result.ced, options.sharing);
  }
  {
    trace::Span s("pipeline.coverage");
    result.coverage = evaluate_ced_coverage(result.ced, options.coverage);
  }
  {
    trace::Span s("pipeline.overheads");
    result.overheads = measure_overheads(result.ced);
    result.original_delay = mapped_delay(result.mapped_original);
    result.checkgen_delay = mapped_delay(result.mapped_checkgen);
  }
  return result;
}

}  // namespace apx
