// CED construction and evaluation (paper Sec. 3, Fig. 2): combines the
// functional circuit, a check-symbol generator (the approximate logic
// circuit or a baseline predictor), per-output checkers, and a two-rail
// consolidation tree into one gate-level design, then measures CED coverage
// by random fault injection and area/power overheads by gate counting and
// switching activity.
#pragma once

#include <cstdint>
#include <vector>

#include "core/approx_types.hpp"
#include "core/checker.hpp"
#include "network/network.hpp"
#include "sim/fault_engine.hpp"

namespace apx {

/// A complete CED-protected design with bookkeeping for measurement.
struct CedDesign {
  Network design;

  /// Gate-level fault sites of the functional circuit (ids in `design`).
  std::vector<NodeId> functional_nodes;
  /// Drivers of the functional POs inside `design` (order = original POs).
  std::vector<NodeId> functional_outputs;
  /// Nodes added for the check-symbol generator.
  std::vector<NodeId> checkgen_nodes;
  /// Nodes added for checkers + two-rail tree.
  std::vector<NodeId> checker_nodes;
  /// Final two-rail pair; an error is signalled when the rails agree.
  TwoRail error_pair;

  int functional_area() const { return static_cast<int>(functional_nodes.size()); }
  int overhead_area() const {
    return static_cast<int>(checkgen_nodes.size() + checker_nodes.size());
  }
};

/// Builds the Fig. 2 architecture: `original` is the (mapped) functional
/// circuit, `checkgen` the (mapped) approximate circuit with one PO per
/// original PO, and `directions[o]` the protected direction of output o.
/// Checker cells are emitted as 1-2 input gates so the whole design is
/// gate-level.
CedDesign build_ced_design(const Network& original, const Network& checkgen,
                           const std::vector<ApproxDirection>& directions);

/// Duplication-style CED: equality checkers on the POs listed in
/// `checked_pos` between the functional circuit and `predictor` (which must
/// have those POs). Used by the partial-duplication baseline.
CedDesign build_duplication_ced(const Network& original,
                                const Network& predictor,
                                const std::vector<int>& checked_pos);

/// CED coverage by Monte-Carlo single-stuck-at fault injection over the
/// functional gates (paper Sec. 4 fault model).
struct CoverageResult {
  int64_t runs = 0;
  int64_t erroneous = 0;  ///< runs where some functional PO differs
  int64_t detected = 0;   ///< erroneous runs flagged by the error pair

  /// Detected fraction of erroneous runs, clamped to [0, 1]. Campaigns on
  /// trivial designs (no logic, zero samples) legitimately record zero
  /// erroneous runs — the result must stay 0, never NaN.
  double coverage() const {
    if (erroneous <= 0 || detected <= 0) return 0.0;
    const double c =
        static_cast<double>(detected) / static_cast<double>(erroneous);
    return c < 1.0 ? c : 1.0;
  }
};

struct CoverageOptions {
  int num_fault_samples = 2000;
  int words_per_fault = 4;
  /// Pattern vectors per fault. 0 (default) = words_per_fault * 64; a
  /// positive value overrides words_per_fault and need not be a multiple
  /// of 64 — padding bits of the final partial word are masked out of both
  /// the engine's detection decisions and the coverage accounting.
  int vectors_per_fault = 0;
  /// Fault model injected over the functional gates. kSingleStuckAt takes
  /// the exact legacy code path (bit-identical results); the other models
  /// use the engine's stock samplers (FaultSimEngine::make_sampler) with
  /// the two knobs below.
  FaultModel model = FaultModel::kSingleStuckAt;
  /// Simultaneous stuck-at sites per sample under kMultiStuckAt.
  int sites_per_fault = 2;
  /// Forced vector-window length under kTransientBurst.
  int burst_vectors = 16;
  /// Fault samples amortizing one shared golden simulation in the
  /// FaultSimEngine (see src/sim/fault_engine.hpp).
  int faults_per_batch = 64;
  /// Parallelism cap on the shared task pool; 0 = apx::thread_count()
  /// (APX_THREADS policy). Counts are bit-identical for any value
  /// (deterministic per-sample seeds, per-sample result slots).
  int num_threads = 0;
  uint64_t seed = 0xCED;
};

CoverageResult evaluate_ced_coverage(const CedDesign& ced,
                                     const CoverageOptions& options = {});

/// Area and switching-activity ("power") overheads of the CED logic
/// relative to the functional circuit (paper Table 2 metrics).
///
/// The headline percentages cover the check-symbol generator only, matching
/// the paper's accounting (its per-output checkers and two-rail tree are
/// common to every compared scheme; e.g. frg2's 139 checker cells alone
/// would exceed the 30% the paper reports). The checker cost is still
/// measured and exposed via the *_with_checkers variants.
struct OverheadReport {
  int functional_area = 0;
  int checkgen_area = 0;
  int checker_area = 0;
  double functional_activity = 0.0;
  double checkgen_activity = 0.0;
  double checker_activity = 0.0;

  int overhead_area = 0;             ///< checkgen + checkers (gates)
  double overhead_activity = 0.0;    ///< checkgen + checkers (activity)

  // All percentage helpers return 0 (never NaN/inf) on degenerate
  // denominators — a wire-only functional circuit has zero mapped area
  // and zero switching activity, and `apxced ced` prints these directly.
  double area_overhead_pct() const {
    return functional_area > 0 ? 100.0 * checkgen_area / functional_area : 0.0;
  }
  double power_overhead_pct() const {
    return functional_activity > 0.0
               ? 100.0 * checkgen_activity / functional_activity
               : 0.0;
  }
  double area_overhead_with_checkers_pct() const {
    return functional_area > 0 ? 100.0 * overhead_area / functional_area : 0.0;
  }
  double power_overhead_with_checkers_pct() const {
    return functional_activity > 0.0
               ? 100.0 * overhead_activity / functional_activity
               : 0.0;
  }
};

OverheadReport measure_overheads(const CedDesign& ced, int sim_words = 128,
                                 uint64_t seed = 0x9AC7);

}  // namespace apx
