// Global observability-don't-care analysis. The paper (Sec. 2.2) observes
// that the iterative algorithm implicitly explores the *global* ODC space:
// an internal node may be approximated incorrectly as long as the error is
// never observable at any primary output. This module computes that space
// exactly: for node n, ODC(n) = the set of input vectors on which toggling
// n changes no PO. Its fraction measures how much slack the synthesis can
// exploit at each node.
//
// Implementation: each PO cone is rebuilt with node n replaced by a fresh
// BDD variable z; the Boolean difference dPO/dz, OR-ed over POs and
// evaluated over the PI space, is the global observability of n.
#pragma once

#include <optional>
#include <vector>

#include "network/network.hpp"

namespace apx {

struct OdcAnalysisOptions {
  size_t bdd_budget = 1u << 20;
};

/// Global ODC fraction per node: odc[id] = P[input vectors on which node
/// id is unobservable at every PO] (1.0 for nodes outside all PO cones;
/// 0.0 reported for PIs/constants only when they are observable).
/// Returns nullopt if the BDD budget is exceeded.
std::optional<std::vector<double>> global_odc_fractions(
    const Network& net, const OdcAnalysisOptions& options = {});

}  // namespace apx
