// Shared vocabulary of the approximate-logic synthesis core (paper Sec. 2):
// per-node approximation types and per-output approximation directions.
#pragma once

#include <cstdint>
#include <string>

#include "reliability/reliability.hpp"  // ApproxDirection

namespace apx {

/// Approximation type assigned to each node of the multi-level network
/// (paper Sec. 2.1.1).
enum class NodeType : uint8_t {
  kZero,  ///< the 0-minterm space of the node is essential (off-set kept)
  kOne,   ///< the 1-minterm space of the node is essential (on-set kept)
  kEx,    ///< both minterm spaces essential: node must stay exact
  kDc,    ///< neither space essential: node may change arbitrarily
};

std::string to_string(NodeType t);
std::string to_string(ApproxDirection d);

/// The node type corresponding to a PO approximation direction: a PO that
/// is 0-approximated needs its driver's off-set preserved (type 0), and
/// symmetrically for 1-approximation.
inline NodeType type_for_direction(ApproxDirection d) {
  return d == ApproxDirection::kZeroApprox ? NodeType::kZero : NodeType::kOne;
}

}  // namespace apx
