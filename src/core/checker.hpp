// Totally self-checking checker construction (paper Sec. 3.2, Fig. 3).
//
// Per protected output, a two-gate checker maps the asymmetric codeword
// space {(X,Y)} into the two-rail code {01, 10}:
//
//   0-approximation (X=0 => Y=0; invalid codeword X=0,Y=1):
//     c1 = ~Y, c2 = X & Y        (valid -> c1 != c2, invalid 01 -> 00)
//   1-approximation (X=1 => Y=1; invalid codeword X=1,Y=0):
//     c1 = Y,  c2 = ~X & ~Y      (valid -> c1 != c2, invalid 10 -> 00)
//
// Per-output pairs are consolidated with a conventional TSC two-rail
// checker tree (z1 = a1 b1 + a2 b2, z2 = a1 b2 + a2 b1); the final pair
// signals an error whenever z1 == z2.
#pragma once

#include <utility>
#include <vector>

#include "core/approx_types.hpp"
#include "network/network.hpp"

namespace apx {

/// A two-rail signal pair; valid (no error) iff the two rails differ.
struct TwoRail {
  NodeId rail1 = kNullNode;
  NodeId rail2 = kNullNode;
};

/// Builds the Fig. 3 checker for one protected output inside `net`.
/// `circuit_out` is the functional output Y, `check_out` the approximate
/// circuit's output X.
TwoRail build_approx_checker(Network& net, NodeId circuit_out,
                             NodeId check_out, ApproxDirection direction);

/// Builds an equality checker pair for exact duplication-style CED:
/// valid iff a == b (pair = (a, ~b)).
TwoRail build_equality_checker(Network& net, NodeId a, NodeId b);

/// Consolidates two-rail pairs with a tree of TSC two-rail checker cells.
/// Returns the root pair. An empty input list yields a constant valid pair.
TwoRail build_two_rail_tree(Network& net, std::vector<TwoRail> pairs);

/// Single TSC two-rail checker cell.
TwoRail two_rail_cell(Network& net, const TwoRail& a, const TwoRail& b);

}  // namespace apx
