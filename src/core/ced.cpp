#include "core/ced.hpp"

#include <stdexcept>

#include "core/task_pool.hpp"
#include "core/trace.hpp"
#include "sim/fault_engine.hpp"
#include "sim/kernels.hpp"
#include "sim/simulator.hpp"

namespace apx {
namespace {

// Appends `src` into `dest` over the shared PI list, recording the new ids
// of src's logic nodes into `added` and returning the full node map.
std::vector<NodeId> append_circuit(Network& dest, const Network& src,
                                   const std::vector<NodeId>& pi_map,
                                   std::vector<NodeId>* added) {
  int before = dest.num_nodes();
  std::vector<NodeId> map = src.append_into(dest, pi_map);
  if (added != nullptr) {
    for (NodeId id = before; id < dest.num_nodes(); ++id) {
      if (dest.node(id).kind == NodeKind::kLogic) added->push_back(id);
    }
  }
  return map;
}

void record_new_logic(const Network& net, int from, std::vector<NodeId>* out) {
  for (NodeId id = from; id < net.num_nodes(); ++id) {
    if (net.node(id).kind == NodeKind::kLogic) out->push_back(id);
  }
}

}  // namespace

CedDesign build_ced_design(const Network& original, const Network& checkgen,
                           const std::vector<ApproxDirection>& directions) {
  if (original.num_pis() != checkgen.num_pis() ||
      original.num_pos() != checkgen.num_pos() ||
      directions.size() != static_cast<size_t>(original.num_pos())) {
    throw std::logic_error("build_ced_design: interface mismatch");
  }
  CedDesign ced;
  ced.design.set_name(original.name() + "_ced");
  std::vector<NodeId> pi_map;
  for (NodeId pi : original.pis()) {
    pi_map.push_back(ced.design.add_pi(original.node(pi).name));
  }
  std::vector<NodeId> omap =
      append_circuit(ced.design, original, pi_map, &ced.functional_nodes);
  std::vector<NodeId> cmap =
      append_circuit(ced.design, checkgen, pi_map, &ced.checkgen_nodes);

  for (int o = 0; o < original.num_pos(); ++o) {
    NodeId driver = omap[original.po(o).driver];
    ced.functional_outputs.push_back(driver);
    ced.design.add_po(original.po(o).name, driver);
  }

  int checker_start = ced.design.num_nodes();
  std::vector<TwoRail> pairs;
  for (int o = 0; o < original.num_pos(); ++o) {
    pairs.push_back(build_approx_checker(ced.design,
                                         omap[original.po(o).driver],
                                         cmap[checkgen.po(o).driver],
                                         directions[o]));
  }
  ced.error_pair = build_two_rail_tree(ced.design, std::move(pairs));
  record_new_logic(ced.design, checker_start, &ced.checker_nodes);

  ced.design.add_po("err_rail1", ced.error_pair.rail1);
  ced.design.add_po("err_rail2", ced.error_pair.rail2);
  ced.design.check();
  return ced;
}

CedDesign build_duplication_ced(const Network& original,
                                const Network& predictor,
                                const std::vector<int>& checked_pos) {
  if (original.num_pis() != predictor.num_pis()) {
    throw std::logic_error("build_duplication_ced: PI mismatch");
  }
  CedDesign ced;
  ced.design.set_name(original.name() + "_dup_ced");
  std::vector<NodeId> pi_map;
  for (NodeId pi : original.pis()) {
    pi_map.push_back(ced.design.add_pi(original.node(pi).name));
  }
  std::vector<NodeId> omap =
      append_circuit(ced.design, original, pi_map, &ced.functional_nodes);
  std::vector<NodeId> pmap =
      append_circuit(ced.design, predictor, pi_map, &ced.checkgen_nodes);

  for (int o = 0; o < original.num_pos(); ++o) {
    NodeId driver = omap[original.po(o).driver];
    ced.functional_outputs.push_back(driver);
    ced.design.add_po(original.po(o).name, driver);
  }

  int checker_start = ced.design.num_nodes();
  std::vector<TwoRail> pairs;
  for (int po : checked_pos) {
    pairs.push_back(build_equality_checker(ced.design,
                                           omap[original.po(po).driver],
                                           pmap[predictor.po(po).driver]));
  }
  ced.error_pair = build_two_rail_tree(ced.design, std::move(pairs));
  record_new_logic(ced.design, checker_start, &ced.checker_nodes);

  ced.design.add_po("err_rail1", ced.error_pair.rail1);
  ced.design.add_po("err_rail2", ced.error_pair.rail2);
  ced.design.check();
  return ced;
}

CoverageResult evaluate_ced_coverage(const CedDesign& ced,
                                     const CoverageOptions& options) {
  trace::Span span("ced.coverage");
  CoverageResult result;
  if (ced.functional_nodes.empty() || options.num_fault_samples <= 0) {
    return result;
  }
  FaultSimEngine engine(ced.design);
  CampaignOptions copt;
  copt.num_fault_samples = options.num_fault_samples;
  copt.words_per_fault = options.words_per_fault;
  copt.vectors_per_fault = options.vectors_per_fault;
  copt.faults_per_batch = options.faults_per_batch;
  copt.num_threads = options.num_threads;
  copt.seed = options.seed;

  const std::vector<NodeId>& sites = ced.functional_nodes;

  // Per-sample slots: pool workers write disjoint rows, reduced in sample
  // order afterwards (ordered merge), so counts are bit-identical for any
  // thread count.
  struct Row {
    int64_t erroneous = 0;
    int64_t detected = 0;
  };
  std::vector<Row> rows(options.num_fault_samples);
  // Per-worker "any functional output differs" rows, reduced by the
  // popcount kernels. The tail mask keeps padding bits of a partial final
  // word (when vectors_per_fault is not a multiple of 64) out of the
  // counts. The rails agree exactly where the checker flags an error, so
  // detected = |err| - |(z1 ^ z2) & err|. The accounting is identical for
  // every fault model — only the sampler differs.
  const int slots = resolve_thread_option(options.num_threads);
  std::vector<std::vector<uint64_t>> err_scratch(slots);
  auto account = [&](int i, const FaultView& v) {
    Row& row = rows[i];
    const int W = v.num_words();
    const uint64_t tail = v.word_mask(W - 1);
    std::vector<uint64_t>& err = err_scratch[v.worker_slot()];
    err.assign(static_cast<size_t>(W), 0);
    for (NodeId out : ced.functional_outputs) {
      accumulate_xor_or(err.data(), v.golden(out), v.faulty(out), W);
    }
    const uint64_t* z1 = v.faulty(ced.error_pair.rail1);
    const uint64_t* z2 = v.faulty(ced.error_pair.rail2);
    const int64_t erroneous = popcount_words(err.data(), W, tail);
    row.erroneous += erroneous;
    row.detected += erroneous - popcount_xor_and(z1, z2, err.data(), W, tail);
  };
  if (options.model == FaultModel::kSingleStuckAt) {
    // The legacy uniform stuck-at sampler, verbatim: campaigns under the
    // default model reproduce historical results bit for bit.
    auto sampler = [&sites](uint64_t sample_seed) {
      SplitMix64 rng(sample_seed);
      NodeId site = sites[rng.next() % sites.size()];
      return StuckFault{site, static_cast<bool>(rng.next() & 1)};
    };
    engine.run_campaign(
        copt, sampler,
        [&](int i, const StuckFault&, const FaultView& v) { account(i, v); });
  } else {
    copt.model = options.model;
    copt.sites_per_fault = options.sites_per_fault;
    copt.burst_vectors = options.burst_vectors;
    engine.run_campaign(
        copt, FaultSimEngine::make_sampler(options.model, sites, copt),
        [&](int i, const FaultSpec&, const FaultView& v) { account(i, v); });
  }
  for (const Row& row : rows) {
    result.erroneous += row.erroneous;
    result.detected += row.detected;
  }
  const int64_t vectors = options.vectors_per_fault > 0
                              ? options.vectors_per_fault
                              : static_cast<int64_t>(options.words_per_fault) * 64;
  result.runs = static_cast<int64_t>(options.num_fault_samples) * vectors;
  return result;
}

OverheadReport measure_overheads(const CedDesign& ced, int sim_words,
                                 uint64_t seed) {
  trace::Span span("ced.overheads");
  OverheadReport report;
  report.functional_area = ced.functional_area();
  report.checkgen_area = static_cast<int>(ced.checkgen_nodes.size());
  report.checker_area = static_cast<int>(ced.checker_nodes.size());
  report.overhead_area = ced.overhead_area();

  Simulator sim(ced.design);
  sim.run(PatternSet::random(ced.design.num_pis(), sim_words, seed));
  for (NodeId id : ced.functional_nodes) {
    report.functional_activity += sim.switching_activity(id);
  }
  for (NodeId id : ced.checkgen_nodes) {
    report.checkgen_activity += sim.switching_activity(id);
  }
  for (NodeId id : ced.checker_nodes) {
    report.checker_activity += sim.switching_activity(id);
  }
  report.overhead_activity = report.checkgen_activity + report.checker_activity;
  return report;
}

}  // namespace apx
