// Error masking with approximate logic circuits (the paper's future-work
// item (ii): "combined error detection and error masking to enhance circuit
// reliability").
//
// The approximation invariant enables forward error masking, not just
// detection: if X is a 0-approximation of Y (X=0 => Y=0), then the corrected
// output Y* = Y AND X equals Y in fault-free operation, and any 0->1 error
// at Y is silently masked whenever X=0. Dually, a 1-approximation masks
// 1->0 errors with Y* = Y OR X. Masking composes with detection: the same
// checkers still flag the error while the corrected output hides it.
#pragma once

#include <cstdint>
#include <vector>

#include "core/approx_types.hpp"
#include "core/ced.hpp"
#include "network/network.hpp"

namespace apx {

/// A CED design augmented with corrected (masked) outputs.
struct MaskingDesign {
  CedDesign ced;
  /// Drivers of the corrected outputs Y* (same order as the original POs);
  /// these are also POs of ced.design named "<po>_masked".
  std::vector<NodeId> masked_outputs;
  /// Gates added for the masking layer (one AND/OR per output).
  std::vector<NodeId> masking_nodes;
};

/// Builds the Fig. 2 CED architecture plus the masking layer.
MaskingDesign build_masking_design(const Network& original,
                                   const Network& checkgen,
                                   const std::vector<ApproxDirection>& dirs);

/// Fault-injection comparison of raw vs masked output error rates.
struct MaskingResult {
  int64_t runs = 0;
  int64_t raw_errors = 0;     ///< runs where some raw PO is wrong
  int64_t masked_errors = 0;  ///< runs where some corrected PO is wrong

  double raw_error_rate() const {
    return runs > 0 ? static_cast<double>(raw_errors) / runs : 0.0;
  }
  double masked_error_rate() const {
    return runs > 0 ? static_cast<double>(masked_errors) / runs : 0.0;
  }
  /// Fraction of erroneous runs the masking layer corrects.
  double masking_effectiveness() const {
    return raw_errors > 0
               ? 1.0 - static_cast<double>(masked_errors) / raw_errors
               : 0.0;
  }
};

MaskingResult evaluate_masking(const MaskingDesign& design,
                               const CoverageOptions& options = {});

}  // namespace apx
