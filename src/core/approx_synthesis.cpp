#include "core/approx_synthesis.hpp"

#include <algorithm>

#include "bdd/network_bdd.hpp"
#include "core/cube_selection.hpp"
#include "core/task_pool.hpp"
#include "core/trace.hpp"
#include "core/verify.hpp"
#include "mapping/optimize.hpp"
#include "network/topology_view.hpp"
#include "sim/kernels.hpp"
#include "sim/simulator.hpp"
#include "sop/minimize.hpp"

namespace apx {
namespace {

// The node's SOP written in the phase matching its type: off-set (zero
// phase) for type-0 nodes, on-set otherwise (paper Sec. 2.1.2).
Sop phase_sop_of(const Sop& onset, NodeType t) {
  if (t == NodeType::kZero) {
    Sop off = Sop::complement(onset);
    off.make_scc_free();
    return off;
  }
  return onset;
}

// Converts a phase-matched cover back to the stored on-set form.
Sop onset_from_phase(const Sop& phase, NodeType t) {
  if (t == NodeType::kZero) {
    Sop on = Sop::complement(phase);
    on.make_scc_free();
    if (on.num_vars() <= 12) on = minimize(on);
    return on;
  }
  return phase;
}

class SynthesisEngine {
 public:
  SynthesisEngine(const Network& net,
                  const std::vector<ApproxDirection>& directions,
                  const ApproxOptions& options)
      : net_(net),
        directions_(directions),
        options_(options),
        obs_(net, options.type_options.sim_words, options.type_options.seed),
        approx_(net),
        view_(net.topology()) {}

  ApproxResult run() {
    ApproxResult result;
    {
      trace::Span s("synth.assign_types");
      result.types =
          assign_types(net_, directions_, obs_, options_.type_options);
    }
    types_ = &result.types;
    repair_state_.assign(net_.num_nodes(), 0);
    stage1_phase_.assign(net_.num_nodes(), std::nullopt);

    {
      trace::Span s("synth.stage1");
      approximate_sops();
    }

    // Phase A: cheap global repair guided by bit-parallel simulation. One
    // simulator pair per round covers every PO; violations found this way
    // are always real, so fixing them before any exact query removes the
    // bulk of stage-2's cost on large multi-output circuits.
    int sim_repairs = 0;
    {
      trace::Span s("synth.sim_repair");
      simulation_repair_rounds(sim_repairs);
    }

    // The percentage sweep at the end runs chunked on the shared task
    // pool, each chunk over a private oracle. The chunk count is a
    // function of the PO count ALONE — never the thread count — because a
    // SAT conflict-budget answer depends on the oracle's query history, so
    // a thread-count-dependent partition would break the bit-identity
    // contract. One chunk degenerates to the shared-oracle serial path.
    const int P = net_.num_pos();
    const int chunks = std::max(1, std::min(4, P / 8));
    auto chunk_begin = [&](int c) {
      return static_cast<int>(static_cast<int64_t>(P) * c / chunks);
    };

    ApproxOracle oracle(net_, approx_, options_.bdd_budget);
    oracle.set_sat_conflict_budget(options_.sat_conflict_budget);
    result.po_stats.resize(P);
    for (int po = 0; po < P; ++po) {
      result.po_stats[po].direction = directions_[po];
    }
    {
      trace::Span s("synth.screening");
      // Bit-parallel prescreen: after the sim-repair rounds most POs are
      // already clean, so exact per-PO implication checks mostly re-prove
      // correctness. One simulator pair over a fixed pattern budget flags
      // every PO with an observed violation of its direction contract —
      // an observed violation is a real counterexample, so the exact
      // check could only confirm it — and estimates its error rate along
      // the way. Exact BDD/SAT evaluation is demoted to the final
      // implication verify of the prescreen-clean POs on the shared
      // oracle, replacing the per-chunk private oracles this stage used
      // to spin up (each rebuilt every BDD cone of both networks merely
      // to re-prove mostly-clean POs). Seeds are fixed constants rather
      // than draws from sim_rounds_, so the prescreen leaves the repair
      // stage's pattern stream exactly where the previous code did.
      const int words = 16;
      const int rounds = 4;
      Simulator sim_orig(net_);
      Simulator sim_approx(approx_);
      std::vector<uint8_t> sim_clean(P, 1);
      std::vector<int64_t> violation_bits(P, 0);
      for (int r = 0; r < rounds; ++r) {
        PatternSet patterns =
            PatternSet::random(net_.num_pis(), words, 0x5C12EE + 977 * r);
        sim_orig.run(patterns);
        sim_approx.run(patterns);
        for (int po = 0; po < P; ++po) {
          NodeId drv = net_.po(po).driver;
          NodeType dir_type = type_for_direction(directions_[po]);
          const auto& fw = sim_orig.value(drv);
          const auto& gw = sim_approx.value(drv);
          int64_t bits = 0;
          switch (dir_type) {
            case NodeType::kDc:
              break;
            case NodeType::kEx:
              // popcount(f ^ g) = |f| + |g| - 2|f & g|.
              bits = popcount_words(fw.data(), words, ~0ULL) +
                     popcount_words(gw.data(), words, ~0ULL) -
                     2 * popcount_and(fw.data(), gw.data(), words, ~0ULL);
              break;
            case NodeType::kOne:
              bits = popcount_andnot(fw.data(), gw.data(), words, ~0ULL);
              break;
            case NodeType::kZero:
              bits = popcount_andnot(gw.data(), fw.data(), words, ~0ULL);
              break;
          }
          if (bits != 0) {
            sim_clean[po] = 0;
            violation_bits[po] += bits;
          }
        }
      }
      for (int po = 0; po < P; ++po) {
        result.po_stats[po].sim_violation_rate =
            static_cast<double>(violation_bits[po]) /
            (64.0 * words * rounds);
        if (sim_clean[po] && oracle.verify(po, directions_[po])) {
          result.po_stats[po].verified = true;
          ++result.correct_after_stage1;
        }
      }
    }
    result.repairs += sim_repairs;
    {
      trace::Span s("synth.repair");
      for (int po = 0; po < net_.num_pos(); ++po) {
        if (result.po_stats[po].verified) continue;
        result.po_stats[po].verified =
            ensure_correctness(po, oracle, result.repairs);
      }
      // Repairs mutate nodes shared between cones, so a PO verified
      // earlier can regress: re-verify all POs until a fixed point
      // (bounded; the ultimate fallback restores cones to exact
      // functions, which satisfy every check).
      for (int pass = 0; pass < 4; ++pass) {
        bool regressed = false;
        for (int po = 0; po < net_.num_pos(); ++po) {
          if (oracle.verify(po, directions_[po])) continue;
          regressed = true;
          result.po_stats[po].verified =
              ensure_correctness(po, oracle, result.repairs);
        }
        if (!regressed) break;
        if (pass == 3) {
          // Shouldn't happen (restores are monotone), but never ship an
          // unverified PO: nuke any stragglers to exact.
          for (int po = 0; po < net_.num_pos(); ++po) {
            if (!oracle.verify(po, directions_[po])) {
              restore_cone(net_.po(po).driver);
              oracle.refresh_approx();
              result.po_stats[po].verified =
                  oracle.verify(po, directions_[po]);
            }
          }
        }
      }
    }
    // Final percentage sweep over the now-frozen approx network: same fixed
    // chunking, one private oracle per chunk (approximation_pct is exact by
    // BDD minterm counting or sampled with a fixed seed — deterministic
    // either way). Chunk tasks write disjoint po_stats entries.
    {
      trace::Span s("synth.pct_sweep");
      if (chunks > 1) {
        TaskPool::instance().parallel_for(
            0, chunks,
            [&](int64_t c) {
              const int b = chunk_begin(static_cast<int>(c));
              const int e = chunk_begin(static_cast<int>(c) + 1);
              ApproxOracle chunk_oracle(net_, approx_, options_.bdd_budget);
              chunk_oracle.set_sat_conflict_budget(
                  options_.sat_conflict_budget);
              for (int po = b; po < e; ++po) {
                result.po_stats[po].approximation_pct =
                    chunk_oracle.approximation_pct(po, directions_[po]);
              }
            },
            options_.num_threads);
      } else {
        for (int po = 0; po < P; ++po) {
          result.po_stats[po].approximation_pct =
              oracle.approximation_pct(po, directions_[po]);
        }
      }
    }
    compact_unused_fanins(approx_);
    approx_.cleanup();
    approx_.set_name(net_.name() + "_approx");
    result.approx = std::move(approx_);
    return result;
  }

 private:
  NodeType type_of(NodeId id) const { return types_->of(id); }

  std::vector<NodeType> fanin_types(NodeId id) const {
    const Node& n = net_.node(id);
    std::vector<NodeType> ft;
    ft.reserve(n.fanins.size());
    for (NodeId f : n.fanins) ft.push_back(type_of(f));
    return ft;
  }

  std::vector<double> fanin_probs(NodeId id) const {
    const Node& n = net_.node(id);
    std::vector<double> p;
    p.reserve(n.fanins.size());
    for (NodeId f : n.fanins) p.push_back(obs_.signal_probability(f));
    return p;
  }

  // Stage 1 (paper: "Approximation of SOPs"): discard cubes whose activation
  // probability is below the significance threshold, in the phase matching
  // each node's type.
  void approximate_sops() {
    if (options_.significance_threshold <= 0.0) return;
    for (NodeId id = 0; id < net_.num_nodes(); ++id) {
      const Node& n = net_.node(id);
      if (n.kind != NodeKind::kLogic) continue;
      NodeType t = type_of(id);
      if (t == NodeType::kEx && !options_.reduce_ex_nodes) continue;
      Sop phase = phase_sop_of(n.sop, t);
      std::vector<double> probs = fanin_probs(id);

      Sop kept(phase.num_vars());
      Sop dropped(phase.num_vars());

      // At type-0/1 nodes, first discard cubes that bind a DC-typed fanin:
      // the type assignment judged those fanins barely observable here, and
      // dropping such cubes is what lets entire DC cones disappear from the
      // approximate circuit. (Dropping always shrinks the phase-matched
      // cover, so the local approximation direction stays correct.)
      std::vector<NodeType> ft = fanin_types(id);
      auto binds_dc = [&](const Cube& c) {
        if (!options_.drop_dc_cubes) return false;
        if (t != NodeType::kZero && t != NodeType::kOne) return false;
        for (size_t k = 0; k < ft.size(); ++k) {
          if (ft[k] == NodeType::kDc &&
              c.get(static_cast<int>(k)) != LitCode::kFree) {
            return true;
          }
        }
        return false;
      };
      // Conformance-aware stage 1: at typed nodes, cubes that do not
      // conform to the fanin types cannot compose correctly once the fanins
      // are approximated (paper's theorem premise), so they are dropped
      // along with the insignificant ones. Cubes on all-EX fanins always
      // conform, so this only bites where it matters.
      auto nonconforming = [&](const Cube& c) {
        if (!options_.conformance_filter) return false;
        if (t != NodeType::kZero && t != NodeType::kOne) return false;
        return !cube_conforms(c, ft);
      };

      // Significance of a cube = its share of the node's total cube
      // probability mass (the paper's "contribution to the Boolean
      // function"; cubes with large support sets contribute least).
      double total = 0.0;
      for (const Cube& c : phase.cubes()) {
        total += cube_probability(c, probs);
      }
      if (total <= 0.0) continue;
      const Cube* best = nullptr;
      double best_p = -1.0;
      for (const Cube& c : phase.cubes()) {
        double p = cube_probability(c, probs);
        if (p > best_p) {
          best_p = p;
          best = &c;
        }
        if (!binds_dc(c) && !nonconforming(c) &&
            p / total >= options_.significance_threshold) {
          kept.add_cube(c);
        } else {
          dropped.add_cube(c);
        }
      }
      // Never empty the node entirely; rescue the likeliest cube.
      if (kept.empty() && best != nullptr) {
        kept.add_cube(*best);
        Sop rest(phase.num_vars());
        for (const Cube& c : dropped.cubes()) {
          if (!(c == *best)) rest.add_cube(c);
        }
        dropped = std::move(rest);
      }
      if (dropped.empty()) continue;

      // Realize the reduction in the stored on-set form, treating the
      // dropped minterms as don't cares so two-level minimization can
      // exploit them. For a type-0 node the dropped zero-phase cubes become
      // don't cares of the on-set directly (G grows: 0-approximation); for
      // the on-phase node types the kept cover may only absorb dropped
      // minterms (G stays within the kept region plus dropped space, still
      // inside the original on-set: 1-approximation).
      Sop candidate =
          t == NodeType::kZero
              ? (n.sop.num_vars() <= 12 ? minimize(n.sop, dropped)
                                        : onset_from_phase(kept, t))
              : (kept.num_vars() <= 12 ? minimize(kept, dropped) : kept);
      // Cost guard: never store a representation costlier than the
      // original node (phase conversion can inflate cube counts).
      int orig_cost = n.sop.literal_count() + n.sop.num_cubes();
      int cand_cost = candidate.literal_count() + candidate.num_cubes();
      if (cand_cost >= orig_cost) continue;
      stage1_phase_[id] = kept;
      approx_.set_sop(id, std::move(candidate));
    }
  }

  // Per-node correctness relative to the node's type (paper Sec. 2.2): a
  // type-1 node needs G => F globally, a type-0 node F => G, EX equality,
  // DC is unconstrained.
  bool node_correct(NodeType t, BddManager& mgr, BddManager::Ref orig_ref,
                    BddManager::Ref approx_ref) const {
    switch (t) {
      case NodeType::kDc:
        return true;
      case NodeType::kEx:
        return orig_ref == approx_ref;
      case NodeType::kOne:
        return mgr.implies(approx_ref, orig_ref);
      case NodeType::kZero:
        return mgr.implies(orig_ref, approx_ref);
    }
    return false;
  }

  // Restores every node in the cone of `root` to its exact original
  // function. Exactness (G == F) satisfies the correctness requirement of
  // every node type, so a restored cone can never regress another PO's
  // node-level correctness.
  void restore_cone(NodeId root) {
    for (NodeId id : cone_of(root)) {
      const Node& n = net_.node(id);
      if (n.kind != NodeKind::kLogic) continue;
      approx_.set_sop(id, n.sop);
      repair_state_[id] = 2;
    }
  }

  // Repairs one node: first ODC-based cube selection, then exact selection
  // (guaranteed under conforming fanins), tracked per node so repeated
  // repairs escalate.
  void fix_node(NodeId id, int& repairs) {
    NodeType t = type_of(id);
    ++repairs;
    if (t == NodeType::kEx) {
      if (repair_state_[id] == 0) {
        approx_.set_sop(id, net_.node(id).sop);  // restore exact function
        repair_state_[id] = 1;
      } else {
        // Equality needs exact fanins too: restore the whole fanin cone.
        restore_cone(id);
      }
      return;
    }
    std::vector<NodeType> ft = fanin_types(id);
    Sop full_phase = phase_sop_of(net_.node(id).sop, t);
    const Sop& phase = stage1_phase_[id].has_value() ? *stage1_phase_[id]
                                                     : full_phase;
    if (repair_state_[id] == 0 && options_.use_odc_repair) {
      std::vector<double> probs = fanin_probs(id);
      auto odc = odc_cube_selection(full_phase, ft, &probs);
      repair_state_[id] = 1;
      if (odc.has_value()) {
        approx_.set_sop(id, onset_from_phase(
                                significance_filter(*odc, probs), t));
        return;
      }
    }
    approx_.set_sop(id, onset_from_phase(exact_cube_selection(phase, ft), t));
    repair_state_[id] = 2;
  }

  // Re-applies the stage-1 significance rule to a repair candidate so local
  // repairs do not silently undo stage-1's area reduction.
  Sop significance_filter(const Sop& cover, const std::vector<double>& probs) {
    if (cover.num_cubes() <= 1 || options_.significance_threshold <= 0.0) {
      return cover;
    }
    double total = 0.0;
    for (const Cube& c : cover.cubes()) total += cube_probability(c, probs);
    if (total <= 0.0) return cover;
    Sop kept(cover.num_vars());
    const Cube* best = nullptr;
    double best_p = -1.0;
    for (const Cube& c : cover.cubes()) {
      double p = cube_probability(c, probs);
      if (p > best_p) {
        best_p = p;
        best = &c;
      }
      if (p / total >= options_.significance_threshold) kept.add_cube(c);
    }
    if (kept.empty() && best != nullptr) kept.add_cube(*best);
    return kept;
  }

  // Last-resort repair with a construction-level guarantee: exact-select
  // every type-0/1 node in the cone and restore every EX node.
  void exact_fallback(NodeId root) {
    for (NodeId id : cone_of(root)) {
      const Node& n = net_.node(id);
      if (n.kind != NodeKind::kLogic) continue;
      NodeType t = type_of(id);
      if (t == NodeType::kEx) {
        approx_.set_sop(id, n.sop);
      } else if (t != NodeType::kDc) {
        Sop phase = stage1_phase_[id].has_value() ? *stage1_phase_[id]
                                                  : phase_sop_of(n.sop, t);
        approx_.set_sop(
            id,
            onset_from_phase(exact_cube_selection(phase, fanin_types(id)),
                             t));
      }
      repair_state_[id] = 2;
    }
  }

  // Backward analysis: nodes that are incorrectly approximated although
  // every fanin is correct (paper: "sources of incorrect approximation").
  // Prefers the shared oracle's BDDs; falls back to a cone-local manager.
  // Returns nullopt when no BDD engine can answer.
  std::optional<std::vector<NodeId>> find_sources(NodeId root,
                                                  ApproxOracle& oracle) {
    std::vector<bool> correct(net_.num_nodes(), true);
    if (oracle.using_bdds()) {
      for (NodeId id : cone_of(root)) {
        const Node& n = net_.node(id);
        if (n.kind != NodeKind::kLogic) continue;
        correct[id] = node_correct(type_of(id), oracle.manager(),
                                   oracle.orig_ref(id), oracle.approx_ref(id));
      }
    } else {
      // BDD-hostile network: screen node correctness with simulation seeded
      // by the SAT counterexample. A simulated violation is a REAL
      // violation (no false sources); masked violations simply surface in a
      // later repair round with a fresh counterexample.
      const std::vector<uint8_t>& cex = oracle.last_counterexample();
      const int words = 8;
      PatternSet patterns =
          PatternSet::random(net_.num_pis(), words, 0x0CE5 + sim_rounds_++);
      if (!cex.empty()) {
        for (int i = 0; i < net_.num_pis(); ++i) {
          uint64_t w = patterns.word(i, 0);
          patterns.set_word(i, 0, cex[i] ? (w | 1) : (w & ~1ULL));
        }
      }
      Simulator sim_orig(net_);
      Simulator sim_approx(approx_);
      sim_orig.run(patterns);
      sim_approx.run(patterns);
      for (NodeId id : cone_of(root)) {
        const Node& n = net_.node(id);
        if (n.kind != NodeKind::kLogic) continue;
        const auto& fw = sim_orig.value(id);
        const auto& gw = sim_approx.value(id);
        uint64_t violation = 0;
        for (int w = 0; w < words; ++w) {
          switch (type_of(id)) {
            case NodeType::kDc:
              break;
            case NodeType::kEx:
              violation |= fw[w] ^ gw[w];
              break;
            case NodeType::kOne:
              violation |= gw[w] & ~fw[w];
              break;
            case NodeType::kZero:
              violation |= fw[w] & ~gw[w];
              break;
          }
          if (violation) break;
        }
        correct[id] = violation == 0;
      }
    }
    std::vector<NodeId> sources;
    for (NodeId id : cone_of(root)) {
      if (correct[id]) continue;
      bool fanins_ok = true;
      for (NodeId f : net_.node(id).fanins) {
        if (!correct[f]) {
          fanins_ok = false;
          break;
        }
      }
      if (fanins_ok) sources.push_back(id);
    }
    return sources;
  }

  // Phase A of stage 2: repeated global simulation screening. Each round
  // simulates both networks once on fresh patterns, marks every node whose
  // sampled behaviour violates its type contract, and repairs the deepest
  // violators. Terminates when a round finds nothing (or everything
  // repairable is final).
  void simulation_repair_rounds(int& repairs) {
    const int words = 16;
    std::vector<NodeId> po_roots;
    for (const PrimaryOutput& po : net_.pos()) po_roots.push_back(po.driver);
    // One simulator pair for all rounds: run() re-reads every SOP (so the
    // approx side observes fix_node's set_sop mutations, tracked by the
    // network version stamps) — only the pattern set changes per round.
    Simulator sim_orig(net_);
    Simulator sim_approx(approx_);
    for (int round = 0; round < 64; ++round) {
      PatternSet patterns = PatternSet::random(
          net_.num_pis(), words, 0x51AB + 977 * sim_rounds_++);
      sim_orig.run(patterns);
      sim_approx.run(patterns);

      auto violation_of = [&](NodeId id, NodeType t, int w) -> uint64_t {
        uint64_t f = sim_orig.value(id)[w];
        uint64_t g = sim_approx.value(id)[w];
        switch (t) {
          case NodeType::kDc:
            return 0;
          case NodeType::kEx:
            return f ^ g;
          case NodeType::kOne:
            return g & ~f;
          case NodeType::kZero:
            return f & ~g;
        }
        return 0;
      };

      // PO-level failures first: a node-level violation that never shows at
      // a failing output is exactly the global-ODC slack the paper exploits
      // and must NOT be repaired.
      std::vector<uint64_t> fail(words, 0);
      std::vector<NodeId> failing_roots;
      for (int po = 0; po < net_.num_pos(); ++po) {
        NodeId drv = net_.po(po).driver;
        NodeType dir_type = type_for_direction(directions_[po]);
        bool failed = false;
        for (int w = 0; w < words; ++w) {
          uint64_t v = violation_of(drv, dir_type, w);
          if (v) {
            fail[w] |= v;
            failed = true;
          }
        }
        if (failed) failing_roots.push_back(drv);
      }
      if (failing_roots.empty()) return;

      // Within the failing cones, a node is suspect when its violation
      // overlaps a pattern on which some PO failed. This cone lives in its
      // own buffer: fix_node below re-enters cone_of() for restores.
      view_->cone_of(failing_roots, cone_scratch_, roots_cone_buf_);
      const std::vector<NodeId>& cone = roots_cone_buf_;
      std::vector<bool> correct(net_.num_nodes(), true);
      for (NodeId id : cone) {
        const Node& n = net_.node(id);
        if (n.kind != NodeKind::kLogic) continue;
        for (int w = 0; w < words; ++w) {
          if (violation_of(id, type_of(id), w) & fail[w]) {
            correct[id] = false;
            break;
          }
        }
      }
      bool progress = false;
      for (NodeId id : cone) {
        if (correct[id]) continue;
        bool fanins_ok = true;
        for (NodeId f : net_.node(id).fanins) {
          if (!correct[f]) {
            fanins_ok = false;
            break;
          }
        }
        if (!fanins_ok || repair_state_[id] >= 2) continue;
        fix_node(id, repairs);
        progress = true;
      }
      if (!progress) return;
    }
  }


  // Stage 2 (paper: "Ensuring correctness") for one incorrect PO.
  bool ensure_correctness(int po, ApproxOracle& oracle, int& repairs) {
    NodeId root = net_.po(po).driver;
    auto bail_out = [&]() {
      exact_fallback(root);
      ++repairs;
      oracle.refresh_approx();
      if (oracle.verify(po, directions_[po])) return true;
      // Ultimate fallback: give up approximating this cone entirely. The
      // restored cone computes the exact function, which verifies trivially.
      restore_cone(root);
      oracle.refresh_approx();
      return oracle.verify(po, directions_[po]);
    };
    for (int round = 0; round < options_.max_repair_rounds; ++round) {
      if (oracle.verify(po, directions_[po])) return true;
      if (!oracle.using_bdds() && oracle.last_counterexample().empty()) {
        // The SAT query hit its conflict budget (no counterexample to guide
        // a repair): go straight to the guaranteed fallback.
        return bail_out();
      }
      std::optional<std::vector<NodeId>> sources = find_sources(root, oracle);
      if (!sources.has_value() || sources->empty()) {
        // No BDD engine or no identifiable source: guaranteed fallback.
        return bail_out();
      }
      bool progress = false;
      for (NodeId id : *sources) {
        if (repair_state_[id] >= 2) continue;  // already final
        fix_node(id, repairs);
        progress = true;
      }
      if (!progress) return bail_out();
      oracle.refresh_approx();
    }
    return bail_out();
  }

  // Single-root cone query over the shared structure snapshot (approx_ is
  // an id-preserving clone of net_, so their cones coincide); reuses one
  // scratch + buffer, so repeated repair-loop queries allocate nothing
  // once warmed. The returned reference is invalidated by the next call.
  const std::vector<NodeId>& cone_of(NodeId root) {
    view_->cone_of(&root, 1, cone_scratch_, cone_buf_);
    return cone_buf_;
  }

  const Network& net_;
  const std::vector<ApproxDirection>& directions_;
  const ApproxOptions& options_;
  ObservabilityAnalysis obs_;
  Network approx_;
  const TypeAssignment* types_ = nullptr;
  std::vector<uint8_t> repair_state_;
  // Phase-matched covers kept by stage 1 (per node): repairs re-select from
  // these instead of the full original covers, preserving stage-1's area
  // gains (any subset of the phase cover composes correctly through the
  // conformance theorem).
  std::vector<std::optional<Sop>> stage1_phase_;
  int sim_rounds_ = 0;

  // Structure snapshot of net_ (never mutated; approx_ only sees set_sop)
  // plus cone-query scratch shared by the repair stages.
  std::shared_ptr<const TopologyView> view_;
  ConeScratch cone_scratch_;
  std::vector<NodeId> cone_buf_;        ///< cone_of(root) result
  std::vector<NodeId> roots_cone_buf_;  ///< multi-root cone (sim repair)
};

}  // namespace

ApproxResult synthesize_approximation(
    const Network& net, const std::vector<ApproxDirection>& directions,
    const ApproxOptions& options) {
  if (directions.size() != static_cast<size_t>(net.num_pos())) {
    throw std::logic_error(
        "synthesize_approximation: one direction per PO required");
  }
  SynthesisEngine engine(net, directions, options);
  return engine.run();
}

}  // namespace apx
