#include "core/odc_analysis.hpp"

#include "bdd/bdd.hpp"
#include "network/topology_view.hpp"

namespace apx {

std::optional<std::vector<double>> global_odc_fractions(
    const Network& net, const OdcAnalysisOptions& options) {
  const int n_pis = net.num_pis();
  std::vector<double> odc(net.num_nodes(), 1.0);
  try {
    BddManager mgr(n_pis + 1, options.bdd_budget);
    const BddManager::Ref z = mgr.var(n_pis);
    std::vector<NodeId> po_drivers;
    for (const PrimaryOutput& po : net.pos()) po_drivers.push_back(po.driver);
    std::shared_ptr<const TopologyView> view = net.topology();
    ConeScratch cone_scratch;
    std::vector<NodeId> cone;
    view->cone_of(po_drivers, cone_scratch, cone);
    std::vector<bool> in_cone(net.num_nodes(), false);
    for (NodeId id : cone) in_cone[id] = true;

    for (NodeId target = 0; target < net.num_nodes(); ++target) {
      if (!in_cone[target]) continue;  // unobservable by definition
      // Rebuild the PO functions with `target` replaced by variable z.
      std::vector<BddManager::Ref> refs(net.num_nodes(), mgr.zero());
      for (int i = 0; i < n_pis; ++i) refs[net.pis()[i]] = mgr.var(i);
      for (NodeId id : cone) {
        if (id == target) {
          refs[id] = z;
          continue;
        }
        const Node& node = net.node(id);
        switch (node.kind) {
          case NodeKind::kPi:
            break;
          case NodeKind::kConst0:
            refs[id] = mgr.zero();
            break;
          case NodeKind::kConst1:
            refs[id] = mgr.one();
            break;
          case NodeKind::kLogic: {
            BddManager::Ref acc = mgr.zero();
            for (const Cube& c : node.sop.cubes()) {
              BddManager::Ref cube_ref = mgr.one();
              for (int v = 0; v < node.sop.num_vars(); ++v) {
                LitCode code = c.get(v);
                if (code == LitCode::kFree) continue;
                BddManager::Ref lit = refs[node.fanins[v]];
                if (code == LitCode::kNeg) lit = mgr.bdd_not(lit);
                cube_ref = mgr.bdd_and(cube_ref, lit);
              }
              acc = mgr.bdd_or(acc, cube_ref);
            }
            refs[id] = acc;
            break;
          }
        }
      }
      BddManager::Ref observable = mgr.zero();
      for (NodeId drv : po_drivers) {
        BddManager::Ref hi = mgr.cofactor(refs[drv], n_pis, true);
        BddManager::Ref lo = mgr.cofactor(refs[drv], n_pis, false);
        observable = mgr.bdd_or(observable, mgr.bdd_xor(hi, lo));
      }
      odc[target] = 1.0 - mgr.sat_fraction(observable);
    }
  } catch (const BddOverflow&) {
    return std::nullopt;
  }
  return odc;
}

}  // namespace apx
