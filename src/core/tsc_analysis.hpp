// Totally-self-checking property analysis for the Fig. 3 checkers
// (paper Sec. 3.2). For a protected output Y with check function X this
// module verifies, by exhaustive enumeration over the checker's input
// codeword space and its single stuck-at faults:
//
//  * code-disjointness — valid input codewords map to valid two-rail
//    outputs, invalid ones to invalid outputs;
//  * self-testing      — for each fault, some valid input codeword makes
//    the checker emit an invalid output (the paper proves Y stuck-at-0 and
//    X stuck-at-1 are the structural exceptions for a 0-approximation);
//  * fault-secureness  — for each fault and valid input, the output is
//    either correct or invalid (never a wrong-but-valid codeword).
#pragma once

#include <string>
#include <vector>

#include "core/approx_types.hpp"

namespace apx {

/// One checker-internal single stuck-at fault and its classification.
struct CheckerFaultReport {
  std::string site;       ///< "Y", "X", "rail1", "rail2"
  bool stuck_value = false;
  bool self_testing = false;  ///< detectable by some valid codeword
  bool fault_secure = false;  ///< never produces a wrong valid codeword
};

struct TscReport {
  bool code_disjoint = false;
  std::vector<CheckerFaultReport> faults;

  /// All faults self-testing (the TSC requirement modulo the paper's
  /// documented exceptions).
  bool fully_self_testing() const {
    for (const auto& f : faults) {
      if (!f.self_testing) return false;
    }
    return true;
  }
  /// The faults that violate self-testing (paper: Y s-a-0 and X s-a-1 for a
  /// 0-approximation; Y s-a-1 and X s-a-0 for a 1-approximation).
  std::vector<const CheckerFaultReport*> self_testing_exceptions() const {
    std::vector<const CheckerFaultReport*> out;
    for (const auto& f : faults) {
      if (!f.self_testing) out.push_back(&f);
    }
    return out;
  }
};

/// Analyzes the two-gate approximate checker for the given direction. The
/// valid input codeword space is {(X,Y)} minus the direction's invalid
/// codeword, as in Fig. 3(a).
TscReport analyze_approx_checker(ApproxDirection direction);

}  // namespace apx
