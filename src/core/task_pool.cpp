#include "core/task_pool.hpp"

#include <algorithm>

#include "core/trace.hpp"
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

namespace apx {
namespace {

std::atomic<int> g_thread_override{0};

int default_thread_count() {
  if (int v = parse_thread_env(std::getenv("APX_THREADS")); v > 0) {
    return std::min(v, TaskPool::kMaxWorkers);
  }
  unsigned hc = std::thread::hardware_concurrency();
  return hc > 0 ? static_cast<int>(hc) : 1;
}

}  // namespace

int parse_thread_env(const char* text) {
  if (text == nullptr || *text == '\0') return 0;
  char* end = nullptr;
  long v = std::strtol(text, &end, 10);
  if (end == text || *end != '\0') return 0;
  if (v <= 0) return 0;
  return static_cast<int>(std::min<long>(v, TaskPool::kMaxWorkers));
}

int thread_count() {
  if (int o = g_thread_override.load(std::memory_order_relaxed); o > 0) {
    return o;
  }
  static const int cached = default_thread_count();
  return cached;
}

void set_thread_count(int n) {
  g_thread_override.store(
      n > 0 ? std::min(n, TaskPool::kMaxWorkers) : 0,
      std::memory_order_relaxed);
}

int resolve_thread_option(int requested) {
  return requested > 0 ? std::min(requested, TaskPool::kMaxWorkers)
                       : thread_count();
}

/// One in-flight parallel loop. Chunk claiming is a lock-free fetch_add on
/// `next`; participant registration/retirement runs under the pool mutex,
/// which is what makes retiring the (stack-allocated) job safe: the owner
/// removes it from the active list in the same critical section in which
/// it observes "no chunks left and no registered participant".
struct TaskPool::Job {
  std::atomic<int64_t> next{0};
  int64_t end = 0;
  int64_t grain = 1;
  int max_slots = 1;
  const std::function<void(int, int64_t)>* body = nullptr;

  // Guarded by Impl::mutex.
  int slots_taken = 0;
  int running = 0;
  std::exception_ptr error;

  bool has_work() const {
    return next.load(std::memory_order_relaxed) < end &&
           slots_taken < max_slots;
  }
};

struct TaskPool::Impl {
  std::mutex mutex;
  std::condition_variable work_cv;   // workers: a job gained work
  std::condition_variable done_cv;   // owners: a participant retired
  std::vector<Job*> jobs;            // active loops, steal targets
  std::vector<std::thread> workers;
  bool stop = false;
};

TaskPool::TaskPool() : impl_(new Impl) {}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) t.join();
  delete impl_;
}

TaskPool& TaskPool::instance() {
  // Intentionally leaked (never destructed): worker threads must outlive
  // every static-destruction-order client, and the process exit reclaims
  // everything anyway.
  static TaskPool* pool = new TaskPool();
  return *pool;
}

int TaskPool::num_workers() const {
  std::lock_guard<std::mutex> lock(impl_->mutex);
  return static_cast<int>(impl_->workers.size());
}

void TaskPool::ensure_workers(int n) {
  n = std::min(n, kMaxWorkers);
  std::lock_guard<std::mutex> lock(impl_->mutex);
  while (static_cast<int>(impl_->workers.size()) < n) {
    impl_->workers.emplace_back(worker_loop, impl_);
  }
}

void TaskPool::worker_loop(Impl* impl) {
  std::unique_lock<std::mutex> lock(impl->mutex);
  for (;;) {
    impl->work_cv.wait(lock, [&] {
      if (impl->stop) return true;
      for (Job* j : impl->jobs) {
        if (j->has_work()) return true;
      }
      return false;
    });
    if (impl->stop) return;
    Job* job = nullptr;
    for (Job* j : impl->jobs) {
      if (j->has_work()) {
        job = j;
        break;
      }
    }
    if (job == nullptr) continue;
    const int slot = job->slots_taken++;
    ++job->running;
    lock.unlock();

    std::exception_ptr error;
    int64_t chunks_stolen = 0;
    try {
      // One span per participation (not per chunk): cheap, and each pool
      // worker shows up as its own parallel track in the Chrome trace.
      trace::Span span("pool.work");
      for (;;) {
        int64_t i = job->next.fetch_add(job->grain,
                                        std::memory_order_relaxed);
        if (i >= job->end) break;
        ++chunks_stolen;
        int64_t hi = std::min(i + job->grain, job->end);
        for (int64_t k = i; k < hi; ++k) (*job->body)(slot, k);
      }
    } catch (...) {
      error = std::current_exception();
      job->next.store(job->end, std::memory_order_relaxed);  // drain
    }
    if (trace::enabled() && chunks_stolen > 0) {
      static trace::Counter& steals = trace::counter("pool.steals");
      steals.add(chunks_stolen);
    }

    lock.lock();
    if (error && !job->error) job->error = error;
    --job->running;
    impl->done_cv.notify_all();
  }
}

void TaskPool::parallel_for_slotted(
    int64_t begin, int64_t end, int max_slots, int64_t grain,
    const std::function<void(int, int64_t)>& body) {
  if (end <= begin) return;
  if (grain < 1) grain = 1;
  if (max_slots <= 0) max_slots = thread_count();
  max_slots = static_cast<int>(
      std::min<int64_t>(std::min(max_slots, kMaxWorkers + 1), end - begin));
  if (max_slots <= 1) {
    // APX_THREADS=1 / single-iteration fallback: inline, slot 0, natural
    // exception propagation.
    for (int64_t i = begin; i < end; ++i) body(0, i);
    return;
  }
  ensure_workers(max_slots - 1);
  if (trace::enabled()) {
    static trace::Counter& jobs = trace::counter("pool.jobs");
    jobs.add(1);
  }

  Job job;
  job.next.store(begin, std::memory_order_relaxed);
  job.end = end;
  job.grain = grain;
  job.max_slots = max_slots;
  job.body = &body;

  Impl& impl = *impl_;
  int my_slot;
  {
    std::lock_guard<std::mutex> lock(impl.mutex);
    my_slot = job.slots_taken++;  // the caller always participates
    ++job.running;
    impl.jobs.push_back(&job);
  }
  impl.work_cv.notify_all();

  std::exception_ptr error;
  try {
    trace::Span span("pool.work");
    for (;;) {
      int64_t i = job.next.fetch_add(grain, std::memory_order_relaxed);
      if (i >= end) break;
      int64_t hi = std::min(i + grain, end);
      for (int64_t k = i; k < hi; ++k) body(my_slot, k);
    }
  } catch (...) {
    error = std::current_exception();
    job.next.store(end, std::memory_order_relaxed);
  }

  std::unique_lock<std::mutex> lock(impl.mutex);
  if (error && !job.error) job.error = error;
  --job.running;
  // Retire the job: wait until every registered participant has left,
  // then unlist it while still holding the mutex — no late worker can
  // register afterwards, so the stack frame stays valid.
  impl.done_cv.wait(lock, [&] { return job.running == 0; });
  impl.jobs.erase(std::find(impl.jobs.begin(), impl.jobs.end(), &job));
  std::exception_ptr rethrow = job.error;
  lock.unlock();
  if (rethrow) std::rethrow_exception(rethrow);
}

void TaskPool::parallel_for(int64_t begin, int64_t end,
                            const std::function<void(int64_t)>& body,
                            int max_slots, int64_t grain) {
  parallel_for_slotted(begin, end, max_slots, grain,
                       [&](int, int64_t i) { body(i); });
}

}  // namespace apx
