#include "core/verify.hpp"

#include <bit>

#include "sat/encode.hpp"
#include "sim/simulator.hpp"

namespace apx {

bool implication_holds_for(ApproxDirection d, bool g_implies_f,
                           bool f_implies_g) {
  return d == ApproxDirection::kOneApprox ? g_implies_f : f_implies_g;
}

// SAT and simulation state is kept out of the header via this impl struct.
struct ApproxOracleState {
  // Shared SAT instance encoding both networks once (rebuilt on refresh).
  std::optional<SatSolver> sat;
  std::vector<int> pi_vars;
  std::vector<int> orig_vars;
  std::vector<int> approx_vars;

  // Shared simulation for percentage estimates.
  std::optional<Simulator> sim_orig;
  std::optional<Simulator> sim_approx;
  int sim_words = 0;
};

ApproxOracle::ApproxOracle(const Network& original, const Network& approx,
                           size_t bdd_budget)
    : original_(original),
      approx_(approx),
      budget_(bdd_budget),
      state_(std::make_unique<ApproxOracleState>()) {
  build();
}

ApproxOracle::~ApproxOracle() = default;

void ApproxOracle::build() {
  bdd_ok_ = false;
  state_->sat.reset();
  state_->sim_approx.reset();
  if (bdd_hostile_) return;  // earlier build hit the budget: stay on SAT
  try {
    mgr_.emplace(original_.num_pis(), budget_);
    std::vector<NodeId> orig_roots, approx_roots;
    for (const PrimaryOutput& po : original_.pos()) {
      orig_roots.push_back(po.driver);
    }
    for (const PrimaryOutput& po : approx_.pos()) {
      approx_roots.push_back(po.driver);
    }
    orig_refs_ = build_cone_bdds(*mgr_, original_, orig_roots);
    approx_refs_ = build_cone_bdds(*mgr_, approx_, approx_roots);
    bdd_ok_ = true;
  } catch (const BddOverflow&) {
    mgr_.reset();
    orig_refs_.clear();
    approx_refs_.clear();
    bdd_hostile_ = true;
  }
}

void ApproxOracle::refresh_approx() {
  // Both ref sets live in one manager; a clean rebuild keeps the manager
  // from accumulating garbage across repair rounds.
  build();
}

void ApproxOracle::ensure_sat() {
  if (state_->sat.has_value()) return;
  state_->sat.emplace();
  SatSolver& solver = *state_->sat;
  state_->pi_vars.clear();
  for (int i = 0; i < original_.num_pis(); ++i) {
    state_->pi_vars.push_back(solver.new_var());
  }
  state_->orig_vars = encode_network(solver, original_, state_->pi_vars);
  state_->approx_vars = encode_network(solver, approx_, state_->pi_vars);
}

// During synthesis the approximate network is an id-preserving clone of the
// original; when the PO cone is structurally untouched (e.g. after a cone
// restore) the implication holds syntactically and no solver is needed.
bool ApproxOracle::cone_structurally_identical(int po) const {
  if (original_.num_nodes() != approx_.num_nodes()) return false;
  NodeId root = original_.po(po).driver;
  if (approx_.po(po).driver != root) return false;
  for (NodeId id : original_.cone_of({root})) {
    const Node& a = original_.node(id);
    const Node& b = approx_.node(id);
    if (a.kind != b.kind || a.fanins != b.fanins || !(a.sop == b.sop)) {
      return false;
    }
  }
  return true;
}

bool ApproxOracle::verify(int po, ApproxDirection direction) {
  if (cone_structurally_identical(po)) return true;
  if (bdd_ok_) {
    try {
      BddManager::Ref f = orig_refs_[original_.po(po).driver];
      BddManager::Ref g = approx_refs_[approx_.po(po).driver];
      return direction == ApproxDirection::kOneApprox ? mgr_->implies(g, f)
                                                      : mgr_->implies(f, g);
    } catch (const BddOverflow&) {
      bdd_ok_ = false;  // fall through to SAT below
    }
  }
  ensure_sat();
  Lit f(state_->orig_vars[original_.po(po).driver], false);
  Lit g(state_->approx_vars[approx_.po(po).driver], false);
  // kOneApprox: g => f fails iff (g & ~f) satisfiable.
  std::vector<Lit> assumptions =
      direction == ApproxDirection::kOneApprox ? std::vector<Lit>{g, ~f}
                                               : std::vector<Lit>{f, ~g};
  last_cex_.clear();
  SatResult r = state_->sat->solve(assumptions, sat_conflict_budget_);
  if (r == SatResult::kUnsat) return true;
  if (r == SatResult::kSat) {
    last_cex_.resize(original_.num_pis());
    for (int i = 0; i < original_.num_pis(); ++i) {
      last_cex_[i] = state_->sat->model_value(state_->pi_vars[i]) ? 1 : 0;
    }
  }
  // kUnknown (budget exhausted) is treated as "not verified": callers in
  // the synthesis flow respond by making the cone more exact, which
  // ultimately resolves through the structural fast path above.
  return false;
}

double ApproxOracle::approximation_pct(int po, ApproxDirection direction,
                                       int fallback_words) {
  if (bdd_ok_) {
    try {
      double pf = mgr_->sat_fraction(orig_refs_[original_.po(po).driver]);
      double pg = mgr_->sat_fraction(approx_refs_[approx_.po(po).driver]);
      if (direction == ApproxDirection::kOneApprox) {
        return pf > 0.0 ? pg / pf : 1.0;
      }
      return pf < 1.0 ? (1.0 - pg) / (1.0 - pf) : 1.0;
    } catch (const BddOverflow&) {
      bdd_ok_ = false;
    }
  }
  // Sampled estimate over shared random patterns (simulators are cached:
  // the original's never changes, the approx side refreshes with build()).
  if (!state_->sim_orig.has_value() || state_->sim_words != fallback_words) {
    state_->sim_orig.emplace(original_);
    state_->sim_orig->run(
        PatternSet::random(original_.num_pis(), fallback_words, 0xA99C0));
    state_->sim_words = fallback_words;
    state_->sim_approx.reset();
  }
  if (!state_->sim_approx.has_value()) {
    state_->sim_approx.emplace(approx_);
    state_->sim_approx->run(
        PatternSet::random(approx_.num_pis(), fallback_words, 0xA99C0));
  }
  const auto& fw = state_->sim_orig->value(original_.po(po).driver);
  const auto& gw = state_->sim_approx->value(approx_.po(po).driver);
  int64_t denom = 0, num = 0;
  for (size_t w = 0; w < fw.size(); ++w) {
    if (direction == ApproxDirection::kOneApprox) {
      denom += std::popcount(fw[w]);
      num += std::popcount(fw[w] & gw[w]);
    } else {
      denom += std::popcount(~fw[w]);
      num += std::popcount(~fw[w] & ~gw[w]);
    }
  }
  return denom > 0 ? static_cast<double>(num) / static_cast<double>(denom)
                   : 1.0;
}

double weighted_approximation_percentage(const Network& original,
                                         const Network& approx, int po,
                                         ApproxDirection direction,
                                         const std::vector<double>& pi_probs,
                                         int words, uint64_t seed) {
  Simulator sim_f(original);
  Simulator sim_g(approx);
  PatternSet patterns = PatternSet::biased(pi_probs, words, seed);
  sim_f.run(patterns);
  sim_g.run(patterns);
  const auto& fw = sim_f.value(original.po(po).driver);
  const auto& gw = sim_g.value(approx.po(po).driver);
  int64_t denom = 0, num = 0;
  for (size_t w = 0; w < fw.size(); ++w) {
    if (direction == ApproxDirection::kOneApprox) {
      denom += std::popcount(fw[w]);
      num += std::popcount(fw[w] & gw[w]);
    } else {
      denom += std::popcount(~fw[w]);
      num += std::popcount(~fw[w] & ~gw[w]);
    }
  }
  return denom > 0 ? static_cast<double>(num) / static_cast<double>(denom)
                   : 1.0;
}

bool verify_po_approximation(const Network& original, const Network& approx,
                             int po, ApproxDirection direction,
                             size_t bdd_budget) {
  ApproxOracle oracle(original, approx, bdd_budget);
  return oracle.verify(po, direction);
}

double approximation_percentage(const Network& original,
                                const Network& approx, int po,
                                ApproxDirection direction, size_t bdd_budget,
                                int fallback_words) {
  ApproxOracle oracle(original, approx, bdd_budget);
  return oracle.approximation_pct(po, direction, fallback_words);
}

}  // namespace apx
