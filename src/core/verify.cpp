#include "core/verify.hpp"

#include <algorithm>

#include "core/trace.hpp"
#include "network/ordering.hpp"
#include "sat/encode.hpp"
#include "sim/kernels.hpp"
#include "sim/simulator.hpp"

namespace apx {

bool implication_holds_for(ApproxDirection d, bool g_implies_f,
                           bool f_implies_g) {
  return d == ApproxDirection::kOneApprox ? g_implies_f : f_implies_g;
}

// SAT and simulation state is kept out of the header via this impl struct.
struct ApproxOracleState {
  // Shared SAT instance encoding both networks. The original side is
  // encoded plainly (it never changes); the approx side uses the
  // activation-guarded incremental encoding so repairs re-encode dirty
  // cones in place instead of rebuilding the solver.
  std::optional<SatSolver> sat;
  std::vector<int> pi_vars;
  std::vector<int> orig_vars;
  IncrementalEncoding approx_enc;

  // Shared simulation for percentage estimates.
  std::optional<Simulator> sim_orig;
  std::optional<Simulator> sim_approx;
  int sim_words = 0;
};

ApproxOracle::ApproxOracle(const Network& original, const Network& approx,
                           size_t bdd_budget, RefreshMode mode)
    : original_(original),
      approx_(approx),
      budget_(bdd_budget),
      mode_(mode),
      state_(std::make_unique<ApproxOracleState>()) {
  // The original network never mutates under the oracle, so its view is
  // pinned once here (cone_structurally_identical walks it per verify()).
  orig_view_ = original_.topology();
  build();
}

ApproxOracle::~ApproxOracle() {
  // Lifetime stats fold into the process-wide trace registry on teardown;
  // the per-oracle Stats struct stays the precise API for benches/tests.
  if (!trace::enabled()) return;
  trace::counter("oracle.structural_hits").add(stats_.structural_hits);
  trace::counter("oracle.bdd_queries").add(stats_.bdd_queries);
  trace::counter("oracle.sat_queries").add(stats_.sat_queries);
  trace::counter("oracle.incremental_refreshes")
      .add(stats_.incremental_refreshes);
  trace::counter("oracle.full_rebuilds").add(stats_.full_rebuilds);
  trace::counter("oracle.bdd_nodes_rebuilt").add(stats_.bdd_nodes_rebuilt);
  trace::counter("oracle.sat_nodes_reencoded")
      .add(stats_.sat_nodes_reencoded);
  trace::counter("oracle.gc_runs").add(stats_.gc_runs);
}

// Full rebuild: discards the SAT instance and the approx-side simulator
// along with every BDD. The constructor and kFullRebuild mode come through
// here; the incremental path only lands here after a structural mutation.
void ApproxOracle::build() {
  trace::Span span("oracle.build");
  ++stats_.full_rebuilds;
  state_->sat.reset();
  state_->sim_approx.reset();
  build_bdds();
}

void ApproxOracle::build_bdds() {
  bdd_ok_ = false;
  approx_synced_version_ = approx_.version();
  if (bdd_hostile_) return;  // earlier build hit the budget: stay on SAT
  try {
    // Both networks share PIs, so the original's order (the stable one:
    // the approx side is an evolving clone, and its near-identical cones
    // share nodes with the original's under any order) seeds the manager.
    // The OrderCache is consulted by content hash of the original, so a
    // rebuild — the repair loop refreshes this oracle many times, and the
    // screening/sweep stages spin up private oracles over the same pair —
    // reuses the previously converged order and arms the reorder budget
    // instead of re-sifting from the structural order. The hash is
    // recomputed on every build, so any mutation of the original
    // (including structural ones) keys a different entry by construction.
    uint64_t order_key = 0;
    size_t seed_budget = 0;
    mgr_.emplace(original_.num_pis(), budget_,
                 cached_or_static_order(original_, &order_key, &seed_budget));
    mgr_->set_reorder_budget(seed_budget);
    std::vector<NodeId> orig_roots, approx_roots;
    for (const PrimaryOutput& po : original_.pos()) {
      orig_roots.push_back(po.driver);
    }
    for (const PrimaryOutput& po : approx_.pos()) {
      approx_roots.push_back(po.driver);
    }
    orig_refs_ = build_cone_bdds(*mgr_, original_, orig_roots);
    // Register each held vector once it is live so any reorder — during
    // the second build or later queries — rewrites it in place.
    mgr_->register_external_refs(&orig_refs_);
    approx_refs_ = build_cone_bdds(*mgr_, approx_, approx_roots);
    mgr_->register_external_refs(&approx_refs_);
    nodes_after_build_ = mgr_->live_nodes();
    bdd_ok_ = true;
    OrderCache::instance().store(
        order_key, {mgr_->export_order(), mgr_->live_nodes()});
  } catch (const BddOverflow&) {
    mgr_.reset();
    orig_refs_.clear();
    approx_refs_.clear();
    bdd_hostile_ = true;
  }
}

void ApproxOracle::refresh_approx() {
  trace::Span span("oracle.refresh");
  if (mode_ == RefreshMode::kFullRebuild) {
    build();
    return;
  }
  if (approx_.structure_version() > approx_synced_version_) {
    // Node ids / fanins / PO drivers moved: cone membership and the
    // cached orders are stale, so incremental repair doesn't apply.
    build();
    return;
  }
  std::vector<NodeId> dirty = approx_.dirty_since(approx_synced_version_);
  approx_synced_version_ = approx_.version();
  if (dirty.empty()) return;
  ++stats_.incremental_refreshes;
  state_->sim_approx.reset();  // sampled estimates must see the new SOPs
  std::vector<NodeId> affected = fanout_closure(dirty);
  refresh_bdds(affected);
  refresh_sat(affected);
}

void ApproxOracle::ensure_structure_caches() {
  if (approx_view_ != nullptr &&
      approx_view_->structure_version() == approx_.structure_version()) {
    return;
  }
  approx_view_ = approx_.topology();
}

// Dirty nodes plus their transitive fanout, in topological order: exactly
// the nodes whose global functions can have changed. Walks the shared
// view's CSR fanout arrays with epoch-stamped marks; ordering by cached
// topo positions replaces the legacy full-topo filter scan.
std::vector<NodeId> ApproxOracle::fanout_closure(
    const std::vector<NodeId>& dirty) {
  ensure_structure_caches();
  const TopologyView& view = *approx_view_;
  cone_scratch_.marks.begin(approx_.num_nodes());
  auto& stack = cone_scratch_.stack;
  stack.clear();
  std::vector<NodeId> result;
  for (NodeId id : dirty) {
    if (cone_scratch_.marks.insert(id)) {
      stack.push_back(id);
      result.push_back(id);
    }
  }
  while (!stack.empty()) {
    NodeId id = stack.back();
    stack.pop_back();
    for (NodeId out : view.fanouts(id)) {
      if (cone_scratch_.marks.insert(out)) {
        stack.push_back(out);
        result.push_back(out);
      }
    }
  }
  std::sort(result.begin(), result.end(), [&view](NodeId a, NodeId b) {
    return view.topo_position(a) < view.topo_position(b);
  });
  return result;
}

void ApproxOracle::refresh_bdds(const std::vector<NodeId>& affected) {
  if (!bdd_ok_) return;
  try {
    std::vector<BddManager::Ref> fanin_refs;
    for (NodeId id : affected) {
      if (approx_refs_[id] == kNoBddRef) continue;  // outside every PO cone
      const Node& n = approx_.node(id);
      if (n.kind != NodeKind::kLogic) continue;
      fanin_refs.clear();
      for (NodeId f : n.fanins) fanin_refs.push_back(approx_refs_[f]);
      approx_refs_[id] = eval_sop_bdd(*mgr_, n.sop, fanin_refs);
      ++stats_.bdd_nodes_rebuilt;
      // Safe point: both held vectors are registered, so a reorder here
      // rewrites them in place; fanin_refs is refilled per node.
      if (mgr_->reorder_pending()) mgr_->reorder();
    }
    maybe_collect();
  } catch (const BddOverflow&) {
    // The arena may simply be full of garbage from replaced cones: retry
    // from an empty manager (which marks the oracle BDD-hostile if even a
    // clean build overflows). The SAT/simulation state is untouched.
    build_bdds();
  }
}

void ApproxOracle::maybe_collect() {
  size_t n = mgr_->live_nodes();
  if (n < 4096 || n < 2 * nodes_after_build_) return;
  std::vector<BddManager::Ref> roots;
  roots.reserve(orig_refs_.size() + approx_refs_.size());
  roots.insert(roots.end(), orig_refs_.begin(), orig_refs_.end());
  roots.insert(roots.end(), approx_refs_.begin(), approx_refs_.end());
  std::vector<BddManager::Ref> remap = mgr_->garbage_collect(roots);
  for (BddManager::Ref& r : orig_refs_) {
    if (r != kNoBddRef) r = remap[r];
  }
  for (BddManager::Ref& r : approx_refs_) {
    if (r != kNoBddRef) r = remap[r];
  }
  nodes_after_build_ = mgr_->live_nodes();  // live size = new trigger base
  ++stats_.gc_runs;
}

void ApproxOracle::ensure_sat() {
  if (state_->sat.has_value()) return;
  state_->sat.emplace();
  SatSolver& solver = *state_->sat;
  state_->pi_vars.clear();
  for (int i = 0; i < original_.num_pis(); ++i) {
    state_->pi_vars.push_back(solver.new_var());
  }
  state_->orig_vars = encode_network(solver, original_, state_->pi_vars);
  state_->approx_enc =
      encode_network_incremental(solver, approx_, state_->pi_vars);
}

void ApproxOracle::refresh_sat(const std::vector<NodeId>& affected) {
  // Not yet constructed: ensure_sat() will encode the current network
  // state when the first query needs it.
  if (!state_->sat.has_value()) return;
  reencode_nodes(*state_->sat, approx_, affected, state_->approx_enc);
  stats_.sat_nodes_reencoded += affected.size();
}

const void* ApproxOracle::sat_identity() const {
  return state_->sat.has_value() ? static_cast<const void*>(&*state_->sat)
                                 : nullptr;
}

// During synthesis the approximate network is an id-preserving clone of the
// original; when the PO cone is structurally untouched (e.g. after a cone
// restore) the implication holds syntactically and no solver is needed.
bool ApproxOracle::cone_structurally_identical(int po) const {
  if (original_.num_nodes() != approx_.num_nodes()) return false;
  NodeId root = original_.po(po).driver;
  if (approx_.po(po).driver != root) return false;
  orig_view_->cone_of(&root, 1, cone_scratch_, cone_buf_);
  for (NodeId id : cone_buf_) {
    const Node& a = original_.node(id);
    const Node& b = approx_.node(id);
    if (a.kind != b.kind || a.fanins != b.fanins || !(a.sop == b.sop)) {
      return false;
    }
  }
  return true;
}

bool ApproxOracle::verify(int po, ApproxDirection direction) {
  trace::Span span("oracle.verify");
  if (cone_structurally_identical(po)) {
    ++stats_.structural_hits;
    return true;
  }
  if (bdd_ok_) {
    try {
      BddManager::Ref f = orig_refs_[original_.po(po).driver];
      BddManager::Ref g = approx_refs_[approx_.po(po).driver];
      ++stats_.bdd_queries;
      bool holds = direction == ApproxDirection::kOneApprox
                       ? mgr_->implies(g, f)
                       : mgr_->implies(f, g);
      // Safe point: the query's transient nodes are garbage now, and the
      // held vectors are registered.
      if (mgr_->reorder_pending()) mgr_->reorder();
      return holds;
    } catch (const BddOverflow&) {
      bdd_ok_ = false;  // fall through to SAT below
    }
  }
  trace::Span sat_span("oracle.sat_fallback");
  ensure_sat();
  ++stats_.sat_queries;
  Lit f(state_->orig_vars[original_.po(po).driver], false);
  Lit g(state_->approx_enc.node_var[approx_.po(po).driver], false);
  // Activation assumptions select the current approx-side encoding;
  // kOneApprox: g => f fails iff (g & ~f) satisfiable.
  std::vector<Lit> assumptions;
  activation_assumptions(state_->approx_enc, assumptions);
  if (direction == ApproxDirection::kOneApprox) {
    assumptions.push_back(g);
    assumptions.push_back(~f);
  } else {
    assumptions.push_back(f);
    assumptions.push_back(~g);
  }
  last_cex_.clear();
  SatResult r = state_->sat->solve(assumptions, sat_conflict_budget_);
  if (r == SatResult::kUnsat) return true;
  if (r == SatResult::kSat) {
    last_cex_.resize(original_.num_pis());
    for (int i = 0; i < original_.num_pis(); ++i) {
      last_cex_[i] = state_->sat->model_value(state_->pi_vars[i]) ? 1 : 0;
    }
  }
  // kUnknown (budget exhausted) is treated as "not verified": callers in
  // the synthesis flow respond by making the cone more exact, which
  // ultimately resolves through the structural fast path above.
  return false;
}

double ApproxOracle::approximation_pct(int po, ApproxDirection direction,
                                       int fallback_words) {
  if (bdd_ok_) {
    try {
      if (mgr_->reorder_pending()) mgr_->reorder();
      double pf = mgr_->sat_fraction(orig_refs_[original_.po(po).driver]);
      double pg = mgr_->sat_fraction(approx_refs_[approx_.po(po).driver]);
      if (direction == ApproxDirection::kOneApprox) {
        return pf > 0.0 ? pg / pf : 1.0;
      }
      return pf < 1.0 ? (1.0 - pg) / (1.0 - pf) : 1.0;
    } catch (const BddOverflow&) {
      bdd_ok_ = false;
    }
  }
  // Sampled estimate over shared random patterns (simulators are cached:
  // the original's never changes, the approx side resets on refresh).
  if (!state_->sim_orig.has_value() || state_->sim_words != fallback_words) {
    state_->sim_orig.emplace(original_);
    state_->sim_orig->run(
        PatternSet::random(original_.num_pis(), fallback_words, 0xA99C0));
    state_->sim_words = fallback_words;
    state_->sim_approx.reset();
  }
  if (!state_->sim_approx.has_value()) {
    state_->sim_approx.emplace(approx_);
    state_->sim_approx->run(
        PatternSet::random(approx_.num_pis(), fallback_words, 0xA99C0));
  }
  const auto& fw = state_->sim_orig->value(original_.po(po).driver);
  const auto& gw = state_->sim_approx->value(approx_.po(po).driver);
  const int W = fw.num_words();
  int64_t denom, num;
  if (direction == ApproxDirection::kOneApprox) {
    denom = popcount_words(fw.data(), W, ~0ULL);
    num = popcount_and(fw.data(), gw.data(), W, ~0ULL);
  } else {
    // Off-set counts via complements: popcount(~f) = 64W - popcount(f),
    // and popcount(~f & ~g) = popcount(~f) - popcount(~f & g).
    denom = 64ll * W - popcount_words(fw.data(), W, ~0ULL);
    num = denom - popcount_andnot(fw.data(), gw.data(), W, ~0ULL);
  }
  return denom > 0 ? static_cast<double>(num) / static_cast<double>(denom)
                   : 1.0;
}

double weighted_approximation_percentage(const Network& original,
                                         const Network& approx, int po,
                                         ApproxDirection direction,
                                         const std::vector<double>& pi_probs,
                                         int words, uint64_t seed) {
  Simulator sim_f(original);
  Simulator sim_g(approx);
  PatternSet patterns = PatternSet::biased(pi_probs, words, seed);
  sim_f.run(patterns);
  sim_g.run(patterns);
  const auto& fw = sim_f.value(original.po(po).driver);
  const auto& gw = sim_g.value(approx.po(po).driver);
  const int W = fw.num_words();
  int64_t denom, num;
  if (direction == ApproxDirection::kOneApprox) {
    denom = popcount_words(fw.data(), W, ~0ULL);
    num = popcount_and(fw.data(), gw.data(), W, ~0ULL);
  } else {
    denom = 64ll * W - popcount_words(fw.data(), W, ~0ULL);
    num = denom - popcount_andnot(fw.data(), gw.data(), W, ~0ULL);
  }
  return denom > 0 ? static_cast<double>(num) / static_cast<double>(denom)
                   : 1.0;
}

bool verify_po_approximation(const Network& original, const Network& approx,
                             int po, ApproxDirection direction,
                             size_t bdd_budget) {
  ApproxOracle oracle(original, approx, bdd_budget);
  return oracle.verify(po, direction);
}

double approximation_percentage(const Network& original,
                                const Network& approx, int po,
                                ApproxDirection direction, size_t bdd_budget,
                                int fallback_words) {
  ApproxOracle oracle(original, approx, bdd_budget);
  return oracle.approximation_pct(po, direction, fallback_words);
}

}  // namespace apx
