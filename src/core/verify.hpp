// Implication/equivalence oracle for approximation correctness (paper
// Sec. 2.2): BDD-based checking with a SAT fallback on BDD blow-up, plus
// approximation-percentage measurement (exact by BDD minterm counting,
// sampled by simulation as a fallback).
//
// ApproxOracle amortizes one shared BDD manager across every PO of an
// (original, approximate) network pair — essential for multi-output
// circuits, where per-PO managers would rebuild shared cones hundreds of
// times.
#pragma once

#include <memory>
#include <optional>

#include "bdd/network_bdd.hpp"
#include "core/approx_types.hpp"
#include "network/network.hpp"
#include "network/topology_view.hpp"

namespace apx {

/// What must hold between an original PO F and its approximation G.
///   kOneApprox:  G => F   (G's on-set inside F's on-set)
///   kZeroApprox: F => G   (G's off-set inside F's off-set)
bool implication_holds_for(ApproxDirection d, bool g_implies_f,
                           bool f_implies_g);

/// Shared verification oracle over an (original, approx) network pair with
/// matching PIs and POs. Builds global BDDs for both networks in one
/// manager; on overflow every query falls back to SAT (for decisions) or
/// bit-parallel simulation (for percentages).
///
/// The oracle is incremental across repair rounds (the stage-2 loop of
/// paper Sec. 2.2 alternates node repairs with implication checks): it
/// watches the approx network's version stamps, and refresh_approx()
/// re-derives only the BDDs in the transitive fanout of nodes mutated
/// since the previous refresh. The original network's BDDs are built once
/// and never touched; BDD garbage left behind by replaced cones is
/// reclaimed by mark-and-sweep on the live per-node refs. The SAT fallback
/// is likewise incremental: dirty cones are re-encoded under fresh
/// variables with activation-literal assumptions, so the solver instance —
/// and its learned clauses — survives every repair.
struct ApproxOracleState;

class ApproxOracle {
 public:
  /// How refresh_approx() reconciles the oracle with a mutated network.
  /// kFullRebuild reproduces the pre-incremental behaviour (rebuild every
  /// BDD cone of both networks, discard the SAT instance) and exists for
  /// the bench_verify baseline and differential tests.
  enum class RefreshMode { kIncremental, kFullRebuild };

  ApproxOracle(const Network& original, const Network& approx,
               size_t bdd_budget = 1u << 18,
               RefreshMode mode = RefreshMode::kIncremental);
  ~ApproxOracle();

  /// Is PO `po` of the approx network a correct `direction`-approximation?
  bool verify(int po, ApproxDirection direction);

  /// Fraction of the protected minterm space covered (paper Sec. 2):
  /// |G|/|F| for 1-approximations, |~G|/|~F| for 0-approximations.
  double approximation_pct(int po, ApproxDirection direction,
                           int fallback_words = 512);

  /// Brings the oracle up to date after the approx network was mutated.
  /// Incremental mode re-derives only the cones downstream of the mutated
  /// nodes (O(changed cone) instead of O(both networks)); structural
  /// mutations (Network::structure_version()) force a full rebuild.
  void refresh_approx();

  /// When the last verify() returned false via the SAT path, this holds the
  /// violating PI assignment (one value per PI). Empty otherwise.
  const std::vector<uint8_t>& last_counterexample() const {
    return last_cex_;
  }

  /// Conflict cap per SAT query; exceeding it reports "not verified"
  /// (sound: callers escalate toward exactness, which the structural
  /// fast path then verifies without a solver). < 0 disables the cap.
  void set_sat_conflict_budget(int64_t budget) {
    sat_conflict_budget_ = budget;
  }

  /// True while BDD-based answers are available (diagnostics).
  bool using_bdds() const { return bdd_ok_; }

  /// Workload counters (monotone over the oracle's lifetime).
  struct Stats {
    uint64_t structural_hits = 0;  ///< verify() answered by cone identity
    uint64_t bdd_queries = 0;      ///< verify() answered by BDD implication
    uint64_t sat_queries = 0;      ///< verify() answered by the SAT solver
    uint64_t incremental_refreshes = 0;
    uint64_t full_rebuilds = 0;
    uint64_t bdd_nodes_rebuilt = 0;    ///< node BDDs re-derived incrementally
    uint64_t sat_nodes_reencoded = 0;  ///< node CNFs re-encoded incrementally
    uint64_t gc_runs = 0;              ///< BDD mark-and-sweep collections
  };
  const Stats& oracle_stats() const { return stats_; }

  /// Identity of the SAT fallback instance (nullptr while none exists).
  /// The incremental path keeps this stable across refresh_approx() —
  /// asserted by tests; a change means learned clauses were thrown away.
  const void* sat_identity() const;

  /// Direct access to the per-node global BDDs (valid when using_bdds()).
  /// Only nodes inside some PO cone carry a meaningful ref (kNoBddRef
  /// otherwise). Used by the repair stage's source analysis.
  BddManager& manager() { return *mgr_; }
  BddManager::Ref orig_ref(NodeId id) const { return orig_refs_[id]; }
  BddManager::Ref approx_ref(NodeId id) const { return approx_refs_[id]; }

 private:
  void build();
  void build_bdds();
  void ensure_sat();
  bool cone_structurally_identical(int po) const;
  void ensure_structure_caches();
  std::vector<NodeId> fanout_closure(const std::vector<NodeId>& dirty);
  void refresh_bdds(const std::vector<NodeId>& affected);
  void refresh_sat(const std::vector<NodeId>& affected);
  void maybe_collect();

  const Network& original_;
  const Network& approx_;
  size_t budget_;
  RefreshMode mode_;
  std::optional<BddManager> mgr_;
  std::vector<BddManager::Ref> orig_refs_;
  std::vector<BddManager::Ref> approx_refs_;
  bool bdd_ok_ = false;
  bool bdd_hostile_ = false;  // a build overflowed: skip future BDD attempts
  int64_t sat_conflict_budget_ = 50000;
  std::vector<uint8_t> last_cex_;

  // Incremental bookkeeping: the approx network version the BDD refs
  // reflect, plus shared topology views (the approx side is refreshed per
  // structure version; the original never mutates) and reusable cone
  // scratch so refresh/verify traversals allocate no adjacency per call.
  uint64_t approx_synced_version_ = 0;
  std::shared_ptr<const TopologyView> approx_view_;
  std::shared_ptr<const TopologyView> orig_view_;
  mutable ConeScratch cone_scratch_;
  mutable std::vector<NodeId> cone_buf_;
  size_t nodes_after_build_ = 0;  // GC trigger baseline

  Stats stats_;
  std::unique_ptr<ApproxOracleState> state_;
};

/// One-shot convenience wrappers (fresh oracle per call).
bool verify_po_approximation(const Network& original, const Network& approx,
                             int po, ApproxDirection direction,
                             size_t bdd_budget = 1u << 18);

double approximation_percentage(const Network& original,
                                const Network& approx, int po,
                                ApproxDirection direction,
                                size_t bdd_budget = 1u << 18,
                                int fallback_words = 512);

/// Input-weighted approximation percentage (paper Sec. 2: "each minterm
/// covered by the approximate function must be appropriately weighted by
/// its probability of occurrence"). `pi_probs[i]` is P[PI i = 1]; the
/// estimate samples `words`*64 vectors from that product distribution.
double weighted_approximation_percentage(const Network& original,
                                         const Network& approx, int po,
                                         ApproxDirection direction,
                                         const std::vector<double>& pi_probs,
                                         int words = 1024,
                                         uint64_t seed = 0xB1A5);

}  // namespace apx
