// Implication/equivalence oracle for approximation correctness (paper
// Sec. 2.2): BDD-based checking with a SAT fallback on BDD blow-up, plus
// approximation-percentage measurement (exact by BDD minterm counting,
// sampled by simulation as a fallback).
//
// ApproxOracle amortizes one shared BDD manager across every PO of an
// (original, approximate) network pair — essential for multi-output
// circuits, where per-PO managers would rebuild shared cones hundreds of
// times.
#pragma once

#include <memory>
#include <optional>

#include "bdd/network_bdd.hpp"
#include "core/approx_types.hpp"
#include "network/network.hpp"

namespace apx {

/// What must hold between an original PO F and its approximation G.
///   kOneApprox:  G => F   (G's on-set inside F's on-set)
///   kZeroApprox: F => G   (G's off-set inside F's off-set)
bool implication_holds_for(ApproxDirection d, bool g_implies_f,
                           bool f_implies_g);

/// Shared verification oracle over an (original, approx) network pair with
/// matching PIs and POs. Builds global BDDs for both networks in one
/// manager; on overflow every query falls back to SAT (for decisions) or
/// bit-parallel simulation (for percentages).
struct ApproxOracleState;

class ApproxOracle {
 public:
  ApproxOracle(const Network& original, const Network& approx,
               size_t bdd_budget = 1u << 18);
  ~ApproxOracle();

  /// Is PO `po` of the approx network a correct `direction`-approximation?
  bool verify(int po, ApproxDirection direction);

  /// Fraction of the protected minterm space covered (paper Sec. 2):
  /// |G|/|F| for 1-approximations, |~G|/|~F| for 0-approximations.
  double approximation_pct(int po, ApproxDirection direction,
                           int fallback_words = 512);

  /// Rebuilds the approx-side BDDs after the approx network was mutated.
  void refresh_approx();

  /// When the last verify() returned false via the SAT path, this holds the
  /// violating PI assignment (one value per PI). Empty otherwise.
  const std::vector<uint8_t>& last_counterexample() const {
    return last_cex_;
  }

  /// Conflict cap per SAT query; exceeding it reports "not verified"
  /// (sound: callers escalate toward exactness, which the structural
  /// fast path then verifies without a solver). < 0 disables the cap.
  void set_sat_conflict_budget(int64_t budget) {
    sat_conflict_budget_ = budget;
  }

  /// True while BDD-based answers are available (diagnostics).
  bool using_bdds() const { return bdd_ok_; }

  /// Direct access to the per-node global BDDs (valid when using_bdds()).
  /// Only nodes inside some PO cone carry a meaningful ref (kNoBddRef
  /// otherwise). Used by the repair stage's source analysis.
  BddManager& manager() { return *mgr_; }
  BddManager::Ref orig_ref(NodeId id) const { return orig_refs_[id]; }
  BddManager::Ref approx_ref(NodeId id) const { return approx_refs_[id]; }

 private:
  void build();
  void ensure_sat();
  bool cone_structurally_identical(int po) const;

  const Network& original_;
  const Network& approx_;
  size_t budget_;
  std::optional<BddManager> mgr_;
  std::vector<BddManager::Ref> orig_refs_;
  std::vector<BddManager::Ref> approx_refs_;
  bool bdd_ok_ = false;
  bool bdd_hostile_ = false;  // a build overflowed: skip future BDD attempts
  int64_t sat_conflict_budget_ = 50000;
  std::vector<uint8_t> last_cex_;
  std::unique_ptr<ApproxOracleState> state_;
};

/// One-shot convenience wrappers (fresh oracle per call).
bool verify_po_approximation(const Network& original, const Network& approx,
                             int po, ApproxDirection direction,
                             size_t bdd_budget = 1u << 18);

double approximation_percentage(const Network& original,
                                const Network& approx, int po,
                                ApproxDirection direction,
                                size_t bdd_budget = 1u << 18,
                                int fallback_words = 512);

/// Input-weighted approximation percentage (paper Sec. 2: "each minterm
/// covered by the approximate function must be appropriately weighted by
/// its probability of occurrence"). `pi_probs[i]` is P[PI i = 1]; the
/// estimate samples `words`*64 vectors from that product distribution.
double weighted_approximation_percentage(const Network& original,
                                         const Network& approx, int po,
                                         ApproxDirection direction,
                                         const std::vector<double>& pi_probs,
                                         int words = 1024,
                                         uint64_t seed = 0xB1A5);

}  // namespace apx
