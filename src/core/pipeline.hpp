// End-to-end CED flow (paper Sec. 3 / Fig. 2):
//   1. quick synthesis + technology mapping of the original circuit,
//   2. reliability analysis on the mapped netlist -> per-output dominant
//      error direction,
//   3. approximate-logic synthesis on the technology-independent network,
//   4. mapping of the approximate circuit,
//   5. CED assembly (checkers + two-rail tree) and measurement.
#pragma once

#include <string>

#include "core/approx_synthesis.hpp"
#include "core/ced.hpp"
#include "core/logic_sharing.hpp"
#include "mapping/mapper.hpp"
#include "reliability/reliability.hpp"

namespace apx {

struct PipelineOptions {
  ApproxOptions approx;
  MapOptions map_options;
  ReliabilityOptions reliability;
  CoverageOptions coverage;
  bool logic_sharing = false;
  SharingOptions sharing;
};

struct PipelineResult {
  /// Mapped functional circuit.
  Network mapped_original;
  /// Mapped approximate check-symbol generator.
  Network mapped_checkgen;
  /// Synthesis-level results (types, per-PO verification, approximation %).
  ApproxResult synthesis;
  /// Per-output dominant error directions from reliability analysis.
  std::vector<ApproxDirection> directions;
  ReliabilityReport reliability;
  /// Assembled CED design and its measurements.
  CedDesign ced;
  CoverageResult coverage;
  OverheadReport overheads;
  SharingReport sharing;

  /// Average approximation percentage over POs (paper Table 1 metric).
  double mean_approximation_pct() const;
  /// Unit-delay depths (paper's "no performance penalty" claim).
  int original_delay = 0;
  int checkgen_delay = 0;
};

/// Runs the full CED flow on a technology-independent network.
PipelineResult run_ced_pipeline(const Network& net,
                                const PipelineOptions& options = {});

}  // namespace apx
