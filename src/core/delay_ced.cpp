#include "core/delay_ced.hpp"

#include <bit>
#include <random>

namespace apx {

CoverageResult evaluate_delay_fault_coverage(
    const CedDesign& ced, const DelayCoverageOptions& options) {
  CoverageResult result;
  if (ced.functional_nodes.empty()) return result;
  std::mt19937_64 rng(options.seed);
  TransitionSimulator sim(ced.design);
  const Network& net = ced.design;

  for (int s = 0; s < options.num_fault_samples; ++s) {
    NodeId site = ced.functional_nodes[rng() % ced.functional_nodes.size()];
    TransitionFault fault{site, static_cast<bool>(rng() & 1)};
    PatternSet launch =
        PatternSet::random(net.num_pis(), options.words_per_fault, rng());
    PatternSet capture =
        PatternSet::random(net.num_pis(), options.words_per_fault, rng());
    sim.run(launch, capture);
    sim.inject(fault);
    const auto& z1 = sim.faulty_value(ced.error_pair.rail1);
    const auto& z2 = sim.faulty_value(ced.error_pair.rail2);
    for (int w = 0; w < options.words_per_fault; ++w) {
      uint64_t err = 0;
      for (NodeId out : ced.functional_outputs) {
        err |= sim.value(out)[w] ^ sim.faulty_value(out)[w];
      }
      uint64_t flagged = ~(z1[w] ^ z2[w]);
      result.erroneous += std::popcount(err);
      result.detected += std::popcount(err & flagged);
      result.runs += 64;
    }
  }
  return result;
}

}  // namespace apx
