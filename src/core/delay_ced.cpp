#include "core/delay_ced.hpp"

#include <algorithm>
#include <random>

#include "sim/kernels.hpp"

namespace apx {

CoverageResult evaluate_delay_fault_coverage(
    const CedDesign& ced, const DelayCoverageOptions& options) {
  CoverageResult result;
  const Network& net = ced.design;
  std::vector<NodeId> sites = ced.functional_nodes;
  if (options.include_pi_stems) {
    sites.insert(sites.end(), net.pis().begin(), net.pis().end());
  }
  if (sites.empty()) return result;
  std::mt19937_64 rng(options.seed);
  TransitionSimulator sim(ced.design);

  const int W = options.words_per_fault;
  std::vector<uint64_t> err_row(W);
  for (int s = 0; s < options.num_fault_samples; ++s) {
    NodeId site = sites[rng() % sites.size()];
    TransitionFault fault{site, static_cast<bool>(rng() & 1)};
    PatternSet launch = PatternSet::random(net.num_pis(), W, rng());
    PatternSet capture = PatternSet::random(net.num_pis(), W, rng());
    sim.run(launch, capture);
    sim.inject(fault);
    const WordSpan z1 = sim.faulty_value(ced.error_pair.rail1);
    const WordSpan z2 = sim.faulty_value(ced.error_pair.rail2);
    std::fill(err_row.begin(), err_row.end(), 0);
    for (NodeId out : ced.functional_outputs) {
      accumulate_xor_or(err_row.data(), sim.value(out).data(),
                        sim.faulty_value(out).data(), W);
    }
    // The rails agree exactly where the checker flags the fault, so
    // detected = |err| - |(z1 ^ z2) & err|.
    const int64_t erroneous = popcount_words(err_row.data(), W, ~0ULL);
    result.erroneous += erroneous;
    result.detected +=
        erroneous - popcount_xor_and(z1.data(), z2.data(), err_row.data(), W,
                                     ~0ULL);
    result.runs += 64ll * W;
  }
  return result;
}

}  // namespace apx
