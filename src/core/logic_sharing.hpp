// Logic sharing between the original circuit and the check-symbol generator
// (paper Sec. 3.1): functionally equivalent check-generator nodes are merged
// onto original-circuit nodes, trading a little CED coverage (faults in
// shared logic affect both circuits identically and become undetectable)
// for lower area/power overhead. This makes the CED intrusive.
#pragma once

#include "core/ced.hpp"

namespace apx {

struct SharingOptions {
  /// Simulation words for candidate signatures.
  int sim_words = 64;
  uint64_t seed = 0x5A4E;
  /// SAT conflict budget per equivalence proof (kUnknown => not merged).
  int64_t sat_conflict_budget = 20000;
  /// Criticality budget (paper Sec. 3.1: only *non-critical* nodes are
  /// shared). A merged node's faults become undetectable, so candidates
  /// are ranked by their error contribution and merged cheapest-first
  /// until the merged nodes account for at most this fraction of the
  /// functional circuit's total error mass. 1.0 merges everything.
  double max_error_mass = 0.10;
  /// Fault samples per candidate used to estimate error contribution.
  int criticality_words = 8;
};

struct SharingReport {
  int merged_nodes = 0;
  int checkgen_area_before = 0;
  int checkgen_area_after = 0;
};

/// Merges check-generator nodes that are functionally equivalent to
/// original-circuit nodes. Updates `ced` in place (design, node lists and
/// error pair are remapped after cleanup).
SharingReport apply_logic_sharing(CedDesign& ced,
                                  const SharingOptions& options = {});

}  // namespace apx
