#include "core/type_assignment.hpp"

#include <algorithm>
#include <stdexcept>

namespace apx {

int TypeAssignment::count(NodeType t) const {
  int c = 0;
  for (NodeType x : types) {
    if (x == t) ++c;
  }
  return c;
}

TypeAssignment assign_types(const Network& net,
                            const std::vector<ApproxDirection>& directions,
                            const TypeAssignmentOptions& options) {
  ObservabilityAnalysis obs(net, options.sim_words, options.seed);
  return assign_types(net, directions, obs, options);
}

TypeAssignment assign_types(const Network& net,
                            const std::vector<ApproxDirection>& directions,
                            const ObservabilityAnalysis& obs,
                            const TypeAssignmentOptions& options) {
  if (directions.size() != static_cast<size_t>(net.num_pos())) {
    throw std::logic_error("assign_types: one direction per PO required");
  }
  TypeAssignment result;
  result.types.assign(net.num_nodes(), NodeType::kEx);

  // Requests accumulated per node, as counts per type.
  struct Requests {
    int zero = 0, one = 0, ex = 0, dc = 0;
    int total() const { return zero + one + ex + dc; }
  };
  std::vector<Requests> requests(net.num_nodes());

  // Initialization: the PO drivers receive the desired output types.
  for (int o = 0; o < net.num_pos(); ++o) {
    NodeId drv = net.po(o).driver;
    if (type_for_direction(directions[o]) == NodeType::kZero) {
      ++requests[drv].zero;
    } else {
      ++requests[drv].one;
    }
  }

  std::vector<NodeId> order = net.topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    NodeId id = *it;
    const Node& n = net.node(id);
    const Requests& r = requests[id];

    // Assignment rules (paper Sec. 2.1.1). Nodes never requested by anyone
    // (dangling) default to DC.
    NodeType type;
    if (r.total() == 0) {
      type = NodeType::kDc;
    } else if (r.ex > 0) {
      type = NodeType::kEx;
    } else if (r.zero == 0 && r.one == 0) {
      type = NodeType::kDc;
    } else if (r.one == 0) {
      type = NodeType::kZero;  // all requests 0 or DC
    } else if (r.zero == 0) {
      type = NodeType::kOne;  // all requests 1 or DC
    } else {
      type = NodeType::kEx;
    }
    if (n.kind != NodeKind::kLogic) {
      // PIs/constants are structural; they are exact by definition.
      result.types[id] = NodeType::kEx;
      continue;
    }
    result.types[id] = type;

    // Request types for fanins from local observabilities.
    const auto& fanin_obs = obs.node_obs(id);
    double max_total = 0.0;
    for (const auto& fo : fanin_obs) max_total = std::max(max_total, fo.total());
    // Does the node's SOP actually bind fanin k in some cube?
    auto fanin_used = [&](size_t k) {
      for (const Cube& c : n.sop.cubes()) {
        if (c.get(static_cast<int>(k)) != LitCode::kFree) return true;
      }
      return false;
    };

    for (size_t k = 0; k < n.fanins.size(); ++k) {
      const FaninObservability& fo = fanin_obs[k];
      NodeId f = n.fanins[k];
      // A DC node constrains nothing downstream of it; its fanins also see
      // no requirement from this path.
      if (type == NodeType::kDc) {
        ++requests[f].dc;
        continue;
      }
      if (!fanin_used(k)) {
        ++requests[f].dc;  // functionally irrelevant fanin
        continue;
      }
      // Under strict_ex_requests an EX node pins fanins it is sensitive to
      // to EX (the premise of the paper's composition theorem; see
      // DESIGN.md) — except barely-observable ones, which rule (i) still
      // sends to DC, damping the transitive EX flood. The default instead
      // applies the plain observability rules for EX nodes too, as the
      // paper's prose describes.
      if (type == NodeType::kEx && options.strict_ex_requests) {
        if (max_total > 0.0 && fo.total() < options.dc_fraction * max_total) {
          ++requests[f].dc;
        } else {
          ++requests[f].ex;
        }
        continue;
      }
      if (max_total > 0.0 && fo.total() < options.dc_fraction * max_total) {
        ++requests[f].dc;  // rule (i): barely observable fanin
        continue;
      }
      double lo = std::min(fo.obs0, fo.obs1);
      double hi = std::max(fo.obs0, fo.obs1);
      if (lo * options.phase_ratio < hi) {
        // rule (ii): strong disparity -> dominant phase.
        if (fo.obs0 > fo.obs1) {
          ++requests[f].zero;
        } else {
          ++requests[f].one;
        }
      } else {
        ++requests[f].ex;  // rule (iii): comparable observabilities
      }
    }
  }
  return result;
}

}  // namespace apx
